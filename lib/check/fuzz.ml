open Sched_model
module P = Sched_experiments.Policy_registry
module Oracle = Sched_check.Oracle
module Violation = Sched_check.Violation
module Check_obs = Sched_check.Check_obs
module SSet = Set.Make (String)

type config = {
  seed : int;
  budget : int;
  policies : P.entry list;
  max_shrink : int;
  max_failures : int;
}

let config ?(budget = 60) ?(policies = P.all) ?(max_shrink = 400) ?(max_failures = 25) ~seed () =
  if budget < 1 then invalid_arg "Fuzz.config: budget must be >= 1";
  { seed; budget; policies; max_shrink; max_failures }

(* Forensics: replay the shrunk repro with a flight recorder attached
   and keep the trace/2 NDJSON tail.  The replay may itself raise — that
   can be the very failure — but the ring survives the exception, so
   whatever was recorded up to that point is exactly the evidence the
   post-mortem wants. *)
let forensics_last = 64

let capture_forensics (entry : P.entry) inst =
  let recorder = Sched_obs.Recorder.create ~capacity:4096 () in
  (try
     ignore
       (entry.P.run_impl ~recorder ~impl:(Sched_sim.Driver.default_impl ()) ~check:false inst)
   with _ -> ());
  Sched_sim.Trace_export.recorder_to_ndjson ~last:forensics_last recorder

type failure = {
  scenario : Scenario.t;
  policy : string;
  prop : string;
  detail : string;
  shrunk : Instance.t;
  forensics : string;
      (* trace/2 NDJSON tail from replaying [shrunk] with a recorder;
         "" when no entry could be replayed (e.g. generation failures). *)
}

type report = { evaluated : int; coverage : int; failures : failure list }

(* ------------------------------------------------------------------ *)
(* Property evaluation.  Everything below is pure in the instance and the
   registry entry, so scenario evaluations can fan out across pool domains
   and still merge deterministically. *)

let oracle_mode (entry : P.entry) =
  Oracle.mode ~allow_restarts:entry.P.allow_restarts ~check_deadlines:false ()

let snapshot (lm : Sched_sim.Driver.live_metrics) =
  {
    Oracle.flow = lm.Sched_sim.Driver.flow;
    energy = lm.Sched_sim.Driver.energy;
    rejection = lm.Sched_sim.Driver.rejection;
    makespan = lm.Sched_sim.Driver.makespan;
  }

let audit (entry : P.entry) inst =
  let sched, lm = entry.P.run_live inst in
  let vs =
    Oracle.check ~mode:(oracle_mode entry) ?budget:entry.P.budget ~live:(snapshot lm) sched
  in
  (sched, lm, vs)

let rel_close ~tol a b = Float.abs (a -. b) <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

(* The shuffled presentation order below only needs to be deterministic,
   not related to the run's scenario seed. *)
let permute_rng_seed = 42

let check_oracle entry inst =
  let _, _, vs = audit entry inst in
  match vs with [] -> None | vs -> Some (Oracle.report vs)

let check_permute entry inst =
  let base = Serialize.schedule_to_string (entry.P.run inst) in
  let permuted =
    Serialize.schedule_to_string
      (entry.P.run (Sched_workload.Transform.permute_jobs (Sched_stats.Rng.create permute_rng_seed) inst))
  in
  if String.equal base permuted then None
  else Some "schedule depends on job presentation order"

let check_relabel entry inst =
  let m = Instance.m inst in
  if m < 2 then None
  else begin
    let perm = Array.init m (fun i -> m - 1 - i) in
    let relabeled = Sched_workload.Transform.relabel_machines ~perm inst in
    let _, _, vs = audit entry relabeled in
    match vs with [] -> None | vs -> Some ("on relabeled machines: " ^ Oracle.report vs)
  end

let check_scale entry inst =
  let _, lm1 = entry.P.run_live inst in
  let _, lm2 = entry.P.run_live (Sched_workload.Transform.scale_time 2. inst) in
  let f1 = lm1.Sched_sim.Driver.flow and f2 = lm2.Sched_sim.Driver.flow in
  let r1 = lm1.Sched_sim.Driver.rejection and r2 = lm2.Sched_sim.Driver.rejection in
  if not (rel_close ~tol:1e-6 f2.Metrics.total (2. *. f1.Metrics.total)) then
    Some
      (Printf.sprintf "total flow %.17g after doubling time unit, expected %.17g"
         f2.Metrics.total (2. *. f1.Metrics.total))
  else if not (rel_close ~tol:1e-6 f2.Metrics.weighted (2. *. f1.Metrics.weighted)) then
    Some
      (Printf.sprintf "weighted flow %.17g after doubling time unit, expected %.17g"
         f2.Metrics.weighted (2. *. f1.Metrics.weighted))
  else if r1.Metrics.count <> r2.Metrics.count then
    Some
      (Printf.sprintf "rejection count changed under time rescaling: %d vs %d" r1.Metrics.count
         r2.Metrics.count)
  else None

(* Rebatch metamorphism: feeding the same jobs through an incremental
   session in arrival chunks — of any size pattern — must reproduce the
   one-shot batch schedule byte for byte.  Three deterministic patterns
   per instance: one-at-a-time, a fixed stride, and a varying stride
   that exercises chunk-boundary/horizon interplay. *)
let rebatch_patterns =
  [ ("chunk=1", fun _ -> 1); ("chunk=3", fun _ -> 3); ("chunk=1+(k mod 4)", fun k -> 1 + (k mod 4)) ]

let check_rebatch (entry : P.entry) inst =
  let base = Serialize.schedule_to_string (entry.P.run inst) in
  let jobs = Instance.jobs_by_release inst in
  let n = Array.length jobs in
  List.fold_left
    (fun acc (pat_name, width) ->
      match acc with
      | Some _ -> acc
      | None -> (
          let s =
            entry.P.open_stream ~name:inst.Instance.name ~machines:inst.Instance.machines ()
          in
          let k = ref 0 and round = ref 0 in
          while !k < n do
            let stop = min n (!k + width !round) in
            for i = !k to stop - 1 do
              s.P.ss_feed jobs.(i)
            done;
            s.P.ss_drain_until jobs.(stop - 1).Job.release;
            k := stop;
            incr round
          done;
          match s.P.ss_close () with
          | Some sched, _ ->
              if String.equal base (Serialize.schedule_to_string sched) then None
              else Some (Printf.sprintf "streamed schedule diverges from batch under %s" pat_name)
          | None, _ -> Some (pat_name ^ ": session returned no schedule")))
    None rebatch_patterns

let props =
  [
    ("oracle", check_oracle);
    ("permute", check_permute);
    ("relabel", check_relabel);
    ("scale", check_scale);
    ("rebatch", check_rebatch);
  ]

let property_fails entry prop inst =
  match List.assoc_opt prop props with
  | None -> invalid_arg (Printf.sprintf "Fuzz.property_fails: unknown property %S" prop)
  | Some f -> ( try f entry inst with e -> Some ("exception: " ^ Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Behavioural coverage: one bit per feature the run exhibited. *)

let feature_bits inst (sched : Schedule.t) (lm : Sched_sim.Driver.live_metrics) =
  let n = Instance.n inst in
  let per_job = Array.make (max 1 n) 0 in
  List.iter
    (fun (g : Schedule.segment) ->
      if g.Schedule.job >= 0 && g.Schedule.job < n then
        per_job.(g.Schedule.job) <- per_job.(g.Schedule.job) + 1)
    sched.Schedule.segments;
  let r = lm.Sched_sim.Driver.rejection in
  let bit b on acc = if on then acc lor (1 lsl b) else acc in
  0
  |> bit 0 (r.Metrics.count > 0)
  |> bit 1 (r.Metrics.mid_run > 0)
  |> bit 2 (Array.exists (fun c -> c > 1) per_job)
  |> bit 3 (Instance.has_deadlines inst)
  |> bit 4
       (Array.exists (fun (j : Job.t) -> j.Job.weight <> 1.) (Instance.jobs_by_release inst))

(* ------------------------------------------------------------------ *)
(* Per-scenario evaluation (runs on a pool domain). *)

type finding = { f_policy : string; f_prop : string; f_detail : string }

type eval_result = {
  e_cov : string list;  (** Coverage keys this scenario exhibited. *)
  e_audits : Violation.t list list;  (** One violation list per audited schedule. *)
  e_findings : finding list;
}

let evaluate policies scenario =
  match Scenario.instance scenario with
  | exception e ->
      {
        e_cov = [];
        e_audits = [];
        e_findings =
          [ { f_policy = "-"; f_prop = "generate"; f_detail = Printexc.to_string e } ];
      }
  | inst ->
      let cov = ref [] and audits = ref [] and findings = ref [] in
      List.iter
        (fun (entry : P.entry) ->
          (match audit entry inst with
          | exception e ->
              findings :=
                { f_policy = entry.P.name; f_prop = "oracle"; f_detail = "exception: " ^ Printexc.to_string e }
                :: !findings
          | sched, lm, vs ->
              audits := vs :: !audits;
              let key =
                Printf.sprintf "%s|%s|%02x" entry.P.name scenario.Scenario.family
                  (feature_bits inst sched lm)
              in
              cov := key :: !cov;
              if vs <> [] then
                findings :=
                  { f_policy = entry.P.name; f_prop = "oracle"; f_detail = Oracle.report vs }
                  :: !findings);
          List.iter
            (fun (prop, _) ->
              if prop <> "oracle" then
                match property_fails entry prop inst with
                | None -> ()
                | Some detail ->
                    findings := { f_policy = entry.P.name; f_prop = prop; f_detail = detail } :: !findings)
            props)
        policies;
      { e_cov = List.rev !cov; e_audits = List.rev !audits; e_findings = List.rev !findings }

(* ------------------------------------------------------------------ *)
(* Shrinking: greedily re-run the failing property on smaller instances. *)

let rebuild_jobs kept =
  List.mapi
    (fun id (j : Job.t) ->
      Job.create ~id ~release:j.Job.release ~weight:j.Job.weight ?deadline:j.Job.deadline
        ~sizes:j.Job.sizes ())
    kept

let drop_job_range inst lo hi =
  let jobs = Array.to_list (Instance.jobs_by_release inst) in
  let kept = List.filteri (fun k _ -> k < lo || k >= hi) jobs in
  if kept = [] then None
  else begin
    let machines = Array.init (Instance.m inst) (Instance.machine inst) in
    Some (Instance.create ~name:(inst.Instance.name ^ "(shrunk)") ~machines ~jobs:(rebuild_jobs kept) ())
  end

let drop_machine inst i =
  let m = Instance.m inst in
  if m < 2 then None
  else begin
    let machines =
      Array.init (m - 1) (fun k ->
          let mc = Instance.machine inst (if k < i then k else k + 1) in
          Machine.create ~id:k ~speed:mc.Machine.speed ~alpha:mc.Machine.alpha ())
    in
    let kept =
      Array.to_list (Instance.jobs_by_release inst)
      |> List.filter_map (fun (j : Job.t) ->
             let sizes = Array.init (m - 1) (fun k -> j.Job.sizes.(if k < i then k else k + 1)) in
             if Array.exists Float.is_finite sizes then
               Some
                 (Job.create ~id:0 ~release:j.Job.release ~weight:j.Job.weight
                    ?deadline:j.Job.deadline ~sizes ())
             else None)
    in
    if kept = [] then None
    else
      Some
        (Instance.create ~name:(inst.Instance.name ^ "(shrunk)") ~machines
           ~jobs:(rebuild_jobs kept) ())
  end

let shrink ~max_evals entry prop inst0 detail0 =
  let evals = ref 0 in
  let still_fails cand =
    if !evals >= max_evals then None
    else begin
      incr evals;
      match property_fails entry prop cand with Some d -> Some (cand, d) | None -> None
    end
  in
  let rec go cur detail =
    let n = Instance.n cur and m = Instance.m cur in
    let candidates =
      (if n > 1 then [ drop_job_range cur 0 (n / 2); drop_job_range cur (n / 2) n ] else [])
      @ (if n > 1 && n <= 48 then List.init n (fun k -> drop_job_range cur k (k + 1)) else [])
      @ (if m > 1 then List.init m (fun i -> drop_machine cur i) else [])
    in
    let next =
      List.find_map
        (fun cand -> match cand with None -> None | Some c -> still_fails c)
        candidates
    in
    match next with Some (c, d) -> go c d | None -> (cur, detail)
  in
  (* A candidate that stops failing is never accepted, so the result is
     guaranteed to still fail [prop]. *)
  go inst0 detail0

(* ------------------------------------------------------------------ *)
(* The generation loop. *)

(* Fixed so that reports are independent of the pool width. *)
let generation_size = 16

let run ?(progress = fun _ -> ()) ?registry ~pool cfg =
  let seen = ref SSet.empty in
  let coverage = ref SSet.empty in
  let queue = Queue.create () in
  let push s =
    let l = Scenario.label s in
    if not (SSet.mem l !seen) then begin
      seen := SSet.add l !seen;
      Queue.push s queue
    end
  in
  List.iter push (Scenario.base ~seed:cfg.seed);
  let evaluated = ref 0 in
  let raw_failures = ref [] in
  let generation = ref 0 in
  while (not (Queue.is_empty queue)) && !evaluated < cfg.budget do
    incr generation;
    let batch = ref [] in
    while (not (Queue.is_empty queue)) && List.length !batch < min generation_size (cfg.budget - !evaluated) do
      batch := Queue.pop queue :: !batch
    done;
    let batch = Array.of_list (List.rev !batch) in
    let results = Sched_stats.Pool.parallel_map pool (evaluate cfg.policies) batch in
    Array.iteri
      (fun k result ->
        let scenario = batch.(k) in
        incr evaluated;
        (match registry with
        | Some reg -> List.iter (fun vs -> Check_obs.record reg vs) result.e_audits
        | None -> ());
        let novel =
          List.fold_left
            (fun novel key ->
              if SSet.mem key !coverage then novel
              else begin
                coverage := SSet.add key !coverage;
                true
              end)
            false result.e_cov
        in
        if novel then List.iter push (Scenario.mutants scenario);
        List.iter
          (fun f ->
            if List.length !raw_failures < cfg.max_failures then
              raw_failures := (scenario, f) :: !raw_failures)
          result.e_findings)
      results;
    progress
      (Printf.sprintf "generation %d: evaluated %d/%d, coverage %d, failures %d" !generation
         !evaluated cfg.budget (SSet.cardinal !coverage) (List.length !raw_failures))
  done;
  let failures =
    List.rev_map
      (fun (scenario, f) ->
        (* A failure to even build the instance leaves nothing to shrink;
           stand in a trivial one-job instance so the report stays total. *)
        let placeholder () =
          Instance.create ~name:"unbuildable"
            ~machines:[| Machine.create ~id:0 () |]
            ~jobs:[ Job.create ~id:0 ~release:0. ~sizes:[| 1. |] () ]
            ()
        in
        let shrunk, detail, forensics =
          match Scenario.instance scenario with
          | exception _ -> (placeholder (), f.f_detail, "")
          | _ when f.f_prop = "generate" -> (placeholder (), f.f_detail, "")
          | inst -> (
              match List.find_opt (fun (e : P.entry) -> e.P.name = f.f_policy) cfg.policies with
              | None -> (inst, f.f_detail, "")
              | Some entry ->
                  let shrunk, detail =
                    shrink ~max_evals:cfg.max_shrink entry f.f_prop inst f.f_detail
                  in
                  (shrunk, detail, capture_forensics entry shrunk))
        in
        { scenario; policy = f.f_policy; prop = f.f_prop; detail; shrunk; forensics })
      !raw_failures
  in
  { evaluated = !evaluated; coverage = SSet.cardinal !coverage; failures }

let report_to_string r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "fuzz: %d scenarios evaluated, %d coverage points, %d failures\n" r.evaluated
       r.coverage (List.length r.failures));
  List.iteri
    (fun k f ->
      Buffer.add_string buf
        (Printf.sprintf "failure %d: policy %s violates %s on %s (shrunk to n=%d m=%d)\n  %s\n" k
           f.policy f.prop (Scenario.label f.scenario) (Instance.n f.shrunk) (Instance.m f.shrunk)
           f.detail))
    r.failures;
  Buffer.contents buf
