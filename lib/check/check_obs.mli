(** Oracle results as {!Sched_obs} telemetry.

    Fuzz runs and [?check]-instrumented simulations record their oracle
    verdicts here, so `--telemetry` snapshots show how many schedules
    were audited and which checkers fired. *)

val record : Sched_obs.Registry.t -> Violation.t list -> unit
(** Bumps [sched_check_schedules_total]; on a clean list also bumps
    [sched_check_clean_total]; otherwise bumps
    [sched_check_violations_total{check="<name>"}] once per violation.
    Registration is get-or-create, so repeated calls accumulate into the
    same cells. *)

val violation_totals : Sched_obs.Registry.t -> (string * float) list
(** The recorded per-check counts, sorted by check label — a convenience
    for tests and report rendering. *)
