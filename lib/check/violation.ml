open Sched_model

type check =
  | Segment_bounds
  | Release_respect
  | Machine_overlap
  | Non_preemption
  | Outcome_consistency
  | Exactly_once
  | Deadline
  | Rejection_budget
  | Metric_drift

let all_checks =
  [
    Segment_bounds;
    Release_respect;
    Machine_overlap;
    Non_preemption;
    Outcome_consistency;
    Exactly_once;
    Deadline;
    Rejection_budget;
    Metric_drift;
  ]

let check_name = function
  | Segment_bounds -> "segment-bounds"
  | Release_respect -> "release-respect"
  | Machine_overlap -> "machine-overlap"
  | Non_preemption -> "non-preemption"
  | Outcome_consistency -> "outcome-consistency"
  | Exactly_once -> "exactly-once"
  | Deadline -> "deadline"
  | Rejection_budget -> "rejection-budget"
  | Metric_drift -> "metric-drift"

let check_of_name name = List.find_opt (fun c -> check_name c = name) all_checks

let check_rank c =
  let rec go k = function
    | [] -> k
    | c' :: rest -> if c' = c then k else go (k + 1) rest
  in
  go 0 all_checks

type t = {
  check : check;
  job : Job.id option;
  machine : Machine.id option;
  at : Time.t option;
  detail : string;
}

let make ?job ?machine ?at check detail = { check; job; machine; at; detail }

let cmp_opt cmp a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> cmp x y

let compare a b =
  match Int.compare (check_rank a.check) (check_rank b.check) with
  | 0 -> (
      match cmp_opt Int.compare a.job b.job with
      | 0 -> (
          match cmp_opt Int.compare a.machine b.machine with
          | 0 -> (
              match cmp_opt Float.compare a.at b.at with
              | 0 -> String.compare a.detail b.detail
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let pp ppf v =
  Format.fprintf ppf "[%s]" (check_name v.check);
  (match v.job with Some j -> Format.fprintf ppf " job %d" j | None -> ());
  (match v.machine with Some m -> Format.fprintf ppf " machine %d" m | None -> ());
  (match v.at with Some t -> Format.fprintf ppf " at %g" t | None -> ());
  Format.fprintf ppf ": %s" v.detail

let to_string v = Format.asprintf "%a" pp v

let pp_list ppf vs =
  Format.fprintf ppf "%d violation%s" (List.length vs) (if List.length vs = 1 then "" else "s");
  List.iter (fun v -> Format.fprintf ppf "@\n  %a" pp v) vs
