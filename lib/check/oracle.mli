(** The schedule oracle: pure, from-scratch validation of a
    {!Sched_model.Schedule.t} against its instance.

    Every checker re-derives the property it guards from the raw segment
    list and outcome array — independently of the incremental bookkeeping
    in the simulator — and reports structured {!Violation.t} records.  An
    empty list means the schedule is oracle-clean.

    The structural checkers deliberately re-implement (rather than call)
    {!Sched_model.Schedule.validate}: the oracle is the second opinion
    that keeps the fast path honest, so it must not share code with the
    layer it audits. *)

open Sched_model

(** {1 Validation mode} *)

type mode = {
  allow_parallel : bool;  (** Section 4 model: segments on one machine may overlap. *)
  allow_restarts : bool;
      (** Restart relaxation: jobs may carry aborted partial segments
          before their final run. *)
  check_deadlines : bool option;
      (** [None] (default) checks iff the instance carries deadlines. *)
}

val strict : mode
(** No parallelism, no restarts, deadlines per instance. *)

val mode :
  ?allow_parallel:bool -> ?allow_restarts:bool -> ?check_deadlines:bool -> unit -> mode

(** {1 Rejection budgets} *)

type budget =
  | Count_fraction of float
      (** At most this fraction of the jobs may be rejected (Theorem 1's
          [2 eps]). *)
  | Weight_fraction of float
      (** At most this fraction of the total weight may be rejected
          (the weighted and flow+energy policies' [2 eps] / [eps]). *)

val pp_budget : Format.formatter -> budget -> unit

(** {1 Checkers}

    Each returns its violations sorted by {!Violation.compare}; an empty
    list is a pass. *)

val structural : ?mode:mode -> Schedule.t -> Violation.t list
(** Segment sanity, release respect, per-machine disjointness,
    non-preemption, outcome/segment consistency, exactly-once coverage
    and (per [mode]) deadlines. *)

val budget_check : budget -> Schedule.t -> Violation.t list
(** Recounts rejections from the outcome array and compares against the
    budget (with 1e-9 absolute slack on the fraction, matching the
    theorem-level tests). *)

type snapshot = {
  flow : Metrics.flow;
  energy : float;
  rejection : Metrics.rejection;
  makespan : Time.t;
}
(** A claimed set of objective values — in practice the simulator's
    incremental {!Sched_sim.Driver.live_metrics}, mirrored here so this
    library stays below the simulator in the dependency order. *)

val reconcile : ?tol:float -> snapshot -> Schedule.t -> Violation.t list
(** Recomputes every metric from scratch ({!Sched_model.Metrics}) and
    compares field by field.  [tol] is a relative tolerance (default
    [1e-9]: float accumulation order differs between the incremental and
    post-hoc passes); pass [~tol:0.] on dyadic instances to demand
    bit-for-bit agreement.  Integer fields (rejection counts) are always
    compared exactly. *)

val check :
  ?mode:mode -> ?budget:budget -> ?live:snapshot -> ?tol:float -> Schedule.t -> Violation.t list
(** The full suite: {!structural}, then {!budget_check} (when a budget is
    given), then {!reconcile} (when a snapshot is given). *)

(** {1 Reporting} *)

val report : Violation.t list -> string
(** Multi-line human-readable rendering (deterministic: input order is
    preserved, and the checkers sort). *)

exception Violations of string * Violation.t list
(** Carried by {!assert_clean}; the string names the run being checked. *)

val assert_clean : what:string -> Violation.t list -> unit
(** Raises {!Violations} when the list is non-empty. *)
