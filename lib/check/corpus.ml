open Sched_model

type case = { name : string; policy : string; instance : Instance.t }

(* One case per behavioural corner: tie-breaking, restricted eligibility,
   heavy tails, mid-run rejection, weighted rejection, speed scaling,
   restarts and the Lemma 1 adversarial stream.  Policies are referenced
   by registry name so replay picks up the current implementation. *)
let seed_coords =
  [
    ("ties-greedy-spt", "greedy-spt", { Scenario.family = "ties"; seed = 1; n = 12; m = 3 });
    ("ties-flow-reject", "flow-reject", { Scenario.family = "ties"; seed = 2; n = 16; m = 2 });
    ( "restricted-flow-reject",
      "flow-reject",
      { Scenario.family = "restricted"; seed = 5; n = 40; m = 4 } );
    ( "pareto-immediate-load",
      "immediate-load",
      { Scenario.family = "pareto"; seed = 7; n = 60; m = 3 } );
    ( "bimodal-flow-reject-weighted",
      "flow-reject-weighted",
      { Scenario.family = "bimodal"; seed = 11; n = 48; m = 3 } );
    ( "weighted-flow-energy-reject",
      "flow-energy-reject",
      { Scenario.family = "weighted"; seed = 13; n = 36; m = 2 } );
    ( "related-restart-spt",
      "restart-spt",
      { Scenario.family = "related"; seed = 17; n = 40; m = 3 } );
    ( "adversary-immediate-largest",
      "immediate-largest",
      { Scenario.family = "adversary"; seed = 1; n = 0; m = 0 } );
    ( "diurnal-greedy-fifo",
      "greedy-fifo",
      { Scenario.family = "diurnal"; seed = 23; n = 64; m = 4 } );
    (* Distilled from rebatch (stream-vs-batch) fuzzing: clustered
       arrivals put several releases inside one feed chunk while earlier
       jobs are still finishing, so the drain horizon repeatedly lands
       exactly on a completion key — the corner where a streaming
       ordering bug would first diverge from the batch run. *)
    ( "clustered-stream-flow-reject",
      "flow-reject",
      { Scenario.family = "clustered"; seed = 29; n = 24; m = 3 } );
  ]

let seeds () =
  List.map
    (fun (name, policy, coord) -> { name; policy; instance = Scenario.instance coord })
    seed_coords

let render c =
  String.concat ""
    [
      "rejsched-fuzz-case v1\n";
      "name " ^ c.name ^ "\n";
      "policy " ^ c.policy ^ "\n";
      Serialize.instance_to_string c.instance;
    ]

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec header name policy = function
    | [] -> Error "missing instance payload"
    | line :: rest -> (
        let line' = String.trim line in
        match String.split_on_char ' ' line' with
        | [ "rejsched-fuzz-case"; "v1" ] -> header name policy rest
        | "name" :: more -> header (Some (String.concat " " more)) policy rest
        | "policy" :: more -> header name (Some (String.concat " " more)) rest
        | [ "rejsched-instance"; "v1" ] -> (
            match (name, policy) with
            | Some name, Some policy -> (
                match Serialize.instance_of_string (String.concat "\n" (line :: rest)) with
                | Ok instance -> Ok { name; policy; instance }
                | Error e -> Error e)
            | None, _ -> Error "missing name header"
            | _, None -> Error "missing policy header")
        | [ "" ] -> header name policy rest
        | tok :: _ -> Error (Printf.sprintf "unknown header %S" tok)
        | [] -> header name policy rest)
  in
  header None None lines

let filename c = c.name ^ ".case"
