(** Structured oracle violations.

    Every checker in {!Oracle} reports failures as a list of these records
    instead of booleans or bare strings, so callers can aggregate by check
    (telemetry counters), sort deterministically (shrinker fixpoints,
    byte-identical fuzz reports at any pool width) and still print a
    human-readable diagnosis. *)

open Sched_model

(** The invariant families the oracle enforces.  One constructor per
    checker; {!check_name} gives the stable label used for telemetry
    counters and corpus metadata. *)
type check =
  | Segment_bounds  (** Segment on a known machine, [start < stop], finite positive speed. *)
  | Release_respect  (** No segment begins before its job's release. *)
  | Machine_overlap  (** Two segments on one machine intersect in time. *)
  | Non_preemption  (** A completed job has more than its single final segment. *)
  | Outcome_consistency
      (** Outcome record disagrees with the laid segments (machine, start,
          finish, processed volume, rejection causality). *)
  | Exactly_once
      (** A job is neither cleanly served nor cleanly rejected: stray
          segments for settled jobs, or a segment of an unknown job. *)
  | Deadline  (** A completed job finishes after its deadline. *)
  | Rejection_budget  (** Rejected fraction exceeds the policy's budget. *)
  | Metric_drift
      (** Incremental metrics disagree with a from-scratch recomputation. *)

val check_name : check -> string
(** Stable kebab-case label, e.g. ["machine-overlap"]. *)

val check_of_name : string -> check option

val all_checks : check list
(** Every constructor, in a fixed order (the order counters export in). *)

type t = {
  check : check;
  job : Job.id option;
  machine : Machine.id option;
  at : Time.t option;  (** The instant the violation is anchored at, if any. *)
  detail : string;
}

val make : ?job:Job.id -> ?machine:Machine.id -> ?at:Time.t -> check -> string -> t

val compare : t -> t -> int
(** Total order: check, then job, machine, time and finally detail — so a
    sorted violation list is a canonical artifact. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val pp_list : Format.formatter -> t list -> unit
(** One violation per line, prefixed with a count header. *)
