(** Coverage-guided scenario fuzzing of every registered policy.

    Each {!Scenario} drawn from the worklist is expanded into an instance
    and every policy in the configured registry slice is run on it and
    audited five ways:

    - {b oracle}: the full {!Oracle.check} — structural invariants, the
      policy's theorem rejection budget, and reconciliation of the driver's
      incremental metrics against a from-scratch recomputation;
    - {b permute}: re-presenting the job list in a shuffled order must
      yield a byte-identical schedule dump (the instance is canonicalized
      on construction, so any difference is hidden input-order dependence);
    - {b relabel}: renaming machines must leave the policy oracle-clean and
      within budget (schedules may legitimately differ — policies break
      argmin ties by machine id);
    - {b scale}: doubling the time unit (a power of two, hence exact in
      binary floating point) must scale total and weighted flow by exactly
      two and preserve every rejection decision;
    - {b rebatch}: streaming the same jobs through an incremental
      {!Sched_sim.Driver.Session} in arrival chunks (one at a time, a
      fixed stride, a varying stride) must reproduce the one-shot batch
      schedule byte for byte — how the stream is chopped is unobservable.

    Behavioural coverage — which (policy, family, feature-bits) triples
    have been observed, where the bits record rejections, mid-run
    rejections, multi-segment jobs, deadlines and non-unit weights — steers
    the walk: a scenario that exhibits a novel triple gets its
    {!Scenario.mutants} enqueued.

    Failures are shrunk by re-running the failing property on smaller
    instances (dropping job halves, single jobs, then whole machines, with
    ids renumbered) until no smaller instance still fails.

    Everything is deterministic for a fixed [seed] and [budget]: the
    worklist is FIFO, evaluation fans out through a
    {!Sched_stats.Pool} in fixed-size generations whose results are merged
    in input order, so reports are byte-identical at any pool width. *)

open Sched_model

type config = {
  seed : int;
  budget : int;  (** Maximum scenarios to evaluate. *)
  policies : Sched_experiments.Policy_registry.entry list;
  max_shrink : int;  (** Candidate evaluations allowed per failure shrink. *)
  max_failures : int;  (** Stop collecting (not evaluating) beyond this. *)
}

val config :
  ?budget:int ->
  ?policies:Sched_experiments.Policy_registry.entry list ->
  ?max_shrink:int ->
  ?max_failures:int ->
  seed:int ->
  unit ->
  config
(** Defaults: budget 60, the full registry, 400 shrink evaluations, 25
    collected failures. *)

type failure = {
  scenario : Scenario.t;
  policy : string;
  prop : string;  (** ["oracle" | "permute" | "relabel" | "scale" | "rebatch"]. *)
  detail : string;
  shrunk : Instance.t;  (** Smallest instance still failing [prop]. *)
  forensics : string;
      (** Flight-recorder dump of the shrunk repro: the failing policy is
          replayed with a {!Sched_obs.Recorder} attached and the last
          recorded decisions are kept as [rejsched.trace/2] NDJSON (the
          replay surviving an exception mid-run still leaves its events
          in the ring).  [""] when nothing could be replayed, e.g. for
          scenario-generation failures. *)
}

type report = {
  evaluated : int;  (** Scenarios actually expanded and run. *)
  coverage : int;  (** Distinct (policy, family, feature-bits) triples. *)
  failures : failure list;
}

val run :
  ?progress:(string -> unit) ->
  ?registry:Sched_obs.Registry.t ->
  pool:Sched_stats.Pool.t ->
  config ->
  report
(** Runs the fuzz loop on [pool].  [progress] receives one line per
    generation; [registry] accumulates {!Check_obs} counters for every
    audited schedule.  Pure aside from those two hooks. *)

val report_to_string : report -> string
(** Human-readable summary: totals plus one block per failure (shrunk
    instances are rendered separately via {!Sched_model.Serialize}). *)

val property_fails :
  Sched_experiments.Policy_registry.entry -> string -> Instance.t -> string option
(** [property_fails entry prop inst] re-evaluates one named property;
    [None] means it holds.  Exposed for corpus replay and the shrinker's
    tests. *)
