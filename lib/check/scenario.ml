module W = Sched_workload

type t = { family : string; seed : int; n : int; m : int }

let families =
  [
    "uniform";
    "pareto";
    "bimodal";
    "restricted";
    "related";
    "clustered";
    "diurnal";
    "weighted";
    "deadline";
    "ties";
    "adversary";
  ]

(* The energy-model exponent every energy workload in the repo uses. *)
let alpha = 3.

let instance t =
  let n = max 1 t.n and m = max 1 t.m in
  match t.family with
  | "uniform" -> W.Gen.instance (W.Suite.flow_uniform ~n ~m) ~seed:t.seed
  | "pareto" -> W.Gen.instance (W.Suite.flow_pareto ~n ~m) ~seed:t.seed
  | "bimodal" -> W.Gen.instance (W.Suite.flow_bimodal ~n ~m) ~seed:t.seed
  | "restricted" -> W.Gen.instance (W.Suite.flow_restricted ~n ~m) ~seed:t.seed
  | "related" -> W.Gen.instance (W.Suite.flow_related ~n ~m) ~seed:t.seed
  | "clustered" -> W.Gen.instance (W.Suite.flow_clustered ~n ~m) ~seed:t.seed
  | "diurnal" -> W.Gen.instance (W.Suite.flow_diurnal ~n ~m) ~seed:t.seed
  | "weighted" -> W.Gen.instance (W.Suite.weighted_energy ~n ~m ~alpha) ~seed:t.seed
  | "deadline" -> W.Gen.instance (W.Suite.deadline_energy ~n ~m ~alpha) ~seed:t.seed
  | "ties" ->
      (* Everything at time 0 with one identical size: every dispatch,
         select and victim choice is decided purely by tie-breaks — the
         corner where ordering bugs hide. *)
      let gen =
        W.Gen.make ~name:"ties" ~arrivals:W.Gen.All_at_zero
          ~sizes:(Sched_stats.Dist.constant 2.) ~n ~m ()
      in
      W.Gen.instance gen ~seed:t.seed
  | "adversary" ->
      (* The Lemma 1 lower-bound stream (big blockers, then a burst of
         mice), instantiated non-adaptively at observed start 0. *)
      let l = 2. ** float_of_int (1 + (abs t.seed mod 3)) in
      let r = W.Adversary_flow.build ~eps:0.3 ~l ~observed_start:0. in
      r.W.Adversary_flow.instance
  | f -> invalid_arg (Printf.sprintf "Scenario.instance: unknown family %S" f)

let label t = Printf.sprintf "%s/s%d/n%d/m%d" t.family t.seed t.n t.m

(* A tiny deterministic string salt so each family explores different
   seeds; nothing about it needs to be a good hash. *)
let family_salt f = String.fold_left (fun acc c -> (acc * 31) + Char.code c) 0 f mod 1000

let base ~seed =
  let sizes = [ (12, 2); (40, 3); (80, 5) ] in
  List.concat_map
    (fun family ->
      List.mapi (fun k (n, m) -> { family; seed = (seed * 257) + (31 * k) + family_salt family; n; m }) sizes)
    families

let mutants t =
  [
    { t with seed = (t.seed * 7) + 1 };
    { t with seed = (t.seed * 7) + 3 };
    { t with n = max 4 (t.n / 2); seed = t.seed + 5 };
    { t with n = min 320 (t.n * 2); seed = t.seed + 11 };
    { t with m = max 1 (t.m - 1); seed = t.seed + 13 };
    { t with m = min 12 (t.m + 1); seed = t.seed + 17 };
  ]
