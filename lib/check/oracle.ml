open Sched_model

type mode = {
  allow_parallel : bool;
  allow_restarts : bool;
  check_deadlines : bool option;
}

let strict = { allow_parallel = false; allow_restarts = false; check_deadlines = None }

let mode ?(allow_parallel = false) ?(allow_restarts = false) ?check_deadlines () =
  { allow_parallel; allow_restarts; check_deadlines }

type budget = Count_fraction of float | Weight_fraction of float

let pp_budget ppf = function
  | Count_fraction f -> Format.fprintf ppf "count-fraction <= %g" f
  | Weight_fraction f -> Format.fprintf ppf "weight-fraction <= %g" f

(* Same relative slack as the model-layer validator: simulation arithmetic
   is a handful of float operations per segment. *)
let vol_close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.max a b)

let seg_volume (sg : Schedule.segment) = (sg.Schedule.stop -. sg.Schedule.start) *. sg.Schedule.speed

let cmp_seg_time (a : Schedule.segment) (b : Schedule.segment) =
  match Float.compare a.Schedule.start b.Schedule.start with
  | 0 -> (
      match Float.compare a.Schedule.stop b.Schedule.stop with
      | 0 -> Int.compare a.Schedule.job b.Schedule.job
      | c -> c)
  | c -> c

let structural ?(mode = strict) (s : Schedule.t) =
  let inst = s.Schedule.instance in
  let n = Instance.n inst and m = Instance.m inst in
  let check_deadlines =
    match mode.check_deadlines with Some b -> b | None -> Instance.has_deadlines inst
  in
  let errs = ref [] in
  let add ?job ?machine ?at check fmt =
    Printf.ksprintf (fun d -> errs := Violation.make ?job ?machine ?at check d :: !errs) fmt
  in
  (* Per-segment sanity. *)
  List.iter
    (fun (sg : Schedule.segment) ->
      if sg.Schedule.machine < 0 || sg.Schedule.machine >= m then
        add ~job:sg.Schedule.job ~at:sg.Schedule.start Violation.Segment_bounds
          "segment lies on unknown machine %d" sg.Schedule.machine;
      if not (Time.lt sg.Schedule.start sg.Schedule.stop) then
        add ~job:sg.Schedule.job ~machine:sg.Schedule.machine ~at:sg.Schedule.start
          Violation.Segment_bounds "empty or reversed segment [%g,%g]" sg.Schedule.start
          sg.Schedule.stop;
      if not (sg.Schedule.speed > 0. && Float.is_finite sg.Schedule.speed) then
        add ~job:sg.Schedule.job ~machine:sg.Schedule.machine ~at:sg.Schedule.start
          Violation.Segment_bounds "non-positive or non-finite speed %g" sg.Schedule.speed;
      if sg.Schedule.job < 0 || sg.Schedule.job >= n then
        add ~machine:sg.Schedule.machine ~at:sg.Schedule.start Violation.Exactly_once
          "segment references unknown job %d" sg.Schedule.job
      else begin
        let j = Instance.job inst sg.Schedule.job in
        if Time.lt sg.Schedule.start j.Job.release then
          add ~job:sg.Schedule.job ~machine:sg.Schedule.machine ~at:sg.Schedule.start
            Violation.Release_respect "execution starts at %g before release %g" sg.Schedule.start
            j.Job.release
      end)
    s.Schedule.segments;
  (* Per-machine interval disjointness. *)
  if not mode.allow_parallel then begin
    let per = Array.make m [] in
    List.iter
      (fun (sg : Schedule.segment) ->
        if sg.Schedule.machine >= 0 && sg.Schedule.machine < m then
          per.(sg.Schedule.machine) <- sg :: per.(sg.Schedule.machine))
      s.Schedule.segments;
    Array.iteri
      (fun i segs ->
        let rec go = function
          | (a : Schedule.segment) :: ((b : Schedule.segment) :: _ as rest) ->
              if Time.gt a.Schedule.stop b.Schedule.start then
                add ~job:b.Schedule.job ~machine:i ~at:b.Schedule.start Violation.Machine_overlap
                  "segment of job %d [%g,%g] overlaps job %d starting at %g" a.Schedule.job
                  a.Schedule.start a.Schedule.stop b.Schedule.job b.Schedule.start;
              go rest
          | _ -> ()
        in
        go (List.sort cmp_seg_time segs))
      per
  end;
  (* Per-job outcome/segment consistency. *)
  let by_job = Array.make n [] in
  List.iter
    (fun (sg : Schedule.segment) ->
      if sg.Schedule.job >= 0 && sg.Schedule.job < n then
        by_job.(sg.Schedule.job) <- sg :: by_job.(sg.Schedule.job))
    s.Schedule.segments;
  for id = 0 to n - 1 do
    let j = Instance.job inst id in
    let segs = List.sort cmp_seg_time by_job.(id) in
    match Schedule.outcome s id with
    | Outcome.Completed c -> begin
        match List.rev segs with
        | [] -> add ~job:id Violation.Exactly_once "completed but laid no segment"
        | final :: earlier_rev ->
            let earlier = List.rev earlier_rev in
            if final.Schedule.machine <> c.Outcome.machine then
              add ~job:id ~machine:final.Schedule.machine Violation.Outcome_consistency
                "final segment on machine %d but outcome records machine %d"
                final.Schedule.machine c.Outcome.machine;
            if
              not
                (Time.equal final.Schedule.start c.Outcome.start
                && Time.equal final.Schedule.stop c.Outcome.finish)
            then
              add ~job:id ~machine:final.Schedule.machine ~at:final.Schedule.start
                Violation.Outcome_consistency "final segment [%g,%g] mismatches outcome [%g,%g]"
                final.Schedule.start final.Schedule.stop c.Outcome.start c.Outcome.finish;
            if final.Schedule.machine >= 0 && final.Schedule.machine < m then begin
              let size = Job.size j final.Schedule.machine in
              if not (vol_close (seg_volume final) size) then
                add ~job:id ~machine:final.Schedule.machine Violation.Outcome_consistency
                  "processed volume %g but size is %g" (seg_volume final) size
            end;
            if check_deadlines then begin
              match j.Job.deadline with
              | Some d when Time.gt c.Outcome.finish d ->
                  add ~job:id ~at:c.Outcome.finish Violation.Deadline
                    "finishes at %g after deadline %g" c.Outcome.finish d
              | _ -> ()
            end;
            if earlier <> [] && not mode.allow_restarts then
              add ~job:id Violation.Non_preemption
                "completed job split across %d segments (preempted?)" (List.length segs)
            else
              List.iter
                (fun (sg : Schedule.segment) ->
                  if
                    sg.Schedule.machine >= 0 && sg.Schedule.machine < m
                    && seg_volume sg >= Job.size j sg.Schedule.machine -. 1e-9
                  then
                    add ~job:id ~machine:sg.Schedule.machine Violation.Outcome_consistency
                      "aborted attempt processed its full size %g" (seg_volume sg);
                  if Time.gt sg.Schedule.stop c.Outcome.start then
                    add ~job:id ~at:sg.Schedule.stop Violation.Outcome_consistency
                      "aborted attempt [%g,%g] overlaps the final run starting at %g"
                      sg.Schedule.start sg.Schedule.stop c.Outcome.start)
                earlier
      end
    | Outcome.Rejected r -> begin
        if Time.lt r.Outcome.time j.Job.release then
          add ~job:id ~at:r.Outcome.time Violation.Outcome_consistency
            "rejected at %g before release %g" r.Outcome.time j.Job.release;
        List.iter
          (fun (sg : Schedule.segment) ->
            if Time.gt sg.Schedule.stop r.Outcome.time then
              add ~job:id ~at:sg.Schedule.stop Violation.Outcome_consistency
                "partial segment ends at %g after rejection at %g" sg.Schedule.stop r.Outcome.time;
            if
              sg.Schedule.machine >= 0 && sg.Schedule.machine < m
              && seg_volume sg >= Job.size j sg.Schedule.machine -. 1e-9
            then
              add ~job:id ~machine:sg.Schedule.machine Violation.Outcome_consistency
                "rejected after processing its full size")
          segs;
        match segs with
        | [] ->
            if r.Outcome.was_running then
              add ~job:id ~at:r.Outcome.time Violation.Outcome_consistency
                "rejected mid-run but laid no segment"
        | [ _ ] ->
            if not (r.Outcome.was_running || mode.allow_restarts) then
              add ~job:id Violation.Outcome_consistency
                "laid a segment but the rejection records was_running = false"
        | _ :: _ :: _ ->
            if not mode.allow_restarts then
              add ~job:id Violation.Exactly_once "rejected job has %d segments" (List.length segs)
      end
  done;
  List.sort_uniq Violation.compare !errs

let budget_check budget (s : Schedule.t) =
  let r = Metrics.rejection s in
  let fail limit actual what =
    [
      Violation.make Violation.Rejection_budget
        (Printf.sprintf "%s %.9g exceeds budget %g" what actual limit);
    ]
  in
  match budget with
  | Count_fraction f -> if r.Metrics.fraction <= f +. 1e-9 then [] else fail f r.Metrics.fraction "rejected count fraction"
  | Weight_fraction f ->
      if r.Metrics.weight_fraction <= f +. 1e-9 then []
      else fail f r.Metrics.weight_fraction "rejected weight fraction"

type snapshot = {
  flow : Metrics.flow;
  energy : float;
  rejection : Metrics.rejection;
  makespan : Time.t;
}

let reconcile ?(tol = 1e-9) snap (s : Schedule.t) =
  let errs = ref [] in
  let close a b = Float.abs (a -. b) <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  let num field claimed actual =
    if not (close claimed actual) then
      errs :=
        Violation.make Violation.Metric_drift
          (Printf.sprintf "%s: incremental %.17g vs recomputed %.17g (tol %g)" field claimed
             actual tol)
        :: !errs
  in
  let int_field field claimed actual =
    if claimed <> actual then
      errs :=
        Violation.make Violation.Metric_drift
          (Printf.sprintf "%s: incremental %d vs recomputed %d" field claimed actual)
        :: !errs
  in
  let f = Metrics.flow s in
  num "flow.total" snap.flow.Metrics.total f.Metrics.total;
  num "flow.weighted" snap.flow.Metrics.weighted f.Metrics.weighted;
  num "flow.total_with_rejected" snap.flow.Metrics.total_with_rejected
    f.Metrics.total_with_rejected;
  num "flow.weighted_with_rejected" snap.flow.Metrics.weighted_with_rejected
    f.Metrics.weighted_with_rejected;
  num "flow.max_flow" snap.flow.Metrics.max_flow f.Metrics.max_flow;
  num "flow.mean_flow" snap.flow.Metrics.mean_flow f.Metrics.mean_flow;
  num "flow.max_stretch" snap.flow.Metrics.max_stretch f.Metrics.max_stretch;
  num "energy" snap.energy (Metrics.energy s);
  num "makespan" snap.makespan (Metrics.makespan s);
  let r = Metrics.rejection s in
  int_field "rejection.count" snap.rejection.Metrics.count r.Metrics.count;
  int_field "rejection.mid_run" snap.rejection.Metrics.mid_run r.Metrics.mid_run;
  num "rejection.fraction" snap.rejection.Metrics.fraction r.Metrics.fraction;
  num "rejection.weight" snap.rejection.Metrics.weight r.Metrics.weight;
  num "rejection.weight_fraction" snap.rejection.Metrics.weight_fraction
    r.Metrics.weight_fraction;
  List.sort Violation.compare !errs

let check ?mode:(md = strict) ?budget ?live ?tol s =
  let vs = structural ~mode:md s in
  let vs = match budget with None -> vs | Some b -> vs @ budget_check b s in
  match live with None -> vs | Some snap -> vs @ reconcile ?tol snap s

let report vs = Format.asprintf "%a" Violation.pp_list vs

exception Violations of string * Violation.t list

let () =
  Printexc.register_printer (function
    | Violations (what, vs) -> Some (Printf.sprintf "Oracle.Violations(%s): %s" what (report vs))
    | _ -> None)

let assert_clean ~what = function [] -> () | vs -> raise (Violations (what, vs))
