let schedules_total = "sched_check_schedules_total"
let clean_total = "sched_check_clean_total"
let violations_total = "sched_check_violations_total"

let record registry violations =
  Sched_obs.Metric.Counter.inc
    (Sched_obs.Registry.counter registry ~help:"Schedules audited by the oracle" schedules_total);
  match violations with
  | [] ->
      Sched_obs.Metric.Counter.inc
        (Sched_obs.Registry.counter registry ~help:"Schedules the oracle found clean" clean_total)
  | vs ->
      List.iter
        (fun (v : Violation.t) ->
          Sched_obs.Metric.Counter.inc
            (Sched_obs.Registry.counter registry ~help:"Oracle violations by checker"
               ~labels:[ ("check", Violation.check_name v.Violation.check) ]
               violations_total))
        vs

let violation_totals registry =
  List.filter_map
    (fun (e : Sched_obs.Registry.entry) ->
      match e.Sched_obs.Registry.instrument with
      | Sched_obs.Registry.Counter c when e.Sched_obs.Registry.name = violations_total -> (
          match List.assoc_opt "check" e.Sched_obs.Registry.labels with
          | Some check -> Some (check, Sched_obs.Metric.Counter.value c)
          | None -> None)
      | _ -> None)
    (Sched_obs.Registry.entries registry)
