(** The fuzzer's seed corpus: named (instance, policy) regression cases.

    Cases found interesting by fuzzing — tie-heavy, restricted-eligibility,
    adversarial — are checked into [test/fuzz_corpus/] in the textual
    format below and replayed under [dune runtest]: each case's policy must
    run oracle-clean on its instance forever after.

    {v
    rejsched-fuzz-case v1
    name <case name>
    policy <registry policy name>
    rejsched-instance v1
    ...                       (the Serialize instance format)
    v} *)

type case = { name : string; policy : string; instance : Sched_model.Instance.t }

val seeds : unit -> case list
(** The built-in seed corpus, rebuilt deterministically from {!Scenario}
    coordinates.  The checked-in [test/fuzz_corpus/] files are renderings
    of exactly this list ([rejsched fuzz --write-seed-corpus]); a replay
    test pins the equality so the files cannot drift silently. *)

val render : case -> string
val parse : string -> (case, string) result
val filename : case -> string
(** ["<name>.case"]. *)
