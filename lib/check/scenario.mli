(** Points in instance space for the scenario fuzzer.

    A scenario is a small, serializable coordinate — family, seed, size —
    that expands deterministically into an {!Sched_model.Instance.t}.  The
    fuzzer walks this space: it starts from {!base}, and whenever a run
    exhibits novel behaviour it enqueues {!mutants} of the scenario that
    produced it (coverage-guided search).

    Families cover the generator suite (uniform, Pareto, bimodal,
    restricted assignment, related, clustered, diurnal), the weighted and
    deadline energy workloads, plus two adversarial corners the suite never
    produces: [ties] (everything released at once with identical sizes, so
    every policy decision is a tie-break) and [adversary] (the Lemma 1
    lower-bound construction). *)

type t = { family : string; seed : int; n : int; m : int }

val families : string list
(** All family names, in a fixed order. *)

val instance : t -> Sched_model.Instance.t
(** Deterministic expansion; equal scenarios yield identical instances.
    Raises [Invalid_argument] on an unknown family. *)

val label : t -> string
(** ["family/s<seed>/n<n>/m<m>"] — stable across runs, used in reports and
    coverage keys. *)

val base : seed:int -> t list
(** The initial worklist: every family at a few sizes, with per-scenario
    seeds derived deterministically from [seed]. *)

val mutants : t -> t list
(** Neighbouring scenarios (reseeded, halved/doubled job count, one
    machine more/fewer), enqueued when [t]'s evaluation covered something
    new.  Deterministic, bounded sizes. *)
