type id = int
type t = { id : id; speed : float; alpha : float }

let create ~id ?(speed = 1.0) ?(alpha = 3.0) () =
  if speed <= 0. || not (Float.is_finite speed) then
    invalid_arg "Machine.create: speed must be positive and finite";
  if alpha < 1.0 || not (Float.is_finite alpha) then
    invalid_arg "Machine.create: alpha must be >= 1";
  { id; speed; alpha }

let with_speed t speed = create ~id:t.id ~speed ~alpha:t.alpha ()

let fleet ?(speed = 1.0) ?(alpha = 3.0) m =
  if m <= 0 then invalid_arg "Machine.fleet: need at least one machine";
  Array.init m (fun id -> create ~id ~speed ~alpha ())

let pp ppf t = Format.fprintf ppf "machine#%d[speed=%g alpha=%g]" t.id t.speed t.alpha
