type t = { name : string; machines : Machine.t array; jobs : Job.t array }

let create ?(name = "instance") ~machines ~jobs () =
  let m = Array.length machines in
  if m = 0 then invalid_arg "Instance.create: no machines";
  Array.iteri
    (fun i (mc : Machine.t) ->
      if mc.id <> i then invalid_arg "Instance.create: machine ids must be 0..m-1")
    machines;
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let seen = Array.make n false in
  Array.iter
    (fun (j : Job.t) ->
      if Array.length j.sizes <> m then
        invalid_arg
          (Printf.sprintf "Instance.create: job %d has %d sizes for %d machines" j.id
             (Array.length j.sizes) m);
      if j.id < 0 || j.id >= n || seen.(j.id) then
        invalid_arg "Instance.create: job ids must form 0..n-1";
      seen.(j.id) <- true)
    jobs;
  Array.sort Job.compare_by_release jobs;
  { name; machines; jobs }

let n t = Array.length t.jobs
let m t = Array.length t.machines

(* Jobs are stored in release order; id lookup goes through a lazy-free
   linear scan only when the array is not identity-indexed.  We keep it
   simple: build lookups on demand via find.  Instances are small enough that
   a scan would do, but policies call [job] in hot loops, so we memoize an
   index array per instance using a weak-free global cache keyed by physical
   equality.  Simpler and safe: compute the index eagerly at creation is not
   possible on a private record easily here, so scan. *)
let job t id =
  let jobs = t.jobs in
  let n = Array.length jobs in
  (* Common case: release-order position equals id. *)
  if id >= 0 && id < n && jobs.(id).Job.id = id then jobs.(id)
  else begin
    let rec find i =
      if i >= n then invalid_arg (Printf.sprintf "Instance.job: unknown id %d" id)
      else if jobs.(i).Job.id = id then jobs.(i)
      else find (i + 1)
    in
    find 0
  end

let machine t id = t.machines.(id)
let jobs_by_release t = t.jobs
let total_weight t = Array.fold_left (fun acc (j : Job.t) -> acc +. j.weight) 0. t.jobs

let total_min_volume t =
  Array.fold_left (fun acc j -> acc +. Job.min_size j) 0. t.jobs

let delta t =
  let mx = ref 0. and mn = ref Float.infinity in
  Array.iter
    (fun (j : Job.t) ->
      Array.iter
        (fun p ->
          if Float.is_finite p then begin
            if p > !mx then mx := p;
            if p < !mn then mn := p
          end)
        j.sizes)
    t.jobs;
  if !mn = Float.infinity then 1. else !mx /. !mn

let has_deadlines t =
  Array.length t.jobs > 0
  && Array.for_all (fun (j : Job.t) -> Option.is_some j.deadline) t.jobs

let horizon t =
  let latest =
    Array.fold_left
      (fun acc (j : Job.t) ->
        Float.max acc (match j.deadline with Some d -> d | None -> j.release))
      0. t.jobs
  in
  latest +. total_min_volume t +. 1.

let pp_stats ppf t =
  Format.fprintf ppf "%s: n=%d m=%d delta=%.3g total_weight=%g min_volume=%g" t.name (n t)
    (m t) (delta t) (total_weight t) (total_min_volume t)
