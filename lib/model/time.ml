type t = float

let tolerance = 1e-9
let equal a b = Float.abs (a -. b) <= tolerance
let leq a b = a -. b <= tolerance
let lt a b = b -. a > tolerance
let geq a b = b -. a <= tolerance
let gt a b = a -. b > tolerance
let nonneg t = t >= -.tolerance
let max = Float.max
let min = Float.min
let pp ppf t = Format.fprintf ppf "%.6g" t
