(** Plain-text (de)serialization of instances and schedule exports.

    The instance format is a line-oriented, human-diffable text format:

    {v
    rejsched-instance v1
    name <string, may contain spaces>
    machines <m>
    machine <id> <speed> <alpha>        (m lines)
    jobs <n>
    job <id> <release> <weight> <deadline or -> <p_0> ... <p_{m-1}>
    v}

    with [inf] denoting an ineligible machine.  Round-trips exactly (floats
    are printed with full precision). *)

val instance_to_string : Instance.t -> string

val instance_of_string : string -> (Instance.t, string) result
(** Parse errors are returned as a human-readable message with a line
    number. *)

val save_instance : path:string -> Instance.t -> unit
val load_instance : path:string -> (Instance.t, string) result

val segments_to_csv : Schedule.t -> string
(** One row per execution segment ([job,machine,start,stop,speed,outcome]),
    suitable for external plotting. *)

val schedule_to_string : Schedule.t -> string
(** Full textual dump of a run's result — every outcome (job-id order) and
    every segment (layout order) with round-tripping float formatting.  Two
    runs are observationally identical iff their dumps are byte-identical,
    which is what the determinism/replay tests compare. *)

val schedule_to_canonical_string : Schedule.t -> string
(** Like {!schedule_to_string} but with segments sorted by
    [(start, machine, job, stop, speed)] instead of layout order.  Use this
    to compare schedules that lay the same work but were built through
    different code paths (e.g. a rebuilt/permuted schedule vs. the driver's
    original), where the internal segment list order is not meaningful. *)
