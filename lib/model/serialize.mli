(** Plain-text (de)serialization of instances and schedule exports.

    The instance format is a line-oriented, human-diffable text format:

    {v
    rejsched-instance v1
    name <string, may contain spaces>
    machines <m>
    machine <id> <speed> <alpha>        (m lines)
    jobs <n>
    job <id> <release> <weight> <deadline or -> <p_0> ... <p_{m-1}>
    v}

    with [inf] denoting an ineligible machine.  Round-trips exactly (floats
    are printed with full precision). *)

val instance_to_string : Instance.t -> string

val instance_of_string : string -> (Instance.t, string) result
(** Parse errors are returned as a human-readable message with a line
    number. *)

val save_instance : path:string -> Instance.t -> unit
val load_instance : path:string -> (Instance.t, string) result

val segments_to_csv : Schedule.t -> string
(** One row per execution segment ([job,machine,start,stop,speed,outcome]),
    suitable for external plotting. *)
