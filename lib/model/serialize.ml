let float_to_string v =
  if v = Float.infinity then "inf"
  else begin
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v
  end

let float_of_token tok =
  match tok with
  | "inf" -> Ok Float.infinity
  | _ -> (
      match float_of_string_opt tok with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "bad number %S" tok))

let instance_to_string (instance : Instance.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "rejsched-instance v1\n";
  Buffer.add_string buf ("name " ^ instance.Instance.name ^ "\n");
  let m = Instance.m instance in
  Buffer.add_string buf (Printf.sprintf "machines %d\n" m);
  for i = 0 to m - 1 do
    let mc = Instance.machine instance i in
    Buffer.add_string buf
      (Printf.sprintf "machine %d %s %s\n" mc.Machine.id
         (float_to_string mc.Machine.speed)
         (float_to_string mc.Machine.alpha))
  done;
  let jobs = Instance.jobs_by_release instance in
  Buffer.add_string buf (Printf.sprintf "jobs %d\n" (Array.length jobs));
  Array.iter
    (fun (j : Job.t) ->
      let deadline = match j.Job.deadline with None -> "-" | Some d -> float_to_string d in
      let sizes =
        String.concat " " (Array.to_list (Array.map float_to_string j.Job.sizes))
      in
      Buffer.add_string buf
        (Printf.sprintf "job %d %s %s %s %s\n" j.Job.id
           (float_to_string j.Job.release)
           (float_to_string j.Job.weight)
           deadline sizes))
    jobs;
  Buffer.contents buf

type parse_state = {
  mutable name : string;
  mutable machines : Machine.t list;
  mutable expected_machines : int;
  mutable jobs : Job.t list;
  mutable expected_jobs : int;
}

let instance_of_string text =
  let lines = String.split_on_char '\n' text in
  let st =
    { name = "instance"; machines = []; expected_machines = -1; jobs = []; expected_jobs = -1 }
  in
  let error lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let ( let* ) = Result.bind in
  let parse_line lineno line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then Ok ()
    else begin
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | [ "rejsched-instance"; "v1" ] -> Ok ()
      | "name" :: rest ->
          st.name <- String.concat " " rest;
          Ok ()
      | [ "machines"; n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 ->
              st.expected_machines <- n;
              Ok ()
          | _ -> error lineno "bad machine count")
      | "machine" :: id :: speed :: alpha :: [] -> (
          match (int_of_string_opt id, float_of_token speed, float_of_token alpha) with
          | Some id, Ok speed, Ok alpha -> (
              try
                st.machines <- Machine.create ~id ~speed ~alpha () :: st.machines;
                Ok ()
              with Invalid_argument msg -> error lineno msg)
          | _ -> error lineno "bad machine line")
      | [ "jobs"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 0 ->
              st.expected_jobs <- n;
              Ok ()
          | _ -> error lineno "bad job count")
      | "job" :: id :: release :: weight :: deadline :: sizes -> (
          let* id =
            match int_of_string_opt id with Some i -> Ok i | None -> error lineno "bad job id"
          in
          let* release = Result.map_error (Printf.sprintf "line %d: %s" lineno) (float_of_token release) in
          let* weight = Result.map_error (Printf.sprintf "line %d: %s" lineno) (float_of_token weight) in
          let* deadline =
            if deadline = "-" then Ok None
            else
              Result.map
                (fun d -> Some d)
                (Result.map_error (Printf.sprintf "line %d: %s" lineno) (float_of_token deadline))
          in
          let* sizes =
            List.fold_left
              (fun acc tok ->
                let* acc = acc in
                let* v = Result.map_error (Printf.sprintf "line %d: %s" lineno) (float_of_token tok) in
                Ok (v :: acc))
              (Ok []) sizes
            |> Result.map (fun l -> Array.of_list (List.rev l))
          in
          try
            st.jobs <- Job.create ~id ~release ~weight ?deadline ~sizes () :: st.jobs;
            Ok ()
          with Invalid_argument msg -> error lineno msg)
      | token :: _ -> error lineno (Printf.sprintf "unknown directive %S" token)
      | [] -> Ok ()
    end
  in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest ->
        let* () = parse_line lineno line in
        go (lineno + 1) rest
  in
  let* () = go 1 lines in
  let machines = Array.of_list (List.rev st.machines) in
  if st.expected_machines >= 0 && Array.length machines <> st.expected_machines then
    Error
      (Printf.sprintf "declared %d machines but found %d" st.expected_machines
         (Array.length machines))
  else if st.expected_jobs >= 0 && List.length st.jobs <> st.expected_jobs then
    Error (Printf.sprintf "declared %d jobs but found %d" st.expected_jobs (List.length st.jobs))
  else begin
    try Ok (Instance.create ~name:st.name ~machines ~jobs:(List.rev st.jobs) ())
    with Invalid_argument msg -> Error msg
  end

let save_instance ~path instance =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (instance_to_string instance))

let load_instance ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> instance_of_string text
  | exception Sys_error msg -> Error msg

let segments_to_csv (s : Schedule.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "job,machine,start,stop,speed,outcome\n";
  List.iter
    (fun (g : Schedule.segment) ->
      let outcome =
        match Schedule.outcome s g.Schedule.job with
        | Outcome.Completed _ -> "completed"
        | Outcome.Rejected _ -> "rejected"
      in
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%s,%s,%s,%s\n" g.Schedule.job g.Schedule.machine
           (float_to_string g.Schedule.start)
           (float_to_string g.Schedule.stop)
           (float_to_string g.Schedule.speed)
           outcome))
    s.Schedule.segments;
  Buffer.contents buf

let schedule_dump ~segments (s : Schedule.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "rejsched-schedule v1\n";
  Buffer.add_string buf ("instance " ^ s.Schedule.instance.Instance.name ^ "\n");
  let n = Array.length s.Schedule.outcomes in
  Buffer.add_string buf (Printf.sprintf "outcomes %d\n" n);
  Array.iteri
    (fun id outcome ->
      match outcome with
      | Outcome.Completed c ->
          Buffer.add_string buf
            (Printf.sprintf "outcome %d completed %d %s %s %s\n" id c.Outcome.machine
               (float_to_string c.Outcome.start)
               (float_to_string c.Outcome.speed)
               (float_to_string c.Outcome.finish))
      | Outcome.Rejected r ->
          let assigned =
            match r.Outcome.assigned_to with None -> "-" | Some i -> string_of_int i
          in
          Buffer.add_string buf
            (Printf.sprintf "outcome %d rejected %s %s %b\n" id
               (float_to_string r.Outcome.time)
               assigned r.Outcome.was_running))
    s.Schedule.outcomes;
  Buffer.add_string buf (Printf.sprintf "segments %d\n" (List.length segments));
  List.iter
    (fun (g : Schedule.segment) ->
      Buffer.add_string buf
        (Printf.sprintf "segment %d %d %s %s %s\n" g.Schedule.job g.Schedule.machine
           (float_to_string g.Schedule.start)
           (float_to_string g.Schedule.stop)
           (float_to_string g.Schedule.speed)))
    segments;
  Buffer.contents buf

let schedule_to_string (s : Schedule.t) = schedule_dump ~segments:s.Schedule.segments s

(* Total order on segments so two schedules that lay the same work in a
   different internal list order dump identically. *)
let cmp_segment_canonical (a : Schedule.segment) (b : Schedule.segment) =
  match Float.compare a.Schedule.start b.Schedule.start with
  | 0 -> (
      match Int.compare a.Schedule.machine b.Schedule.machine with
      | 0 -> (
          match Int.compare a.Schedule.job b.Schedule.job with
          | 0 -> (
              match Float.compare a.Schedule.stop b.Schedule.stop with
              | 0 -> Float.compare a.Schedule.speed b.Schedule.speed
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let schedule_to_canonical_string (s : Schedule.t) =
  schedule_dump ~segments:(List.sort cmp_segment_canonical s.Schedule.segments) s
