(** ASCII Gantt charts for schedules.

    One row per machine over a scaled time axis; each executing job is drawn
    with a stable alphanumeric symbol, idle time as ['.'], overlapping
    executions (the Section 4 parallel model) as ['+'].  Intended for
    examples, the CLI and debugging — render and read a schedule at a
    glance. *)

val render : ?width:int -> Schedule.t -> string
(** [render ~width s] (default width 72 columns of timeline) returns a
    multi-line chart followed by a legend of job symbols (rejected jobs
    are marked in the legend).  Empty schedules render a note instead. *)

val symbol : Job.id -> char
(** The symbol used for a job: cycles through [0-9A-Za-z]. *)
