(** Schedules: the ground-truth record of a run.

    A schedule pairs a per-job outcome with the exact execution segments laid
    down on each machine — including the partial segment of a job that was
    interrupted and rejected mid-run.  The {!validate} checker is the
    arbiter used by every test: any policy, the paper's or a baseline, must
    produce a schedule this module accepts. *)

type segment = {
  job : Job.id;
  machine : Machine.id;
  start : Time.t;
  stop : Time.t;
  speed : float;  (** Volume per unit time; [stop - start] times this is the
                      volume processed in the segment. *)
}

type t = private {
  instance : Instance.t;
  outcomes : Outcome.t array;  (** Indexed by job id. *)
  segments : segment list;  (** All machines, unordered. *)
}

(** {1 Construction} *)

type builder

val builder : Instance.t -> builder

val add_segment : builder -> segment -> unit
val set_outcome : builder -> Job.id -> Outcome.t -> unit

val finalize : builder -> t
(** Raises [Invalid_argument] when some job has no outcome or an outcome was
    set twice. *)

(** {1 Accessors} *)

val outcome : t -> Job.id -> Outcome.t
val segments_of_machine : t -> Machine.id -> segment list
(** Sorted by start time. *)

val completed_jobs : t -> Job.t list
val rejected_jobs : t -> Job.t list

(** {1 Validation} *)

val validate :
  ?allow_parallel:bool ->
  ?allow_restarts:bool ->
  ?check_deadlines:bool ->
  t ->
  (unit, string list) result
(** Checks, returning all violations found:
    - segments lie on existing machines, have [start < stop], positive speed,
      and never begin before the job's release;
    - unless [allow_parallel] (the Section 4 model), segments on one machine
      never overlap;
    - a completed job has exactly one segment (non-preemption!) matching its
      recorded machine/start/finish, whose processed volume equals its size
      on that machine;
    - a rejected job has at most one (partial) segment, ending no later than
      the rejection time, processing strictly less than its size;
    - with [check_deadlines], completed jobs finish by their deadline.
    With [allow_restarts] (the restart relaxation), a job may carry extra
    {e aborted} segments — strictly partial executions killed before the
    final run — in addition to the rules above.
    Defaults: [allow_parallel = false], [allow_restarts = false],
    [check_deadlines] = instance {!Instance.has_deadlines}. *)

val assert_valid :
  ?allow_parallel:bool -> ?allow_restarts:bool -> ?check_deadlines:bool -> t -> unit
(** Raises [Failure] with the violation list when invalid. *)
