(** Machines.

    A machine has a nominal speed factor (1.0 in the paper's model; larger in
    the speed-augmentation baseline of [Lucarelli et al., ESA 2016]) and a
    power exponent [alpha] used when the machine runs under speed scaling
    with power function [P(s) = s^alpha]. *)

type id = int

type t = private { id : id; speed : float; alpha : float }

val create : id:id -> ?speed:float -> ?alpha:float -> unit -> t
(** [speed] defaults to [1.0] (must be positive); [alpha] defaults to [3.0]
    (must be [>= 1.0]). *)

val with_speed : t -> float -> t

val fleet : ?speed:float -> ?alpha:float -> int -> t array
(** [fleet m] is [m] identical machines with ids [0..m-1]. *)

val pp : Format.formatter -> t -> unit
