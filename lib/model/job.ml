type id = int

type t = {
  id : id;
  release : Time.t;
  weight : float;
  sizes : float array;
  deadline : Time.t option;
}

let validate_sizes sizes =
  if Array.length sizes = 0 then invalid_arg "Job.create: empty size vector";
  let finite = ref false in
  Array.iter
    (fun p ->
      if Float.is_nan p || p <= 0. then invalid_arg "Job.create: sizes must be positive";
      if Float.is_finite p then finite := true)
    sizes;
  if not !finite then invalid_arg "Job.create: no eligible machine (all sizes infinite)"

let create ~id ~release ?(weight = 1.) ?deadline ~sizes () =
  if not (Time.nonneg release) then invalid_arg "Job.create: negative release";
  if weight <= 0. || not (Float.is_finite weight) then
    invalid_arg "Job.create: weight must be positive and finite";
  validate_sizes sizes;
  (match deadline with
  | Some d when not (Time.gt d release) -> invalid_arg "Job.create: deadline <= release"
  | _ -> ());
  { id; release; weight; sizes = Array.copy sizes; deadline }

let size j i = j.sizes.(i)
let eligible j i = Float.is_finite j.sizes.(i)

let min_size j = Array.fold_left Float.min Float.infinity j.sizes

let best_machine j =
  let best = ref 0 in
  Array.iteri (fun i p -> if p < j.sizes.(!best) then best := i) j.sizes;
  !best

let span j = Option.map (fun d -> d -. j.release) j.deadline

let with_sizes j sizes =
  validate_sizes sizes;
  { j with sizes = Array.copy sizes }

let compare_by_release a b =
  match Float.compare a.release b.release with 0 -> Int.compare a.id b.id | c -> c

let pp ppf j =
  Format.fprintf ppf "job#%d[r=%a w=%g p=[%s]%s]" j.id Time.pp j.release j.weight
    (String.concat ";" (Array.to_list (Array.map (Printf.sprintf "%g") j.sizes)))
    (match j.deadline with None -> "" | Some d -> Printf.sprintf " d=%g" d)
