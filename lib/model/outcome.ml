type completion = {
  machine : Machine.id;
  start : Time.t;
  speed : float;
  finish : Time.t;
}

type rejection = {
  time : Time.t;
  assigned_to : Machine.id option;
  was_running : bool;
}

type t = Completed of completion | Rejected of rejection

let is_completed = function Completed _ -> true | Rejected _ -> false
let is_rejected = function Rejected _ -> true | Completed _ -> false
let end_time = function Completed c -> c.finish | Rejected r -> r.time
let flow_time (j : Job.t) t = end_time t -. j.release

let pp ppf = function
  | Completed c ->
      Format.fprintf ppf "completed[m=%d start=%a finish=%a speed=%g]" c.machine Time.pp
        c.start Time.pp c.finish c.speed
  | Rejected r ->
      Format.fprintf ppf "rejected[t=%a%s%s]" Time.pp r.time
        (match r.assigned_to with None -> "" | Some m -> Printf.sprintf " m=%d" m)
        (if r.was_running then " mid-run" else "")
