(** Objective values of a schedule.

    Conventions follow the paper: the algorithm's flow-time objective counts
    the jobs it completes; a rejected job's flow-time (release to rejection)
    is reported separately.  Energy integrates the machine power function
    [P(s) = s^alpha] over the *aggregate* speed of each machine, which is
    correct both for exclusive execution (Sections 2-3) and for the parallel
    execution allowed by the Section 4 model. *)

type flow = {
  total : float;  (** Sum of flow-times of completed jobs. *)
  weighted : float;
  total_with_rejected : float;  (** Adds release-to-rejection times. *)
  weighted_with_rejected : float;
  max_flow : float;  (** 0 when no job completed. *)
  mean_flow : float;
  max_stretch : float;  (** Flow over minimum size, completed jobs. *)
}

val flow : Schedule.t -> flow

val flow_time_of : Schedule.t -> Job.id -> float
(** Flow time of one job (completion or rejection minus release). *)

val flow_values : ?include_rejected:bool -> Schedule.t -> float array
(** Per-job flow-times of completed jobs in job-id order (rejected jobs'
    release-to-rejection times appended when [include_rejected], default
    false).  Feed to {!Sched_stats.Summary} for tail statistics. *)

val makespan : Schedule.t -> float
(** Latest segment end (0 for an empty schedule). *)

val fractional_flow : ?include_rejected:bool -> Schedule.t -> float
(** [sum_j integral (q_j(t) / p_j) dt] — the fractional flow-time of the
    paper's Section 2 LP: each job contributes its waiting time at weight 1
    and its execution at linearly vanishing weight (a contiguous run of
    length [d] contributes [d/2]).  For any feasible schedule,
    [fractional_flow + total volume >= the LP optimum], the relation behind
    the paper's factor-2 argument.  Rejected jobs contribute their waiting
    plus partial-execution integral up to rejection when
    [include_rejected] (default false). *)

val energy : Schedule.t -> float
(** [sum_i integral P_i(s_i(t)) dt] where [s_i(t)] is the sum of the speeds
    of the segments active on machine [i] at time [t] and
    [P_i(s) = s^alpha_i]. *)

val energy_of_machine : Schedule.t -> Machine.id -> float

val flow_plus_energy : Schedule.t -> float
(** [flow.weighted + energy], the Section 3 objective. *)

type rejection = {
  count : int;
  fraction : float;  (** Rejected jobs over all jobs. *)
  weight : float;
  weight_fraction : float;  (** Rejected weight over total weight. *)
  mid_run : int;  (** Rejections that interrupted a running job (Rule 1). *)
}

val rejection : Schedule.t -> rejection

val busy_time : Schedule.t -> Machine.id -> float
(** Total time machine [i] has at least one active segment. *)

val utilization : Schedule.t -> Machine.id -> float
(** [busy_time / makespan] (0 for an empty schedule). *)
