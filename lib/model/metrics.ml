type flow = {
  total : float;
  weighted : float;
  total_with_rejected : float;
  weighted_with_rejected : float;
  max_flow : float;
  mean_flow : float;
  max_stretch : float;
}

let flow_time_of (s : Schedule.t) id =
  let j = Instance.job s.instance id in
  Outcome.flow_time j (Schedule.outcome s id)

let flow (s : Schedule.t) =
  let total = ref 0. and weighted = ref 0. in
  let rej_total = ref 0. and rej_weighted = ref 0. in
  let max_flow = ref 0. and max_stretch = ref 0. in
  let completed = ref 0 in
  Array.iter
    (fun (j : Job.t) ->
      let f = Outcome.flow_time j (Schedule.outcome s j.id) in
      match Schedule.outcome s j.id with
      | Outcome.Completed _ ->
          incr completed;
          total := !total +. f;
          weighted := !weighted +. (j.weight *. f);
          if f > !max_flow then max_flow := f;
          let stretch = f /. Job.min_size j in
          if stretch > !max_stretch then max_stretch := stretch
      | Outcome.Rejected _ ->
          rej_total := !rej_total +. f;
          rej_weighted := !rej_weighted +. (j.weight *. f))
    (Instance.jobs_by_release s.instance);
  {
    total = !total;
    weighted = !weighted;
    total_with_rejected = !total +. !rej_total;
    weighted_with_rejected = !weighted +. !rej_weighted;
    max_flow = !max_flow;
    mean_flow = (if !completed = 0 then 0. else !total /. float_of_int !completed);
    max_stretch = !max_stretch;
  }

let fractional_flow ?(include_rejected = false) (s : Schedule.t) =
  (* Per job: waiting intervals count fully (remaining fraction 1); an
     execution piece [a, b) at rate v on a job of size p contributes
     int (q(t)/p) dt with q falling linearly from q0: (b-a) q0/p - v (b-a)^2 / (2p). *)
  let total = ref 0. in
  Array.iter
    (fun (j : Job.t) ->
      let outcome = Schedule.outcome s j.id in
      let keep =
        match outcome with Outcome.Completed _ -> true | Outcome.Rejected _ -> include_rejected
      in
      if keep then begin
        let segs =
          List.filter (fun (g : Schedule.segment) -> g.job = j.id) s.segments
          |> List.sort (fun (a : Schedule.segment) b -> Float.compare a.start b.start)
        in
        let end_time = Outcome.end_time outcome in
        (* Walk waiting and execution pieces in order.  With restarts the
           remaining volume resets, so recompute q0 per segment from the
           machine size minus volume done in THIS attempt only — the
           paper's fractional flow is defined for non-preemptive runs, and
           for restarts we take the remaining-of-current-attempt reading. *)
        let clock = ref j.release in
        List.iter
          (fun (g : Schedule.segment) ->
            let p = Job.size j g.machine in
            if g.start > !clock then total := !total +. (g.start -. !clock);
            let d = g.stop -. g.start in
            total := !total +. (d -. (g.speed *. d *. d /. (2. *. p)));
            clock := g.stop)
          segs;
        if end_time > !clock then total := !total +. (end_time -. !clock)
      end)
    (Instance.jobs_by_release s.instance);
  !total

let flow_values ?(include_rejected = false) (s : Schedule.t) =
  let acc = ref [] in
  Array.iter
    (fun (j : Job.t) ->
      let outcome = Schedule.outcome s j.id in
      let keep =
        match outcome with Outcome.Completed _ -> true | Outcome.Rejected _ -> include_rejected
      in
      if keep then acc := Outcome.flow_time j outcome :: !acc)
    (Instance.jobs_by_release s.instance);
  Array.of_list (List.rev !acc)

let makespan (s : Schedule.t) =
  List.fold_left (fun acc (seg : Schedule.segment) -> Float.max acc seg.stop) 0. s.segments

(* Sweep the segment endpoints of one machine and integrate P(aggregate
   speed) over each elementary interval: O(k log k) via a sorted event list
   of speed deltas. *)
let energy_of_machine (s : Schedule.t) i =
  let alpha = (Instance.machine s.instance i).Machine.alpha in
  let segs = Schedule.segments_of_machine s i in
  match segs with
  | [] -> 0.
  | _ ->
      let events =
        List.concat_map
          (fun (g : Schedule.segment) -> [ (g.start, g.speed); (g.stop, -.g.speed) ])
          segs
        |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
      in
      let rec sweep acc speed = function
        | (t0, d0) :: (((t1, _) :: _) as rest) ->
            let speed = Float.max 0. (speed +. d0) in
            let acc =
              if t1 > t0 && speed > 0. then acc +. ((t1 -. t0) *. (speed ** alpha)) else acc
            in
            sweep acc speed rest
        | _ -> acc
      in
      sweep 0. 0. events

let energy (s : Schedule.t) =
  let total = ref 0. in
  for i = 0 to Instance.m s.instance - 1 do
    total := !total +. energy_of_machine s i
  done;
  !total

let flow_plus_energy s = (flow s).weighted +. energy s

type rejection = {
  count : int;
  fraction : float;
  weight : float;
  weight_fraction : float;
  mid_run : int;
}

let rejection (s : Schedule.t) =
  let count = ref 0 and weight = ref 0. and mid_run = ref 0 in
  Array.iter
    (fun (j : Job.t) ->
      match Schedule.outcome s j.id with
      | Outcome.Rejected r ->
          incr count;
          weight := !weight +. j.weight;
          if r.was_running then incr mid_run
      | Outcome.Completed _ -> ())
    (Instance.jobs_by_release s.instance);
  let n = Instance.n s.instance in
  let w = Instance.total_weight s.instance in
  {
    count = !count;
    fraction = (if n = 0 then 0. else float_of_int !count /. float_of_int n);
    weight = !weight;
    weight_fraction = (if w = 0. then 0. else !weight /. w);
    mid_run = !mid_run;
  }

let busy_time (s : Schedule.t) i =
  let segs = Schedule.segments_of_machine s i in
  (* Merge sorted intervals. *)
  let rec merge acc cur = function
    | [] -> (match cur with None -> acc | Some (a, b) -> acc +. (b -. a))
    | (g : Schedule.segment) :: rest -> begin
        match cur with
        | None -> merge acc (Some (g.start, g.stop)) rest
        | Some (a, b) ->
            if g.start <= b then merge acc (Some (a, Float.max b g.stop)) rest
            else merge (acc +. (b -. a)) (Some (g.start, g.stop)) rest
      end
  in
  merge 0. None segs

let utilization s i =
  let ms = makespan s in
  if ms <= 0. then 0. else busy_time s i /. ms
