(** Continuous simulation time.

    Time is a float; this module centralizes the tolerance used when
    comparing event times so that accumulated floating-point error never
    reorders causally-ordered events. *)

type t = float

val tolerance : float
(** Absolute tolerance for time comparisons ([1e-9]). *)

val equal : t -> t -> bool
val leq : t -> t -> bool
val lt : t -> t -> bool
val geq : t -> t -> bool
val gt : t -> t -> bool

val nonneg : t -> bool
(** [nonneg t] holds when [t >= -tolerance]. *)

val max : t -> t -> t
val min : t -> t -> t
val pp : Format.formatter -> t -> unit
