(** Problem instances: a machine fleet plus a job set.

    Jobs are stored sorted by release time (the order in which an online
    algorithm sees them) and job ids are required to be exactly
    [0 .. n-1] so that per-job state can live in arrays. *)

type t = private {
  name : string;
  machines : Machine.t array;
  jobs : Job.t array;  (** Sorted by [Job.compare_by_release]. *)
}

val create : ?name:string -> machines:Machine.t array -> jobs:Job.t list -> unit -> t
(** Validates: at least one machine, machine ids are [0..m-1], every job's
    size vector has length [m], and job ids form [0..n-1] (ids need not be
    ordered by release).  Jobs are sorted by release internally. *)

val n : t -> int
(** Number of jobs. *)

val m : t -> int
(** Number of machines. *)

val job : t -> Job.id -> Job.t
(** Lookup by job id (not by position in release order). *)

val machine : t -> Machine.id -> Machine.t
val jobs_by_release : t -> Job.t array
val total_weight : t -> float

val total_min_volume : t -> float
(** [sum_j min_i p_ij] — the volume lower bound on any schedule's total
    flow-time. *)

val delta : t -> float
(** Max-over-min finite processing time, the [Delta] of the paper's
    Lemma 1. *)

val has_deadlines : t -> bool
(** True when every job carries a deadline (energy-minimization
    instances). *)

val horizon : t -> Time.t
(** A safe upper bound on any reasonable schedule's completion: latest
    release (or deadline) plus total minimum volume. *)

val pp_stats : Format.formatter -> t -> unit
