type segment = {
  job : Job.id;
  machine : Machine.id;
  start : Time.t;
  stop : Time.t;
  speed : float;
}

type t = {
  instance : Instance.t;
  outcomes : Outcome.t array;
  segments : segment list;
}

type builder = {
  b_instance : Instance.t;
  b_outcomes : Outcome.t option array;
  mutable b_segments : segment list;
}

let builder instance =
  {
    b_instance = instance;
    b_outcomes = Array.make (Instance.n instance) None;
    b_segments = [];
  }

let add_segment b seg = b.b_segments <- seg :: b.b_segments

let set_outcome b id outcome =
  if id < 0 || id >= Array.length b.b_outcomes then
    invalid_arg (Printf.sprintf "Schedule.set_outcome: bad job id %d" id);
  match b.b_outcomes.(id) with
  | Some _ -> invalid_arg (Printf.sprintf "Schedule.set_outcome: job %d already decided" id)
  | None -> b.b_outcomes.(id) <- Some outcome

let finalize b =
  let outcomes =
    Array.mapi
      (fun id o ->
        match o with
        | Some o -> o
        | None -> invalid_arg (Printf.sprintf "Schedule.finalize: job %d has no outcome" id))
      b.b_outcomes
  in
  { instance = b.b_instance; outcomes; segments = List.rev b.b_segments }

let outcome t id = t.outcomes.(id)

let segments_of_machine t m =
  List.filter (fun s -> s.machine = m) t.segments
  |> List.sort (fun a b ->
         match Float.compare a.start b.start with 0 -> Int.compare a.job b.job | c -> c)

let partition_jobs t =
  Array.fold_left
    (fun (compl_, rej) (j : Job.t) ->
      match t.outcomes.(j.id) with
      | Outcome.Completed _ -> (j :: compl_, rej)
      | Outcome.Rejected _ -> (compl_, j :: rej))
    ([], [])
    (Instance.jobs_by_release t.instance)

let completed_jobs t = List.rev (fst (partition_jobs t))
let rejected_jobs t = List.rev (snd (partition_jobs t))

(* Relative tolerance for volume/size comparisons: simulation arithmetic is
   a handful of float operations, so 1e-6 relative slack is ample. *)
let vol_close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.max a b)

let validate ?(allow_parallel = false) ?(allow_restarts = false) ?check_deadlines t =
  let check_deadlines =
    match check_deadlines with Some b -> b | None -> Instance.has_deadlines t.instance
  in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let m = Instance.m t.instance in
  (* Per-segment sanity. *)
  List.iter
    (fun s ->
      if s.machine < 0 || s.machine >= m then err "segment of job %d on bad machine %d" s.job s.machine;
      if not (Time.lt s.start s.stop) then
        err "segment of job %d has start %g >= stop %g" s.job s.start s.stop;
      if s.speed <= 0. then err "segment of job %d has non-positive speed" s.job;
      let j = Instance.job t.instance s.job in
      if Time.lt s.start j.release then
        err "job %d starts at %g before release %g" s.job s.start j.release)
    t.segments;
  (* Machine-level non-overlap. *)
  if not allow_parallel then
    for i = 0 to m - 1 do
      let segs = segments_of_machine t i in
      let rec check = function
        | a :: (b :: _ as rest) ->
            if Time.gt a.stop b.start then
              err "machine %d: job %d segment [%g,%g] overlaps job %d at %g" i a.job a.start
                a.stop b.job b.start;
            check rest
        | _ -> ()
      in
      check segs
    done;
  (* Per-job outcome consistency; bucket segments by job once so the whole
     pass is linear in the segment count. *)
  let by_job = Array.make (Instance.n t.instance) [] in
  List.iter
    (fun s ->
      if s.job >= 0 && s.job < Array.length by_job then
        by_job.(s.job) <- s :: by_job.(s.job)
      else err "segment references unknown job %d" s.job)
    t.segments;
  Array.iter
    (fun (j : Job.t) ->
      let segs = List.rev by_job.(j.id) in
      match t.outcomes.(j.id) with
      | Outcome.Completed c -> begin
          let sorted =
            List.sort
              (fun a b ->
                match Float.compare a.start b.start with 0 -> Int.compare a.job b.job | c -> c)
              segs
          in
          let check_final s =
            if s.machine <> c.machine then
              err "job %d completed on machine %d but segment is on %d" j.id c.machine
                s.machine;
            if not (Time.equal s.start c.start && Time.equal s.stop c.finish) then
              err "job %d segment [%g,%g] mismatches outcome [%g,%g]" j.id s.start s.stop
                c.start c.finish;
            let volume = (s.stop -. s.start) *. s.speed in
            if not (vol_close volume (Job.size j s.machine)) then
              err "job %d processed volume %g but size is %g on machine %d" j.id volume
                (Job.size j s.machine) s.machine;
            if check_deadlines then begin
              match j.deadline with
              | Some d when Time.gt c.finish d ->
                  err "job %d finishes at %g after deadline %g" j.id c.finish d
              | _ -> ()
            end
          in
          let check_aborted s =
            (* A killed attempt: strictly partial work, over before the
               final execution began. *)
            let volume = (s.stop -. s.start) *. s.speed in
            if volume >= Job.size j s.machine -. 1e-9 then
              err "job %d restarted after processing its full size" j.id;
            if Time.gt s.stop c.start then
              err "job %d has an aborted attempt [%g,%g] overlapping its final run" j.id
                s.start s.stop
          in
          match (sorted, allow_restarts) with
          | [ s ], _ -> check_final s
          | [], _ -> err "job %d completed but has no segment" j.id
          | segs, true ->
              let rec split = function
                | [ last ] -> check_final last
                | s :: rest ->
                    check_aborted s;
                    split rest
                | [] -> ()
              in
              split segs
          | segs, false ->
              err "job %d completed but has %d segments (preempted?)" j.id (List.length segs)
        end
      | Outcome.Rejected r -> begin
          if Time.lt r.time j.release then
            err "job %d rejected at %g before release %g" j.id r.time j.release;
          let check_partial s =
            if Time.gt s.stop r.time then
              err "job %d partial segment ends %g after rejection %g" j.id s.stop r.time;
            let volume = (s.stop -. s.start) *. s.speed in
            if volume >= Job.size j s.machine -. 1e-9 then
              err "job %d rejected after processing full size" j.id
          in
          match segs with
          | [] ->
              if r.was_running then err "job %d rejected mid-run but has no segment" j.id
          | [ s ] ->
              if not (r.was_running || allow_restarts) then
                err "job %d has a segment but was not running" j.id;
              check_partial s
          | segs when allow_restarts -> List.iter check_partial segs
          | segs -> err "job %d rejected but has %d segments" j.id (List.length segs)
        end)
    (Instance.jobs_by_release t.instance);
  match !errs with [] -> Ok () | es -> Error (List.rev es)

let assert_valid ?allow_parallel ?allow_restarts ?check_deadlines t =
  match validate ?allow_parallel ?allow_restarts ?check_deadlines t with
  | Ok () -> ()
  | Error es ->
      failwith
        (Printf.sprintf "invalid schedule (%d violations):\n%s" (List.length es)
           (String.concat "\n" es))
