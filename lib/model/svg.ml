(* A small qualitative palette (Okabe-Ito plus a few extras), cycled by
   job id. *)
let palette =
  [| "#0072B2"; "#E69F00"; "#009E73"; "#CC79A7"; "#56B4E9"; "#D55E00"; "#F0E442";
     "#999999"; "#7570B3"; "#66A61E"; "#A6761D"; "#1B9E77" |]

let color_of id = palette.(id mod Array.length palette)

let render ?(width = 900) ?(lane_height = 34) (s : Schedule.t) =
  if width < 100 then invalid_arg "Svg.render: width too small";
  let horizon = Float.max 1e-9 (Metrics.makespan s) in
  let m = Instance.m s.Schedule.instance in
  let margin_left = 46 and margin_top = 10 and axis_height = 26 in
  let chart_width = width - margin_left - 10 in
  let height = margin_top + (m * lane_height) + axis_height in
  let x_of t = float_of_int margin_left +. (t /. horizon *. float_of_int chart_width) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" font-family=\"sans-serif\" font-size=\"11\">\n"
       width height);
  Buffer.add_string buf "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  (* Lanes. *)
  for i = 0 to m - 1 do
    let y = margin_top + (i * lane_height) in
    Buffer.add_string buf
      (Printf.sprintf
         "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\"/>\n"
         margin_left y chart_width (lane_height - 4)
         (if i mod 2 = 0 then "#f4f4f4" else "#ececec"));
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"6\" y=\"%d\">m%d</text>\n" (y + (lane_height / 2) + 4) i)
  done;
  (* Segments. *)
  List.iter
    (fun (g : Schedule.segment) ->
      let y = margin_top + (g.Schedule.machine * lane_height) in
      let x0 = x_of g.Schedule.start and x1 = x_of g.Schedule.stop in
      let rejected =
        match Schedule.outcome s g.Schedule.job with
        | Outcome.Rejected _ -> true
        | Outcome.Completed _ -> false
      in
      let fill = if rejected then "#D55E00" else color_of g.Schedule.job in
      let opacity = if rejected then "0.55" else "0.9" in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.2f\" y=\"%d\" width=\"%.2f\" height=\"%d\" rx=\"3\" fill=\"%s\" \
            fill-opacity=\"%s\" stroke=\"#333\" stroke-width=\"0.5\"><title>job %d: [%.3g, \
            %.3g) speed %.3g%s</title></rect>\n"
           x0 (y + 2)
           (Float.max 1.5 (x1 -. x0))
           (lane_height - 8) fill opacity g.Schedule.job g.Schedule.start g.Schedule.stop
           g.Schedule.speed
           (if rejected then " (rejected)" else ""));
      if x1 -. x0 > 18. then
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"%.2f\" y=\"%d\" fill=\"white\" font-size=\"10\">j%d</text>\n"
             (x0 +. 3.)
             (y + (lane_height / 2) + 2)
             g.Schedule.job))
    s.Schedule.segments;
  (* Axis with 6 ticks. *)
  let axis_y = margin_top + (m * lane_height) + 4 in
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#333\"/>\n" margin_left axis_y
       (margin_left + chart_width) axis_y);
  for k = 0 to 6 do
    let t = horizon *. float_of_int k /. 6. in
    let x = x_of t in
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"#333\"/>\n" x axis_y x
         (axis_y + 4));
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\">%.4g</text>\n" x
         (axis_y + 16) t)
  done;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save ~path ?width ?lane_height s =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (render ?width ?lane_height s))
