let symbols = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

let symbol id = symbols.[id mod String.length symbols]

let render ?(width = 72) (s : Schedule.t) =
  if width < 8 then invalid_arg "Gantt.render: width too small";
  let horizon = Metrics.makespan s in
  if horizon <= 0. then "(empty schedule)\n"
  else begin
    let buf = Buffer.create 1024 in
    let m = Instance.m s.Schedule.instance in
    (* Time scale header. *)
    Buffer.add_string buf (Printf.sprintf "%-4s0%s%.6g\n" "" (String.make (width - 2) ' ') horizon);
    Buffer.add_string buf (Printf.sprintf "%-4s|%s|\n" "" (String.make (width - 2) '-'));
    for i = 0 to m - 1 do
      let segs = Schedule.segments_of_machine s i in
      let row = Bytes.make width '.' in
      for k = 0 to width - 1 do
        let mid = (float_of_int k +. 0.5) /. float_of_int width *. horizon in
        let covering =
          List.filter
            (fun (g : Schedule.segment) -> g.Schedule.start <= mid && mid < g.Schedule.stop)
            segs
        in
        match covering with
        | [] -> ()
        | [ g ] -> Bytes.set row k (symbol g.Schedule.job)
        | _ -> Bytes.set row k '+'
      done;
      Buffer.add_string buf (Printf.sprintf "m%-3d%s\n" i (Bytes.to_string row))
    done;
    (* Legend: list jobs in id order, flag rejected ones. *)
    Buffer.add_string buf "legend: ";
    let jobs = Instance.jobs_by_release s.Schedule.instance in
    let sorted = Array.copy jobs in
    Array.sort (fun (a : Job.t) b -> Int.compare a.Job.id b.Job.id) sorted;
    let count = Array.length sorted in
    let shown = min count 16 in
    for k = 0 to shown - 1 do
      let j = sorted.(k) in
      let mark =
        match Schedule.outcome s j.Job.id with
        | Outcome.Rejected _ -> "!"
        | Outcome.Completed _ -> ""
      in
      Buffer.add_string buf (Printf.sprintf "%c=j%d%s " (symbol j.Job.id) j.Job.id mark)
    done;
    if count > shown then Buffer.add_string buf (Printf.sprintf "... (%d jobs)" count);
    Buffer.add_string buf "  ('!' = rejected, '+' = parallel, '.' = idle)\n";
    Buffer.contents buf
  end
