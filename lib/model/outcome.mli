(** Per-job outcomes of a run.

    In the rejection model every job either completes on some machine or is
    rejected at some time (possibly mid-execution, under the paper's
    Rejection Rule 1).  Following the paper, the flow-time of a rejected job
    is the time between its release and its rejection. *)

type completion = {
  machine : Machine.id;
  start : Time.t;
  speed : float;  (** Volume processed per unit time during execution. *)
  finish : Time.t;
}

type rejection = {
  time : Time.t;  (** Rejection instant. *)
  assigned_to : Machine.id option;  (** Machine the job was dispatched to. *)
  was_running : bool;  (** True when interrupted mid-execution (Rule 1). *)
}

type t = Completed of completion | Rejected of rejection

val is_completed : t -> bool
val is_rejected : t -> bool

val end_time : t -> Time.t
(** Completion time, or rejection time for rejected jobs. *)

val flow_time : Job.t -> t -> Time.t
(** [end_time - release]; non-negative for any causally valid outcome. *)

val pp : Format.formatter -> t -> unit
