(** SVG rendering of schedules: a self-contained vector Gantt chart for
    papers, slides and browsers (the vector sibling of {!Gantt}).

    One horizontal lane per machine; each execution segment is a rounded
    rectangle colored by job id (stable palette), with rejected jobs'
    partial executions hatched in red and a time axis below.  No external
    assets; the output is a complete [<svg>] document. *)

val render : ?width:int -> ?lane_height:int -> Schedule.t -> string
(** [render ~width ~lane_height s] (defaults 900 and 34 pixels). *)

val save : path:string -> ?width:int -> ?lane_height:int -> Schedule.t -> unit
