(** Jobs.

    A job carries a release time, a weight, an optional deadline (only used
    by the energy-minimization problem of the paper's Section 4) and a vector
    of machine-dependent sizes [p_ij] — processing *time* in the flow-time
    problem, processing *volume* in the speed-scaling problems.  A size of
    [infinity] encodes a forbidden machine (restricted assignment). *)

type id = int

type t = private {
  id : id;
  release : Time.t;
  weight : float;
  sizes : float array;  (** [sizes.(i)] is [p_ij] on machine [i]. *)
  deadline : Time.t option;
}

val create :
  id:id -> release:Time.t -> ?weight:float -> ?deadline:Time.t -> sizes:float array -> unit -> t
(** Builds a job, validating: non-negative release, positive weight, every
    size positive (possibly [infinity]) with at least one finite entry, and
    when a deadline is given, [deadline > release].  [weight] defaults to
    [1.]. *)

val size : t -> int -> float
(** [size j i] is [p_ij]. *)

val eligible : t -> int -> bool
(** [eligible j i] holds when [size j i] is finite. *)

val min_size : t -> float
(** Minimum size over machines (finite by construction). *)

val best_machine : t -> int
(** Index of a machine achieving [min_size]. *)

val span : t -> Time.t option
(** [deadline - release] when a deadline is present. *)

val with_sizes : t -> float array -> t
(** Copy with replaced (re-validated) size vector. *)

val compare_by_release : t -> t -> int
(** Orders by release time, tie-broken by id. *)

val pp : Format.formatter -> t -> unit
