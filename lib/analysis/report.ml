let count severity findings =
  List.length (List.filter (fun (f : Finding.t) -> f.severity = severity) findings)

let human ~files_scanned findings =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Finding.to_human f);
      Buffer.add_char buf '\n')
    findings;
  let errors = count Rule.Error findings and warnings = count Rule.Warning findings in
  Buffer.add_string buf
    (Printf.sprintf "rejlint: %d file%s scanned, %d error%s, %d warning%s\n" files_scanned
       (if files_scanned = 1 then "" else "s")
       errors
       (if errors = 1 then "" else "s")
       warnings
       (if warnings = 1 then "" else "s"));
  Buffer.contents buf

let json ~files_scanned findings =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf {|{"version":1,"files_scanned":%d,"errors":%d,"warnings":%d,"findings":[|}
       files_scanned (count Rule.Error findings) (count Rule.Warning findings));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Finding.to_json f))
    findings;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let rules_doc () =
  let buf = Buffer.create 512 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s %-16s %s\n" (Rule.code r) (Rule.to_string r) (Rule.describe r)))
    Rule.all;
  Buffer.contents buf
