(** Which rule families apply to a file, derived from its repo-relative
    path (or forced, e.g. when linting test fixtures as if they lived in
    the scheduling core). *)

type kind = Lib | Bin | Bench | Test | Examples | Other

type t

val make : ?policy:bool -> ?display:bool -> ?clock:bool -> ?pool:bool -> kind -> t

val kind : t -> kind

val policy : t -> bool
(** Policy modules ([lib/core/], [lib/baselines/]) additionally ban
    toplevel mutable state. *)

val display : t -> bool
(** The stats display modules ([lib/stats/table.ml], [lib/stats/chart.ml])
    are exempt from the I/O rule. *)

val clock : t -> bool
(** The telemetry clock module ([lib/obs/clock.ml]) is exempt from the
    wall-clock rule (RJL007) — it exists to encapsulate exactly those
    reads. *)

val io_allowed : t -> bool
(** Whether console I/O is acceptable under this scope: true outside
    [lib/], and inside [lib/] only for the display modules. *)

val pool : t -> bool
(** The domain-pool module ([lib/stats/pool.ml]) is exempt from the raw
    concurrency rule (RJL008) — it exists to encapsulate exactly those
    primitives. *)

val classify : string -> t
(** Classify a repo-relative path ("lib/model/schedule.ml"). *)

val of_string : string -> t option
(** Parse a [--scope] CLI value: lib | policy | display | clock | pool |
    bin | bench | test | examples | auto. *)
