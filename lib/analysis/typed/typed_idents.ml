(* RJL100: the banned-path tables of tier 1 (RJL001 nondet, RJL005 I/O,
   RJL007 wall-clock, RJL008 concurrency) re-checked on resolved
   [Path.t]s.  A finding is only emitted when the identifier as written
   would NOT have matched the tier-1 tables — i.e. exactly the escapes
   the parsetree pass is blind to: module aliases, [let module]
   rebindings, eta-expanded rebindings of banned values reached through
   a module alias, and functor-applied paths (which tier 1 drops via
   [Lapply -> []]).  Plain [Hashtbl.iter] in source stays tier 1's
   finding; [H.iter] after [module H = Hashtbl] becomes RJL100. *)

let family_check ~scope resolved =
  let in_lib = Scope.kind scope = Scope.Lib in
  if in_lib then
    match Ast_checks.banned_wallclock resolved with
    | Some why when not (Scope.clock scope) -> Some ("wall-clock", why, Ast_checks.banned_wallclock)
    | Some _ -> None
    | None -> (
        match Ast_checks.banned_nondet resolved with
        | Some why -> Some ("nondeterminism", why, Ast_checks.banned_nondet)
        | None -> (
            match Ast_checks.banned_concurrency resolved with
            | Some why when not (Scope.pool scope) ->
                Some ("concurrency", why, Ast_checks.banned_concurrency)
            | Some _ -> None
            | None ->
                if not (Scope.io_allowed scope) then
                  match Ast_checks.banned_io resolved with
                  | Some why -> Some ("console I/O", why, Ast_checks.banned_io)
                  | None -> None
                else None))
  else if not (Scope.io_allowed scope) then
    match Ast_checks.banned_io resolved with
    | Some why -> Some ("console I/O", why, Ast_checks.banned_io)
    | None -> None
  else None

let check ~scope ~file ~env (structure : Typedtree.structure) =
  let findings = ref [] in
  let add ~loc message =
    let p = loc.Location.loc_start in
    findings :=
      Finding.make ~rule:Rule.Typed_nondet ~severity:Rule.Error ~file ~line:p.pos_lnum
        ~col:(p.pos_cnum - p.pos_bol) message
      :: !findings
  in
  let expr_pass sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (path, lid, _) -> (
        let resolved = Typed_path.resolve env path in
        match family_check ~scope resolved with
        | Some (family, why, table) ->
            (* Tier 1 already reports identifiers whose written form hits
               the same table; RJL100 owns only the resolved escapes. *)
            if table (Ast_checks.lid_path lid.txt) = None then
              add ~loc:lid.loc
                (Printf.sprintf "%s via resolved path %s (written as %s): %s" family
                   (String.concat "." resolved)
                   (String.concat "." (Ast_checks.lid_path lid.txt))
                   why)
        | None -> ())
    | Texp_apply ({ exp_desc = Texp_ident (hp, hlid, _); _ }, args)
      when not (Scope.io_allowed scope) -> (
        (* Applied console I/O (fprintf to a std channel) with either the
           head or the channel reached through an alias. *)
        let head = Typed_path.resolve env hp in
        let arg, written_arg =
          let positional =
            List.filter_map
              (fun (l, a) -> match (l, a) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
              args
          in
          match positional with
          | { Typedtree.exp_desc = Texp_ident (ap, alid, _); _ } :: _ ->
              (Some (Typed_path.resolve env ap), Some (Ast_checks.lid_path alid.txt))
          | _ -> (None, None)
        in
        match Ast_checks.banned_io_applied ~head ~arg with
        | Some why ->
            let written_head = Ast_checks.lid_path hlid.txt in
            if Ast_checks.banned_io_applied ~head:written_head ~arg:written_arg = None then
              add ~loc:hlid.loc
                (Printf.sprintf "console I/O via resolved path %s: %s" (String.concat "." head) why)
        | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr = expr_pass } in
  it.structure it structure;
  List.rev !findings
