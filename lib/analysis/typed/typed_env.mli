(** Project-wide type classification for the typed tier, built from the
    type declarations found in the project's own cmt files plus a
    name-based stdlib safelist — no [Env.t]/[Ctype] expansion of the
    marshalled environments, which keeps loading robust.  Unknown types
    classify [Abstract]: the linter cannot prove them float-free. *)

type cls =
  | Safe  (** atomic builtin; polymorphic comparison agrees with typed one *)
  | Float  (** atomic [float] (primitive [<]/[>] on it is repo style) *)
  | Deep  (** structure that contains a float somewhere *)
  | Abstract  (** unknown/abstract/open/object — cannot be proven float-free *)
  | Var  (** type variable: genuinely polymorphic use *)
  | Fn  (** function type: structural comparison raises at runtime *)

val describe_cls : cls -> string

type t

val create : unit -> t

val add_unit : t -> prefix:string list -> Typedtree.structure -> unit
(** Record every type declaration of a unit under its logical dotted
    name ("Sched_model.Job.t"), recursing into nested modules. *)

val classify : t -> unit_prefix:string list -> Types.type_expr -> cls
(** Classify a type as seen from the unit whose logical module path is
    [unit_prefix] (local references print without their unit prefix, so
    ancestor prefixes are tried innermost-first during lookup). *)
