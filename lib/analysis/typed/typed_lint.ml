(* The typed tier orchestrator: load cmts, build the project-wide type
   table and call graph, run RJL100/101/103 per unit and RJL102 over the
   graph.  Returns raw (pre-suppression) findings keyed by the units'
   source-relative paths; the Driver merges them with the syntactic
   tier, applies suppressions once over the union, and detects stale
   suppression entries. *)

type result = {
  findings : Finding.t list;  (* pre-suppression, sorted *)
  units : int;  (* implementation units analyzed *)
  load_errors : string list;  (* unreadable/foreign cmts, for a warning line *)
}

let analyze units =
  let table = Typed_env.create () in
  List.iter
    (fun (u : Typed_load.unit_info) -> Typed_env.add_unit table ~prefix:u.prefix u.structure)
    units;
  let graph = Typed_graph.create () in
  let envs =
    List.map
      (fun (u : Typed_load.unit_info) ->
        let env = Typed_path.build_env u.structure in
        if Scope.kind u.scope = Scope.Lib then Typed_graph.add_unit graph ~env u;
        (u, env))
      units
  in
  let per_unit =
    List.concat_map
      (fun ((u : Typed_load.unit_info), env) ->
        let file = u.source in
        let rjl100 = Typed_idents.check ~scope:u.scope ~file ~env u.structure in
        let rjl101 =
          if Scope.kind u.scope = Scope.Lib then
            Typed_polycmp.check ~table ~unit_prefix:u.prefix ~file ~env u.structure
          else []
        in
        let rjl103 = Typed_alloc.check ~file ~env u.structure in
        rjl100 @ rjl101 @ rjl103)
      envs
  in
  List.sort Finding.order (per_unit @ Typed_purity.check graph)

let run ?(cmt_dir = Filename.concat "_build" "default") () =
  let cmts = Typed_load.discover cmt_dir in
  if cmts = [] then
    Error
      (Printf.sprintf "no .cmt files under %s (build first: dune build @all, or pass --cmt-dir)"
         cmt_dir)
  else begin
    let units = ref [] and load_errors = ref [] in
    List.iter
      (fun path ->
        match Typed_load.load path with
        | Ok u -> units := u :: !units
        | Error msg -> load_errors := msg :: !load_errors)
      cmts;
    (* Interface-only and generated-source cmts are expected misses, not
       errors worth reporting; only keep genuinely unreadable files. *)
    let expected_miss m =
      Filename.check_suffix m "no .ml source recorded"
      || Filename.check_suffix m "not an implementation cmt"
    in
    let load_errors = List.filter (fun m -> not (expected_miss m)) (List.rev !load_errors) in
    let units = List.rev !units in
    Ok { findings = analyze units; units = List.length units; load_errors }
  end

let lint_cmts ?scope paths =
  let units =
    List.filter_map
      (fun p -> match Typed_load.load ?scope p with Ok u -> Some u | Error _ -> None)
    paths
  in
  analyze units

let hot_functions_of_cmt path =
  match Typed_load.load path with
  | Ok u -> Typed_alloc.hot_functions u.structure
  | Error _ -> []
