(** cmt discovery and loading for the typed tier. *)

type unit_info = {
  cmt_path : string;
  modname : string;
  prefix : string list;  (** normalized logical module path of the unit *)
  source : string;  (** repo-relative .ml path the cmt was compiled from *)
  scope : Scope.t;
  structure : Typedtree.structure;
}

val discover : string -> string list
(** Every [.cmt] file under a directory, sorted deterministically.
    Descends into dot-directories (dune hides object dirs there) but
    skips fixture trees ([lint_fixtures]) so the repo's own typed lint
    never loads the deliberately-broken positives. *)

val load : ?scope:Scope.t -> string -> (unit_info, string) result
(** Load one cmt.  Fails on non-implementation cmts and on generated
    sources ([.ml-gen] wrapper aliases).  [scope] overrides the
    classification derived from the recorded source path (fixtures are
    linted under a forced scope). *)
