(** RJL100: tier 1's banned-path tables (nondet / console I/O /
    wall-clock / concurrency) re-checked on resolved [Path.t]s.  Only
    the escapes tier 1 cannot see are reported: module aliases,
    [let module] rebindings and functor-applied paths — an identifier
    whose written form already matches the tier-1 tables stays tier 1's
    finding. *)

val check :
  scope:Scope.t -> file:string -> env:Typed_path.env -> Typedtree.structure -> Finding.t list
