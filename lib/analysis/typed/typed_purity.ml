(* RJL102: breadth-first reachability from every Policy_registry entry
   point over the call graph.  Two finding shapes:

   - a reachable node touches a banned ident directly (I/O, clock,
     Random, concurrency, nondet source): reported at the banned use
     site, so the suppression — if one is ever justified — sits next to
     the hazard itself;
   - a reachable node references a mutable toplevel: reported at the
     referencing use site (the read is what makes policy behavior depend
     on ambient state; the definition may be legitimate for other
     callers).

   Every finding carries the reachability chain so the report explains
   *why* the entry point is impure, not just where. *)

let chain_string keys =
  let keys = if List.length keys > 5 then List.hd keys :: [ "..." ] @ (List.rev (List.filteri (fun i _ -> i < 3) (List.rev keys))) else keys in
  String.concat " -> " keys

let check (graph : Typed_graph.t) =
  let findings = ref [] in
  let seen_sites = ref [] in
  let add ~file ~line ~col message =
    let site = (file, line, col) in
    if not (List.mem site !seen_sites) then begin
      seen_sites := site :: !seen_sites;
      findings :=
        Finding.make ~rule:Rule.Policy_purity ~severity:Rule.Error ~file ~line ~col message
        :: !findings
    end
  in
  let visited = ref [] in
  let rec visit chain (node : Typed_graph.node) =
    if List.mem node.key !visited then ()
    else begin
      visited := node.key :: !visited;
      let chain = chain @ [ node.key ] in
      List.iter
        (fun (desc, line, col) ->
          add ~file:node.unit_source ~line ~col
            (Printf.sprintf "policy entry reaches %s (chain: %s)" desc (chain_string chain)))
        (List.rev node.hazards);
      List.iter
        (fun (path, line, col) ->
          match Typed_graph.resolve_ref graph ~from:node path with
          | None -> ()
          | Some target ->
              if target.is_mutable then
                add ~file:node.unit_source ~line ~col
                  (Printf.sprintf "policy entry reaches mutable toplevel %s (chain: %s)"
                     target.key
                     (chain_string (chain @ [ target.key ])));
              visit chain target)
        (List.rev node.refs)
    end
  in
  List.iter (fun e -> visit [] e) (Typed_graph.entries graph);
  List.rev !findings
