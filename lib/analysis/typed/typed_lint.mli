(** The typed tier orchestrator: loads cmt files, builds the
    project-wide type table and call graph, and runs RJL100 (alias-proof
    banned paths), RJL101 (type-aware polymorphic comparison, lib/
    only), RJL102 (policy purity) and RJL103 (static zero-alloc).

    Findings are raw — pre-suppression — and keyed by the units'
    source-relative paths; the {!Driver} merges them with the syntactic
    tier and applies suppressions once over the union. *)

type result = {
  findings : Finding.t list;  (** pre-suppression, sorted *)
  units : int;  (** implementation units analyzed *)
  load_errors : string list;  (** unreadable cmts, for a warning line *)
}

val run : ?cmt_dir:string -> unit -> (result, string) Stdlib.result
(** Discover and analyze every cmt under [cmt_dir] (default
    [_build/default]), excluding fixture trees.  [Error] when the
    directory holds no cmts at all (the build hasn't run). *)

val lint_cmts : ?scope:Scope.t -> string list -> Finding.t list
(** Analyze an explicit list of cmt files as one project (used by the
    fixture tests, with a forced scope).  Unreadable files are skipped. *)

val hot_functions_of_cmt : string -> string list
(** [Typed_alloc.hot_functions] over one cmt file; empty on load
    failure.  Backs the annotation guard test. *)
