(** RJL103: static zero-alloc proof.  Flags structurally-allocating
    constructs (closures, tuples/constructors/records/arrays, mutable
    constructors, partial applications, float arithmetic in return
    position) inside the body of any binding annotated
    [let[@rejlint.hot] f ...], toplevel or local.  Subtrees marked
    [@rejlint.cold] (instrumentation branches, off in the steady state)
    are exempt.  Reading an already-stored float is deliberately not
    flagged — boundary boxing is the dynamic ceiling's job; this rule
    proves the loop builds no structures. *)

val check : file:string -> env:Typed_path.env -> Typedtree.structure -> Finding.t list

val hot_functions : Typedtree.structure -> string list
(** Names of every hot-annotated binding in the unit, in source order —
    the annotation guard test asserts the flat loop's set. *)

val pattern_names : 'k Typedtree.general_pattern -> string list
(** Names bound by a binding pattern (shared with the call-graph walk). *)
