(** RJL102: reachability from every [Policy_registry] entry point over
    the call graph.  Direct banned-ident uses report at the hazard site;
    references to mutable toplevels report at the referencing use site.
    Every finding carries the reachability chain. *)

val check : Typed_graph.t -> Finding.t list
