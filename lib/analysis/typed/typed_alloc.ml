(* RJL103: static zero-alloc proof for [@rejlint.hot] functions.

   PR 6's flat core guarantees a zero-allocation steady state, enforced
   dynamically by a minor-words-per-event ceiling.  This rule catches a
   boxing regression at lint time instead: inside the body of any
   binding annotated [let[@rejlint.hot] f ...] (toplevel or local), the
   structurally-allocating constructs are flagged:

   - closures ([fun]/[function] anywhere past the definition spine)
   - tuples, non-constant constructors (incl. [Some]/[::]), records,
     array literals, polymorphic variants with payload, lazy/object/
     first-class modules, let-ops
   - mutable-state constructors ([ref], [Array.make], [Hashtbl.create])
   - partial applications (the result type of the application is still
     an arrow: a closure is built at runtime)
   - float arithmetic in return position — the fresh float is boxed at
     the function boundary

   Deliberately NOT flagged: reading an already-stored float
   ([st.clock.(0)] in an accessor).  The unavoidable boundary box of a
   float return is governed by the dynamic ceiling; this rule proves the
   loop builds no structures.  Float arithmetic whose result is consumed
   in place ([a.(i) <- a.(i) +. x], [if t < u +. eps ...]) compiles
   unboxed and is accepted.

   An expression marked [@rejlint.cold] (and everything beneath it) is
   exempt — the annotation marks instrumentation/trace branches that are
   off in the steady state. *)

let has_attr name (attrs : Parsetree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs

let hot_attr = "rejlint.hot"
let cold_attr = "rejlint.cold"

let float_arith = function
  | [ ("+." | "-." | "*." | "/." | "**" | "~-." | "abs_float" | "sqrt" | "exp" | "log"
      | "float_of_int" | "mod_float") ] ->
      true
  | [ "Float";
      ( "add" | "sub" | "mul" | "div" | "neg" | "abs" | "rem" | "fma" | "sqrt" | "pow"
      | "of_int" | "min" | "max" ) ] ->
      true
  | _ -> false

(* Names bound by a binding pattern (a hot binding is normally a single
   [Tpat_var], but aliases and constraints are peeled for robustness). *)
let rec pattern_names : type k. k Typedtree.general_pattern -> string list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ Ident.name id ]
  | Tpat_alias (p, id, _) -> Ident.name id :: pattern_names p
  | _ -> []

let binding_name vb =
  match pattern_names vb.Typedtree.vb_pat with name :: _ -> name | [] -> "<pattern>"

let check ~file ~env (structure : Typedtree.structure) =
  let findings = ref [] in
  let add ~fn ~loc what =
    let p = loc.Location.loc_start in
    findings :=
      Finding.make ~rule:Rule.Hot_alloc ~severity:Rule.Error ~file ~line:p.pos_lnum
        ~col:(p.pos_cnum - p.pos_bol)
        (Printf.sprintf "%s in [@rejlint.hot] function %s" what fn)
      :: !findings
  in
  let cold (e : Typedtree.expression) =
    has_attr cold_attr e.exp_attributes
    || List.exists (fun (_, _, attrs) -> has_attr cold_attr attrs) e.exp_extra
  in
  let check_hot fn expr =
    let flag loc what = add ~fn ~loc what in
    (* The definition spine — the curried parameter chain, including a
       trailing [function] dispatch — is the function itself, built once
       at definition time; everything below is per-call body code. *)
    let rec spine (e : Typedtree.expression) =
      if cold e then ()
      else
        match e.exp_desc with
        | Texp_function { cases; _ } ->
            List.iter
              (fun (c : Typedtree.value Typedtree.case) ->
                (match c.c_guard with Some g -> body ~tail:false g | None -> ());
                spine c.c_rhs)
              cases
        | _ -> body ~tail:true e
    and body ~tail (e : Typedtree.expression) =
      if cold e then ()
      else
        match e.exp_desc with
        | Texp_function _ -> flag e.exp_loc "closure allocation"
        | Texp_tuple l ->
            flag e.exp_loc "tuple allocation";
            List.iter (body ~tail:false) l
        | Texp_construct (lid, _, (_ :: _ as args)) ->
            flag e.exp_loc
              (Printf.sprintf "constructor allocation (%s)"
                 (String.concat "." (Ast_checks.lid_path lid.txt)));
            List.iter (body ~tail:false) args
        | Texp_record { fields; extended_expression; _ } ->
            flag e.exp_loc "record allocation";
            Array.iter
              (fun (_, def) ->
                match def with
                | Typedtree.Overridden (_, e) -> body ~tail:false e
                | Typedtree.Kept _ -> ())
              fields;
            Option.iter (body ~tail:false) extended_expression
        | Texp_array l ->
            flag e.exp_loc "array literal allocation";
            List.iter (body ~tail:false) l
        | Texp_variant (_, Some arg) ->
            flag e.exp_loc "polymorphic variant allocation";
            body ~tail:false arg
        | Texp_lazy _ -> flag e.exp_loc "lazy allocation"
        | Texp_object _ -> flag e.exp_loc "object allocation"
        | Texp_pack _ -> flag e.exp_loc "first-class module allocation"
        | Texp_letop _ -> flag e.exp_loc "let-operator (closure) allocation"
        | Texp_apply (head, args) ->
            (match Types.get_desc e.exp_type with
            | Tarrow _ -> flag e.exp_loc "partial application (closure) allocation"
            | _ -> ());
            (match head.exp_desc with
            | Texp_ident (p, _, _) -> (
                let resolved = Typed_path.resolve env p in
                (match Ast_checks.mutable_ctor resolved with
                | Some what -> flag e.exp_loc (what ^ " allocation")
                | None -> ());
                if tail && float_arith resolved then
                  flag e.exp_loc "float arithmetic in return position (fresh box at the boundary)")
            | _ -> body ~tail:false head);
            List.iter (fun (_, a) -> Option.iter (body ~tail:false) a) args
        | Texp_let (_, vbs, b) ->
            List.iter (fun vb -> body ~tail:false vb.Typedtree.vb_expr) vbs;
            body ~tail b
        | Texp_sequence (a, b) ->
            body ~tail:false a;
            body ~tail b
        | Texp_ifthenelse (c, t, f) ->
            body ~tail:false c;
            body ~tail t;
            Option.iter (body ~tail) f
        | Texp_match (scrut, cases, _) ->
            body ~tail:false scrut;
            List.iter
              (fun (c : Typedtree.computation Typedtree.case) ->
                (match c.c_guard with Some g -> body ~tail:false g | None -> ());
                body ~tail c.c_rhs)
              cases
        | Texp_try (b, cases) ->
            body ~tail b;
            List.iter
              (fun (c : Typedtree.value Typedtree.case) ->
                (match c.c_guard with Some g -> body ~tail:false g | None -> ());
                body ~tail c.c_rhs)
              cases
        | Texp_field (b, _, _) -> body ~tail:false b
        | Texp_setfield (a, _, _, b) ->
            body ~tail:false a;
            body ~tail:false b
        | Texp_while (c, b) ->
            body ~tail:false c;
            body ~tail:false b
        | Texp_for (_, _, lo, hi, _, b) ->
            body ~tail:false lo;
            body ~tail:false hi;
            body ~tail:false b
        | Texp_assert (b, _) -> body ~tail:false b
        | Texp_open (_, b) -> body ~tail b
        | Texp_letmodule (_, _, _, _, b) -> body ~tail b
        | Texp_letexception (_, b) -> body ~tail b
        | Texp_ident _ | Texp_constant _ | Texp_unreachable | Texp_extension_constructor _
        | Texp_instvar _ | Texp_variant (_, None) | Texp_construct (_, _, []) ->
            ()
        | Texp_setinstvar _ | Texp_override _ | Texp_send _ | Texp_new _ ->
            flag e.exp_loc "object operation (allocating)"
    in
    spine expr
  in
  let value_binding_pass sub (vb : Typedtree.value_binding) =
    if has_attr hot_attr vb.vb_attributes then check_hot (binding_name vb) vb.vb_expr;
    Tast_iterator.default_iterator.value_binding sub vb
  in
  let it = { Tast_iterator.default_iterator with value_binding = value_binding_pass } in
  it.structure it structure;
  List.rev !findings

(* The names of every hot-annotated binding in the unit, for the
   annotation guard test: removing [@rejlint.hot] from the flat loop
   must be caught by something. *)
let hot_functions (structure : Typedtree.structure) =
  let acc = ref [] in
  let value_binding_pass sub (vb : Typedtree.value_binding) =
    if has_attr hot_attr vb.vb_attributes then acc := binding_name vb :: !acc;
    Tast_iterator.default_iterator.value_binding sub vb
  in
  let it = { Tast_iterator.default_iterator with value_binding = value_binding_pass } in
  it.structure it structure;
  List.rev !acc
