(* Project-wide type classification for RJL101, built without touching
   the marshalled [Env.t] summaries inside cmt files (expanding those
   needs [Envaux]/[Load_path] and is fragile across compiler versions).
   Instead, the type declarations found in the project's own cmts form a
   lookup table, and everything else falls back to a name-based stdlib
   safelist.  Unknown types classify [Abstract] — conservative in the
   right direction: the linter cannot prove them float-free. *)

type cls = Safe | Float | Deep | Abstract | Var | Fn

let describe_cls = function
  | Safe -> "safe"
  | Float -> "float"
  | Deep -> "float-bearing"
  | Abstract -> "abstract"
  | Var -> "polymorphic"
  | Fn -> "functional"

let rank = function Safe -> 0 | Float -> 1 | Deep -> 2 | Var -> 3 | Abstract -> 4 | Fn -> 5

let combine a b = if rank a >= rank b then a else b

let combine_list l = List.fold_left combine Safe l

(* Inside a structure (tuple, record field, variant argument, container
   element) an atomic float becomes a float-bearing structure: the
   comparison will traverse into it. *)
let deepen = function Float -> Deep | c -> c

(* Atomic builtins on which polymorphic comparison agrees with the typed
   comparators. *)
let safelisted = function
  | "int" | "bool" | "char" | "unit" | "string" | "bytes" | "int32" | "int64" | "nativeint"
  | "Int.t" | "Bool.t" | "Char.t" | "String.t" | "Int32.t" | "Int64.t" | "Nativeint.t" ->
      true
  | _ -> false

(* Containers whose comparison traverses element types. *)
let container = function
  | "list" | "option" | "array" | "ref" | "result" | "Seq.t" | "Lazy.t" | "List.t"
  | "Option.t" | "Array.t" | "Result.t" | "Either.t" ->
      true
  | _ -> false

type t = (string, Types.type_declaration) Hashtbl.t

let create () : t = Hashtbl.create 256

(* Record every type declaration in the unit under its full logical
   dotted name ("Sched_model.Job.t"), recursing into nested modules. *)
let add_unit (table : t) ~prefix (structure : Typedtree.structure) =
  let rec walk_structure prefix (str : Typedtree.structure) =
    List.iter (walk_item prefix) str.str_items
  and walk_item prefix (item : Typedtree.structure_item) =
    match item.str_desc with
    | Tstr_type (_, decls) ->
        List.iter
          (fun (d : Typedtree.type_declaration) ->
            let key = String.concat "." (prefix @ [ Ident.name d.typ_id ]) in
            if not (Hashtbl.mem table key) then Hashtbl.add table key d.typ_type)
          decls
    | Tstr_module mb -> walk_module_binding prefix mb
    | Tstr_recmodule mbs -> List.iter (walk_module_binding prefix) mbs
    | _ -> ()
  and walk_module_binding prefix (mb : Typedtree.module_binding) =
    let sub_prefix =
      match mb.mb_id with Some id -> prefix @ [ Ident.name id ] | None -> prefix
    in
    walk_module_expr sub_prefix mb.mb_expr
  and walk_module_expr prefix (mexpr : Typedtree.module_expr) =
    match mexpr.mod_desc with
    | Tmod_structure s -> walk_structure prefix s
    | Tmod_constraint (m, _, _, _) -> walk_module_expr prefix m
    | _ -> ()
  in
  walk_structure prefix structure

(* Look a Tconstr path up in the table.  Local references print without
   their unit prefix ("t", "State.t"), so each ancestor prefix of the
   analyzing unit is tried, innermost first, before the bare name. *)
let find (table : t) ~unit_prefix path =
  let dotted p = String.concat "." p in
  let rec prefixes acc = function
    | [] -> List.rev ([] :: acc)
    | p -> prefixes (p :: acc) (List.rev (List.tl (List.rev p)))
  in
  let candidates = List.map (fun pre -> dotted (pre @ path)) (prefixes [] unit_prefix) in
  let rec try_keys = function
    | [] -> None
    | k :: rest -> ( match Hashtbl.find_opt table k with Some d -> Some d | None -> try_keys rest)
  in
  try_keys candidates

let classify (table : t) ~unit_prefix ty =
  (* [var_cls] is the class substituted for type variables: [Var] at the
     top level, the combined argument class while expanding a
     declaration body (approximating instantiation without a real
     substitution).  [visited] holds type-expression ids, which makes
     recursive types converge: a back-edge contributes [Safe] and the
     float content is still seen on the first pass. *)
  let rec go ~var_cls visited ty =
    let id = Types.get_id ty in
    if List.mem id visited then Safe
    else
      let visited = id :: visited in
      match Types.get_desc ty with
      | Tvar _ | Tunivar _ -> var_cls
      | Tarrow _ -> Fn
      | Ttuple l -> deepen (combine_list (List.map (go ~var_cls visited) l))
      | Tpoly (t, _) -> go ~var_cls visited t
      | Tlink t | Tsubst (t, _) -> go ~var_cls visited t
      | Tconstr (p, args, _) -> (
          let name = String.concat "." (Typed_path.normalize (path_to_list p)) in
          if safelisted name then Safe
          else if name = "float" || name = "Float.t" then Float
          else if container name then
            deepen (combine_list (List.map (go ~var_cls visited) args))
          else
            match find table ~unit_prefix (Typed_path.normalize (path_to_list p)) with
            | Some decl ->
                let arg_cls = combine_list (List.map (go ~var_cls visited) args) in
                decl_cls visited decl arg_cls
            | None -> Abstract)
      | Tvariant _ -> Abstract
      | Tobject _ | Tfield _ | Tnil | Tpackage _ -> Abstract
  and path_to_list p =
    match p with
    | Path.Pident id -> [ Ident.name id ]
    | Path.Pdot (p, s) -> path_to_list p @ [ s ]
    | Path.Papply (f, _) -> Typed_path.strip_functor (path_to_list f)
    | Path.Pextra_ty (p, _) -> path_to_list p
  and decl_cls visited (decl : Types.type_declaration) arg_cls =
    match decl.type_manifest with
    | Some m -> go ~var_cls:arg_cls visited m
    | None -> (
        match decl.type_kind with
        | Type_record (lbls, _) ->
            deepen
              (combine_list
                 (List.map (fun (l : Types.label_declaration) -> go ~var_cls:arg_cls visited l.ld_type) lbls))
        | Type_variant (ctors, _) ->
            deepen
              (combine_list
                 (List.map
                    (fun (c : Types.constructor_declaration) ->
                      match c.cd_args with
                      | Cstr_tuple tys -> combine_list (List.map (go ~var_cls:arg_cls visited) tys)
                      | Cstr_record lbls ->
                          combine_list
                            (List.map
                               (fun (l : Types.label_declaration) -> go ~var_cls:arg_cls visited l.ld_type)
                               lbls))
                    ctors))
        | Type_abstract -> Abstract
        | Type_open -> Abstract)
  in
  go ~var_cls:Var [] ty
