(** RJL101: type-aware polymorphic comparison.  Flags Stdlib's
    [compare]/[min]/[max] — in any position — unless instantiated at a
    provably-safe atomic builtin, and the structural comparison
    operators at float-bearing, abstract or functional types.
    Comparisons against a constant constructor literal ([x = None],
    [l <> []]) only inspect the tag and are accepted, as are primitive
    comparisons at atomic [float] (the simulator's documented style). *)

val check :
  table:Typed_env.t ->
  unit_prefix:string list ->
  file:string ->
  env:Typed_path.env ->
  Typedtree.structure ->
  Finding.t list
