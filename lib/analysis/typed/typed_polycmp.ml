(* RJL101: type-aware polymorphic comparison.  Tier 1's RJL002 only
   inspects lambdas passed to sorts; with the Typedtree every occurrence
   of Stdlib's polymorphic [compare]/[min]/[max] and the structural
   comparison operators carries its instantiated type, so the hazard is
   visible anywhere — including comparators passed point-free and
   comparisons buried in ordinary code.

   The verdicts, from the instantiated first-argument type:

   - [compare]/[min]/[max]: flagged unless the type is a provably-safe
     atomic builtin.  At [float] they disagree with [Float.compare]/
     [Float.min] on NaN; at abstract/polymorphic types nothing is
     proven; at function types they raise.
   - [=]/[<>]/[<]/[<=]/[>]/[>=]: flagged at float-bearing structures,
     abstract types and function types.  Atomic [float] comparisons are
     deliberately accepted — primitive float [<]/[>] is the simulator's
     documented style (byte-identity depends on it) — and so are
     comparisons against a constant constructor literal ([x = None],
     [l <> []], [k = `Tag]), which only ever inspect the tag. *)

let compare_family resolved =
  match resolved with [ ("compare" | "min" | "max") ] -> true | _ -> false

let eq_family resolved =
  match resolved with [ ("=" | "<>" | "<" | "<=" | ">" | ">=") ] -> true | _ -> false

(* First argument type of an instantiated comparison operator. *)
let first_arg_type ty =
  match Types.get_desc ty with Types.Tarrow (_, a, _, _) -> Some a | _ -> None

let is_constant_construct (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_construct (_, _, []) -> true
  | Texp_variant (_, None) -> true
  | _ -> false

let check ~table ~unit_prefix ~file ~env (structure : Typedtree.structure) =
  let findings = ref [] in
  let add ~loc message =
    let p = loc.Location.loc_start in
    findings :=
      Finding.make ~rule:Rule.Typed_poly_compare ~severity:Rule.Error ~file ~line:p.pos_lnum
        ~col:(p.pos_cnum - p.pos_bol) message
      :: !findings
  in
  (* Equality applications whose head was already handled (and possibly
     exempted by a constant-constructor argument); the bare-ident branch
     skips these so each occurrence is judged exactly once. *)
  let handled_heads = ref [] in
  let type_name ty = Format.asprintf "%a" Printtyp.type_expr ty in
  let judge_ident ~exempt_eq (e : Typedtree.expression) path lid =
    let resolved = Typed_path.resolve env path in
    let flag_cls verdict_bad name =
      match first_arg_type e.exp_type with
      | None -> ()
      | Some a ->
          let cls = Typed_env.classify table ~unit_prefix a in
          if verdict_bad cls then
            add ~loc:lid.Location.loc
              (Printf.sprintf
                 "polymorphic %s instantiated at %s type %s; use a typed comparator \
                  (Float.compare, Int.compare, ...)"
                 name
                 (Typed_env.describe_cls cls)
                 (type_name a))
    in
    if compare_family resolved then
      flag_cls (function Typed_env.Safe -> false | _ -> true) (String.concat "." resolved)
    else if eq_family resolved && not exempt_eq then
      flag_cls
        (function Typed_env.Deep | Typed_env.Abstract | Typed_env.Fn -> true | _ -> false)
        ("(" ^ String.concat "." resolved ^ ")")
  in
  let expr_pass sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply (({ exp_desc = Texp_ident (hp, hlid, _); _ } as head), args) ->
        let resolved = Typed_path.resolve env hp in
        if eq_family resolved then begin
          handled_heads := head :: !handled_heads;
          let positional =
            List.filter_map
              (fun (l, a) -> match (l, a) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
              args
          in
          let exempt = List.exists is_constant_construct positional in
          judge_ident ~exempt_eq:exempt head hp hlid
        end
    | Texp_ident (path, lid, _) ->
        if not (List.memq e !handled_heads) then judge_ident ~exempt_eq:false e path lid
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr = expr_pass } in
  it.structure it structure;
  List.rev !findings
