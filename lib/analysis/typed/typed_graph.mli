(** The intra-library call graph for RJL102.  Nodes are toplevel value
    bindings (including nested modules) keyed by logical dotted name;
    each records whether its RHS builds mutable toplevel state, the
    banned idents its body touches directly (minus the unit's Scope
    allowlists), and every resolved reference with its use location. *)

type node = {
  key : string;
  prefix : string list;
  unit_source : string;
  mutable is_mutable : bool;
  mutable hazards : (string * int * int) list;
  mutable refs : (string list * int * int) list;
}

type t

val create : unit -> t
val add_unit : t -> env:Typed_path.env -> Typed_load.unit_info -> unit

val find_node : t -> string -> node option

val resolve_ref : t -> from:node -> string list -> node option
(** Resolve a recorded reference against the node table, trying the
    referencing node's ancestor prefixes innermost-first (local
    references print without their container prefix). *)

val entries : t -> node list
(** The RJL102 entry points: every binding whose containing module is
    named [Policy_registry]. *)
