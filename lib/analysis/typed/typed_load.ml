(* cmt discovery and loading.  Dune leaves cmt files under
   [_build/default/<dir>/.<lib>.objs/byte/]; discovery therefore must
   descend into dot-directories, unlike the source walk.  Fixture cmts
   (compiled under test/lint_fixtures/) are excluded so the repo's own
   typed lint never sees the deliberately-broken positives. *)

type unit_info = {
  cmt_path : string;
  modname : string;
  prefix : string list;  (* normalized logical module path of the unit *)
  source : string;  (* repo-relative .ml path the cmt was compiled from *)
  scope : Scope.t;
  structure : Typedtree.structure;
}

let excluded_dirs = [ ".git"; "node_modules"; "lint_fixtures" ]

let discover dir =
  let acc = ref [] in
  let rec go d =
    match Sys.readdir d with
    | entries ->
        Array.sort String.compare entries;
        Array.iter
          (fun entry ->
            let path = Filename.concat d entry in
            if Sys.is_directory path then begin
              if not (List.mem entry excluded_dirs) then go path
            end
            else if Filename.check_suffix entry ".cmt" then acc := path :: !acc)
          entries
    | exception Sys_error _ -> ()
  in
  if Sys.file_exists dir && Sys.is_directory dir then go dir;
  List.rev !acc

let load ?scope path =
  match Cmt_format.read_cmt path with
  | exception exn ->
      Error (Printf.sprintf "%s: cannot read cmt (%s)" path (Printexc.to_string exn))
  | infos -> (
      match infos.cmt_annots with
      | Implementation structure -> (
          match infos.cmt_sourcefile with
          | Some src when Filename.check_suffix src ".ml" ->
              (* Generated sources (dune's ".ml-gen" wrapper aliases) are
                 filtered out by the suffix check above. *)
              let source =
                String.map (fun c -> if c = '\\' then '/' else c) src
              in
              let scope = match scope with Some s -> s | None -> Scope.classify source in
              Ok
                {
                  cmt_path = path;
                  modname = infos.cmt_modname;
                  prefix = Typed_path.split_mangled infos.cmt_modname;
                  source;
                  scope;
                  structure;
                }
          | _ -> Error (Printf.sprintf "%s: no .ml source recorded" path))
      | _ -> Error (Printf.sprintf "%s: not an implementation cmt" path))
