(** Resolved-path plumbing for the typed tier: turns a Typedtree
    [Path.t] into the canonical module path it denotes, seeing through
    module aliases, [let module] rebindings and functor applications,
    and normalizing dune's wrapped-library mangling
    (["Sched_sim__Driver"] reads as [["Sched_sim"; "Driver"]]). *)

type target =
  | Module_path of Path.t  (** alias of another module path *)
  | Applied of Path.t  (** result of applying the functor at this path *)
  | Logical of string list  (** structure defined at this logical path *)

type env
(** Module bindings of one compilation unit, keyed by [Ident.t] (stamps
    are unique within a unit, so one flat table suffices). *)

val empty_env : unit -> env
val bind : env -> Ident.t -> target -> unit

val build_env : Typedtree.structure -> env
(** Collect every module alias / functor application / structure binding
    in the unit, at the structure toplevel (with true nested prefixes)
    and inside expressions ([let module ...]). *)

val split_mangled : string -> string list
(** ["Sched_sim__Driver"] -> [["Sched_sim"; "Driver"]];
    ["Sched_sim__"] -> [["Sched_sim"]]. *)

val strip_functor : string list -> string list
(** Collapse an applied functor onto its parent module:
    [["Hashtbl"; "Make"]] -> [["Hashtbl"]]. *)

val normalize : string list -> string list
(** Flatten mangled components and strip a leading ["Stdlib"]. *)

val resolve : env -> Path.t -> string list
(** The canonical, normalized module path denoted by [Path.t], with
    aliases chased and applied functors collapsed onto their parent
    module ([Hashtbl.Make(K).iter] resolves to [["Hashtbl"; "iter"]]). *)
