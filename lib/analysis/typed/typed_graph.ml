(* The intra-library call graph for RJL102.  Nodes are toplevel value
   bindings (including bindings inside nested modules), keyed by their
   logical dotted name ("Sched_experiments.Policy_registry.pack").  Each
   node records:

   - whether its right-hand side builds mutable toplevel state (the
     typed analogue of RJL004's shape check),
   - the banned idents its body touches directly (I/O, clock, Random,
     concurrency, nondet), minus the unit's Scope allowlists,
   - every resolved identifier path it references, with use locations —
     the edges, resolved against the node table at traversal time.

   References inside closures count as references of the binding that
   builds the closure: a registry entry packing [fun () -> run ...] is
   exactly the kind of latent reach the rule exists to prove away. *)

type node = {
  key : string;
  prefix : string list;  (* module path of the binding's container *)
  unit_source : string;
  mutable is_mutable : bool;
  mutable hazards : (string * int * int) list;  (* description, line, col *)
  mutable refs : (string list * int * int) list;  (* resolved path, line, col *)
}

type t = { nodes : (string, node) Hashtbl.t; mutable entries : node list }

let create () = { nodes = Hashtbl.create 512; entries = [] }

let find_node t key = Hashtbl.find_opt t.nodes key

(* Resolve a reference recorded in [from] against the node table: local
   references print without their container prefix, so ancestor
   prefixes are tried innermost-first before the bare path. *)
let resolve_ref t ~(from : node) path =
  let rec prefixes acc = function
    | [] -> List.rev ([] :: acc)
    | p -> prefixes (p :: acc) (List.rev (List.tl (List.rev p)))
  in
  let rec try_candidates = function
    | [] -> None
    | pre :: rest -> (
        match find_node t (String.concat "." (pre @ path)) with
        | Some n -> Some n
        | None -> try_candidates rest)
  in
  try_candidates (prefixes [] from.prefix)

let rec top_mutable env (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_array (_ :: _) -> true
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
      Ast_checks.mutable_ctor (Typed_path.resolve env p) <> None
  | Texp_tuple l -> List.exists (top_mutable env) l
  | _ -> false

let hazard_of ~scope resolved =
  let clock_ok = Scope.clock scope in
  let pool_ok = Scope.pool scope in
  let io_ok = Scope.io_allowed scope in
  let dotted = String.concat "." resolved in
  match Ast_checks.banned_wallclock resolved with
  | Some why when not clock_ok -> Some (Printf.sprintf "%s (%s)" dotted why)
  | Some _ -> None
  | None -> (
      match Ast_checks.banned_nondet resolved with
      | Some why -> Some (Printf.sprintf "%s (%s)" dotted why)
      | None -> (
          match resolved with
          | "Random" :: _ ->
              Some (Printf.sprintf "%s (Random state is ambient mutable state)" dotted)
          | _ -> (
              match Ast_checks.banned_concurrency resolved with
              | Some why when not pool_ok -> Some (Printf.sprintf "%s (%s)" dotted why)
              | Some _ -> None
              | None -> (
                  match Ast_checks.banned_io resolved with
                  | Some why when not io_ok -> Some (Printf.sprintf "%s (%s)" dotted why)
                  | _ -> None))))

let analyze_binding ~env ~scope node (expr : Typedtree.expression) =
  node.is_mutable <- top_mutable env expr;
  let expr_pass sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, lid, _) ->
        let resolved = Typed_path.resolve env p in
        let pos = lid.Location.loc.loc_start in
        let line = pos.pos_lnum and col = pos.pos_cnum - pos.pos_bol in
        (match hazard_of ~scope resolved with
        | Some desc -> node.hazards <- (desc, line, col) :: node.hazards
        | None -> ());
        node.refs <- (resolved, line, col) :: node.refs
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr = expr_pass } in
  it.expr it expr

let is_entry_prefix prefix =
  match List.rev prefix with "Policy_registry" :: _ -> true | _ -> false

let add_unit t ~env (u : Typed_load.unit_info) =
  let scope = u.scope in
  let rec walk_structure prefix (str : Typedtree.structure) =
    List.iter (walk_item prefix) str.str_items
  and walk_item prefix (item : Typedtree.structure_item) =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match Typed_alloc.pattern_names vb.vb_pat with
            | [] -> ()
            | names ->
                List.iter
                  (fun name ->
                    let key = String.concat "." (prefix @ [ name ]) in
                    let node =
                      {
                        key;
                        prefix;
                        unit_source = u.source;
                        is_mutable = false;
                        hazards = [];
                        refs = [];
                      }
                    in
                    analyze_binding ~env ~scope node vb.vb_expr;
                    if not (Hashtbl.mem t.nodes key) then Hashtbl.add t.nodes key node;
                    if is_entry_prefix prefix then t.entries <- node :: t.entries)
                  names)
          vbs
    | Tstr_module mb -> walk_module_binding prefix mb
    | Tstr_recmodule mbs -> List.iter (walk_module_binding prefix) mbs
    | _ -> ()
  and walk_module_binding prefix (mb : Typedtree.module_binding) =
    let sub_prefix =
      match mb.mb_id with Some id -> prefix @ [ Ident.name id ] | None -> prefix
    in
    walk_module_expr sub_prefix mb.mb_expr
  and walk_module_expr prefix (mexpr : Typedtree.module_expr) =
    match mexpr.mod_desc with
    | Tmod_structure s -> walk_structure prefix s
    | Tmod_constraint (m, _, _, _) -> walk_module_expr prefix m
    | _ -> ()
  in
  walk_structure u.prefix u.structure

let entries t = List.rev t.entries
