(* Resolved-path plumbing for the typed tier.

   The parsetree pass matches the tokens the developer wrote; this module
   turns a Typedtree [Path.t] into the canonical module path the tokens
   *denote*, resolving three escapes the syntactic pass cannot see:

   - module aliases: [module H = Hashtbl ... H.iter]
   - local module bindings: [let module U = Random in U.self_init]
   - functor applications: [module M = Hashtbl.Make (K) ... M.iter]
     (an instance of [Hashtbl.Make] iterates in hash order exactly like
     the base [Hashtbl], so the applied path normalizes to the functor's
     parent)

   Dune's module mangling is also normalized away: the wrapped-library
   unit ["Sched_sim__Driver"] flattens to [["Sched_sim"; "Driver"]] and
   the generated alias module ["Sched_sim__"] to [["Sched_sim"]], so a
   path reads the same whether it went through the library wrapper or
   straight to the mangled unit. *)

type target =
  | Module_path of Path.t  (* alias of another module path *)
  | Applied of Path.t  (* result of applying the functor at this path *)
  | Logical of string list  (* structure defined here, at this logical path *)

type env = { mutable modules : (Ident.t * target) list }

let empty_env () = { modules = [] }

let bind env id target = env.modules <- (id, target) :: env.modules

let lookup env id =
  let rec go = function
    | [] -> None
    | (id', t) :: rest -> if Ident.same id id' then Some t else go rest
  in
  go env.modules

(* "Sched_sim__Driver" -> ["Sched_sim"; "Driver"]; "Sched_sim__" ->
   ["Sched_sim"].  Splitting on every "__" is deliberate: dune never
   produces nested mangling, and user identifiers with double
   underscores are not worth distinguishing in a lint. *)
let split_mangled s =
  let n = String.length s in
  let parts = ref [] and start = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    if s.[!i] = '_' && s.[!i + 1] = '_' then begin
      if !i > !start then parts := String.sub s !start (!i - !start) :: !parts;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  if !start < n then parts := String.sub s !start (n - !start) :: !parts;
  List.rev !parts

(* An applied functor instance behaves like its parent module for the
   banned-path tables: Hashtbl.Make(K).iter is Hashtbl.iter. *)
let strip_functor path =
  match List.rev path with
  | ("Make" | "MakeSeeded") :: rest -> List.rev rest
  | _ -> path

let normalize path =
  let flat = List.concat_map split_mangled path in
  match flat with "Stdlib" :: rest -> rest | p -> p

let resolve env path =
  (* Alias chains are finite in well-typed programs; the fuel guard only
     protects against a malformed cmt. *)
  let rec go fuel p =
    if fuel = 0 then []
    else
      match p with
      | Path.Pident id -> (
          match lookup env id with
          | Some (Module_path target) -> go (fuel - 1) target
          | Some (Applied target) -> strip_functor (go (fuel - 1) target)
          | Some (Logical l) -> l
          | None -> [ Ident.name id ])
      | Path.Pdot (p, s) -> go fuel p @ [ s ]
      | Path.Papply (f, _) -> strip_functor (go (fuel - 1) f)
      | Path.Pextra_ty (p, _) -> go fuel p
  in
  normalize (go 64 path)

(* The module environment is a single flat table for the whole unit:
   Ident stamps are unique within a compilation unit, so no scoping
   discipline is needed.  Structure bindings found while walking
   expressions get a degenerate logical path (their members are analyzed
   in place anyway); structure bindings at the toplevel are recorded by
   the graph walk with their true prefix via [bind]. *)
let rec module_target env ~logical (mexpr : Typedtree.module_expr) =
  match mexpr.mod_desc with
  | Tmod_ident (p, _) -> Some (Module_path p)
  | Tmod_constraint (m, _, _, _) -> module_target env ~logical m
  | Tmod_apply (f, _, _) -> (
      match module_target env ~logical f with
      | Some (Module_path p) -> Some (Applied p)
      | Some (Applied p) -> Some (Applied p)
      | _ -> None)
  | Tmod_structure _ -> Some (Logical logical)
  | _ -> None

let build_env structure =
  let env = empty_env () in
  let record prefix (id : Ident.t option) mexpr =
    match id with
    | None -> ()
    | Some id -> (
        let logical = prefix @ [ Ident.name id ] in
        match module_target env ~logical mexpr with
        | Some t -> bind env id t
        | None -> ())
  in
  (* Walk with an explicit prefix for structure-level bindings so nested
     structures get true logical paths; expression-level bindings are
     collected by a plain iterator pass (prefix-less). *)
  let rec walk_structure prefix (str : Typedtree.structure) =
    List.iter (walk_item prefix) str.str_items
  and walk_item prefix (item : Typedtree.structure_item) =
    match item.str_desc with
    | Tstr_module mb -> walk_module_binding prefix mb
    | Tstr_recmodule mbs -> List.iter (walk_module_binding prefix) mbs
    | _ -> ()
  and walk_module_binding prefix (mb : Typedtree.module_binding) =
    record prefix mb.mb_id mb.mb_expr;
    let sub_prefix =
      match mb.mb_id with Some id -> prefix @ [ Ident.name id ] | None -> prefix
    in
    walk_module_expr sub_prefix mb.mb_expr
  and walk_module_expr prefix (mexpr : Typedtree.module_expr) =
    match mexpr.mod_desc with
    | Tmod_structure s -> walk_structure prefix s
    | Tmod_constraint (m, _, _, _) -> walk_module_expr prefix m
    | _ -> ()
  in
  walk_structure [] structure;
  let expr_pass sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_letmodule (Some id, _, _, mexpr, _) -> record [] (Some id) mexpr
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr = expr_pass } in
  it.structure it structure;
  env
