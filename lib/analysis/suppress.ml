(* A suppression is written as a comment:

     (* rejlint: allow <rule> [<rule> ...] *)

   and silences findings for the named rules on the same line and on the
   line immediately below (so it can sit on its own line above the
   offending expression, or trail it).  [allow all] silences every rule.

   Comments are not part of the parsetree, so we scan the raw source.  A
   line-oriented scan is deliberate: suppressions inside string literals
   are pathological enough not to matter for a lint. *)

type entry = { line : int; rules : Rule.id list; all : bool; raw : string list }

type t = entry list

let marker = "rejlint:"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

let tokens_after s start =
  let n = String.length s in
  let rec skip i = if i < n && (s.[i] = ' ' || s.[i] = '\t') then skip (i + 1) else i in
  let rec go acc i =
    let i = skip i in
    if i >= n then List.rev acc
    else if s.[i] = '*' && i + 1 < n && s.[i + 1] = ')' then List.rev acc
    else begin
      let j = ref i in
      while !j < n && is_ident_char s.[!j] do incr j done;
      if !j = i then List.rev acc else go (String.sub s i (!j - i) :: acc) !j
    end
  in
  go [] start

let parse_line line text =
  match String.index_opt text 'r' with
  | None -> None
  | Some _ -> (
      (* Find the marker anywhere in the line. *)
      let n = String.length text and m = String.length marker in
      let rec find i =
        if i + m > n then None
        else if String.sub text i m = marker then Some (i + m)
        else find (i + 1)
      in
      match find 0 with
      | None -> None
      | Some after -> (
          match tokens_after text after with
          | "allow" :: raw when raw <> [] ->
              let all = List.mem "all" raw in
              let rules = List.filter_map Rule.of_string raw in
              Some { line; rules; all; raw }
          | _ -> None))

let scan source =
  let entries = ref [] in
  let line = ref 1 in
  let start = ref 0 in
  let n = String.length source in
  let flush stop =
    let text = String.sub source !start (stop - !start) in
    (match parse_line !line text with Some e -> entries := e :: !entries | None -> ());
    incr line;
    start := stop + 1
  in
  for i = 0 to n - 1 do
    if source.[i] = '\n' then flush i
  done;
  if !start < n then flush n;
  List.rev !entries

let active t ~line rule =
  List.exists
    (fun e -> (e.line = line || e.line = line - 1) && (e.all || List.mem rule e.rules))
    t

let filter t findings =
  List.filter (fun (f : Finding.t) -> not (active t ~line:f.line f.rule)) findings

(* RJL009: an entry is stale when it silences no finding in the
   pre-suppression set.  An entry is only judged when every tier its
   rules belong to actually ran: [allow hot-alloc] is not stale merely
   because a syntactic-only run produced no typed findings, and [allow
   all] can only be judged by a full two-tier run.  An entry whose rule
   list parsed to nothing (a typo'd rule name) suppresses nothing and is
   always stale. *)
let unused t ~typed_ran findings =
  let used e =
    List.exists
      (fun (f : Finding.t) ->
        (e.line = f.line || e.line = f.line - 1) && (e.all || List.mem f.rule e.rules))
      findings
  in
  let checkable e =
    typed_ran
    || ((not e.all) && List.for_all (fun r -> Rule.tier r = Rule.Syntactic) e.rules)
  in
  List.filter_map
    (fun e ->
      if checkable e && not (used e) then
        Some (e.line, Printf.sprintf "suppression 'allow %s' matches no finding" (String.concat " " e.raw))
      else None)
    t
