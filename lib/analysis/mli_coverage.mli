(** RJL006: every [lib/] implementation must have an interface. *)

val check : scope:Scope.t -> string -> Finding.t option
(** [check ~scope path] returns a finding when [path] is a [lib/]-scoped
    [.ml] file with no sibling [.mli] on disk.  A suppression comment on
    the first line of the [.ml] silences it (applied by {!Lint}). *)
