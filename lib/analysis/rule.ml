type id =
  | Parse_error
  | Nondet_source
  | Poly_compare
  | Unstable_sort
  | Global_mutable
  | Stray_io
  | Missing_mli
  | Wall_clock
  | Raw_concurrency
  | Stale_suppress
  | Typed_nondet
  | Typed_poly_compare
  | Policy_purity
  | Hot_alloc

type severity = Error | Warning

type tier = Syntactic | Typed

let all =
  [
    Parse_error;
    Nondet_source;
    Poly_compare;
    Unstable_sort;
    Global_mutable;
    Stray_io;
    Missing_mli;
    Wall_clock;
    Raw_concurrency;
    Stale_suppress;
    Typed_nondet;
    Typed_poly_compare;
    Policy_purity;
    Hot_alloc;
  ]

let to_string = function
  | Parse_error -> "parse-error"
  | Nondet_source -> "nondet-source"
  | Poly_compare -> "poly-compare"
  | Unstable_sort -> "unstable-sort"
  | Global_mutable -> "global-mutable"
  | Stray_io -> "stray-io"
  | Missing_mli -> "missing-mli"
  | Wall_clock -> "wall-clock"
  | Raw_concurrency -> "raw-concurrency"
  | Stale_suppress -> "stale-suppress"
  | Typed_nondet -> "typed-nondet"
  | Typed_poly_compare -> "typed-poly-compare"
  | Policy_purity -> "policy-purity"
  | Hot_alloc -> "hot-alloc"

let code = function
  | Parse_error -> "RJL000"
  | Nondet_source -> "RJL001"
  | Poly_compare -> "RJL002"
  | Unstable_sort -> "RJL003"
  | Global_mutable -> "RJL004"
  | Stray_io -> "RJL005"
  | Missing_mli -> "RJL006"
  | Wall_clock -> "RJL007"
  | Raw_concurrency -> "RJL008"
  | Stale_suppress -> "RJL009"
  | Typed_nondet -> "RJL100"
  | Typed_poly_compare -> "RJL101"
  | Policy_purity -> "RJL102"
  | Hot_alloc -> "RJL103"

let tier = function
  | Typed_nondet | Typed_poly_compare | Policy_purity | Hot_alloc -> Typed
  | _ -> Syntactic

let of_string s =
  let rec find = function
    | [] -> None
    | r :: rest -> if String.equal (to_string r) s || String.equal (code r) s then Some r else find rest
  in
  find all

let describe = function
  | Parse_error -> "file does not parse with the project compiler"
  | Nondet_source ->
      "nondeterminism source (Random.self_init, Unix.*, Hashtbl.iter/fold/hash) in lib/"
  | Poly_compare ->
      "bare polymorphic compare/(=)/(<) in a comparator passed to a sort; use Float.compare/Int.compare"
  | Unstable_sort ->
      "Array.sort comparator without a total id/index tie-break (unstable sort is a replay hazard)"
  | Global_mutable -> "toplevel mutable state (ref/array/table) in a policy module"
  | Stray_io -> "direct console I/O outside bin/, bench/ and the stats display modules"
  | Missing_mli -> "lib/ module without a .mli interface"
  | Wall_clock ->
      "wall-clock/monotonic time read (Sys.time, Unix.gettimeofday/time/times, Mtime*) in lib/ \
       outside Obs.Clock"
  | Raw_concurrency ->
      "raw concurrency primitive (Domain.spawn/join, Atomic.*, Mutex.*, Condition.*) in lib/ \
       outside Stats.Pool"
  | Stale_suppress ->
      "suppression comment that matches no finding (dead allowlist entries can mask future \
       regressions)"
  | Typed_nondet ->
      "banned nondet/clock/IO/concurrency path reached through an alias, rebinding or functor \
       application (typed tier; resolved Path.t re-check of RJL001/005/007/008)"
  | Typed_poly_compare ->
      "polymorphic compare/min/max or structural (=)/(<) instantiated at a float-bearing, \
       abstract or functional type (typed tier; subsumes RJL002's lambda heuristics)"
  | Policy_purity ->
      "Policy_registry entry point transitively reaches mutable toplevel state, I/O, the clock \
       or Random outside the Scope-allowlisted modules (typed tier call-graph proof)"
  | Hot_alloc ->
      "allocating construct (closure, tuple/constructor/record, partial application, fresh \
       float box) inside a [@rejlint.hot] function (typed tier static zero-alloc proof)"

(* Rule ids are ordered by their catalog position so reports are stable. *)
let index r =
  let rec go i = function
    | [] -> i
    | r' :: rest -> if r' = r then i else go (i + 1) rest
  in
  go 0 all

let compare_id a b = Int.compare (index a) (index b)
