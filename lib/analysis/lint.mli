(** Per-file lint entry points: parse, run the rule passes, apply
    suppression comments, sort findings. *)

val lint_source : scope:Scope.t -> file:string -> string -> Finding.t list
(** Lint source text as if it were [file] (used by tests to lint fixture
    text under a forced scope).  Runs the parsetree rules only — mli
    coverage is a property of the tree on disk, not of one buffer. *)

val lint_source_raw : scope:Scope.t -> file:string -> string -> Finding.t list * Suppress.t
(** As {!lint_source}, but returns the pre-suppression findings together
    with the scanned suppressions, so a caller merging several tiers can
    apply suppression once over the union and detect stale entries. *)

val lint_file : ?check_mli:bool -> ?rel:string -> scope:Scope.t -> string -> Finding.t list
(** Lint a file on disk.  [rel] is the repo-relative name used in
    findings (defaults to the path as given); [check_mli] (default true)
    also applies RJL006 for [lib/]-scoped files. *)

val lint_file_raw :
  ?check_mli:bool -> ?rel:string -> scope:Scope.t -> string -> Finding.t list * Suppress.t
(** As {!lint_file}, pre-suppression (see {!lint_source_raw}). *)

val read_file : string -> string
