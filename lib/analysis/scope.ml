type kind = Lib | Bin | Bench | Test | Examples | Other

type t = { kind : kind; policy : bool; display : bool; clock : bool; pool : bool }

let make ?(policy = false) ?(display = false) ?(clock = false) ?(pool = false) kind =
  { kind; policy; display; clock; pool }

let kind t = t.kind
let policy t = t.policy
let display t = t.display
let clock t = t.clock
let pool t = t.pool

(* Console I/O is the driver/display layers' job; in lib/ only the
   display modules may perform it.  Shared by both lint tiers so they
   agree on where RJL005/RJL100 apply. *)
let io_allowed t =
  match t.kind with
  | Bin | Bench | Examples | Test | Other -> true
  | Lib -> t.display

(* The stats display modules are the one place in lib/ allowed to talk to
   the console (they exist to render tables and charts for humans). *)
let display_modules = [ "lib/stats/table.ml"; "lib/stats/chart.ml" ]

(* The telemetry clock module is the one place in lib/ allowed to read
   wall/monotonic time (RJL007); everything else must take a Clock.t. *)
let clock_modules = [ "lib/obs/clock.ml" ]

(* The domain pool is the one place in lib/ allowed to touch raw
   concurrency primitives (RJL008); everything else submits to a Pool.t. *)
let pool_modules = [ "lib/stats/pool.ml" ]

let normalize path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  (* Strip leading "./" segments so classification matches however the
     driver was invoked. *)
  let rec strip p = if String.length p > 2 && String.sub p 0 2 = "./" then strip (String.sub p 2 (String.length p - 2)) else p in
  strip path

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let classify path =
  let p = normalize path in
  if has_prefix ~prefix:"lib/" p then
    let policy = has_prefix ~prefix:"lib/core/" p || has_prefix ~prefix:"lib/baselines/" p in
    let display = List.mem p display_modules in
    let clock = List.mem p clock_modules in
    let pool = List.mem p pool_modules in
    { kind = Lib; policy; display; clock; pool }
  else if has_prefix ~prefix:"bin/" p then make Bin
  else if has_prefix ~prefix:"bench/" p then make Bench
  else if has_prefix ~prefix:"test/" p then make Test
  else if has_prefix ~prefix:"examples/" p then make Examples
  else make Other

let of_string = function
  | "lib" -> Some (make Lib)
  | "policy" -> Some (make Lib ~policy:true)
  | "display" -> Some (make Lib ~display:true)
  | "clock" -> Some (make Lib ~clock:true)
  | "pool" -> Some (make Lib ~pool:true)
  | "bin" -> Some (make Bin)
  | "bench" -> Some (make Bench)
  | "test" -> Some (make Test)
  | "examples" -> Some (make Examples)
  | "auto" | "other" -> Some (make Other)
  | _ -> None
