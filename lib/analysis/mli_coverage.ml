let check ~(scope : Scope.t) path =
  if Scope.kind scope <> Scope.Lib then None
  else if not (Filename.check_suffix path ".ml") then None
  else begin
    let mli = Filename.chop_suffix path ".ml" ^ ".mli" in
    if Sys.file_exists mli then None
    else
      Some
        (Finding.make ~rule:Rule.Missing_mli ~severity:Rule.Error ~file:path ~line:1 ~col:0
           (Printf.sprintf
              "lib/ module %s has no .mli: every library module must declare its interface"
              (Filename.basename path)))
  end
