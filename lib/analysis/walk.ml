(* Deterministic source discovery: Sys.readdir order is unspecified, so
   every directory listing is sorted before use. *)

let excluded_dirs = [ "_build"; ".git"; "lint_fixtures"; "node_modules" ]

let is_source f = Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let ml_files root =
  let acc = ref [] in
  let rec go dir =
    let entries = Sys.readdir dir in
    Array.sort String.compare entries;
    Array.iter
      (fun entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then begin
          if not (List.mem entry excluded_dirs) then go path
        end
        else if is_source entry then acc := path :: !acc)
      entries
  in
  if Sys.file_exists root && Sys.is_directory root then go root;
  List.rev !acc
