(** The parsetree rule pass (RJL001–RJL005, RJL007).

    Purely syntactic — rejlint parses unpreprocessed sources, so the
    checks are conservative approximations chosen so that a clean report
    is meaningful: named comparator functions are trusted, lambdas must
    show their tie-break, and the banned-identifier lists are exact
    paths (with [Stdlib.] prefixes normalized away). *)

val check : scope:Scope.t -> file:string -> Parsetree.structure -> Finding.t list
(** Run RJL001–RJL005 and RJL007 over one parsed implementation.  Which
    rules fire depends on [scope]; suppression comments are applied by the
    caller (see {!Lint}). *)
