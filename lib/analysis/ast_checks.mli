(** The parsetree rule pass (RJL001–RJL005, RJL007, RJL008).

    Purely syntactic — rejlint parses unpreprocessed sources, so the
    checks are conservative approximations chosen so that a clean report
    is meaningful: named comparator functions are trusted, lambdas must
    show their tie-break, and the banned-identifier lists are exact
    paths (with [Stdlib.] prefixes normalized away). *)

val check : scope:Scope.t -> file:string -> Parsetree.structure -> Finding.t list
(** Run RJL001–RJL005, RJL007 and RJL008 over one parsed implementation.
    Which rules fire depends on [scope]; suppression comments are applied
    by the caller (see {!Lint}). *)

(** {2 Path classifiers}

    The banned-path tables, shared with the typed tier so both tiers
    agree on exactly what is banned.  Each takes a module path with any
    [Stdlib.] prefix already stripped (["Hashtbl"; "iter"]) and returns
    the reason the path is banned, or [None]. *)

val lid_path : Longident.t -> string list
(** The module path as written in source ([Lapply] components collapse
    to [[]], exactly the tier-1 blind spot), with [Stdlib.] stripped. *)

val banned_nondet : string list -> string option
(** RJL001: nondeterminism sources banned in [lib/]. *)

val banned_wallclock : string list -> string option
(** RJL007: wall-clock/monotonic time reads, allowed only in the clock
    module.  Checked before {!banned_nondet} so [Unix.gettimeofday]
    reports as the more specific rule. *)

val banned_concurrency : string list -> string option
(** RJL008: raw concurrency primitives, allowed only in the pool module. *)

val banned_io : string list -> string option
(** RJL005: console I/O identifiers ([print_string], [Printf.printf], ...). *)

val banned_io_applied : head:string list -> arg:string list option -> string option
(** RJL005, applied form: [head] applied with [arg] as its first
    positional argument ([Printf.fprintf stdout], [output_string stderr],
    [Format.fprintf Format.std_formatter]).  [arg] is the argument's
    identifier path, when it is an identifier. *)

val mutable_ctor : string list -> string option
(** RJL004: constructors of toplevel mutable state ([ref], [Array.make],
    [Hashtbl.create], ...), with a short description of what is built. *)
