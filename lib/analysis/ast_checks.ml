(* The parsetree rules (RJL001–RJL005, RJL007, RJL008).  Everything here is purely
   syntactic: rejlint runs on unpreprocessed sources with
   [Parse.implementation], so it sees exactly what the developer wrote,
   before any type information exists.  That keeps the linter fast and
   dependency-free, at the price of being a (deliberately conservative)
   approximation: a named comparator function is trusted, a lambda must
   carry visible evidence of a total tie-break. *)

open Parsetree

let rec flatten (lid : Longident.t) =
  match lid with
  | Lident s -> [ s ]
  | Ldot (l, s) -> flatten l @ [ s ]
  | Lapply _ -> []

(* Treat [Stdlib.X.f] and [X.f] alike. *)
let path_of lid =
  match flatten lid with "Stdlib" :: rest -> rest | p -> p

(* Exported for the typed tier, which compares what the developer wrote
   (the longident) against what it denotes (the resolved Path.t) to
   report only the escapes tier 1 cannot see. *)
let lid_path = path_of

let loc_of (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

(* ------------------------------------------------------------------ *)
(* RJL001: nondeterminism sources banned in lib/.                      *)

let banned_nondet path =
  match path with
  | [ "Random"; "self_init" ] -> Some "Random.self_init seeds from the environment"
  | "Unix" :: _ -> Some "Unix.* reaches outside the simulation"
  | [ "Hashtbl"; "iter" ] | [ "Hashtbl"; "fold" ] ->
      Some "Hashtbl iteration order depends on hashing/insertion history"
  | [ "Hashtbl"; "hash" ] -> Some "Hashtbl.hash-keyed logic is representation-dependent"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* RJL007: wall-clock/monotonic time reads, allowed only in the
   telemetry clock module.  Checked before RJL001 so that the clock
   paths that are also Unix.* report as the more specific rule. *)

let banned_wallclock path =
  match path with
  | [ "Sys"; "time" ] -> Some "Sys.time reads the process clock"
  | [ "Unix"; ("gettimeofday" | "time" | "times") ] ->
      Some (String.concat "." path ^ " reads the wall clock")
  | ("Mtime" | "Mtime_clock") :: _ ->
      Some (String.concat "." path ^ " reads the monotonic clock")
  | _ -> None

(* ------------------------------------------------------------------ *)
(* RJL008: raw concurrency primitives, allowed only in the domain-pool
   module.  Domain.recommended_domain_count and Domain.DLS are fine —
   the rule targets the primitives that create or synchronize domains,
   which is what makes scheduling order observable. *)

let banned_concurrency path =
  match path with
  | [ "Domain"; ("spawn" | "join") ] ->
      Some (String.concat "." path ^ " creates/joins a domain")
  | "Atomic" :: _ | "Mutex" :: _ | "Condition" :: _ ->
      Some (String.concat "." path ^ " is a raw synchronization primitive")
  | _ -> None

(* ------------------------------------------------------------------ *)
(* RJL005: console I/O outside the display/driver layers.              *)

let banned_io path =
  match path with
  | [ f ]
    when List.mem f
           [
             "print_string";
             "print_endline";
             "print_newline";
             "print_int";
             "print_float";
             "print_char";
             "print_bytes";
             "prerr_string";
             "prerr_endline";
             "prerr_newline";
           ] ->
      Some (Printf.sprintf "%s writes to the console" f)
  | [ ("Printf" | "Format"); ("printf" | "eprintf") ] ->
      Some (String.concat "." path ^ " writes to the console")
  | [ "Format"; ("print_string" | "print_newline" | "print_flush") ] ->
      Some (String.concat "." path ^ " writes to the console")
  | _ -> None

(* The applied forms: [Printf.fprintf stdout ...], [Format.fprintf
   Format.std_formatter ...] and bare [output_string stdout ...] target
   the console just as surely as [print_string], but the head identifier
   alone is innocent — the verdict needs the first argument.  Shared
   with the typed tier, which passes resolved paths instead. *)
let std_channel_arg path =
  match path with
  | [ ("stdout" | "stderr") ] -> true
  | [ "Format"; ("std_formatter" | "err_formatter") ] -> true
  | _ -> false

let banned_io_applied ~head ~arg =
  let std = match arg with Some p -> std_channel_arg p | None -> false in
  match head with
  | [ ("Printf" | "Format"); "fprintf" ] when std ->
      Some (String.concat "." head ^ " to a std channel writes to the console")
  | [ (("output_string" | "output_char" | "output_bytes" | "output_byte") as f) ] when std ->
      Some (f ^ " to a std channel writes to the console")
  | _ -> None

(* ------------------------------------------------------------------ *)
(* RJL002/RJL003: sort comparators.                                    *)

let sort_family path =
  match path with
  | [ "List"; ("sort" | "stable_sort" | "fast_sort" | "sort_uniq" | "merge") ] -> Some `Stable
  | [ "Array"; ("sort" | "fast_sort") ] -> Some `Unstable
  | [ "Array"; "stable_sort" ] -> Some `Stable
  | _ -> None

(* Heap constructors take their order as a labelled argument; a
   polymorphic comparator there is the same RJL002 hazard as in a sort
   (the simulator's heaps key on floats, where polymorphic compare
   disagrees with the primitive comparisons the drivers use on NaN and
   [-0.]).  Matched with or without the [Pqueue] prefix. *)
let heap_cmp_label path =
  match List.rev path with
  | "create" :: "Indexed" :: _ -> Some "cmp"
  | "create" :: "Iheap" :: _ -> Some "less"
  | _ -> None

let poly_compare_name = function
  | [ ("compare" | "=" | "<" | ">" | "<=" | ">=" | "<>" | "min" | "max") ] -> true
  | _ -> false

(* A typed comparison: [M.compare] for any module path M. *)
let typed_compare_name path =
  match List.rev path with "compare" :: _ :: _ -> true | _ -> false

let rec peel_lambda e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> peel_lambda body
  | Pexp_newtype (_, body) -> peel_lambda body
  | Pexp_constraint (e, _) -> peel_lambda e
  | _ -> e

let rec peel_constraint e =
  match e.pexp_desc with Pexp_constraint (e, _) -> peel_constraint e | _ -> e

let is_lambda e =
  match (peel_constraint e).pexp_desc with Pexp_fun _ -> true | _ -> false

(* Field names that identify a job/slot uniquely; a comparison on one of
   these is accepted as a total tie-break. *)
let id_like_field lid =
  match List.rev (flatten lid) with
  | ("id" | "job" | "idx" | "index" | "key" | "seq") :: _ -> true
  | _ -> false

let tie_break_arg e =
  match (peel_constraint e).pexp_desc with
  | Pexp_tuple l when List.length l >= 2 -> true
  | Pexp_field (_, lid) -> id_like_field lid.txt
  | Pexp_ident _ -> true (* whole-element comparison *)
  | _ -> false

(* Collect every comparison application inside a comparator lambda. *)
let comparisons_in e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
              let path = path_of txt in
              if poly_compare_name path || typed_compare_name path then
                match List.filter (fun (l, _) -> l = Asttypes.Nolabel) args with
                | [ (_, x); (_, y) ] -> acc := (x, y) :: !acc
                | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  List.rev !acc

let poly_idents_in e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } when poly_compare_name (path_of txt) ->
              acc := (String.concat "." (flatten txt), loc) :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  List.rev !acc

(* Does a lambda comparator carry visible evidence of a total order?
   Accepted: two or more chained comparisons; a single comparison over
   tuples of >= 2 components; a single comparison on an id-like field or
   on the whole element. *)
let has_tie_break lambda =
  match comparisons_in lambda with
  | [] -> false
  | _ :: _ :: _ -> true
  | [ (x, y) ] -> tie_break_arg x && tie_break_arg y

(* ------------------------------------------------------------------ *)
(* RJL004: toplevel mutable state in policy modules.                   *)

let mutable_ctor path =
  match path with
  | [ "ref" ] -> Some "ref cell"
  | [ "Array"; ("make" | "create_float" | "init" | "make_matrix") ] -> Some "mutable array"
  | [ "Hashtbl"; "create" ] -> Some "hash table"
  | [ "Queue"; "create" ] | [ "Stack"; "create" ] -> Some "mutable queue/stack"
  | [ "Buffer"; "create" ] -> Some "buffer"
  | [ "Bytes"; ("create" | "make") ] -> Some "mutable bytes"
  | _ -> None

let rec toplevel_mutable e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> toplevel_mutable e
  | Pexp_array (_ :: _) -> Some "array literal"
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> mutable_ctor (path_of txt)
  | Pexp_tuple l -> List.fold_left (fun acc e -> match acc with Some _ -> acc | None -> toplevel_mutable e) None l
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The combined pass.                                                  *)

let check ~(scope : Scope.t) ~file (str : structure) =
  let findings = ref [] in
  let add ~rule ~loc message =
    let line, col = loc_of loc in
    findings :=
      Finding.make ~rule ~severity:Rule.Error ~file ~line ~col message :: !findings
  in
  let in_lib = Scope.kind scope = Scope.Lib in
  let io_allowed = Scope.io_allowed scope in
  let check_comparator ~unstable cmp =
    (* RJL002: a bare polymorphic comparator, or polymorphic comparisons
       anywhere inside a comparator lambda. *)
    (match (peel_constraint cmp).pexp_desc with
    | Pexp_ident { txt; loc } when poly_compare_name (path_of txt) ->
        add ~rule:Rule.Poly_compare ~loc
          (Printf.sprintf
             "polymorphic %s used as a sort comparator; use a typed comparator (Float.compare, Int.compare, ...)"
             (String.concat "." (flatten txt)))
    | _ ->
        if is_lambda cmp then
          List.iter
            (fun (name, loc) ->
              add ~rule:Rule.Poly_compare ~loc
                (Printf.sprintf
                   "polymorphic %s inside a sort comparator; use a typed comparator (Float.compare, Int.compare, ...)"
                   name))
            (poly_idents_in cmp));
    (* RJL003: unstable sorts must end in a total tie-break.  Named
       comparator functions are trusted (audit them once, at their
       definition); lambdas must show their tie-break. *)
    if unstable && is_lambda cmp && not (has_tie_break (peel_lambda cmp)) then
      add ~rule:Rule.Unstable_sort ~loc:cmp.pexp_loc
        "Array.sort comparator has no visible total tie-break; end with Int.compare on a \
         unique id/index, compare a tuple key, or use Array.stable_sort"
  in
  let expr_iter sub e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        let path = path_of txt in
        (if in_lib then
           match banned_wallclock path with
           | Some why ->
               if not (Scope.clock scope) then
                 add ~rule:Rule.Wall_clock ~loc
                   (Printf.sprintf "%s: %s; take an Obs.Clock.t instead" (String.concat "." (flatten txt)) why)
           | None -> (
               match banned_nondet path with
               | Some why ->
                   add ~rule:Rule.Nondet_source ~loc
                     (Printf.sprintf "%s: %s" (String.concat "." (flatten txt)) why)
               | None -> (
                   match banned_concurrency path with
                   | Some why ->
                       if not (Scope.pool scope) then
                         add ~rule:Rule.Raw_concurrency ~loc
                           (Printf.sprintf "%s: %s; submit tasks to Sched_stats.Pool instead"
                              (String.concat "." (flatten txt))
                              why)
                   | None -> ())));
        if not io_allowed then begin
          match banned_io path with
          | Some why -> add ~rule:Rule.Stray_io ~loc why
          | None -> ()
        end
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
        (if not io_allowed then
           let arg =
             match List.filter (fun (l, _) -> l = Asttypes.Nolabel) args with
             | (_, { pexp_desc = Pexp_ident { txt = a; _ }; _ }) :: _ -> Some (path_of a)
             | _ -> None
           in
           match banned_io_applied ~head:(path_of txt) ~arg with
           | Some why -> add ~rule:Rule.Stray_io ~loc why
           | None -> ());
        (match sort_family (path_of txt) with
        | Some kind -> (
            match List.filter (fun (l, _) -> l = Asttypes.Nolabel) args with
            | (_, cmp) :: _ -> check_comparator ~unstable:(kind = `Unstable) cmp
            | [] -> ())
        | None -> ());
        match heap_cmp_label (path_of txt) with
        | Some label -> (
            match
              List.find_opt
                (fun (l, _) ->
                  match l with Asttypes.Labelled s -> String.equal s label | _ -> false)
                args
            with
            | Some (_, cmp) -> check_comparator ~unstable:false cmp
            | None -> ())
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr sub e
  in
  let it = { Ast_iterator.default_iterator with expr = expr_iter } in
  it.structure it str;
  (* RJL004 walks structure items directly (module toplevels only; a ref
     created inside a function is fine). *)
  if Scope.policy scope then begin
    let rec walk_structure str =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, bindings) ->
              List.iter
                (fun vb ->
                  match toplevel_mutable vb.pvb_expr with
                  | Some what ->
                      add ~rule:Rule.Global_mutable ~loc:vb.pvb_loc
                        (Printf.sprintf
                           "toplevel %s in a policy module: policy state must live in the \
                            per-run state record so replays start fresh"
                           what)
                  | None -> ())
                bindings
          | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
              walk_structure s
          | _ -> ())
        str
    in
    walk_structure str
  end;
  List.rev !findings
