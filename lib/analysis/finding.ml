type t = {
  rule : Rule.id;
  severity : Rule.severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~rule ~severity ~file ~line ~col message =
  { rule; severity; file; line; col; message }

(* Reports must be byte-stable however the two tiers interleave and at
   any pool width, so the order is an explicit total one: position, then
   catalog position, then severity, then the message text.  Two findings
   compare equal only if they are identical. *)
let severity_rank = function Rule.Error -> 0 | Rule.Warning -> 1

let order a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> (
              match Rule.compare_id a.rule b.rule with
              | 0 -> (
                  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
                  | 0 -> String.compare a.message b.message
                  | c -> c)
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let severity_string = function Rule.Error -> "error" | Rule.Warning -> "warning"

let to_human t =
  Printf.sprintf "%s:%d:%d: [%s] %s (%s): %s" t.file t.line t.col
    (severity_string t.severity)
    (Rule.to_string t.rule) (Rule.code t.rule) t.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  Printf.sprintf
    {|{"rule":"%s","code":"%s","severity":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (Rule.to_string t.rule) (Rule.code t.rule)
    (severity_string t.severity)
    (json_escape t.file) t.line t.col (json_escape t.message)
