(** The rejlint CLI, as a library function so tests can call it and the
    binary stays a one-liner.

    All output flows through the [out] callback — this module performs no
    console I/O itself, which is exactly what RJL005 demands of lib/. *)

val run : ?out:(string -> unit) -> string list -> int
(** [run ~out args] executes the CLI on [args] (argv minus the program
    name) and returns the exit status: 0 clean, 1 at least one
    error-severity finding, 2 usage error. *)

val default_paths : string list
(** ["lib"; "bin"; "bench"; "test"] *)

val usage : string
