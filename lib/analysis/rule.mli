(** The rejlint rule catalog.

    Every rule has a stable kebab-case name (used in reports and in
    [(* rejlint: allow <name> *)] suppression comments) and a short
    [RJLnnn] code accepted as a synonym. *)

type id =
  | Parse_error  (** RJL000: the file does not parse. *)
  | Nondet_source  (** RJL001: banned nondeterminism source in [lib/]. *)
  | Poly_compare  (** RJL002: polymorphic compare inside a sort comparator. *)
  | Unstable_sort  (** RJL003: unstable [Array.sort] without a total tie-break. *)
  | Global_mutable  (** RJL004: toplevel mutable state in a policy module. *)
  | Stray_io  (** RJL005: console I/O outside the display/driver layers. *)
  | Missing_mli  (** RJL006: [lib/] module without an interface. *)
  | Wall_clock
      (** RJL007: wall-clock/monotonic time read in [lib/] outside the
          telemetry clock module ([lib/obs/clock.ml]). *)
  | Raw_concurrency
      (** RJL008: raw concurrency primitive ([Domain.spawn]/[join],
          [Atomic.*], [Mutex.*], [Condition.*]) in [lib/] outside the
          domain-pool module ([lib/stats/pool.ml]) — everything else must
          go through [Sched_stats.Pool] so scheduling stays deterministic
          and domains are never oversubscribed. *)

type severity = Error | Warning

val all : id list
(** Catalog order; reports list findings of equal position in this order. *)

val to_string : id -> string
val code : id -> string

val of_string : string -> id option
(** Accepts both the kebab-case name and the [RJLnnn] code. *)

val describe : id -> string
val compare_id : id -> id -> int
