(** The rejlint rule catalog.

    Every rule has a stable kebab-case name (used in reports and in
    [(* rejlint: allow <name> *)] suppression comments) and a short
    [RJLnnn] code accepted as a synonym.  Rules below RJL100 run on the
    parsetree (tier 1, syntactic); RJL1xx rules run on the Typedtree
    loaded from [.cmt] files (tier 2, typed). *)

type id =
  | Parse_error  (** RJL000: the file does not parse. *)
  | Nondet_source  (** RJL001: banned nondeterminism source in [lib/]. *)
  | Poly_compare  (** RJL002: polymorphic compare inside a sort comparator. *)
  | Unstable_sort  (** RJL003: unstable [Array.sort] without a total tie-break. *)
  | Global_mutable  (** RJL004: toplevel mutable state in a policy module. *)
  | Stray_io  (** RJL005: console I/O outside the display/driver layers. *)
  | Missing_mli  (** RJL006: [lib/] module without an interface. *)
  | Wall_clock
      (** RJL007: wall-clock/monotonic time read in [lib/] outside the
          telemetry clock module ([lib/obs/clock.ml]). *)
  | Raw_concurrency
      (** RJL008: raw concurrency primitive ([Domain.spawn]/[join],
          [Atomic.*], [Mutex.*], [Condition.*]) in [lib/] outside the
          domain-pool module ([lib/stats/pool.ml]) — everything else must
          go through [Sched_stats.Pool] so scheduling stays deterministic
          and domains are never oversubscribed. *)
  | Stale_suppress
      (** RJL009 (warning): a [(* rejlint: allow ... *)] comment that
          silences no finding.  Dead allowlist entries are reported so
          they cannot quietly mask a future regression.  Only emitted
          when every tier the entry's rules belong to actually ran. *)
  | Typed_nondet
      (** RJL100: alias-proof re-check of RJL001/005/007/008 on resolved
          [Path.t]s — catches rebindings ([let it = Hashtbl.iter]),
          module aliases ([module H = Hashtbl]), eta-expansions and
          functor-applied paths ([Hashtbl.Make(..).iter]) that the
          parsetree pass cannot see. *)
  | Typed_poly_compare
      (** RJL101: polymorphic [compare]/[min]/[max] — in any position —
          and structural [=]/[<>]/[<]/[<=]/[>]/[>=] instantiated at a
          float-bearing, abstract or functional type.  Comparisons
          against a constant constructor literal ([x = None], [l <> []])
          only inspect the tag and are accepted. *)
  | Policy_purity
      (** RJL102: an intra-library call-graph proof that no
          [Policy_registry] entry point transitively reaches mutable
          toplevel state, console I/O, wall-clock reads or [Random.*]
          outside the [Scope]-allowlisted modules. *)
  | Hot_alloc
      (** RJL103: static zero-alloc — inside a [[@rejlint.hot]] function
          body, flags closures, tuples, non-constant constructors,
          records, arrays, lazy/object/pack, [ref] creation, partial
          applications and float arithmetic in return position (a fresh
          box at the boundary).  Subtrees marked [[@rejlint.cold]] are
          skipped.  Reading an already-stored float (e.g. [a.(i)]) is
          deliberately not flagged: boundary boxing is governed by the
          dynamic minor-words ceiling, this rule proves the steady-state
          loop allocates no structures. *)

type severity = Error | Warning

type tier = Syntactic | Typed

val all : id list
(** Catalog order; reports list findings of equal position in this order. *)

val to_string : id -> string
val code : id -> string

val tier : id -> tier
(** Which analysis tier emits the rule.  [Stale_suppress] is attributed
    to the syntactic tier (the suppression scan is part of it). *)

val of_string : string -> id option
(** Accepts both the kebab-case name and the [RJLnnn] code. *)

val describe : id -> string
val compare_id : id -> id -> int
