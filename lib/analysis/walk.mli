(** Deterministic recursive discovery of [.ml]/[.mli] files.

    Directory entries are sorted ([Sys.readdir] order is unspecified);
    [_build], [.git] and [lint_fixtures] are skipped. *)

val ml_files : string -> string list
(** All source files under a directory, depth-first, lexicographic.
    Returns [[]] when the directory does not exist. *)

val excluded_dirs : string list
