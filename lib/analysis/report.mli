(** Rendering findings for humans and machines. *)

val human : files_scanned:int -> Finding.t list -> string
(** One [file:line:col] line per finding plus a summary line. *)

val json : files_scanned:int -> Finding.t list -> string
(** A single JSON object:
    [{"version":1,"files_scanned":N,"errors":E,"warnings":W,"findings":[...]}] *)

val rules_doc : unit -> string
(** The rule catalog, one line per rule (for [--rules]). *)
