let parse_structure ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  Parse.implementation lexbuf

let parse_error_finding ~file exn =
  let line, col, msg =
    match Location.error_of_exn exn with
    | Some (`Ok (err : Location.error)) ->
        let loc = err.main.loc.loc_start in
        ( loc.pos_lnum,
          loc.pos_cnum - loc.pos_bol,
          Format.asprintf "%t" (fun ppf -> err.main.txt ppf) )
    | _ -> (1, 0, Printexc.to_string exn)
  in
  Finding.make ~rule:Rule.Parse_error ~severity:Rule.Error ~file ~line ~col msg

let lint_source_raw ~scope ~file source =
  let suppressions = Suppress.scan source in
  let findings =
    if Filename.check_suffix file ".mli" then
      (* Interfaces carry no executable code; we only check that they
         parse, so a syntax-broken .mli cannot hide from the build. *)
      try
        let lexbuf = Lexing.from_string source in
        Lexing.set_filename lexbuf file;
        ignore (Parse.interface lexbuf);
        []
      with exn -> [ parse_error_finding ~file exn ]
    else
      try Ast_checks.check ~scope ~file (parse_structure ~file source)
      with exn -> [ parse_error_finding ~file exn ]
  in
  (findings, suppressions)

let lint_source ~scope ~file source =
  let findings, suppressions = lint_source_raw ~scope ~file source in
  List.sort Finding.order (Suppress.filter suppressions findings)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file_raw ?(check_mli = true) ?rel ~scope path =
  let file = match rel with Some r -> r | None -> path in
  let source = read_file path in
  let ast_findings, suppressions = lint_source_raw ~scope ~file source in
  let mli_findings =
    if check_mli then
      match Mli_coverage.check ~scope path with
      | Some f -> [ { f with Finding.file } ]
      | None -> []
    else []
  in
  (List.sort Finding.order (ast_findings @ mli_findings), suppressions)

let lint_file ?check_mli ?rel ~scope path =
  let findings, suppressions = lint_file_raw ?check_mli ?rel ~scope path in
  List.sort Finding.order (Suppress.filter suppressions findings)
