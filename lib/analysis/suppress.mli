(** [(* rejlint: allow <rule> ... *)] suppression comments.

    A suppression names one or more rules (kebab-case name, RJLnnn code,
    or [all]) and silences their findings on its own line and on the line
    immediately below. *)

type t

val scan : string -> t
(** Scan raw source text for suppression comments. *)

val active : t -> line:int -> Rule.id -> bool
(** Is [rule] suppressed for a finding on [line]? *)

val filter : t -> Finding.t list -> Finding.t list
(** Drop suppressed findings. *)

val unused : t -> typed_ran:bool -> Finding.t list -> (int * string) list
(** RJL009 input: the entries that silence none of [findings] (the
    file's complete pre-suppression finding set), as [(line, message)]
    pairs.  An entry is only judged when every tier its rules belong to
    ran — with [typed_ran = false], entries naming typed rules (and
    [allow all] entries) are exempt. *)
