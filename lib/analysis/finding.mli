(** A single lint finding: a rule violation at a source location. *)

type t = {
  rule : Rule.id;
  severity : Rule.severity;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler messages *)
  message : string;
}

val make :
  rule:Rule.id ->
  severity:Rule.severity ->
  file:string ->
  line:int ->
  col:int ->
  string ->
  t

val order : t -> t -> int
(** Total order: file, line, column, rule (catalog position), severity
    (errors first), then message — report output is independent of
    discovery order and tier interleaving, and every tie is broken. *)

val severity_string : Rule.severity -> string

val to_human : t -> string
(** [file:line:col: [severity] rule (code): message] *)

val to_json : t -> string
(** One JSON object, no trailing newline. *)
