(* The CLI logic lives in the library (and takes its output channel as a
   callback) so the test suite can exercise exit codes and report output
   without spawning a process — and so the linter can lint itself: no
   console I/O happens in lib/. *)

let usage =
  "usage: rejlint [--json] [--root DIR] [--scope SCOPE] [--rules] [PATH ...]\n\
   \n\
   Lints .ml/.mli sources for determinism and hygiene (see --rules).\n\
   PATH defaults to: lib bin bench test.  Directory paths are walked\n\
   recursively (skipping _build and lint_fixtures); file paths are linted\n\
   as given.  --scope forces the rule scope (lib | policy | display |\n\
   bin | bench | test | examples | auto) instead of deriving it from each\n\
   file's path.  Exit status: 0 clean, 1 error findings, 2 usage error.\n"

type config = {
  json : bool;
  root : string;
  scope : Scope.t option;
  paths : string list;
}

let default_paths = [ "lib"; "bin"; "bench"; "test" ]

let parse_args args =
  let rec go cfg = function
    | [] -> Ok { cfg with paths = List.rev cfg.paths }
    | "--json" :: rest -> go { cfg with json = true } rest
    | "--root" :: dir :: rest -> go { cfg with root = dir } rest
    | "--root" :: [] -> Error "--root needs a directory"
    | "--scope" :: s :: rest -> (
        match Scope.of_string s with
        | Some scope -> go { cfg with scope = Some scope } rest
        | None -> Error (Printf.sprintf "unknown scope %S" s))
    | "--scope" :: [] -> Error "--scope needs a value"
    | "--rules" :: _ -> Error "--rules"
    | ("--help" | "-h") :: _ -> Error "--help"
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Error (Printf.sprintf "unknown option %S" arg)
    | path :: rest -> go { cfg with paths = path :: cfg.paths } rest
  in
  go { json = false; root = "."; scope = None; paths = [] } args

let rel_to ~root path =
  (* Normalize "./lib/foo.ml" and "root/lib/foo.ml" to "lib/foo.ml" for
     scope classification and stable report paths. *)
  let path =
    if root = "." then path
    else
      let prefix = if Filename.check_suffix root "/" then root else root ^ "/" in
      let lp = String.length prefix in
      if String.length path > lp && String.sub path 0 lp = prefix then
        String.sub path lp (String.length path - lp)
      else path
  in
  let rec strip p =
    if String.length p > 2 && String.sub p 0 2 = "./" then strip (String.sub p 2 (String.length p - 2))
    else p
  in
  strip path

let run ?(out = fun _ -> ()) args =
  match parse_args args with
  | Error "--help" ->
      out usage;
      0
  | Error "--rules" ->
      out (Report.rules_doc ());
      0
  | Error msg ->
      out ("rejlint: " ^ msg ^ "\n");
      out usage;
      2
  | Ok cfg ->
      let paths = match cfg.paths with [] -> default_paths | ps -> ps in
      let files_scanned = ref 0 in
      let findings = ref [] in
      let lint_one ~check_mli abs =
        let rel = rel_to ~root:cfg.root abs in
        let scope = match cfg.scope with Some s -> s | None -> Scope.classify rel in
        incr files_scanned;
        findings := Lint.lint_file ~check_mli ~rel ~scope abs @ !findings
      in
      let missing = ref [] in
      List.iter
        (fun p ->
          let abs = if Filename.is_relative p then Filename.concat cfg.root p else p in
          if Sys.file_exists abs && Sys.is_directory abs then
            (* mli coverage is a property of the source tree, checked on
               directory walks; explicit single files skip it so fixture
               files can be linted in isolation. *)
            List.iter (lint_one ~check_mli:true) (Walk.ml_files abs)
          else if Sys.file_exists abs then lint_one ~check_mli:false abs
          else missing := p :: !missing)
        paths;
      (match List.rev !missing with
      | [] -> ()
      | ps -> out (Printf.sprintf "rejlint: warning: no such path: %s\n" (String.concat ", " ps)));
      let findings = List.sort Finding.order !findings in
      let render = if cfg.json then Report.json else Report.human in
      out (render ~files_scanned:!files_scanned findings);
      let errors =
        List.exists (fun (f : Finding.t) -> f.Finding.severity = Rule.Error) findings
      in
      if errors then 1 else 0
