(* The CLI logic lives in the library (and takes its output channel as a
   callback) so the test suite can exercise exit codes and report output
   without spawning a process — and so the linter can lint itself: no
   console I/O happens in lib/.

   Two tiers share one report.  The syntactic tier parses sources; the
   typed tier (--typed) loads the cmt files dune emitted and re-checks
   on resolved paths and types.  Suppression comments are applied once,
   over the union of both tiers' findings per file, which is also what
   makes stale-suppression detection (RJL009) sound: an entry is only
   called stale when every tier its rules belong to actually ran. *)

let usage =
  "usage: rejlint [--json] [--root DIR] [--scope SCOPE] [--typed | --syntactic-only]\n\
  \               [--cmt-dir DIR] [--rules] [PATH ...]\n\
   \n\
   Lints .ml/.mli sources for determinism and hygiene (see --rules).\n\
   PATH defaults to: lib bin bench test.  Directory paths are walked\n\
   recursively (skipping _build and lint_fixtures); file paths are linted\n\
   as given; .cmt paths are fed to the typed tier directly.  --typed adds\n\
   the typed tier (RJL1xx: resolved-path, type-aware and call-graph rules\n\
   over the cmt files under --cmt-dir, default _build/default); both\n\
   tiers' findings land in one report.  --scope forces the rule scope\n\
   (lib | policy | display | clock | pool | bin | bench | test |\n\
   examples | auto) instead of deriving it from each file's path.\n\
   Exit status: 0 clean, 1 error findings, 2 usage error.\n"

type config = {
  json : bool;
  root : string;
  scope : Scope.t option;
  typed : bool;
  cmt_dir : string option;
  paths : string list;
}

let default_paths = [ "lib"; "bin"; "bench"; "test" ]

let parse_args args =
  let rec go cfg = function
    | [] -> Ok { cfg with paths = List.rev cfg.paths }
    | "--json" :: rest -> go { cfg with json = true } rest
    | "--root" :: dir :: rest -> go { cfg with root = dir } rest
    | "--root" :: [] -> Error "--root needs a directory"
    | "--scope" :: s :: rest -> (
        match Scope.of_string s with
        | Some scope -> go { cfg with scope = Some scope } rest
        | None -> Error (Printf.sprintf "unknown scope %S" s))
    | "--scope" :: [] -> Error "--scope needs a value"
    | "--typed" :: rest -> go { cfg with typed = true } rest
    | "--syntactic-only" :: rest -> go { cfg with typed = false } rest
    | "--cmt-dir" :: dir :: rest -> go { cfg with cmt_dir = Some dir } rest
    | "--cmt-dir" :: [] -> Error "--cmt-dir needs a directory"
    | "--rules" :: _ -> Error "--rules"
    | ("--help" | "-h") :: _ -> Error "--help"
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Error (Printf.sprintf "unknown option %S" arg)
    | path :: rest -> go { cfg with paths = path :: cfg.paths } rest
  in
  go { json = false; root = "."; scope = None; typed = false; cmt_dir = None; paths = [] } args

let rel_to ~root path =
  (* Normalize "./lib/foo.ml" and "root/lib/foo.ml" to "lib/foo.ml" for
     scope classification and stable report paths. *)
  let path =
    if root = "." then path
    else
      let prefix = if Filename.check_suffix root "/" then root else root ^ "/" in
      let lp = String.length prefix in
      if String.length path > lp && String.sub path 0 lp = prefix then
        String.sub path lp (String.length path - lp)
      else path
  in
  let rec strip p =
    if String.length p > 2 && String.sub p 0 2 = "./" then strip (String.sub p 2 (String.length p - 2))
    else p
  in
  strip path

(* Per-file accumulator: raw (pre-suppression) findings from every tier
   plus the file's suppression entries, so suppression and staleness are
   judged over the union. *)
type file_acc = {
  mutable raw : Finding.t list;
  suppress : Suppress.t;
  mutable typed_ran : bool;
}

let run ?(out = fun _ -> ()) args =
  match parse_args args with
  | Error "--help" ->
      out usage;
      0
  | Error "--rules" ->
      out (Report.rules_doc ());
      0
  | Error msg ->
      out ("rejlint: " ^ msg ^ "\n");
      out usage;
      2
  | Ok cfg ->
      let paths = match cfg.paths with [] -> default_paths | ps -> ps in
      let source_paths, cmt_paths =
        List.partition (fun p -> not (Filename.check_suffix p ".cmt")) paths
      in
      let files_scanned = ref 0 in
      let files : (string * file_acc) list ref = ref [] in
      let acc_for ~rel ~suppress_source =
        match List.assoc_opt rel !files with
        | Some acc -> acc
        | None ->
            let suppress = Suppress.scan (match suppress_source with Some s -> s | None -> "") in
            let acc = { raw = []; suppress; typed_ran = false } in
            files := (rel, acc) :: !files;
            acc
      in
      let lint_one ~check_mli abs =
        let rel = rel_to ~root:cfg.root abs in
        let scope = match cfg.scope with Some s -> s | None -> Scope.classify rel in
        incr files_scanned;
        let raw, suppress = Lint.lint_file_raw ~check_mli ~rel ~scope abs in
        (match List.assoc_opt rel !files with
        | Some acc -> acc.raw <- raw @ acc.raw
        | None -> files := (rel, { raw; suppress; typed_ran = false }) :: !files)
      in
      let missing = ref [] in
      let walked_prefixes = ref [] in
      List.iter
        (fun p ->
          let abs = if Filename.is_relative p then Filename.concat cfg.root p else p in
          if Sys.file_exists abs && Sys.is_directory abs then begin
            (* mli coverage is a property of the source tree, checked on
               directory walks; explicit single files skip it so fixture
               files can be linted in isolation. *)
            walked_prefixes := (rel_to ~root:cfg.root p ^ "/") :: !walked_prefixes;
            List.iter (lint_one ~check_mli:true) (Walk.ml_files abs)
          end
          else if Sys.file_exists abs then begin
            walked_prefixes := rel_to ~root:cfg.root p :: !walked_prefixes;
            lint_one ~check_mli:false abs
          end
          else missing := p :: !missing)
        source_paths;
      (match List.rev !missing with
      | [] -> ()
      | ps -> out (Printf.sprintf "rejlint: warning: no such path: %s\n" (String.concat ", " ps)));
      (* The typed tier: findings come back keyed by the units' recorded
         source paths; keep the ones under the requested paths and merge
         them into the per-file accumulators. *)
      let in_requested file =
        List.exists
          (fun pre ->
            if Filename.check_suffix pre "/" then
              String.length file >= String.length pre && String.sub file 0 (String.length pre) = pre
            else String.equal pre file)
          !walked_prefixes
      in
      let merge_typed rel typed_findings =
        let suppress_source =
          let abs = if Filename.is_relative rel then Filename.concat cfg.root rel else rel in
          if Sys.file_exists abs && not (Sys.is_directory abs) then Some (Lint.read_file abs)
          else None
        in
        let acc = acc_for ~rel ~suppress_source in
        acc.raw <- typed_findings @ acc.raw;
        acc.typed_ran <- true
      in
      let group_by_file findings =
        let sorted = List.sort Finding.order findings in
        let rec go acc current = function
          | [] -> List.rev (match current with None -> acc | Some g -> g :: acc)
          | (f : Finding.t) :: rest -> (
              match current with
              | Some (file, fs) when String.equal file f.file ->
                  go acc (Some (file, f :: fs)) rest
              | Some g -> go (g :: acc) (Some (f.file, [ f ])) rest
              | None -> go acc (Some (f.file, [ f ])) rest)
        in
        go [] None sorted
      in
      let usage_error = ref None in
      if cfg.typed then begin
        let cmt_dir =
          match cfg.cmt_dir with
          | Some d -> if Filename.is_relative d then Filename.concat cfg.root d else d
          | None -> Filename.concat cfg.root (Filename.concat "_build" "default")
        in
        match Typed_lint.run ~cmt_dir () with
        | Error msg -> usage_error := Some ("rejlint: " ^ msg ^ "\n")
        | Ok r ->
            List.iter
              (fun m -> out (Printf.sprintf "rejlint: warning: %s\n" m))
              r.Typed_lint.load_errors;
            (* Every source file under the requested paths got typed
               coverage, findings or not — mark them so RJL009 can judge
               typed-rule suppressions there. *)
            List.iter
              (fun (rel, acc) ->
                if Filename.check_suffix rel ".ml" && in_requested rel then acc.typed_ran <- true)
              !files;
            List.iter
              (fun (rel, fs) -> if in_requested rel then merge_typed rel fs)
              (group_by_file r.Typed_lint.findings)
      end;
      (* Explicit .cmt arguments: typed tier on just those units (used to
         lint fixtures in isolation). *)
      if cmt_paths <> [] then begin
        let abs_cmts =
          List.map (fun p -> if Filename.is_relative p then Filename.concat cfg.root p else p) cmt_paths
        in
        files_scanned := !files_scanned + List.length abs_cmts;
        let findings = Typed_lint.lint_cmts ?scope:cfg.scope abs_cmts in
        List.iter (fun (rel, fs) -> merge_typed rel fs) (group_by_file findings)
      end;
      (match !usage_error with
      | Some msg ->
          out msg;
          2
      | None ->
          let findings =
            List.concat_map
              (fun (rel, acc) ->
                let kept = Suppress.filter acc.suppress acc.raw in
                let stale =
                  List.map
                    (fun (line, msg) ->
                      Finding.make ~rule:Rule.Stale_suppress ~severity:Rule.Warning ~file:rel
                        ~line ~col:0 msg)
                    (Suppress.unused acc.suppress ~typed_ran:acc.typed_ran acc.raw)
                in
                kept @ stale)
              !files
          in
          let findings = List.sort Finding.order findings in
          let render = if cfg.json then Report.json else Report.human in
          out (render ~files_scanned:!files_scanned findings);
          let errors =
            List.exists (fun (f : Finding.t) -> f.Finding.severity = Rule.Error) findings
          in
          if errors then 1 else 0)
