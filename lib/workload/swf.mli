(** Standard Workload Format (SWF) import.

    SWF is the de-facto interchange format of the Parallel Workloads
    Archive: one line per job with 18 whitespace-separated fields
    ([;]-prefixed comment/header lines).  We map the fields a flow-time
    simulator can use:

    - field 2 (submit time)    -> release,
    - field 4 (run time, s)    -> base size (skipping jobs with missing
      [-1] runtimes),
    - field 5 (allocated processors) is folded into the size as
      [runtime * procs / target_m] so total demand is preserved on an
      [m]-machine fleet of serial machines.

    The importer re-bases submit times to start at 0, optionally truncates
    to the first [max_jobs] usable jobs, and applies a machine {!Shape} to
    produce unrelated sizes from the base size.  This lets every policy in
    the repository run on real cluster traces (none ship in this sealed
    build, so {!example} provides a small synthetic SWF text used by tests
    and docs). *)

open Sched_model

val parse :
  ?max_jobs:int ->
  ?m:int ->
  ?shape:Shape.t ->
  ?rng:Sched_stats.Rng.t ->
  string ->
  (Instance.t, string) result
(** [parse text] builds an instance from SWF text.  Defaults: all usable
    jobs, [m = 4] machines, identical shape (a fresh seeded {!Rng} is used
    only when [shape] needs randomness).  Fails with a message naming the
    first malformed line. *)

val load : path:string -> ?max_jobs:int -> ?m:int -> ?shape:Shape.t -> unit -> (Instance.t, string) result

val example : string
(** A small, well-formed SWF snippet (8 jobs) for tests and quickstarts. *)
