(** Named standard workloads shared by experiments, examples and benches.

    Each function returns a generator configuration; expand with
    {!Gen.instance}. *)

open Sched_stats

val flow_uniform : n:int -> m:int -> Gen.t
(** Poisson arrivals, uniform sizes 1..10, identical machines: the benign
    baseline workload. *)

val flow_pareto : n:int -> m:int -> Gen.t
(** Heavy-tailed (bounded Pareto, tail 1.5, 1..100) sizes on unrelated
    machines — the datacenter-like stress workload. *)

val flow_bimodal : n:int -> m:int -> Gen.t
(** Mice-and-elephants batched arrivals: the pattern behind the paper's
    Lemma 1 (long jobs blocking short ones). *)

val flow_restricted : n:int -> m:int -> Gen.t
(** Restricted assignment (each job eligible on ~half the machines). *)

val flow_related : n:int -> m:int -> Gen.t
(** Uniformly related machines, speeds 1..4. *)

val flow_clustered : n:int -> m:int -> Gen.t
(** Cluster-affinity unrelated model. *)

val flow_diurnal : n:int -> m:int -> Gen.t
(** Sinusoidal (day/night) arrival intensity with unrelated machines; not
    part of {!all_flow} so existing experiment tables stay stable. *)

val all_flow : n:int -> m:int -> Gen.t list
(** The six workloads above, in a fixed order. *)

val weighted_energy : n:int -> m:int -> alpha:float -> Gen.t
(** Weighted jobs (Pareto weights), moderate load — the Section 3
    (flow + energy) workload. *)

val deadline_energy : n:int -> m:int -> alpha:float -> Gen.t
(** Integer-aligned spans for the Section 4 discrete-time energy model. *)

val tiny : seed:int -> n:int -> m:int -> Sched_model.Instance.t
(** A small uniform instance for brute-force comparisons and tests. *)

val default_seeds : int list
(** The seeds experiments average over. *)

val dist_menu : (string * Dist.t) list
(** Named size distributions for CLI selection. *)
