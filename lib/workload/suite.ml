open Sched_stats

let flow_uniform ~n ~m =
  Gen.make ~name:"uniform" ~sizes:(Dist.uniform ~lo:1. ~hi:10.) ~shape:Shape.identical ~n ~m ()

let flow_pareto ~n ~m =
  Gen.make ~name:"pareto-unrelated"
    ~sizes:(Dist.bounded_pareto ~shape:1.5 ~lo:1. ~hi:100.)
    ~shape:(Shape.unrelated ~spread:2.) ~n ~m ()

let flow_bimodal ~n ~m =
  Gen.make ~name:"bimodal-batched"
    ~arrivals:(Gen.Batched { every = 12.; size = max 1 (m * 2) })
    ~sizes:(Dist.bimodal ~lo:1. ~hi:50. ~p_hi:0.08)
    ~shape:Shape.identical ~n ~m ()

let flow_restricted ~n ~m =
  Gen.make ~name:"restricted" ~sizes:(Dist.uniform ~lo:1. ~hi:10.)
    ~shape:(Shape.restricted ~eligible_prob:0.5) ~n ~m ()

let flow_related ~n ~m =
  Gen.make ~name:"related"
    ~sizes:(Dist.uniform ~lo:1. ~hi:10.)
    ~shape:(Shape.related ~speeds:(Array.init (max 1 m) (fun i -> 1. +. (3. *. float_of_int i /. float_of_int (max 1 (m - 1))))))
    ~n ~m ()

let flow_clustered ~n ~m =
  Gen.make ~name:"clustered"
    ~sizes:(Dist.exponential ~mean:5.)
    ~shape:(Shape.clustered ~clusters:(max 1 (m / 2)) ~penalty:3.) ~n ~m ()

let flow_diurnal ~n ~m =
  Gen.make ~name:"diurnal"
    ~arrivals:(Gen.Diurnal { base_rate = 0.6 *. float_of_int m /. 5.5; amplitude = 0.9; period = 200. })
    ~sizes:(Dist.uniform ~lo:1. ~hi:10.)
    ~shape:(Shape.unrelated ~spread:1.5) ~n ~m ()

let all_flow ~n ~m =
  [
    flow_uniform ~n ~m;
    flow_pareto ~n ~m;
    flow_bimodal ~n ~m;
    flow_restricted ~n ~m;
    flow_related ~n ~m;
    flow_clustered ~n ~m;
  ]

let weighted_energy ~n ~m ~alpha =
  Gen.make ~name:"weighted-energy"
    ~sizes:(Dist.uniform ~lo:1. ~hi:8.)
    ~weights:(Dist.bounded_pareto ~shape:1.8 ~lo:1. ~hi:20.)
    ~shape:(Shape.unrelated ~spread:1.5) ~alpha ~n ~m ()

let deadline_energy ~n ~m ~alpha =
  Gen.make ~name:"deadline-energy"
    ~arrivals:(Gen.Poisson (0.4 *. float_of_int m))
    ~sizes:(Dist.uniform ~lo:1. ~hi:6.)
    ~shape:(Shape.unrelated ~spread:1.5)
    ~deadlines:(Gen.Slot_laxity { min_slots = 2; max_slots = 16 })
    ~alpha ~n ~m ()

let tiny ~seed ~n ~m = Gen.instance (flow_uniform ~n ~m) ~seed

let default_seeds = [ 11; 23; 42; 77; 101 ]

let dist_menu =
  [
    ("uniform", Dist.uniform ~lo:1. ~hi:10.);
    ("exp", Dist.exponential ~mean:5.);
    ("pareto", Dist.bounded_pareto ~shape:1.5 ~lo:1. ~hi:100.);
    ("bimodal", Dist.bimodal ~lo:1. ~hi:50. ~p_hi:0.08);
    ("lognormal", Dist.lognormal ~mu:1.2 ~sigma:0.8);
    ("const", Dist.constant 5.);
  ]
