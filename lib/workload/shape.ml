open Sched_stats

type t = { name : string; sizes : Rng.t -> base:float -> m:int -> float array }

let name t = t.name
let sizes t rng ~base ~m = t.sizes rng ~base ~m

let identical =
  { name = "identical"; sizes = (fun _ ~base ~m -> Array.make m base) }

let related ~speeds =
  Array.iter (fun s -> if s <= 0. then invalid_arg "Shape.related: non-positive speed") speeds;
  let k = Array.length speeds in
  if k = 0 then invalid_arg "Shape.related: empty speeds";
  {
    name = Printf.sprintf "related(%d speeds)" k;
    sizes = (fun _ ~base ~m -> Array.init m (fun i -> base /. speeds.(i mod k)));
  }

let unrelated ~spread =
  if spread < 1. then invalid_arg "Shape.unrelated: spread must be >= 1";
  {
    name = Printf.sprintf "unrelated(%g)" spread;
    sizes =
      (fun rng ~base ~m ->
        Array.init m (fun _ -> base *. Rng.float_range rng (1. /. spread) spread));
  }

let restricted ~eligible_prob =
  if not (eligible_prob > 0. && eligible_prob <= 1.) then
    invalid_arg "Shape.restricted: eligible_prob must be in (0,1]";
  {
    name = Printf.sprintf "restricted(%g)" eligible_prob;
    sizes =
      (fun rng ~base ~m ->
        let v = Array.init m (fun _ -> if Rng.float rng < eligible_prob then base else Float.infinity) in
        if Array.for_all (fun p -> p = Float.infinity) v then v.(Rng.int rng m) <- base;
        v);
  }

let clustered ~clusters ~penalty =
  if clusters < 1 then invalid_arg "Shape.clustered: need at least one cluster";
  if penalty < 1. then invalid_arg "Shape.clustered: penalty must be >= 1";
  {
    name = Printf.sprintf "clustered(%d,x%g)" clusters penalty;
    sizes =
      (fun rng ~base ~m ->
        let k = min clusters m in
        let mine = Rng.int rng k in
        Array.init m (fun i -> if i mod k = mine then base else base *. penalty));
  }
