(** The Lemma 1 adversary: immediate-rejection policies are
    [Omega(sqrt Delta)]-competitive.

    Construction (single machine, parameters [eps] and [L]):
    [ceil(1/eps)] "big" jobs of length [L] are released at time 0.  The
    adversary watches when the algorithm starts the first big job — call it
    [t0] — and, provided [t0 < L^2], releases [L^2] "small" jobs of length
    [1/L], one every [1/L] time units starting at [t0].  An
    immediate-rejection policy is stuck: it cannot revoke the running big
    job, so every small job waits behind it, for a total flow of
    [Omega(L^3)] against the adversary's [O(L^2)]; with [Delta = L^2] the
    ratio is [Omega(sqrt Delta)].  (If instead the algorithm idles past
    [L^2], the big jobs alone already cost it [Omega(L)] times the
    adversary.)

    The adversary is adaptive only through [t0], so running the policy on
    the big-jobs-only prefix and then replaying it on the full instance is
    equivalent to the interactive game for deterministic policies. *)

open Sched_model

type result = {
  instance : Instance.t;  (** Big jobs plus the adaptively-placed small jobs. *)
  observed_start : float;  (** [t0], when the policy first started a big job. *)
  adversary_cost : float;
      (** Total flow-time of the adversary's explicit schedule (small jobs
          at release back-to-back, big jobs afterwards) — a feasible
          schedule, hence an upper bound on OPT. *)
  delta : float;  (** [L^2], the paper's processing-time ratio. *)
  big_count : int;
  small_count : int;
}

val build : eps:float -> l:float -> observed_start:float -> result
(** The deterministic instance given the observed start [t0]. *)

val big_jobs_only : eps:float -> l:float -> Instance.t
(** Phase-one probe instance. *)

val first_big_start : Schedule.t -> float
(** Earliest execution start in a schedule of the probe instance
    ([infinity] if nothing ever ran). *)

val run_two_phase : run:(Instance.t -> Schedule.t) -> eps:float -> l:float -> result * Schedule.t
(** Plays the full game against a deterministic policy: probes for [t0],
    builds the final instance, and returns it together with the policy's
    schedule on it. *)
