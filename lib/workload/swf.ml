open Sched_model

let example =
  "; Example SWF trace (synthetic)\n\
   ; UnixStartTime: 0\n\
   ; MaxNodes: 64\n\
   1 0 2 120 4 -1 -1 4 -1 -1 1 1 1 1 1 -1 -1 -1\n\
   2 30 1 60 1 -1 -1 1 -1 -1 1 1 1 1 1 -1 -1 -1\n\
   3 45 5 600 8 -1 -1 8 -1 -1 1 2 1 1 1 -1 -1 -1\n\
   4 60 0 30 1 -1 -1 1 -1 -1 1 1 1 1 1 -1 -1 -1\n\
   5 90 3 -1 2 -1 -1 2 -1 -1 0 3 1 1 1 -1 -1 -1\n\
   6 120 1 240 2 -1 -1 2 -1 -1 1 1 1 1 1 -1 -1 -1\n\
   7 150 2 45 1 -1 -1 1 -1 -1 1 2 1 1 1 -1 -1 -1\n\
   8 180 4 900 16 -1 -1 16 -1 -1 1 4 1 1 1 -1 -1 -1\n\
   9 200 1 15 1 -1 -1 1 -1 -1 1 1 1 1 1 -1 -1 -1\n"

type raw = { submit : float; runtime : float; procs : float }

let parse_line lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = ';' then Ok None
  else begin
    let fields = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
    if List.length fields < 5 then
      Error (Printf.sprintf "line %d: expected >= 5 SWF fields, got %d" lineno (List.length fields))
    else begin
      let field k = List.nth fields k in
      match
        (float_of_string_opt (field 1), float_of_string_opt (field 3), float_of_string_opt (field 4))
      with
      | Some submit, Some runtime, Some procs ->
          if runtime <= 0. then Ok None (* missing/cancelled job: skip *)
          else Ok (Some { submit; runtime; procs = Float.max 1. procs })
      | _ -> Error (Printf.sprintf "line %d: malformed numeric fields" lineno)
    end
  end

let parse ?max_jobs ?(m = 4) ?shape ?rng text =
  let shape = match shape with Some s -> s | None -> Shape.identical in
  let rng = match rng with Some r -> r | None -> Sched_stats.Rng.create 1 in
  let lines = String.split_on_char '\n' text in
  let rec collect lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Error e -> Error e
        | Ok None -> collect (lineno + 1) acc rest
        | Ok (Some raw) -> collect (lineno + 1) (raw :: acc) rest)
  in
  match collect 1 [] lines with
  | Error e -> Error e
  | Ok [] -> Error "no usable jobs in trace"
  | Ok raws ->
      let raws =
        match max_jobs with
        | Some k -> List.filteri (fun i _ -> i < k) raws
        | None -> raws
      in
      let base_time =
        List.fold_left (fun acc r -> Float.min acc r.submit) Float.infinity raws
      in
      let jobs =
        List.mapi
          (fun id r ->
            (* Serial-machine model: total demand runtime * procs spread
               over the fleet. *)
            let base = r.runtime *. r.procs /. float_of_int m in
            let sizes = Shape.sizes shape rng ~base ~m in
            Job.create ~id ~release:(r.submit -. base_time) ~sizes ())
          raws
      in
      (try Ok (Instance.create ~name:"swf-trace" ~machines:(Machine.fleet m) ~jobs ())
       with Invalid_argument msg -> Error msg)

let load ~path ?max_jobs ?m ?shape () =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse ?max_jobs ?m ?shape text
  | exception Sys_error msg -> Error msg
