(** The Lemma 2 adaptive adversary: any deterministic algorithm for
    non-preemptive energy minimization is at least
    [(alpha/9)^alpha]-competitive (single machine).

    Protocol (the paper's construction): job 1 has span [[0, 3^(alpha+1)]]
    and volume [span/3].  After the algorithm commits to a start [S_j] and
    speed [v_j] (hence completion [C_j = S_j + p_j / v_j]), the adversary
    releases job [j+1] with release [S_j + 1], deadline [C_j], and volume a
    third of its span.  The game stops after [ceil alpha] jobs or when the
    next span would be at most 1.

    Every released job overlaps all others in the algorithm's schedule, so
    the aggregate speed — and hence energy — blows up; the adversary can run
    each job at speed 1 with no overlap for total energy [sum_j p_j]. *)

type alg = {
  name : string;
  place : release:float -> deadline:float -> volume:float -> float * float;
      (** Returns [(start, speed)]; the execution [[start, start + volume/speed]]
          must fit in [[release, deadline]]. *)
}

type placed = {
  release : float;
  deadline : float;
  volume : float;
  start : float;
  speed : float;
}

type result = {
  jobs : placed list;  (** In release order. *)
  alg_energy : float;
      (** Integral of (aggregate speed)^alpha of the algorithm's
          placements, computed by the adversary (not trusted from the
          algorithm). *)
  adv_energy : float;
      (** The adversary's cost: speed-1, overlap-free execution, i.e.
          [sum_j volume_j]. *)
  rounds : int;
}

val run : alpha:float -> alg -> result
(** Plays the game; raises [Invalid_argument] when the algorithm returns an
    infeasible placement. *)
