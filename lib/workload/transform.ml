open Sched_model

let rebuild ~name instance f =
  let jobs =
    Array.to_list (Array.map f (Instance.jobs_by_release instance))
  in
  let machines =
    Array.init (Instance.m instance) (Instance.machine instance)
  in
  Instance.create ~name ~machines ~jobs ()

let scale_time c instance =
  if c <= 0. || not (Float.is_finite c) then invalid_arg "Transform.scale_time: bad factor";
  rebuild ~name:(instance.Instance.name ^ Printf.sprintf "(x%g time)" c) instance
    (fun (j : Job.t) ->
      Job.create ~id:j.id ~release:(c *. j.release) ~weight:j.weight
        ?deadline:(Option.map (fun d -> c *. d) j.deadline)
        ~sizes:(Array.map (fun p -> c *. p) j.sizes)
        ())

let scale_sizes c instance =
  if c <= 0. || not (Float.is_finite c) then invalid_arg "Transform.scale_sizes: bad factor";
  rebuild ~name:(instance.Instance.name ^ Printf.sprintf "(x%g sizes)" c) instance
    (fun (j : Job.t) ->
      Job.create ~id:j.id ~release:j.release ~weight:j.weight ?deadline:j.deadline
        ~sizes:(Array.map (fun p -> c *. p) j.sizes)
        ())

let shift_releases delta instance =
  if delta < 0. then invalid_arg "Transform.shift_releases: negative shift";
  rebuild ~name:(instance.Instance.name ^ Printf.sprintf "(+%g)" delta) instance
    (fun (j : Job.t) ->
      Job.create ~id:j.id ~release:(j.release +. delta) ~weight:j.weight
        ?deadline:(Option.map (fun d -> d +. delta) j.deadline)
        ~sizes:j.sizes ())

let subsample rng ~keep instance =
  if not (keep > 0. && keep <= 1.) then invalid_arg "Transform.subsample: keep must be in (0,1]";
  let kept =
    Array.to_list (Instance.jobs_by_release instance)
    |> List.filter (fun _ -> Sched_stats.Rng.float rng < keep)
  in
  let kept =
    match kept with
    | [] -> [ (Instance.jobs_by_release instance).(0) ]
    | l -> l
  in
  let jobs =
    List.mapi
      (fun id (j : Job.t) ->
        Job.create ~id ~release:j.release ~weight:j.weight ?deadline:j.deadline ~sizes:j.sizes ())
      kept
  in
  let machines = Array.init (Instance.m instance) (Instance.machine instance) in
  Instance.create ~name:(instance.Instance.name ^ "(sub)") ~machines ~jobs ()

let permute_jobs rng instance =
  let jobs = Array.copy (Instance.jobs_by_release instance) in
  (* Fisher–Yates on the presentation order only: ids and attributes are
     untouched, and [Instance.create] re-sorts by release, so the result is
     observationally the same instance — the identity every policy must
     respect byte-for-byte. *)
  for i = Array.length jobs - 1 downto 1 do
    let k = Sched_stats.Rng.int rng (i + 1) in
    let tmp = jobs.(i) in
    jobs.(i) <- jobs.(k);
    jobs.(k) <- tmp
  done;
  let machines = Array.init (Instance.m instance) (Instance.machine instance) in
  Instance.create ~name:instance.Instance.name ~machines ~jobs:(Array.to_list jobs) ()

let relabel_machines ~perm instance =
  let m = Instance.m instance in
  if Array.length perm <> m then invalid_arg "Transform.relabel_machines: wrong permutation length";
  let seen = Array.make m false in
  Array.iter
    (fun i ->
      if i < 0 || i >= m || seen.(i) then
        invalid_arg "Transform.relabel_machines: not a permutation of 0..m-1";
      seen.(i) <- true)
    perm;
  let machines = Array.make m (Instance.machine instance 0) in
  for i = 0 to m - 1 do
    let mc = Instance.machine instance i in
    machines.(perm.(i)) <- Machine.create ~id:perm.(i) ~speed:mc.Machine.speed ~alpha:mc.Machine.alpha ()
  done;
  let jobs =
    Array.to_list (Instance.jobs_by_release instance)
    |> List.map (fun (j : Job.t) ->
           let sizes = Array.make m 0. in
           for i = 0 to m - 1 do
             sizes.(perm.(i)) <- j.Job.sizes.(i)
           done;
           Job.create ~id:j.id ~release:j.release ~weight:j.weight ?deadline:j.deadline ~sizes ())
  in
  Instance.create ~name:(instance.Instance.name ^ "(relabeled)") ~machines ~jobs ()

let concat ?(gap = 0.) a b =
  if Instance.m a <> Instance.m b then invalid_arg "Transform.concat: fleet sizes differ";
  if gap < 0. then invalid_arg "Transform.concat: negative gap";
  let offset = Instance.horizon a +. gap in
  let na = Instance.n a in
  let jobs_a = Array.to_list (Instance.jobs_by_release a) in
  let jobs_b =
    Array.to_list (Instance.jobs_by_release b)
    |> List.map (fun (j : Job.t) ->
           Job.create ~id:(na + j.id) ~release:(j.release +. offset) ~weight:j.weight
             ?deadline:(Option.map (fun d -> d +. offset) j.deadline)
             ~sizes:j.sizes ())
  in
  let machines = Array.init (Instance.m a) (Instance.machine a) in
  Instance.create
    ~name:(a.Instance.name ^ "++" ^ b.Instance.name)
    ~machines ~jobs:(jobs_a @ jobs_b) ()
