open Sched_model
open Sched_stats

type arrivals =
  | Poisson of float
  | Batched of { every : float; size : int }
  | Bursty of { rate : float; burst_every : float; burst_size : int }
  | Diurnal of { base_rate : float; amplitude : float; period : float }
  | All_at_zero

type deadlines =
  | No_deadlines
  | Laxity of Dist.t
  | Slot_laxity of { min_slots : int; max_slots : int }

type t = {
  name : string;
  n : int;
  m : int;
  arrivals : arrivals;
  sizes : Dist.t;
  weights : Dist.t option;
  shape : Shape.t;
  deadlines : deadlines;
  alpha : float;
}

let make ?name ?arrivals ?(sizes = Dist.uniform ~lo:1. ~hi:10.) ?weights
    ?(shape = Shape.identical) ?(deadlines = No_deadlines) ?(alpha = 3.0) ~n ~m () =
  if n <= 0 then invalid_arg "Gen.make: n must be positive";
  if m <= 0 then invalid_arg "Gen.make: m must be positive";
  let arrivals =
    match arrivals with
    | Some a -> a
    | None ->
        (* Default: load the fleet to ~80% given the mean size. *)
        let mean_size = match Dist.mean sizes with Some mu -> mu | None -> 1. in
        Poisson (0.8 *. float_of_int m /. mean_size)
  in
  let name =
    match name with
    | Some s -> s
    | None -> Printf.sprintf "gen(n=%d,m=%d,%s,%s)" n m (Dist.name sizes) (Shape.name shape)
  in
  { name; n; m; arrivals; sizes; weights; shape; deadlines; alpha }

let release_times t rng =
  match t.arrivals with
  | All_at_zero -> Array.make t.n 0.
  | Poisson rate ->
      assert (rate > 0.);
      let times = Array.make t.n 0. in
      let clock = ref 0. in
      for k = 0 to t.n - 1 do
        clock := !clock +. Rng.exponential rng rate;
        times.(k) <- !clock
      done;
      times
  | Batched { every; size } ->
      assert (every > 0. && size > 0);
      Array.init t.n (fun k -> float_of_int (k / size) *. every)
  | Diurnal { base_rate; amplitude; period } ->
      assert (base_rate > 0. && amplitude >= 0. && amplitude <= 1. && period > 0.);
      (* Thinning (Lewis-Shedler): draw from the envelope rate
         [base_rate * (1 + amplitude)] and accept with probability
         [intensity(t) / envelope]. *)
      let envelope = base_rate *. (1. +. amplitude) in
      let times = Array.make t.n 0. in
      let clock = ref 0. and filled = ref 0 in
      while !filled < t.n do
        clock := !clock +. Rng.exponential rng envelope;
        let intensity =
          base_rate *. (1. +. (amplitude *. sin (2. *. Float.pi *. !clock /. period)))
        in
        if Rng.float rng < intensity /. envelope then begin
          times.(!filled) <- !clock;
          incr filled
        end
      done;
      times
  | Bursty { rate; burst_every; burst_size } ->
      assert (rate > 0. && burst_every > 0. && burst_size >= 0);
      let times = Array.make t.n 0. in
      let clock = ref 0. and filled = ref 0 in
      let next_burst = ref burst_every in
      while !filled < t.n do
        let dt = Rng.exponential rng rate in
        if !clock +. dt >= !next_burst && !filled + burst_size <= t.n then begin
          clock := !next_burst;
          next_burst := !next_burst +. burst_every;
          for _ = 1 to min burst_size (t.n - !filled) do
            times.(!filled) <- !clock;
            incr filled
          done
        end
        else begin
          clock := !clock +. dt;
          if !filled < t.n then begin
            times.(!filled) <- !clock;
            incr filled
          end
        end
      done;
      Array.sort Float.compare times;
      times

let instance t ~seed =
  let rng = Rng.create seed in
  let arrival_rng = Rng.split rng in
  let size_rng = Rng.split rng in
  let shape_rng = Rng.split rng in
  let weight_rng = Rng.split rng in
  let deadline_rng = Rng.split rng in
  let releases = release_times t arrival_rng in
  let jobs =
    List.init t.n (fun id ->
        let base = Dist.sample t.sizes size_rng in
        let sizes = Shape.sizes t.shape shape_rng ~base ~m:t.m in
        let weight = match t.weights with None -> 1. | Some d -> Dist.sample d weight_rng in
        let release, deadline =
          match t.deadlines with
          | No_deadlines -> (releases.(id), None)
          | Laxity d ->
              let lax = Float.max 1.01 (Dist.sample d deadline_rng) in
              let pmin = Array.fold_left Float.min Float.infinity sizes in
              (releases.(id), Some (releases.(id) +. (lax *. pmin)))
          | Slot_laxity { min_slots; max_slots } ->
              assert (0 < min_slots && min_slots <= max_slots);
              let r = Float.of_int (int_of_float releases.(id)) in
              let pmin = Array.fold_left Float.min Float.infinity sizes in
              let need = max min_slots (int_of_float (Float.ceil pmin)) in
              let span = need + Rng.int deadline_rng (max 1 (max_slots - need + 1)) in
              (r, Some (r +. float_of_int span))
        in
        Job.create ~id ~release ~weight ?deadline ~sizes ())
  in
  let machines = Machine.fleet ~alpha:t.alpha t.m in
  Instance.create ~name:(Printf.sprintf "%s#%d" t.name seed) ~machines ~jobs ()

let describe t =
  let arr =
    match t.arrivals with
    | Poisson r -> Printf.sprintf "poisson(%g)" r
    | Batched { every; size } -> Printf.sprintf "batched(%g,%d)" every size
    | Bursty { rate; burst_every; burst_size } ->
        Printf.sprintf "bursty(%g,%g,%d)" rate burst_every burst_size
    | Diurnal { base_rate; amplitude; period } ->
        Printf.sprintf "diurnal(%g,%g,%g)" base_rate amplitude period
    | All_at_zero -> "all-at-zero"
  in
  Printf.sprintf "%s: n=%d m=%d arrivals=%s sizes=%s shape=%s" t.name t.n t.m arr
    (Dist.name t.sizes) (Shape.name t.shape)
