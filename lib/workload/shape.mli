(** Machine-relatedness models.

    A shape turns a job's base size into its vector of per-machine sizes
    [p_ij], covering the classical machine environments: identical machines,
    uniformly related machines, fully unrelated machines, restricted
    assignment and cluster affinity. *)

open Sched_stats

type t

val name : t -> string

val sizes : t -> Rng.t -> base:float -> m:int -> float array
(** [sizes shape rng ~base ~m] draws the size vector of one job with base
    size [base] on [m] machines.  Entries are positive; [infinity] marks an
    ineligible machine (at least one entry is always finite). *)

val identical : t
(** [p_ij = base] everywhere. *)

val related : speeds:float array -> t
(** [p_ij = base / speeds.(i)]; speeds must be positive.  When the job count
    of machines differs from [Array.length speeds], speeds are cycled. *)

val unrelated : spread:float -> t
(** [p_ij = base * U[1/spread, spread]] independently per machine
    ([spread >= 1]): the general unrelated model. *)

val restricted : eligible_prob:float -> t
(** Each machine is eligible independently with probability
    [eligible_prob]; eligible machines have [p_ij = base], others
    [infinity].  At least one machine is forced eligible. *)

val clustered : clusters:int -> penalty:float -> t
(** Machines are split into [clusters] contiguous groups; each job prefers
    one uniformly random group ([p_ij = base]) and pays [penalty * base]
    elsewhere ([penalty >= 1]): data-locality affinity. *)
