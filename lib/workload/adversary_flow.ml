open Sched_model

type result = {
  instance : Instance.t;
  observed_start : float;
  adversary_cost : float;
  delta : float;
  big_count : int;
  small_count : int;
}

let check_params ~eps ~l =
  if not (eps > 0. && eps < 1.) then invalid_arg "Adversary_flow: eps must be in (0,1)";
  if l < 2. then invalid_arg "Adversary_flow: L must be at least 2"

let big_count ~eps = int_of_float (Float.ceil (1. /. eps))

let big_jobs_only ~eps ~l =
  check_params ~eps ~l;
  let k = big_count ~eps in
  let jobs =
    List.init k (fun id -> Job.create ~id ~release:0. ~sizes:[| l |] ())
  in
  Instance.create ~name:"lemma1-probe" ~machines:(Machine.fleet 1) ~jobs ()

let first_big_start (s : Schedule.t) =
  List.fold_left
    (fun acc (seg : Schedule.segment) -> Float.min acc seg.start)
    Float.infinity s.segments

let build ~eps ~l ~observed_start =
  check_params ~eps ~l;
  let k = big_count ~eps in
  let t0 = observed_start in
  let small = int_of_float (l *. l) in
  let jobs =
    List.init k (fun id -> Job.create ~id ~release:0. ~sizes:[| l |] ())
    @ List.init small (fun idx ->
          let id = k + idx in
          let release = t0 +. (float_of_int idx /. l) in
          Job.create ~id ~release ~sizes:[| 1. /. l |] ())
  in
  let instance =
    Instance.create ~name:(Printf.sprintf "lemma1(L=%g)" l) ~machines:(Machine.fleet 1) ~jobs ()
  in
  (* Adversary's schedule: each small job at its release (back-to-back, flow
     1/L each), then the big jobs sequentially from t0 + L + 1/L onwards.
     The small stream keeps the machine busy on [t0, t0 + L + 1/L - 1/L^2];
     we start big jobs at t0 + L + 1/L to be safely after it. *)
  let small_cost = float_of_int small *. (1. /. l) in
  let big_start = t0 +. l +. (1. /. l) in
  let big_cost = ref 0. in
  for j = 1 to k do
    (* Flow of the j-th big job: release 0, completion big_start + j*L. *)
    big_cost := !big_cost +. big_start +. (float_of_int j *. l)
  done;
  {
    instance;
    observed_start = t0;
    adversary_cost = small_cost +. !big_cost;
    delta = l *. l;
    big_count = k;
    small_count = small;
  }

let run_two_phase ~run ~eps ~l =
  let probe = big_jobs_only ~eps ~l in
  let t0 = first_big_start (run probe) in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  (* The paper's case split: an algorithm idling past L^2 loses on the big
     jobs alone; we cap the observation there. *)
  let t0 = Float.min t0 (l *. l) in
  let result = build ~eps ~l ~observed_start:t0 in
  (result, run result.instance)
