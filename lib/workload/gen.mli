(** Synthetic instance generation.

    A generator config fixes the arrival process, the base-size and weight
    distributions, the machine shape and (optionally) a deadline model;
    [instance] then deterministically expands a seed into an
    {!Sched_model.Instance.t}. *)

open Sched_model
open Sched_stats

type arrivals =
  | Poisson of float
      (** Rate per unit time; inter-arrival times are exponential. *)
  | Batched of { every : float; size : int }
      (** [size] jobs released together every [every] time units. *)
  | Bursty of { rate : float; burst_every : float; burst_size : int }
      (** Poisson background plus periodic bursts — the paper's Lemma 1
          stress pattern in benign form. *)
  | Diurnal of { base_rate : float; amplitude : float; period : float }
      (** Non-homogeneous Poisson with sinusoidal intensity
          [base_rate (1 + amplitude sin(2 pi t / period))], sampled by
          thinning ([0 <= amplitude <= 1]): the day/night load cycle of a
          shared cluster. *)
  | All_at_zero  (** Everything released at time 0 (offline-like). *)

type deadlines =
  | No_deadlines
  | Laxity of Dist.t
      (** [d_j = r_j + laxity * min_i p_ij] with laxity drawn per job
          (values must be > 1 for feasibility headroom). *)
  | Slot_laxity of { min_slots : int; max_slots : int }
      (** Integer-aligned spans for the discrete-time Section 4 model:
          releases are floored to integers and
          [d_j = floor(r_j) + U{min_slots..max_slots}] slots, with the span
          forced to be at least [ceil(min_i p_ij)] slots so speed-1
          execution is feasible. *)

type t = {
  name : string;
  n : int;
  m : int;
  arrivals : arrivals;
  sizes : Dist.t;
  weights : Dist.t option;  (** [None] = unit weights. *)
  shape : Shape.t;
  deadlines : deadlines;
  alpha : float;  (** Machine power exponent (speed-scaling models). *)
}

val make :
  ?name:string ->
  ?arrivals:arrivals ->
  ?sizes:Dist.t ->
  ?weights:Dist.t ->
  ?shape:Shape.t ->
  ?deadlines:deadlines ->
  ?alpha:float ->
  n:int ->
  m:int ->
  unit ->
  t
(** Defaults: Poisson arrivals at 80% of fleet capacity (given the size
    distribution's mean, falling back to rate [0.8 * m]), sizes
    [uniform 1..10], unit weights, identical machines, no deadlines,
    [alpha = 3]. *)

val instance : t -> seed:int -> Instance.t
(** Deterministic expansion; equal seeds yield identical instances. *)

val describe : t -> string
