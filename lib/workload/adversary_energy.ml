type alg = {
  name : string;
  place : release:float -> deadline:float -> volume:float -> float * float;
}

type placed = {
  release : float;
  deadline : float;
  volume : float;
  start : float;
  speed : float;
}

type result = {
  jobs : placed list;
  alg_energy : float;
  adv_energy : float;
  rounds : int;
}

let feasibility_slack = 1e-6

(* Energy of a set of (start, stop, speed) rectangles under P(s) = s^alpha:
   sweep the union of endpoints. *)
let profile_energy ~alpha rects =
  let points =
    List.concat_map (fun (a, b, _) -> [ a; b ]) rects |> List.sort_uniq Float.compare
  in
  let rec sweep acc = function
    | a :: (b :: _ as rest) ->
        let mid = (a +. b) /. 2. in
        let speed =
          List.fold_left (fun s (x, y, v) -> if x <= mid && mid < y then s +. v else s) 0. rects
        in
        sweep (acc +. ((b -. a) *. (speed ** alpha))) rest
    | _ -> acc
  in
  sweep 0. points

let run ~alpha alg =
  if alpha < 1. then invalid_arg "Adversary_energy.run: alpha must be >= 1";
  let max_jobs = max 1 (int_of_float (Float.ceil alpha)) in
  let rec play acc rounds ~release ~deadline =
    let span = deadline -. release in
    if rounds >= max_jobs || span <= 1. then List.rev acc
    else begin
      let volume = span /. 3. in
      let start, speed = alg.place ~release ~deadline ~volume in
      if speed <= 0. then invalid_arg (Printf.sprintf "%s returned non-positive speed" alg.name);
      let finish = start +. (volume /. speed) in
      if start < release -. feasibility_slack || finish > deadline +. feasibility_slack then
        invalid_arg
          (Printf.sprintf "%s placed [%g,%g] outside span [%g,%g]" alg.name start finish
             release deadline);
      let placed = { release; deadline; volume; start; speed } in
      (* Next job: release S_j + 1, deadline C_j. *)
      play (placed :: acc) (rounds + 1) ~release:(start +. 1.) ~deadline:finish
    end
  in
  let d1 = 3. ** (alpha +. 1.) in
  let jobs = play [] 0 ~release:0. ~deadline:d1 in
  let rects = List.map (fun p -> (p.start, p.start +. (p.volume /. p.speed), p.speed)) jobs in
  {
    jobs;
    alg_energy = profile_energy ~alpha rects;
    adv_energy = List.fold_left (fun acc p -> acc +. p.volume) 0. jobs;
    rounds = List.length jobs;
  }
