(** Instance transformations.

    Besides their utility for building experiment variants, these enable
    {e metamorphic} testing of the whole stack: the model, driver and all
    policies are exactly scale-invariant, so e.g. [scale_time c] must scale
    every flow-time by [c] — an end-to-end invariant the test suite
    checks. *)

open Sched_model

val scale_time : float -> Instance.t -> Instance.t
(** Multiply releases, sizes and deadlines by [c > 0]: a pure change of
    time unit.  Flow-times of any scale-invariant policy scale by exactly
    [c]. *)

val scale_sizes : float -> Instance.t -> Instance.t
(** Multiply only the processing sizes (load knob). *)

val shift_releases : float -> Instance.t -> Instance.t
(** Add [delta >= 0] to every release (and deadline). *)

val permute_jobs : Sched_stats.Rng.t -> Instance.t -> Instance.t
(** Shuffle the presentation order of the job list fed to
    {!Instance.create}.  Ids, releases and sizes are untouched and the
    instance re-sorts by release internally, so the result must be
    observationally identical — every policy has to produce a
    byte-identical schedule on it (a metamorphic identity the fuzzer
    checks). *)

val relabel_machines : perm:int array -> Instance.t -> Instance.t
(** Rename machine [i] to [perm.(i)] (a permutation of [0..m-1]), carrying
    speeds, alphas and each job's size column along.  The relabeled
    instance describes the same scheduling problem up to machine identity;
    note policies may legitimately break argmin ties by machine id, so
    runs on the relabeled instance are equivalent in metrics, not
    byte-identical. *)

val subsample : Sched_stats.Rng.t -> keep:float -> Instance.t -> Instance.t
(** Keep each job independently with probability [keep]; at least one job
    is always retained.  Job ids are renumbered [0..n'-1]. *)

val concat : ?gap:float -> Instance.t -> Instance.t -> Instance.t
(** Play instance [b] after instance [a]: [b]'s releases are shifted past
    [a]'s horizon plus [gap] (default 0).  Machine fleets must have equal
    size; [a]'s machines are kept. *)
