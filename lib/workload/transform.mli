(** Instance transformations.

    Besides their utility for building experiment variants, these enable
    {e metamorphic} testing of the whole stack: the model, driver and all
    policies are exactly scale-invariant, so e.g. [scale_time c] must scale
    every flow-time by [c] — an end-to-end invariant the test suite
    checks. *)

open Sched_model

val scale_time : float -> Instance.t -> Instance.t
(** Multiply releases, sizes and deadlines by [c > 0]: a pure change of
    time unit.  Flow-times of any scale-invariant policy scale by exactly
    [c]. *)

val scale_sizes : float -> Instance.t -> Instance.t
(** Multiply only the processing sizes (load knob). *)

val shift_releases : float -> Instance.t -> Instance.t
(** Add [delta >= 0] to every release (and deadline). *)

val subsample : Sched_stats.Rng.t -> keep:float -> Instance.t -> Instance.t
(** Keep each job independently with probability [keep]; at least one job
    is always retained.  Job ids are renumbered [0..n'-1]. *)

val concat : ?gap:float -> Instance.t -> Instance.t -> Instance.t
(** Play instance [b] after instance [a]: [b]'s releases are shifted past
    [a]'s horizon plus [gap] (default 0).  Machine fleets must have equal
    size; [a]'s machines are kept. *)
