open Sched_stats
open Sched_model
module FR = Rejection.Flow_reject
module SA = Sched_baselines.Speed_augmented

let run ~obs:_ ~quick =
  let n = Exp_util.scale ~quick 150 and m = 4 in
  let eps_r = 0.2 in
  let table =
    Table.create
      ~title:
        "E9: relaxation power — rejection only (Thm 1) vs speed augmentation (ESA'16) vs \
         machine augmentation"
      ~columns:
        [
          "workload"; "thm1-ratio"; "thm1-rej%"; "esa(+0.2)"; "esa(+0.5)"; "esa(+1.0)";
          "esa-rej%"; "maug(x2)"; "maug(x4)";
        ]
  in
  List.iter
    (fun gen ->
      let acc = Hashtbl.create 8 in
      let push (k, v) =
        Hashtbl.replace acc k (v :: (Option.value ~default:[] (Hashtbl.find_opt acc k)))
      in
      (* All algorithms for one seed run in one parallel task. *)
      Exp_util.per_seed ~quick (fun seed ->
          let inst = Sched_workload.Gen.instance gen ~seed in
          let lb = (Sched_baselines.Lower_bounds.volume inst).Sched_baselines.Lower_bounds.value in
          let ratio s = (Metrics.flow s).Metrics.total_with_rejected /. lb in
          let thm1 = Exp_util.run_policy (FR.policy (FR.config ~eps:eps_r ())) inst in
          [ ("thm1", ratio thm1); ("thm1rej", (Metrics.rejection thm1).Metrics.fraction) ]
          @ List.concat_map
              (fun eps_s ->
                let s = SA.run ~eps_s ~eps_r inst in
                Schedule.assert_valid ~check_deadlines:false s;
                (Printf.sprintf "esa%.1f" eps_s, ratio s)
                ::
                (if eps_s = 0.5 then [ ("esarej", (Metrics.rejection s).Metrics.fraction) ]
                 else []))
              [ 0.2; 0.5; 1.0 ]
          @ List.map
              (fun factor ->
                let s = Sched_baselines.Machine_augmented.run ~factor inst in
                (Printf.sprintf "maug%d" factor, ratio s))
              [ 2; 4 ])
      |> List.iter (List.iter push);
      let mean k = Exp_util.mean (Hashtbl.find acc k) in
      Table.add_row table
        [
          gen.Sched_workload.Gen.name;
          Table.cell_float (mean "thm1");
          Table.cell_float (100. *. mean "thm1rej");
          Table.cell_float (mean "esa0.2");
          Table.cell_float (mean "esa0.5");
          Table.cell_float (mean "esa1.0");
          Table.cell_float (100. *. mean "esarej");
          Table.cell_float (mean "maug2");
          Table.cell_float (mean "maug4");
        ])
    (Sched_workload.Suite.all_flow ~n ~m);
  [ table ]
