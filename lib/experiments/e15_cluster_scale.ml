open Sched_stats
open Sched_sim
module LB = Sched_baselines.Lower_bounds
module FR = Rejection.Flow_reject

(* E15: the sharded driver at cluster scale.  One instance per point (no
   seed replication — the instances are the cost), run through
   [Driver.run_sharded] with the flow-reject hooks; the table reports
   the empirical ratio against the volume lower bound, the rejection
   fraction, and an S-unobservability bit: the canonical schedule at
   S = [shards] must be byte-identical to S = 1 on the same instance.
   Throughput (events/sec, GC pressure) for these shapes — and the
   memory-gated n = 10^6 x m = 10^3 point — live in the bench harness
   (BENCH_pr9.json), not here: experiment tables stay deterministic. *)

let eps = 0.25
let shards = 4

let points ~quick =
  if quick then [ ("uniform", 2_000, 20); ("pareto", 1_000, 16) ]
  else [ ("uniform", 20_000, 64); ("uniform", 50_000, 128); ("pareto", 20_000, 48) ]

let gen name ~n ~m =
  match name with
  | "pareto" -> Sched_workload.Suite.flow_pareto ~n ~m
  | _ -> Sched_workload.Suite.flow_uniform ~n ~m

let run ~obs:_ ~quick =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E15: cluster-scale sharded runs (flow-reject, eps=%.2f, S=%d vs S=1)" eps shards)
      ~columns:[ "workload"; "n"; "m"; "ratio"; "ratio(compl)"; "rej%"; "S-id" ]
  in
  List.iter
    (fun (name, n, m) ->
      let inst = Sched_workload.Gen.instance (gen name ~n ~m) ~seed:11 in
      let lb = (LB.volume inst).LB.value in
      let run_at shards =
        Driver.run_sharded ~hooks:FR.hooks ~shards (FR.policy (FR.config ~eps ())) inst
      in
      let s_sharded, _, live = run_at shards in
      let s_seq, _, _ = run_at 1 in
      let identical =
        String.equal
          (Sched_model.Serialize.schedule_to_canonical_string s_sharded)
          (Sched_model.Serialize.schedule_to_canonical_string s_seq)
      in
      let open Sched_model in
      Table.add_row table
        [
          name;
          Table.cell_int n;
          Table.cell_int m;
          Table.cell_float (live.Driver.flow.Metrics.total_with_rejected /. lb);
          Table.cell_float (live.Driver.flow.Metrics.total /. lb);
          Table.cell_float (100. *. live.Driver.rejection.Metrics.fraction);
          Table.cell_bool identical;
        ])
    (points ~quick);
  table

let run ~obs ~quick = [ run ~obs ~quick ]
