open Sched_stats
open Sched_energy

let run ~obs:_ ~quick =
  let trials = if quick then 400 else 4000 in
  let table =
    Table.create
      ~title:"E7: (lambda,mu)-smoothness of power functions (empirical worst-case lambda)"
      ~columns:
        [ "power"; "alpha"; "mu"; "lambda-req"; "alpha^(alpha-1)"; "ratio"; "cr=l/(1-mu)" ]
  in
  let alphas = if quick then [ 2.; 3. ] else [ 1.5; 2.; 2.5; 3.; 4.; 5. ] in
  List.iter
    (fun alpha ->
      let rng = Rng.create 2024 in
      let p = Power.polynomial ~alpha in
      let mu = Rejection.Bounds.smooth_mu ~alpha in
      let lreq = Smooth.required_lambda ~trials p ~mu rng in
      let lref = Rejection.Bounds.smooth_lambda ~alpha in
      Table.add_row table
        [
          Power.name p;
          Table.cell_float alpha;
          Table.cell_float mu;
          Table.cell_float lreq;
          Table.cell_float lref;
          Table.cell_float (lreq /. lref);
          Table.cell_float (lreq /. (1. -. mu));
        ])
    alphas;
  (* Beyond convexity: a static-power and a step function, as Theorem 3
     only needs smoothness, not convexity. *)
  List.iter
    (fun (p, alpha_label) ->
      let rng = Rng.create 99 in
      let mu = 0.5 in
      let lreq = Smooth.required_lambda ~trials p ~mu rng in
      Table.add_row table
        [
          Power.name p;
          alpha_label;
          Table.cell_float mu;
          Table.cell_float lreq;
          "-";
          "-";
          Table.cell_float (lreq /. (1. -. mu));
        ])
    [
      (Power.affine_polynomial ~alpha:2. ~static:1., "2+static");
      (Power.piecewise [ (1., 1.); (2., 4.); (4., 20.); (8., 100.) ], "step");
    ];
  [ table ]
