(** E13 (validation, "Table 10"): simulator cross-check against queueing
    theory.

    A single machine under Poisson arrivals with FIFO service is an M/G/1
    queue; the event-driven driver's measured mean flow-time must match the
    exact Pollaczek-Khinchine prediction.  Any systematic discrepancy would
    invalidate every other experiment, so this is the reproduction's
    ground-truth anchor. *)

val run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list
