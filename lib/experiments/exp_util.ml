open Sched_model
open Sched_sim

let seeds ~quick = if quick then [ 11; 42 ] else Sched_workload.Suite.default_seeds

(* Seed replication submits to the ambient pool (Sched_stats.Pool): under
   Registry.run_all the enclosing experiment task's pool, so experiments
   and seeds share one fixed set of domains; standalone (single
   experiment from the CLI) the process-wide default pool. *)
let per_seed ~quick f = Sched_stats.Parallel.map_list f (seeds ~quick)

(* Telemetry-aware variant: each seed records into its own shard registry
   (seeds may run on different domains concurrently), and the shards are
   folded back into [obs] in seed order — so the merged snapshot is
   byte-identical however the seeds were scheduled. *)
let per_seed_obs ?obs ~quick f =
  match obs with
  | None -> per_seed ~quick (fun seed -> f ~obs:None seed)
  | Some o ->
      let shards =
        per_seed ~quick (fun seed ->
            let registry = Sched_obs.Registry.create () in
            let shard = Sched_obs.Obs.create ~registry () in
            (f ~obs:(Some shard) seed, registry))
      in
      List.map
        (fun (result, registry) ->
          Sched_obs.Registry.merge ~into:(Sched_obs.Obs.registry o) registry;
          result)
        shards

let scale ~quick n = if quick then max 20 (n / 3) else n

let mean = function
  | [] -> invalid_arg "Exp_util.mean: empty"
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let run_policy ?obs policy instance =
  let schedule = Driver.run_schedule ?obs policy instance in
  Schedule.assert_valid ~check_deadlines:false schedule;
  schedule

type flow_measurement = {
  completed_flow : float;
  total_flow : float;
  rejected_fraction : float;
  rejected_weight_fraction : float;
  max_flow : float;
}

let measure_flow schedule =
  let f = Metrics.flow schedule in
  let r = Metrics.rejection schedule in
  {
    completed_flow = f.Metrics.total;
    total_flow = f.Metrics.total_with_rejected;
    rejected_fraction = r.Metrics.fraction;
    rejected_weight_fraction = r.Metrics.weight_fraction;
    max_flow = f.Metrics.max_flow;
  }

let flow_ratio schedule ~lb =
  if lb <= 0. then Float.infinity else (measure_flow schedule).total_flow /. lb

let eps_grid = [ 0.1; 0.2; 1. /. 3.; 0.5 ]
