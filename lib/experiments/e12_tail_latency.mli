(** E12 (extension, "Table 9"): tail flow-time.

    The paper's objective is total (average) flow-time, but its motivation
    — elephants blocking non-preemptive queues — is a {e tail} phenomenon,
    and the related-work line [6] (Choudhury et al.) rejects jobs precisely
    to control maximum flow-time.  This experiment reports p50/p90/p99/max
    flow-time of the Theorem 1 algorithm against the non-rejecting
    baselines on the elephant-heavy workloads, showing rejection buys its
    largest wins in the tail. *)

val run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list
