open Sched_stats
module AF = Sched_workload.Adversary_flow
module IR = Sched_baselines.Immediate_reject
module FR = Rejection.Flow_reject

let eps = 0.2

let ratio_of ~run ~l =
  let result, schedule = AF.run_two_phase ~run ~eps ~l in
  (Sched_model.Metrics.flow schedule).Sched_model.Metrics.total_with_rejected
  /. result.AF.adversary_cost

let run ~obs:_ ~quick =
  let ls = if quick then [ 4.; 8.; 16. ] else [ 4.; 8.; 16.; 32.; 64. ] in
  let table =
    Table.create
      ~title:
        "E2: Lemma 1 adversary (ratio vs adversary's schedule; immediate policies blow up, \
         Theorem 1 stays flat)"
      ~columns:
        [
          "L"; "delta"; "sqrt(delta)"; "imm-never"; "imm-load"; "imm-largest"; "thm1-reject";
          "thm1-rule1-only";
        ]
  in
  List.iter
    (fun l ->
      let imm h i = Sched_sim.Driver.run_schedule (IR.policy ~eps h) i in
      let rej i = fst (FR.run (FR.config ~eps ()) i) in
      (* Rule 1 (mid-run revocation) alone suffices against this adversary:
         the blocking elephant is the running job. *)
      let rej1 i = fst (FR.run (FR.config ~eps ~rule2:false ()) i) in
      Table.add_row table
        [
          Table.cell_float l;
          Table.cell_float (l *. l);
          Table.cell_float l;
          Table.cell_float (ratio_of ~run:(imm IR.Never) ~l);
          Table.cell_float (ratio_of ~run:(imm (IR.Load_threshold 3.)) ~l);
          Table.cell_float (ratio_of ~run:(imm (IR.Largest_over 2.)) ~l);
          Table.cell_float (ratio_of ~run:rej ~l);
          Table.cell_float (ratio_of ~run:rej1 ~l);
        ])
    ls;
  [ table ]
