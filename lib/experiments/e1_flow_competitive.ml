open Sched_stats
module LB = Sched_baselines.Lower_bounds
module FR = Rejection.Flow_reject

let standard_table ~obs ~quick =
  let n = Exp_util.scale ~quick 150 and m = 4 in
  let table =
    Table.create ~title:"E1a: Theorem 1 on standard workloads (ratio vs volume LB)"
      ~columns:
        [ "workload"; "eps"; "ratio"; "ratio(compl)"; "rej%"; "budget%"; "bound"; "ok" ]
  in
  List.iter
    (fun gen ->
      List.iter
        (fun eps ->
          let per_seed =
            Exp_util.per_seed_obs ?obs ~quick (fun ~obs seed ->
                let inst = Sched_workload.Gen.instance gen ~seed in
                let schedule = Exp_util.run_policy ?obs (FR.policy (FR.config ~eps ())) inst in
                let lb = (LB.volume inst).LB.value in
                let msr = Exp_util.measure_flow schedule in
                ( msr.Exp_util.total_flow /. lb,
                  msr.Exp_util.completed_flow /. lb,
                  msr.Exp_util.rejected_fraction ))
          in
          let ratio = Exp_util.mean (List.map (fun (r, _, _) -> r) per_seed) in
          let cratio = Exp_util.mean (List.map (fun (_, c, _) -> c) per_seed) in
          let rej = Exp_util.mean (List.map (fun (_, _, r) -> r) per_seed) in
          let bound = Rejection.Bounds.flow_competitive ~eps in
          let budget = Rejection.Bounds.flow_rejection_budget ~eps in
          Table.add_row table
            [
              gen.Sched_workload.Gen.name;
              Table.cell_float eps;
              Table.cell_float ratio;
              Table.cell_float cratio;
              Table.cell_float (100. *. rej);
              Table.cell_float (100. *. budget);
              Table.cell_float bound;
              Table.cell_bool (ratio <= bound && rej <= budget +. 1e-9);
            ])
        Exp_util.eps_grid)
    (Sched_workload.Suite.all_flow ~n ~m);
  table

let exact_table ~quick =
  let table =
    Table.create ~title:"E1b: Theorem 1 exact ratios on tiny instances (vs brute-force OPT)"
      ~columns:[ "n"; "m"; "eps"; "seed"; "alg"; "OPT"; "LP/2"; "ratio"; "bound"; "ok" ]
  in
  let cases = if quick then [ (6, 2, 0.25, 11) ] else
    [ (6, 2, 0.25, 11); (7, 2, 0.25, 23); (7, 2, 0.5, 23); (8, 3, 1. /. 3., 42); (8, 1, 0.25, 77) ]
  in
  List.iter
    (fun (n, m, eps, seed) ->
      let inst = Sched_workload.Suite.tiny ~seed ~n ~m in
      let schedule = Exp_util.run_policy (FR.policy (FR.config ~eps ())) inst in
      let opt = Option.get (Sched_baselines.Brute_force.optimal_flow inst) in
      let lp =
        match Sched_lp.Flow_lp.solve inst with
        | Some s -> s.Sched_lp.Flow_lp.opt_lower_bound
        | None -> Float.nan
      in
      let alg = (Exp_util.measure_flow schedule).Exp_util.total_flow in
      let ratio = alg /. opt in
      let bound = Rejection.Bounds.flow_competitive ~eps in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int m;
          Table.cell_float eps;
          Table.cell_int seed;
          Table.cell_float alg;
          Table.cell_float opt;
          Table.cell_float lp;
          Table.cell_float ratio;
          Table.cell_float bound;
          Table.cell_bool (ratio <= bound);
        ])
    cases;
  table

(* Two-sided brackets: alg/OPT lies in [alg/UB, alg/LB] where UB is the
   local-search upper bound on OPT and LB the volume bound.  Tight brackets
   certify how much of the measured "ratio" is lower-bound looseness. *)
let bracket_table ~obs ~quick =
  let n = Exp_util.scale ~quick 120 and m = 3 in
  let eps = 0.25 in
  let table =
    Table.create
      ~title:"E1c: two-sided ratio brackets (alg/OPT in [alg/UB, alg/LB], eps=0.25)"
      ~columns:[ "workload"; "alg-flow"; "LB"; "LS-UB"; "ratio>="; "ratio<=" ]
  in
  List.iter
    (fun gen ->
      let stats =
        Exp_util.per_seed_obs ?obs ~quick (fun ~obs seed ->
            let inst = Sched_workload.Gen.instance gen ~seed in
            let schedule = Exp_util.run_policy ?obs (FR.policy (FR.config ~eps ())) inst in
            let alg = (Exp_util.measure_flow schedule).Exp_util.total_flow in
            let lb = (LB.volume inst).LB.value in
            let ub = (Sched_baselines.Local_search.improve inst).Sched_baselines.Local_search.cost in
            (alg, lb, ub))
      in
      let mean f = Exp_util.mean (List.map f stats) in
      let alg = mean (fun (a, _, _) -> a)
      and lb = mean (fun (_, l, _) -> l)
      and ub = mean (fun (_, _, u) -> u) in
      Table.add_row table
        [
          gen.Sched_workload.Gen.name;
          Table.cell_float alg;
          Table.cell_float lb;
          Table.cell_float ub;
          Table.cell_float (alg /. ub);
          Table.cell_float (alg /. lb);
        ])
    (if quick then [ Sched_workload.Suite.flow_bimodal ~n ~m ]
     else
       [
         Sched_workload.Suite.flow_uniform ~n ~m;
         Sched_workload.Suite.flow_pareto ~n ~m;
         Sched_workload.Suite.flow_bimodal ~n ~m;
       ]);
  table

let run ~obs ~quick = [ standard_table ~obs ~quick; exact_table ~quick; bracket_table ~obs ~quick ]
