(** E4 ("Table 3"): Theorem 3 — the configuration-LP greedy for
    non-preemptive energy minimization with deadlines.

    Ratio against the best available lower bound (YDS preemptive optimum on
    single-machine instances, per-job convexity bound otherwise), checked
    against [alpha^alpha]; AVR is reported as the classical preemptive
    online comparator.  Includes a laxity sweep (tight to loose
    deadlines). *)

val run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list
