open Sched_stats
module FR = Rejection.Flow_reject
module DF = Sched_lp.Dual_fit

let certify_on inst eps =
  let trace = Sched_sim.Trace.create () in
  let schedule, st = FR.run ~trace (FR.config ~eps ()) inst in
  (* Certify at the effective (integral-threshold) epsilon of the run. *)
  DF.certify ~eps:(FR.effective_eps st) ~lambdas:(FR.lambdas st) inst trace schedule

let main_table ~quick =
  let n = Exp_util.scale ~quick 120 and m = 3 in
  let table =
    Table.create ~title:"E6a: dual-fitting certificate (Lemma 4) on standard workloads"
      ~columns:
        [
          "workload"; "eps"; "slack(disp)"; "slack(all)"; "quantum"; "checked"; "primal/dual";
          "proof-bound"; "ok";
        ]
  in
  let epss = if quick then [ 0.25 ] else [ 0.1; 0.25; 0.5 ] in
  List.iter
    (fun gen ->
      List.iter
        (fun eps ->
          let inst = Sched_workload.Gen.instance gen ~seed:42 in
          let r = certify_on inst eps in
          let proof_bound = ((1. +. r.DF.eps) /. r.DF.eps) ** 2. in
          Table.add_row table
            [
              gen.Sched_workload.Gen.name;
              Table.cell_float eps;
              Printf.sprintf "%.2e" r.DF.min_slack_dispatch_machine;
              Printf.sprintf "%.2e" r.DF.min_constraint_slack;
              Printf.sprintf "%.3f" r.DF.counterfactual_quantum;
              Table.cell_int r.DF.constraints_checked;
              Table.cell_float r.DF.primal_over_dual;
              Table.cell_float proof_bound;
              Table.cell_bool
                (r.DF.min_slack_dispatch_machine >= -1e-6
                && r.DF.min_constraint_slack >= -.r.DF.counterfactual_quantum -. 1e-6
                && r.DF.primal_over_dual <= proof_bound +. 1e-6
                && r.DF.ctilde_sum >= r.DF.algo_flow -. 1e-6);
            ])
        epss)
    (Sched_workload.Suite.all_flow ~n ~m);
  table

let weak_duality_table ~quick =
  let table =
    Table.create
      ~title:"E6b: weak duality — dual objective <= LP value <= 2 OPT (tiny instances)"
      ~columns:[ "n"; "m"; "eps"; "dual-obj"; "LP"; "2*OPT"; "ok" ]
  in
  let cases = if quick then [ (6, 2, 0.25, 11) ] else
    [ (6, 2, 0.25, 11); (7, 2, 0.25, 23); (7, 1, 0.5, 42); (8, 2, 1. /. 3., 77) ]
  in
  List.iter
    (fun (n, m, eps, seed) ->
      let inst = Sched_workload.Suite.tiny ~seed ~n ~m in
      let r = certify_on inst eps in
      let lp =
        match Sched_lp.Flow_lp.solve inst with
        | Some s -> s.Sched_lp.Flow_lp.lp_value
        | None -> Float.nan
      in
      let opt2 =
        match Sched_baselines.Brute_force.optimal_flow inst with
        | Some v -> 2. *. v
        | None -> Float.nan
      in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int m;
          Table.cell_float eps;
          Table.cell_float r.DF.dual_objective;
          Table.cell_float lp;
          Table.cell_float opt2;
          (* The discretized LP slightly underestimates the continuous LP,
             so allow proportional slack on the first inequality. *)
          Table.cell_bool
            (r.DF.dual_objective <= (lp *. 1.02) +. 1e-6 && lp <= opt2 +. 1e-6);
        ])
    cases;
  table

let energy_table ~quick =
  let module FE = Rejection.Flow_energy_reject in
  let module DFE = Sched_lp.Dual_fit_energy in
  let n = Exp_util.scale ~quick 60 and m = 2 in
  let table =
    Table.create ~title:"E6c: Theorem 2 dual-fitting certificate (Lemma 6)"
      ~columns:[ "alpha"; "eps"; "min-slack"; "checked"; "dual-obj"; "primal"; "primal/dual"; "ok" ]
  in
  let cases =
    if quick then [ (3., 0.25) ] else [ (2., 0.25); (3., 0.25); (3., 0.1); (2.5, 0.5) ]
  in
  List.iter
    (fun (alpha, eps) ->
      let gen = Sched_workload.Suite.weighted_energy ~n ~m ~alpha in
      let inst = Sched_workload.Gen.instance gen ~seed:42 in
      let trace = Sched_sim.Trace.create () in
      let schedule, st = FE.run ~trace (FE.config ~eps ()) inst in
      let gammas = Array.init m (FE.gamma_of_machine st) in
      let r = DFE.certify ~eps ~gammas ~lambdas:(FE.lambdas st) inst trace schedule in
      Table.add_row table
        [
          Table.cell_float alpha;
          Table.cell_float eps;
          Printf.sprintf "%.2e" r.DFE.min_constraint_slack;
          Table.cell_int r.DFE.constraints_checked;
          Table.cell_float r.DFE.dual_objective;
          Table.cell_float r.DFE.primal;
          Table.cell_float r.DFE.primal_over_dual;
          Table.cell_bool (r.DFE.min_constraint_slack >= -1e-6 && r.DFE.dual_objective > 0.);
        ])
    cases;
  table

let run ~obs:_ ~quick = [ main_table ~quick; weak_duality_table ~quick; energy_table ~quick ]
