open Sched_stats
open Sched_model
module FR = Rejection.Flow_reject
module RS = Sched_baselines.Restart_spt

let run ~obs:_ ~quick =
  let n = Exp_util.scale ~quick 200 and m = 4 in
  let table =
    Table.create
      ~title:"E14: restart relaxation vs rejection (flow ratio vs volume LB; mean over seeds)"
      ~columns:
        [ "workload"; "policy"; "ratio"; "p99-flow"; "rej%"; "restarts"; "wasted-work%" ]
  in
  let workloads =
    if quick then [ Sched_workload.Suite.flow_bimodal ~n ~m ]
    else
      [
        Sched_workload.Suite.flow_bimodal ~n ~m;
        Sched_workload.Suite.flow_pareto ~n ~m;
        Sched_workload.Suite.flow_uniform ~n ~m;
      ]
  in
  let policies =
    [
      ( "thm1-reject(0.2)",
        fun inst ->
          let s, _ = FR.run (FR.config ~eps:0.2 ()) inst in
          (s, 0, 0.) );
      ( "restart-spt",
        fun inst ->
          let s, st = RS.run (RS.config ()) inst in
          (s, RS.restarts st, RS.wasted_work s) );
      ( "no relaxation",
        fun inst ->
          let s, _ = FR.run (FR.config ~eps:0.2 ~rule1:false ~rule2:false ()) inst in
          (s, 0, 0.) );
    ]
  in
  List.iter
    (fun gen ->
      List.iter
        (fun (name, runner) ->
          let stats =
            Exp_util.per_seed ~quick (fun seed ->
                let inst = Sched_workload.Gen.instance gen ~seed in
                let s, restarts, wasted = runner inst in
                Schedule.assert_valid ~allow_restarts:true ~check_deadlines:false s;
                let lb =
                  (Sched_baselines.Lower_bounds.volume inst).Sched_baselines.Lower_bounds.value
                in
                let f = Metrics.flow s in
                let values = Metrics.flow_values s in
                let p99 = (Summary.of_array values).Summary.p99 in
                let total_volume = Instance.total_min_volume inst in
                ( f.Metrics.total_with_rejected /. lb,
                  p99,
                  (Metrics.rejection s).Metrics.fraction,
                  float_of_int restarts,
                  wasted /. total_volume ))
          in
          let mean f = Exp_util.mean (List.map f stats) in
          Table.add_row table
            [
              gen.Sched_workload.Gen.name;
              name;
              Table.cell_float (mean (fun (a, _, _, _, _) -> a));
              Table.cell_float (mean (fun (_, a, _, _, _) -> a));
              Table.cell_float (100. *. mean (fun (_, _, a, _, _) -> a));
              Table.cell_float (mean (fun (_, _, _, a, _) -> a));
              Table.cell_float (100. *. mean (fun (_, _, _, _, a) -> a));
            ])
        policies)
    workloads;
  [ table ]
