(** E3 ("Table 2"): Theorem 2 — weighted flow-time plus energy under speed
    scaling: ratio against the per-job speed-optimized lower bound, and the
    rejected-weight budget [eps]. *)

val run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list
