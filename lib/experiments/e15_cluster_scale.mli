(** E15 (methodology): the sharded within-run driver at cluster scale.

    Single large instances (n up to 5 x 10^4, m up to 128 in full mode)
    run through {!Sched_sim.Driver.run_sharded} with the flow-reject
    two-phase hooks at S = 4, reporting the empirical flow-time ratio
    against the volume lower bound, the rejection fraction, and the
    S-unobservability bit (canonical schedule at S = 4 byte-identical to
    S = 1).  Throughput and GC figures for these shapes — and the
    memory-gated n = 10^6 x m = 10^3 cluster point — are measured by the
    bench harness, keeping the experiment tables deterministic. *)

val run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list
