(** The experiment registry: the single source of truth mapping experiment
    ids to runners, shared by the bench harness, the CLI and the tests. *)

type entry = {
  id : string;  (** "e1" .. "e9". *)
  title : string;
  reproduces : string;  (** Which claim of the paper this regenerates. *)
  run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list;
      (** [~obs] threads telemetry; experiments that do not emit any
          ignore it (the suite-level structural counters are recorded by
          {!run_all} regardless). *)
}

val all : entry list

val find : string -> entry option

val run_all :
  ?quick:bool ->
  ?obs:Sched_obs.Obs.t ->
  ?pool:Sched_stats.Pool.t ->
  ?only:string list ->
  unit ->
  (entry * Sched_stats.Table.t list) list
(** Runs the suite (quick defaults to false) and returns the tables in
    registry order.

    [?only] restricts to the given experiment ids (unknown ids are
    ignored).  [?pool] fans the experiments out as tasks on a
    {!Sched_stats.Pool} — one task per experiment, [chunk_size = 1] —
    while per-seed replication inside each experiment submits to the
    same pool ({!Exp_util.per_seed}); omitting it runs sequentially.
    [?obs] collects telemetry: each experiment records into a private
    shard registry, shards are merged into [obs] in registry order after
    the join, and two structural counters ([exp_tables_total],
    [exp_rows_total], labelled by experiment id) are always recorded —
    so the merged export is byte-identical across domain counts,
    sequential runs included. *)
