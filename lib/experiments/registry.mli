(** The experiment registry: the single source of truth mapping experiment
    ids to runners, shared by the bench harness, the CLI and the tests. *)

type entry = {
  id : string;  (** "e1" .. "e9". *)
  title : string;
  reproduces : string;  (** Which claim of the paper this regenerates. *)
  run : quick:bool -> Sched_stats.Table.t list;
}

val all : entry list

val find : string -> entry option

val run_all : ?quick:bool -> unit -> (entry * Sched_stats.Table.t list) list
(** Runs every experiment (quick defaults to false) and returns the
    tables. *)
