(** E7 ("Table 5"): numeric verification of the [(lambda, mu)]-smoothness
    machinery behind Theorem 3 — the empirically required [lambda] at
    [mu = (alpha-1)/alpha] tracks [Theta(alpha^(alpha-1))], for polynomial
    and beyond-convex power functions. *)

val run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list
