open Sched_stats
open Sched_model

let run ~obs:_ ~quick =
  let n = if quick then 20_000 else 120_000 in
  let table =
    Table.create ~title:"E13: M/G/1 validation (FIFO, single machine, Poisson arrivals)"
      ~columns:[ "service"; "rho"; "theory"; "simulated"; "rel-err%"; "ok" ]
  in
  let cases =
    [
      ("uniform(1,10)", Dist.uniform ~lo:1. ~hi:10., Queueing.moments_uniform ~lo:1. ~hi:10.);
      ("exp(4)", Dist.exponential ~mean:4., Queueing.moments_exponential ~mean:4.);
      ( "bimodal(1,20,0.1)",
        Dist.bimodal ~lo:1. ~hi:20. ~p_hi:0.1,
        Queueing.moments_bimodal ~lo:1. ~hi:20. ~p_hi:0.1 );
    ]
  in
  let rhos = if quick then [ 0.5; 0.8 ] else [ 0.3; 0.5; 0.7; 0.85 ] in
  List.iter
    (fun (name, dist, (es, es2)) ->
      List.iter
        (fun rho ->
          let lambda = rho /. es in
          let theory = Queueing.mg1_mean_flow ~lambda ~es ~es2 in
          let gen =
            Sched_workload.Gen.make ~name ~arrivals:(Sched_workload.Gen.Poisson lambda)
              ~sizes:dist ~n ~m:1 ()
          in
          let simulated =
            Exp_util.mean
              (Exp_util.per_seed ~quick (fun seed ->
                   let inst = Sched_workload.Gen.instance gen ~seed in
                   let s =
                     Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.fifo inst
                   in
                   let f = Metrics.flow s in
                   f.Metrics.total /. float_of_int n))
          in
          let rel_err = Float.abs (simulated -. theory) /. theory in
          (* Transient bias and finite-run noise grow with rho; 1500-job
             truncation effects dominate at rho = 0.85. *)
          let tolerance = if rho > 0.8 then 0.15 else 0.06 in
          Table.add_row table
            [
              name;
              Table.cell_float rho;
              Table.cell_float theory;
              Table.cell_float simulated;
              Table.cell_float (100. *. rel_err);
              Table.cell_bool (rel_err <= tolerance);
            ])
        rhos)
    cases;
  [ table ]
