(** E8 ("Table 6"): ablation of the Theorem 1 algorithm's design choices —
    each rejection rule on/off and the dual-fitting dispatch versus a naive
    greedy-load dispatch — plus the non-rejecting baselines. *)

val run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list
