(** E2 ("Figure 1"): Lemma 1 — the paper's adversary forces every
    immediate-rejection policy to a ratio growing with [sqrt Delta], while
    the paper's deferred-rejection algorithm stays constant.

    One row per instance scale [L] ([Delta = L^2]); series (columns) are
    immediate-rejection representatives and the Theorem 1 algorithm. *)

val run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list
