(** The policy registry: every shipped scheduling policy packaged as a
    plain [Instance.t -> Schedule.t] runner, with its validation mode and —
    where one exists — its scan-based seed-reference mirror.

    The registry powers the cross-cutting test layers: the validator suite
    runs every entry over a shared workload set, and the differential suite
    checks each optimized entry against its [reference]. *)

open Sched_model
open Sched_sim

type stream_session = {
  ss_feed : Job.t -> unit;
  ss_drain_until : Time.t -> unit;
  ss_next_key : unit -> Time.t;
  ss_fed : unit -> int;
  ss_live : unit -> Driver.live_metrics;
  ss_close : unit -> Schedule.t option * Driver.live_metrics;
  ss_freeze : unit -> string;
  ss_trace : unit -> Trace.t option;
}
(** A live {!Sched_sim.Driver.Session} with the policy-state type
    erased: plain closures over one session, for policy-generic callers
    (the serve loop, the stream differential suite, the fuzzer).  Field
    semantics are exactly the Session operations of the same names;
    [ss_close] drops the policy state and returns the live-metrics
    snapshot alongside the (retirement-dependent) schedule. *)

type entry = {
  name : string;
  allow_restarts : bool;
      (** Whether schedules need the validator's [allow_restarts]
          relaxation (the policy kills and re-runs jobs). *)
  run : Instance.t -> Schedule.t;
  run_live : Instance.t -> Schedule.t * Driver.live_metrics;
      (** [run] also returning the driver's incremental metrics. *)
  run_impl :
    ?recorder:Sched_obs.Recorder.t ->
    impl:Driver.impl ->
    check:bool ->
    Instance.t ->
    Schedule.t * Driver.live_metrics;
      (** [run_live] with the driver core pinned explicitly, the oracle
          audit togglable and an optional flight recorder attached — the
          hook the flat-vs-boxed differential suite drives every entry
          through, and the replay path forensics capture rides on. *)
  run_sharded :
    ?recorder:Sched_obs.Recorder.t ->
    ?pool:Sched_stats.Pool.t ->
    check:bool ->
    shards:int ->
    Instance.t ->
    Schedule.t * Driver.live_metrics;
      (** {!Sched_sim.Driver.run_sharded} with the entry's two-phase
          hooks wired in where the policy exports them (the flow/greedy
          families); entries without hooks still run sharded, with
          [on_arrival] evaluated sequentially in phase 2.  Bit-identical
          to [run_impl ~impl:Flat] at every shard count — the shard
          differential suite pins S in [{1,2,4}]. *)
  open_stream :
    ?trace:Trace.t ->
    ?obs:Sched_obs.Obs.t ->
    ?recorder:Sched_obs.Recorder.t ->
    ?check:bool ->
    ?retire:bool ->
    ?name:string ->
    machines:Machine.t array ->
    unit ->
    stream_session;
      (** A fresh incremental session over the fleet under this entry's
          policy — the engine behind [rejsched serve].  Options are
          {!Sched_sim.Driver.Session.open_session}'s. *)
  restore_stream : ?obs:Sched_obs.Obs.t -> string -> stream_session;
      (** Rebuilds a session from a {!Sched_sim.Driver.Session.freeze}
          payload (the caller unwraps the {!Sched_sim.Snapshot} container
          and routes by its policy name first).  Raises
          [Invalid_argument] on a payload frozen under another policy. *)
  reference : (Instance.t -> Schedule.t) option;
      (** The {!Sched_baselines.Seed_reference} mirror: same decisions via
          linear scans; must produce the identical schedule. *)
  budget : Sched_check.Oracle.budget option;
      (** The rejection budget the policy's theorem guarantees at this
          [eps] ([Count_fraction 0.] for policies that never reject;
          [None] for heuristics with no bound, e.g. threshold-based
          immediate rejection).  The oracle and fuzzer enforce it on every
          audited run. *)
}

val eps : float
(** The rejection parameter every registry entry is instantiated with. *)

val all : entry list
val find : string -> entry option