(** The policy registry: every shipped scheduling policy packaged as a
    plain [Instance.t -> Schedule.t] runner, with its validation mode and —
    where one exists — its scan-based seed-reference mirror.

    The registry powers the cross-cutting test layers: the validator suite
    runs every entry over a shared workload set, and the differential suite
    checks each optimized entry against its [reference]. *)

open Sched_model
open Sched_sim

type entry = {
  name : string;
  allow_restarts : bool;
      (** Whether schedules need the validator's [allow_restarts]
          relaxation (the policy kills and re-runs jobs). *)
  run : Instance.t -> Schedule.t;
  run_live : Instance.t -> Schedule.t * Driver.live_metrics;
      (** [run] also returning the driver's incremental metrics. *)
  run_impl :
    ?recorder:Sched_obs.Recorder.t ->
    impl:Driver.impl ->
    check:bool ->
    Instance.t ->
    Schedule.t * Driver.live_metrics;
      (** [run_live] with the driver core pinned explicitly, the oracle
          audit togglable and an optional flight recorder attached — the
          hook the flat-vs-boxed differential suite drives every entry
          through, and the replay path forensics capture rides on. *)
  run_sharded :
    ?recorder:Sched_obs.Recorder.t ->
    ?pool:Sched_stats.Pool.t ->
    check:bool ->
    shards:int ->
    Instance.t ->
    Schedule.t * Driver.live_metrics;
      (** {!Sched_sim.Driver.run_sharded} with the entry's two-phase
          hooks wired in where the policy exports them (the flow/greedy
          families); entries without hooks still run sharded, with
          [on_arrival] evaluated sequentially in phase 2.  Bit-identical
          to [run_impl ~impl:Flat] at every shard count — the shard
          differential suite pins S in [{1,2,4}]. *)
  reference : (Instance.t -> Schedule.t) option;
      (** The {!Sched_baselines.Seed_reference} mirror: same decisions via
          linear scans; must produce the identical schedule. *)
  budget : Sched_check.Oracle.budget option;
      (** The rejection budget the policy's theorem guarantees at this
          [eps] ([Count_fraction 0.] for policies that never reject;
          [None] for heuristics with no bound, e.g. threshold-based
          immediate rejection).  The oracle and fuzzer enforce it on every
          audited run. *)
}

val eps : float
(** The rejection parameter every registry entry is instantiated with. *)

val all : entry list
val find : string -> entry option