(** Shared plumbing for the experiment suite. *)

open Sched_model
open Sched_sim

val seeds : quick:bool -> int list
(** Five seeds normally, two in quick mode. *)

val per_seed : quick:bool -> (int -> 'a) -> 'a list
(** [per_seed ~quick f] evaluates [f] on every seed, in parallel on the
    ambient domain pool ({!Sched_stats.Parallel} over
    {!Sched_stats.Pool.ambient} — under [Registry.run_all] that is the
    pool already running the experiment, so nothing oversubscribes);
    results come back in seed order, so tables are identical to
    sequential runs. *)

val per_seed_obs :
  ?obs:Sched_obs.Obs.t -> quick:bool -> (obs:Sched_obs.Obs.t option -> int -> 'a) -> 'a list
(** Like {!per_seed}, threading telemetry: [f] receives a fresh
    counters-only shard handle per seed (or [None] when [obs] is
    [None]), and the shard registries are merged into [obs] in seed
    order after the join — deterministic regardless of how the seeds
    were scheduled across domains. *)

val scale : quick:bool -> int -> int
(** Shrinks instance sizes in quick mode (divides by 3, min 20). *)

val mean : float list -> float

val run_policy : ?obs:Sched_obs.Obs.t -> 'a Driver.policy -> Instance.t -> Schedule.t
(** Runs and validates (deadlines not enforced — flow instances may carry
    none).  [?obs] as in {!Sched_sim.Driver.run}. *)

type flow_measurement = {
  completed_flow : float;
  total_flow : float;  (** Rejected jobs' (release -> rejection) included. *)
  rejected_fraction : float;
  rejected_weight_fraction : float;
  max_flow : float;
}

val measure_flow : Schedule.t -> flow_measurement

val flow_ratio : Schedule.t -> lb:float -> float
(** [total_flow / lb]. *)

val eps_grid : float list
(** The [eps] values experiments sweep: [0.1; 0.2; 1/3; 0.5]. *)
