(** E6 ("Table 4"): empirical verification of the dual-fitting analysis
    (Lemma 4 and the Theorem 1 proof): dual feasibility, the
    [beta]-integral identity, primal-over-dual against [((1+eps)/eps)^2],
    and weak duality against the LP value on small instances. *)

val run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list
