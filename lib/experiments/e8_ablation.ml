open Sched_stats
module FR = Rejection.Flow_reject

let eps = 0.25

let run ~obs:_ ~quick =
  let n = Exp_util.scale ~quick 150 and m = 4 in
  let workloads =
    if quick then [ Sched_workload.Suite.flow_bimodal ~n ~m ]
    else
      [
        Sched_workload.Suite.flow_uniform ~n ~m;
        Sched_workload.Suite.flow_pareto ~n ~m;
        Sched_workload.Suite.flow_bimodal ~n ~m;
      ]
  in
  let table =
    Table.create ~title:"E8: ablation of Theorem 1 (mean ratio vs volume LB)"
      ~columns:[ "workload"; "variant"; "ratio"; "max-flow"; "rej%" ]
  in
  let cfgs =
    [
      ("both rules", Some (FR.config ~eps ()));
      ("rule1 only", Some (FR.config ~eps ~rule2:false ()));
      ("rule2 only", Some (FR.config ~eps ~rule1:false ()));
      ("no rejection", Some (FR.config ~eps ~rule1:false ~rule2:false ()));
      ("greedy dispatch", Some (FR.config ~eps ~dispatch:FR.Greedy_load ()));
      ("baseline fifo", None);
    ]
  in
  List.iter
    (fun gen ->
      List.iter
        (fun (label, cfg) ->
          let ratios = ref [] and rejs = ref [] and maxf = ref [] in
          List.iter
            (fun seed ->
              let inst = Sched_workload.Gen.instance gen ~seed in
              let schedule =
                match cfg with
                | Some cfg -> Exp_util.run_policy (FR.policy cfg) inst
                | None -> Exp_util.run_policy Sched_baselines.Greedy_dispatch.fifo inst
              in
              let lb = (Sched_baselines.Lower_bounds.volume inst).Sched_baselines.Lower_bounds.value in
              let msr = Exp_util.measure_flow schedule in
              ratios := (msr.Exp_util.total_flow /. lb) :: !ratios;
              rejs := msr.Exp_util.rejected_fraction :: !rejs;
              maxf := msr.Exp_util.max_flow :: !maxf)
            (Exp_util.seeds ~quick);
          Table.add_row table
            [
              gen.Sched_workload.Gen.name;
              label;
              Table.cell_float (Exp_util.mean !ratios);
              Table.cell_float (Exp_util.mean !maxf);
              Table.cell_float (100. *. Exp_util.mean !rejs);
            ])
        cfgs)
    workloads;
  [ table ]
