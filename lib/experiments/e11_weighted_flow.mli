(** E11 (extension, "Table 8"): weighted total flow-time with rejections.

    The paper leaves weighted flow-time open (without rejection it has an
    Omega(n) lower bound); this experiment evaluates the natural weighted
    transplant of its machinery ({!Rejection.Flow_reject_weighted}) against
    the non-rejecting highest-density-first greedy and the unweighted
    Theorem 1 algorithm, and checks the [2 eps] weight budget the charging
    argument still gives. *)

val run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list
