open Sched_stats
open Sched_model
module FR = Rejection.Flow_reject

let run ~obs:_ ~quick =
  let n = Exp_util.scale ~quick 300 and m = 4 in
  let eps = 0.2 in
  let table =
    Table.create ~title:"E12: tail flow-time (completed jobs; mean over seeds)"
      ~columns:[ "workload"; "policy"; "p50"; "p90"; "p99"; "max"; "rej%" ]
  in
  (* A near-saturation elephant workload, where tail effects dominate. *)
  let elephant =
    Sched_workload.Gen.make ~name:"elephant-storm"
      ~arrivals:(Sched_workload.Gen.Batched { every = 8.; size = 3 * m })
      ~sizes:(Dist.bimodal ~lo:1. ~hi:60. ~p_hi:0.12)
      ~shape:Sched_workload.Shape.identical ~n ~m ()
  in
  let workloads =
    if quick then [ elephant ]
    else
      [
        elephant;
        Sched_workload.Suite.flow_pareto ~n ~m;
        Sched_workload.Suite.flow_diurnal ~n ~m;
      ]
  in
  let policies =
    [
      ("thm1-reject", fun inst -> Exp_util.run_policy (FR.policy (FR.config ~eps ())) inst);
      ("greedy-spt", fun inst -> Exp_util.run_policy Sched_baselines.Greedy_dispatch.spt inst);
      ("greedy-fifo", fun inst -> Exp_util.run_policy Sched_baselines.Greedy_dispatch.fifo inst);
      ( "immediate",
        fun inst ->
          Exp_util.run_policy
            (Sched_baselines.Immediate_reject.policy ~eps
               (Sched_baselines.Immediate_reject.Largest_over 2.))
            inst );
    ]
  in
  List.iter
    (fun gen ->
      List.iter
        (fun (name, runner) ->
          let stats =
            Exp_util.per_seed ~quick (fun seed ->
                let inst = Sched_workload.Gen.instance gen ~seed in
                let s = runner inst in
                let values = Metrics.flow_values s in
                let summary = Summary.of_array values in
                ( summary.Summary.p50,
                  summary.Summary.p90,
                  summary.Summary.p99,
                  summary.Summary.max,
                  (Metrics.rejection s).Metrics.fraction ))
          in
          let mean f = Exp_util.mean (List.map f stats) in
          Table.add_row table
            [
              gen.Sched_workload.Gen.name;
              name;
              Table.cell_float (mean (fun (a, _, _, _, _) -> a));
              Table.cell_float (mean (fun (_, a, _, _, _) -> a));
              Table.cell_float (mean (fun (_, _, a, _, _) -> a));
              Table.cell_float (mean (fun (_, _, _, a, _) -> a));
              Table.cell_float (100. *. mean (fun (_, _, _, _, a) -> a));
            ])
        policies)
    workloads;
  [ table ]
