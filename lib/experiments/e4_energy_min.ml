open Sched_stats
module EG = Rejection.Energy_config_greedy

let main_table ~quick =
  let n = Exp_util.scale ~quick 40 in
  let table =
    Table.create ~title:"E4a: Theorem 3 greedy vs lower bounds"
      ~columns:
        [ "m"; "n"; "alpha"; "greedy"; "LB"; "LB-src"; "ratio"; "bound"; "ok"; "avr(m=1)"; "oa(m=1)" ]
  in
  (* The (m=2, n=12) rows use the exact assignment+YDS lower bound, which
     is far tighter than the per-job convexity bound available at n=40. *)
  let cases =
    if quick then [ (1, 3., n); (2, 3., 12) ]
    else [ (1, 2., n); (1, 3., n); (2, 2., n); (2, 3., n); (2, 2., 12); (2, 3., 12) ]
  in
  List.iter
    (fun (m, alpha, n) ->
      List.iter
        (fun alpha ->
          let gen = Sched_workload.Suite.deadline_energy ~n ~m ~alpha in
          let energies = ref [] and lbs = ref [] and avrs = ref [] and oas = ref [] in
          let src = ref "" in
          List.iter
            (fun seed ->
              let inst = Sched_workload.Gen.instance gen ~seed in
              let result = EG.run inst in
              Sched_model.Schedule.assert_valid ~allow_parallel:true
                result.EG.schedule;
              let lb, s = Sched_energy.Energy_bounds.best_deadline_energy inst in
              src := s;
              energies := result.EG.energy :: !energies;
              lbs := lb :: !lbs;
              if m = 1 then begin
                let jobs = Sched_energy.Yds.of_instance inst ~machine:0 in
                avrs := Sched_energy.Avr.energy ~alpha jobs :: !avrs;
                oas := Sched_energy.Oa.energy ~alpha jobs :: !oas
              end)
            (Exp_util.seeds ~quick);
          let energy = Exp_util.mean !energies and lb = Exp_util.mean !lbs in
          let ratio = energy /. lb in
          let bound = Rejection.Bounds.energy_competitive ~alpha in
          Table.add_row table
            [
              Table.cell_int m;
              Table.cell_int n;
              Table.cell_float alpha;
              Table.cell_float energy;
              Table.cell_float lb;
              !src;
              Table.cell_float ratio;
              Table.cell_float bound;
              Table.cell_bool (ratio <= bound +. 1e-9);
              (if m = 1 then Table.cell_float (Exp_util.mean !avrs) else "-");
              (if m = 1 then Table.cell_float (Exp_util.mean !oas) else "-");
            ])
        [ alpha ])
    cases;
  table

(* Discretization ablation: restrict the greedy to a geometric speed grid
   of k speeds and measure the energy inflation vs the grid-free greedy —
   quantifies the "lose only a factor (1+eps)" discretization remark of the
   paper's Section 4. *)
let grid_table ~quick =
  let n = Exp_util.scale ~quick 30 in
  let alpha = 3. in
  let table =
    Table.create ~title:"E4c: speed-grid discretization ablation (energy vs grid-free greedy)"
      ~columns:[ "grid"; "energy"; "vs grid-free"; "yds-LB" ]
  in
  let gen = Sched_workload.Suite.deadline_energy ~n ~m:1 ~alpha in
  let seeds = Exp_util.seeds ~quick in
  let free = ref [] and lbs = ref [] in
  List.iter
    (fun seed ->
      let inst = Sched_workload.Gen.instance gen ~seed in
      free := (EG.run inst).EG.energy :: !free;
      lbs := fst (Sched_energy.Energy_bounds.best_deadline_energy inst) :: !lbs)
    seeds;
  let free_energy = Exp_util.mean !free in
  Table.add_row table
    [ "all durations"; Table.cell_float free_energy; "1.000"; Table.cell_float (Exp_util.mean !lbs) ];
  List.iter
    (fun k ->
      (* Geometric grid from 1/8 to 8 with k points. *)
      let speeds =
        Array.init k (fun i ->
            0.125 *. (64. ** (float_of_int i /. float_of_int (max 1 (k - 1)))))
      in
      let energies = ref [] in
      List.iter
        (fun seed ->
          let inst = Sched_workload.Gen.instance gen ~seed in
          energies := (EG.run ~speeds inst).EG.energy :: !energies)
        seeds;
      let energy = Exp_util.mean !energies in
      Table.add_row table
        [
          Printf.sprintf "%d speeds" k;
          Table.cell_float energy;
          Table.cell_float (energy /. free_energy);
          "-";
        ])
    (if quick then [ 4 ] else [ 2; 4; 8; 16 ]);
  table

let laxity_table ~quick =
  let n = Exp_util.scale ~quick 30 in
  let table =
    Table.create ~title:"E4b: laxity sweep (tight deadlines force high speeds)"
      ~columns:[ "max-slots"; "greedy"; "yds-LB"; "ratio"; "bound" ]
  in
  let alpha = 3. in
  List.iter
    (fun max_slots ->
      let gen =
        Sched_workload.Gen.make ~name:"laxity"
          ~arrivals:(Sched_workload.Gen.Poisson 0.5)
          ~sizes:(Sched_stats.Dist.uniform ~lo:1. ~hi:4.)
          ~deadlines:(Sched_workload.Gen.Slot_laxity { min_slots = 2; max_slots })
          ~alpha ~n ~m:1 ()
      in
      let energies = ref [] and lbs = ref [] in
      List.iter
        (fun seed ->
          let inst = Sched_workload.Gen.instance gen ~seed in
          let result = EG.run inst in
          let lb, _ = Sched_energy.Energy_bounds.best_deadline_energy inst in
          energies := result.EG.energy :: !energies;
          lbs := lb :: !lbs)
        (Exp_util.seeds ~quick);
      let energy = Exp_util.mean !energies and lb = Exp_util.mean !lbs in
      Table.add_row table
        [
          Table.cell_int max_slots;
          Table.cell_float energy;
          Table.cell_float lb;
          Table.cell_float (energy /. lb);
          Table.cell_float (Rejection.Bounds.energy_competitive ~alpha);
        ])
    (if quick then [ 4; 16 ] else [ 3; 4; 8; 16; 32 ]);
  table

let run ~obs:_ ~quick = [ main_table ~quick; laxity_table ~quick; grid_table ~quick ]
