type entry = {
  id : string;
  title : string;
  reproduces : string;
  run : quick:bool -> Sched_stats.Table.t list;
}

let all =
  [
    {
      id = "e1";
      title = "Flow-time competitiveness and rejection budget";
      reproduces = "Theorem 1";
      run = E1_flow_competitive.run;
    };
    {
      id = "e2";
      title = "Immediate-rejection lower bound (adversary)";
      reproduces = "Lemma 1";
      run = E2_immediate_lb.run;
    };
    {
      id = "e3";
      title = "Weighted flow-time plus energy";
      reproduces = "Theorem 2";
      run = E3_flow_energy.run;
    };
    {
      id = "e4";
      title = "Energy minimization with deadlines";
      reproduces = "Theorem 3";
      run = E4_energy_min.run;
    };
    {
      id = "e5";
      title = "Energy lower-bound adversary";
      reproduces = "Lemma 2";
      run = E5_energy_adversary.run;
    };
    {
      id = "e6";
      title = "Dual-fitting certificate";
      reproduces = "Lemma 4 / Theorem 1 analysis";
      run = E6_dual_certificate.run;
    };
    {
      id = "e7";
      title = "Smoothness of power functions";
      reproduces = "Definition 1 / Theorem 3 analysis";
      run = E7_smoothness.run;
    };
    {
      id = "e8";
      title = "Ablation of the Theorem 1 algorithm";
      reproduces = "Design choices (Section 2)";
      run = E8_ablation.run;
    };
    {
      id = "e9";
      title = "Rejection vs speed augmentation";
      reproduces = "Comparison with [5] (Section 1.1)";
      run = E9_speed_vs_reject.run;
    };
    {
      id = "e11";
      title = "Weighted flow-time extension";
      reproduces = "Extension (open problem noted in Section 1.2)";
      run = E11_weighted_flow.run;
    };
    {
      id = "e12";
      title = "Tail flow-time";
      reproduces = "Extension (motivation of Section 1 / related work [6])";
      run = E12_tail_latency.run;
    };
    {
      id = "e13";
      title = "M/G/1 simulator validation";
      reproduces = "Methodology (Pollaczek-Khinchine cross-check)";
      run = E13_mg1_validation.run;
    };
    {
      id = "e14";
      title = "Restart relaxation vs rejection";
      reproduces = "Extension (conclusion: other relaxations)";
      run = E14_restarts.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_all ?(quick = false) () = List.map (fun e -> (e, e.run ~quick)) all
