type entry = {
  id : string;
  title : string;
  reproduces : string;
  run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list;
}

let all =
  [
    {
      id = "e1";
      title = "Flow-time competitiveness and rejection budget";
      reproduces = "Theorem 1";
      run = E1_flow_competitive.run;
    };
    {
      id = "e2";
      title = "Immediate-rejection lower bound (adversary)";
      reproduces = "Lemma 1";
      run = E2_immediate_lb.run;
    };
    {
      id = "e3";
      title = "Weighted flow-time plus energy";
      reproduces = "Theorem 2";
      run = E3_flow_energy.run;
    };
    {
      id = "e4";
      title = "Energy minimization with deadlines";
      reproduces = "Theorem 3";
      run = E4_energy_min.run;
    };
    {
      id = "e5";
      title = "Energy lower-bound adversary";
      reproduces = "Lemma 2";
      run = E5_energy_adversary.run;
    };
    {
      id = "e6";
      title = "Dual-fitting certificate";
      reproduces = "Lemma 4 / Theorem 1 analysis";
      run = E6_dual_certificate.run;
    };
    {
      id = "e7";
      title = "Smoothness of power functions";
      reproduces = "Definition 1 / Theorem 3 analysis";
      run = E7_smoothness.run;
    };
    {
      id = "e8";
      title = "Ablation of the Theorem 1 algorithm";
      reproduces = "Design choices (Section 2)";
      run = E8_ablation.run;
    };
    {
      id = "e9";
      title = "Rejection vs speed augmentation";
      reproduces = "Comparison with [5] (Section 1.1)";
      run = E9_speed_vs_reject.run;
    };
    {
      id = "e11";
      title = "Weighted flow-time extension";
      reproduces = "Extension (open problem noted in Section 1.2)";
      run = E11_weighted_flow.run;
    };
    {
      id = "e12";
      title = "Tail flow-time";
      reproduces = "Extension (motivation of Section 1 / related work [6])";
      run = E12_tail_latency.run;
    };
    {
      id = "e13";
      title = "M/G/1 simulator validation";
      reproduces = "Methodology (Pollaczek-Khinchine cross-check)";
      run = E13_mg1_validation.run;
    };
    {
      id = "e14";
      title = "Restart relaxation vs rejection";
      reproduces = "Extension (conclusion: other relaxations)";
      run = E14_restarts.run;
    };
    {
      id = "e15";
      title = "Cluster-scale sharded simulation";
      reproduces = "Methodology (sharded driver S-unobservability at scale)";
      run = E15_cluster_scale.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

(* Structural counters: cheap, input-determined facts about the run that
   any domain count must reproduce exactly — the differential tests
   compare exports across sequential and pooled runs. *)
let record_structure shard e tables =
  let registry = Sched_obs.Obs.registry shard in
  let labels = [ ("experiment", e.id) ] in
  let tables_c =
    Sched_obs.Registry.counter registry ~help:"Tables produced per experiment" ~labels
      "exp_tables_total"
  in
  Sched_obs.Metric.Counter.add tables_c (float_of_int (List.length tables));
  let rows =
    List.fold_left (fun acc t -> acc + List.length (Sched_stats.Table.rows t)) 0 tables
  in
  let rows_c =
    Sched_obs.Registry.counter registry ~help:"Table rows produced per experiment" ~labels
      "exp_rows_total"
  in
  Sched_obs.Metric.Counter.add rows_c (float_of_int rows)

(* One experiment = one pool task; seed replication inside an experiment
   then submits to the same pool through the ambient mechanism
   (Exp_util.per_seed), so the whole suite shares one fixed set of
   domains.  Each task records telemetry into its own shard registry and
   the shards merge into [obs] in registry order after the join, making
   the export a pure function of the inputs — byte-identical for every
   domain count, sequential included. *)
let run_all ?(quick = false) ?obs ?pool ?only () =
  let entries =
    match only with None -> all | Some ids -> List.filter (fun e -> List.mem e.id ids) all
  in
  let run_one e =
    match obs with
    | None -> (e, e.run ~obs:None ~quick, None)
    | Some _ ->
        let registry = Sched_obs.Registry.create () in
        let shard = Sched_obs.Obs.create ~registry () in
        let tables = e.run ~obs:(Some shard) ~quick in
        record_structure shard e tables;
        (e, tables, Some registry)
  in
  let results =
    match pool with
    | None -> List.map run_one entries
    | Some pool -> Sched_stats.Pool.parallel_map_list ~chunk_size:1 pool run_one entries
  in
  Option.iter
    (fun o ->
      List.iter
        (fun (_, _, shard) ->
          Option.iter (fun r -> Sched_obs.Registry.merge ~into:(Sched_obs.Obs.registry o) r) shard)
        results)
    obs;
  List.map (fun (e, tables, _) -> (e, tables)) results
