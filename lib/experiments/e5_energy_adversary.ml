open Sched_stats
module AE = Sched_workload.Adversary_energy
module EG = Rejection.Energy_config_greedy

let run ~obs:_ ~quick =
  let alphas = if quick then [ 2.; 3.; 4. ] else [ 2.; 3.; 4.; 5.; 6.; 7.; 8. ] in
  let table =
    Table.create
      ~title:"E5: Lemma 2 adaptive adversary vs greedy (single machine, continuous)"
      ~columns:
        [ "alpha"; "rounds"; "alg-energy"; "adv-energy"; "ratio"; "(a/9)^a"; "a^a"; "in-band" ]
  in
  List.iter
    (fun alpha ->
      let st = EG.continuous ~alpha () in
      let alg =
        {
          AE.name = "config-greedy";
          place =
            (fun ~release ~deadline ~volume ->
              EG.continuous_place st ~release ~deadline ~volume);
        }
      in
      let r = AE.run ~alpha alg in
      let ratio = r.AE.alg_energy /. r.AE.adv_energy in
      let lb = Rejection.Bounds.energy_lb ~alpha in
      let ub = Rejection.Bounds.energy_competitive ~alpha in
      Table.add_row table
        [
          Table.cell_float alpha;
          Table.cell_int r.AE.rounds;
          Table.cell_float r.AE.alg_energy;
          Table.cell_float r.AE.adv_energy;
          Table.cell_float ratio;
          Table.cell_float lb;
          Table.cell_float ub;
          (* The adversary's cost is an upper bound on its energy, so the
             measured ratio may undershoot (alpha/9)^alpha slightly for
             small alpha; the claim checked is ratio <= alpha^alpha and
             super-polynomial growth. *)
          Table.cell_bool (ratio <= ub +. 1e-6);
        ])
    alphas;
  [ table ]
