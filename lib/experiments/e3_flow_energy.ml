open Sched_stats
open Sched_model
module FE = Rejection.Flow_energy_reject

let run ~obs:_ ~quick =
  let n = Exp_util.scale ~quick 100 and m = 3 in
  let alphas = if quick then [ 2.; 3. ] else [ 1.8; 2.; 2.5; 3. ] in
  let epss = if quick then [ 0.25 ] else [ 0.1; 0.25; 0.5 ] in
  let table =
    Table.create ~title:"E3: Theorem 2 weighted flow+energy (ratio vs per-job LB)"
      ~columns:
        [ "alpha"; "eps"; "wflow"; "energy"; "ratio"; "rejw%"; "budget%"; "bound"; "ok" ]
  in
  List.iter
    (fun alpha ->
      let gen = Sched_workload.Suite.weighted_energy ~n ~m ~alpha in
      List.iter
        (fun eps ->
          let ratios = ref [] and rejws = ref [] and wflows = ref [] and energies = ref [] in
          List.iter
            (fun seed ->
              let inst = Sched_workload.Gen.instance gen ~seed in
              let schedule, _ = FE.run (FE.config ~eps ()) inst in
              Schedule.assert_valid ~check_deadlines:false schedule;
              let f = Metrics.flow schedule in
              let e = Metrics.energy schedule in
              let lb = Sched_energy.Energy_bounds.flow_energy_lb inst in
              (* Objective including the weighted flow of rejected jobs up
                 to their rejection, as in the paper's accounting. *)
              let obj = f.Metrics.weighted_with_rejected +. e in
              ratios := (obj /. lb) :: !ratios;
              rejws := (Metrics.rejection schedule).Metrics.weight_fraction :: !rejws;
              wflows := f.Metrics.weighted :: !wflows;
              energies := e :: !energies)
            (Exp_util.seeds ~quick);
          let ratio = Exp_util.mean !ratios and rejw = Exp_util.mean !rejws in
          let bound = Rejection.Bounds.flow_energy_competitive ~eps ~alpha in
          Table.add_row table
            [
              Table.cell_float alpha;
              Table.cell_float eps;
              Table.cell_float (Exp_util.mean !wflows);
              Table.cell_float (Exp_util.mean !energies);
              Table.cell_float ratio;
              Table.cell_float (100. *. rejw);
              Table.cell_float (100. *. eps);
              Table.cell_float bound;
              Table.cell_bool (ratio <= bound && rejw <= eps +. 1e-9);
            ])
        epss)
    alphas;
  [ table ]
