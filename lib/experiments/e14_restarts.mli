(** E14 (extension, "Table 11"): the restart relaxation vs rejection.

    The paper's conclusion asks which {e other} relaxations admit good
    non-preemptive schedulers.  Restarts (kill a running job and requeue
    it, losing its work) never drop jobs, so the comparison is: how much of
    rejection's benefit do restarts recover, and what fraction of machine
    work is wasted to get it?  Flow-times for the restart policy cover all
    jobs; the rejection policy's cover completed jobs (plus
    release-to-rejection for dropped ones). *)

val run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list
