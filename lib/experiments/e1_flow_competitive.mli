(** E1 ("Table 1"): Theorem 1 — competitive ratio and rejection budget of
    the flow-time algorithm.

    Two tables: (a) the six standard workloads x the [eps] grid, ratios
    against the volume lower bound; (b) tiny instances with the exact
    brute-force OPT and the LP bound, giving exact empirical competitive
    ratios.  Claims checked: ratio <= [2((1+eps)/eps)^2], rejected fraction
    <= [2 eps]. *)

val run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list
