open Sched_stats
open Sched_model
module FRW = Rejection.Flow_reject_weighted
module FR = Rejection.Flow_reject

(* Weighted volume bound: every job's weighted flow is at least
   w_j min_i p_ij. *)
let weighted_volume_lb inst =
  Array.fold_left
    (fun acc (j : Job.t) -> acc +. (j.Job.weight *. Job.min_size j))
    0.
    (Instance.jobs_by_release inst)

let run ~obs:_ ~quick =
  let n = Exp_util.scale ~quick 150 and m = 4 in
  let epss = if quick then [ 0.25 ] else [ 0.1; 0.25; 0.5 ] in
  let table =
    Table.create
      ~title:"E11: weighted flow-time extension (ratio vs weighted volume LB)"
      ~columns:
        [ "eps"; "policy"; "wflow"; "ratio"; "rejw%"; "budget%"; "budget-ok" ]
  in
  let gen =
    Sched_workload.Gen.make ~name:"weighted-pareto"
      ~sizes:(Dist.bounded_pareto ~shape:1.5 ~lo:1. ~hi:100.)
      ~weights:(Dist.bounded_pareto ~shape:1.8 ~lo:1. ~hi:20.)
      ~shape:(Sched_workload.Shape.unrelated ~spread:2.) ~n ~m ()
  in
  List.iter
    (fun eps ->
      let policies =
        [
          ( "weighted-reject",
            fun inst ->
              let s, _ = FRW.run (FRW.config ~eps ()) inst in
              s );
          ( "hdf-no-reject",
            fun inst ->
              let s, _ = FRW.run (FRW.config ~eps ~rule1:false ~rule2:false ()) inst in
              s );
          ( "thm1-unweighted",
            fun inst ->
              let s, _ = FR.run (FR.config ~eps ()) inst in
              s );
        ]
      in
      List.iter
        (fun (name, runner) ->
          let ratios = ref [] and rejws = ref [] and wflows = ref [] in
          List.iter
            (fun seed ->
              let inst = Sched_workload.Gen.instance gen ~seed in
              let s = runner inst in
              Schedule.assert_valid ~check_deadlines:false s;
              let f = Metrics.flow s in
              let lb = weighted_volume_lb inst in
              ratios := (f.Metrics.weighted_with_rejected /. lb) :: !ratios;
              rejws := (Metrics.rejection s).Metrics.weight_fraction :: !rejws;
              wflows := f.Metrics.weighted_with_rejected :: !wflows)
            (Exp_util.seeds ~quick);
          let rejw = Exp_util.mean !rejws in
          Table.add_row table
            [
              Table.cell_float eps;
              name;
              Table.cell_float (Exp_util.mean !wflows);
              Table.cell_float (Exp_util.mean !ratios);
              Table.cell_float (100. *. rejw);
              Table.cell_float (100. *. 2. *. eps);
              Table.cell_bool (rejw <= (2. *. eps) +. 1e-9);
            ])
        policies)
    epss;
  [ table ]
