(** E9 ("Table 7"): rejection alone versus speed augmentation plus
    rejection — the comparison motivating the paper against its
    predecessor [5] (ESA 2016).  The paper's algorithm uses unit-speed
    machines; the rendition of [5] runs at [(1+eps_s)] speed.  Both ratios
    are against the unit-speed volume lower bound. *)

val run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list
