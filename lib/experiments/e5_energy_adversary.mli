(** E5 ("Figure 2"): Lemma 2 — the adaptive adversary against the greedy,
    ratio growth in [alpha] between the [(alpha/9)^alpha] lower bound and
    the [alpha^alpha] upper bound. *)

val run : obs:Sched_obs.Obs.t option -> quick:bool -> Sched_stats.Table.t list
