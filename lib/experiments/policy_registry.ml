open Sched_model
open Sched_sim
module FR = Rejection.Flow_reject
module FRW = Rejection.Flow_reject_weighted
module FER = Rejection.Flow_energy_reject
module B = Sched_baselines

(* A live streaming session with the policy-state type hidden: the
   registry's callers (serve, the differential suites, the fuzzer) are
   policy-generic, so the existential is erased here, once, behind plain
   closures. *)
type stream_session = {
  ss_feed : Job.t -> unit;
  ss_drain_until : Time.t -> unit;
  ss_next_key : unit -> Time.t;
  ss_fed : unit -> int;
  ss_live : unit -> Driver.live_metrics;
  ss_close : unit -> Schedule.t option * Driver.live_metrics;
  ss_freeze : unit -> string;
  ss_trace : unit -> Trace.t option;
}

type entry = {
  name : string;
  allow_restarts : bool;
  run : Instance.t -> Schedule.t;
  run_live : Instance.t -> Schedule.t * Driver.live_metrics;
  run_impl :
    ?recorder:Sched_obs.Recorder.t ->
    impl:Driver.impl ->
    check:bool ->
    Instance.t ->
    Schedule.t * Driver.live_metrics;
  run_sharded :
    ?recorder:Sched_obs.Recorder.t ->
    ?pool:Sched_stats.Pool.t ->
    check:bool ->
    shards:int ->
    Instance.t ->
    Schedule.t * Driver.live_metrics;
  open_stream :
    ?trace:Trace.t ->
    ?obs:Sched_obs.Obs.t ->
    ?recorder:Sched_obs.Recorder.t ->
    ?check:bool ->
    ?retire:bool ->
    ?name:string ->
    machines:Machine.t array ->
    unit ->
    stream_session;
  restore_stream : ?obs:Sched_obs.Obs.t -> string -> stream_session;
  reference : (Instance.t -> Schedule.t) option;
  budget : Sched_check.Oracle.budget option;
}

let wrap_session s =
  {
    ss_feed = Driver.Session.feed s;
    ss_drain_until = Driver.Session.drain_until s;
    ss_next_key = (fun () -> Driver.Session.next_key s);
    ss_fed = (fun () -> Driver.Session.fed s);
    ss_live = (fun () -> Driver.Session.live_metrics s);
    ss_close = (fun () -> let sch, _, live = Driver.Session.close s in (sch, live));
    ss_freeze = (fun () -> Driver.Session.freeze s);
    ss_trace = (fun () -> Driver.Session.trace s);
  }

let pack ?reference ?budget ?(allow_restarts = false) ?hooks make_policy name =
  {
    name;
    allow_restarts;
    run = (fun instance -> Driver.run_schedule (make_policy ()) instance);
    run_live =
      (fun instance ->
        let s, _, live = Driver.run_live (make_policy ()) instance in
        (s, live));
    run_impl =
      (fun ?recorder ~impl ~check instance ->
        let s, _, live = Driver.run_live ?recorder ~check ~impl (make_policy ()) instance in
        (s, live));
    run_sharded =
      (fun ?recorder ?pool ~check ~shards instance ->
        let s, _, live =
          Driver.run_sharded ?recorder ~check ?hooks ?pool ~shards (make_policy ()) instance
        in
        (s, live));
    open_stream =
      (fun ?trace ?obs ?recorder ?check ?retire ?name ~machines () ->
        wrap_session
          (Driver.Session.open_session ?trace ?obs ?recorder ?check ?retire ?name ~machines
             (make_policy ())));
    restore_stream =
      (fun ?obs payload -> wrap_session (Driver.Session.thaw ?obs (make_policy ()) payload));
    reference =
      Option.map (fun mk instance -> Driver.run_schedule (mk ()) instance) reference;
    budget;
  }

(* A fixed eps for registry/differential purposes; the experiments sweep
   their own values. *)
let eps = 0.3

let no_rejection = Sched_check.Oracle.Count_fraction 0.

let all =
  [
    pack
      (fun () -> FR.policy (FR.config ~eps ()))
      ~reference:(fun () -> B.Seed_reference.flow_reject (FR.config ~eps ()))
      ~budget:(Sched_check.Oracle.Count_fraction (2. *. eps))
      ~hooks:FR.hooks "flow-reject";
    pack
      (fun () ->
        FR.policy (FR.config ~dispatch:FR.Greedy_load ~eps ()))
      ~reference:(fun () ->
        B.Seed_reference.flow_reject (FR.config ~dispatch:FR.Greedy_load ~eps ()))
      ~budget:(Sched_check.Oracle.Count_fraction (2. *. eps))
      ~hooks:FR.hooks "flow-reject-greedy";
    pack
      (fun () -> FRW.policy (FRW.config ~eps ()))
      ~reference:(fun () ->
        B.Seed_reference.flow_reject_weighted (FRW.config ~eps ()))
      ~budget:(Sched_check.Oracle.Weight_fraction (2. *. eps))
      ~hooks:FRW.hooks "flow-reject-weighted";
    pack
      (fun () -> FER.policy (FER.config ~eps ()))
      ~reference:(fun () ->
        B.Seed_reference.flow_energy_reject (FER.config ~eps ()))
      ~budget:(Sched_check.Oracle.Weight_fraction eps)
      ~hooks:FER.hooks "flow-energy-reject";
    pack
      (fun () -> B.Greedy_dispatch.fifo)
      ~reference:(fun () -> B.Seed_reference.greedy_fifo)
      ~budget:no_rejection ~hooks:B.Greedy_dispatch.hooks "greedy-fifo";
    pack
      (fun () -> B.Greedy_dispatch.spt)
      ~reference:(fun () -> B.Seed_reference.greedy_spt)
      ~budget:no_rejection ~hooks:B.Greedy_dispatch.hooks "greedy-spt";
    pack
      (fun () -> B.Immediate_reject.policy ~eps B.Immediate_reject.Never)
      ~reference:(fun () ->
        B.Seed_reference.immediate_reject ~eps B.Immediate_reject.Never)
      ~budget:no_rejection "immediate-never";
    pack
      (fun () ->
        B.Immediate_reject.policy ~eps
          (B.Immediate_reject.Largest_over 2.))
      ~reference:(fun () ->
        B.Seed_reference.immediate_reject ~eps
          (B.Immediate_reject.Largest_over 2.))
      "immediate-largest";
    pack
      (fun () ->
        B.Immediate_reject.policy ~eps
          (B.Immediate_reject.Load_threshold 3.))
      ~reference:(fun () ->
        B.Seed_reference.immediate_reject ~eps
          (B.Immediate_reject.Load_threshold 3.))
      "immediate-load";
    pack
      (fun () -> B.Restart_spt.policy (B.Restart_spt.config ()))
      ~reference:(fun () ->
        B.Seed_reference.restart_spt (B.Restart_spt.config ()))
      ~allow_restarts:true ~budget:no_rejection "restart-spt";
  ]

let find name = List.find_opt (fun e -> e.name = name) all