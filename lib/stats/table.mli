(** Aligned plain-text tables, the output format of every experiment.

    A table is a titled grid of string cells; rendering right-aligns numeric
    columns and left-aligns text, matching the look of tables in systems
    papers. *)

type t

val create : title:string -> columns:string list -> t
(** A fresh table with the given column headers. *)

val add_row : t -> string list -> unit
(** Appends a row; must have as many cells as there are columns. *)

val add_rows : t -> string list list -> unit

val title : t -> string
val columns : t -> string list
val rows : t -> string list list
(** Rows in insertion order. *)

val cell_float : float -> string
(** Standard numeric formatting for table cells ([%.4g], with infinities and
    NaN rendered readably). *)

val cell_int : int -> string
val cell_bool : bool -> string

val render : t -> string
(** Render with a title line, a header, separators and aligned columns. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val to_csv : t -> string
(** Comma-separated rendering (header row first), quoting cells that need
    it. *)
