type series = { label : string; points : (float * float) list }

let palette =
  [| "#0072B2"; "#E69F00"; "#009E73"; "#CC79A7"; "#56B4E9"; "#D55E00"; "#7570B3"; "#999999" |]

(* "Nice" ticks: 5-ish round values spanning [lo, hi]. *)
let linear_ticks lo hi =
  if hi <= lo then [ lo ]
  else begin
    let span = hi -. lo in
    let raw = span /. 5. in
    let mag = 10. ** Float.round (Float.log10 raw) in
    let step =
      List.find (fun s -> span /. s <= 8.) [ mag /. 2.; mag; 2. *. mag; 5. *. mag; 10. *. mag ]
    in
    let first = Float.ceil (lo /. step) *. step in
    let rec go acc t = if t > hi +. (step /. 2.) then List.rev acc else go (t :: acc) (t +. step) in
    go [] first
  end

let log_ticks lo hi =
  let k0 = int_of_float (Float.floor (Float.log10 lo)) in
  let k1 = int_of_float (Float.ceil (Float.log10 hi)) in
  List.init (max 1 (k1 - k0 + 1)) (fun i -> 10. ** float_of_int (k0 + i))

let fmt_tick v =
  if Float.abs v >= 1e4 || (Float.abs v < 1e-3 && v <> 0.) then Printf.sprintf "%.0e" v
  else Printf.sprintf "%g" v

let render ?(width = 640) ?(height = 400) ?(log_y = false) ~title ~x_label ~y_label series =
  if width < 160 || height < 120 then invalid_arg "Chart.render: too small";
  let series =
    if log_y then
      List.map (fun s -> { s with points = List.filter (fun (_, y) -> y > 0.) s.points }) series
    else series
  in
  let all = List.concat_map (fun s -> s.points) series in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"sans-serif\" font-size=\"12\">\n\
        <rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n"
       width height);
  if all = [] then
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\">(no data)</text>\n"
         (width / 2) (height / 2))
  else begin
    let ml = 64 and mr = 20 and mt = 34 and mb = 46 in
    let pw = float_of_int (width - ml - mr) and ph = float_of_int (height - mt - mb) in
    let xs = List.map fst all and ys = List.map snd all in
    let xmin = List.fold_left Float.min Float.infinity xs in
    let xmax = List.fold_left Float.max Float.neg_infinity xs in
    let ymin = List.fold_left Float.min Float.infinity ys in
    let ymax = List.fold_left Float.max Float.neg_infinity ys in
    let xmax = if xmax <= xmin then xmin +. 1. else xmax in
    let ymin, ymax =
      if log_y then (ymin, if ymax <= ymin then ymin *. 10. else ymax)
      else begin
        let pad = 0.05 *. Float.max 1e-9 (ymax -. ymin) in
        (ymin -. pad, if ymax <= ymin then ymin +. 1. else ymax +. pad)
      end
    in
    let xpos x = float_of_int ml +. ((x -. xmin) /. (xmax -. xmin) *. pw) in
    let ypos y =
      let frac =
        if log_y then (Float.log10 y -. Float.log10 ymin) /. (Float.log10 ymax -. Float.log10 ymin)
        else (y -. ymin) /. (ymax -. ymin)
      in
      float_of_int mt +. ((1. -. frac) *. ph)
    in
    (* Frame, title, labels. *)
    Buffer.add_string buf
      (Printf.sprintf
         "<rect x=\"%d\" y=\"%d\" width=\"%.0f\" height=\"%.0f\" fill=\"none\" stroke=\"#333\"/>\n"
         ml mt pw ph);
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"%d\" y=\"20\" font-size=\"14\" font-weight=\"bold\">%s</text>\n"
         ml title);
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\">%s</text>\n"
         (ml + ((width - ml - mr) / 2))
         (height - 10) x_label);
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"14\" y=\"%d\" text-anchor=\"middle\" transform=\"rotate(-90 14 %d)\">%s</text>\n"
         (mt + ((height - mt - mb) / 2))
         (mt + ((height - mt - mb) / 2))
         y_label);
    (* Ticks. *)
    List.iter
      (fun v ->
        let x = xpos v in
        Buffer.add_string buf
          (Printf.sprintf
             "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#333\"/>\n\
              <text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\">%s</text>\n"
             x
             (float_of_int mt +. ph)
             x
             (float_of_int mt +. ph +. 5.)
             x
             (float_of_int mt +. ph +. 18.)
             (fmt_tick v)))
      (linear_ticks xmin xmax);
    List.iter
      (fun v ->
        if v >= ymin && v <= ymax then begin
          let y = ypos v in
          Buffer.add_string buf
            (Printf.sprintf
               "<line x1=\"%d\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#ddd\"/>\n\
                <text x=\"%d\" y=\"%.1f\" text-anchor=\"end\">%s</text>\n"
               ml y
               (float_of_int ml +. pw)
               y (ml - 6) (y +. 4.) (fmt_tick v))
        end)
      (if log_y then log_ticks ymin ymax else linear_ticks ymin ymax);
    (* Series. *)
    List.iteri
      (fun k s ->
        let color = palette.(k mod Array.length palette) in
        let sorted =
          List.sort
            (fun (x1, y1) (x2, y2) ->
              match Float.compare x1 x2 with 0 -> Float.compare y1 y2 | c -> c)
            s.points
        in
        let path =
          String.concat " "
            (List.mapi
               (fun i (x, y) ->
                 Printf.sprintf "%s%.1f,%.1f" (if i = 0 then "M" else "L") (xpos x) (ypos y))
               sorted)
        in
        if List.length sorted > 1 then
          Buffer.add_string buf
            (Printf.sprintf "<path d=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\"/>\n"
               path color);
        List.iter
          (fun (x, y) ->
            Buffer.add_string buf
              (Printf.sprintf "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" fill=\"%s\"/>\n" (xpos x)
                 (ypos y) color))
          sorted;
        (* Legend. *)
        let ly = mt + 8 + (k * 16) in
        Buffer.add_string buf
          (Printf.sprintf
             "<rect x=\"%.1f\" y=\"%d\" width=\"10\" height=\"10\" fill=\"%s\"/>\n\
              <text x=\"%.1f\" y=\"%d\">%s</text>\n"
             (float_of_int ml +. pw -. 150.)
             ly color
             (float_of_int ml +. pw -. 135.)
             (ly + 9) s.label))
      series
  end;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let of_table ~x table =
  let headers = Table.columns table in
  let rows = Table.rows table in
  match List.find_index (fun h -> h = x) headers with
  | None -> []
  | Some xi ->
      let parse cell = float_of_string_opt (String.trim cell) in
      let xcol = List.map (fun row -> parse (List.nth row xi)) rows in
      if List.exists Option.is_none xcol then []
      else begin
        let xs = List.map Option.get xcol in
        List.filteri (fun i _ -> i <> xi) headers
        |> List.mapi (fun _ h ->
               let ci = Option.get (List.find_index (fun h' -> h' = h) headers) in
               let points =
                 List.filter_map
                   (fun (xv, row) ->
                     match parse (List.nth row ci) with Some y -> Some (xv, y) | None -> None)
                   (List.combine xs rows)
               in
               { label = h; points })
        |> List.filter (fun s -> s.points <> [])
      end

let save ~path text = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text)
