(** Probability distributions used by the workload generators.

    A distribution is a first-class sampler over positive floats together
    with a human-readable name (used in experiment tables) and, when known in
    closed form, its mean. *)

type t

val name : t -> string
(** Short identifier, e.g. ["pareto(1.5,1)"]. *)

val mean : t -> float option
(** Closed-form mean when finite and known. *)

val sample : t -> Rng.t -> float
(** Draw one value.  All distributions here produce strictly positive
    samples. *)

val constant : float -> t
(** Point mass at [v > 0]. *)

val uniform : lo:float -> hi:float -> t
(** Uniform on [[lo, hi]], [0 < lo <= hi]. *)

val exponential : mean:float -> t
(** Exponential with the given mean ([mean > 0]). *)

val pareto : shape:float -> scale:float -> t
(** Pareto with tail index [shape] and minimum [scale]; heavy-tailed for
    [shape <= 2]. *)

val bounded_pareto : shape:float -> lo:float -> hi:float -> t
(** Pareto truncated to [[lo, hi]] by inverse-CDF sampling; the standard
    heavy-tailed-but-bounded job-size model. *)

val bimodal : lo:float -> hi:float -> p_hi:float -> t
(** Mass [1 - p_hi] at [lo] and [p_hi] at [hi]: the "mice and elephants"
    workload. *)

val lognormal : mu:float -> sigma:float -> t
(** Log-normal with location [mu] and scale [sigma] of the underlying
    normal. *)

val choice : (float * t) list -> t
(** Finite mixture; weights must be positive and are normalized. *)

val scaled : float -> t -> t
(** [scaled c d] multiplies every sample of [d] by [c > 0]. *)

val quantize : grid:float -> t -> t
(** [quantize ~grid d] rounds samples up to the nearest positive multiple of
    [grid]; used to build discrete-time instances. *)
