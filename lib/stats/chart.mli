(** Self-contained SVG line charts for the experiment "figures".

    The paper-shaped outputs E2 and E5 are series (ratio vs a scale
    parameter); this renders them as standalone SVG documents with axes,
    ticks, legend and optional logarithmic y-axis — no external assets or
    dependencies. *)

type series = { label : string; points : (float * float) list }

val render :
  ?width:int ->
  ?height:int ->
  ?log_y:bool ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** Defaults: 640x400, linear y.  Points with non-positive y are dropped
    when [log_y]; empty input renders an empty-plot note.  Raises
    [Invalid_argument] on degenerate dimensions. *)

val of_table : x:string -> Table.t -> series list
(** Interpret a table as series: column [x] gives the x-coordinates and
    every other numeric column becomes one series (non-numeric cells are
    skipped).  Returns [[]] when column [x] is missing or non-numeric. *)

val save : path:string -> string -> unit
(** Write a rendered chart (or any text) to a file. *)
