type t = { name : string; mean : float option; sample : Rng.t -> float }

let name d = d.name
let mean d = d.mean
let sample d rng = d.sample rng

let constant v =
  assert (v > 0.);
  { name = Printf.sprintf "const(%g)" v; mean = Some v; sample = (fun _ -> v) }

let uniform ~lo ~hi =
  assert (0. < lo && lo <= hi);
  { name = Printf.sprintf "uniform(%g,%g)" lo hi;
    mean = Some ((lo +. hi) /. 2.);
    sample = (fun rng -> Rng.float_range rng lo hi) }

let exponential ~mean =
  assert (mean > 0.);
  { name = Printf.sprintf "exp(%g)" mean;
    mean = Some mean;
    sample = (fun rng -> Rng.exponential rng (1. /. mean)) }

let pareto ~shape ~scale =
  assert (shape > 0. && scale > 0.);
  let mean = if shape > 1. then Some (shape *. scale /. (shape -. 1.)) else None in
  { name = Printf.sprintf "pareto(%g,%g)" shape scale;
    mean;
    sample = (fun rng -> Rng.pareto rng ~shape ~scale) }

let bounded_pareto ~shape ~lo ~hi =
  assert (shape > 0. && 0. < lo && lo < hi);
  (* Inverse CDF of the Pareto truncated to [lo, hi]. *)
  let la = lo ** shape and ha = hi ** shape in
  let mean =
    if Float.abs (shape -. 1.) < 1e-9 then Some (lo *. hi /. (hi -. lo) *. log (hi /. lo))
    else
      let num = la /. (1. -. (la /. ha)) *. (shape /. (shape -. 1.)) in
      Some (num *. ((1. /. (lo ** (shape -. 1.))) -. (1. /. (hi ** (shape -. 1.)))))
  in
  { name = Printf.sprintf "bpareto(%g,%g,%g)" shape lo hi;
    mean;
    sample =
      (fun rng ->
        let u = Rng.float rng in
        let denom = 1. -. (u *. (1. -. (la /. ha))) in
        lo /. (denom ** (1. /. shape))) }

let bimodal ~lo ~hi ~p_hi =
  assert (0. < lo && lo <= hi && 0. <= p_hi && p_hi <= 1.);
  { name = Printf.sprintf "bimodal(%g,%g,p=%g)" lo hi p_hi;
    mean = Some (((1. -. p_hi) *. lo) +. (p_hi *. hi));
    sample = (fun rng -> if Rng.float rng < p_hi then hi else lo) }

let lognormal ~mu ~sigma =
  assert (sigma >= 0.);
  let sample rng =
    (* Box-Muller; we burn one of the pair for simplicity. *)
    let u1 = 1. -. Rng.float rng and u2 = Rng.float rng in
    let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
    exp (mu +. (sigma *. z))
  in
  { name = Printf.sprintf "lognormal(%g,%g)" mu sigma;
    mean = Some (exp (mu +. (sigma *. sigma /. 2.)));
    sample }

let choice weighted =
  assert (weighted <> []);
  List.iter (fun (w, _) -> assert (w > 0.)) weighted;
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. weighted in
  let mean =
    List.fold_left
      (fun acc (w, d) ->
        match (acc, d.mean) with
        | Some a, Some m -> Some (a +. (w /. total *. m))
        | _ -> None)
      (Some 0.) weighted
  in
  let sample rng =
    let x = Rng.float rng *. total in
    let rec pick acc = function
      | [] -> assert false
      | [ (_, d) ] -> d.sample rng
      | (w, d) :: rest -> if x < acc +. w then d.sample rng else pick (acc +. w) rest
    in
    pick 0. weighted
  in
  let names = List.map (fun (w, d) -> Printf.sprintf "%g*%s" w d.name) weighted in
  { name = "mix(" ^ String.concat "," names ^ ")"; mean; sample }

let scaled c d =
  assert (c > 0.);
  { name = Printf.sprintf "%g*%s" c d.name;
    mean = Option.map (fun m -> c *. m) d.mean;
    sample = (fun rng -> c *. d.sample rng) }

let quantize ~grid d =
  assert (grid > 0.);
  { name = Printf.sprintf "quantize(%g,%s)" grid d.name;
    mean = None;
    sample =
      (fun rng ->
        let v = d.sample rng in
        let q = Float.ceil (v /. grid) *. grid in
        if q <= 0. then grid else q) }
