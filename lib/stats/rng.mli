(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    SplitMix64 (Steele, Lea & Flood 2014): a tiny, high-quality, splittable
    generator whose output is identical on every platform, unlike
    [Stdlib.Random] whose algorithm may change between compiler releases. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an arbitrary integer seed. *)

val split : t -> t
(** [split t] derives an independent generator stream from [t], advancing
    [t].  Used to give each machine/job/experiment arm its own stream so that
    changing the number of draws in one arm does not perturb the others. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future draws). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] draws uniformly in [[0,1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] draws uniformly in [[lo,hi)].  Requires
    [lo <= hi]. *)

val int : t -> int -> int
(** [int t n] draws uniformly in [[0, n-1]].  Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> float -> float
(** [exponential t rate] draws from Exp(rate).  Requires [rate > 0]. *)

val pareto : t -> shape:float -> scale:float -> float
(** [pareto t ~shape ~scale] draws from a Pareto distribution with the given
    tail index [shape] and minimum value [scale]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
