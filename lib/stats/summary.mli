(** Descriptive statistics over float samples. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1 denominator). *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  total : float;
}

val of_array : float array -> t
(** [of_array a] summarizes [a]; raises [Invalid_argument] when empty. *)

val of_list : float list -> t

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [[0,1]] over a sorted array, using
    nearest-rank with linear interpolation. *)

val mean : float list -> float
val geometric_mean : float list -> float

val pp : Format.formatter -> t -> unit
(** Compact one-line rendering. *)
