type t = {
  title : string;
  columns : string list;
  mutable rev_rows : string list list;
}

let create ~title ~columns =
  assert (columns <> []);
  { title; columns; rev_rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns in %S"
         (List.length row) (List.length t.columns) t.title);
  t.rev_rows <- row :: t.rev_rows

let add_rows t rows = List.iter (add_row t) rows
let title t = t.title
let columns t = t.columns
let rows t = List.rev t.rev_rows

let cell_float v =
  if Float.is_nan v then "nan"
  else if Float.is_integer v && Float.abs v < 1e15 && Float.abs v >= 1000. then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let cell_int = string_of_int
let cell_bool b = if b then "yes" else "no"

let looks_numeric s =
  s <> ""
  && (match s.[0] with '0' .. '9' | '-' | '+' | '.' -> true | _ -> false)

let render t =
  let all = t.columns :: rows t in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  (* A column is right-aligned when every data cell in it looks numeric. *)
  let numeric = Array.make ncols true in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if not (looks_numeric cell) then numeric.(i) <- false) row)
    (rows t);
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    if n <= 0 then cell
    else if numeric.(i) then String.make n ' ' ^ cell
    else cell ^ String.make n ' '
  in
  let render_row row = String.concat "  " (List.mapi pad row) in
  let sep = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row t.columns);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let csv_quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  let row_to_csv row = String.concat "," (List.map csv_quote row) in
  Buffer.add_string buf (row_to_csv t.columns);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (row_to_csv row);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf
