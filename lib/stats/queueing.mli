(** Closed-form queueing predictions used to validate the simulator.

    A single machine under Poisson arrivals and FIFO service is an M/G/1
    queue, whose stationary mean waiting time has the exact
    Pollaczek-Khinchine form — an independent ground truth the event-driven
    driver must reproduce. *)

val mg1_mean_wait : lambda:float -> es:float -> es2:float -> float
(** [mg1_mean_wait ~lambda ~es ~es2] is the Pollaczek-Khinchine mean
    waiting time [lambda es2 / (2 (1 - rho))] with [rho = lambda es];
    requires [rho < 1].  [es] and [es2] are the first two moments of the
    service time. *)

val mg1_mean_flow : lambda:float -> es:float -> es2:float -> float
(** Mean flow (sojourn) time: waiting plus service. *)

val mm1_mean_flow : lambda:float -> mu:float -> float
(** The M/M/1 special case [1 / (mu - lambda)]. *)

val moments_uniform : lo:float -> hi:float -> float * float
(** First two moments of Uniform(lo, hi). *)

val moments_exponential : mean:float -> float * float
(** First two moments of Exp with the given mean. *)

val moments_bimodal : lo:float -> hi:float -> p_hi:float -> float * float
