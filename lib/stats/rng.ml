type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Mixing functions from the SplitMix64 reference implementation. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = int64 t in
  { state = mix64 s }

let copy t = { state = t.state }

let float t =
  (* 53 high-quality bits -> [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float_range t lo hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* 62 random bits fit positively in OCaml's 63-bit native int; plain
     modulo bias is negligible for our n << 2^62 use cases. *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  bits mod n

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t rate =
  assert (rate > 0.);
  let u = 1.0 -. float t in
  -.log u /. rate

let pareto t ~shape ~scale =
  assert (shape > 0. && scale > 0.);
  let u = 1.0 -. float t in
  scale /. (u ** (1.0 /. shape))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
