(** Deterministic fork-join parallelism — a thin shim over {!Pool}.

    Experiments replicate runs over seeds; each run is independent, so
    they map cleanly onto pool tasks.  Results are returned in input
    order, making parallel and sequential execution observationally
    identical, and any exception from a worker is re-raised in the
    caller (lowest input index wins when several items raise).

    Without [?domains] the region runs on the {e ambient} pool
    ({!Pool.ambient}): the enclosing pool when called from inside a pool
    task — so nested sweeps share one fixed set of domains — or the
    persistent process-wide default otherwise.  An explicit [?domains]
    pins an exact width by running on a transient pool of that size. *)

val default_domains : unit -> int
(** [max 1 (recommended_domain_count - 1)], leaving a core for the
    caller. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f a] applies [f] to every element in parallel ([1] runs
    inline).  [f] must be safe to run concurrently with itself — in this
    codebase that means: do not share an {!Rng.t} across items. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
