(** Minimal deterministic fork-join parallelism over OCaml 5 domains.

    Experiments replicate runs over seeds; each run is independent, so they
    map cleanly onto domains.  Results are returned in input order, making
    parallel and sequential execution observationally identical, and any
    exception from a worker is re-raised in the caller. *)

val default_domains : unit -> int
(** [max 1 (recommended_domain_count - 1)], leaving a core for the
    caller. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f a] applies [f] to every element, splitting the work over
    up to [domains] domains (default {!default_domains}; [1] runs inline).
    [f] must be safe to run concurrently with itself — in this codebase
    that means: do not share an {!Rng.t} across items. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
