type t = { edges : float array; counts : int array }

let build edges values =
  let bins = Array.length edges - 1 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun v ->
      (* Rightmost bin whose lower edge is <= v (clamped). *)
      let rec find k = if k <= 0 || edges.(k) <= v then k else find (k - 1) in
      let k = min (bins - 1) (max 0 (find (bins - 1))) in
      counts.(k) <- counts.(k) + 1)
    values;
  { edges; counts }

let create ?(bins = 12) values =
  if Array.length values = 0 then invalid_arg "Histogram.create: empty";
  if bins < 1 then invalid_arg "Histogram.create: bins < 1";
  let lo = Array.fold_left Float.min Float.infinity values in
  let hi = Array.fold_left Float.max Float.neg_infinity values in
  let hi = if hi <= lo then lo +. 1. else hi in
  let edges =
    Array.init (bins + 1) (fun k -> lo +. ((hi -. lo) *. float_of_int k /. float_of_int bins))
  in
  build edges values

let log_bins ?(bins = 12) values =
  if Array.length values = 0 then invalid_arg "Histogram.log_bins: empty";
  Array.iter (fun v -> if v <= 0. then invalid_arg "Histogram.log_bins: non-positive value") values;
  let lo = Array.fold_left Float.min Float.infinity values in
  let hi = Array.fold_left Float.max Float.neg_infinity values in
  let hi = if hi <= lo then lo *. 2. else hi in
  let ratio = hi /. lo in
  let edges =
    Array.init (bins + 1) (fun k -> lo *. (ratio ** (float_of_int k /. float_of_int bins)))
  in
  build edges values

let counts t =
  List.init (Array.length t.counts) (fun k -> (t.edges.(k), t.edges.(k + 1), t.counts.(k)))

let render ?(width = 50) t =
  if width < 1 then invalid_arg "Histogram.render: width < 1";
  let max_count = Array.fold_left max 1 t.counts in
  let buf = Buffer.create 512 in
  Array.iteri
    (fun k c ->
      let bar = String.make (c * width / max_count) '#' in
      Buffer.add_string buf
        (Printf.sprintf "%10.3g - %-10.3g |%-*s %d\n" t.edges.(k) t.edges.(k + 1) width bar c))
    t.counts;
  Buffer.contents buf
