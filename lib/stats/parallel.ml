let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

type 'b cell = Pending | Done of 'b | Failed of exn

let map_array ?domains f a =
  let n = Array.length a in
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  if n = 0 then [||]
  else if domains = 1 || n = 1 then Array.map f a
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let k = Atomic.fetch_and_add next 1 in
        if k >= n then continue := false
        else
          results.(k) <-
            (match f a.(k) with v -> Done v | exception e -> Failed e)
      done
    in
    let spawned = List.init (min domains n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.map
      (function
        | Done v -> v
        | Failed e -> raise e
        | Pending -> assert false)
      results
  end

let map_list ?domains f l = Array.to_list (map_array ?domains f (Array.of_list l))
