(* Thin compatibility shim over Pool.  Historically this module spawned
   fresh domains per call; it now routes every region through the
   persistent work-sharing pool: the ambient pool when no explicit
   domain count is requested, a transient pool otherwise (tests and the
   bench scaling harness use [~domains] to pin an exact width). *)

let default_domains = Pool.default_domains

let map_array ?domains f a =
  match domains with
  | None -> Pool.parallel_map (Pool.ambient ()) f a
  | Some d -> Pool.with_pool ~domains:d (fun pool -> Pool.parallel_map pool f a)

let map_list ?domains f l = Array.to_list (map_array ?domains f (Array.of_list l))
