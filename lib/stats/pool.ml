(* A persistent work-sharing domain pool.

   One pool is created per process (or per scope via [with_pool]) and
   reused by every parallel region, replacing the spawn-per-call scheme
   the experiments used to pay for.  Design:

   * One shared FIFO of chunk tasks, guarded by a single mutex and a
     single condition variable.  Workers block on the condition when the
     queue is empty; both "task enqueued" and "batch finished" broadcast.
   * A parallel region ([parallel_map] / [parallel_for]) slices its index
     space into contiguous chunks, enqueues one task per chunk, then the
     *submitting* domain enters a help loop: it keeps popping and running
     tasks — its own or anyone else's — until its batch count reaches
     zero.  Because submitters help instead of blocking, a task that
     calls back into the pool (the experiments do: [Registry.run_all]
     fans out experiments whose bodies fan out seeds) makes progress on
     the same set of domains: no new domain is spawned, no worker waits
     for work only itself could run, so nesting neither deadlocks nor
     oversubscribes.  With [domains = 1] (or a single-element input) a
     region degenerates to a plain inline [Array.map] — byte-identical
     to, and as fast as, sequential code.
   * Determinism: chunk k writes only the result slots of chunk k,
     results are assembled by input index, and the exception surfaced to
     the caller is the one raised at the *lowest* input index, so
     neither chunk boundaries nor domain scheduling are observable.

   This module is the repo's single home for raw concurrency primitives;
   rejlint rule RJL008 keeps Domain.spawn/Atomic/Mutex/Condition out of
   the rest of lib/. *)

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

type t = {
  size : int;  (* Total parallelism, spawned workers + the submitter. *)
  mutex : Mutex.t;
  wake : Condition.t;  (* Signals new work, batch completion, shutdown. *)
  work : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable live : bool;
}

(* The innermost pool currently executing a task on this domain; parallel
   regions started from inside a task reuse it (see [ambient]). *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let size t = t.size

let run_task pool task =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current (Some pool);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) task

(* Workers drain the queue, then sleep; on shutdown they finish whatever
   is still queued before exiting, so [shutdown] never strands a task. *)
let worker_loop pool () =
  Mutex.lock pool.mutex;
  let rec loop () =
    match Queue.take_opt pool.work with
    | Some task ->
        Mutex.unlock pool.mutex;
        run_task pool task;
        Mutex.lock pool.mutex;
        loop ()
    | None ->
        if pool.live then begin
          Condition.wait pool.wake pool.mutex;
          loop ()
        end
  in
  loop ();
  Mutex.unlock pool.mutex

let create ?domains () =
  let size =
    match domains with
    | Some d when d < 1 ->
        invalid_arg (Printf.sprintf "Sched_stats.Pool: domains must be >= 1 (got %d)" d)
    | Some d -> d
    | None -> default_domains ()
  in
  let pool =
    {
      size;
      mutex = Mutex.create ();
      wake = Condition.create ();
      work = Queue.create ();
      workers = [];
      live = true;
    }
  in
  pool.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  let was_live = pool.live in
  pool.live <- false;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex;
  if was_live then begin
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)

(* A chunk body signals "item [i] raised [exn]" by raising this; the
   task wrapper records it in the batch, keeping the lowest index. *)
exception Item_failure of int * exn

type batch = {
  mutable remaining : int;  (* Chunk tasks not yet finished. *)
  mutable failed : (int * exn) option;  (* Lowest raising input index. *)
}

let record_failure pool batch index exn =
  Mutex.lock pool.mutex;
  (match batch.failed with
  | Some (i, _) when i <= index -> ()
  | _ -> batch.failed <- Some (index, exn));
  Mutex.unlock pool.mutex

(* Run one batch of [chunks] tasks: enqueue, then help until done.  The
   submitter pops tasks FIFO like any worker — its own chunks, a sibling
   batch's, or a nested region's — so every live region shares the same
   fixed set of domains.  [task c] must confine failures to
   [Item_failure]. *)
let run_batch pool ~chunks ~task =
  let batch = { remaining = chunks; failed = None } in
  Mutex.lock pool.mutex;
  if not pool.live then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Sched_stats.Pool: pool is shut down"
  end;
  for c = 0 to chunks - 1 do
    Queue.add
      (fun () ->
        (try task c with
        | Item_failure (i, exn) -> record_failure pool batch i exn
        | exn -> record_failure pool batch max_int exn);
        Mutex.lock pool.mutex;
        batch.remaining <- batch.remaining - 1;
        if batch.remaining = 0 then Condition.broadcast pool.wake;
        Mutex.unlock pool.mutex)
      pool.work
  done;
  Condition.broadcast pool.wake;
  let rec help () =
    if batch.remaining > 0 then
      match Queue.take_opt pool.work with
      | Some t ->
          Mutex.unlock pool.mutex;
          run_task pool t;
          Mutex.lock pool.mutex;
          help ()
      | None ->
          Condition.wait pool.wake pool.mutex;
          help ()
  in
  help ();
  Mutex.unlock pool.mutex;
  match batch.failed with Some (_, exn) -> raise exn | None -> ()

(* Chunk size balancing uneven work: ~4 chunks per domain, never more
   chunks than items. *)
let resolve_chunk_size ?chunk_size pool n =
  match chunk_size with
  | Some c when c < 1 -> invalid_arg "Sched_stats.Pool: chunk_size must be >= 1"
  | Some c -> c
  | None -> max 1 ((n + (pool.size * 4) - 1) / (pool.size * 4))

let chunked_run ?chunk_size pool n body =
  let chunk_size = resolve_chunk_size ?chunk_size pool n in
  let chunks = (n + chunk_size - 1) / chunk_size in
  run_batch pool ~chunks ~task:(fun c ->
      let lo = c * chunk_size in
      let hi = min n (lo + chunk_size) in
      let i = ref lo in
      try
        while !i < hi do
          body !i;
          incr i
        done
      with exn -> raise (Item_failure (!i, exn)))

(* The inline degenerate cases still run under [run_task] so that nested
   parallel regions (and the ambient-pool lookup in Parallel/Exp_util)
   stay on *this* pool instead of escaping to the process default. *)
let parallel_for ?chunk_size pool n f =
  if n > 0 then
    if pool.size = 1 || n = 1 then
      run_task pool (fun () ->
          for i = 0 to n - 1 do
            f i
          done)
    else chunked_run ?chunk_size pool n f

let parallel_map ?chunk_size pool f a =
  let n = Array.length a in
  if n = 0 then [||]
  else if pool.size = 1 || n = 1 then run_task pool (fun () -> Array.map f a)
  else begin
    let results = Array.make n None in
    chunked_run ?chunk_size pool n (fun i -> results.(i) <- Some (f a.(i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_map_list ?chunk_size pool f l =
  Array.to_list (parallel_map ?chunk_size pool f (Array.of_list l))

(* A shard region: one task per shard index, a barrier at the end.  This
   is [parallel_for ~chunk_size:1] plus the width validation the sharded
   driver relies on; it exists as a named entry point so the nesting
   contract (shard regions submitted from inside pool tasks share the
   ambient pool's domains and cannot deadlock — submitters help) is
   documented and stress-tested in one place. *)
let run_shards pool ~shards f =
  if shards < 1 then
    invalid_arg (Printf.sprintf "Sched_stats.Pool: shards must be >= 1 (got %d)" shards);
  parallel_for ~chunk_size:1 pool shards f

(* ------------------------------------------------------------------ *)
(* The process-wide default pool                                       *)

(* Created lazily at [requested_domains] (settable until — or between —
   uses: resizing shuts the old pool down and builds a fresh one).  The
   guard mutex only covers pool lookup/creation, never task execution. *)
let global_mutex = Mutex.create ()
let global : t option ref = ref None
let requested_domains : int option ref = ref None

let locked f =
  Mutex.lock global_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock global_mutex) f

let default () =
  locked (fun () ->
      match !global with
      | Some pool when pool.live -> pool
      | _ ->
          let pool = create ?domains:!requested_domains () in
          global := Some pool;
          pool)

let set_default_domains d =
  if d < 1 then
    invalid_arg (Printf.sprintf "Sched_stats.Pool: domains must be >= 1 (got %d)" d);
  let stale =
    locked (fun () ->
        requested_domains := Some d;
        match !global with
        | Some pool when pool.size <> d ->
            global := None;
            Some pool
        | _ -> None)
  in
  match stale with Some pool -> shutdown pool | None -> ()

(* The DLS-only half of [ambient]: no default-pool fallback, hence no
   reach into the process-global mutable state — the lookup the sharded
   driver uses from inside policy entry points (RJL102 keeps those free
   of global reads; a [None] there just means sequential phase 1). *)
let ambient_opt () =
  match Domain.DLS.get current with Some pool when pool.live -> Some pool | _ -> None

let ambient () = match ambient_opt () with Some pool -> pool | None -> default ()
