type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  total : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty";
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let of_array a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Summary.of_array: empty";
  let total = Array.fold_left ( +. ) 0. a in
  let mean = total /. float_of_int n in
  let var =
    if n < 2 then 0.
    else
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. a
      /. float_of_int (n - 1)
  in
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  {
    count = n;
    mean;
    stddev = sqrt var;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile sorted 0.5;
    p90 = percentile sorted 0.9;
    p99 = percentile sorted 0.99;
    total;
  }

let of_list l = of_array (Array.of_list l)

let mean l =
  match l with
  | [] -> invalid_arg "Summary.mean: empty"
  | _ -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let geometric_mean l =
  match l with
  | [] -> invalid_arg "Summary.geometric_mean: empty"
  | _ ->
      List.iter (fun x -> assert (x > 0.)) l;
      exp (List.fold_left (fun acc x -> acc +. log x) 0. l /. float_of_int (List.length l))

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.3g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g"
    t.count t.mean t.stddev t.min t.p50 t.p90 t.p99 t.max
