(** ASCII histograms for quick distribution views in examples and the
    CLI. *)

type t

val create : ?bins:int -> float array -> t
(** [create ~bins values] (default 12 bins) over [min..max] of the data;
    raises [Invalid_argument] on empty input. *)

val log_bins : ?bins:int -> float array -> t
(** Geometric bin edges — the right view for heavy-tailed flow times.  All
    values must be positive. *)

val render : ?width:int -> t -> string
(** Bars scaled to [width] (default 50) characters, one line per bin with
    its range and count. *)

val counts : t -> (float * float * int) list
(** [(lo, hi, count)] per bin. *)
