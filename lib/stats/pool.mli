(** A persistent work-sharing domain pool: the substrate every parallel
    region in the repository runs on.

    A pool spawns its worker domains once ([create]) and reuses them for
    every subsequent [parallel_map]/[parallel_for], replacing the
    spawn-per-call scheme that left cores idle between regions.  The
    submitting domain always participates ("work sharing"): it pops and
    runs queued chunk tasks until its own batch completes.  That rule
    makes the pool {e reentrant}: a task that starts another parallel
    region on the same pool simply feeds the shared queue and helps
    drain it — nesting (experiments × seeds) neither deadlocks nor
    spawns additional domains.

    Determinism contract, pinned by the qcheck/differential tests:
    results are assembled by input index, so
    [parallel_map pool f a = Array.map f a] observationally for pure (or
    item-local effectful) [f], regardless of pool size, chunk size or
    scheduling; if several items raise, the exception re-raised in the
    caller is the one from the lowest input index.  With [domains = 1]
    regions run inline — byte-identical to sequential code. *)

type t

val default_domains : unit -> int
(** [max 1 (recommended_domain_count - 1)], leaving a core for the
    caller (who participates in every region anyway). *)

val create : ?domains:int -> unit -> t
(** Spawns [domains - 1] worker domains (default {!default_domains}).
    [domains = 1] spawns none: every region runs inline in the caller.
    Raises [Invalid_argument] when [domains < 1] — silent clamping hid
    misconfigured widths from the CLI. *)

val size : t -> int
(** Total parallelism: spawned workers plus the submitting domain. *)

val shutdown : t -> unit
(** Drains queued tasks, stops and joins the workers.  Idempotent.
    Submitting to a shut-down pool raises [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)

val parallel_map : ?chunk_size:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Chunked data-parallel map with input-ordered results.  [chunk_size]
    defaults to ~4 chunks per domain; it may only affect wall time,
    never the result.  [f] must be safe to run concurrently with itself
    (in this codebase: do not share an {!Rng.t} or a telemetry registry
    across items). *)

val parallel_map_list : ?chunk_size:int -> t -> ('a -> 'b) -> 'a list -> 'b list

val parallel_for : ?chunk_size:int -> t -> int -> (int -> unit) -> unit
(** [parallel_for pool n f] runs [f 0 .. f (n-1)]; each index is applied
    exactly once.  [f] typically writes slot [i] of a preallocated
    array — distinct indices only, per the concurrency-safety rule. *)

val run_shards : t -> shards:int -> (int -> unit) -> unit
(** [run_shards pool ~shards f] runs [f 0 .. f (shards-1)], one task per
    shard, and returns only when all have finished (a barrier).  Safe to
    call from inside a pool task: the nested region shares the ambient
    pool's domains (submitters help drain the queue), so shard regions
    nest without deadlock or oversubscription.  Raises
    [Invalid_argument] when [shards < 1]. *)

(** {1 The process-wide default pool}

    [Sched_stats.Parallel] (and through it [Exp_util.per_seed]) submits
    to the {e ambient} pool: the pool whose task the calling domain is
    currently executing, falling back to a lazily created process-wide
    default.  The CLI's [--domains] flag resizes the default before
    first use. *)

val default : unit -> t
(** The process-wide pool, created on first use at the last size given
    to {!set_default_domains} (or {!default_domains}). *)

val set_default_domains : int -> unit
(** Sets the default pool's size; if the default pool already exists at
    a different size it is shut down and recreated lazily.  Call at
    startup, not between live regions.  Raises [Invalid_argument] when
    the size is < 1. *)

val ambient : unit -> t
(** The pool executing the current task, or {!default} outside any. *)

val ambient_opt : unit -> t option
(** The pool executing the current task, or [None] outside any — never
    touches (or creates) the process-wide default.  The lookup for code
    that must stay free of global state, e.g. the sharded driver's
    phase-1 fan-out. *)
