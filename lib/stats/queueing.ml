let mg1_mean_wait ~lambda ~es ~es2 =
  if lambda <= 0. then invalid_arg "Queueing: lambda must be positive";
  if es <= 0. || es2 <= 0. then invalid_arg "Queueing: moments must be positive";
  let rho = lambda *. es in
  if rho >= 1. then invalid_arg "Queueing: unstable queue (rho >= 1)";
  lambda *. es2 /. (2. *. (1. -. rho))

let mg1_mean_flow ~lambda ~es ~es2 = mg1_mean_wait ~lambda ~es ~es2 +. es

let mm1_mean_flow ~lambda ~mu =
  if mu <= lambda then invalid_arg "Queueing: unstable queue";
  1. /. (mu -. lambda)

let moments_uniform ~lo ~hi =
  if not (0. <= lo && lo < hi) then invalid_arg "Queueing.moments_uniform";
  let es = (lo +. hi) /. 2. in
  let es2 = ((hi ** 3.) -. (lo ** 3.)) /. (3. *. (hi -. lo)) in
  (es, es2)

let moments_exponential ~mean =
  if mean <= 0. then invalid_arg "Queueing.moments_exponential";
  (mean, 2. *. mean *. mean)

let moments_bimodal ~lo ~hi ~p_hi =
  if not (0. < lo && lo <= hi && 0. <= p_hi && p_hi <= 1.) then
    invalid_arg "Queueing.moments_bimodal";
  let es = ((1. -. p_hi) *. lo) +. (p_hi *. hi) in
  let es2 = ((1. -. p_hi) *. lo *. lo) +. (p_hi *. hi *. hi) in
  (es, es2)
