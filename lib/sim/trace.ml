open Sched_model

type event =
  | Dispatch of { job : Job.id; machine : Machine.id }
  | Start of { job : Job.id; machine : Machine.id; speed : float }
  | Complete of { job : Job.id; machine : Machine.id }
  | Reject of { job : Job.id; machine : Machine.id; was_running : bool; remaining : float }
  | Restart of { job : Job.id; machine : Machine.id; wasted : float }

type entry = { time : Time.t; event : event }

type t = { mutable rev : entry list; mutable len : int }

let create () = { rev = []; len = 0 }

let record t time event =
  t.rev <- { time; event } :: t.rev;
  t.len <- t.len + 1

let events t = List.rev t.rev
let length t = t.len

(* Entries recorded after the first [k]: the serve loop's per-batch
   emission cursor.  O(length - k) — the suffix is the *head* of the
   reversed list, so nothing older is walked. *)
let since t k =
  let fresh = t.len - k in
  if fresh <= 0 then []
  else begin
    let rec take acc rest r =
      if r = 0 then acc
      else match rest with [] -> acc | e :: tl -> take (e :: acc) tl (r - 1)
    in
    take [] t.rev fresh
  end

(* Shared step-function builder: [delta] maps an event to [Some (machine, +-1)]
   when it moves the tracked population, [None] otherwise. *)
let profile t ~machines ~delta =
  let profiles = Array.make machines [] in
  let counts = Array.make machines 0 in
  List.iter
    (fun { time; event } ->
      match delta event with
      | None -> ()
      | Some (i, d) ->
          counts.(i) <- counts.(i) + d;
          profiles.(i) <- (time, counts.(i)) :: profiles.(i))
    (events t);
  List.init machines (fun i -> (i, List.rev profiles.(i)))

let queue_profile t ~machines =
  profile t ~machines ~delta:(function
    | Dispatch { machine; _ } -> Some (machine, 1)
    | Complete { machine; _ } -> Some (machine, -1)
    | Reject { machine; _ } -> Some (machine, -1)
    | Start _ | Restart _ -> None)

let pending_profile t ~machines =
  profile t ~machines ~delta:(function
    | Dispatch { machine; _ } -> Some (machine, 1)
    | Start { machine; _ } -> Some (machine, -1)
    | Restart { machine; _ } -> Some (machine, 1)
    | Reject { machine; was_running = false; _ } -> Some (machine, -1)
    | Reject { was_running = true; _ } | Complete _ -> None)

let pp_entry ppf { time; event } =
  match event with
  | Dispatch { job; machine } -> Format.fprintf ppf "%a dispatch j%d -> m%d" Time.pp time job machine
  | Start { job; machine; speed } ->
      Format.fprintf ppf "%a start j%d on m%d speed=%g" Time.pp time job machine speed
  | Complete { job; machine } -> Format.fprintf ppf "%a complete j%d on m%d" Time.pp time job machine
  | Reject { job; machine; was_running; remaining } ->
      Format.fprintf ppf "%a reject j%d on m%d%s rem=%g" Time.pp time job machine
        (if was_running then " (running)" else "")
        remaining
  | Restart { job; machine; wasted } ->
      Format.fprintf ppf "%a restart j%d on m%d wasted=%g" Time.pp time job machine wasted
