type 'a entry = { key : float; tag : int; payload : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }
let is_empty t = t.len = 0
let size t = t.len

let less a b = a.key < b.key || (a.key = b.key && a.tag < b.tag)

let grow t entry =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let ndata = Array.make ncap entry in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end

let push t ~key ~tag payload =
  let entry = { key; tag; payload } in
  grow t entry;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.data.(!i) t.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(!i) in
    t.data.(!i) <- t.data.(parent);
    t.data.(parent) <- tmp;
    i := parent
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
    if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.data.(!i) in
      t.data.(!i) <- t.data.(!smallest);
      t.data.(!smallest) <- tmp;
      i := !smallest
    end
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t
    end;
    Some (top.key, top.tag, top.payload)
  end

let peek t = if t.len = 0 then None else Some (t.data.(0).key, t.data.(0).tag, t.data.(0).payload)

let clear t =
  t.data <- [||];
  t.len <- 0

(* ------------------------------------------------------------------ *)

module Indexed = struct
  type ('k, 'v) entry = { ikey : 'k; id : int; value : 'v }

  type ('k, 'v) t = {
    icmp : 'k -> 'k -> int;
    mutable idata : ('k, 'v) entry array;
    mutable ilen : int;
    mutable pos : int array;  (* id -> heap slot, -1 when absent *)
  }

  let create ~cmp () = { icmp = cmp; idata = [||]; ilen = 0; pos = [||] }
  let size t = t.ilen
  let is_empty t = t.ilen = 0
  let mem t ~id = id >= 0 && id < Array.length t.pos && t.pos.(id) >= 0

  (* Ids are unique, so breaking key ties on the id keeps the order total:
     the heap's answers never depend on the history of inserts/removals. *)
  let less t a b =
    let c = t.icmp a.ikey b.ikey in
    if c <> 0 then c < 0 else a.id < b.id

  let set t slot entry =
    t.idata.(slot) <- entry;
    t.pos.(entry.id) <- slot

  let rec sift_up t slot =
    if slot > 0 then begin
      let parent = (slot - 1) / 2 in
      if less t t.idata.(slot) t.idata.(parent) then begin
        let a = t.idata.(slot) and b = t.idata.(parent) in
        set t slot b;
        set t parent a;
        sift_up t parent
      end
    end

  let rec sift_down t slot =
    let l = (2 * slot) + 1 and r = (2 * slot) + 2 in
    let smallest = ref slot in
    if l < t.ilen && less t t.idata.(l) t.idata.(!smallest) then smallest := l;
    if r < t.ilen && less t t.idata.(r) t.idata.(!smallest) then smallest := r;
    if !smallest <> slot then begin
      let a = t.idata.(slot) and b = t.idata.(!smallest) in
      set t slot b;
      set t !smallest a;
      sift_down t !smallest
    end

  let ensure_pos t id =
    let len = Array.length t.pos in
    if id >= len then begin
      let nlen = max 16 (max (id + 1) (2 * len)) in
      let npos = Array.make nlen (-1) in
      Array.blit t.pos 0 npos 0 len;
      t.pos <- npos
    end

  let add t ~id ~key value =
    if id < 0 then invalid_arg "Pqueue.Indexed.add: negative id";
    ensure_pos t id;
    if t.pos.(id) >= 0 then
      invalid_arg (Printf.sprintf "Pqueue.Indexed.add: id %d already present" id);
    let entry = { ikey = key; id; value } in
    let cap = Array.length t.idata in
    if t.ilen = cap then begin
      let ndata = Array.make (max 16 (2 * cap)) entry in
      Array.blit t.idata 0 ndata 0 t.ilen;
      t.idata <- ndata
    end;
    t.idata.(t.ilen) <- entry;
    t.pos.(id) <- t.ilen;
    t.ilen <- t.ilen + 1;
    sift_up t (t.ilen - 1)

  let remove t ~id =
    if not (mem t ~id) then None
    else begin
      let slot = t.pos.(id) in
      let removed = t.idata.(slot) in
      t.pos.(id) <- -1;
      t.ilen <- t.ilen - 1;
      if slot < t.ilen then begin
        set t slot t.idata.(t.ilen);
        (* The moved entry may violate the invariant in either direction;
           exactly one of the two sifts does work. *)
        sift_up t slot;
        sift_down t slot
      end;
      Some (removed.ikey, removed.value)
    end

  let min_elt t =
    if t.ilen = 0 then None
    else
      let e = t.idata.(0) in
      Some (e.id, e.ikey, e.value)

  let pop_min t =
    match min_elt t with
    | None -> None
    | Some (id, _, _) as top ->
        ignore (remove t ~id);
        top

  let iter t ~f =
    for slot = 0 to t.ilen - 1 do
      let e = t.idata.(slot) in
      f e.id e.ikey e.value
    done

  let fold t ~init ~f =
    let acc = ref init in
    for slot = 0 to t.ilen - 1 do
      let e = t.idata.(slot) in
      acc := f !acc e.id e.ikey e.value
    done;
    !acc

  let to_list t = List.rev (fold t ~init:[] ~f:(fun acc id k v -> (id, k, v) :: acc))

  let clear t =
    t.idata <- [||];
    t.ilen <- 0;
    t.pos <- [||]

  let invariant t =
    let ok = ref (t.ilen >= 0 && t.ilen <= Array.length t.idata) in
    for slot = 1 to t.ilen - 1 do
      let parent = (slot - 1) / 2 in
      if less t t.idata.(slot) t.idata.(parent) then ok := false
    done;
    for slot = 0 to t.ilen - 1 do
      let e = t.idata.(slot) in
      if e.id < 0 || e.id >= Array.length t.pos || t.pos.(e.id) <> slot then ok := false
    done;
    let registered = ref 0 in
    Array.iter (fun p -> if p >= 0 then incr registered) t.pos;
    if !registered <> t.ilen then ok := false;
    !ok
end
