type 'a entry = { key : float; tag : int; payload : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }
let is_empty t = t.len = 0
let size t = t.len

let less a b = a.key < b.key || (a.key = b.key && a.tag < b.tag)

let grow t entry =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let ndata = Array.make ncap entry in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end

let push t ~key ~tag payload =
  let entry = { key; tag; payload } in
  grow t entry;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.data.(!i) t.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(!i) in
    t.data.(!i) <- t.data.(parent);
    t.data.(parent) <- tmp;
    i := parent
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
    if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.data.(!i) in
      t.data.(!i) <- t.data.(!smallest);
      t.data.(!smallest) <- tmp;
      i := !smallest
    end
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t
    end;
    Some (top.key, top.tag, top.payload)
  end

let peek t = if t.len = 0 then None else Some (t.data.(0).key, t.data.(0).tag, t.data.(0).payload)

let clear t =
  t.data <- [||];
  t.len <- 0

(* ------------------------------------------------------------------ *)
(* Flat event queue: the allocation-free counterpart of the polymorphic
   heap above.  Keys, tags and payloads live in parallel unboxed arrays;
   [pop] writes the minimum into cursor fields instead of returning an
   option, so the driver's steady state never touches the minor heap.
   The order is exactly the boxed heap's: [(key, tag)] lexicographic with
   primitive float/int comparisons (so [-0. = 0.], as everywhere else in
   the simulator).  Keys must be finite and tags unique while queued. *)

module Events = struct
  module Key = struct
    (* Tags order same-time events: completions (seq alone) sort before
       arrivals (seq + the arrival bit), and within a kind the insertion
       sequence decides.  Payloads carry the event operands: the job id of
       an arrival, or a (machine, epoch) pair packed for a completion. *)
    let arrival_bit = 1 lsl 40
    let max_seq = arrival_bit - 1
    let machine_bits = 20
    let max_machine = (1 lsl machine_bits) - 1
    let max_epoch = (1 lsl (62 - machine_bits)) - 1

    let check_seq seq =
      if seq < 0 || seq > max_seq then
        invalid_arg (Printf.sprintf "Pqueue.Events.Key: sequence %d out of range" seq)

    let finish_tag ~seq =
      check_seq seq;
      seq

    let arrival_tag ~seq =
      check_seq seq;
      arrival_bit + seq

    let is_arrival ~tag = tag land arrival_bit <> 0
    let seq_of ~tag = tag land (arrival_bit - 1)

    let finish_payload ~machine ~epoch =
      if machine < 0 || machine > max_machine then
        invalid_arg (Printf.sprintf "Pqueue.Events.Key: machine %d out of range" machine);
      if epoch < 0 || epoch > max_epoch then
        invalid_arg (Printf.sprintf "Pqueue.Events.Key: epoch %d out of range" epoch);
      (epoch lsl machine_bits) lor machine

    let machine_of ~payload = payload land max_machine
    let epoch_of ~payload = payload lsr machine_bits

    (* The total order realized by the queue, exposed for the property
       tests: keys first ([-0.] and [0.] compare equal, mirroring the
       float [<] the heaps use), unique tags second.  Finite keys only. *)
    let compare k1 t1 k2 t2 =
      if k1 < k2 then -1 else if k2 < k1 then 1 else Int.compare t1 t2
  end

  type t = {
    mutable ekey : float array;
    mutable etag : int array;
    mutable epay : int array;
    mutable elen : int;
    cur_key : float array;
        (* One-element scratch cell: a [mutable float] field of this mixed
           record would be boxed and re-allocated on every pop; a float
           array stores it unboxed. *)
    mutable cur_tag : int;
    mutable cur_pay : int;
  }

  let create () =
    {
      ekey = [||];
      etag = [||];
      epay = [||];
      elen = 0;
      cur_key = Array.make 1 0.;
      cur_tag = 0;
      cur_pay = 0;
    }

  let size t = t.elen
  let is_empty t = t.elen = 0

  let eless t i j =
    t.ekey.(i) < t.ekey.(j) || (t.ekey.(i) = t.ekey.(j) && t.etag.(i) < t.etag.(j))

  let swap t i j =
    let k = t.ekey.(i) and g = t.etag.(i) and p = t.epay.(i) in
    t.ekey.(i) <- t.ekey.(j);
    t.etag.(i) <- t.etag.(j);
    t.epay.(i) <- t.epay.(j);
    t.ekey.(j) <- k;
    t.etag.(j) <- g;
    t.epay.(j) <- p

  let grow t =
    let cap = Array.length t.ekey in
    if t.elen = cap then begin
      let ncap = max 16 (2 * cap) in
      let nkey = Array.make ncap 0. and ntag = Array.make ncap 0 and npay = Array.make ncap 0 in
      Array.blit t.ekey 0 nkey 0 t.elen;
      Array.blit t.etag 0 ntag 0 t.elen;
      Array.blit t.epay 0 npay 0 t.elen;
      t.ekey <- nkey;
      t.etag <- ntag;
      t.epay <- npay
    end

  let push t ~key ~tag ~payload =
    grow t;
    let i = ref t.elen in
    t.ekey.(!i) <- key;
    t.etag.(!i) <- tag;
    t.epay.(!i) <- payload;
    t.elen <- t.elen + 1;
    while !i > 0 && eless t !i ((!i - 1) / 2) do
      let parent = (!i - 1) / 2 in
      swap t !i parent;
      i := parent
    done

  let pop t =
    if t.elen = 0 then false
    else begin
      t.cur_key.(0) <- t.ekey.(0);
      t.cur_tag <- t.etag.(0);
      t.cur_pay <- t.epay.(0);
      t.elen <- t.elen - 1;
      if t.elen > 0 then begin
        t.ekey.(0) <- t.ekey.(t.elen);
        t.etag.(0) <- t.etag.(t.elen);
        t.epay.(0) <- t.epay.(t.elen);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < t.elen && eless t l !smallest then smallest := l;
          if r < t.elen && eless t r !smallest then smallest := r;
          if !smallest = !i then continue := false
          else begin
            swap t !i !smallest;
            i := !smallest
          end
        done
      end;
      true
    end

  let key t = t.cur_key.(0)
  let tag t = t.cur_tag
  let payload t = t.cur_pay

  (* Bounded pop for the session driver's [drain_until]: refuse to pop
     past the horizon.  The comparison reads the root key straight out of
     the unboxed key array, so the per-event cost over [pop] is one float
     compare — the horizon itself is boxed once per drain call by the
     caller, never per event. *)
  let pop_before t ~limit = if t.elen = 0 || t.ekey.(0) > limit then false else pop t

  (* Non-destructive root reads, for the sharded driver's merge-pop: it
     scans every shard heap's head before popping exactly one.  Both are
     meaningless on an empty queue (the caller checks [is_empty]) and
     allocation-free — [peek_key] returns a float already stored unboxed
     in the key array. *)
  let peek_key t = t.ekey.(0)
  let peek_tag t = t.etag.(0)

  let ensure_capacity t n =
    let cap = Array.length t.ekey in
    if n > cap then begin
      let ncap = max 16 (max n (2 * cap)) in
      let nkey = Array.make ncap 0. and ntag = Array.make ncap 0 and npay = Array.make ncap 0 in
      Array.blit t.ekey 0 nkey 0 t.elen;
      Array.blit t.etag 0 ntag 0 t.elen;
      Array.blit t.epay 0 npay 0 t.elen;
      t.ekey <- nkey;
      t.etag <- ntag;
      t.epay <- npay
    end

  let clear t =
    t.ekey <- [||];
    t.etag <- [||];
    t.epay <- [||];
    t.elen <- 0
end

(* ------------------------------------------------------------------ *)

module Indexed = struct
  type ('k, 'v) entry = { ikey : 'k; id : int; value : 'v }

  type ('k, 'v) t = {
    icmp : 'k -> 'k -> int;
    mutable idata : ('k, 'v) entry array;
    mutable ilen : int;
    mutable pos : int array;  (* id -> heap slot, -1 when absent *)
  }

  let create ~cmp () = { icmp = cmp; idata = [||]; ilen = 0; pos = [||] }
  let size t = t.ilen
  let is_empty t = t.ilen = 0
  let mem t ~id = id >= 0 && id < Array.length t.pos && t.pos.(id) >= 0

  (* Ids are unique, so breaking key ties on the id keeps the order total:
     the heap's answers never depend on the history of inserts/removals. *)
  let less t a b =
    let c = t.icmp a.ikey b.ikey in
    if c <> 0 then c < 0 else a.id < b.id

  let set t slot entry =
    t.idata.(slot) <- entry;
    t.pos.(entry.id) <- slot

  let rec sift_up t slot =
    if slot > 0 then begin
      let parent = (slot - 1) / 2 in
      if less t t.idata.(slot) t.idata.(parent) then begin
        let a = t.idata.(slot) and b = t.idata.(parent) in
        set t slot b;
        set t parent a;
        sift_up t parent
      end
    end

  let rec sift_down t slot =
    let l = (2 * slot) + 1 and r = (2 * slot) + 2 in
    let smallest = ref slot in
    if l < t.ilen && less t t.idata.(l) t.idata.(!smallest) then smallest := l;
    if r < t.ilen && less t t.idata.(r) t.idata.(!smallest) then smallest := r;
    if !smallest <> slot then begin
      let a = t.idata.(slot) and b = t.idata.(!smallest) in
      set t slot b;
      set t !smallest a;
      sift_down t !smallest
    end

  let ensure_pos t id =
    let len = Array.length t.pos in
    if id >= len then begin
      let nlen = max 16 (max (id + 1) (2 * len)) in
      let npos = Array.make nlen (-1) in
      Array.blit t.pos 0 npos 0 len;
      t.pos <- npos
    end

  let add t ~id ~key value =
    if id < 0 then invalid_arg "Pqueue.Indexed.add: negative id";
    ensure_pos t id;
    if t.pos.(id) >= 0 then
      invalid_arg (Printf.sprintf "Pqueue.Indexed.add: id %d already present" id);
    let entry = { ikey = key; id; value } in
    let cap = Array.length t.idata in
    if t.ilen = cap then begin
      let ndata = Array.make (max 16 (2 * cap)) entry in
      Array.blit t.idata 0 ndata 0 t.ilen;
      t.idata <- ndata
    end;
    t.idata.(t.ilen) <- entry;
    t.pos.(id) <- t.ilen;
    t.ilen <- t.ilen + 1;
    sift_up t (t.ilen - 1)

  let remove t ~id =
    if not (mem t ~id) then None
    else begin
      let slot = t.pos.(id) in
      let removed = t.idata.(slot) in
      t.pos.(id) <- -1;
      t.ilen <- t.ilen - 1;
      if slot < t.ilen then begin
        set t slot t.idata.(t.ilen);
        (* The moved entry may violate the invariant in either direction;
           exactly one of the two sifts does work. *)
        sift_up t slot;
        sift_down t slot
      end;
      Some (removed.ikey, removed.value)
    end

  let min_elt t =
    if t.ilen = 0 then None
    else
      let e = t.idata.(0) in
      Some (e.id, e.ikey, e.value)

  let pop_min t =
    match min_elt t with
    | None -> None
    | Some (id, _, _) as top ->
        ignore (remove t ~id);
        top

  let iter t ~f =
    for slot = 0 to t.ilen - 1 do
      let e = t.idata.(slot) in
      f e.id e.ikey e.value
    done

  let fold t ~init ~f =
    let acc = ref init in
    for slot = 0 to t.ilen - 1 do
      let e = t.idata.(slot) in
      acc := f !acc e.id e.ikey e.value
    done;
    !acc

  let to_list t = List.rev (fold t ~init:[] ~f:(fun acc id k v -> (id, k, v) :: acc))

  let clear t =
    t.idata <- [||];
    t.ilen <- 0;
    t.pos <- [||]

  let invariant t =
    let ok = ref (t.ilen >= 0 && t.ilen <= Array.length t.idata) in
    for slot = 1 to t.ilen - 1 do
      let parent = (slot - 1) / 2 in
      if less t t.idata.(slot) t.idata.(parent) then ok := false
    done;
    for slot = 0 to t.ilen - 1 do
      let e = t.idata.(slot) in
      if e.id < 0 || e.id >= Array.length t.pos || t.pos.(e.id) <> slot then ok := false
    done;
    let registered = ref 0 in
    Array.iter (fun p -> if p >= 0 then incr registered) t.pos;
    if !registered <> t.ilen then ok := false;
    !ok
end

(* ------------------------------------------------------------------ *)

module Iheap = struct
  (* The elements ARE the ids, so nothing is boxed: the heap and position
     tables are plain [int array]s and every operation is allocation-free
     once they have grown to size.

     The algorithm is a line-for-line clone of [Indexed]'s (append +
     sift-up on add; move-last + sift-up + sift-down on remove).  That is
     deliberate, not incidental: [Driver.pending_iter] exposes heap-array
     order to policies, and some of them fold floats over it, so the flat
     core must reproduce [Indexed]'s slot layout exactly — same algorithm,
     same operation history, same strict order — for schedules to stay
     byte-identical. *)

  type t = {
    mutable hless : int -> int -> bool;  (* strict total order over ids *)
    mutable hdata : int array;
    mutable hlen : int;
    mutable hpos : int array;  (* id -> heap slot, -1 when absent *)
  }

  let create ~less () = { hless = less; hdata = [||]; hlen = 0; hpos = [||] }

  (* Re-bless the order after the arrays a comparator closed over have
     been reallocated (the flat state's streaming column growth).  The
     caller guarantees [less] realizes the same order over the ids
     currently present, so the heap shape stays valid as-is; swapping the
     closure only redirects future comparisons to the live arrays.  Cold:
     runs once per capacity doubling, never per event. *)
  let set_less t ~less = t.hless <- less
  let size t = t.hlen
  let is_empty t = t.hlen = 0
  let mem t ~id = id >= 0 && id < Array.length t.hpos && t.hpos.(id) >= 0

  let set t slot id =
    t.hdata.(slot) <- id;
    t.hpos.(id) <- slot

  let rec sift_up t slot =
    if slot > 0 then begin
      let parent = (slot - 1) / 2 in
      if t.hless t.hdata.(slot) t.hdata.(parent) then begin
        let a = t.hdata.(slot) and b = t.hdata.(parent) in
        set t slot b;
        set t parent a;
        sift_up t parent
      end
    end

  let rec sift_down t slot =
    let l = (2 * slot) + 1 and r = (2 * slot) + 2 in
    let smallest = ref slot in
    if l < t.hlen && t.hless t.hdata.(l) t.hdata.(!smallest) then smallest := l;
    if r < t.hlen && t.hless t.hdata.(r) t.hdata.(!smallest) then smallest := r;
    if !smallest <> slot then begin
      let a = t.hdata.(slot) and b = t.hdata.(!smallest) in
      set t slot b;
      set t !smallest a;
      sift_down t !smallest
    end

  let ensure_pos t id =
    let len = Array.length t.hpos in
    if id >= len then begin
      let nlen = max 16 (max (id + 1) (2 * len)) in
      let npos = Array.make nlen (-1) in
      Array.blit t.hpos 0 npos 0 len;
      t.hpos <- npos
    end

  let add t ~id =
    if id < 0 then invalid_arg "Pqueue.Iheap.add: negative id";
    ensure_pos t id;
    if t.hpos.(id) >= 0 then
      invalid_arg (Printf.sprintf "Pqueue.Iheap.add: id %d already present" id);
    let cap = Array.length t.hdata in
    if t.hlen = cap then begin
      let ndata = Array.make (max 16 (2 * cap)) (-1) in
      Array.blit t.hdata 0 ndata 0 t.hlen;
      t.hdata <- ndata
    end;
    t.hdata.(t.hlen) <- id;
    t.hpos.(id) <- t.hlen;
    t.hlen <- t.hlen + 1;
    sift_up t (t.hlen - 1)

  let remove t ~id =
    if not (mem t ~id) then false
    else begin
      let slot = t.hpos.(id) in
      t.hpos.(id) <- -1;
      t.hlen <- t.hlen - 1;
      if slot < t.hlen then begin
        set t slot t.hdata.(t.hlen);
        (* The moved element may violate the invariant in either direction;
           exactly one of the two sifts does work. *)
        sift_up t slot;
        sift_down t slot
      end;
      true
    end

  let min_id t = if t.hlen = 0 then -1 else t.hdata.(0)
  let get t slot = t.hdata.(slot)

  let iter t ~f =
    for slot = 0 to t.hlen - 1 do
      f t.hdata.(slot)
    done

  let clear t =
    t.hdata <- [||];
    t.hlen <- 0;
    t.hpos <- [||]

  let invariant t =
    let ok = ref (t.hlen >= 0 && t.hlen <= Array.length t.hdata) in
    for slot = 1 to t.hlen - 1 do
      let parent = (slot - 1) / 2 in
      if t.hless t.hdata.(slot) t.hdata.(parent) then ok := false
    done;
    for slot = 0 to t.hlen - 1 do
      let id = t.hdata.(slot) in
      if id < 0 || id >= Array.length t.hpos || t.hpos.(id) <> slot then ok := false
    done;
    let registered = ref 0 in
    Array.iter (fun p -> if p >= 0 then incr registered) t.hpos;
    if !registered <> t.hlen then ok := false;
    !ok
end
