open Sched_model

(* Struct-of-arrays simulation state.

   Everything the driver's inner loop touches per event lives in unboxed
   [float array]s and [int array]s: job columns by id, machine columns by
   machine id, per-machine pending heaps over bare ids
   ([Pqueue.Iheap]), the running slot, the event queue
   ([Pqueue.Events]) and the metric accumulators.  Once the growable
   arrays have warmed up, none of the mutators here allocates on the
   minor heap — the only boxed structures are built at the edges
   ([of_instance], [to_schedule], and the [Job.t] handles policies read
   through the driver's view accessors.

   Byte-identity with the boxed driver is a hard requirement, so every
   float expression below copies the boxed code's operation order
   verbatim (float addition is not associative), the pending heaps
   replicate [Pqueue.Indexed]'s slot layout (policies fold floats over
   [pending_iter]'s heap-array order), and the aggregate work/weight
   sums are pinned back to exactly [0.] when a queue empties, as the
   boxed [pend] does. *)

(* Indices into the [facc] float-accumulator array.  A [mutable float]
   field of a mixed record would be boxed and re-allocated on every
   write; one flat float array keeps the whole hot-path float state
   unboxed. *)
let f_clock = 0
let f_flow = 1
let f_wflow = 2
let f_rej_flow = 3
let f_rej_wflow = 4
let f_max_flow = 5
let f_max_stretch = 6
let f_energy = 7
let f_makespan = 8
let f_rej_weight = 9

(* Total released weight: a constant of the instance in batch runs, but a
   running sum in streaming sessions (accumulated as jobs are fed, in the
   same jobs-by-release order [Instance.total_weight] folds in, so the
   float sum is bit-identical once the stream is complete). *)
let f_total_weight = 10
let facc_len = 11

(* [loc] codes, mirroring the boxed driver's [location]: *)
let loc_unreleased = -1
let loc_settled = -2

(* Streaming only: fed through [add_job], arrival event queued, not yet
   released.  Indistinguishable from [loc_unreleased] to the driver (both
   fail [loc_is_pending]/[loc_is_running]); it exists so [add_job] can
   reject duplicate ids. *)
let loc_queued = -3
let loc_pending ~machine = 2 * machine
let loc_running ~machine = (2 * machine) + 1
let loc_is_pending l = l >= 0 && l land 1 = 0
let loc_is_running l = l >= 0 && l land 1 = 1
let loc_machine l = l asr 1

(* Outcome kinds in [out_kind]: *)
let out_none = 0
let out_completed = 1
let out_rejected = 2

type t = {
  mutable instance : Instance.t;
      (* Batch: the full instance.  Streaming: a machines-only stand-in
         until [set_instance] swaps the materialized one in at close. *)
  mutable n : int;  (* jobs known so far; grows in streaming sessions *)
  m : int;
  mutable stride : int;
      (* Row length of the per-(machine, job) matrices below — the job
         capacity.  Equals [n] in batch runs; grows by doubling in
         streaming sessions, with the heap comparators re-blessed onto
         the reallocated columns ([Pqueue.Iheap.set_less]). *)
  mutable retire : bool;
      (* Rolling-retirement mode: completed/rejected work is folded into
         the accumulators only — no segment store, and the boxed [Job.t]
         handle is dropped — so memory stays bounded by the live set
         plus the flat columns.  [to_schedule] is unavailable. *)
  (* Job columns, indexed by job id (ids are 0..n-1); written once per
     job ([of_instance] or [add_job]), read-only afterwards. *)
  mutable jobs : Job.t array;  (* by id, not release order *)
  mutable release : float array;
  mutable weight : float array;
  mutable min_size : float array;
  mutable size_col : float array;  (* p_ij at [(i * stride) + j] *)
  mutable dens_col : float array;  (* w_j /. p_ij at [(i * stride) + j] *)
  (* Pending sets: five orders per machine over bare job ids, plus the
     incremental work/weight aggregates.  Only [by_spt] is observable as
     a *layout* (through [pend_iter]); the four auxiliary orders expose
     nothing but their minimum, which each strict total order makes
     unique regardless of heap shape.  They are therefore maintained
     lazily: dormant until a policy first asks for their head, then
     rebuilt from [by_spt] and kept incremental from that point on.
     Policies that never consult an order never pay for it. *)
  by_spt : Pqueue.Iheap.t array;
  by_spt_rev : Pqueue.Iheap.t array;
  by_density : Pqueue.Iheap.t array;
  by_size_id : Pqueue.Iheap.t array;
  by_fifo : Pqueue.Iheap.t array;
  mutable live_spt_rev : bool;
  mutable live_density : bool;
  mutable live_size_id : bool;
  mutable live_fifo : bool;
  p_work : float array;
  p_weight : float array;
  (* Running slot per machine; [run_job.(i) = -1] when idle. *)
  run_job : int array;
  run_started : float array;
  run_rate : float array;
  run_finish : float array;
  epoch : int array;
  (* Job status (see the [loc_*] codes above). *)
  mutable loc : int array;
  (* Event queue and its shared insertion-sequence counter. *)
  events : Pqueue.Events.t;
  mutable seq : int;
  (* Float accumulators (clock + incremental metrics); int counts are
     immediate and live as plain mutable fields. *)
  facc : float array;
  mutable a_completed : int;
  mutable a_rejected : int;
  mutable a_mid_run : int;
  mutable saw_restart : bool;
  (* Outcomes by job id: kind, machine, start-or-rejection time, speed,
     finish, mid-run flag.  Kept even under retirement — [out_kind] is
     what [check_undecided]'s double-decide guard reads, and the arrays
     are already at column capacity. *)
  mutable out_kind : int array;
  mutable out_machine : int array;
  mutable out_t0 : float array;
  mutable out_speed : float array;
  mutable out_finish : float array;
  mutable out_running : bool array;
  (* Segments in insertion order, in growable parallel arrays. *)
  mutable seg_job : int array;
  mutable seg_machine : int array;
  mutable seg_start : float array;
  mutable seg_stop : float array;
  mutable seg_speed : float array;
  mutable seg_len : int;
}

(* The strict orders of the five pending heaps.  Each mirrors the boxed
   driver's [Pqueue.Indexed] order exactly: the comparator's branches in
   the same sequence (primitive float [<]/[>], so [-0. = 0.] and
   incomparable infinities fall through), then the id tie-break. *)

let less_spt sz rel base a b =
  let pa = sz.(base + a) and pb = sz.(base + b) in
  if pa < pb then true
  else if pa > pb then false
  else
    let ra = rel.(a) and rb = rel.(b) in
    if ra < rb then true else if ra > rb then false else a < b

let less_spt_rev sz rel base a b =
  let pa = sz.(base + a) and pb = sz.(base + b) in
  if pa > pb then true
  else if pa < pb then false
  else
    let ra = rel.(a) and rb = rel.(b) in
    if ra > rb then true else if ra < rb then false else b < a

let less_density dn rel base a b =
  let da = dn.(base + a) and db = dn.(base + b) in
  if da > db then true
  else if da < db then false
  else
    let ra = rel.(a) and rb = rel.(b) in
    if ra < rb then true else if ra > rb then false else a < b

let less_size_id sz base a b =
  let pa = sz.(base + a) and pb = sz.(base + b) in
  if pa > pb then true else if pa < pb then false else b < a

let less_fifo rel a b =
  let ra = rel.(a) and rb = rel.(b) in
  if ra < rb then true else if ra > rb then false else a < b

(* Fill value for the [jobs] column: streaming sessions grow the array
   before the real handles exist, and rolling retirement drops a handle
   the moment its job settles.  Never read back — every consumer goes
   through [loc]/[out_kind] first.  ([Job.t] is private, so the stand-in
   goes through the validating constructor like any other job.) *)
let retired_job = Job.create ~id:0 ~release:0. ~sizes:[| 1. |] ()

(* Point the five per-machine heap orders at the current column arrays.
   Called at creation and again after every streaming column growth —
   the comparators capture the arrays (and the machine's row base)
   directly so the per-comparison path stays free of indirection. *)
let rebless_heaps t =
  let sz = t.size_col and dn = t.dens_col and rel = t.release in
  for i = 0 to t.m - 1 do
    let base = i * t.stride in
    Pqueue.Iheap.set_less t.by_spt.(i) ~less:(less_spt sz rel base);
    Pqueue.Iheap.set_less t.by_spt_rev.(i) ~less:(less_spt_rev sz rel base);
    Pqueue.Iheap.set_less t.by_density.(i) ~less:(less_density dn rel base);
    Pqueue.Iheap.set_less t.by_size_id.(i) ~less:(less_size_id sz base);
    Pqueue.Iheap.set_less t.by_fifo.(i) ~less:(less_fifo rel)
  done

let of_instance instance =
  let n = Instance.n instance and m = Instance.m instance in
  if m > Pqueue.Events.Key.max_machine then
    invalid_arg (Printf.sprintf "Flat_state: %d machines exceed the event-key range" m);
  let jobs =
    let by_rel = Instance.jobs_by_release instance in
    if n = 0 then [||]
    else begin
      let a = Array.make n by_rel.(0) in
      Array.iter (fun (j : Job.t) -> a.(j.Job.id) <- j) by_rel;
      a
    end
  in
  let release = Array.make n 0. and weight = Array.make n 0. and min_size = Array.make n 0. in
  Array.iteri
    (fun id (j : Job.t) ->
      release.(id) <- j.Job.release;
      weight.(id) <- j.Job.weight;
      min_size.(id) <- Job.min_size j)
    jobs;
  let size_col = Array.make (max 1 (m * n)) 0. in
  let dens_col = Array.make (max 1 (m * n)) 0. in
  for i = 0 to m - 1 do
    let base = i * n in
    for id = 0 to n - 1 do
      let p = Job.size jobs.(id) i in
      size_col.(base + id) <- p;
      dens_col.(base + id) <- weight.(id) /. p
    done
  done;
  let heap mk = Array.init m (fun i -> Pqueue.Iheap.create ~less:(mk (i * n)) ()) in
  let facc = Array.make facc_len 0. in
  facc.(f_total_weight) <- Instance.total_weight instance;
  {
    instance;
    n;
    m;
    stride = n;
    retire = false;
    jobs;
    release;
    weight;
    min_size;
    size_col;
    dens_col;
    by_spt = heap (fun base -> less_spt size_col release base);
    by_spt_rev = heap (fun base -> less_spt_rev size_col release base);
    by_density = heap (fun base -> less_density dens_col release base);
    by_size_id = heap (fun base -> less_size_id size_col base);
    by_fifo = Array.init m (fun _ -> Pqueue.Iheap.create ~less:(less_fifo release) ());
    live_spt_rev = false;
    live_density = false;
    live_size_id = false;
    live_fifo = false;
    p_work = Array.make m 0.;
    p_weight = Array.make m 0.;
    run_job = Array.make m (-1);
    run_started = Array.make m 0.;
    run_rate = Array.make m 0.;
    run_finish = Array.make m 0.;
    epoch = Array.make m 0;
    loc = Array.make n loc_unreleased;
    events = Pqueue.Events.create ();
    seq = 0;
    facc;
    a_completed = 0;
    a_rejected = 0;
    a_mid_run = 0;
    saw_restart = false;
    out_kind = Array.make n out_none;
    out_machine = Array.make n 0;
    out_t0 = Array.make n 0.;
    out_speed = Array.make n 0.;
    out_finish = Array.make n 0.;
    out_running = Array.make n false;
    (* Growth policy for cluster scale: each job lays at most one segment
       unless restarts occur, so presizing to [n] turns the doubling
       cascade (24 reallocation rounds and ~2x transient copies at 10^7
       jobs) into a single allocation.  Restart-heavy runs still grow by
       doubling past [n]. *)
    seg_job = Array.make (max 16 n) 0;
    seg_machine = Array.make (max 16 n) 0;
    seg_start = Array.make (max 16 n) 0.;
    seg_stop = Array.make (max 16 n) 0.;
    seg_speed = Array.make (max 16 n) 0.;
    seg_len = 0;
  }

(* ------------------------------------------------------------------ *)
(* Streaming construction: a state over the machine fleet alone, with job
   columns that grow as [add_job] feeds arrivals in.  Job ids need not
   come in order (instances are not release-sorted by id), but the column
   capacity tracks the largest id seen. *)

let of_stream ~machines =
  (* Machines-only stand-in: validates the fleet (ids 0..m-1) exactly as
     a batch instance would; [set_instance] replaces it at close. *)
  let instance = Instance.create ~name:"stream" ~machines:(Array.copy machines) ~jobs:[] () in
  of_instance instance

(* Double the job capacity to cover [id].  The scalar columns blit; the
   per-(machine, job) matrices re-lay row by row at the new stride; the
   heap comparators — closed over the old arrays — are re-blessed onto
   the new ones.  Cold: amortized O(1) per fed job. *)
let grow_columns t id =
  let cap = t.stride in
  if id >= cap then begin
    let ncap = max 16 (max (id + 1) (2 * cap)) in
    let grow_f a = let b = Array.make ncap 0. in Array.blit a 0 b 0 t.n; b in
    let grow_i fill a = let b = Array.make ncap fill in Array.blit a 0 b 0 t.n; b in
    let njobs = Array.make ncap retired_job in
    Array.blit t.jobs 0 njobs 0 t.n;
    t.jobs <- njobs;
    t.release <- grow_f t.release;
    t.weight <- grow_f t.weight;
    t.min_size <- grow_f t.min_size;
    t.loc <- grow_i loc_unreleased t.loc;
    t.out_kind <- grow_i out_none t.out_kind;
    t.out_machine <- grow_i 0 t.out_machine;
    t.out_t0 <- grow_f t.out_t0;
    t.out_speed <- grow_f t.out_speed;
    t.out_finish <- grow_f t.out_finish;
    let nrun = Array.make ncap false in
    Array.blit t.out_running 0 nrun 0 t.n;
    t.out_running <- nrun;
    let nsz = Array.make (max 1 (t.m * ncap)) 0. in
    let ndn = Array.make (max 1 (t.m * ncap)) 0. in
    for i = 0 to t.m - 1 do
      Array.blit t.size_col (i * cap) nsz (i * ncap) t.n;
      Array.blit t.dens_col (i * cap) ndn (i * ncap) t.n
    done;
    t.size_col <- nsz;
    t.dens_col <- ndn;
    t.stride <- ncap;
    rebless_heaps t
  end

let add_job t (j : Job.t) =
  let id = j.Job.id in
  if Array.length j.Job.sizes <> t.m then
    invalid_arg
      (Printf.sprintf "Flat_state.add_job: job %d has %d sizes for %d machines" id
         (Array.length j.Job.sizes) t.m);
  grow_columns t id;
  if t.loc.(id) <> loc_unreleased then
    invalid_arg (Printf.sprintf "Flat_state.add_job: job %d already added" id);
  t.jobs.(id) <- j;
  t.release.(id) <- j.Job.release;
  t.weight.(id) <- j.Job.weight;
  t.min_size.(id) <- Job.min_size j;
  for i = 0 to t.m - 1 do
    let p = Job.size j i in
    t.size_col.((i * t.stride) + id) <- p;
    t.dens_col.((i * t.stride) + id) <- j.Job.weight /. p
  done;
  if id >= t.n then t.n <- id + 1;
  t.loc.(id) <- loc_queued;
  t.facc.(f_total_weight) <- t.facc.(f_total_weight) +. j.Job.weight;
  t.seq <- t.seq + 1;
  Pqueue.Events.push t.events ~key:j.Job.release
    ~tag:(Pqueue.Events.Key.arrival_tag ~seq:t.seq)
    ~payload:id

(* Pre-size for a known job count: one growth instead of a doubling
   cascade, and the event queue holds all arrivals at once — how the
   batch wrapper keeps [of_instance]'s allocation profile. *)
let reserve t cap =
  if cap > 0 then begin
    grow_columns t (cap - 1);
    Pqueue.Events.ensure_capacity t.events cap
  end

let set_retire t on = t.retire <- on
let retire t = t.retire

let set_instance t instance =
  if Instance.m instance <> t.m then
    invalid_arg
      (Printf.sprintf "Flat_state.set_instance: %d machines, state has %d" (Instance.m instance)
         t.m);
  if Instance.n instance <> t.n then
    invalid_arg
      (Printf.sprintf "Flat_state.set_instance: %d jobs, state has %d" (Instance.n instance) t.n);
  t.instance <- instance

(* ------------------------------------------------------------------ *)
(* Immutable reads. *)

let[@rejlint.hot] instance t = t.instance
let[@rejlint.hot] n t = t.n
let[@rejlint.hot] m t = t.m
let[@rejlint.hot] job t id = t.jobs.(id)
let[@rejlint.hot] release t id = t.release.(id)
let[@rejlint.hot] weight t id = t.weight.(id)
let[@rejlint.hot] min_size t id = t.min_size.(id)
let[@rejlint.hot] size t ~machine ~job = t.size_col.((machine * t.stride) + job)
let[@rejlint.hot] eligible t ~machine ~job = Float.is_finite (size t ~machine ~job)

(* Candidate-set provenance for the flight recorder: how many machines a
   job is eligible for, and their bitmask (bit [k] for machine [k] up to
   61; higher machines saturate into bit 62).  Accumulator recursion over
   the size column, kept in this module on purpose: the compiler does
   not inline calls inside recursive bodies, so a cross-module accessor
   would box its float result on every probe, while the direct array
   read here stays allocation-free.  [p -. p = 0.] is [Float.is_finite]
   unfolded for the same reason. *)
let[@rejlint.hot] rec cand_mask_from t job k acc =
  if k >= t.m then acc
  else begin
    let p = t.size_col.((k * t.stride) + job) in
    cand_mask_from t job (k + 1)
      (if p -. p = 0. then acc lor (1 lsl (if k <= 61 then k else 62)) else acc)
  end

let[@rejlint.hot] rec cand_count_from t job k acc =
  if k >= t.m then acc
  else begin
    let p = t.size_col.((k * t.stride) + job) in
    cand_count_from t job (k + 1) (if p -. p = 0. then acc + 1 else acc)
  end

let[@rejlint.hot] cand_mask t ~job = cand_mask_from t job 0 0 [@@inline]
let[@rejlint.hot] cand_count t ~job = cand_count_from t job 0 0 [@@inline]
let[@rejlint.hot] density t ~machine ~job = t.dens_col.((machine * t.stride) + job)
let[@rejlint.hot] total_weight t = t.facc.(f_total_weight)
let[@rejlint.hot] alpha t i = (Instance.machine t.instance i).Machine.alpha
let[@rejlint.hot] mach_speed t i = (Instance.machine t.instance i).Machine.speed

(* ------------------------------------------------------------------ *)
(* Clock and status. *)

let[@rejlint.hot] clock t = t.facc.(f_clock)
let[@rejlint.hot] set_clock t v = t.facc.(f_clock) <- v
let[@rejlint.hot] loc t id = t.loc.(id)
let[@rejlint.hot] set_loc t id l = t.loc.(id) <- l
let[@rejlint.hot] saw_restart t = t.saw_restart
let[@rejlint.hot] set_saw_restart t = t.saw_restart <- true

(* ------------------------------------------------------------------ *)
(* Pending sets. *)

let[@rejlint.hot] pend_add t i id =
  Pqueue.Iheap.add t.by_spt.(i) ~id;
  if t.live_spt_rev then Pqueue.Iheap.add t.by_spt_rev.(i) ~id;
  if t.live_density then Pqueue.Iheap.add t.by_density.(i) ~id;
  if t.live_size_id then Pqueue.Iheap.add t.by_size_id.(i) ~id;
  if t.live_fifo then Pqueue.Iheap.add t.by_fifo.(i) ~id;
  t.p_work.(i) <- t.p_work.(i) +. size t ~machine:i ~job:id;
  t.p_weight.(i) <- t.p_weight.(i) +. t.weight.(id)

let[@rejlint.hot] pend_remove t i id =
  if not (Pqueue.Iheap.remove t.by_spt.(i) ~id) then false
  else begin
    if t.live_spt_rev then ignore (Pqueue.Iheap.remove t.by_spt_rev.(i) ~id);
    if t.live_density then ignore (Pqueue.Iheap.remove t.by_density.(i) ~id);
    if t.live_size_id then ignore (Pqueue.Iheap.remove t.by_size_id.(i) ~id);
    if t.live_fifo then ignore (Pqueue.Iheap.remove t.by_fifo.(i) ~id);
    if Pqueue.Iheap.is_empty t.by_spt.(i) then begin
      (* Pin the aggregates back to exactly zero so float cancellation
         drift cannot survive an empty queue. *)
      t.p_work.(i) <- 0.;
      t.p_weight.(i) <- 0.
    end
    else begin
      t.p_work.(i) <- t.p_work.(i) -. size t ~machine:i ~job:id;
      t.p_weight.(i) <- t.p_weight.(i) -. t.weight.(id)
    end;
    true
  end

let[@rejlint.hot] pend_count t i = Pqueue.Iheap.size t.by_spt.(i)
let[@rejlint.hot] pend_work t i = t.p_work.(i)
let[@rejlint.hot] pend_weight t i = t.p_weight.(i)
let[@rejlint.hot] pend_iter t i ~f = Pqueue.Iheap.iter t.by_spt.(i) ~f
let[@rejlint.hot] head_spt t i = Pqueue.Iheap.min_id t.by_spt.(i)

(* First head lookup on a dormant order: fill its heaps from the current
   pending sets and flip it live.  The rebuilt layout differs from the
   always-incremental one, but the only observable — the minimum under a
   strict total order — does not depend on layout. *)
let wake t aux =
  for i = 0 to t.m - 1 do
    Pqueue.Iheap.iter t.by_spt.(i) ~f:(fun id -> Pqueue.Iheap.add aux.(i) ~id)
  done

let[@rejlint.hot] head_spt_rev t i =
  if not t.live_spt_rev then begin
    wake t t.by_spt_rev;
    t.live_spt_rev <- true
  end;
  Pqueue.Iheap.min_id t.by_spt_rev.(i)

let[@rejlint.hot] head_density t i =
  if not t.live_density then begin
    wake t t.by_density;
    t.live_density <- true
  end;
  Pqueue.Iheap.min_id t.by_density.(i)

let[@rejlint.hot] head_size_id t i =
  if not t.live_size_id then begin
    wake t t.by_size_id;
    t.live_size_id <- true
  end;
  Pqueue.Iheap.min_id t.by_size_id.(i)

let[@rejlint.hot] head_fifo t i =
  if not t.live_fifo then begin
    wake t t.by_fifo;
    t.live_fifo <- true
  end;
  Pqueue.Iheap.min_id t.by_fifo.(i)

(* ------------------------------------------------------------------ *)
(* Running slots. *)

let[@rejlint.hot] run_job t i = t.run_job.(i)
let[@rejlint.hot] run_started t i = t.run_started.(i)
let[@rejlint.hot] run_rate t i = t.run_rate.(i)
let[@rejlint.hot] run_finish t i = t.run_finish.(i)
let[@rejlint.hot] epoch t i = t.epoch.(i)
let[@rejlint.hot] bump_epoch t i = t.epoch.(i) <- t.epoch.(i) + 1

let[@rejlint.hot] set_running t i ~job ~started ~rate ~finish =
  t.run_job.(i) <- job;
  t.run_started.(i) <- started;
  t.run_rate.(i) <- rate;
  t.run_finish.(i) <- finish

let[@rejlint.hot] clear_running t i = t.run_job.(i) <- -1

(* ------------------------------------------------------------------ *)
(* Events.  The shared [seq] counter mirrors the boxed driver's: arrivals
   are seeded first (in release order), completions take the next values
   as starts happen, so tags — and therefore equal-time ordering — come
   out identical. *)

let seed_arrivals t =
  (* One allocation instead of a doubling cascade: the queue holds all
     [n] arrivals at once before the first pop, and completions reuse
     the slots arrivals free up. *)
  Pqueue.Events.ensure_capacity t.events t.n;
  Array.iter
    (fun (j : Job.t) ->
      t.seq <- t.seq + 1;
      Pqueue.Events.push t.events ~key:j.Job.release
        ~tag:(Pqueue.Events.Key.arrival_tag ~seq:t.seq)
        ~payload:j.Job.id)
    (Instance.jobs_by_release t.instance)

let[@rejlint.hot] push_finish t ~machine ~time =
  t.seq <- t.seq + 1;
  Pqueue.Events.push t.events ~key:time
    ~tag:(Pqueue.Events.Key.finish_tag ~seq:t.seq)
    ~payload:(Pqueue.Events.Key.finish_payload ~machine ~epoch:t.epoch.(machine))

let[@rejlint.hot] next_event t = Pqueue.Events.pop t.events

(* Bounded pop for [Driver.Session.drain_until]: stop at the horizon.
   [~limit:infinity] behaves exactly like [next_event] (all queued keys
   are finite), which is how a session's close drains the queue dry. *)
let[@rejlint.hot] next_event_before t ~limit = Pqueue.Events.pop_before t.events ~limit
let[@rejlint.hot] events_pushed t = t.seq

(* Smallest queued event key, or [infinity] when the queue is idle — the
   serve loop's "how far may I drain without outrunning the stream"
   probe. *)
let next_key t = if Pqueue.Events.is_empty t.events then infinity else Pqueue.Events.peek_key t.events
let[@rejlint.hot] ev_time t = Pqueue.Events.key t.events
let[@rejlint.hot] ev_tag t = Pqueue.Events.tag t.events
let[@rejlint.hot] ev_payload t = Pqueue.Events.payload t.events

(* ------------------------------------------------------------------ *)
(* Segments and accounting.  Operation order copies the boxed driver's
   [lay_segment_raw] / [account_completion] / [account_rejection]
   verbatim — float addition is not associative, and the differential
   tests demand byte-identity, not closeness. *)

let grow_segments t =
  let cap = Array.length t.seg_job in
  if t.seg_len = cap then begin
    let ncap = max 16 (2 * cap) in
    let nj = Array.make ncap 0
    and nm = Array.make ncap 0
    and na = Array.make ncap 0.
    and no = Array.make ncap 0.
    and ns = Array.make ncap 0. in
    Array.blit t.seg_job 0 nj 0 t.seg_len;
    Array.blit t.seg_machine 0 nm 0 t.seg_len;
    Array.blit t.seg_start 0 na 0 t.seg_len;
    Array.blit t.seg_stop 0 no 0 t.seg_len;
    Array.blit t.seg_speed 0 ns 0 t.seg_len;
    t.seg_job <- nj;
    t.seg_machine <- nm;
    t.seg_start <- na;
    t.seg_stop <- no;
    t.seg_speed <- ns
  end

let[@rejlint.hot] lay_segment t ~job ~machine ~start ~stop ~speed =
  (* Rolling retirement folds the segment straight into the energy and
     makespan accumulators below without storing it — the whole point of
     the mode is that memory stays independent of run length. *)
  if not t.retire then begin
    grow_segments t;
    let s = t.seg_len in
    t.seg_job.(s) <- job;
    t.seg_machine.(s) <- machine;
    t.seg_start.(s) <- start;
    t.seg_stop.(s) <- stop;
    t.seg_speed.(s) <- speed;
    t.seg_len <- s + 1
  end;
  t.facc.(f_energy) <- t.facc.(f_energy) +. ((stop -. start) *. (speed ** alpha t machine));
  if stop > t.facc.(f_makespan) then t.facc.(f_makespan) <- stop

let[@rejlint.hot] seg_count t = t.seg_len

let[@rejlint.hot] account_completion t id finish =
  let f = finish -. t.release.(id) in
  t.a_completed <- t.a_completed + 1;
  t.facc.(f_flow) <- t.facc.(f_flow) +. f;
  t.facc.(f_wflow) <- t.facc.(f_wflow) +. (t.weight.(id) *. f);
  if f > t.facc.(f_max_flow) then t.facc.(f_max_flow) <- f;
  let stretch = f /. t.min_size.(id) in
  if stretch > t.facc.(f_max_stretch) then t.facc.(f_max_stretch) <- stretch

let[@rejlint.hot] account_rejection t id time ~was_running =
  let f = time -. t.release.(id) in
  t.a_rejected <- t.a_rejected + 1;
  t.facc.(f_rej_flow) <- t.facc.(f_rej_flow) +. f;
  t.facc.(f_rej_wflow) <- t.facc.(f_rej_wflow) +. (t.weight.(id) *. f);
  t.facc.(f_rej_weight) <- t.facc.(f_rej_weight) +. t.weight.(id);
  if was_running then t.a_mid_run <- t.a_mid_run + 1

(* ------------------------------------------------------------------ *)
(* Outcomes. *)

let[@rejlint.hot] check_undecided t id =
  if t.out_kind.(id) <> out_none then
    (invalid_arg (Printf.sprintf "Flat_state: job %d already decided" id) [@rejlint.cold])

let[@rejlint.hot] outcome_completed t ~job ~machine ~start ~speed ~finish =
  check_undecided t job;
  t.out_kind.(job) <- out_completed;
  t.out_machine.(job) <- machine;
  t.out_t0.(job) <- start;
  t.out_speed.(job) <- speed;
  t.out_finish.(job) <- finish;
  (* Retirement: the settled job's boxed handle — and its per-machine
     sizes array — is the dominant per-job heap cost; drop it the moment
     nothing can read it again. *)
  if t.retire then t.jobs.(job) <- retired_job

let[@rejlint.hot] outcome_rejected t ~job ~machine ~time ~was_running =
  check_undecided t job;
  t.out_kind.(job) <- out_rejected;
  t.out_machine.(job) <- machine;
  t.out_t0.(job) <- time;
  t.out_running.(job) <- was_running;
  if t.retire then t.jobs.(job) <- retired_job

(* ------------------------------------------------------------------ *)
(* Live metrics, read out of the accumulators.  The field-by-field
   arithmetic matches the boxed driver's [live]. *)

let[@rejlint.hot] completed t = t.a_completed
let[@rejlint.hot] rejected t = t.a_rejected
let[@rejlint.hot] mid_run t = t.a_mid_run
let[@rejlint.hot] flow t = t.facc.(f_flow)
let[@rejlint.hot] wflow t = t.facc.(f_wflow)
let[@rejlint.hot] rej_flow t = t.facc.(f_rej_flow)
let[@rejlint.hot] rej_wflow t = t.facc.(f_rej_wflow)
let[@rejlint.hot] max_flow t = t.facc.(f_max_flow)
let[@rejlint.hot] max_stretch t = t.facc.(f_max_stretch)
let[@rejlint.hot] energy t = t.facc.(f_energy)
let[@rejlint.hot] makespan t = t.facc.(f_makespan)
let[@rejlint.hot] rej_weight t = t.facc.(f_rej_weight)

(* ------------------------------------------------------------------ *)
(* Materialization: the one deliberately boxing step, run once at the end
   of a simulation.  Segments go to the builder in insertion order —
   exactly the order the boxed driver laid them down — and outcomes by
   job id (the builder stores them in an id-indexed array, so the order
   of [set_outcome] calls is immaterial). *)

let to_schedule t =
  if t.retire then
    invalid_arg "Flat_state.to_schedule: segments were retired (rolling-retirement mode)";
  let b = Schedule.builder t.instance in
  for s = 0 to t.seg_len - 1 do
    Schedule.add_segment b
      {
        Schedule.job = t.seg_job.(s);
        machine = t.seg_machine.(s);
        start = t.seg_start.(s);
        stop = t.seg_stop.(s);
        speed = t.seg_speed.(s);
      }
  done;
  for id = 0 to t.n - 1 do
    let k = t.out_kind.(id) in
    if k = out_completed then
      Schedule.set_outcome b id
        (Outcome.Completed
           {
             machine = t.out_machine.(id);
             start = t.out_t0.(id);
             speed = t.out_speed.(id);
             finish = t.out_finish.(id);
           })
    else if k = out_rejected then
      Schedule.set_outcome b id
        (Outcome.Rejected
           {
             time = t.out_t0.(id);
             assigned_to = Some t.out_machine.(id);
             was_running = t.out_running.(id);
           })
  done;
  Schedule.finalize b

let invariant t =
  let ok = ref true in
  for i = 0 to t.m - 1 do
    if not (Pqueue.Iheap.invariant t.by_spt.(i)) then ok := false;
    if not (Pqueue.Iheap.invariant t.by_spt_rev.(i)) then ok := false;
    if not (Pqueue.Iheap.invariant t.by_density.(i)) then ok := false;
    if not (Pqueue.Iheap.invariant t.by_size_id.(i)) then ok := false;
    if not (Pqueue.Iheap.invariant t.by_fifo.(i)) then ok := false;
    let k = Pqueue.Iheap.size t.by_spt.(i) in
    (* A live auxiliary order mirrors [by_spt] exactly; a dormant one
       holds nothing at all. *)
    let aux_ok live aux = Pqueue.Iheap.size aux = if live then k else 0 in
    if not (aux_ok t.live_spt_rev t.by_spt_rev.(i)) then ok := false;
    if not (aux_ok t.live_density t.by_density.(i)) then ok := false;
    if not (aux_ok t.live_size_id t.by_size_id.(i)) then ok := false;
    if not (aux_ok t.live_fifo t.by_fifo.(i)) then ok := false
  done;
  !ok
