(** NDJSON export of a {!Trace.t}.

    Each event becomes one JSON object per line, tagged with {!schema} so
    downstream consumers can dispatch on record versions.  Floats use the
    shortest round-tripping decimal form, so exports are deterministic and
    byte-identical across equal traces. *)

val schema : string
(** Current record schema tag, ["rejsched.trace/1"].  Every emitted line
    carries it as its ["schema"] field. *)

val entry_line : Trace.entry -> string
(** One event as a single JSON object (no trailing newline). *)

val iter_lines : Trace.t -> (string -> unit) -> unit
(** Streams {!entry_line} over the events in chronological order; the
    callback owns the I/O (the library itself never writes). *)

val to_ndjson : Trace.t -> string
(** The whole trace, one line per event, each newline-terminated. *)

(** {1 Flight-recorder export ([rejsched.trace/2])}

    {!Sched_obs.Recorder} entries render under a bumped schema tag: /2
    lines keep every /1 field name and add the provenance columns — a
    ["seq"] absolute event number on every line, the candidate set
    (["cands"]/["mask"]), ["pending_work"] and ["score"] on dispatch,
    ["size"] on start, ["flow"] on complete, the budget counters
    (["rejected_total"]/["rejected_weight"]) on reject. *)

val schema_v2 : string
(** ["rejsched.trace/2"], the flight-recorder record schema. *)

val recorder_entry_line : Sched_obs.Recorder.entry -> string
(** One recorder entry as a single JSON object (no trailing newline). *)

val recorder_lines : ?last:int -> Sched_obs.Recorder.t -> string list
(** Retained entries oldest-first, one line each; [?last] keeps only the
    newest [n] (the forensics tail). *)

val recorder_to_ndjson : ?last:int -> Sched_obs.Recorder.t -> string
(** {!recorder_lines} joined, each line newline-terminated. *)

val schema_of_line : string -> string option
(** Reads the schema tag back off an emitted line — the round-trip for
    the tagging convention: every line this module produces yields
    [Some schema] / [Some schema_v2].  [None] if the line does not start
    with a schema field. *)
