(** NDJSON export of a {!Trace.t}.

    Each event becomes one JSON object per line, tagged with {!schema} so
    downstream consumers can dispatch on record versions.  Floats use the
    shortest round-tripping decimal form, so exports are deterministic and
    byte-identical across equal traces. *)

val schema : string
(** Current record schema tag, ["rejsched.trace/1"].  Every emitted line
    carries it as its ["schema"] field. *)

val entry_line : Trace.entry -> string
(** One event as a single JSON object (no trailing newline). *)

val iter_lines : Trace.t -> (string -> unit) -> unit
(** Streams {!entry_line} over the events in chronological order; the
    callback owns the I/O (the library itself never writes). *)

val to_ndjson : Trace.t -> string
(** The whole trace, one line per event, each newline-terminated. *)
