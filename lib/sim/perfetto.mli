(** Chrome [trace_event] JSON export of a flight recorder.

    The produced document opens directly in Perfetto (ui.perfetto.dev)
    or chrome://tracing: one thread row per machine (named via ["M"]
    metadata events), an ["X"] complete slice for every executed span —
    each {!Sched_obs.Recorder} start paired with the next
    complete/reject/restart on its machine — and ["i"] instant markers
    carrying the provenance payload at every rejection and restart.
    One simulation time unit renders as one millisecond.

    Pure string production and a dependency-free shape checker; callers
    own the I/O. *)

val to_chrome : machines:int -> Sched_obs.Recorder.t -> string
(** The whole recorder as one [{"traceEvents": [...]}] JSON document.
    Spans whose start or terminator was overwritten in the ring yield
    markers but no slice. *)

val validate : string -> (unit, string) result
(** Checks a document against the [trace_event] shape Perfetto expects:
    valid JSON, a top-level ["traceEvents"] array, and per event a
    string ["ph"]/["name"] plus numeric ["pid"], with ["ts"]/["tid"]
    (and ["dur"] for ["X"]) on timed events.  Used by the tests and by
    [rejsched trace]'s self-check; the error names the first offending
    event. *)
