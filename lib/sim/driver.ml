open Sched_model
module Rec = Sched_obs.Recorder

type running = { job : Job.t; started : Time.t; rate : float; finish : Time.t }

(* ------------------------------------------------------------------ *)
(* The driver has two interchangeable cores:

   - [Boxed]: the original implementation over [Job.t] records and
     [Pqueue.Indexed] heaps of boxed keys — the differential reference;
   - [Flat]: the default, running the same event loop over
     [Flat_state]'s struct-of-arrays representation so the steady state
     allocates nothing on the minor heap.

   Both produce byte-identical schedules, traces and telemetry (the
   differential suite pins this across the fuzz corpus and every
   registry policy); policies cannot observe which core is running —
   the [view] accessors below branch on it. *)

type impl = Boxed | Flat

let default_impl_ref = ref Flat
let set_default_impl i = default_impl_ref := i
let default_impl () = !default_impl_ref

(* ------------------------------------------------------------------ *)
(* Indexed pending sets (boxed core).

   Every ordering a policy may query is maintained as a Pqueue.Indexed
   heap over the machine's pending jobs, so insert, arbitrary removal
   (rejection) and head queries are all O(log k) instead of the seed's
   O(k) list scans.  Aggregate pending work/weight are carried
   incrementally for O(1) reads.  The float comparisons deliberately
   mirror the policies' original [<]/[>] comparisons (so e.g. -0. = 0.),
   and key ties fall through to the heap's id tie-break, reproducing the
   "ties by smaller id" convention of every policy order. *)

type pend = {
  by_spt : (Job.t, unit) Pqueue.Indexed.t;  (** (p_ij, release, id) ascending. *)
  by_spt_rev : (Job.t, unit) Pqueue.Indexed.t;  (** Same order, descending. *)
  by_density : (Job.t, unit) Pqueue.Indexed.t;
      (** weight/p_ij descending, ties release then id ascending. *)
  by_size_id : (Job.t, unit) Pqueue.Indexed.t;
      (** (p_ij, id) descending — the weighted Rule 2 victim order. *)
  by_fifo : (Job.t, unit) Pqueue.Indexed.t;  (** (release, id) ascending. *)
  mutable p_work : float;  (** Sum of p_ij over pending jobs. *)
  mutable p_weight : float;  (** Sum of weights over pending jobs. *)
}

let cmp_spt i (a : Job.t) (b : Job.t) =
  let pa = Job.size a i and pb = Job.size b i in
  if pa < pb then -1
  else if pa > pb then 1
  else if a.release < b.release then -1
  else if a.release > b.release then 1
  else 0

(* Reverse of [cmp_spt] including the id: the Rule 2 victim is the *max*
   of (p_ij, release, id), so equal (p, release) resolve to the larger id —
   the explicit flip keeps the heap's ascending-id fallback unreachable. *)
let cmp_spt_rev i (a : Job.t) (b : Job.t) =
  let c = cmp_spt i a b in
  if c <> 0 then -c else Int.compare b.id a.id

let cmp_density i (a : Job.t) (b : Job.t) =
  let da = a.weight /. Job.size a i and db = b.weight /. Job.size b i in
  if da > db then -1
  else if da < db then 1
  else if a.release < b.release then -1
  else if a.release > b.release then 1
  else 0

(* Descending size; equal sizes fall through to the heap's ascending-id
   tie-break, so min_elt is the largest size with the *smallest* id — the
   weighted rule wants the largest id, hence the explicit flip here. *)
let cmp_size_id i (a : Job.t) (b : Job.t) =
  let pa = Job.size a i and pb = Job.size b i in
  if pa > pb then -1 else if pa < pb then 1 else Int.compare b.id a.id

let cmp_fifo (a : Job.t) (b : Job.t) =
  if a.release < b.release then -1 else if a.release > b.release then 1 else 0

let pend_create i =
  {
    by_spt = Pqueue.Indexed.create ~cmp:(cmp_spt i) ();
    by_spt_rev = Pqueue.Indexed.create ~cmp:(cmp_spt_rev i) ();
    by_density = Pqueue.Indexed.create ~cmp:(cmp_density i) ();
    by_size_id = Pqueue.Indexed.create ~cmp:(cmp_size_id i) ();
    by_fifo = Pqueue.Indexed.create ~cmp:cmp_fifo ();
    p_work = 0.;
    p_weight = 0.;
  }

let pend_add p i (j : Job.t) =
  Pqueue.Indexed.add p.by_spt ~id:j.id ~key:j ();
  Pqueue.Indexed.add p.by_spt_rev ~id:j.id ~key:j ();
  Pqueue.Indexed.add p.by_density ~id:j.id ~key:j ();
  Pqueue.Indexed.add p.by_size_id ~id:j.id ~key:j ();
  Pqueue.Indexed.add p.by_fifo ~id:j.id ~key:j ();
  p.p_work <- p.p_work +. Job.size j i;
  p.p_weight <- p.p_weight +. j.weight

let pend_remove p i id =
  match Pqueue.Indexed.remove p.by_spt ~id with
  | None -> None
  | Some (j, ()) ->
      ignore (Pqueue.Indexed.remove p.by_spt_rev ~id);
      ignore (Pqueue.Indexed.remove p.by_density ~id);
      ignore (Pqueue.Indexed.remove p.by_size_id ~id);
      ignore (Pqueue.Indexed.remove p.by_fifo ~id);
      if Pqueue.Indexed.is_empty p.by_spt then begin
        (* Pin the aggregates back to exactly zero so float cancellation
           drift cannot survive an empty queue. *)
        p.p_work <- 0.;
        p.p_weight <- 0.
      end
      else begin
        p.p_work <- p.p_work -. Job.size j i;
        p.p_weight <- p.p_weight -. j.weight
      end;
      Some j

let pend_count p = Pqueue.Indexed.size p.by_spt

type machine_state = {
  mutable m_running : running option;
  mutable m_epoch : int;  (** Invalidates stale finish events after a mid-run
                              rejection. *)
  m_pend : pend;
}

(* ------------------------------------------------------------------ *)
(* Incremental metrics: maintained as outcomes and segments are laid down,
   so no post-hoc pass over the schedule is needed to read the run's
   objective values.  Float accumulation order differs from the post-hoc
   [Metrics] passes, so agreement is exact up to rounding (the
   differential tests pin it at 1e-9 relative). *)

type accum = {
  mutable a_completed : int;
  mutable a_flow : float;
  mutable a_wflow : float;
  mutable a_rej_flow : float;
  mutable a_rej_wflow : float;
  mutable a_max_flow : float;
  mutable a_max_stretch : float;
  mutable a_energy : float;
  mutable a_makespan : float;
  mutable a_rejected : int;
  mutable a_rej_weight : float;
  mutable a_mid_run : int;
}

type location = Unreleased | Pending of Machine.id | Running of Machine.id | Settled

(* Pre-resolved instrument cells: the hot path pays one mutable-field
   write per event, never a registry lookup. *)
type instr = {
  i_sink : Sched_obs.Sink.t;
  c_dispatch : Sched_obs.Metric.Counter.t;
  c_start : Sched_obs.Metric.Counter.t;
  c_complete : Sched_obs.Metric.Counter.t;
  c_reject : Sched_obs.Metric.Counter.t;
  c_reject_midrun : Sched_obs.Metric.Counter.t;
  c_restart : Sched_obs.Metric.Counter.t;
  g_pending : Sched_obs.Metric.Gauge.t array;
  g_inflight : Sched_obs.Metric.Gauge.t array;
}

type state = {
  instance : Instance.t;
  machines : machine_state array;
  loc : location array;  (** Indexed by job id. *)
  mutable clock : Time.t;
  builder : Schedule.builder;
  trace : Trace.t option;
  instr : instr option;
  recorder : Sched_obs.Recorder.t option;
  acc : accum;
  total_weight : float;
  mutable saw_restart : bool;
      (** Set when a running job is killed and requeued; picks the oracle's
          restart relaxation for [?check]. *)
}

(* The read-only window a policy looks through.  Wrapped once per run —
   never per call — so the hot path pays a tag dispatch, not an
   allocation. *)
type view = V_boxed of state | V_flat of Flat_state.t

let now = function V_boxed st -> st.clock | V_flat fs -> Flat_state.clock fs

let running_on v i =
  match v with
  | V_boxed st -> st.machines.(i).m_running
  | V_flat fs ->
      let id = Flat_state.run_job fs i in
      if id < 0 then None
      else
        Some
          {
            job = Flat_state.job fs id;
            started = Flat_state.run_started fs i;
            rate = Flat_state.run_rate fs i;
            finish = Flat_state.run_finish fs i;
          }

let remaining_volume v i =
  match v with
  | V_boxed st -> (
      match st.machines.(i).m_running with
      | None -> 0.
      | Some r -> Float.max 0. ((r.finish -. st.clock) *. r.rate))
  | V_flat fs ->
      if Flat_state.run_job fs i < 0 then 0.
      else
        Float.max 0.
          ((Flat_state.run_finish fs i -. Flat_state.clock fs) *. Flat_state.run_rate fs i)

let remaining_time v i =
  match v with
  | V_boxed st -> (
      match st.machines.(i).m_running with
      | None -> 0.
      | Some r -> Float.max 0. (r.finish -. st.clock))
  | V_flat fs ->
      if Flat_state.run_job fs i < 0 then 0.
      else Float.max 0. (Flat_state.run_finish fs i -. Flat_state.clock fs)

let pending v i =
  match v with
  | V_boxed st ->
      List.rev
        (Pqueue.Indexed.fold st.machines.(i).m_pend.by_spt ~init:[]
           ~f:(fun acc _ j () -> j :: acc))
  | V_flat fs ->
      let acc = ref [] in
      Flat_state.pend_iter fs i ~f:(fun id -> acc := Flat_state.job fs id :: !acc);
      List.rev !acc

let pending_iter v i f =
  match v with
  | V_boxed st -> Pqueue.Indexed.iter st.machines.(i).m_pend.by_spt ~f:(fun _ j () -> f j)
  | V_flat fs -> Flat_state.pend_iter fs i ~f:(fun id -> f (Flat_state.job fs id))

let pending_count v i =
  match v with
  | V_boxed st -> pend_count st.machines.(i).m_pend
  | V_flat fs -> Flat_state.pend_count fs i

let pending_work v i =
  match v with
  | V_boxed st -> st.machines.(i).m_pend.p_work
  | V_flat fs -> Flat_state.pend_work fs i

let pending_weight v i =
  match v with
  | V_boxed st -> st.machines.(i).m_pend.p_weight
  | V_flat fs -> Flat_state.pend_weight fs i

let head q = match Pqueue.Indexed.min_elt q with None -> None | Some (_, j, ()) -> Some j
let flat_head fs id = if id < 0 then None else Some (Flat_state.job fs id)

let pending_shortest v i =
  match v with
  | V_boxed st -> head st.machines.(i).m_pend.by_spt
  | V_flat fs -> flat_head fs (Flat_state.head_spt fs i)

let pending_longest v i =
  match v with
  | V_boxed st -> head st.machines.(i).m_pend.by_spt_rev
  | V_flat fs -> flat_head fs (Flat_state.head_spt_rev fs i)

let pending_densest v i =
  match v with
  | V_boxed st -> head st.machines.(i).m_pend.by_density
  | V_flat fs -> flat_head fs (Flat_state.head_density fs i)

let pending_longest_tie_id v i =
  match v with
  | V_boxed st -> head st.machines.(i).m_pend.by_size_id
  | V_flat fs -> flat_head fs (Flat_state.head_size_id fs i)

let pending_earliest v i =
  match v with
  | V_boxed st -> head st.machines.(i).m_pend.by_fifo
  | V_flat fs -> flat_head fs (Flat_state.head_fifo fs i)

type live_metrics = {
  flow : Metrics.flow;
  energy : float;
  rejection : Metrics.rejection;
  makespan : Time.t;
}

let live_of ~completed ~flow ~wflow ~rej_flow ~rej_wflow ~max_flow ~max_stretch ~energy
    ~makespan ~rejected ~rej_weight ~mid_run ~n ~total_weight =
  {
    flow =
      {
        Metrics.total = flow;
        weighted = wflow;
        total_with_rejected = flow +. rej_flow;
        weighted_with_rejected = wflow +. rej_wflow;
        max_flow;
        mean_flow = (if completed = 0 then 0. else flow /. float_of_int completed);
        max_stretch;
      };
    energy;
    rejection =
      {
        Metrics.count = rejected;
        fraction = (if n = 0 then 0. else float_of_int rejected /. float_of_int n);
        weight = rej_weight;
        weight_fraction = (if total_weight = 0. then 0. else rej_weight /. total_weight);
        mid_run;
      };
    makespan;
  }

let live v =
  match v with
  | V_boxed st ->
      let a = st.acc in
      live_of ~completed:a.a_completed ~flow:a.a_flow ~wflow:a.a_wflow
        ~rej_flow:a.a_rej_flow ~rej_wflow:a.a_rej_wflow ~max_flow:a.a_max_flow
        ~max_stretch:a.a_max_stretch ~energy:a.a_energy ~makespan:a.a_makespan
        ~rejected:a.a_rejected ~rej_weight:a.a_rej_weight ~mid_run:a.a_mid_run
        ~n:(Instance.n st.instance) ~total_weight:st.total_weight
  | V_flat fs ->
      live_of ~completed:(Flat_state.completed fs) ~flow:(Flat_state.flow fs)
        ~wflow:(Flat_state.wflow fs) ~rej_flow:(Flat_state.rej_flow fs)
        ~rej_wflow:(Flat_state.rej_wflow fs) ~max_flow:(Flat_state.max_flow fs)
        ~max_stretch:(Flat_state.max_stretch fs) ~energy:(Flat_state.energy fs)
        ~makespan:(Flat_state.makespan fs) ~rejected:(Flat_state.rejected fs)
        ~rej_weight:(Flat_state.rej_weight fs) ~mid_run:(Flat_state.mid_run fs)
        ~n:(Flat_state.n fs) ~total_weight:(Flat_state.total_weight fs)

type decision = { dispatch_to : Machine.id; reject : Job.id list; restart : Job.id list }

let dispatch i = { dispatch_to = i; reject = []; restart = [] }

type start = { job : Job.id; speed : float }

type 'a policy = {
  name : string;
  init : Instance.t -> 'a;
  on_arrival : 'a -> view -> Job.t -> decision;
  select : 'a -> view -> Machine.id -> start option;
}

type event = Arrival of Job.t | Finish of Machine.id * int

(* Event ordering at equal times: completions before arrivals, so that a
   policy dispatching at time t sees machines that just finished as idle;
   within a kind, insertion sequence (deterministic).  The flat core
   encodes the same tags through [Pqueue.Events.Key]. *)
let tag_finish seq = seq
let tag_arrival seq = (1 lsl 40) + seq

let record st ev = match st.trace with None -> () | Some tr -> Trace.record tr st.clock ev

(* Decision provenance for the flight recorder: the candidate machine
   set behind each dispatch, as a count and an eligibility bitmask (bit
   [i] for machine [i] up to 61; machines beyond that saturate into bit
   62).  One int-only O(m) scan per query, with no per-run table setup.
   The boxed core scans here; the flat core uses [Flat_state.cand_mask]/
   [cand_count], which live next to the size column so the recursive
   probes are direct array reads (calls inside recursive bodies are
   never inlined, so a cross-module float accessor would box). *)
let[@rejlint.hot] rec cand_mask_boxed (j : Job.t) m k acc =
  if k >= m then acc
  else
    cand_mask_boxed j m (k + 1)
      (if Job.eligible j k then acc lor (1 lsl (if k <= 61 then k else 62)) else acc)

let[@rejlint.hot] rec cand_count_boxed (j : Job.t) m k acc =
  if k >= m then acc
  else cand_count_boxed j m (k + 1) (if Job.eligible j k then acc + 1 else acc)

(* Kernighan popcount: when [m <= 62] no mask bit is shared, so the
   candidate count is the mask's popcount and the second eligibility
   scan (eight more float loads per dispatch in the bench fleet) is
   skipped; the saturated bit-62 case falls back to the full scan. *)
let[@rejlint.hot] rec popcount x acc =
  if x = 0 then acc else popcount (x land (x - 1)) (acc + 1)


(* ------------------------------------------------------------------ *)
(* Telemetry.  When a [Sched_obs.Obs.t] handle is supplied, the driver
   mirrors every trace-worthy event into counters and per-machine gauges
   and times its phases through the handle's sink.  Everything here is
   strictly observational: no value computed below ever flows back into a
   decision, so schedules are byte-identical with telemetry on or off
   (pinned by the differential tests). *)

let phase_on_arrival = "on_arrival"
let phase_select = "select"
let phase_segment = "segment"
let phase_heap = "heap"

let make_instr obs m =
  let reg = Sched_obs.Obs.registry obs in
  let machine_gauge name help =
    Array.init m (fun i ->
        Sched_obs.Registry.gauge reg ~help ~labels:[ ("machine", string_of_int i) ] name)
  in
  {
    i_sink = Sched_obs.Obs.sink obs;
    c_dispatch =
      Sched_obs.Registry.counter reg ~help:"Jobs dispatched to a machine" "sched_dispatch_total";
    c_start = Sched_obs.Registry.counter reg ~help:"Job executions started" "sched_start_total";
    c_complete = Sched_obs.Registry.counter reg ~help:"Jobs completed" "sched_complete_total";
    c_reject = Sched_obs.Registry.counter reg ~help:"Jobs rejected" "sched_reject_total";
    c_reject_midrun =
      Sched_obs.Registry.counter reg ~help:"Rejections that interrupted a running job"
        "sched_reject_midrun_total";
    c_restart =
      Sched_obs.Registry.counter reg ~help:"Running jobs killed and requeued"
        "sched_restart_total";
    g_pending = machine_gauge "sched_pending_jobs" "Dispatched and released, not yet started";
    g_inflight =
      machine_gauge "sched_inflight_jobs" "Dispatched, not yet completed or rejected";
  }

(* Lay down a segment and fold it into the incremental metrics. *)
let lay_segment_raw st (seg : Schedule.segment) =
  Schedule.add_segment st.builder seg;
  let alpha = (Instance.machine st.instance seg.machine).Machine.alpha in
  st.acc.a_energy <- st.acc.a_energy +. ((seg.stop -. seg.start) *. (seg.speed ** alpha));
  if seg.stop > st.acc.a_makespan then st.acc.a_makespan <- seg.stop

let lay_segment st seg =
  match st.instr with
  | None -> lay_segment_raw st seg
  | Some ins ->
      Sched_obs.Sink.time ins.i_sink phase_segment (fun () -> lay_segment_raw st seg)

let account_completion st (j : Job.t) finish =
  let a = st.acc in
  let f = finish -. j.release in
  a.a_completed <- a.a_completed + 1;
  a.a_flow <- a.a_flow +. f;
  a.a_wflow <- a.a_wflow +. (j.weight *. f);
  if f > a.a_max_flow then a.a_max_flow <- f;
  let stretch = f /. Job.min_size j in
  if stretch > a.a_max_stretch then a.a_max_stretch <- stretch

let account_rejection st (j : Job.t) time ~was_running =
  let a = st.acc in
  let f = time -. j.release in
  a.a_rejected <- a.a_rejected + 1;
  a.a_rej_flow <- a.a_rej_flow +. f;
  a.a_rej_wflow <- a.a_rej_wflow +. (j.weight *. f);
  a.a_rej_weight <- a.a_rej_weight +. j.weight;
  if was_running then a.a_mid_run <- a.a_mid_run + 1

let remove_pending st i id =
  match pend_remove st.machines.(i).m_pend i id with
  | Some j -> j
  | None -> invalid_arg (Printf.sprintf "Driver: job %d not pending" id)

let reject_job st id =
  let t = st.clock in
  match st.loc.(id) with
  | Pending i ->
      let j = remove_pending st i id in
      st.loc.(id) <- Settled;
      record st (Trace.Reject { job = id; machine = i; was_running = false; remaining = Job.size j i });
      (match st.instr with
      | None -> ()
      | Some ins ->
          Sched_obs.Metric.Counter.inc ins.c_reject;
          Sched_obs.Metric.Gauge.dec ins.g_pending.(i);
          Sched_obs.Metric.Gauge.dec ins.g_inflight.(i));
      Schedule.set_outcome st.builder id
        (Outcome.Rejected { time = t; assigned_to = Some i; was_running = false });
      account_rejection st j t ~was_running:false;
      (match st.recorder with
      | None -> ()
      | Some rc ->
          let s = Rec.reserve_reject rc ~job:id ~machine:i ~was_running:false
              ~rejected:st.acc.a_rejected in
          rc.Rec.floats.(s + Rec.o_time) <- t;
          rc.Rec.floats.(s + Rec.o_value) <- Job.size j i;
          rc.Rec.floats.(s + Rec.o_budget) <- st.acc.a_rej_weight);
      i
  | Running i ->
      let ms = st.machines.(i) in
      let r = match ms.m_running with Some r -> r | None -> assert false in
      assert (r.job.Job.id = id);
      ms.m_running <- None;
      ms.m_epoch <- ms.m_epoch + 1;
      st.loc.(id) <- Settled;
      let was_running = Time.gt t r.started in
      if was_running then
        lay_segment st
          { Schedule.job = id; machine = i; start = r.started; stop = t; speed = r.rate };
      let remaining = Float.max 0. ((r.finish -. t) *. r.rate) in
      record st (Trace.Reject { job = id; machine = i; was_running; remaining });
      (match st.instr with
      | None -> ()
      | Some ins ->
          Sched_obs.Metric.Counter.inc ins.c_reject;
          if was_running then Sched_obs.Metric.Counter.inc ins.c_reject_midrun;
          Sched_obs.Metric.Gauge.dec ins.g_inflight.(i));
      Schedule.set_outcome st.builder id
        (Outcome.Rejected { time = t; assigned_to = Some i; was_running });
      account_rejection st r.job t ~was_running;
      (match st.recorder with
      | None -> ()
      | Some rc ->
          let s = Rec.reserve_reject rc ~job:id ~machine:i ~was_running
              ~rejected:st.acc.a_rejected in
          rc.Rec.floats.(s + Rec.o_time) <- t;
          rc.Rec.floats.(s + Rec.o_value) <- remaining;
          rc.Rec.floats.(s + Rec.o_budget) <- st.acc.a_rej_weight);
      i
  | Unreleased -> invalid_arg (Printf.sprintf "Driver: rejecting unreleased job %d" id)
  | Settled -> invalid_arg (Printf.sprintf "Driver: rejecting settled job %d" id)

(* Kill a running job and return it (full size again) to the pending
   queue; its partial segment is kept for the wasted-work record. *)
let restart_job st id =
  let t = st.clock in
  match st.loc.(id) with
  | Running i ->
      let ms = st.machines.(i) in
      let r = match ms.m_running with Some r -> r | None -> assert false in
      assert (r.job.Job.id = id);
      ms.m_running <- None;
      ms.m_epoch <- ms.m_epoch + 1;
      if Time.gt t r.started then
        lay_segment st
          { Schedule.job = id; machine = i; start = r.started; stop = t; speed = r.rate };
      let wasted = Float.max 0. ((t -. r.started) *. r.rate) in
      st.saw_restart <- true;
      record st (Trace.Restart { job = id; machine = i; wasted });
      (match st.recorder with
      | None -> ()
      | Some rc ->
          let s = Rec.reserve_restart rc ~job:id ~machine:i in
          rc.Rec.floats.(s + Rec.o_time) <- t;
          rc.Rec.floats.(s + Rec.o_value) <- wasted);
      (match st.instr with
      | None -> ()
      | Some ins ->
          Sched_obs.Metric.Counter.inc ins.c_restart;
          Sched_obs.Metric.Gauge.inc ins.g_pending.(i));
      pend_add ms.m_pend i r.job;
      st.loc.(id) <- Pending i;
      i
  | Pending _ | Unreleased | Settled ->
      invalid_arg (Printf.sprintf "Driver: restarting job %d that is not running" id)

let try_start st vw queue seq policy pstate i =
  let ms = st.machines.(i) in
  match ms.m_running with
  | Some _ -> ()
  | None ->
      if pend_count ms.m_pend > 0 then begin
        let choice =
          match st.instr with
          | None -> policy.select pstate vw i
          | Some ins ->
              Sched_obs.Sink.time ins.i_sink phase_select (fun () -> policy.select pstate vw i)
        in
        match choice with
        | None -> ()
        | Some { job; speed } ->
            if speed <= 0. || not (Float.is_finite speed) then
              invalid_arg (Printf.sprintf "Driver: policy %s chose speed %g" policy.name speed);
            (match st.loc.(job) with
            | Pending i' when i' = i -> ()
            | _ -> invalid_arg (Printf.sprintf "Driver: job %d is not pending on machine %d" job i));
            let j = remove_pending st i job in
            let machine = Instance.machine st.instance i in
            let rate = speed *. machine.Machine.speed in
            let size = Job.size j i in
            if not (Float.is_finite size) then
              invalid_arg (Printf.sprintf "Driver: starting job %d on ineligible machine %d" job i);
            let finish = st.clock +. (size /. rate) in
            ms.m_running <- Some { job = j; started = st.clock; rate; finish };
            st.loc.(job) <- Running i;
            record st (Trace.Start { job; machine = i; speed = rate });
            (match st.recorder with
            | None -> ()
            | Some rc ->
                let s = Rec.reserve_start rc ~job ~machine:i in
                rc.Rec.floats.(s + Rec.o_time) <- st.clock;
                rc.Rec.floats.(s + Rec.o_value) <- rate;
                rc.Rec.floats.(s + Rec.o_score) <- size);
            (match st.instr with
            | None -> ()
            | Some ins ->
                Sched_obs.Metric.Counter.inc ins.c_start;
                Sched_obs.Metric.Gauge.dec ins.g_pending.(i));
            incr seq;
            Pqueue.push queue ~key:finish ~tag:(tag_finish !seq) (Finish (i, ms.m_epoch))
      end

(* Post-run oracle audit for [?check].  The oracle re-derives every
   invariant from scratch (independent of [Schedule.validate] and of the
   incremental accumulators), so a pass here really is a second opinion. *)
let audit ?obs ?recorder ~name ~saw_restart lm schedule =
  let snap =
    {
      Sched_check.Oracle.flow = lm.flow;
      energy = lm.energy;
      rejection = lm.rejection;
      makespan = lm.makespan;
    }
  in
  let mode = Sched_check.Oracle.mode ~allow_restarts:saw_restart () in
  let vs = Sched_check.Oracle.check ~mode ~live:snap schedule in
  (match obs with
  | Some o -> Sched_check.Check_obs.record (Sched_obs.Obs.registry o) vs
  | None -> ());
  (* With a flight recorder attached, a violation carries its forensics:
     the last recorded decisions, as trace/2 NDJSON, appended to the
     oracle's message. *)
  match recorder with
  | None -> Sched_check.Oracle.assert_clean ~what:name vs
  | Some rc -> (
      try Sched_check.Oracle.assert_clean ~what:name vs
      with Sched_check.Oracle.Violations (what, vs) ->
        raise
          (Sched_check.Oracle.Violations
             ( what ^ "\n-- flight recorder tail --\n"
               ^ Trace_export.recorder_to_ndjson ~last:32 rc,
               vs )))

let run_boxed ?trace ?obs ?recorder ?(check = false) policy instance =
  let m = Instance.m instance in
  let st =
    {
      instance;
      machines =
        Array.init m (fun i -> { m_running = None; m_epoch = 0; m_pend = pend_create i });
      loc = Array.make (Instance.n instance) Unreleased;
      clock = 0.;
      builder = Schedule.builder instance;
      trace;
      instr = (match obs with None -> None | Some o -> Some (make_instr o m));
      recorder;
      acc =
        {
          a_completed = 0;
          a_flow = 0.;
          a_wflow = 0.;
          a_rej_flow = 0.;
          a_rej_wflow = 0.;
          a_max_flow = 0.;
          a_max_stretch = 0.;
          a_energy = 0.;
          a_makespan = 0.;
          a_rejected = 0;
          a_rej_weight = 0.;
          a_mid_run = 0;
        };
      total_weight = Instance.total_weight instance;
      saw_restart = false;
    }
  in
  let vw = V_boxed st in
  let pstate = policy.init instance in
  let queue = Pqueue.create () in
  let seq = ref 0 in
  Array.iter
    (fun (j : Job.t) ->
      incr seq;
      Pqueue.push queue ~key:j.release ~tag:(tag_arrival !seq) (Arrival j))
    (Instance.jobs_by_release instance);
  let pop =
    match st.instr with
    | None -> fun () -> Pqueue.pop queue
    | Some ins ->
        fun () -> Sched_obs.Sink.time ins.i_sink phase_heap (fun () -> Pqueue.pop queue)
  in
  let rec loop () =
    match pop () with
    | None -> ()
    | Some (time, _, ev) ->
        st.clock <- Float.max st.clock time;
        (match ev with
        | Finish (i, epoch) ->
            let ms = st.machines.(i) in
            (match ms.m_running with
            | Some r when ms.m_epoch = epoch ->
                let id = r.job.Job.id in
                ms.m_running <- None;
                lay_segment st
                  { Schedule.job = id; machine = i; start = r.started; stop = r.finish; speed = r.rate };
                Schedule.set_outcome st.builder id
                  (Outcome.Completed { machine = i; start = r.started; speed = r.rate; finish = r.finish });
                account_completion st r.job r.finish;
                st.loc.(id) <- Settled;
                record st (Trace.Complete { job = id; machine = i });
                (match st.recorder with
                | None -> ()
                | Some rc ->
                    let s = Rec.reserve_complete rc ~job:id ~machine:i in
                    rc.Rec.floats.(s + Rec.o_time) <- st.clock;
                    rc.Rec.floats.(s + Rec.o_value) <- r.finish -. r.job.Job.release);
                (match st.instr with
                | None -> ()
                | Some ins ->
                    Sched_obs.Metric.Counter.inc ins.c_complete;
                    Sched_obs.Metric.Gauge.dec ins.g_inflight.(i));
                try_start st vw queue seq policy pstate i
            | _ -> () (* Stale event: the job was rejected mid-run. *))
        | Arrival j ->
            let decision =
              match st.instr with
              | None -> policy.on_arrival pstate vw j
              | Some ins ->
                  Sched_obs.Sink.time ins.i_sink phase_on_arrival (fun () ->
                      policy.on_arrival pstate vw j)
            in
            let i = decision.dispatch_to in
            if i < 0 || i >= m then
              invalid_arg (Printf.sprintf "Driver: policy %s dispatched to machine %d" policy.name i);
            if not (Job.eligible j i) then
              invalid_arg
                (Printf.sprintf "Driver: policy %s dispatched job %d to ineligible machine %d"
                   policy.name j.id i);
            (match st.recorder with
            | None -> ()
            | Some rc ->
                let work = st.machines.(i).m_pend.p_work in
                let rem =
                  match st.machines.(i).m_running with
                  | None -> 0.
                  | Some ru ->
                      let r = (ru.finish -. st.clock) *. ru.rate in
                      if r > 0. then r else 0.
                in
                let mask = cand_mask_boxed j m 0 0 in
                let cands = if m <= 62 then popcount mask 0 else cand_count_boxed j m 0 0 in
                let s = Rec.reserve_dispatch rc ~job:j.id ~machine:i ~cands ~mask in
                rc.Rec.floats.(s + Rec.o_time) <- st.clock;
                rc.Rec.floats.(s + Rec.o_value) <- work;
                rc.Rec.floats.(s + Rec.o_score) <- work +. rem);
            pend_add st.machines.(i).m_pend i j;
            st.loc.(j.id) <- Pending i;
            record st (Trace.Dispatch { job = j.id; machine = i });
            (match st.instr with
            | None -> ()
            | Some ins ->
                Sched_obs.Metric.Counter.inc ins.c_dispatch;
                Sched_obs.Metric.Gauge.inc ins.g_pending.(i);
                Sched_obs.Metric.Gauge.inc ins.g_inflight.(i));
            let touched = List.map (reject_job st) decision.reject in
            let touched = touched @ List.map (restart_job st) decision.restart in
            List.iter
              (try_start st vw queue seq policy pstate)
              (List.sort_uniq Int.compare (i :: touched)));
        loop ()
  in
  loop ();
  (* A machine can only be idle with pending jobs if the policy returned
     [None] from [select]; then those jobs never finish.  Surface it. *)
  Array.iteri
    (fun i ms ->
      if pend_count ms.m_pend > 0 || ms.m_running <> None then
        invalid_arg
          (Printf.sprintf "Driver: policy %s left work unfinished on machine %d" policy.name i))
    st.machines;
  let schedule = Schedule.finalize st.builder in
  if check then
    audit ?obs ?recorder ~name:policy.name ~saw_restart:st.saw_restart (live vw) schedule;
  (schedule, pstate, vw)

(* ------------------------------------------------------------------ *)
(* The flat core.  Same event loop, same validation, same trace/telemetry
   sites, same float-operation order — but over [Flat_state]'s unboxed
   arrays, so the steady state allocates nothing beyond what the policy
   itself builds.  Every step below is a mirror of a [run_boxed] step;
   when editing one, edit both. *)

let c_flat_minor_words_name = "sched_flat_loop_minor_words_total"
let c_flat_events_name = "sched_flat_loop_events_total"

(* The flat core's per-event handlers, shared between [run_flat] and
   [run_sharded].  Everything is closed over one simulation's state;
   [push_finish i finish] abstracts the completion-event sink —
   [run_flat] pushes into the [Flat_state] queue, the sharded driver
   routes the event to the owning shard's heap (drawing tags from the
   same global sequence, so the merged pop order is unchanged).  Every
   mutation below happens on the submitting domain, in exactly the order
   [run_boxed] performs it; byte-identity across all entry points is
   pinned by the differential suites. *)
let make_flat_handlers ?trace ?recorder ~instr ~push_finish fs policy pstate vw =
  let m = Flat_state.m fs in
  let lay_segment ~job ~machine ~start ~stop ~speed =
    match instr with
    | None -> Flat_state.lay_segment fs ~job ~machine ~start ~stop ~speed
    | Some ins ->
        Sched_obs.Sink.time ins.i_sink phase_segment (fun () ->
            Flat_state.lay_segment fs ~job ~machine ~start ~stop ~speed)
  in
  (* [@rejlint.hot]: RJL103 statically proves these four loop bodies
     build no structures; the trace/instrumentation/failure arms that do
     allocate are individually marked [@rejlint.cold] (off in the
     steady state the dynamic minor-words ceiling measures). *)
  let[@rejlint.hot] reject_job id =
    let t = Flat_state.clock fs in
    let l = Flat_state.loc fs id in
    if Flat_state.loc_is_pending l then begin
      let i = Flat_state.loc_machine l in
      if not (Flat_state.pend_remove fs i id) then
        (invalid_arg (Printf.sprintf "Driver: job %d not pending" id) [@rejlint.cold]);
      Flat_state.set_loc fs id Flat_state.loc_settled;
      (match trace with
      | None -> ()
      | Some tr ->
          (Trace.record tr t
             (Trace.Reject
                {
                  job = id;
                  machine = i;
                  was_running = false;
                  remaining = Flat_state.size fs ~machine:i ~job:id;
                }) [@rejlint.cold]));
      (match instr with
      | None -> ()
      | Some ins ->
          Sched_obs.Metric.Counter.inc ins.c_reject;
          Sched_obs.Metric.Gauge.dec ins.g_pending.(i);
          Sched_obs.Metric.Gauge.dec ins.g_inflight.(i));
      Flat_state.outcome_rejected fs ~job:id ~machine:i ~time:t ~was_running:false;
      Flat_state.account_rejection fs id t ~was_running:false;
      (match recorder with
      | None -> ()
      | Some rc ->
          let s = Rec.reserve_reject rc ~job:id ~machine:i ~was_running:false
              ~rejected:(Flat_state.rejected fs) in
          rc.Rec.floats.(s + Rec.o_time) <- t;
          rc.Rec.floats.(s + Rec.o_value) <- Flat_state.size fs ~machine:i ~job:id;
          rc.Rec.floats.(s + Rec.o_budget) <- Flat_state.rej_weight fs);
      i
    end
    else if Flat_state.loc_is_running l then begin
      let i = Flat_state.loc_machine l in
      let started = Flat_state.run_started fs i
      and rate = Flat_state.run_rate fs i
      and fin = Flat_state.run_finish fs i in
      Flat_state.clear_running fs i;
      Flat_state.bump_epoch fs i;
      Flat_state.set_loc fs id Flat_state.loc_settled;
      let was_running = Time.gt t started in
      if was_running then
        lay_segment ~job:id ~machine:i ~start:started ~stop:t ~speed:rate;
      let remaining = Float.max 0. ((fin -. t) *. rate) in
      (match trace with
      | None -> ()
      | Some tr ->
          (Trace.record tr t (Trace.Reject { job = id; machine = i; was_running; remaining })
          [@rejlint.cold]));
      (match instr with
      | None -> ()
      | Some ins ->
          Sched_obs.Metric.Counter.inc ins.c_reject;
          if was_running then Sched_obs.Metric.Counter.inc ins.c_reject_midrun;
          Sched_obs.Metric.Gauge.dec ins.g_inflight.(i));
      Flat_state.outcome_rejected fs ~job:id ~machine:i ~time:t ~was_running;
      Flat_state.account_rejection fs id t ~was_running;
      (match recorder with
      | None -> ()
      | Some rc ->
          let s = Rec.reserve_reject rc ~job:id ~machine:i ~was_running
              ~rejected:(Flat_state.rejected fs) in
          rc.Rec.floats.(s + Rec.o_time) <- t;
          rc.Rec.floats.(s + Rec.o_value) <- remaining;
          rc.Rec.floats.(s + Rec.o_budget) <- Flat_state.rej_weight fs);
      i
    end
    else if l = Flat_state.loc_unreleased then
      (invalid_arg (Printf.sprintf "Driver: rejecting unreleased job %d" id) [@rejlint.cold])
    else (invalid_arg (Printf.sprintf "Driver: rejecting settled job %d" id) [@rejlint.cold])
  in
  let[@rejlint.hot] restart_job id =
    let t = Flat_state.clock fs in
    let l = Flat_state.loc fs id in
    if Flat_state.loc_is_running l then begin
      let i = Flat_state.loc_machine l in
      let started = Flat_state.run_started fs i and rate = Flat_state.run_rate fs i in
      Flat_state.clear_running fs i;
      Flat_state.bump_epoch fs i;
      if Time.gt t started then lay_segment ~job:id ~machine:i ~start:started ~stop:t ~speed:rate;
      let wasted = Float.max 0. ((t -. started) *. rate) in
      Flat_state.set_saw_restart fs;
      (match trace with
      | None -> ()
      | Some tr ->
          (Trace.record tr t (Trace.Restart { job = id; machine = i; wasted }) [@rejlint.cold]));
      (match recorder with
      | None -> ()
      | Some rc ->
          let s = Rec.reserve_restart rc ~job:id ~machine:i in
          rc.Rec.floats.(s + Rec.o_time) <- t;
          rc.Rec.floats.(s + Rec.o_value) <- wasted);
      (match instr with
      | None -> ()
      | Some ins ->
          Sched_obs.Metric.Counter.inc ins.c_restart;
          Sched_obs.Metric.Gauge.inc ins.g_pending.(i));
      Flat_state.pend_add fs i id;
      Flat_state.set_loc fs id (Flat_state.loc_pending ~machine:i);
      i
    end
    else (invalid_arg (Printf.sprintf "Driver: restarting job %d that is not running" id)
         [@rejlint.cold])
  in
  let[@rejlint.hot] try_start i =
    if Flat_state.run_job fs i < 0 && Flat_state.pend_count fs i > 0 then begin
      let choice =
        match instr with
        | None -> policy.select pstate vw i
        | Some ins ->
            (Sched_obs.Sink.time ins.i_sink phase_select (fun () -> policy.select pstate vw i)
            [@rejlint.cold])
      in
      match choice with
      | None -> ()
      | Some { job; speed } ->
          if speed <= 0. || not (Float.is_finite speed) then
            (invalid_arg (Printf.sprintf "Driver: policy %s chose speed %g" policy.name speed)
            [@rejlint.cold]);
          let l = Flat_state.loc fs job in
          if not (Flat_state.loc_is_pending l && Flat_state.loc_machine l = i) then
            (invalid_arg (Printf.sprintf "Driver: job %d is not pending on machine %d" job i)
            [@rejlint.cold]);
          if not (Flat_state.pend_remove fs i job) then
            (invalid_arg (Printf.sprintf "Driver: job %d not pending" job) [@rejlint.cold]);
          let rate = speed *. Flat_state.mach_speed fs i in
          let size = Flat_state.size fs ~machine:i ~job in
          if not (Float.is_finite size) then
            (invalid_arg (Printf.sprintf "Driver: starting job %d on ineligible machine %d" job i)
            [@rejlint.cold]);
          let clock = Flat_state.clock fs in
          let finish = clock +. (size /. rate) in
          Flat_state.set_running fs i ~job ~started:clock ~rate ~finish;
          Flat_state.set_loc fs job (Flat_state.loc_running ~machine:i);
          (match trace with
          | None -> ()
          | Some tr ->
              (Trace.record tr clock (Trace.Start { job; machine = i; speed = rate })
              [@rejlint.cold]));
          (match recorder with
          | None -> ()
          | Some rc ->
              let s = Rec.reserve_start rc ~job ~machine:i in
              rc.Rec.floats.(s + Rec.o_time) <- clock;
              rc.Rec.floats.(s + Rec.o_value) <- rate;
              rc.Rec.floats.(s + Rec.o_score) <- size);
          (match instr with
          | None -> ()
          | Some ins ->
              Sched_obs.Metric.Counter.inc ins.c_start;
              Sched_obs.Metric.Gauge.dec ins.g_pending.(i));
          push_finish i finish
    end
  in
  let[@rejlint.hot] commit_arrival (j : Job.t) decision =
    let id = j.Job.id in
    let i = decision.dispatch_to in
        if i < 0 || i >= m then
          (invalid_arg
             (Printf.sprintf "Driver: policy %s dispatched to machine %d" policy.name i)
          [@rejlint.cold]);
        if not (Flat_state.eligible fs ~machine:i ~job:id) then
          (invalid_arg
             (Printf.sprintf "Driver: policy %s dispatched job %d to ineligible machine %d"
                policy.name id i) [@rejlint.cold]);
        (match recorder with
        | None -> ()
        | Some rc ->
            let mask = Flat_state.cand_mask fs ~job:id in
            let cands = if m <= 62 then popcount mask 0 else Flat_state.cand_count fs ~job:id in
            let s = Rec.reserve_dispatch rc ~job:id ~machine:i ~cands ~mask in
            let work = Flat_state.pend_work fs i in
            let rem =
              if Flat_state.run_job fs i < 0 then 0.
              else begin
                let r =
                  (Flat_state.run_finish fs i -. Flat_state.clock fs)
                  *. Flat_state.run_rate fs i
                in
                if r > 0. then r else 0.
              end
            in
            rc.Rec.floats.(s + Rec.o_time) <- Flat_state.clock fs;
            rc.Rec.floats.(s + Rec.o_value) <- work;
            rc.Rec.floats.(s + Rec.o_score) <- work +. rem);
        Flat_state.pend_add fs i id;
        Flat_state.set_loc fs id (Flat_state.loc_pending ~machine:i);
        (match trace with
        | None -> ()
        | Some tr ->
            (Trace.record tr (Flat_state.clock fs) (Trace.Dispatch { job = id; machine = i })
            [@rejlint.cold]));
        (match instr with
        | None -> ()
        | Some ins ->
            Sched_obs.Metric.Counter.inc ins.c_dispatch;
            Sched_obs.Metric.Gauge.inc ins.g_pending.(i);
            Sched_obs.Metric.Gauge.inc ins.g_inflight.(i));
        (* The scrutinee avoids pairing the two lists up: a tuple pattern
           match would compile allocation-free anyway, but the static
           proof is structural and cannot assume that optimization. *)
        match decision.reject with
        | [] when decision.restart = [] ->
            (* [sort_uniq [i] = [i]]: the common no-rejection case skips
               the list plumbing but starts exactly the same machine. *)
            try_start i
        | _ ->
            (* Rejection path: list plumbing is O(#rejections), not
               O(#events), so it may allocate. *)
            ((let touched = List.map reject_job decision.reject in
              let touched = touched @ List.map restart_job decision.restart in
              List.iter try_start (List.sort_uniq Int.compare (i :: touched)))
            [@rejlint.cold])
  in
  let[@rejlint.hot] commit_finish i epoch =
    let id = Flat_state.run_job fs i in
    if id >= 0 && Flat_state.epoch fs i = epoch then begin
      let started = Flat_state.run_started fs i
      and rate = Flat_state.run_rate fs i
      and fin = Flat_state.run_finish fs i in
      Flat_state.clear_running fs i;
      lay_segment ~job:id ~machine:i ~start:started ~stop:fin ~speed:rate;
      Flat_state.outcome_completed fs ~job:id ~machine:i ~start:started ~speed:rate ~finish:fin;
      Flat_state.account_completion fs id fin;
      Flat_state.set_loc fs id Flat_state.loc_settled;
      (match trace with
      | None -> ()
      | Some tr ->
          (Trace.record tr (Flat_state.clock fs) (Trace.Complete { job = id; machine = i })
          [@rejlint.cold]));
      (match recorder with
      | None -> ()
      | Some rc ->
          let s = Rec.reserve_complete rc ~job:id ~machine:i in
          rc.Rec.floats.(s + Rec.o_time) <- Flat_state.clock fs;
          rc.Rec.floats.(s + Rec.o_value) <- fin -. Flat_state.release fs id);
      (match instr with
      | None -> ()
      | Some ins ->
          Sched_obs.Metric.Counter.inc ins.c_complete;
          Sched_obs.Metric.Gauge.dec ins.g_inflight.(i));
      try_start i
    end
    (* else: stale event, the job was rejected mid-run. *)
  in
  (commit_arrival, commit_finish)

(* ------------------------------------------------------------------ *)
(* The incremental session: the flat core as a long-lived engine.
   [run_flat] below is a thin wrapper — open, feed every job, close — so
   the batch path is literally a replay of the session path and every
   batch differential gate also pins this machinery.

   Why streaming is byte-identical to batch: arrival tags carry a high
   kind bit ([Pqueue.Events.Key.arrival_bit]), so cross-kind ordering at
   equal keys never consults the sequence number; within a kind, the
   relative tag order matches the batch run's (arrivals are fed in
   [(release, id)] order — [seed_arrivals]'s order, enforced by [feed] —
   and completions are scheduled in identical pop order, inductively).
   The feed contract — a job's arrival must enter the queue before any
   drain passes its release, enforced by the drained-horizon check — is
   therefore exactly the condition under which the pop sequence, and
   hence schedule, trace, recorder ring and live metrics, coincide with
   the uninterrupted batch run's, byte for byte. *)

type 'a session = {
  ss_policy : 'a policy;
  ss_pstate : 'a;
  ss_fs : Flat_state.t;
  ss_view : view;
  ss_trace : Trace.t option;
  ss_recorder : Rec.t option;
  ss_obs : Sched_obs.Obs.t option;
  ss_instr : instr option;
  ss_check : bool;
  ss_commit_arrival : Job.t -> decision -> unit;
  ss_commit_finish : int -> int -> unit;
  (* Float cells live in one-slot arrays so updates never box. *)
  ss_hwm : float array;  (** drained horizon: no event key below it remains *)
  ss_last_rel : float array;  (** release of the last fed job *)
  mutable ss_last_id : int;
  mutable ss_nfed : int;
  mutable ss_fed : Job.t list;
      (** Reverse feed order, for materializing the closing schedule's
          instance — empty in retire mode, which never materializes:
          retaining the job boxes would put an O(n) floor under the
          rolling-retirement memory bound the bench gates. *)
  mutable ss_closed : bool;
  ss_minor : float array;  (** minor words across all drains *)
  ss_batch : Instance.t option;
  ss_name : string;  (** name the materialized instance carries *)
}

(* Everything marshaled into a checkpoint.  Handlers, instruments and the
   policy's closures are rebuilt at thaw; [Marshal.Closures] covers the
   heap comparators inside [Flat_state.t] (closures over the very column
   arrays the state owns — sharing is preserved within the one marshal
   call) and pins the snapshot to the producing executable, which is the
   contract anyway (the container's version/checksum reject everything
   else first). *)
type 'a frozen = {
  z_fs : Flat_state.t;
  z_pstate : 'a;
  z_hwm : float;
  z_last_rel : float;
  z_last_id : int;
  z_nfed : int;
  z_fed : Job.t list;
  z_trace : Trace.t option;
  z_recorder : Rec.t option;
  z_check : bool;
  z_minor : float;
  z_batch : Instance.t option;
  z_name : string;
  z_iname : string;
}

let session_make ?trace ?obs ?recorder ~check ~retire ~batch ~name ~machines policy =
  if check && retire then
    invalid_arg "Driver.Session: cannot oracle-audit (check) a session that retires segments";
  let fs = Flat_state.of_stream ~machines in
  if retire then Flat_state.set_retire fs true;
  (match batch with
  | Some instance -> Flat_state.reserve fs (Instance.n instance)
  | None -> ());
  let vw = V_flat fs in
  let instr = match obs with None -> None | Some o -> Some (make_instr o (Array.length machines)) in
  let pstate = policy.init (match batch with Some i -> i | None -> Flat_state.instance fs) in
  let push_finish i finish = Flat_state.push_finish fs ~machine:i ~time:finish in
  let commit_arrival, commit_finish =
    make_flat_handlers ?trace ?recorder ~instr ~push_finish fs policy pstate vw
  in
  {
    ss_policy = policy;
    ss_pstate = pstate;
    ss_fs = fs;
    ss_view = vw;
    ss_trace = trace;
    ss_recorder = recorder;
    ss_obs = obs;
    ss_instr = instr;
    ss_check = check;
    ss_commit_arrival = commit_arrival;
    ss_commit_finish = commit_finish;
    ss_hwm = [| neg_infinity |];
    ss_last_rel = [| neg_infinity |];
    ss_last_id = -1;
    ss_nfed = 0;
    ss_fed = [];
    ss_closed = false;
    ss_minor = [| 0. |];
    ss_batch = batch;
    ss_name = name;
  }

let session_feed s (j : Job.t) =
  if s.ss_closed then invalid_arg "Driver.Session: feed on a closed session";
  let r = j.Job.release in
  if Float.is_nan r || r < s.ss_hwm.(0) then
    invalid_arg
      (Printf.sprintf "Driver.Session: job %d released at %g behind the drained horizon %g"
         j.Job.id r s.ss_hwm.(0));
  if r < s.ss_last_rel.(0) || (r = s.ss_last_rel.(0) && j.Job.id <= s.ss_last_id) then
    invalid_arg
      (Printf.sprintf
         "Driver.Session: job %d at %g breaks the strictly increasing (release, id) feed order"
         j.Job.id r);
  Flat_state.add_job s.ss_fs j;
  s.ss_last_rel.(0) <- r;
  s.ss_last_id <- j.Job.id;
  s.ss_nfed <- s.ss_nfed + 1;
  if not (Flat_state.retire s.ss_fs) then s.ss_fed <- j :: s.ss_fed

(* One bounded drain: [run_flat]'s event loop verbatim, except the pop
   refuses events beyond [limit] ([~limit:infinity] at close runs the
   queue dry, so batch runs execute this exact code).  [limit] is boxed
   once per call — captured by the [pop] closure — never per event. *)
let session_drain s ~limit =
  let fs = s.ss_fs in
  let policy = s.ss_policy and pstate = s.ss_pstate and vw = s.ss_view in
  let commit_arrival = s.ss_commit_arrival and commit_finish = s.ss_commit_finish in
  let instr = s.ss_instr in
  let pop =
    match instr with
    | None -> fun () -> Flat_state.next_event_before fs ~limit
    | Some ins ->
        fun () ->
          Sched_obs.Sink.time ins.i_sink phase_heap (fun () ->
              Flat_state.next_event_before fs ~limit)
  in
  let[@rejlint.hot] rec loop () =
    if pop () then begin
      Flat_state.set_clock fs (Float.max (Flat_state.clock fs) (Flat_state.ev_time fs));
      let tag = Flat_state.ev_tag fs in
      (if Pqueue.Events.Key.is_arrival ~tag then begin
         let id = Flat_state.ev_payload fs in
         let j = Flat_state.job fs id in
         let decision =
           match instr with
           | None -> policy.on_arrival pstate vw j
           | Some ins ->
               (Sched_obs.Sink.time ins.i_sink phase_on_arrival (fun () ->
                    policy.on_arrival pstate vw j) [@rejlint.cold])
         in
         commit_arrival j decision
       end
       else begin
         let payload = Flat_state.ev_payload fs in
         commit_finish
           (Pqueue.Events.Key.machine_of ~payload)
           (Pqueue.Events.Key.epoch_of ~payload)
       end);
      loop ()
    end
  in
  let w0 = Gc.minor_words () in
  loop ();
  let w1 = Gc.minor_words () in
  s.ss_minor.(0) <- s.ss_minor.(0) +. (w1 -. w0)

let session_drain_until s horizon =
  if s.ss_closed then invalid_arg "Driver.Session: drain_until on a closed session";
  if Float.is_nan horizon then invalid_arg "Driver.Session: drain_until NaN";
  session_drain s ~limit:horizon;
  if horizon > s.ss_hwm.(0) then s.ss_hwm.(0) <- horizon

let session_close s =
  if s.ss_closed then invalid_arg "Driver.Session: close on a closed session";
  session_drain s ~limit:infinity;
  s.ss_closed <- true;
  let fs = s.ss_fs in
  (match s.ss_obs with
  | None -> ()
  | Some o ->
      (* The allocations-per-event instrument: minor words allocated across
         the event loop (policy allocations included — the driver itself
         contributes none in steady state) over events processed.  Close
         runs the queue dry, so pushes = pops. *)
      let reg = Sched_obs.Obs.registry o in
      let cw =
        Sched_obs.Registry.counter reg
          ~help:"Minor-heap words allocated inside the flat event loop" c_flat_minor_words_name
      in
      let ce =
        Sched_obs.Registry.counter reg ~help:"Events processed by the flat event loop"
          c_flat_events_name
      in
      Sched_obs.Metric.Counter.add cw s.ss_minor.(0);
      Sched_obs.Metric.Counter.add ce (float_of_int (Flat_state.events_pushed fs)));
  for i = 0 to Flat_state.m fs - 1 do
    if Flat_state.pend_count fs i > 0 || Flat_state.run_job fs i >= 0 then
      invalid_arg
        (Printf.sprintf "Driver: policy %s left work unfinished on machine %d" s.ss_policy.name
           i)
  done;
  if Flat_state.retire fs then (None, s.ss_pstate, s.ss_view)
  else begin
    (match s.ss_batch with
    | Some instance -> Flat_state.set_instance fs instance
    | None ->
        (* Materialize the fed stream as a real instance so the schedule
           (and the oracle) get the same boxed shape batch runs produce.
           [Instance.create] re-validates — dense job ids included. *)
        let machines = (Flat_state.instance fs).Instance.machines in
        Flat_state.set_instance fs
          (Instance.create ~name:s.ss_name ~machines ~jobs:(List.rev s.ss_fed) ()));
    let schedule = Flat_state.to_schedule fs in
    if s.ss_check then
      audit ?obs:s.ss_obs ?recorder:s.ss_recorder ~name:s.ss_policy.name
        ~saw_restart:(Flat_state.saw_restart fs) (live s.ss_view) schedule;
    (Some schedule, s.ss_pstate, s.ss_view)
  end

let session_freeze s =
  if s.ss_closed then invalid_arg "Driver.Session: freeze on a closed session";
  Marshal.to_string
    {
      z_fs = s.ss_fs;
      z_pstate = s.ss_pstate;
      z_hwm = s.ss_hwm.(0);
      z_last_rel = s.ss_last_rel.(0);
      z_last_id = s.ss_last_id;
      z_nfed = s.ss_nfed;
      z_fed = s.ss_fed;
      z_trace = s.ss_trace;
      z_recorder = s.ss_recorder;
      z_check = s.ss_check;
      z_minor = s.ss_minor.(0);
      z_batch = s.ss_batch;
      z_name = s.ss_policy.name;
      z_iname = s.ss_name;
    }
    [ Marshal.Closures ]

let session_thaw ?obs policy payload =
  let z =
    try (Marshal.from_string payload 0 : _ frozen)
    with Failure msg -> invalid_arg ("Driver.Session: unreadable snapshot payload: " ^ msg)
  in
  if not (String.equal z.z_name policy.name) then
    invalid_arg
      (Printf.sprintf "Driver.Session: snapshot was taken under policy %s, not %s" z.z_name
         policy.name);
  let fs = z.z_fs in
  let vw = V_flat fs in
  let instr = match obs with None -> None | Some o -> Some (make_instr o (Flat_state.m fs)) in
  let push_finish i finish = Flat_state.push_finish fs ~machine:i ~time:finish in
  let commit_arrival, commit_finish =
    make_flat_handlers ?trace:z.z_trace ?recorder:z.z_recorder ~instr ~push_finish fs policy
      z.z_pstate vw
  in
  {
    ss_policy = policy;
    ss_pstate = z.z_pstate;
    ss_fs = fs;
    ss_view = vw;
    ss_trace = z.z_trace;
    ss_recorder = z.z_recorder;
    ss_obs = obs;
    ss_instr = instr;
    ss_check = z.z_check;
    ss_commit_arrival = commit_arrival;
    ss_commit_finish = commit_finish;
    ss_hwm = [| z.z_hwm |];
    ss_last_rel = [| z.z_last_rel |];
    ss_last_id = z.z_last_id;
    ss_nfed = z.z_nfed;
    ss_fed = z.z_fed;
    ss_closed = false;
    ss_minor = [| z.z_minor |];
    ss_batch = z.z_batch;
    ss_name = z.z_iname;
  }

module Session = struct
  type 'a t = 'a session

  let open_session ?trace ?obs ?recorder ?(check = false) ?(retire = false) ?(name = "stream")
      ~machines policy =
    session_make ?trace ?obs ?recorder ~check ~retire ~batch:None ~name ~machines policy

  let feed = session_feed
  let drain_until = session_drain_until
  let next_key s = Flat_state.next_key s.ss_fs
  let drained s = s.ss_hwm.(0)
  let fed s = s.ss_nfed
  let view s = s.ss_view
  let policy_state s = s.ss_pstate
  let live_metrics s = live s.ss_view
  let trace s = s.ss_trace

  let close s =
    let schedule, pstate, vw = session_close s in
    (schedule, pstate, live vw)

  let freeze = session_freeze
  let thaw = session_thaw
end

let run_flat ?trace ?obs ?recorder ?(check = false) policy instance =
  let s =
    session_make ?trace ?obs ?recorder ~check ~retire:false ~batch:(Some instance)
      ~name:instance.Instance.name ~machines:instance.Instance.machines policy
  in
  let jobs = Instance.jobs_by_release instance in
  for k = 0 to Array.length jobs - 1 do
    session_feed s jobs.(k)
  done;
  match session_close s with
  | Some schedule, pstate, vw -> (schedule, pstate, vw)
  | None, _, _ -> assert false

(* ------------------------------------------------------------------ *)
(* The sharded core: one run, S machine shards, a deterministic two-phase
   tick.

   Shard s owns the contiguous machine range [lo.(s), lo.(s+1)) and its
   own [Pqueue.Events] heap of completion events for those machines.
   Each event is processed in two phases:

   - phase 1 (propose, parallel): when the policy exports
     [sharded_hooks], every shard scans its own machines and proposes
     the leftmost strict-cost-minimum candidate for the arriving job.
     The scan is strictly read-only — [shard_cost] sees the driver state
     through the same read-only [view] policies always get, and the pool
     barrier ([Pool.run_shards]) gives the commit phase a happens-before
     edge over every proposal.
   - phase 2 (commit, sequential): proposals are folded in ascending
     shard order (strict-less replacement, so the fold equals a single
     ascending scan over all machines), [shard_resolve] turns the winner
     into a decision, and the decision — plus every completion event —
     is applied by exactly the handlers [run_flat] uses, on the
     submitting domain, in canonical event order.

   S-unobservability: completion events draw tags from one global
   sequence counter (arrivals implicitly hold seqs 1..n via the release
   cursor), so the merge-pop below realizes exactly the (key, tag) order
   [run_flat]'s single heap realizes, and every mutation happens in that
   order — schedules, traces, recorder rings and metrics are
   bit-identical at every S (the shard differential suite pins this at
   S in {1,2,4}).  Policies without hooks fall back to [on_arrival] in
   phase 2, sequentially; the result is still independent of S. *)

type 'a sharded_hooks = {
  shard_cost : 'a -> view -> Machine.id -> Job.t -> float;
  shard_resolve : 'a -> view -> Job.t -> target:Machine.id -> score:float -> decision;
}

let run_sharded ?trace ?obs ?recorder ?(check = false) ?hooks ?pool ~shards policy instance =
  if shards < 1 then
    invalid_arg (Printf.sprintf "Driver: shards must be >= 1 (got %d)" shards);
  let m = Instance.m instance in
  let n = Instance.n instance in
  let fs = Flat_state.of_instance instance in
  let vw = V_flat fs in
  let instr = match obs with None -> None | Some o -> Some (make_instr o m) in
  let pstate = policy.init instance in
  let s_count = shards in
  (* Shard geometry: contiguous, near-equal slices of the machine axis. *)
  let lo = Array.init (s_count + 1) (fun s -> s * m / s_count) in
  let owner = Array.make (max 1 m) 0 in
  for s = 0 to s_count - 1 do
    for i = lo.(s) to lo.(s + 1) - 1 do
      owner.(i) <- s
    done
  done;
  let heaps = Array.init s_count (fun _ -> Pqueue.Events.create ()) in
  (* One global insertion-sequence counter across every shard heap.
     Arrivals implicitly hold seqs 1..n (the release cursor below), so
     the first completion takes n+1 — the same tag
     [Flat_state.push_finish] would hand it after [seed_arrivals]. *)
  let seq = ref n in
  let push_finish i finish =
    incr seq;
    Pqueue.Events.push heaps.(owner.(i)) ~key:finish
      ~tag:(Pqueue.Events.Key.finish_tag ~seq:!seq)
      ~payload:(Pqueue.Events.Key.finish_payload ~machine:i ~epoch:(Flat_state.epoch fs i))
  in
  let commit_arrival, commit_finish =
    make_flat_handlers ?trace ?recorder ~instr ~push_finish fs policy pstate vw
  in
  (* Arrival cursor over the release-sorted job array: arrival k carries
     (key = release, tag = arrival_tag (k+1)) — the keys and tags
     [Flat_state.seed_arrivals] would push, without a heap. *)
  let jobs_rel = Instance.jobs_by_release instance in
  let acur = ref 0 in
  (* Merge-pop scratch: the best (key, tag) among the arrival head and
     the S shard heads.  Float arrays keep the key unboxed. *)
  let bk = Array.make 1 0. in
  let bt = ref 0 in
  let bsrc = ref (-2) in
  (* Source of the next event in canonical order: -1 the arrival cursor,
     s >= 0 shard s's heap, -2 drained.  All tags are globally unique,
     so the strict (key, tag) comparison picks a unique minimum — the
     exact element [run_flat]'s single heap would pop. *)
  let[@rejlint.hot] next_source () =
    bsrc := -2;
    if !acur < n then begin
      bsrc := -1;
      bk.(0) <- jobs_rel.(!acur).Job.release;
      bt := Pqueue.Events.Key.arrival_tag ~seq:(!acur + 1)
    end;
    for s = 0 to s_count - 1 do
      if not (Pqueue.Events.is_empty heaps.(s)) then begin
        let k = Pqueue.Events.peek_key heaps.(s) and t = Pqueue.Events.peek_tag heaps.(s) in
        if !bsrc = -2 || k < bk.(0) || (k = bk.(0) && t < !bt) then begin
          bsrc := s;
          bk.(0) <- k;
          bt := t
        end
      end
    done;
    !bsrc
  in
  let pop_src =
    match instr with
    | None -> next_source
    | Some ins -> fun () -> Sched_obs.Sink.time ins.i_sink phase_heap next_source
  in
  (* Phase-1 proposal slots, one per shard (written by the shard's task
     only, read after the barrier). *)
  let prop_i = Array.make s_count (-1) in
  let prop_c = Array.make s_count 0. in
  let[@rejlint.hot] propose_shard h (j : Job.t) s =
    let id = j.Job.id in
    let hi = lo.(s + 1) in
    prop_i.(s) <- -1;
    for i = lo.(s) to hi - 1 do
      if Flat_state.eligible fs ~machine:i ~job:id then begin
        let c = h.shard_cost pstate vw i j in
        (* Leftmost strict minimum — the update rule every registry
           argmin uses (keep the incumbent when [c' <= c]; costs are
           never NaN for eligible machines). *)
        if prop_i.(s) < 0 || c < prop_c.(s) then begin
          prop_i.(s) <- i;
          prop_c.(s) <- c
        end
      end
    done
  in
  (* Pool resolution stays free of process-global state (RJL102): an
     explicit [?pool], else the ambient pool when already inside a pool
     task, else sequential proposals — all three produce bit-identical
     schedules, only wall time differs. *)
  let propose_pool =
    match hooks with
    | None -> None
    | Some _ ->
        if s_count = 1 then None
        else (match pool with Some _ as p -> p | None -> Sched_stats.Pool.ambient_opt ())
  in
  let tc = Array.make 1 0. in
  let decide h (j : Job.t) =
    (match propose_pool with
    | Some p -> Sched_stats.Pool.run_shards p ~shards:s_count (fun s -> propose_shard h j s)
    | None ->
        for s = 0 to s_count - 1 do
          propose_shard h j s
        done);
    (* Ascending-shard fold with strict-less replacement: earlier shards
       win ties, so the fold equals one ascending scan over 0..m-1. *)
    let ti = ref (-1) in
    for s = 0 to s_count - 1 do
      if prop_i.(s) >= 0 && (!ti < 0 || prop_c.(s) < tc.(0)) then begin
        ti := prop_i.(s);
        tc.(0) <- prop_c.(s)
      end
    done;
    if !ti < 0 then
      invalid_arg
        (Printf.sprintf "Driver: policy %s found no eligible machine for job %d" policy.name
           j.Job.id)
    else h.shard_resolve pstate vw j ~target:!ti ~score:tc.(0)
  in
  let[@rejlint.hot] rec loop () =
    let src = pop_src () in
    if src >= -1 then begin
      (if src = -1 then begin
         let j = jobs_rel.(!acur) in
         incr acur;
         Flat_state.set_clock fs (Float.max (Flat_state.clock fs) j.Job.release);
         let decision =
           match hooks with
           | None -> (
               match instr with
               | None -> policy.on_arrival pstate vw j
               | Some ins ->
                   (Sched_obs.Sink.time ins.i_sink phase_on_arrival (fun () ->
                        policy.on_arrival pstate vw j) [@rejlint.cold]))
           | Some h -> (
               match instr with
               | None -> decide h j
               | Some ins ->
                   (Sched_obs.Sink.time ins.i_sink phase_on_arrival (fun () -> decide h j)
                   [@rejlint.cold]))
         in
         commit_arrival j decision
       end
       else begin
         let q = heaps.(src) in
         ignore (Pqueue.Events.pop q);
         Flat_state.set_clock fs (Float.max (Flat_state.clock fs) (Pqueue.Events.key q));
         let payload = Pqueue.Events.payload q in
         commit_finish
           (Pqueue.Events.Key.machine_of ~payload)
           (Pqueue.Events.Key.epoch_of ~payload)
       end);
      loop ()
    end
  in
  let w0 = Gc.minor_words () in
  loop ();
  let w1 = Gc.minor_words () in
  (match obs with
  | None -> ()
  | Some o ->
      (* Same instrument as [run_flat]'s: [!seq] counts arrivals plus
         scheduled completions, exactly what [events_pushed] reports
         there. *)
      let reg = Sched_obs.Obs.registry o in
      let cw =
        Sched_obs.Registry.counter reg
          ~help:"Minor-heap words allocated inside the flat event loop" c_flat_minor_words_name
      in
      let ce =
        Sched_obs.Registry.counter reg ~help:"Events processed by the flat event loop"
          c_flat_events_name
      in
      Sched_obs.Metric.Counter.add cw (w1 -. w0);
      Sched_obs.Metric.Counter.add ce (float_of_int !seq));
  for i = 0 to m - 1 do
    if Flat_state.pend_count fs i > 0 || Flat_state.run_job fs i >= 0 then
      invalid_arg
        (Printf.sprintf "Driver: policy %s left work unfinished on machine %d" policy.name i)
  done;
  let schedule = Flat_state.to_schedule fs in
  if check then
    audit ?obs ?recorder ~name:policy.name ~saw_restart:(Flat_state.saw_restart fs) (live vw)
      schedule;
  (schedule, pstate, live vw)

let run_view ?trace ?obs ?recorder ?check ?impl policy instance =
  (* The impl selector is benchmark plumbing, not policy state: both
     impls produce byte-identical schedules (enforced by the
     differential gates), so which one runs is unobservable to any
     policy decision. *)
  (* rejlint: allow policy-purity *)
  match (match impl with Some i -> i | None -> !default_impl_ref) with
  | Boxed -> run_boxed ?trace ?obs ?recorder ?check policy instance
  | Flat -> run_flat ?trace ?obs ?recorder ?check policy instance

let run ?trace ?obs ?recorder ?check ?impl policy instance =
  let schedule, pstate, _ = run_view ?trace ?obs ?recorder ?check ?impl policy instance in
  (schedule, pstate)

let run_live ?trace ?obs ?recorder ?check ?impl policy instance =
  let schedule, pstate, vw = run_view ?trace ?obs ?recorder ?check ?impl policy instance in
  (schedule, pstate, live vw)

let run_schedule ?trace ?obs ?recorder ?check ?impl policy instance =
  fst (run ?trace ?obs ?recorder ?check ?impl policy instance)
