open Sched_model

type running = { job : Job.t; started : Time.t; rate : float; finish : Time.t }

type machine_state = {
  mutable m_running : running option;
  mutable m_epoch : int;  (** Invalidates stale finish events after a mid-run
                              rejection. *)
  mutable m_pending : Job.t list;
}

type location = Unreleased | Pending of Machine.id | Running of Machine.id | Settled

type state = {
  instance : Instance.t;
  machines : machine_state array;
  loc : location array;  (** Indexed by job id. *)
  mutable clock : Time.t;
  builder : Schedule.builder;
  trace : Trace.t option;
}

type view = state

let now (v : view) = v.clock
let running_on (v : view) i = v.machines.(i).m_running

let remaining_volume (v : view) i =
  match v.machines.(i).m_running with
  | None -> 0.
  | Some r -> Float.max 0. ((r.finish -. v.clock) *. r.rate)

let remaining_time (v : view) i =
  match v.machines.(i).m_running with None -> 0. | Some r -> Float.max 0. (r.finish -. v.clock)

let pending (v : view) i = v.machines.(i).m_pending
let pending_count (v : view) i = List.length v.machines.(i).m_pending

type decision = { dispatch_to : Machine.id; reject : Job.id list; restart : Job.id list }

let dispatch i = { dispatch_to = i; reject = []; restart = [] }

type start = { job : Job.id; speed : float }

type 'a policy = {
  name : string;
  init : Instance.t -> 'a;
  on_arrival : 'a -> view -> Job.t -> decision;
  select : 'a -> view -> Machine.id -> start option;
}

type event = Arrival of Job.t | Finish of Machine.id * int

(* Event ordering at equal times: completions before arrivals, so that a
   policy dispatching at time t sees machines that just finished as idle;
   within a kind, insertion sequence (deterministic). *)
let tag_finish seq = seq
let tag_arrival seq = (1 lsl 40) + seq

let record st ev = match st.trace with None -> () | Some tr -> Trace.record tr st.clock ev

let remove_pending ms id =
  let found = ref false in
  let rest = List.filter (fun (j : Job.t) -> if j.id = id then (found := true; false) else true) ms.m_pending in
  if not !found then invalid_arg (Printf.sprintf "Driver: job %d not pending" id);
  ms.m_pending <- rest

let reject_job st id =
  let t = st.clock in
  match st.loc.(id) with
  | Pending i ->
      let ms = st.machines.(i) in
      remove_pending ms id;
      st.loc.(id) <- Settled;
      let j = Instance.job st.instance id in
      record st (Trace.Reject { job = id; machine = i; was_running = false; remaining = Job.size j i });
      Schedule.set_outcome st.builder id
        (Outcome.Rejected { time = t; assigned_to = Some i; was_running = false });
      i
  | Running i ->
      let ms = st.machines.(i) in
      let r = match ms.m_running with Some r -> r | None -> assert false in
      assert (r.job.Job.id = id);
      ms.m_running <- None;
      ms.m_epoch <- ms.m_epoch + 1;
      st.loc.(id) <- Settled;
      let was_running = Time.gt t r.started in
      if was_running then
        Schedule.add_segment st.builder
          { Schedule.job = id; machine = i; start = r.started; stop = t; speed = r.rate };
      let remaining = Float.max 0. ((r.finish -. t) *. r.rate) in
      record st (Trace.Reject { job = id; machine = i; was_running; remaining });
      Schedule.set_outcome st.builder id
        (Outcome.Rejected { time = t; assigned_to = Some i; was_running });
      i
  | Unreleased -> invalid_arg (Printf.sprintf "Driver: rejecting unreleased job %d" id)
  | Settled -> invalid_arg (Printf.sprintf "Driver: rejecting settled job %d" id)

(* Kill a running job and return it (full size again) to the pending
   queue; its partial segment is kept for the wasted-work record. *)
let restart_job st id =
  let t = st.clock in
  match st.loc.(id) with
  | Running i ->
      let ms = st.machines.(i) in
      let r = match ms.m_running with Some r -> r | None -> assert false in
      assert (r.job.Job.id = id);
      ms.m_running <- None;
      ms.m_epoch <- ms.m_epoch + 1;
      if Time.gt t r.started then
        Schedule.add_segment st.builder
          { Schedule.job = id; machine = i; start = r.started; stop = t; speed = r.rate };
      let wasted = Float.max 0. ((t -. r.started) *. r.rate) in
      record st (Trace.Restart { job = id; machine = i; wasted });
      ms.m_pending <- r.job :: ms.m_pending;
      st.loc.(id) <- Pending i;
      i
  | Pending _ | Unreleased | Settled ->
      invalid_arg (Printf.sprintf "Driver: restarting job %d that is not running" id)

let try_start st queue seq policy pstate i =
  let ms = st.machines.(i) in
  match ms.m_running with
  | Some _ -> ()
  | None ->
      if ms.m_pending <> [] then begin
        match policy.select pstate st i with
        | None -> ()
        | Some { job; speed } ->
            if speed <= 0. || not (Float.is_finite speed) then
              invalid_arg (Printf.sprintf "Driver: policy %s chose speed %g" policy.name speed);
            let j = Instance.job st.instance job in
            (match st.loc.(job) with
            | Pending i' when i' = i -> ()
            | _ -> invalid_arg (Printf.sprintf "Driver: job %d is not pending on machine %d" job i));
            remove_pending ms job;
            let machine = Instance.machine st.instance i in
            let rate = speed *. machine.Machine.speed in
            let size = Job.size j i in
            if not (Float.is_finite size) then
              invalid_arg (Printf.sprintf "Driver: starting job %d on ineligible machine %d" job i);
            let finish = st.clock +. (size /. rate) in
            ms.m_running <- Some { job = j; started = st.clock; rate; finish };
            st.loc.(job) <- Running i;
            record st (Trace.Start { job; machine = i; speed = rate });
            incr seq;
            Pqueue.push queue ~key:finish ~tag:(tag_finish !seq) (Finish (i, ms.m_epoch))
      end

let run ?trace policy instance =
  let m = Instance.m instance in
  let st =
    {
      instance;
      machines = Array.init m (fun _ -> { m_running = None; m_epoch = 0; m_pending = [] });
      loc = Array.make (Instance.n instance) Unreleased;
      clock = 0.;
      builder = Schedule.builder instance;
      trace;
    }
  in
  let pstate = policy.init instance in
  let queue = Pqueue.create () in
  let seq = ref 0 in
  Array.iter
    (fun (j : Job.t) ->
      incr seq;
      Pqueue.push queue ~key:j.release ~tag:(tag_arrival !seq) (Arrival j))
    (Instance.jobs_by_release instance);
  let rec loop () =
    match Pqueue.pop queue with
    | None -> ()
    | Some (time, _, ev) ->
        st.clock <- Float.max st.clock time;
        (match ev with
        | Finish (i, epoch) ->
            let ms = st.machines.(i) in
            (match ms.m_running with
            | Some r when ms.m_epoch = epoch ->
                let id = r.job.Job.id in
                ms.m_running <- None;
                Schedule.add_segment st.builder
                  { Schedule.job = id; machine = i; start = r.started; stop = r.finish; speed = r.rate };
                Schedule.set_outcome st.builder id
                  (Outcome.Completed { machine = i; start = r.started; speed = r.rate; finish = r.finish });
                st.loc.(id) <- Settled;
                record st (Trace.Complete { job = id; machine = i });
                try_start st queue seq policy pstate i
            | _ -> () (* Stale event: the job was rejected mid-run. *))
        | Arrival j ->
            let decision = policy.on_arrival pstate st j in
            let i = decision.dispatch_to in
            if i < 0 || i >= m then
              invalid_arg (Printf.sprintf "Driver: policy %s dispatched to machine %d" policy.name i);
            if not (Job.eligible j i) then
              invalid_arg
                (Printf.sprintf "Driver: policy %s dispatched job %d to ineligible machine %d"
                   policy.name j.id i);
            st.machines.(i).m_pending <- j :: st.machines.(i).m_pending;
            st.loc.(j.id) <- Pending i;
            record st (Trace.Dispatch { job = j.id; machine = i });
            let touched = List.map (reject_job st) decision.reject in
            let touched = touched @ List.map (restart_job st) decision.restart in
            List.iter (try_start st queue seq policy pstate) (List.sort_uniq compare (i :: touched)));
        loop ()
  in
  loop ();
  (* A machine can only be idle with pending jobs if the policy returned
     [None] from [select]; then those jobs never finish.  Surface it. *)
  Array.iteri
    (fun i ms ->
      if ms.m_pending <> [] || ms.m_running <> None then
        invalid_arg
          (Printf.sprintf "Driver: policy %s left work unfinished on machine %d" policy.name i))
    st.machines;
  (Schedule.finalize st.builder, pstate)

let run_schedule ?trace policy instance = fst (run ?trace policy instance)
