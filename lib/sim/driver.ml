open Sched_model

type running = { job : Job.t; started : Time.t; rate : float; finish : Time.t }

(* ------------------------------------------------------------------ *)
(* Indexed pending sets.

   Every ordering a policy may query is maintained as a Pqueue.Indexed
   heap over the machine's pending jobs, so insert, arbitrary removal
   (rejection) and head queries are all O(log k) instead of the seed's
   O(k) list scans.  Aggregate pending work/weight are carried
   incrementally for O(1) reads.  The float comparisons deliberately
   mirror the policies' original [<]/[>] comparisons (so e.g. -0. = 0.),
   and key ties fall through to the heap's id tie-break, reproducing the
   "ties by smaller id" convention of every policy order. *)

type pend = {
  by_spt : (Job.t, unit) Pqueue.Indexed.t;  (** (p_ij, release, id) ascending. *)
  by_spt_rev : (Job.t, unit) Pqueue.Indexed.t;  (** Same order, descending. *)
  by_density : (Job.t, unit) Pqueue.Indexed.t;
      (** weight/p_ij descending, ties release then id ascending. *)
  by_size_id : (Job.t, unit) Pqueue.Indexed.t;
      (** (p_ij, id) descending — the weighted Rule 2 victim order. *)
  by_fifo : (Job.t, unit) Pqueue.Indexed.t;  (** (release, id) ascending. *)
  mutable p_work : float;  (** Sum of p_ij over pending jobs. *)
  mutable p_weight : float;  (** Sum of weights over pending jobs. *)
}

let cmp_spt i (a : Job.t) (b : Job.t) =
  let pa = Job.size a i and pb = Job.size b i in
  if pa < pb then -1
  else if pa > pb then 1
  else if a.release < b.release then -1
  else if a.release > b.release then 1
  else 0

(* Reverse of [cmp_spt] including the id: the Rule 2 victim is the *max*
   of (p_ij, release, id), so equal (p, release) resolve to the larger id —
   the explicit flip keeps the heap's ascending-id fallback unreachable. *)
let cmp_spt_rev i (a : Job.t) (b : Job.t) =
  let c = cmp_spt i a b in
  if c <> 0 then -c else Int.compare b.id a.id

let cmp_density i (a : Job.t) (b : Job.t) =
  let da = a.weight /. Job.size a i and db = b.weight /. Job.size b i in
  if da > db then -1
  else if da < db then 1
  else if a.release < b.release then -1
  else if a.release > b.release then 1
  else 0

(* Descending size; equal sizes fall through to the heap's ascending-id
   tie-break, so min_elt is the largest size with the *smallest* id — the
   weighted rule wants the largest id, hence the explicit flip here. *)
let cmp_size_id i (a : Job.t) (b : Job.t) =
  let pa = Job.size a i and pb = Job.size b i in
  if pa > pb then -1 else if pa < pb then 1 else Int.compare b.id a.id

let cmp_fifo (a : Job.t) (b : Job.t) =
  if a.release < b.release then -1 else if a.release > b.release then 1 else 0

let pend_create i =
  {
    by_spt = Pqueue.Indexed.create ~cmp:(cmp_spt i) ();
    by_spt_rev = Pqueue.Indexed.create ~cmp:(cmp_spt_rev i) ();
    by_density = Pqueue.Indexed.create ~cmp:(cmp_density i) ();
    by_size_id = Pqueue.Indexed.create ~cmp:(cmp_size_id i) ();
    by_fifo = Pqueue.Indexed.create ~cmp:cmp_fifo ();
    p_work = 0.;
    p_weight = 0.;
  }

let pend_add p i (j : Job.t) =
  Pqueue.Indexed.add p.by_spt ~id:j.id ~key:j ();
  Pqueue.Indexed.add p.by_spt_rev ~id:j.id ~key:j ();
  Pqueue.Indexed.add p.by_density ~id:j.id ~key:j ();
  Pqueue.Indexed.add p.by_size_id ~id:j.id ~key:j ();
  Pqueue.Indexed.add p.by_fifo ~id:j.id ~key:j ();
  p.p_work <- p.p_work +. Job.size j i;
  p.p_weight <- p.p_weight +. j.weight

let pend_remove p i id =
  match Pqueue.Indexed.remove p.by_spt ~id with
  | None -> None
  | Some (j, ()) ->
      ignore (Pqueue.Indexed.remove p.by_spt_rev ~id);
      ignore (Pqueue.Indexed.remove p.by_density ~id);
      ignore (Pqueue.Indexed.remove p.by_size_id ~id);
      ignore (Pqueue.Indexed.remove p.by_fifo ~id);
      if Pqueue.Indexed.is_empty p.by_spt then begin
        (* Pin the aggregates back to exactly zero so float cancellation
           drift cannot survive an empty queue. *)
        p.p_work <- 0.;
        p.p_weight <- 0.
      end
      else begin
        p.p_work <- p.p_work -. Job.size j i;
        p.p_weight <- p.p_weight -. j.weight
      end;
      Some j

let pend_count p = Pqueue.Indexed.size p.by_spt

type machine_state = {
  mutable m_running : running option;
  mutable m_epoch : int;  (** Invalidates stale finish events after a mid-run
                              rejection. *)
  m_pend : pend;
}

(* ------------------------------------------------------------------ *)
(* Incremental metrics: maintained as outcomes and segments are laid down,
   so no post-hoc pass over the schedule is needed to read the run's
   objective values.  Float accumulation order differs from the post-hoc
   [Metrics] passes, so agreement is exact up to rounding (the
   differential tests pin it at 1e-9 relative). *)

type accum = {
  mutable a_completed : int;
  mutable a_flow : float;
  mutable a_wflow : float;
  mutable a_rej_flow : float;
  mutable a_rej_wflow : float;
  mutable a_max_flow : float;
  mutable a_max_stretch : float;
  mutable a_energy : float;
  mutable a_makespan : float;
  mutable a_rejected : int;
  mutable a_rej_weight : float;
  mutable a_mid_run : int;
}

type location = Unreleased | Pending of Machine.id | Running of Machine.id | Settled

(* Pre-resolved instrument cells: the hot path pays one mutable-field
   write per event, never a registry lookup. *)
type instr = {
  i_sink : Sched_obs.Sink.t;
  c_dispatch : Sched_obs.Metric.Counter.t;
  c_start : Sched_obs.Metric.Counter.t;
  c_complete : Sched_obs.Metric.Counter.t;
  c_reject : Sched_obs.Metric.Counter.t;
  c_reject_midrun : Sched_obs.Metric.Counter.t;
  c_restart : Sched_obs.Metric.Counter.t;
  g_pending : Sched_obs.Metric.Gauge.t array;
  g_inflight : Sched_obs.Metric.Gauge.t array;
}

type state = {
  instance : Instance.t;
  machines : machine_state array;
  loc : location array;  (** Indexed by job id. *)
  mutable clock : Time.t;
  builder : Schedule.builder;
  trace : Trace.t option;
  instr : instr option;
  acc : accum;
  total_weight : float;
  mutable saw_restart : bool;
      (** Set when a running job is killed and requeued; picks the oracle's
          restart relaxation for [?check]. *)
}

type view = state

let now (v : view) = v.clock
let running_on (v : view) i = v.machines.(i).m_running

let remaining_volume (v : view) i =
  match v.machines.(i).m_running with
  | None -> 0.
  | Some r -> Float.max 0. ((r.finish -. v.clock) *. r.rate)

let remaining_time (v : view) i =
  match v.machines.(i).m_running with None -> 0. | Some r -> Float.max 0. (r.finish -. v.clock)

let pending (v : view) i =
  List.rev
    (Pqueue.Indexed.fold v.machines.(i).m_pend.by_spt ~init:[] ~f:(fun acc _ j () -> j :: acc))

let pending_iter (v : view) i f =
  Pqueue.Indexed.iter v.machines.(i).m_pend.by_spt ~f:(fun _ j () -> f j)

let pending_count (v : view) i = pend_count v.machines.(i).m_pend
let pending_work (v : view) i = v.machines.(i).m_pend.p_work
let pending_weight (v : view) i = v.machines.(i).m_pend.p_weight

let head q = match Pqueue.Indexed.min_elt q with None -> None | Some (_, j, ()) -> Some j

let pending_shortest (v : view) i = head v.machines.(i).m_pend.by_spt
let pending_longest (v : view) i = head v.machines.(i).m_pend.by_spt_rev
let pending_densest (v : view) i = head v.machines.(i).m_pend.by_density
let pending_longest_tie_id (v : view) i = head v.machines.(i).m_pend.by_size_id
let pending_earliest (v : view) i = head v.machines.(i).m_pend.by_fifo

type live_metrics = {
  flow : Metrics.flow;
  energy : float;
  rejection : Metrics.rejection;
  makespan : Time.t;
}

let live (v : view) =
  let a = v.acc in
  let n = Instance.n v.instance in
  {
    flow =
      {
        Metrics.total = a.a_flow;
        weighted = a.a_wflow;
        total_with_rejected = a.a_flow +. a.a_rej_flow;
        weighted_with_rejected = a.a_wflow +. a.a_rej_wflow;
        max_flow = a.a_max_flow;
        mean_flow = (if a.a_completed = 0 then 0. else a.a_flow /. float_of_int a.a_completed);
        max_stretch = a.a_max_stretch;
      };
    energy = a.a_energy;
    rejection =
      {
        Metrics.count = a.a_rejected;
        fraction = (if n = 0 then 0. else float_of_int a.a_rejected /. float_of_int n);
        weight = a.a_rej_weight;
        weight_fraction = (if v.total_weight = 0. then 0. else a.a_rej_weight /. v.total_weight);
        mid_run = a.a_mid_run;
      };
    makespan = a.a_makespan;
  }

type decision = { dispatch_to : Machine.id; reject : Job.id list; restart : Job.id list }

let dispatch i = { dispatch_to = i; reject = []; restart = [] }

type start = { job : Job.id; speed : float }

type 'a policy = {
  name : string;
  init : Instance.t -> 'a;
  on_arrival : 'a -> view -> Job.t -> decision;
  select : 'a -> view -> Machine.id -> start option;
}

type event = Arrival of Job.t | Finish of Machine.id * int

(* Event ordering at equal times: completions before arrivals, so that a
   policy dispatching at time t sees machines that just finished as idle;
   within a kind, insertion sequence (deterministic). *)
let tag_finish seq = seq
let tag_arrival seq = (1 lsl 40) + seq

let record st ev = match st.trace with None -> () | Some tr -> Trace.record tr st.clock ev

(* ------------------------------------------------------------------ *)
(* Telemetry.  When a [Sched_obs.Obs.t] handle is supplied, the driver
   mirrors every trace-worthy event into counters and per-machine gauges
   and times its phases through the handle's sink.  Everything here is
   strictly observational: no value computed below ever flows back into a
   decision, so schedules are byte-identical with telemetry on or off
   (pinned by the differential tests). *)

let phase_on_arrival = "on_arrival"
let phase_select = "select"
let phase_segment = "segment"
let phase_heap = "heap"

let make_instr obs m =
  let reg = Sched_obs.Obs.registry obs in
  let machine_gauge name help =
    Array.init m (fun i ->
        Sched_obs.Registry.gauge reg ~help ~labels:[ ("machine", string_of_int i) ] name)
  in
  {
    i_sink = Sched_obs.Obs.sink obs;
    c_dispatch =
      Sched_obs.Registry.counter reg ~help:"Jobs dispatched to a machine" "sched_dispatch_total";
    c_start = Sched_obs.Registry.counter reg ~help:"Job executions started" "sched_start_total";
    c_complete = Sched_obs.Registry.counter reg ~help:"Jobs completed" "sched_complete_total";
    c_reject = Sched_obs.Registry.counter reg ~help:"Jobs rejected" "sched_reject_total";
    c_reject_midrun =
      Sched_obs.Registry.counter reg ~help:"Rejections that interrupted a running job"
        "sched_reject_midrun_total";
    c_restart =
      Sched_obs.Registry.counter reg ~help:"Running jobs killed and requeued"
        "sched_restart_total";
    g_pending = machine_gauge "sched_pending_jobs" "Dispatched and released, not yet started";
    g_inflight =
      machine_gauge "sched_inflight_jobs" "Dispatched, not yet completed or rejected";
  }

(* Lay down a segment and fold it into the incremental metrics. *)
let lay_segment_raw st (seg : Schedule.segment) =
  Schedule.add_segment st.builder seg;
  let alpha = (Instance.machine st.instance seg.machine).Machine.alpha in
  st.acc.a_energy <- st.acc.a_energy +. ((seg.stop -. seg.start) *. (seg.speed ** alpha));
  if seg.stop > st.acc.a_makespan then st.acc.a_makespan <- seg.stop

let lay_segment st seg =
  match st.instr with
  | None -> lay_segment_raw st seg
  | Some ins ->
      Sched_obs.Sink.time ins.i_sink phase_segment (fun () -> lay_segment_raw st seg)

let account_completion st (j : Job.t) finish =
  let a = st.acc in
  let f = finish -. j.release in
  a.a_completed <- a.a_completed + 1;
  a.a_flow <- a.a_flow +. f;
  a.a_wflow <- a.a_wflow +. (j.weight *. f);
  if f > a.a_max_flow then a.a_max_flow <- f;
  let stretch = f /. Job.min_size j in
  if stretch > a.a_max_stretch then a.a_max_stretch <- stretch

let account_rejection st (j : Job.t) time ~was_running =
  let a = st.acc in
  let f = time -. j.release in
  a.a_rejected <- a.a_rejected + 1;
  a.a_rej_flow <- a.a_rej_flow +. f;
  a.a_rej_wflow <- a.a_rej_wflow +. (j.weight *. f);
  a.a_rej_weight <- a.a_rej_weight +. j.weight;
  if was_running then a.a_mid_run <- a.a_mid_run + 1

let remove_pending st i id =
  match pend_remove st.machines.(i).m_pend i id with
  | Some j -> j
  | None -> invalid_arg (Printf.sprintf "Driver: job %d not pending" id)

let reject_job st id =
  let t = st.clock in
  match st.loc.(id) with
  | Pending i ->
      let j = remove_pending st i id in
      st.loc.(id) <- Settled;
      record st (Trace.Reject { job = id; machine = i; was_running = false; remaining = Job.size j i });
      (match st.instr with
      | None -> ()
      | Some ins ->
          Sched_obs.Metric.Counter.inc ins.c_reject;
          Sched_obs.Metric.Gauge.dec ins.g_pending.(i);
          Sched_obs.Metric.Gauge.dec ins.g_inflight.(i));
      Schedule.set_outcome st.builder id
        (Outcome.Rejected { time = t; assigned_to = Some i; was_running = false });
      account_rejection st j t ~was_running:false;
      i
  | Running i ->
      let ms = st.machines.(i) in
      let r = match ms.m_running with Some r -> r | None -> assert false in
      assert (r.job.Job.id = id);
      ms.m_running <- None;
      ms.m_epoch <- ms.m_epoch + 1;
      st.loc.(id) <- Settled;
      let was_running = Time.gt t r.started in
      if was_running then
        lay_segment st
          { Schedule.job = id; machine = i; start = r.started; stop = t; speed = r.rate };
      let remaining = Float.max 0. ((r.finish -. t) *. r.rate) in
      record st (Trace.Reject { job = id; machine = i; was_running; remaining });
      (match st.instr with
      | None -> ()
      | Some ins ->
          Sched_obs.Metric.Counter.inc ins.c_reject;
          if was_running then Sched_obs.Metric.Counter.inc ins.c_reject_midrun;
          Sched_obs.Metric.Gauge.dec ins.g_inflight.(i));
      Schedule.set_outcome st.builder id
        (Outcome.Rejected { time = t; assigned_to = Some i; was_running });
      account_rejection st r.job t ~was_running;
      i
  | Unreleased -> invalid_arg (Printf.sprintf "Driver: rejecting unreleased job %d" id)
  | Settled -> invalid_arg (Printf.sprintf "Driver: rejecting settled job %d" id)

(* Kill a running job and return it (full size again) to the pending
   queue; its partial segment is kept for the wasted-work record. *)
let restart_job st id =
  let t = st.clock in
  match st.loc.(id) with
  | Running i ->
      let ms = st.machines.(i) in
      let r = match ms.m_running with Some r -> r | None -> assert false in
      assert (r.job.Job.id = id);
      ms.m_running <- None;
      ms.m_epoch <- ms.m_epoch + 1;
      if Time.gt t r.started then
        lay_segment st
          { Schedule.job = id; machine = i; start = r.started; stop = t; speed = r.rate };
      let wasted = Float.max 0. ((t -. r.started) *. r.rate) in
      st.saw_restart <- true;
      record st (Trace.Restart { job = id; machine = i; wasted });
      (match st.instr with
      | None -> ()
      | Some ins ->
          Sched_obs.Metric.Counter.inc ins.c_restart;
          Sched_obs.Metric.Gauge.inc ins.g_pending.(i));
      pend_add ms.m_pend i r.job;
      st.loc.(id) <- Pending i;
      i
  | Pending _ | Unreleased | Settled ->
      invalid_arg (Printf.sprintf "Driver: restarting job %d that is not running" id)

let try_start st queue seq policy pstate i =
  let ms = st.machines.(i) in
  match ms.m_running with
  | Some _ -> ()
  | None ->
      if pend_count ms.m_pend > 0 then begin
        let choice =
          match st.instr with
          | None -> policy.select pstate st i
          | Some ins ->
              Sched_obs.Sink.time ins.i_sink phase_select (fun () -> policy.select pstate st i)
        in
        match choice with
        | None -> ()
        | Some { job; speed } ->
            if speed <= 0. || not (Float.is_finite speed) then
              invalid_arg (Printf.sprintf "Driver: policy %s chose speed %g" policy.name speed);
            (match st.loc.(job) with
            | Pending i' when i' = i -> ()
            | _ -> invalid_arg (Printf.sprintf "Driver: job %d is not pending on machine %d" job i));
            let j = remove_pending st i job in
            let machine = Instance.machine st.instance i in
            let rate = speed *. machine.Machine.speed in
            let size = Job.size j i in
            if not (Float.is_finite size) then
              invalid_arg (Printf.sprintf "Driver: starting job %d on ineligible machine %d" job i);
            let finish = st.clock +. (size /. rate) in
            ms.m_running <- Some { job = j; started = st.clock; rate; finish };
            st.loc.(job) <- Running i;
            record st (Trace.Start { job; machine = i; speed = rate });
            (match st.instr with
            | None -> ()
            | Some ins ->
                Sched_obs.Metric.Counter.inc ins.c_start;
                Sched_obs.Metric.Gauge.dec ins.g_pending.(i));
            incr seq;
            Pqueue.push queue ~key:finish ~tag:(tag_finish !seq) (Finish (i, ms.m_epoch))
      end

(* Post-run oracle audit for [?check].  The oracle re-derives every
   invariant from scratch (independent of [Schedule.validate] and of the
   incremental accumulators), so a pass here really is a second opinion. *)
let audit ?obs policy st schedule =
  let lm = live st in
  let snap =
    {
      Sched_check.Oracle.flow = lm.flow;
      energy = lm.energy;
      rejection = lm.rejection;
      makespan = lm.makespan;
    }
  in
  let mode = Sched_check.Oracle.mode ~allow_restarts:st.saw_restart () in
  let vs = Sched_check.Oracle.check ~mode ~live:snap schedule in
  (match obs with
  | Some o -> Sched_check.Check_obs.record (Sched_obs.Obs.registry o) vs
  | None -> ());
  Sched_check.Oracle.assert_clean ~what:policy.name vs

let run_state ?trace ?obs ?(check = false) policy instance =
  let m = Instance.m instance in
  let st =
    {
      instance;
      machines =
        Array.init m (fun i -> { m_running = None; m_epoch = 0; m_pend = pend_create i });
      loc = Array.make (Instance.n instance) Unreleased;
      clock = 0.;
      builder = Schedule.builder instance;
      trace;
      instr = (match obs with None -> None | Some o -> Some (make_instr o m));
      acc =
        {
          a_completed = 0;
          a_flow = 0.;
          a_wflow = 0.;
          a_rej_flow = 0.;
          a_rej_wflow = 0.;
          a_max_flow = 0.;
          a_max_stretch = 0.;
          a_energy = 0.;
          a_makespan = 0.;
          a_rejected = 0;
          a_rej_weight = 0.;
          a_mid_run = 0;
        };
      total_weight = Instance.total_weight instance;
      saw_restart = false;
    }
  in
  let pstate = policy.init instance in
  let queue = Pqueue.create () in
  let seq = ref 0 in
  Array.iter
    (fun (j : Job.t) ->
      incr seq;
      Pqueue.push queue ~key:j.release ~tag:(tag_arrival !seq) (Arrival j))
    (Instance.jobs_by_release instance);
  let pop =
    match st.instr with
    | None -> fun () -> Pqueue.pop queue
    | Some ins ->
        fun () -> Sched_obs.Sink.time ins.i_sink phase_heap (fun () -> Pqueue.pop queue)
  in
  let rec loop () =
    match pop () with
    | None -> ()
    | Some (time, _, ev) ->
        st.clock <- Float.max st.clock time;
        (match ev with
        | Finish (i, epoch) ->
            let ms = st.machines.(i) in
            (match ms.m_running with
            | Some r when ms.m_epoch = epoch ->
                let id = r.job.Job.id in
                ms.m_running <- None;
                lay_segment st
                  { Schedule.job = id; machine = i; start = r.started; stop = r.finish; speed = r.rate };
                Schedule.set_outcome st.builder id
                  (Outcome.Completed { machine = i; start = r.started; speed = r.rate; finish = r.finish });
                account_completion st r.job r.finish;
                st.loc.(id) <- Settled;
                record st (Trace.Complete { job = id; machine = i });
                (match st.instr with
                | None -> ()
                | Some ins ->
                    Sched_obs.Metric.Counter.inc ins.c_complete;
                    Sched_obs.Metric.Gauge.dec ins.g_inflight.(i));
                try_start st queue seq policy pstate i
            | _ -> () (* Stale event: the job was rejected mid-run. *))
        | Arrival j ->
            let decision =
              match st.instr with
              | None -> policy.on_arrival pstate st j
              | Some ins ->
                  Sched_obs.Sink.time ins.i_sink phase_on_arrival (fun () ->
                      policy.on_arrival pstate st j)
            in
            let i = decision.dispatch_to in
            if i < 0 || i >= m then
              invalid_arg (Printf.sprintf "Driver: policy %s dispatched to machine %d" policy.name i);
            if not (Job.eligible j i) then
              invalid_arg
                (Printf.sprintf "Driver: policy %s dispatched job %d to ineligible machine %d"
                   policy.name j.id i);
            pend_add st.machines.(i).m_pend i j;
            st.loc.(j.id) <- Pending i;
            record st (Trace.Dispatch { job = j.id; machine = i });
            (match st.instr with
            | None -> ()
            | Some ins ->
                Sched_obs.Metric.Counter.inc ins.c_dispatch;
                Sched_obs.Metric.Gauge.inc ins.g_pending.(i);
                Sched_obs.Metric.Gauge.inc ins.g_inflight.(i));
            let touched = List.map (reject_job st) decision.reject in
            let touched = touched @ List.map (restart_job st) decision.restart in
            List.iter (try_start st queue seq policy pstate) (List.sort_uniq Int.compare (i :: touched)));
        loop ()
  in
  loop ();
  (* A machine can only be idle with pending jobs if the policy returned
     [None] from [select]; then those jobs never finish.  Surface it. *)
  Array.iteri
    (fun i ms ->
      if pend_count ms.m_pend > 0 || ms.m_running <> None then
        invalid_arg
          (Printf.sprintf "Driver: policy %s left work unfinished on machine %d" policy.name i))
    st.machines;
  let schedule = Schedule.finalize st.builder in
  if check then audit ?obs policy st schedule;
  (schedule, pstate, st)

let run ?trace ?obs ?check policy instance =
  let schedule, pstate, _ = run_state ?trace ?obs ?check policy instance in
  (schedule, pstate)

let run_live ?trace ?obs ?check policy instance =
  let schedule, pstate, st = run_state ?trace ?obs ?check policy instance in
  (schedule, pstate, live st)

let run_schedule ?trace ?obs ?check policy instance = fst (run ?trace ?obs ?check policy instance)
