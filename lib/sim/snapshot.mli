(** Self-describing container for {!Driver.Session} checkpoints.

    A [Driver.Session.freeze] payload is opaque marshaled state, valid
    only for the executable that produced it.  This module frames it
    with a magic string, a format version, the policy name and an
    FNV-1a 64 checksum, so that a reader can reject anything that is
    not an intact snapshot from a compatible writer {e before} the
    payload reaches [Marshal] (whose behavior on corrupt input is
    undefined).  Corrupted, truncated or alien files come back as a
    structured {!error}, never an exception — the CLI maps them to
    exit 2. *)

type error =
  | Bad_magic  (** Not a rejsched snapshot at all. *)
  | Bad_version of int  (** A snapshot, but from an incompatible format revision. *)
  | Truncated  (** Cut short (or carrying trailing garbage). *)
  | Checksum_mismatch  (** Framing intact but the bytes rotted. *)

val version : int
(** Current container format version.  Bump on any layout change. *)

val error_to_string : error -> string

val wrap : policy:string -> payload:string -> string
(** Frames a freeze payload under the given registry policy name. *)

val unwrap : string -> (string * string, error) result
(** [(policy, payload)] from an intact container.  Total: every byte
    string yields [Ok] or [Error], never raises. *)

val write_file : string -> string -> unit
(** [write_file path contents] — binary, whole-file. *)

val read_file : string -> string
(** Binary whole-file read; raises [Sys_error] as [open_in] does. *)
