(** Event-driven online scheduling driver.

    The driver owns the ground truth of a run — clock, per-machine pending
    queues, the running job, laid-down segments — and consults a {!policy}
    for the three online decisions of the paper's model:

    - where to dispatch a job the instant it is released ({!field-on_arrival},
      which may also reject already-dispatched jobs, possibly mid-execution:
      the paper's Rejection Rules);
    - which pending job to start, and at which speed, when a machine goes
      idle ({!field-select}).

    Jobs are revealed to the policy only at their release times; the policy
    can inspect the driver state through a read-only {!view}.  Every run
    yields a {!Sched_model.Schedule.t} that the schedule validator accepts,
    so all policies are measured on equal terms. *)

open Sched_model

(** {1 Read-only view of the driver state} *)

type view

val now : view -> Time.t

type running = { job : Job.t; started : Time.t; rate : float; finish : Time.t }
(** [rate] is volume processed per unit time (execution speed times the
    machine's nominal speed factor). *)

val running_on : view -> Machine.id -> running option

val remaining_volume : view -> Machine.id -> float
(** Remaining volume of the running job at the current instant; [0.] when
    idle. *)

val remaining_time : view -> Machine.id -> float
(** Time until the running job would finish; [0.] when idle. *)

val pending : view -> Machine.id -> Job.t list
(** Jobs dispatched to the machine, released, not started (unordered). *)

val pending_count : view -> Machine.id -> int

(** {1 Policy interface} *)

type decision = {
  dispatch_to : Machine.id;
  reject : Job.id list;
      (** Jobs to reject right now; each must currently be dispatched
          (pending or running) — the newly arrived job, just dispatched, may
          be among them.  Order is respected. *)
  restart : Job.id list;
      (** Running jobs to kill and return to their machine's pending queue;
          completed work is lost (the restart relaxation the paper's
          conclusion proposes exploring).  Processed after [reject]. *)
}

val dispatch : Machine.id -> decision
(** Plain dispatch with no rejection or restart. *)

type start = { job : Job.id; speed : float }
(** [speed] multiplies the machine's nominal speed; the flow-time policies
    use [1.0], the speed-scaling policy of the paper's Section 3 chooses
    it per start. *)

type 'a policy = {
  name : string;
  init : Instance.t -> 'a;
  on_arrival : 'a -> view -> Job.t -> decision;
  select : 'a -> view -> Machine.id -> start option;
      (** Called whenever [machine] is idle and may start work (after an
          arrival, completion or rejection).  [None] leaves it idle until
          the next event.  The chosen job must be pending on that machine
          and the speed positive. *)
}

(** {1 Running} *)

val run : ?trace:Trace.t -> 'a policy -> Instance.t -> Schedule.t * 'a
(** Simulates the policy on the instance.  Raises [Invalid_argument] on an
    ill-formed policy decision (dispatch to an ineligible machine, rejecting
    an unknown job, starting a non-pending job, non-positive speed).  The
    returned ['a] is the policy's final state, which instrumented policies
    use to expose analysis data (e.g. the dual variables of Lemma 4). *)

val run_schedule : ?trace:Trace.t -> 'a policy -> Instance.t -> Schedule.t
(** [run] dropping the policy state. *)
