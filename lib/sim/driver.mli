(** Event-driven online scheduling driver.

    The driver owns the ground truth of a run — clock, per-machine pending
    queues, the running job, laid-down segments — and consults a {!policy}
    for the three online decisions of the paper's model:

    - where to dispatch a job the instant it is released ({!field-on_arrival},
      which may also reject already-dispatched jobs, possibly mid-execution:
      the paper's Rejection Rules);
    - which pending job to start, and at which speed, when a machine goes
      idle ({!field-select}).

    Jobs are revealed to the policy only at their release times; the policy
    can inspect the driver state through a read-only {!view}.  Every run of a
    well-formed policy yields a {!Sched_model.Schedule.t}; runs that do not
    reject mid-run or restart satisfy the strict schedule validator, while
    restart/mid-run-rejection runs need its [allow_restarts] relaxation
    (partial segments of a job may precede its final run) — the registry test
    suite checks exactly this for every shipped policy, so all policies are
    measured on equal terms.

    {b Performance.}  Per-machine pending sets are indexed heaps
    ({!Sched_sim.Pqueue.Indexed}), one per ordering the paper's policies
    query (SPT, weighted density, size-for-victim-selection, FIFO), so
    dispatch, start and arbitrary-id rejection are all O(log k) in the queue
    length; aggregate pending work/weight are maintained incrementally and
    read in O(1).  Policies should use the [pending_*] accessors below
    rather than scanning {!pending}.

    The driver ships two interchangeable cores (see {!impl}): the boxed
    original and a struct-of-arrays rewrite ({!Flat_state}, the default)
    whose steady state allocates nothing on the minor heap.  They produce
    byte-identical schedules, traces and telemetry — the differential
    suite pins this across the fuzz corpus and every registry policy —
    and policies cannot observe which one is running. *)

open Sched_model

(** {1 Implementation selection} *)

type impl =
  | Boxed  (** The original boxed-record core — the differential reference. *)
  | Flat
      (** The flat core: [Flat_state] struct-of-arrays state with a
          zero-allocation steady state.  The default. *)

val set_default_impl : impl -> unit
(** Sets the core used when [?impl] is not passed — the [--no-flat]
    escape hatch for bisecting a suspected flat-core divergence.  Global
    and not synchronized: set it before spawning pool domains, not
    concurrently with runs. *)

val default_impl : unit -> impl

(** {1 Read-only view of the driver state} *)

type view

val now : view -> Time.t

type running = { job : Job.t; started : Time.t; rate : float; finish : Time.t }
(** [rate] is volume processed per unit time (execution speed times the
    machine's nominal speed factor). *)

val running_on : view -> Machine.id -> running option

val remaining_volume : view -> Machine.id -> float
(** Remaining volume of the running job at the current instant; [0.] when
    idle. *)

val remaining_time : view -> Machine.id -> float
(** Time until the running job would finish; [0.] when idle. *)

val pending : view -> Machine.id -> Job.t list
(** Jobs dispatched to the machine, released, not started.  The order is
    deterministic for a given run history but otherwise unspecified; do not
    rely on it.  O(k) — prefer the indexed accessors below in hot paths. *)

val pending_iter : view -> Machine.id -> (Job.t -> unit) -> unit
(** Iterates the pending set without materializing a list (same
    deterministic-but-unspecified order as {!pending}). *)

val pending_count : view -> Machine.id -> int
(** O(1). *)

val pending_work : view -> Machine.id -> float
(** Sum of [p_ij] over jobs pending on machine [i]; O(1), maintained
    incrementally (exactly [0.] when the queue is empty). *)

val pending_weight : view -> Machine.id -> float
(** Sum of weights over jobs pending on machine [i]; O(1). *)

(** The head-of-order accessors below are O(1) reads of indexed heaps; all
    ties not listed break by smaller job id, making each answer independent
    of arrival/removal history. *)

val pending_shortest : view -> Machine.id -> Job.t option
(** Smallest [(p_ij, release)] — the SPT order of Theorem 1's policy. *)

val pending_longest : view -> Machine.id -> Job.t option
(** Largest [(p_ij, release, id)] (so ties resolve to the {e larger} id) —
    the Rule 2 victim of the unweighted policy. *)

val pending_densest : view -> Machine.id -> Job.t option
(** Largest weighted density [w_j / p_ij] (ties: earlier release first) —
    the highest-density-first order of the weighted and energy policies. *)

val pending_longest_tie_id : view -> Machine.id -> Job.t option
(** Largest [p_ij], ties by {e larger} id — the victim order of the
    weighted policy's rejection rule. *)

val pending_earliest : view -> Machine.id -> Job.t option
(** Smallest [(release, id)] — FIFO order. *)

(** {1 Incremental metrics} *)

type live_metrics = {
  flow : Metrics.flow;
  energy : float;
  rejection : Metrics.rejection;
  makespan : Time.t;
}
(** Objective values maintained incrementally as segments are laid down and
    outcomes recorded — no post-hoc pass over the schedule.  Agrees with the
    corresponding {!Sched_model.Metrics} recomputation up to float rounding
    (the accumulation order differs); the differential tests pin the
    agreement at 1e-9 relative error. *)

val live : view -> live_metrics
(** Snapshot of the incremental metrics at the current instant.  Counts only
    what has happened so far: jobs still pending or running contribute
    nothing yet. *)

(** {1 Policy interface} *)

type decision = {
  dispatch_to : Machine.id;
  reject : Job.id list;
      (** Jobs to reject right now; each must currently be dispatched
          (pending or running) — the newly arrived job, just dispatched, may
          be among them.  Order is respected. *)
  restart : Job.id list;
      (** Running jobs to kill and return to their machine's pending queue;
          completed work is lost (the restart relaxation the paper's
          conclusion proposes exploring).  Processed after [reject]. *)
}

val dispatch : Machine.id -> decision
(** Plain dispatch with no rejection or restart. *)

type start = { job : Job.id; speed : float }
(** [speed] multiplies the machine's nominal speed; the flow-time policies
    use [1.0], the speed-scaling policy of the paper's Section 3 chooses
    it per start. *)

type 'a policy = {
  name : string;
  init : Instance.t -> 'a;
  on_arrival : 'a -> view -> Job.t -> decision;
  select : 'a -> view -> Machine.id -> start option;
      (** Called whenever [machine] is idle and may start work (after an
          arrival, completion or rejection).  [None] leaves it idle until
          the next event.  The chosen job must be pending on that machine
          and the speed positive. *)
}

(** {1 Running}

    {b Telemetry.}  Passing [?obs] (a {!Sched_obs.Obs.t}) makes the driver
    record, into the handle's registry:

    - counters [sched_dispatch_total], [sched_start_total],
      [sched_complete_total], [sched_reject_total],
      [sched_reject_midrun_total], [sched_restart_total] — incremented at
      exactly the sites that emit the corresponding {!Trace} events, so they
      reconcile with the trace and with {!Sched_model.Metrics.rejection};
    - gauges [sched_pending_jobs{machine="i"}] (dispatched, not yet started
      or rejected; restarts re-enter) and [sched_inflight_jobs{machine="i"}]
      (dispatched, not yet completed or rejected);
    - when the handle's sink aggregates spans ({!Sched_obs.Obs.timed}), a
      duration histogram [obs_phase_seconds{phase=...}] over phases
      [on_arrival], [select], [segment] and [heap].

    Telemetry is strictly observational: the schedule, policy state and
    trace are byte-identical with and without [?obs] (pinned by the
    differential tests), and the default {!Sched_obs.Sink.null} sink never
    reads a clock.

    {b Flight recorder.}  Passing [?recorder] (a {!Sched_obs.Recorder.t})
    makes the driver write one ring entry per dispatch / start / complete
    / reject / restart event, carrying decision provenance the counters
    lose: the candidate machine set and queue score behind each dispatch,
    and the theorem-budget counters (rejections and rejected weight so
    far) at each rejection.  Both cores record at the same sites with the
    same float-operation order, so recorder contents — like schedules —
    are byte-identical across cores and with the recorder on or off
    (differential-gated).  The write path is allocation-free and
    [\@rejlint.hot]-proven, so attaching a recorder keeps the flat core's
    words-per-event ceilings.  Export with {!Trace_export} (NDJSON,
    [rejsched.trace/2]) or {!Perfetto} (Chrome [trace_event] JSON). *)

(** {b Oracle auditing.}  Passing [?check:true] runs the independent
    {!Sched_check.Oracle} over the finished schedule before it is returned:
    every structural invariant (non-preemption — relaxed automatically when
    the run actually restarted a job — machine disjointness, release
    respect, outcome consistency, deadlines) plus a reconciliation of the
    incremental {!live_metrics} against a from-scratch
    {!Sched_model.Metrics} recomputation at 1e-9 relative tolerance.  A
    violation raises {!Sched_check.Oracle.Violations}; with [?obs] the
    verdict is also recorded as [sched_check_*] counters; with
    [?recorder] the violation message carries the recorder's last
    entries as [rejsched.trace/2] NDJSON forensics.  Auditing never
    influences the run — the schedule is byte-identical with and without
    it. *)

val run :
  ?trace:Trace.t ->
  ?obs:Sched_obs.Obs.t ->
  ?recorder:Sched_obs.Recorder.t ->
  ?check:bool ->
  ?impl:impl ->
  'a policy ->
  Instance.t ->
  Schedule.t * 'a
(** Simulates the policy on the instance.  Raises [Invalid_argument] on an
    ill-formed policy decision (dispatch to an ineligible machine, rejecting
    an unknown job, starting a non-pending job, non-positive speed).  The
    returned ['a] is the policy's final state, which instrumented policies
    use to expose analysis data (e.g. the dual variables of Lemma 4).

    [?impl] picks the core for this run (default: {!default_impl}).  The
    result does not depend on it; the flat core is ~2x+ faster and, with
    [?obs], additionally exports counters
    [sched_flat_loop_minor_words_total] / [sched_flat_loop_events_total] —
    the [Gc.minor_words] delta across the event loop and the events
    processed, whose ratio is the allocations-per-event figure the bench
    and the allocation-regression test gate on. *)

val run_live :
  ?trace:Trace.t ->
  ?obs:Sched_obs.Obs.t ->
  ?recorder:Sched_obs.Recorder.t ->
  ?check:bool ->
  ?impl:impl ->
  'a policy ->
  Instance.t ->
  Schedule.t * 'a * live_metrics
(** [run] additionally returning the final incremental-metrics snapshot. *)

val run_schedule :
  ?trace:Trace.t ->
  ?obs:Sched_obs.Obs.t ->
  ?recorder:Sched_obs.Recorder.t ->
  ?check:bool ->
  ?impl:impl ->
  'a policy ->
  Instance.t ->
  Schedule.t
(** [run] dropping the policy state. *)

(** {1 Incremental sessions}

    The flat core as a long-lived engine: open a session over the
    machine fleet alone, feed arrivals as they become known, drain the
    event loop up to a horizon, and close to materialize the schedule.
    {!run} on the flat core {e is} a session — open, feed every job,
    close — so the batch path is a verbatim replay of the session path
    and all batch differential gates pin this machinery too.

    {b Byte-identity.}  Provided jobs are fed in strictly increasing
    [(release, id)] order (the order {!Sched_model.Instance.jobs_by_release}
    realizes) and each job is fed before any drain passes its release
    (enforced: {!Session.feed} rejects a release behind the drained
    horizon), the session's schedule, trace, recorder ring and live
    metrics are byte-identical to the uninterrupted {!run} over the same
    jobs — regardless of how the stream is chunked into feed/drain
    cycles.  The stream differential suite pins this across the fuzz
    corpus, every registry policy and batch sizes [{1, 7, all}].

    {b Checkpoint/restore.}  {!Session.freeze} marshals the complete
    session — flat columns, policy state, trace, recorder, feed cursor —
    into a binary payload; {!Session.thaw} rebuilds a live session from
    it.  Resuming a frozen session replays the remaining stream exactly
    as the uninterrupted run would have: suspend/resume at any event
    boundary is byte-identical (pinned by the checkpoint suite).  The
    payload embeds code pointers ([Marshal.Closures]) and is therefore
    valid only for the executable that produced it; wrap it in
    {!Sched_sim.Snapshot} for a self-describing container whose
    magic/version/checksum fail closed on anything else.

    {b Bounded memory.}  [~retire:true] folds completed segments into
    the rolling accumulators instead of storing them and drops settled
    jobs' boxed handles, so resident memory is bounded by the live set
    plus the flat columns; {!Session.close} then returns [None] instead
    of a schedule (live metrics remain exact).  Retirement cannot be
    combined with [~check] — the oracle needs the full schedule. *)

module Session : sig
  type 'a t
  (** A session running policy state ['a].  Not thread-safe; one writer. *)

  val open_session :
    ?trace:Trace.t ->
    ?obs:Sched_obs.Obs.t ->
    ?recorder:Sched_obs.Recorder.t ->
    ?check:bool ->
    ?retire:bool ->
    ?name:string ->
    machines:Machine.t array ->
    'a policy ->
    'a t
  (** Opens a session over the fleet.  The policy's [init] sees a
      machines-only instance (zero jobs): registry policies size their
      per-job state lazily, so this is unobservable.  [?check] audits
      the materialized schedule at {!close} with the oracle;
      [?retire] enables segment retirement; [?name] (default
      ["stream"]) names the instance {!close} materializes, letting a
      streamed schedule serialize byte-identically to a batch run over a
      same-named instance.  Raises [Invalid_argument] when [check] and
      [retire] are both set, or on an invalid fleet. *)

  val feed : 'a t -> Job.t -> unit
  (** Queues one arrival.  Jobs must arrive in strictly increasing
      [(release, id)] order, at or after the drained horizon; ids must
      be distinct non-negative ints (dense [0..n-1] is only required if
      the session will materialize a schedule at {!close}).  Raises
      [Invalid_argument] on an out-of-order, duplicate or
      behind-the-horizon job, and on a closed session. *)

  val drain_until : 'a t -> Time.t -> unit
  (** Runs the event loop up to and including the horizon: every queued
      event with key [<= horizon] — arrivals fed so far, completions
      they cascade into — is processed, in exactly the order the batch
      loop would process it.  Advances the drained horizon (monotone;
      draining backwards is a no-op).  Raises on a closed session. *)

  val next_key : 'a t -> Time.t
  (** Key of the next queued event, [infinity] when idle — how far the
      serve loop may drain without outrunning the stream. *)

  val drained : 'a t -> Time.t
  (** The drained horizon ([neg_infinity] before the first
      {!drain_until}). *)

  val fed : 'a t -> int
  (** Jobs fed so far. *)

  val view : 'a t -> view
  val policy_state : 'a t -> 'a

  val trace : 'a t -> Trace.t option
  (** The trace the session records into, if any — for a thawed session
      this is the trace carried inside the frozen payload, which the
      serve loop can reach no other way (its emission cursor restarts at
      {!Trace.length}). *)

  val live_metrics : 'a t -> live_metrics
  (** Incremental metrics over what has been drained so far.  After
      {!close} (which drains everything), equals the batch run's final
      snapshot exactly ([Float.equal], field by field). *)

  val close : 'a t -> Schedule.t option * 'a * live_metrics
  (** Drains the queue dry, checks no machine was left with unfinished
      work, materializes the schedule ([None] under retirement) and
      audits it when the session was opened with [?check].  The
      schedule is byte-identical to {!run}'s over the same jobs.
      Raises [Invalid_argument] if already closed, and whatever the
      audit raises on a violation. *)

  val freeze : 'a t -> string
  (** The session's complete state as a binary payload (callable at any
      event boundary — between any feed/drain calls — on an open
      session).  The session remains usable; freezing is observation,
      not termination. *)

  val thaw : ?obs:Sched_obs.Obs.t -> 'a policy -> string -> 'a t
  (** Rebuilds a live session from a {!freeze} payload.  The policy
      must be the same policy (checked by name; its closures are taken
      fresh, all mutable policy state lives in the marshaled ['a]).
      Telemetry instruments are rebuilt against [?obs] — counters
      restart from the restoring process's registry, which is the one
      non-replayed observable.  Raises [Invalid_argument] on a
      truncated/corrupt payload or a policy mismatch. *)
end

(** {1 Sharded execution}

    A single run parallelized {e within} the event loop: machines are
    partitioned into [shards] contiguous shards, each owning its slice
    of the flat columns and its own completion-event heap, and every
    event is processed as a deterministic two-phase tick — phase 1,
    shards scan their own machines in parallel and {e propose} the
    arriving job's cheapest candidate against the read-only view; phase
    2, the proposals are folded in fixed (shard-index, then event-key)
    order and committed sequentially in canonical event order.  The
    schedule is therefore {b provably independent of [shards]}: results
    — schedule, trace, recorder ring, live metrics — are bit-identical
    to {!run} at every shard count (the shard differential suite pins
    S in [{1,2,4}] across the fuzz corpus and every registry policy).

    Phase 1 only pays off when the per-arrival machine scan dominates —
    the regime E15 targets (m in the thousands).  Policies opt in by
    exporting {!sharded_hooks}; without hooks, [on_arrival] runs
    sequentially in phase 2 and sharding only splits the event heaps. *)

type 'a sharded_hooks = {
  shard_cost : 'a -> view -> Machine.id -> Job.t -> float;
      (** Dispatch cost of a machine for the arriving job, evaluated
          against the read-only view.  Must be pure reads (no lazy
          structure wakes — the primary pending order only), never NaN
          for an eligible machine, and must reproduce the policy's own
          [on_arrival] argmin cost exactly. *)
  shard_resolve : 'a -> view -> Job.t -> target:Machine.id -> score:float -> decision;
      (** Phase-2 completion of [on_arrival] given the winning machine
          (the leftmost strict cost minimum over all machines) and its
          cost.  Runs sequentially and may mutate policy state; the
          contract is [shard_resolve st v j ~target ~score =
          on_arrival st v j] whenever [target]/[score] are that argmin. *)
}
(** The decomposition of a policy's [on_arrival] into a parallelizable
    read-only argmin (phase 1) and a sequential remainder (phase 2). *)

val run_sharded :
  ?trace:Trace.t ->
  ?obs:Sched_obs.Obs.t ->
  ?recorder:Sched_obs.Recorder.t ->
  ?check:bool ->
  ?hooks:'a sharded_hooks ->
  ?pool:Sched_stats.Pool.t ->
  shards:int ->
  'a policy ->
  Instance.t ->
  Schedule.t * 'a * live_metrics
(** Runs the policy on the flat core with [shards] machine shards.
    Raises [Invalid_argument] when [shards < 1].  With [?hooks] and
    [shards > 1], phase 1 runs on [?pool] — or on the ambient
    {!Sched_stats.Pool} when the caller is already inside a pool task;
    with neither, proposals are evaluated sequentially (the process-wide
    default pool is deliberately not consulted: policy execution stays
    free of global state).  Shard regions nest safely inside pool tasks.
    [shards = 1] (or no hooks) never touches a pool.  All choices are
    bit-identical; only wall time differs.  Always uses the flat core
    regardless of {!default_impl}. *)
