(** Event log of a simulation run.

    The trace is the raw material for offline analyses that must not reach
    into policy internals: the dual-fitting certificate (Lemma 4 of the
    paper) reconstructs [|U_i(t)|] and the definitive-finish bookkeeping
    entirely from these events. *)

open Sched_model

type event =
  | Dispatch of { job : Job.id; machine : Machine.id }
      (** The policy routed the newly released job to a machine. *)
  | Start of { job : Job.id; machine : Machine.id; speed : float }
  | Complete of { job : Job.id; machine : Machine.id }
  | Reject of {
      job : Job.id;
      machine : Machine.id;
      was_running : bool;
      remaining : float;  (** Remaining volume at the rejection instant
                              (equals the full size when never started). *)
    }
  | Restart of {
      job : Job.id;
      machine : Machine.id;
      wasted : float;  (** Volume processed and discarded by the kill. *)
    }

type entry = { time : Time.t; event : event }

type t

val create : unit -> t
val record : t -> Time.t -> event -> unit
val events : t -> entry list
(** In chronological (recording) order. *)

val length : t -> int

val since : t -> int -> entry list
(** [since t k] — the entries recorded after the first [k], oldest
    first: the incremental-emission cursor of the serve loop
    ([since t 0 = events t]).  O(new entries), not O(length). *)

val queue_profile : t -> machines:int -> (Machine.id * (Time.t * int) list) list
(** Per machine, the step function of [|U_i(t)|] (dispatched, not yet
    completed or rejected): a list of [(time, new value)] changes, starting
    implicitly from 0. *)

val pending_profile : t -> machines:int -> (Machine.id * (Time.t * int) list) list
(** Per machine, the step function of the {e pending} population
    (dispatched, not yet started): +1 on [Dispatch], -1 on [Start], -1 on a
    pending-state [Reject], and +1 again on [Restart] (the killed job
    re-enters the queue).  A mid-run [Reject] and a [Complete] leave it
    unchanged — the job already left the pending set at its [Start]. *)

val pp_entry : Format.formatter -> entry -> unit
