(* Self-describing container for session checkpoints.

   The payload ([Driver.Session.freeze]'s marshaled bytes) embeds code
   pointers and is only meaningful to the executable that produced it,
   so the container's job is to fail closed — cheaply and *before* the
   payload reaches [Marshal.from_string], whose behavior on corrupt
   input is undefined — on anything that is not an intact snapshot from
   a compatible writer.  Layout (all integers big-endian):

     magic   13 bytes  "rejsched-snap"
     version  4 bytes  container format version (this file's [version])
     policy   4 bytes length + bytes   registry policy name
     payload  8 bytes length + bytes   opaque session freeze
     checksum 8 bytes  FNV-1a 64 over everything above

   The checksum is integrity, not authentication: it catches the
   truncation/bit-rot class of corruption, while [Marshal]'s own header
   validation (plus the same-executable closure check) catches stale
   builds. *)

type error =
  | Bad_magic
  | Bad_version of int
  | Truncated
  | Checksum_mismatch

let magic = "rejsched-snap"
let version = 1

let error_to_string = function
  | Bad_magic -> "not a rejsched snapshot (bad magic)"
  | Bad_version v -> Printf.sprintf "unsupported snapshot version %d (expected %d)" v version
  | Truncated -> "truncated snapshot"
  | Checksum_mismatch -> "snapshot checksum mismatch (corrupt or bit-rotted)"

(* FNV-1a, 64-bit.  The constants exceed OCaml's 63-bit native ints, so
   the fold runs in [Int64]; boxing is irrelevant here (one pass per
   checkpoint, not per event). *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s pos len =
  let h = ref fnv_offset in
  for k = pos to pos + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[k]))) fnv_prime
  done;
  !h

let add_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let add_u64 buf (v : Int64.t) =
  for k = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xffL)))
  done

let wrap ~policy ~payload =
  if String.length policy > 0xffff then invalid_arg "Snapshot.wrap: unreasonable policy name";
  let buf = Buffer.create (String.length payload + 64) in
  Buffer.add_string buf magic;
  add_u32 buf version;
  add_u32 buf (String.length policy);
  Buffer.add_string buf policy;
  add_u64 buf (Int64.of_int (String.length payload));
  Buffer.add_string buf payload;
  let body = Buffer.contents buf in
  let out = Buffer.create (String.length body + 8) in
  Buffer.add_string out body;
  add_u64 out (fnv1a64 body 0 (String.length body));
  Buffer.contents out

let read_u32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let read_u64 s pos =
  let v = ref 0L in
  for k = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[pos + k]))
  done;
  !v

let unwrap s =
  let len = String.length s in
  let mlen = String.length magic in
  if len < mlen then Error (if String.starts_with ~prefix:s magic then Truncated else Bad_magic)
  else if not (String.equal (String.sub s 0 mlen) magic) then Error Bad_magic
  else if len < mlen + 8 then Error Truncated
  else begin
    let v = read_u32 s mlen in
    if v <> version then Error (Bad_version v)
    else begin
      let plen = read_u32 s (mlen + 4) in
      let pol_end = mlen + 8 + plen in
      if len < pol_end + 8 then Error Truncated
      else begin
        let policy = String.sub s (mlen + 8) plen in
        let paylen64 = read_u64 s pol_end in
        if Int64.compare paylen64 0L < 0 || Int64.compare paylen64 (Int64.of_int max_int) > 0
        then Error Truncated
        else begin
          let paylen = Int64.to_int paylen64 in
          let body_end = pol_end + 8 + paylen in
          if len < body_end + 8 then Error Truncated
          else begin
            (* Validate integrity before handing the payload to Marshal:
               trailing garbage after the checksum is also rejected. *)
            let stored = read_u64 s body_end in
            if len <> body_end + 8 then Error Truncated
            else if not (Int64.equal stored (fnv1a64 s 0 body_end)) then Error Checksum_mismatch
            else Ok (policy, String.sub s (pol_end + 8) paylen)
          end
        end
      end
    end
  end

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
