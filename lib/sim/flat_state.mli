(** Struct-of-arrays simulation state: the flat core behind
    {!Driver}'s default implementation.

    Everything the event loop touches per event — job columns, pending
    heaps, running slots, the event queue, metric accumulators — lives in
    unboxed [float array]s and [int array]s indexed by job/machine id, so
    the steady state allocates nothing on the minor heap once the
    growable arrays have warmed up.  Boxed values appear only at the
    edges: {!of_instance} (once, at the start), {!to_schedule} (once, at
    the end), and the [Job.t] handles policies obtain through the
    driver's read-only view.

    {b Byte-identity contract.}  The flat core must produce schedules
    byte-identical to the boxed driver's (the differential suite runs
    both over the whole fuzz corpus).  Three disciplines make that hold,
    and must survive any edit here:

    - every float expression copies the boxed code's operation order
      verbatim (float addition is not associative);
    - the pending heaps are {!Pqueue.Iheap}s — a line-for-line clone of
      {!Pqueue.Indexed}'s algorithm — driven by the same operation
      sequence, so [pend_iter]'s heap-array order (which policies fold
      floats over) coincides slot-for-slot;
    - event tags come from the same shared sequence counter, seeded by
      arrivals in release order, so equal-time event ordering matches.

    Mutators here do {e no} validation beyond array bounds; the driver
    enforces the policy-facing contract (and raises the user-facing
    [Invalid_argument]s) before calling in. *)

open Sched_model

type t

val of_instance : Instance.t -> t
(** Builds the flat mirror of the instance: job columns by id, size and
    density columns per machine, empty pending/running/event state.
    Raises [Invalid_argument] if the machine count exceeds the event-key
    range ({!Pqueue.Events.Key.max_machine}). *)

(** {1 Streaming construction}

    A session-mode state starts from the machine fleet alone and learns
    its jobs one {!add_job} at a time; the job columns (and the
    per-(machine, job) matrices, whose stride is the job capacity) grow
    by doubling, with the heap comparators re-blessed onto the
    reallocated arrays ({!Pqueue.Iheap.set_less}).  Feeding every job of
    an instance in [jobs_by_release] order reproduces the batch state's
    event tags — and therefore its schedule — byte for byte. *)

val of_stream : machines:Machine.t array -> t
(** An empty state over the fleet ([Invalid_argument] on an invalid
    fleet — ids must be dense 0..m-1 — exactly as instance construction
    validates).  {!instance} returns a machines-only stand-in until
    {!set_instance}. *)

val add_job : t -> Job.t -> unit
(** Registers the job's columns and queues its arrival event, consuming
    the shared sequence counter — the streaming counterpart of one
    {!seed_arrivals} step.  Jobs must be fed in ascending
    [(release, id)] order for batch byte-identity (the driver's session
    layer enforces this; ids may be arbitrary non-negative ints).
    Raises [Invalid_argument] on a duplicate id or a sizes array that
    does not match the fleet. *)

val reserve : t -> int -> unit
(** Pre-grows the job columns and the event queue for [cap] jobs — one
    reallocation instead of a doubling cascade when the count is known
    up front.  Never shrinks. *)

val set_retire : t -> bool -> unit
(** Toggles rolling retirement: segments are folded into the
    energy/makespan accumulators without being stored, and settled jobs
    drop their boxed [Job.t] handle, so memory is bounded by the live
    set plus the flat columns.  {!to_schedule} becomes unavailable.
    Set before the first event; never toggle mid-run. *)

val retire : t -> bool

val set_instance : t -> Instance.t -> unit
(** Swaps the materialized instance in at session close, so
    {!to_schedule} can build against it.  Raises [Invalid_argument] when
    its machine or job count disagrees with the state. *)

(** {1 Status codes}

    [loc] mirrors the boxed driver's location type as an int:
    [loc_unreleased], [loc_settled], or an even/odd encoding of
    pending/running on a machine. *)

val loc_unreleased : int
val loc_settled : int
val loc_pending : machine:int -> int
val loc_running : machine:int -> int
val loc_is_pending : int -> bool
val loc_is_running : int -> bool

val loc_machine : int -> int
(** The machine of a pending/running code (meaningless for the negative
    codes). *)

(** {1 Immutable reads} *)

val instance : t -> Instance.t
val n : t -> int
val m : t -> int

val job : t -> int -> Job.t
(** The boxed job handle, for the view accessors — O(1), no search. *)

val release : t -> int -> float
val weight : t -> int -> float
val min_size : t -> int -> float
val size : t -> machine:int -> job:int -> float
val eligible : t -> machine:int -> job:int -> bool

val cand_mask : t -> job:int -> int
(** Eligibility bitmask over machines — bit [k] for machine [k] up to
    61, machines beyond that saturate into bit 62.  Flight-recorder
    dispatch provenance; allocation-free. *)

val cand_count : t -> job:int -> int
(** Number of machines the job is eligible for.  Allocation-free. *)

val density : t -> machine:int -> job:int -> float
val total_weight : t -> float
val alpha : t -> int -> float
val mach_speed : t -> int -> float

(** {1 Clock and status} *)

val clock : t -> float
val set_clock : t -> float -> unit
val loc : t -> int -> int
val set_loc : t -> int -> int -> unit
val saw_restart : t -> bool
val set_saw_restart : t -> unit

(** {1 Pending sets}

    Five orders per machine (SPT, reverse SPT, weighted density,
    size-then-id, FIFO — the same orders as the boxed driver's heaps)
    plus O(1) incremental work/weight aggregates, pinned to exactly [0.]
    when the queue empties. *)

val pend_add : t -> int -> int -> unit
(** [pend_add t i id] — raises [Invalid_argument] if already present. *)

val pend_remove : t -> int -> int -> bool
(** [pend_remove t i id] — [false] when [id] is not pending on [i]. *)

val pend_count : t -> int -> int
val pend_work : t -> int -> float
val pend_weight : t -> int -> float

val pend_iter : t -> int -> f:(int -> unit) -> unit
(** Heap-array order of the SPT heap — slot-for-slot the order the boxed
    driver's [pending_iter] exposes. *)

val head_spt : t -> int -> int
(** Head job id of the given order, [-1] when the queue is empty. *)

val head_spt_rev : t -> int -> int
val head_density : t -> int -> int
val head_size_id : t -> int -> int
val head_fifo : t -> int -> int

(** {1 Running slots} *)

val run_job : t -> int -> int
(** Running job id on the machine, [-1] when idle. *)

val run_started : t -> int -> float
val run_rate : t -> int -> float
val run_finish : t -> int -> float
val epoch : t -> int -> int
val bump_epoch : t -> int -> unit
val set_running : t -> int -> job:int -> started:float -> rate:float -> finish:float -> unit
val clear_running : t -> int -> unit

(** {1 Events}

    Backed by {!Pqueue.Events}; the popped event is read back through the
    [ev_*] cursor accessors, so the loop never allocates an option. *)

val seed_arrivals : t -> unit
(** Pushes every job's arrival in release order, consuming the shared
    sequence counter — call exactly once, before the first
    {!push_finish}. *)

val push_finish : t -> machine:int -> time:float -> unit
(** Schedules a completion at [time] for the machine's {e current}
    epoch. *)

val next_event : t -> bool

val next_event_before : t -> limit:float -> bool
(** {!next_event}, but refuses to pop an event beyond the horizon —
    {!Pqueue.Events.pop_before} on the shared queue.  The session
    driver's bounded drain; callers box [limit] once per drain. *)

val next_key : t -> float
(** Key of the next queued event, or [infinity] when the queue is
    empty.  Allocation-free. *)

val events_pushed : t -> int
(** Total events pushed so far (arrivals + scheduled completions).  Once
    the queue has drained, this equals the number of events the loop
    processed — the denominator of the allocations-per-event metric. *)

val ev_time : t -> float
val ev_tag : t -> int
val ev_payload : t -> int

(** {1 Segments, accounting, outcomes} *)

val lay_segment :
  t -> job:int -> machine:int -> start:float -> stop:float -> speed:float -> unit
(** Appends the segment and folds it into the energy/makespan
    accumulators, in the boxed driver's float-operation order. *)

val seg_count : t -> int
val account_completion : t -> int -> float -> unit
val account_rejection : t -> int -> float -> was_running:bool -> unit

val outcome_completed :
  t -> job:int -> machine:int -> start:float -> speed:float -> finish:float -> unit
(** Raises [Invalid_argument] when the job already has an outcome. *)

val outcome_rejected : t -> job:int -> machine:int -> time:float -> was_running:bool -> unit

(** {1 Accumulator reads} *)

val completed : t -> int
val rejected : t -> int
val mid_run : t -> int
val flow : t -> float
val wflow : t -> float
val rej_flow : t -> float
val rej_wflow : t -> float
val max_flow : t -> float
val max_stretch : t -> float
val energy : t -> float
val makespan : t -> float
val rej_weight : t -> float

(** {1 Materialization} *)

val to_schedule : t -> Schedule.t
(** Builds the boxed schedule: segments in insertion order (the order the
    boxed driver laid them down), outcomes by job id.  Raises
    [Invalid_argument] if some job has no outcome.  The one deliberately
    boxing step, run once per simulation. *)

val invariant : t -> bool
(** Structural check (all five heaps consistent and equal-sized per
    machine), for tests. *)
