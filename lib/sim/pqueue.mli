(** Binary-heap priority queue keyed by [(float, int)].

    The integer tag breaks ties deterministically (insertion sequence or an
    event-kind rank), which the simulation relies on for reproducible event
    ordering at equal times. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> key:float -> tag:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Removes and returns the minimum element ([(key, tag, payload)]),
    comparing keys first and tags second. *)

val peek : 'a t -> (float * int * 'a) option

val clear : 'a t -> unit
