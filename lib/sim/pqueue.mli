(** Binary-heap priority queue keyed by [(float, int)].

    The integer tag breaks ties deterministically (insertion sequence or an
    event-kind rank), which the simulation relies on for reproducible event
    ordering at equal times. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> key:float -> tag:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Removes and returns the minimum element ([(key, tag, payload)]),
    comparing keys first and tags second. *)

val peek : 'a t -> (float * int * 'a) option

val clear : 'a t -> unit

(** Indexed min-heap: a binary heap that additionally tracks the heap slot
    of every element by a caller-supplied non-negative integer id (job ids
    in the simulator), giving O(log n) removal of {e arbitrary} elements —
    the operation mid-run rejection needs — on top of the usual O(log n)
    insert/extract-min.

    The comparison is supplied at creation time; key ties are broken by the
    id, so the heap realizes a {e total} order and its answers are
    independent of the insertion/removal history.  Ids must be unique while
    present; the position table grows to the largest id seen (dense ids,
    as job ids are, cost O(max id) words). *)
module Indexed : sig
  type ('k, 'v) t

  val create : cmp:('k -> 'k -> int) -> unit -> ('k, 'v) t
  val size : ('k, 'v) t -> int
  val is_empty : ('k, 'v) t -> bool
  val mem : ('k, 'v) t -> id:int -> bool

  val add : ('k, 'v) t -> id:int -> key:'k -> 'v -> unit
  (** Raises [Invalid_argument] if [id] is negative or already present. *)

  val remove : ('k, 'v) t -> id:int -> ('k * 'v) option
  (** Removes the element with the given id in O(log n); [None] when
      absent. *)

  val min_elt : ('k, 'v) t -> (int * 'k * 'v) option
  (** Smallest element under [(cmp, id)], without removing it. *)

  val pop_min : ('k, 'v) t -> (int * 'k * 'v) option

  val iter : ('k, 'v) t -> f:(int -> 'k -> 'v -> unit) -> unit
  (** Iterates in heap-array order: deterministic for a given operation
      history, but {e not} sorted. *)

  val fold : ('k, 'v) t -> init:'a -> f:('a -> int -> 'k -> 'v -> 'a) -> 'a
  val to_list : ('k, 'v) t -> (int * 'k * 'v) list
  val clear : ('k, 'v) t -> unit

  val invariant : ('k, 'v) t -> bool
  (** Structural check (heap property + position-table consistency), for
      tests. *)
end
