(** Binary-heap priority queue keyed by [(float, int)].

    The integer tag breaks ties deterministically (insertion sequence or an
    event-kind rank), which the simulation relies on for reproducible event
    ordering at equal times. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> key:float -> tag:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Removes and returns the minimum element ([(key, tag, payload)]),
    comparing keys first and tags second. *)

val peek : 'a t -> (float * int * 'a) option

val clear : 'a t -> unit

(** Flat event queue: the allocation-free counterpart of the polymorphic
    heap above, ordered by the same [(key, tag)] lexicographic rule with
    primitive float/int comparisons ([-0.] equals [0.], as everywhere else
    in the simulator).  Keys, tags and payloads live in parallel unboxed
    arrays and [pop] deposits the minimum into cursor fields read back via
    {!Events.key}/{!Events.tag}/{!Events.payload}, so the driver's steady
    state never touches the minor heap.  Keys must be finite and tags
    unique while queued. *)
module Events : sig
  (** Int-encoded event keys.  A tag is the insertion sequence plus, for
      arrivals, a high kind bit — so at equal times completions (bit
      clear) sort before arrivals (bit set), and within a kind the
      sequence decides, exactly as the boxed driver's tags do.  A
      completion payload packs [(machine, epoch)] into one int.  Encoders
      raise [Invalid_argument] out of range; within range, encode/decode
      is a bijection (property-tested). *)
  module Key : sig
    val max_seq : int
    (** Largest encodable sequence number, [2^40 - 1]. *)

    val max_machine : int
    (** Largest encodable machine id, [2^20 - 1]. *)

    val max_epoch : int
    (** Largest encodable epoch, [2^42 - 1]. *)

    val finish_tag : seq:int -> int
    val arrival_tag : seq:int -> int
    val is_arrival : tag:int -> bool
    val seq_of : tag:int -> int

    val finish_payload : machine:int -> epoch:int -> int
    val machine_of : payload:int -> int
    val epoch_of : payload:int -> int

    val compare : float -> int -> float -> int -> int
    (** [compare k1 t1 k2 t2] is the total order the queue realizes over
        [(key, tag)] pairs with finite keys and unique tags: keys first
        (primitive float comparison), tags second ([Int.compare]).
        Exposed for the total-order property tests. *)
  end

  type t

  val create : unit -> t
  val size : t -> int
  val is_empty : t -> bool
  val push : t -> key:float -> tag:int -> payload:int -> unit

  val pop : t -> bool
  (** Removes the minimum, depositing it in the cursor; [false] when
      empty.  Allocation-free. *)

  val pop_before : t -> limit:float -> bool
  (** {!pop}, but refuses to pop an event whose key exceeds [limit]:
      [false] when the queue is empty {e or} its minimum key is
      [> limit] (the cursor is untouched in both refusal cases).
      [pop_before t ~limit:infinity] behaves exactly like [pop t] for
      the finite keys the queue admits.  Allocation-free per call given
      the caller boxes [limit] once per drain, not per event. *)

  val key : t -> float
  (** Key of the most recently popped event.  Meaningless before the
      first successful {!pop}. *)

  val tag : t -> int
  val payload : t -> int

  val peek_key : t -> float
  (** Key of the current minimum, without removing it.  Meaningless when
      the queue is empty (check {!is_empty} first); allocation-free. *)

  val peek_tag : t -> int
  (** Tag of the current minimum, without removing it.  Same contract as
      {!peek_key}. *)

  val ensure_capacity : t -> int -> unit
  (** Grows the backing arrays to hold at least [n] queued events, so a
      caller that knows the arrival count up front pays one allocation
      instead of a doubling cascade.  Never shrinks. *)

  val clear : t -> unit
end

(** Indexed min-heap: a binary heap that additionally tracks the heap slot
    of every element by a caller-supplied non-negative integer id (job ids
    in the simulator), giving O(log n) removal of {e arbitrary} elements —
    the operation mid-run rejection needs — on top of the usual O(log n)
    insert/extract-min.

    The comparison is supplied at creation time; key ties are broken by the
    id, so the heap realizes a {e total} order and its answers are
    independent of the insertion/removal history.  Ids must be unique while
    present; the position table grows to the largest id seen (dense ids,
    as job ids are, cost O(max id) words). *)
module Indexed : sig
  type ('k, 'v) t

  val create : cmp:('k -> 'k -> int) -> unit -> ('k, 'v) t
  val size : ('k, 'v) t -> int
  val is_empty : ('k, 'v) t -> bool
  val mem : ('k, 'v) t -> id:int -> bool

  val add : ('k, 'v) t -> id:int -> key:'k -> 'v -> unit
  (** Raises [Invalid_argument] if [id] is negative or already present. *)

  val remove : ('k, 'v) t -> id:int -> ('k * 'v) option
  (** Removes the element with the given id in O(log n); [None] when
      absent. *)

  val min_elt : ('k, 'v) t -> (int * 'k * 'v) option
  (** Smallest element under [(cmp, id)], without removing it. *)

  val pop_min : ('k, 'v) t -> (int * 'k * 'v) option

  val iter : ('k, 'v) t -> f:(int -> 'k -> 'v -> unit) -> unit
  (** Iterates in heap-array order: deterministic for a given operation
      history, but {e not} sorted. *)

  val fold : ('k, 'v) t -> init:'a -> f:('a -> int -> 'k -> 'v -> 'a) -> 'a
  val to_list : ('k, 'v) t -> (int * 'k * 'v) list
  val clear : ('k, 'v) t -> unit

  val invariant : ('k, 'v) t -> bool
  (** Structural check (heap property + position-table consistency), for
      tests. *)
end

(** Flat indexed min-heap over bare ids: {!Indexed} with the boxing
    stripped out.  The elements {e are} the ids, held in plain
    [int array]s, so add/remove/min are allocation-free once the arrays
    have grown.  The strict order is a closure over whatever flat state
    the caller keys on (it must be total over the ids present — break
    ties on the id itself).

    The algorithm is a line-for-line clone of {!Indexed}'s.  That is
    load-bearing: [Driver.pending_iter] exposes heap-array order to
    policies, some of which fold floats over it, so the flat core must
    reproduce {!Indexed}'s slot layout exactly for schedules to stay
    byte-identical. *)
module Iheap : sig
  type t

  val create : less:(int -> int -> bool) -> unit -> t

  val set_less : t -> less:(int -> int -> bool) -> unit
  (** Replaces the strict order's closure without touching the heap
      shape — the re-bless hook for streaming column growth, where the
      arrays a comparator captured are reallocated wholesale.  [less]
      must realize the {e same} total order over the ids currently
      present, or the heap invariant silently breaks. *)

  val size : t -> int
  val is_empty : t -> bool
  val mem : t -> id:int -> bool

  val add : t -> id:int -> unit
  (** Raises [Invalid_argument] if [id] is negative or already present. *)

  val remove : t -> id:int -> bool
  (** Removes the element with the given id in O(log n); [false] when
      absent. *)

  val min_id : t -> int
  (** Smallest id under [less], or [-1] when empty. *)

  val get : t -> int -> int
  (** [get t slot] is the id in heap-array slot [slot] (< {!size}). *)

  val iter : t -> f:(int -> unit) -> unit
  (** Iterates in heap-array order, exactly as {!Indexed.iter} does. *)

  val clear : t -> unit

  val invariant : t -> bool
  (** Structural check (heap property + position-table consistency), for
      tests. *)
end
