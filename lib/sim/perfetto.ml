(* Chrome trace_event JSON from a flight recorder, so any run opens in
   Perfetto (ui.perfetto.dev) or chrome://tracing as a per-machine
   timeline: one thread row per machine, an "X" (complete) slice per
   executed span, and instant markers at every rejection and restart.

   Timestamps: trace_event wants microseconds; one simulation time unit
   maps to one millisecond (x1000), which keeps typical instances in a
   readable zoom range.  Pure string production — callers own the I/O. *)

module J = Sched_obs.Ndjson
module R = Sched_obs.Recorder

let us t = t *. 1000.
let pid = 1
let tid_of_machine i = i + 1

(* One trace_event object; [args] (possibly empty) is spliced as a
   nested object, which the flat [J.obj] builder cannot express. *)
let event fields args =
  let base = J.obj fields in
  if args = [] then base
  else String.sub base 0 (String.length base - 1) ^ ",\"args\":" ^ J.obj args ^ "}"

let slice ~name ~cat ~machine ~start ~stop args =
  event
    [
      ("name", J.String name);
      ("cat", J.String cat);
      ("ph", J.String "X");
      ("ts", J.Float (us start));
      ("dur", J.Float (us (stop -. start)));
      ("pid", J.Int pid);
      ("tid", J.Int (tid_of_machine machine));
    ]
    args

let instant ~name ~cat ~machine ~time args =
  event
    [
      ("name", J.String name);
      ("cat", J.String cat);
      ("ph", J.String "i");
      ("s", J.String "t");
      ("ts", J.Float (us time));
      ("pid", J.Int pid);
      ("tid", J.Int (tid_of_machine machine));
    ]
    args

let metadata ~name ~tid args =
  match tid with
  | None -> event [ ("name", J.String name); ("ph", J.String "M"); ("pid", J.Int pid) ] args
  | Some tid ->
      event
        [ ("name", J.String name); ("ph", J.String "M"); ("pid", J.Int pid); ("tid", J.Int tid) ]
        args

let to_chrome ~machines recorder =
  let events = ref [] in
  let emit e = events := e :: !events in
  emit (metadata ~name:"process_name" ~tid:None [ ("name", J.String "rejsched") ]);
  for i = 0 to machines - 1 do
    emit
      (metadata ~name:"thread_name"
         ~tid:(Some (tid_of_machine i))
         [ ("name", J.String (Printf.sprintf "machine %d" i)) ])
  done;
  (* Pair each start with the next complete/reject/restart on its
     machine.  A start whose terminator fell off the ring (or vice
     versa) yields no slice — the markers still show. *)
  let open_start = Array.make (if machines > 0 then machines else 1) None in
  List.iter
    (fun (en : R.entry) ->
      let i = en.machine in
      match en.kind with
      | R.Dispatch -> ()
      | R.Start -> if i >= 0 && i < machines then open_start.(i) <- Some en
      | R.Complete | R.Reject | R.Restart ->
          if i >= 0 && i < machines then begin
            (match open_start.(i) with
            | Some (st : R.entry) when st.job = en.job && en.time >= st.time ->
                emit
                  (slice
                     ~name:(Printf.sprintf "job %d" en.job)
                     ~cat:"run" ~machine:i ~start:st.time ~stop:en.time
                     [ ("job", J.Int en.job); ("speed", J.Float st.value) ])
            | _ -> ());
            open_start.(i) <- None;
            match en.kind with
            | R.Reject ->
                emit
                  (instant
                     ~name:(Printf.sprintf "reject job %d" en.job)
                     ~cat:"reject" ~machine:i ~time:en.time
                     [
                       ("job", J.Int en.job);
                       ("was_running", J.Bool (en.flag <> 0));
                       ("remaining", J.Float en.value);
                       ("rejected_total", J.Int en.aux);
                       ("rejected_weight", J.Float en.budget);
                     ])
            | R.Restart ->
                emit
                  (instant
                     ~name:(Printf.sprintf "restart job %d" en.job)
                     ~cat:"restart" ~machine:i ~time:en.time
                     [ ("job", J.Int en.job); ("wasted", J.Float en.value) ])
            | _ -> ()
          end)
    (R.entries recorder);
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun k e ->
      if k > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf e)
    (List.rev !events);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

(* --- shape validation -------------------------------------------------- *)

(* A minimal JSON reader, just enough to check the trace_event shape we
   emit (and that CI smoke-runs gate on) without external dependencies. *)

type json =
  | Jobj of (string * json) list
  | Jarr of json list
  | Jstr of string
  | Jnum of float
  | Jbool of bool
  | Jnull

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %c" c);
    advance ()
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | 'u' ->
              (* Keep the escape verbatim; only shape matters here. *)
              Buffer.add_string buf "\\u";
              advance ()
          | c ->
              Buffer.add_char buf c;
              advance ());
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "malformed number"
  in
  let literal word v =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      v
    end
    else fail "malformed literal"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                fields ((k, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Jobj (fields [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Jarr []
        end
        else begin
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                items (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Jarr (items [])
        end
    | '"' -> Jstr (string_body ())
    | 't' -> Jbool (literal "true" true)
    | 'f' -> Jbool (literal "false" false)
    | 'n' -> literal "null" Jnull
    | _ -> Jnum (number ())
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function Jobj kvs -> List.assoc_opt name kvs | _ -> None

let check_event k e =
  let where what = Error (Printf.sprintf "traceEvents[%d]: %s" k what) in
  match e with
  | Jobj _ -> (
      match field "ph" e with
      | Some (Jstr ph) -> (
          let has_str name = match field name e with Some (Jstr _) -> true | _ -> false in
          let has_num name = match field name e with Some (Jnum _) -> true | _ -> false in
          if not (has_str "name") then where "missing string \"name\""
          else if not (has_num "pid") then where "missing numeric \"pid\""
          else
            match ph with
            | "M" -> Ok ()
            | "X" ->
                if not (has_num "ts") then where "\"X\" event missing numeric \"ts\""
                else if not (has_num "dur") then where "\"X\" event missing numeric \"dur\""
                else if not (has_num "tid") then where "\"X\" event missing numeric \"tid\""
                else Ok ()
            | "i" ->
                if not (has_num "ts") then where "\"i\" event missing numeric \"ts\""
                else if not (has_num "tid") then where "\"i\" event missing numeric \"tid\""
                else Ok ()
            | ph -> where (Printf.sprintf "unexpected ph %S" ph))
      | _ -> where "missing string \"ph\"")
  | _ -> where "not an object"

let validate text =
  match parse text with
  | exception Bad msg -> Error ("invalid JSON: " ^ msg)
  | j -> (
      match field "traceEvents" j with
      | Some (Jarr events) ->
          let rec go k = function
            | [] -> Ok ()
            | e :: rest -> ( match check_event k e with Ok () -> go (k + 1) rest | e -> e)
          in
          go 0 events
      | Some _ -> Error "\"traceEvents\" is not an array"
      | None -> Error "top-level object has no \"traceEvents\"")
