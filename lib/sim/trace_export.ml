(* NDJSON rendering of a trace: one schema-versioned JSON object per event,
   in chronological order.  Pure string production — callers own the I/O. *)

module J = Sched_obs.Ndjson

let schema = "rejsched.trace/1"

let event_fields : Trace.event -> (string * J.value) list = function
  | Trace.Dispatch { job; machine } ->
      [ ("event", J.String "dispatch"); ("job", J.Int job); ("machine", J.Int machine) ]
  | Trace.Start { job; machine; speed } ->
      [
        ("event", J.String "start");
        ("job", J.Int job);
        ("machine", J.Int machine);
        ("speed", J.Float speed);
      ]
  | Trace.Complete { job; machine } ->
      [ ("event", J.String "complete"); ("job", J.Int job); ("machine", J.Int machine) ]
  | Trace.Reject { job; machine; was_running; remaining } ->
      [
        ("event", J.String "reject");
        ("job", J.Int job);
        ("machine", J.Int machine);
        ("was_running", J.Bool was_running);
        ("remaining", J.Float remaining);
      ]
  | Trace.Restart { job; machine; wasted } ->
      [
        ("event", J.String "restart");
        ("job", J.Int job);
        ("machine", J.Int machine);
        ("wasted", J.Float wasted);
      ]

let entry_line (en : Trace.entry) =
  J.line ~schema (("time", J.Float en.time) :: event_fields en.event)

let iter_lines t f = List.iter (fun en -> f (entry_line en)) (Trace.events t)

let to_ndjson t =
  let buf = Buffer.create 4096 in
  iter_lines t (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n');
  Buffer.contents buf

(* --- rejsched.trace/2: flight-recorder entries with provenance -------- *)

let schema_v2 = "rejsched.trace/2"

module R = Sched_obs.Recorder

(* /2 lines keep every /1 field name (time/event/job/machine and the
   per-kind payloads) and add the provenance columns: a "seq" absolute
   event number on every line, candidate set + scores on dispatch,
   size on start, flow on complete, budget counters on reject. *)
let recorder_entry_line (en : R.entry) =
  let tail =
    match en.kind with
    | R.Dispatch ->
        [
          ("cands", J.Int en.flag);
          ("mask", J.Int en.aux);
          ("pending_work", J.Float en.value);
          ("score", J.Float en.score);
        ]
    | R.Start -> [ ("speed", J.Float en.value); ("size", J.Float en.score) ]
    | R.Complete -> [ ("flow", J.Float en.value) ]
    | R.Reject ->
        [
          ("was_running", J.Bool (en.flag <> 0));
          ("remaining", J.Float en.value);
          ("rejected_total", J.Int en.aux);
          ("rejected_weight", J.Float en.budget);
        ]
    | R.Restart -> [ ("wasted", J.Float en.value) ]
  in
  J.line ~schema:schema_v2
    (("seq", J.Int en.seq)
    :: ("time", J.Float en.time)
    :: ("event", J.String (R.kind_to_string en.kind))
    :: ("job", J.Int en.job)
    :: ("machine", J.Int en.machine)
    :: tail)

let recorder_lines ?last rec_ = List.map recorder_entry_line (R.entries ?last rec_)

let recorder_to_ndjson ?last rec_ =
  let buf = Buffer.create 4096 in
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    (recorder_lines ?last rec_);
  Buffer.contents buf

(* The inverse of the tagging convention in [J.line]: every line the two
   exporters emit starts with {"schema":"..."}, and consumers dispatch on
   that tag before parsing the rest.  [None] when the line is not a
   schema-tagged record. *)
let schema_of_line line =
  let prefix = "{\"schema\":\"" in
  let plen = String.length prefix in
  if String.length line < plen || String.sub line 0 plen <> prefix then None
  else
    match String.index_from_opt line plen '"' with
    | None -> None
    | Some stop -> Some (String.sub line plen (stop - plen))
