(* NDJSON rendering of a trace: one schema-versioned JSON object per event,
   in chronological order.  Pure string production — callers own the I/O. *)

module J = Sched_obs.Ndjson

let schema = "rejsched.trace/1"

let event_fields : Trace.event -> (string * J.value) list = function
  | Trace.Dispatch { job; machine } ->
      [ ("event", J.String "dispatch"); ("job", J.Int job); ("machine", J.Int machine) ]
  | Trace.Start { job; machine; speed } ->
      [
        ("event", J.String "start");
        ("job", J.Int job);
        ("machine", J.Int machine);
        ("speed", J.Float speed);
      ]
  | Trace.Complete { job; machine } ->
      [ ("event", J.String "complete"); ("job", J.Int job); ("machine", J.Int machine) ]
  | Trace.Reject { job; machine; was_running; remaining } ->
      [
        ("event", J.String "reject");
        ("job", J.Int job);
        ("machine", J.Int machine);
        ("was_running", J.Bool was_running);
        ("remaining", J.Float remaining);
      ]
  | Trace.Restart { job; machine; wasted } ->
      [
        ("event", J.String "restart");
        ("job", J.Int job);
        ("machine", J.Int machine);
        ("wasted", J.Float wasted);
      ]

let entry_line (en : Trace.entry) =
  J.line ~schema (("time", J.Float en.time) :: event_fields en.event)

let iter_lines t f = List.iter (fun en -> f (entry_line en)) (Trace.events t)

let to_ndjson t =
  let buf = Buffer.create 4096 in
  iter_lines t (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n');
  Buffer.contents buf
