(** One-call entry points for the three algorithms of the paper.

    Each runner returns the validated schedule together with the metrics a
    caller typically wants and the theoretical guarantee it should be
    checked against.  The examples and the CLI are built on this module;
    experiments use the underlying modules directly for instrumentation. *)

open Sched_model

type flow_result = {
  schedule : Schedule.t;
  flow : Metrics.flow;
  rejection : Metrics.rejection;
  competitive_bound : float;
      (** [2((1+eps_eff)/eps_eff)^2] at the effective epsilon
          [1/ceil(1/eps)] the integral counters realize — the ratio the
          theorem actually proves for this run (Theorem 1). *)
  rejection_budget : float;  (** [2 eps] (Theorem 1). *)
}

val run_flow : ?eps:float -> Instance.t -> flow_result
(** Theorem 1 algorithm; [eps] defaults to [0.25].  The returned schedule
    has been checked by {!Sched_model.Schedule.validate}. *)

type flow_energy_result = {
  schedule : Schedule.t;
  objective : float;  (** Weighted flow-time plus energy. *)
  weighted_flow : float;
  energy : float;
  rejection : Metrics.rejection;
  competitive_bound : float;  (** Theorem 2's constant at the best gamma. *)
  weight_budget : float;  (** [eps] fraction of total weight. *)
}

val run_flow_energy : ?eps:float -> Instance.t -> flow_energy_result
(** Theorem 2 algorithm; [eps] defaults to [0.25].  Machine [alpha]s come
    from the instance. *)

type energy_result = {
  schedule : Schedule.t;
  energy : float;
  competitive_bound : float;  (** [alpha^alpha] (Theorem 3). *)
}

val run_energy_min : Instance.t -> energy_result
(** Theorem 3 greedy; requires deadline-carrying, slot-aligned jobs. *)
