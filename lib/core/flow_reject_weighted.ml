open Sched_model
open Sched_sim

type config = { eps : float; rule1 : bool; rule2 : bool }

let config ?(rule1 = true) ?(rule2 = true) ~eps () =
  if not (eps > 0. && eps < 1.) then
    invalid_arg "Flow_reject_weighted.config: eps must be in (0,1)";
  { eps; rule1; rule2 }

type state = {
  cfg : config;
  instance : Instance.t;
  mutable v : float array;  (** Weight accumulated against the running job. *)
  c : float array;  (** Weight accumulated per machine since last reset. *)
  mutable rej1 : int;
  mutable rej2 : int;
}

(* Highest density first; ties by release then id. *)
let precede i (a : Job.t) (b : Job.t) =
  let da = a.weight /. Job.size a i and db = b.weight /. Job.size b i in
  if da <> db then da > db
  else if a.release <> b.release then a.release < b.release
  else a.id < b.id

(* Largest processing time among pending plus the just-dispatched job (for
   Rule 2w's victim): [p_ij] descending, ties by larger id — exactly the
   order of the driver's [pending_longest_tie_id] index. *)
let largest_pending view i (j_new : Job.t) =
  let bigger (a : Job.t) (b : Job.t) =
    let pa = Job.size a i and pb = Job.size b i in
    if pa <> pb then pa > pb else a.id > b.id
  in
  match Driver.pending_longest_tie_id view i with
  | None -> j_new
  | Some w -> if bigger w j_new then w else j_new

let lambda_ij eps view i (j : Job.t) =
  let pij = Job.size j i in
  let before = ref 0. and after_w = ref 0. in
  Driver.pending_iter view i (fun (l : Job.t) ->
      if precede i l j then before := !before +. Job.size l i else after_w := !after_w +. l.weight);
  (j.weight *. ((pij /. eps) +. !before +. pij)) +. (!after_w *. pij)

let argmin_machine instance (j : Job.t) cost =
  let best = ref None in
  for i = 0 to Instance.m instance - 1 do
    if Job.eligible j i then begin
      let c = cost i in
      match !best with
      | Some (_, c') when c' <= c -> ()
      | _ -> best := Some (i, c)
    end
  done;
  match !best with Some (i, _) -> i | None -> assert false

let init cfg instance =
  {
    cfg;
    instance;
    v = Array.make (Instance.n instance) 0.;
    c = Array.make (Instance.m instance) 0.;
    rej1 = 0;
    rej2 = 0;
  }

(* Streaming sessions init with zero jobs; the per-job counters grow on
   first sight of a larger id (batch runs pre-size to n). *)
let ensure st id =
  let len = Array.length st.v in
  if id >= len then begin
    let cap = max 16 (max (id + 1) (2 * len)) in
    let nv = Array.make cap 0. in
    Array.blit st.v 0 nv 0 len;
    st.v <- nv
  end

(* The sequential tail of [on_arrival] given the argmin machine; shared
   with the sharded resolve below. *)
let commit st view (j : Job.t) ~target =
  ensure st j.id;
  let eps = st.cfg.eps in
  st.c.(target) <- st.c.(target) +. j.weight;
  let rejections = ref [] in
  (match Driver.running_on view target with
  | Some r ->
      let k = r.Driver.job in
      st.v.(k.Job.id) <- st.v.(k.Job.id) +. j.weight;
      if st.cfg.rule1 && st.v.(k.Job.id) > k.Job.weight /. eps then begin
        rejections := k.Job.id :: !rejections;
        st.rej1 <- st.rej1 + 1
      end
  | None -> ());
  if st.cfg.rule2 then begin
    let victim = largest_pending view target j in
    if st.c.(target) >= (1. +. (1. /. eps)) *. victim.Job.weight then begin
      rejections := victim.Job.id :: !rejections;
      st.c.(target) <- 0.;
      st.rej2 <- st.rej2 + 1
    end
  end;
  { Driver.dispatch_to = target; reject = List.rev !rejections; restart = [] }

let on_arrival st view (j : Job.t) =
  let target = argmin_machine st.instance j (fun i -> lambda_ij st.cfg.eps view i j) in
  commit st view j ~target

(* Two-phase split for the sharded driver: the weighted lambda is pure
   reads of the primary pending order; the resolve ignores the score
   (no dual instrumentation here) and replays the tail. *)
let hooks =
  {
    Driver.shard_cost = (fun st view i j -> lambda_ij st.cfg.eps view i j);
    shard_resolve = (fun st view j ~target ~score:_ -> commit st view j ~target);
  }

let select st view i =
  match Driver.pending_densest view i with
  | None -> None
  | Some head ->
      st.v.(head.Job.id) <- 0.;
      Some { Driver.job = head.Job.id; speed = 1.0 }

let policy cfg = { Driver.name = "flow-reject-weighted"; init = init cfg; on_arrival; select }

let rejections st = (st.rej1, st.rej2)

let run ?trace cfg instance = Driver.run ?trace (policy cfg) instance
