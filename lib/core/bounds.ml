let check_eps eps =
  if not (eps > 0. && eps < 1.) then invalid_arg "Bounds: eps must lie in (0,1)"

let flow_competitive ~eps =
  check_eps eps;
  2. *. (((1. +. eps) /. eps) ** 2.)

let flow_rejection_budget ~eps =
  check_eps eps;
  2. *. eps

let rule1_threshold ~eps =
  check_eps eps;
  int_of_float (Float.ceil (1. /. eps))

let rule2_threshold ~eps =
  check_eps eps;
  int_of_float (Float.ceil (1. +. (1. /. eps)))

let immediate_rejection_lb ~delta = sqrt delta

(* alpha - 1 + ln(alpha - 1) > 0 iff alpha - 1 > W, where W + ln W = 0
   (W ~ 0.5671, the omega constant). *)
let gamma_term_positive alpha =
  let x = alpha -. 1. in
  x > 0. && x +. log x > 0.

let gamma ~eps ~alpha =
  check_eps eps;
  if alpha <= 1. then invalid_arg "Bounds.gamma: alpha must exceed 1";
  let base = (eps /. (1. +. eps)) ** (1. /. (alpha -. 1.)) in
  if gamma_term_positive alpha then
    base /. (alpha -. 1.)
    *. ((alpha -. 1. +. log (alpha -. 1.)) ** ((alpha -. 1.) /. alpha))
  else base

let flow_energy_envelope ~eps ~alpha =
  check_eps eps;
  if alpha <= 1. then invalid_arg "Bounds: alpha must exceed 1";
  (1. +. (1. /. eps)) ** (alpha /. (alpha -. 1.))

let flow_energy_ratio ~eps ~alpha ~gamma =
  check_eps eps;
  if alpha <= 1. then invalid_arg "Bounds: alpha must exceed 1";
  if gamma <= 0. then invalid_arg "Bounds: gamma must be positive";
  let d =
    (eps /. (1. +. eps))
    -. ((alpha -. 1.)
       *. ((eps /. (gamma *. (1. +. eps) *. (alpha -. 1.))) ** (alpha /. (alpha -. 1.))))
  in
  if d <= 0. then Float.infinity
  else (2. +. (alpha /. (gamma *. (alpha -. 1.))) +. (gamma ** alpha)) /. d

let gamma_best ~eps ~alpha =
  check_eps eps;
  if alpha <= 1. then invalid_arg "Bounds: alpha must exceed 1";
  (* Coarse log-grid scan followed by two rounds of local refinement; the
     ratio is unimodal in gamma on the region where D(gamma) > 0. *)
  let best = ref (1.0, flow_energy_ratio ~eps ~alpha ~gamma:1.0) in
  let consider g =
    let r = flow_energy_ratio ~eps ~alpha ~gamma:g in
    if r < snd !best then best := (g, r)
  in
  for k = -60 to 60 do
    consider (10. ** (float_of_int k /. 10.))
  done;
  for _round = 1 to 3 do
    let g0, _ = !best in
    for k = -20 to 20 do
      consider (g0 *. (1.3 ** (float_of_int k /. 20.)))
    done
  done;
  fst !best

let flow_energy_competitive ~eps ~alpha =
  let gamma = gamma_best ~eps ~alpha in
  flow_energy_ratio ~eps ~alpha ~gamma

let energy_competitive ~alpha =
  if alpha < 1. then invalid_arg "Bounds: alpha must be >= 1";
  alpha ** alpha

let energy_lb ~alpha =
  if alpha < 1. then invalid_arg "Bounds: alpha must be >= 1";
  (alpha /. 9.) ** alpha

let smooth_mu ~alpha =
  if alpha < 1. then invalid_arg "Bounds: alpha must be >= 1";
  (alpha -. 1.) /. alpha

let smooth_lambda ~alpha =
  if alpha < 1. then invalid_arg "Bounds: alpha must be >= 1";
  alpha ** (alpha -. 1.)
