(** The paper's Theorem 1 algorithm: online non-preemptive total flow-time
    minimization on unrelated machines with rejections.

    At every job release the algorithm computes, per machine,

    [lambda_ij = (1/eps) p_ij + sum_{l <= j} p_il + sum_{l > j} p_ij]

    over the pending jobs of machine [i] ordered by shortest processing time
    (ties by release, then id; [l <= j] includes [j] itself), dispatches to
    the argmin, and applies the two rejection rules:

    - {b Rule 1}: each running job [k] carries a counter [v_k] incremented
      whenever a job is dispatched to its machine during [k]'s execution;
      when [v_k] reaches [ceil(1/eps)], [k] is interrupted and rejected.
    - {b Rule 2}: each machine carries a counter [c_i] incremented at every
      dispatch; when [c_i] reaches [ceil(1 + 1/eps)], the pending job with
      the largest processing time is rejected and [c_i] resets to zero.

    Idle machines always start the shortest pending job (SPT).

    Theorem 1: the algorithm is [2((1+eps)/eps)^2]-competitive for total
    flow-time and rejects at most a [2 eps] fraction of the jobs.

    The configuration flags exist for the ablation experiment (E8): each
    rule can be disabled and the dual-fitting dispatch can be swapped for a
    naive greedy-completion-time dispatch. *)

open Sched_model
open Sched_sim

type dispatch_rule =
  | Dual_lambda  (** The paper's [lambda_ij] marginal-increase dispatch. *)
  | Greedy_load  (** Argmin of (remaining work + pending work + p_ij). *)

type config = {
  eps : float;  (** In (0,1): rejection budget knob. *)
  rule1 : bool;
  rule2 : bool;
  dispatch : dispatch_rule;
}

val config : ?rule1:bool -> ?rule2:bool -> ?dispatch:dispatch_rule -> eps:float -> unit -> config
(** Defaults: both rules on, [Dual_lambda] dispatch. *)

type state

val policy : config -> state Driver.policy
(** The online policy, to be run with {!Sched_sim.Driver.run}. *)

val hooks : state Driver.sharded_hooks
(** Two-phase split for {!Sched_sim.Driver.run_sharded}: the cost is the
    configured dispatch metric ([lambda_ij] or the greedy load), pure
    reads of the primary pending order; the resolve replays the
    sequential tail (dual fix, Rules 1 and 2).  Under [Greedy_load] the
    resolve recomputes the lambda argmin sequentially for the dual
    instrumentation. *)

val lambdas : state -> float array
(** After a run: the dual variables [lambda_j = eps/(1+eps) min_i lambda_ij]
    fixed at each job's arrival (Lemma 4 instrumentation), indexed by job
    id.  Defined with {!effective_eps}. *)

val effective_eps : state -> float
(** [1 / ceil(1/eps)]: the epsilon the integral counters actually realize
    (the paper's thresholds [1/eps] and [1 + 1/eps] are implicitly
    integer).  The run is exactly the paper's algorithm at this value, so
    rejection budgets and the dual certificate are stated against it;
    [effective_eps <= eps] always, hence all guarantees claimed at [eps]
    still hold. *)

val rule1_rejections : state -> int
val rule2_rejections : state -> int

val run :
  ?trace:Trace.t -> ?obs:Sched_obs.Obs.t -> config -> Instance.t -> Schedule.t * state
(** Convenience: build the policy and run it ([?obs] as in
    {!Sched_sim.Driver.run}). *)
