open Sched_model

type flow_result = {
  schedule : Schedule.t;
  flow : Metrics.flow;
  rejection : Metrics.rejection;
  competitive_bound : float;
  rejection_budget : float;
}

let run_flow ?(eps = 0.25) instance =
  let cfg = Flow_reject.config ~eps () in
  let schedule, state = Flow_reject.run cfg instance in
  Schedule.assert_valid ~check_deadlines:false schedule;
  (* The counters realize eps_eff = 1/ceil(1/eps) <= eps, so the ratio the
     theorem actually proves is the (larger) one at eps_eff; the rejection
     budget at the requested eps holds a fortiori. *)
  let eps_eff = Flow_reject.effective_eps state in
  {
    schedule;
    flow = Metrics.flow schedule;
    rejection = Metrics.rejection schedule;
    competitive_bound = Bounds.flow_competitive ~eps:eps_eff;
    rejection_budget = Bounds.flow_rejection_budget ~eps;
  }

type flow_energy_result = {
  schedule : Schedule.t;
  objective : float;
  weighted_flow : float;
  energy : float;
  rejection : Metrics.rejection;
  competitive_bound : float;
  weight_budget : float;
}

let run_flow_energy ?(eps = 0.25) instance =
  let cfg = Flow_energy_reject.config ~eps () in
  let schedule, _state = Flow_energy_reject.run cfg instance in
  Schedule.assert_valid ~check_deadlines:false schedule;
  let flow = Metrics.flow schedule in
  let energy = Metrics.energy schedule in
  let alpha_max =
    let a = ref 1. in
    for i = 0 to Instance.m instance - 1 do
      a := Float.max !a (Instance.machine instance i).Machine.alpha
    done;
    !a
  in
  {
    schedule;
    objective = flow.Metrics.weighted +. energy;
    weighted_flow = flow.Metrics.weighted;
    energy;
    rejection = Metrics.rejection schedule;
    competitive_bound = Bounds.flow_energy_competitive ~eps ~alpha:alpha_max;
    weight_budget = eps;
  }

type energy_result = {
  schedule : Schedule.t;
  energy : float;
  competitive_bound : float;
}

let run_energy_min instance =
  let result = Energy_config_greedy.run instance in
  Schedule.assert_valid ~allow_parallel:true result.Energy_config_greedy.schedule;
  let alpha_max =
    let a = ref 1. in
    for i = 0 to Instance.m instance - 1 do
      a := Float.max !a (Instance.machine instance i).Machine.alpha
    done;
    !a
  in
  {
    schedule = result.Energy_config_greedy.schedule;
    energy = result.Energy_config_greedy.energy;
    competitive_bound = Bounds.energy_competitive ~alpha:alpha_max;
  }
