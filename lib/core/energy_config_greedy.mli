(** The paper's Theorem 3 algorithm: online non-preemptive energy
    minimization with deadlines, via the primal-dual approach on a
    configuration LP.

    Following the paper's Section 4, time is discretized into unit slots and
    a {e strategy} for job [j] is a triple (machine, start slot, constant
    speed) whose execution window fits in [[r_j, d_j]].  At each release the
    algorithm picks the strategy minimizing the marginal energy increase

    [sum_{t in window} (P_i(u_it + v) - P_i(u_it))]

    where [u_it] is the current aggregate speed of machine [i] in slot [t];
    jobs may overlap on a machine (speeds add).  Started jobs are never
    modified.

    We enumerate strategies by integer duration [dur in 1 .. d_j - r_j]
    with speed [v = p_ij / dur]: this is the full discrete-time strategy
    set (any discrete speed grid induces a subset of these durations), see
    DESIGN.md.

    Theorem 3: for power functions [P_i(s) = s^alpha_i] the greedy is
    [alpha^alpha]-competitive with [alpha = max_i alpha_i]. *)

open Sched_model

type assignment = {
  job : Job.id;
  machine : Machine.id;
  start_slot : int;
  duration : int;  (** In slots. *)
  speed : float;  (** [p_ij / duration]. *)
  marginal : float;  (** Energy increase this assignment caused. *)
}

type result = {
  schedule : Schedule.t;  (** Valid with [~allow_parallel:true]. *)
  assignments : assignment list;  (** In release order. *)
  energy : float;  (** Final total energy, [sum_i sum_t (u_it)^alpha_i]. *)
}

val run : ?speeds:float array -> ?powers:Sched_energy.Power.t array -> Instance.t -> result
(** Requires every job to carry a deadline, with integer-aligned release
    and deadline and a span of at least one slot; raises [Invalid_argument]
    otherwise.

    [speeds] restricts the strategy set to the discrete speed grid [V] of
    the paper's formulation: only the execution durations [ceil(p_ij / v)]
    for [v in V] are considered (each still runs at the exact speed
    [p_ij / dur], i.e. the largest speed at most [v] that ends on a slot
    boundary).  When a window is too tight for every grid speed the
    fastest feasible execution is used instead.  Default: all integer
    durations (the grid-free refinement).

    [powers] overrides each machine's power function (default
    [s^alpha_i]).  Theorem 3 requires only [(lambda, mu)]-smoothness, not
    convexity, so step functions or static-power models
    ({!Sched_energy.Power}) are legal here — the greedy minimizes marginal
    energy under whatever function is supplied. *)

(** {1 Continuous single-machine variant}

    Used against the adaptive lower-bound adversary of Lemma 2, whose job
    spans are not slot-aligned.  The strategy set is discretized on a
    per-job grid: [grid] candidate start times crossed with [grid]
    candidate durations spanning the feasible window. *)

type continuous

val continuous : ?grid:int -> alpha:float -> unit -> continuous
(** Fresh single-machine state with power [s^alpha]; [grid] defaults to
    48. *)

val continuous_place : continuous -> release:float -> deadline:float -> volume:float -> float * float
(** Greedily commits the job and returns [(start, speed)]. *)

val continuous_energy : continuous -> float
(** Total energy of the speed profile committed so far. *)
