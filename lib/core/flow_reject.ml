open Sched_model
open Sched_sim

type dispatch_rule = Dual_lambda | Greedy_load

type config = { eps : float; rule1 : bool; rule2 : bool; dispatch : dispatch_rule }

let config ?(rule1 = true) ?(rule2 = true) ?(dispatch = Dual_lambda) ~eps () =
  if not (eps > 0. && eps < 1.) then invalid_arg "Flow_reject.config: eps must be in (0,1)";
  { eps; rule1; rule2; dispatch }

type state = {
  cfg : config;
  instance : Instance.t;
  eps_eff : float;
      (** The effective epsilon [1 / ceil(1/eps)]: integer counters cannot
          trip at a fractional [1/eps], so the algorithm {e is} the paper's
          algorithm run at [eps_eff <= eps] — thresholds below are exactly
          [1/eps_eff] and [1 + 1/eps_eff], and the dual variables must use
          [eps_eff] for Lemma 4 to hold exactly. *)
  thr1 : int;  (** Rule 1 threshold, [1/eps_eff = ceil(1/eps)]. *)
  thr2 : int;  (** Rule 2 threshold, [1 + 1/eps_eff]. *)
  mutable v : int array;  (** Rule 1 counters, indexed by job id (valid while running). *)
  c : int array;  (** Rule 2 counters, indexed by machine id. *)
  mutable lambda : float array;  (** Dual variables, indexed by job id. *)
  mutable rej1 : int;
  mutable rej2 : int;
}

(* The paper's order on the pending set of a fixed machine: shorter
   processing time first, ties by earlier release, then smaller id. *)
let precede i (a : Job.t) (b : Job.t) =
  let pa = Job.size a i and pb = Job.size b i in
  if pa <> pb then pa < pb
  else if a.release <> b.release then a.release < b.release
  else a.id < b.id

(* lambda_ij = (1/eps) p_ij + sum_{l <= j} p_il + sum_{l > j} p_ij, where l
   ranges over the pending set of machine i plus j itself ("l <= j" includes
   l = j, contributing p_ij).  The pending set does not yet contain j; one
   allocation-free pass suffices, no sort. *)
let lambda_ij eps view i (j : Job.t) =
  let pij = Job.size j i in
  let before = ref 0. and after = ref 0 in
  Driver.pending_iter view i (fun (l : Job.t) ->
      if precede i l j then before := !before +. Job.size l i else incr after);
  (pij /. eps) +. !before +. pij +. (float_of_int !after *. pij)

let greedy_load_cost view i (j : Job.t) =
  Driver.remaining_time view i +. Driver.pending_work view i +. Job.size j i

(* Argmin over eligible machines; deterministic tie-break on machine id. *)
let argmin_machine instance (j : Job.t) cost =
  let best = ref None in
  for i = 0 to Instance.m instance - 1 do
    if Job.eligible j i then begin
      let c = cost i in
      match !best with
      | Some (_, c') when c' <= c -> ()
      | _ -> best := Some (i, c)
    end
  done;
  match !best with Some ic -> ic | None -> assert false

let largest_pending view i (j_new : Job.t) =
  (* Largest-processing-time job among the pending set (the just-dispatched
     job included); "largest" uses the same total order as [precede].  The
     reverse-SPT index hands over the pending maximum in O(1). *)
  match Driver.pending_longest view i with
  | None -> j_new
  | Some w -> if precede i j_new w then w else j_new

let init cfg instance =
  let n = Instance.n instance in
  let inv = Float.ceil (1. /. cfg.eps) in
  {
    cfg;
    instance;
    eps_eff = 1. /. inv;
    thr1 = int_of_float inv;
    thr2 = int_of_float inv + 1;
    v = Array.make n 0;
    c = Array.make (max 1 (Instance.m instance)) 0;
    lambda = Array.make n 0.;
    rej1 = 0;
    rej2 = 0;
  }

(* Streaming sessions init with zero jobs and reveal ids as they arrive;
   the per-job counters grow on first sight of a larger id (batch runs
   pre-size to n, so this never fires there). *)
let ensure st id =
  let len = Array.length st.v in
  if id >= len then begin
    let cap = max 16 (max (id + 1) (2 * len)) in
    let nv = Array.make cap 0 in
    Array.blit st.v 0 nv 0 len;
    st.v <- nv;
    let nl = Array.make cap 0. in
    Array.blit st.lambda 0 nl 0 len;
    st.lambda <- nl
  end

(* The sequential tail of [on_arrival]: fix the dual variable and apply
   the rejection rules, given the argmin machine and its lambda.  Shared
   verbatim between the plain entry point and the sharded resolve so the
   two cannot drift. *)
let commit st view (j : Job.t) ~target ~best_lambda =
  ensure st j.id;
  let eps = st.eps_eff in
  st.lambda.(j.id) <- eps /. (1. +. eps) *. best_lambda;
  (* Rejection Rule 1: bump the running job's counter. *)
  st.c.(target) <- st.c.(target) + 1;
  let rejections = ref [] in
  (match Driver.running_on view target with
  | Some r ->
      let k = r.Driver.job.Job.id in
      st.v.(k) <- st.v.(k) + 1;
      if st.cfg.rule1 && st.v.(k) >= st.thr1 then begin
        rejections := k :: !rejections;
        st.rej1 <- st.rej1 + 1
      end
  | None -> ());
  (* Rejection Rule 2: machine-level counter. *)
  if st.cfg.rule2 && st.c.(target) >= st.thr2 then begin
    let victim = largest_pending view target j in
    rejections := victim.Job.id :: !rejections;
    st.c.(target) <- 0;
    st.rej2 <- st.rej2 + 1
  end;
  { Driver.dispatch_to = target; reject = List.rev !rejections; restart = [] }

let on_arrival st view (j : Job.t) =
  let eps = st.eps_eff in
  let target, best_lambda =
    match st.cfg.dispatch with
    | Dual_lambda -> argmin_machine st.instance j (fun i -> lambda_ij eps view i j)
    | Greedy_load ->
        let i, _ = argmin_machine st.instance j (fun i -> greedy_load_cost view i j) in
        (* The dual variable is defined from lambda_ij regardless of how we
           dispatched, so the instrumentation stays meaningful in E8. *)
        (i, snd (argmin_machine st.instance j (fun i -> lambda_ij eps view i j)))
  in
  commit st view j ~target ~best_lambda

(* Two-phase split for the sharded driver.  The cost is the dispatch
   metric of the configured rule — pure reads of the primary pending
   order ([pending_iter] / the load accessors), so it is safe to
   evaluate from parallel shard proposers.  The resolve receives the
   leftmost strict argmin and replays [on_arrival]'s tail; under
   [Greedy_load] the dual variable still comes from the lambda argmin,
   which the resolve recomputes sequentially (it is instrumentation,
   not dispatch, so it stays out of the parallel phase). *)
let shard_cost st view i (j : Job.t) =
  match st.cfg.dispatch with
  | Dual_lambda -> lambda_ij st.eps_eff view i j
  | Greedy_load -> greedy_load_cost view i j

let shard_resolve st view (j : Job.t) ~target ~score =
  let best_lambda =
    match st.cfg.dispatch with
    | Dual_lambda -> score
    | Greedy_load ->
        snd (argmin_machine st.instance j (fun i -> lambda_ij st.eps_eff view i j))
  in
  commit st view j ~target ~best_lambda

let hooks = { Driver.shard_cost; shard_resolve }

let select st view i =
  match Driver.pending_shortest view i with
  | None -> None
  | Some shortest ->
      (* A fresh Rule 1 counter for the execution that is about to begin. *)
      st.v.(shortest.Job.id) <- 0;
      Some { Driver.job = shortest.Job.id; speed = 1.0 }

let policy cfg =
  { Driver.name = "flow-reject"; init = init cfg; on_arrival; select }

let lambdas st = Array.copy st.lambda
let effective_eps st = st.eps_eff
let rule1_rejections st = st.rej1
let rule2_rejections st = st.rej2

let run ?trace ?obs cfg instance = Driver.run ?trace ?obs (policy cfg) instance
