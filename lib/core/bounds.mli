(** Closed-form theoretical guarantees of the paper.

    These are the numbers every experiment checks its measurements against;
    keeping them in one module makes the claimed-vs-measured comparison in
    [EXPERIMENTS.md] mechanical. *)

val flow_competitive : eps:float -> float
(** Theorem 1: [2 * ((1 + eps) / eps)^2], the competitive ratio of the
    flow-time algorithm.  Requires [0 < eps < 1]. *)

val flow_rejection_budget : eps:float -> float
(** Theorem 1: at most a [2 * eps] fraction of the jobs is rejected. *)

val rule1_threshold : eps:float -> int
(** Rejection Rule 1 trips when the counter reaches [1/eps]; we use
    [ceil(1/eps)] for non-integer [1/eps] (rejecting no earlier, so the
    budget holds a fortiori). *)

val rule2_threshold : eps:float -> int
(** Rejection Rule 2 trips at [1 + 1/eps]; integralized as
    [ceil(1 + 1/eps)]. *)

val immediate_rejection_lb : delta:float -> float
(** Lemma 1: [sqrt delta], the growth rate (up to constants) any
    immediate-rejection policy must suffer. *)

val gamma : eps:float -> alpha:float -> float
(** Theorem 2's speed constant
    [(eps/(1+eps))^(1/(alpha-1)) * (1/(alpha-1)) *
     (alpha - 1 + ln(alpha-1))^((alpha-1)/alpha)].
    The last factor is only real/positive for [alpha > ~1.567]; below that we
    fall back to the first factor alone (see DESIGN.md).  Requires
    [alpha > 1]. *)

val flow_energy_ratio : eps:float -> alpha:float -> gamma:float -> float
(** Theorem 2's proof, before the choice of [gamma]: the ratio
    [(2 + alpha/(gamma (alpha-1)) + gamma^alpha) / D(gamma)] with
    [D(gamma) = eps/(1+eps)
                - (alpha-1) * (eps / (gamma (1+eps) (alpha-1)))^(alpha/(alpha-1))].
    Returns [infinity] when [D(gamma) <= 0]. *)

val gamma_best : eps:float -> alpha:float -> float
(** The [gamma] minimizing {!flow_energy_ratio} (log-grid + refinement).
    Used as the algorithm's default speed constant: the paper's closed-form
    choice (see {!gamma}) degenerates near [alpha = 2] where its
    simplified denominator vanishes. *)

val flow_energy_competitive : eps:float -> alpha:float -> float
(** Theorem 2: [flow_energy_ratio] at [gamma_best] — the exact constant the
    proof yields, which is [O((1 + 1/eps)^(alpha/(alpha-1)))]. *)

val flow_energy_envelope : eps:float -> alpha:float -> float
(** The asymptotic form [(1 + 1/eps)^(alpha/(alpha-1))] without constants,
    used for shape checks. *)

val energy_competitive : alpha:float -> float
(** Theorem 3: [alpha^alpha] for power functions [s^alpha]. *)

val energy_lb : alpha:float -> float
(** Lemma 2: [(alpha/9)^alpha]. *)

val smooth_mu : alpha:float -> float
(** The [(lambda, mu)]-smoothness of [s^alpha] per [Cohen, Duerr, Thang]:
    [mu = (alpha-1)/alpha]. *)

val smooth_lambda : alpha:float -> float
(** The matching [lambda = Theta(alpha^(alpha-1))]; we return
    [alpha^(alpha-1)] as the representative. *)
