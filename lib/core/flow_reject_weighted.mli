(** Weighted extension of the Theorem 1 algorithm (an {e extension}, not a
    result of the paper: online non-preemptive {b weighted} flow-time with
    rejections has no published constant bound — the paper's related-work
    section notes the Omega(n) lower bound without rejection).

    The construction transplants the paper's machinery to weights:

    - service order: highest density first ([w/p], the weighted analogue of
      SPT, as in the paper's Section 3);
    - dispatch: argmin of the weighted marginal-increase proxy
      [lambda_ij = w_j (p_ij/eps + sum_{l<=j} p_il) + (sum_{l>j} w_l) p_ij];
    - {b Rule 1w} (as in Theorem 2): the running job [k] accumulates the
      weight dispatched during its execution and is interrupted when that
      exceeds [w_k / eps];
    - {b Rule 2w}: each machine accumulates dispatched weight [c_i]; when
      [c_i >= (1 + 1/eps) * w_x] for [x] the pending job with the largest
      processing time, [x] is rejected and [c_i] resets.

    The same charging arguments as the paper's budget lemmas give rejected
    weight at most [2 eps] of the total weight (verified by property tests
    and experiment E11); no competitive-ratio claim is made. *)

open Sched_model
open Sched_sim

type config = { eps : float; rule1 : bool; rule2 : bool }

val config : ?rule1:bool -> ?rule2:bool -> eps:float -> unit -> config

type state

val policy : config -> state Driver.policy

val hooks : state Driver.sharded_hooks
(** Two-phase split for {!Sched_sim.Driver.run_sharded}: the weighted
    [lambda_ij] as the parallel cost, the rule tail as the sequential
    resolve. *)

val rejections : state -> int * int
(** (Rule 1w, Rule 2w) counts. *)

val run : ?trace:Trace.t -> config -> Instance.t -> Schedule.t * state
