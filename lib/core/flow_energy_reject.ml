open Sched_model
open Sched_sim

type config = { eps : float; gamma : float option }

let config ?gamma ~eps () =
  if not (eps > 0. && eps < 1.) then
    invalid_arg "Flow_energy_reject.config: eps must be in (0,1)";
  (match gamma with
  | Some g when g <= 0. -> invalid_arg "Flow_energy_reject.config: gamma must be positive"
  | _ -> ());
  { eps; gamma }

type state = {
  cfg : config;
  instance : Instance.t;
  gammas : float array;  (** Speed constant per machine. *)
  mutable v : float array;  (** Weight counters of running jobs, by job id. *)
  mutable lambda : float array;
  mutable rej : int;
}

(* Density order: higher w/p first, ties by earlier release then id. *)
let precede i (a : Job.t) (b : Job.t) =
  let da = a.weight /. Job.size a i and db = b.weight /. Job.size b i in
  if da <> db then da > db
  else if a.release <> b.release then a.release < b.release
  else a.id < b.id

(* lambda_ij over the density-sorted pending-plus-j sequence, using prefix
   weights W_l (inclusive of l). *)
let lambda_ij st i (j : Job.t) pending =
  let alpha = (Instance.machine st.instance i).Machine.alpha in
  let gamma = st.gammas.(i) in
  let eps = st.cfg.eps in
  let seq = List.sort (fun a b -> if precede i a b then -1 else 1) (j :: pending) in
  let prefix = ref 0. in
  let upto_j = ref 0. (* sum_{l <= j} p_il / (gamma W_l^(1/alpha)) *)
  and after_w = ref 0. (* sum_{l > j} w_l *)
  and wj_prefix = ref 0. (* W_j *)
  and passed_j = ref false in
  List.iter
    (fun (l : Job.t) ->
      prefix := !prefix +. l.weight;
      if !passed_j then after_w := !after_w +. l.weight
      else begin
        upto_j := !upto_j +. (Job.size l i /. (gamma *. (!prefix ** (1. /. alpha))));
        if l.id = j.id then begin
          passed_j := true;
          wj_prefix := !prefix
        end
      end)
    seq;
  let pij = Job.size j i in
  (j.weight *. ((pij /. eps) +. !upto_j))
  +. (!after_w *. pij /. (gamma *. (!wj_prefix ** (1. /. alpha))))

let argmin_machine instance (j : Job.t) cost =
  let best = ref None in
  for i = 0 to Instance.m instance - 1 do
    if Job.eligible j i then begin
      let c = cost i in
      match !best with
      | Some (_, c') when c' <= c -> ()
      | _ -> best := Some (i, c)
    end
  done;
  match !best with Some ic -> ic | None -> assert false

let init cfg instance =
  let n = Instance.n instance in
  let gammas =
    Array.map
      (fun (mc : Machine.t) ->
        match cfg.gamma with
        | Some g -> g
        | None -> Bounds.gamma_best ~eps:cfg.eps ~alpha:mc.Machine.alpha)
      (Array.init (Instance.m instance) (Instance.machine instance))
  in
  { cfg; instance; gammas; v = Array.make n 0.; lambda = Array.make n 0.; rej = 0 }

(* Streaming sessions init with zero jobs; the per-job columns grow on
   first sight of a larger id (batch runs pre-size to n). *)
let ensure st id =
  let len = Array.length st.v in
  if id >= len then begin
    let cap = max 16 (max (id + 1) (2 * len)) in
    let nv = Array.make cap 0. in
    Array.blit st.v 0 nv 0 len;
    st.v <- nv;
    let nl = Array.make cap 0. in
    Array.blit st.lambda 0 nl 0 len;
    st.lambda <- nl
  end

(* The sequential tail of [on_arrival]: fix the dual variable and apply
   the weighted Rule 1; shared with the sharded resolve below. *)
let commit st view (j : Job.t) ~target ~best =
  ensure st j.id;
  st.lambda.(j.id) <- st.cfg.eps /. (1. +. st.cfg.eps) *. best;
  let rejections = ref [] in
  (match Driver.running_on view target with
  | Some r ->
      let k = r.Driver.job in
      st.v.(k.Job.id) <- st.v.(k.Job.id) +. j.weight;
      if st.v.(k.Job.id) > k.Job.weight /. st.cfg.eps then begin
        rejections := [ k.Job.id ];
        st.rej <- st.rej + 1
      end
  | None -> ());
  { Driver.dispatch_to = target; reject = !rejections; restart = [] }

let on_arrival st view (j : Job.t) =
  let target, best =
    argmin_machine st.instance j (fun i -> lambda_ij st i j (Driver.pending view i))
  in
  commit st view j ~target ~best

(* Two-phase split for the sharded driver: the cost materializes the
   machine's pending list ([Driver.pending] reads only the primary SPT
   order, no lazy wakes) and evaluates the energy-aware lambda; the
   resolve uses the argmin score as the dual variable and replays the
   rule tail sequentially. *)
let hooks =
  {
    Driver.shard_cost = (fun st view i j -> lambda_ij st i j (Driver.pending view i));
    shard_resolve = (fun st view j ~target ~score -> commit st view j ~target ~best:score);
  }

let select st view i =
  match Driver.pending_densest view i with
  | None -> None
  | Some head ->
      let alpha = (Instance.machine st.instance i).Machine.alpha in
      let total_weight = Driver.pending_weight view i in
      let speed = st.gammas.(i) *. (total_weight ** (1. /. alpha)) in
      st.v.(head.Job.id) <- 0.;
      Some { Driver.job = head.Job.id; speed }

let policy cfg = { Driver.name = "flow-energy-reject"; init = init cfg; on_arrival; select }

let lambdas st = Array.copy st.lambda
let rejections st = st.rej
let gamma_of_machine st i = st.gammas.(i)

let run ?trace cfg instance = Driver.run ?trace (policy cfg) instance
