(** The paper's Theorem 2 algorithm: online non-preemptive total weighted
    flow-time plus energy minimization under speed scaling
    ([P(s) = s^alpha]).

    Pending jobs on a machine are ordered by non-increasing density
    [delta_ij = w_j / p_ij] (highest density first; ties by release then
    id).  When machine [i] goes idle it starts the highest-density pending
    job at speed

    [s = gamma * (sum of pending weights)^(1/alpha)]

    held constant for that execution.  Dispatch minimizes the marginal-cost
    proxy

    [lambda_ij = w_j (p_ij/eps + sum_{l <= j} p_il / (gamma W_l^(1/alpha)))
               + (sum_{l > j} w_l) p_ij / (gamma W_j^(1/alpha))]

    with [W_l] the prefix weight in density order.  The single rejection
    rule is weight-based Rule 1: the running job [k] accumulates the weight
    of jobs dispatched during its execution and is interrupted and rejected
    when that exceeds [w_k / eps].

    Theorem 2: the algorithm is
    [O((1 + 1/eps)^(alpha/(alpha-1)))]-competitive for weighted flow-time
    plus energy and rejects jobs of total weight at most [eps] times the
    total weight. *)

open Sched_model
open Sched_sim

type config = {
  eps : float;  (** In (0,1): fraction of total weight that may be rejected. *)
  gamma : float option;
      (** Speed constant; [None] uses {!Bounds.gamma_best} for each
          machine's [alpha]. *)
}

val config : ?gamma:float -> eps:float -> unit -> config

type state

val policy : config -> state Driver.policy

val hooks : state Driver.sharded_hooks
(** Two-phase split for {!Sched_sim.Driver.run_sharded}: the energy-aware
    [lambda_ij] (materializing the pending list, primary order only) as
    the parallel cost; the resolve fixes the dual from the argmin score
    and replays weighted Rule 1 sequentially. *)

val lambdas : state -> float array
(** Dual variables [lambda_j = eps/(1+eps) min_i lambda_ij], by job id. *)

val rejections : state -> int

val gamma_of_machine : state -> Machine.id -> float
(** The speed constant actually used on a machine. *)

val run : ?trace:Trace.t -> config -> Instance.t -> Schedule.t * state
