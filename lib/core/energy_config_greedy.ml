open Sched_model

type assignment = {
  job : Job.id;
  machine : Machine.id;
  start_slot : int;
  duration : int;
  speed : float;
  marginal : float;
}

type result = {
  schedule : Schedule.t;
  assignments : assignment list;
  energy : float;
}

let slot_of_release t =
  let s = Float.round t in
  if Float.abs (t -. s) > 1e-6 then
    invalid_arg (Printf.sprintf "Energy_config_greedy: release/deadline %g not slot-aligned" t);
  int_of_float s

let run ?speeds ?powers instance =
  (match speeds with
  | Some v ->
      if Array.length v = 0 then invalid_arg "Energy_config_greedy.run: empty speed set";
      Array.iter
        (fun s ->
          if s <= 0. || not (Float.is_finite s) then
            invalid_arg "Energy_config_greedy.run: speeds must be positive")
        v
  | None -> ());
  if not (Instance.has_deadlines instance) then
    invalid_arg "Energy_config_greedy.run: every job needs a deadline";
  let m = Instance.m instance in
  let horizon =
    Array.fold_left
      (fun acc (j : Job.t) -> max acc (slot_of_release (Option.get j.deadline)))
      1
      (Instance.jobs_by_release instance)
  in
  (match powers with
  | Some p when Array.length p <> m ->
      invalid_arg "Energy_config_greedy.run: powers length must equal machine count"
  | _ -> ());
  let load = Array.init m (fun _ -> Array.make horizon 0.) in
  let alphas = Array.init m (fun i -> (Instance.machine instance i).Machine.alpha) in
  (* Power drawn at speed s on machine i: s^alpha_i by default, or the
     caller's arbitrary (possibly non-convex) function — Theorem 3 only
     needs (lambda, mu)-smoothness. *)
  let power i s =
    match powers with Some p -> Sched_energy.Power.eval p.(i) s | None -> s ** alphas.(i)
  in
  let builder = Schedule.builder instance in
  let assignments = ref [] in
  let place (j : Job.t) =
    let r = slot_of_release j.release and d = slot_of_release (Option.get j.deadline) in
    if d - r < 1 then invalid_arg (Printf.sprintf "Energy_config_greedy: job %d span < 1 slot" j.id);
    let best = ref None in
    for i = 0 to m - 1 do
      if Job.eligible j i then begin
        let pij = Job.size j i in
        let alpha = alphas.(i) in
        (* Candidate durations: every integer duration by default, or — when
           a discrete speed set V is given, as in the paper's formulation —
           only the durations [ceil(p_ij / v)] induced by V (the job still
           runs at exactly [p_ij / dur], the largest speed <= v that
           finishes precisely at the slot boundary). *)
        let durations =
          match speeds with
          | None -> List.init (d - r) (fun k -> k + 1)
          | Some v -> (
              let induced =
                Array.to_list v
                |> List.filter_map (fun s ->
                       let dur = int_of_float (Float.ceil (pij /. s)) in
                       if dur >= 1 && dur <= d - r then Some dur else None)
                |> List.sort_uniq Int.compare
              in
              (* If even the fastest grid speed cannot finish inside the
                 window, fall back to the fastest feasible execution (one
                 slot per remaining headroom) so the job is never dropped. *)
              match induced with [] -> [ d - r ] | _ -> induced)
        in
        List.iter (fun dur ->
          let v = pij /. float_of_int dur in
          for tau = r to d - dur do
            (* Marginal energy of adding speed v to slots tau..tau+dur-1. *)
            let marginal = ref 0. in
            for t = tau to tau + dur - 1 do
              let u = load.(i).(t) in
              marginal := !marginal +. (power i (u +. v) -. power i u)
            done;
            ignore alpha;
            match !best with
            | Some (_, _, _, _, best_marginal) when best_marginal <= !marginal -> ()
            | _ -> best := Some (i, tau, dur, v, !marginal)
          done)
          durations
      end
    done;
    match !best with
    | None -> assert false (* eligible machine always exists *)
    | Some (i, tau, dur, v, marginal) ->
        for t = tau to tau + dur - 1 do
          load.(i).(t) <- load.(i).(t) +. v
        done;
        let start = float_of_int tau and stop = float_of_int (tau + dur) in
        Schedule.add_segment builder { Schedule.job = j.id; machine = i; start; stop; speed = v };
        Schedule.set_outcome builder j.id
          (Outcome.Completed { machine = i; start; speed = v; finish = stop });
        assignments := { job = j.id; machine = i; start_slot = tau; duration = dur; speed = v; marginal }
                       :: !assignments
  in
  Array.iter place (Instance.jobs_by_release instance);
  let energy = ref 0. in
  for i = 0 to m - 1 do
    for t = 0 to horizon - 1 do
      if load.(i).(t) > 0. then energy := !energy +. power i load.(i).(t)
    done
  done;
  { schedule = Schedule.finalize builder; assignments = List.rev !assignments; energy = !energy }

(* Continuous single-machine variant: the speed profile is a piecewise
   constant function kept as a sorted list of breakpoints. *)

type continuous = {
  alpha : float;
  grid : int;
  mutable breakpoints : (float * float) list;
      (** [(t, s)]: speed is [s] from [t] until the next breakpoint; the
          list is sorted by [t], starts at [(-inf, 0)] conceptually (we keep
          an explicit leading [(neg_infinity, 0.)]). *)
}

let continuous ?(grid = 48) ~alpha () =
  if grid < 2 then invalid_arg "Energy_config_greedy.continuous: grid too small";
  if alpha < 1. then invalid_arg "Energy_config_greedy.continuous: alpha < 1";
  { alpha; grid; breakpoints = [ (Float.neg_infinity, 0.) ] }

(* Integral of f(speed) over [a, b) for the current profile. *)
let integrate profile a b f =
  (* Segments where [f s = 0] contribute nothing and may have infinite
     extent (the leading/trailing zero-speed regions), so skip them before
     forming [hi - lo]. *)
  let rec go acc = function
    | (t0, s) :: (((t1, _) :: _) as rest) ->
        let fs = f s in
        let lo = Float.max a t0 and hi = Float.min b t1 in
        let acc = if fs <> 0. && hi > lo then acc +. ((hi -. lo) *. fs) else acc in
        if t1 >= b then acc else go acc rest
    | [ (t0, s) ] ->
        let fs = f s in
        let lo = Float.max a t0 in
        if fs <> 0. && b > lo then acc +. ((b -. lo) *. fs) else acc
    | [] -> acc
  in
  go 0. profile

let marginal_energy st a b v =
  integrate st.breakpoints a b (fun s -> (((s +. v) ** st.alpha) -. (s ** st.alpha)))

(* Add speed v on [a, b): split breakpoints at a and b, then raise. *)
let add_load st a b v =
  let split at bps =
    let rec go acc = function
      | (t0, s) :: (((t1, _) :: _) as rest) when t0 < at && at < t1 ->
          List.rev_append acc ((t0, s) :: (at, s) :: rest)
      | [ (t0, s) ] when t0 < at -> List.rev_append acc [ (t0, s); (at, s) ]
      | x :: rest -> go (x :: acc) rest
      | [] -> List.rev acc
    in
    go [] bps
  in
  let bps = split a (split b st.breakpoints) in
  st.breakpoints <-
    List.map (fun (t, s) -> if t >= a && t < b then (t, s +. v) else (t, s)) bps

let continuous_place st ~release ~deadline ~volume =
  if deadline <= release then invalid_arg "continuous_place: empty span";
  if volume <= 0. then invalid_arg "continuous_place: non-positive volume";
  let span = deadline -. release in
  let g = st.grid in
  let best = ref None in
  for kd = 1 to g do
    let dur = span *. float_of_int kd /. float_of_int g in
    let v = volume /. dur in
    let slack = span -. dur in
    for ks = 0 to g do
      let start = release +. (slack *. float_of_int ks /. float_of_int g) in
      let marginal = marginal_energy st start (start +. dur) v in
      match !best with
      | Some (_, _, _, bm) when bm <= marginal -> ()
      | _ -> best := Some (start, dur, v, marginal)
    done
  done;
  match !best with
  | None -> assert false
  | Some (start, dur, v, _) ->
      add_load st start (start +. dur) v;
      (start, v)

let continuous_energy st =
  integrate st.breakpoints Float.neg_infinity Float.infinity (fun s ->
      if s = 0. then 0. else s ** st.alpha)
