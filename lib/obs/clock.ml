(* The single module in lib/ allowed to read wall-clock time: rejlint rule
   RJL007 allowlists exactly this file and flags every other reference.
   Everything downstream receives a [t] value, so tests substitute
   deterministic clocks and simulated decisions never depend on real time. *)

type t = unit -> float

let wall : t = Unix.gettimeofday

let monotonic () : t =
  (* gettimeofday can step backwards (NTP); clamp so span durations are
     never negative. *)
  let last = ref neg_infinity in
  fun () ->
    let t = wall () in
    if t > !last then last := t;
    !last

let frozen v : t = fun () -> v

let ticker ?(start = 0.) ?(step = 1.) () : t =
  let now = ref start in
  fun () ->
    let v = !now in
    now := v +. step;
    v

let calls (clock : t) =
  let n = ref 0 in
  let wrapped : t =
    fun () ->
      incr n;
      clock ()
  in
  (wrapped, fun () -> !n)
