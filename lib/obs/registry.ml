(* The metric registry: a flat set of named instruments with a
   deterministic iteration order.

   Registration is get-or-create on (name, sorted labels) and happens at
   run setup, so an O(n) scan is fine; the hot path holds the instrument
   cell directly and never touches the registry.  Iteration sorts by
   (name, labels, id) with typed comparators — id ties are unreachable
   (the key is unique) but keep the order total, per the repo's
   determinism contract (rejlint RJL002/RJL003). *)

type instrument =
  | Counter of Metric.Counter.t
  | Gauge of Metric.Gauge.t
  | Histogram of Metric.Histogram.t

type entry = {
  id : int;
  name : string;
  labels : (string * string) list;
  help : string;
  instrument : instrument;
}

type t = { mutable entries : entry list (* reverse creation order *); mutable next : int }

let create () = { entries = []; next = 0 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let valid_name n =
  String.length n > 0
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       n

let compare_labels la lb =
  List.compare
    (fun (k, v) (k', v') ->
      match String.compare k k' with 0 -> String.compare v v' | c -> c)
    la lb

let normalize_labels name labels =
  let sorted = List.sort (fun (k, _) (k', _) -> String.compare k k') labels in
  let rec dup = function
    | (k, _) :: ((k', _) :: _ as rest) -> if String.equal k k' then Some k else dup rest
    | _ -> None
  in
  (match dup sorted with
  | Some k -> invalid_arg (Printf.sprintf "Obs.Registry: duplicate label %S on %s" k name)
  | None -> ());
  List.iter
    (fun (k, _) ->
      if not (valid_name k) then
        invalid_arg (Printf.sprintf "Obs.Registry: invalid label name %S on %s" k name))
    sorted;
  sorted

let register t ~name ~labels ~help make_instrument =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Obs.Registry: invalid metric name %S" name);
  let labels = normalize_labels name labels in
  let same = List.filter (fun e -> String.equal e.name name) t.entries in
  match List.find_opt (fun e -> compare_labels e.labels labels = 0) same with
  | Some e -> e.instrument
  | None ->
      let instrument = make_instrument () in
      (match same with
      | e :: _ when kind_name e.instrument <> kind_name instrument ->
          invalid_arg
            (Printf.sprintf "Obs.Registry: %s is already a %s family" name
               (kind_name e.instrument))
      | _ -> ());
      t.entries <- { id = t.next; name; labels; help; instrument } :: t.entries;
      t.next <- t.next + 1;
      instrument

let counter t ?(help = "") ?(labels = []) name =
  match register t ~name ~labels ~help (fun () -> Counter (Metric.Counter.make ())) with
  | Counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Obs.Registry: %s is not a counter" name)

let gauge t ?(help = "") ?(labels = []) name =
  match register t ~name ~labels ~help (fun () -> Gauge (Metric.Gauge.make ())) with
  | Gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Obs.Registry: %s is not a gauge" name)

let histogram t ?(help = "") ?(labels = []) ~buckets name =
  match register t ~name ~labels ~help (fun () -> Histogram (Metric.Histogram.make ~buckets)) with
  | Histogram h -> h
  | _ -> invalid_arg (Printf.sprintf "Obs.Registry: %s is not a histogram" name)

let entries t =
  List.sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> (
          match compare_labels a.labels b.labels with
          | 0 -> Int.compare a.id b.id
          | c -> c)
      | c -> c)
    t.entries

(* Fold [src] into [into], instrument by instrument, iterating [entries]
   — i.e. sorted by (name, labels) — so that a sequence of merges is a
   deterministic function of the shard contents and the merge order.
   The experiment suite runs each pool task against its own shard
   registry and merges the shards back in task order: exports are then
   byte-identical whatever the domain count (including sequential). *)
let merge ~into src =
  List.iter
    (fun e ->
      match e.instrument with
      | Counter c ->
          Metric.Counter.add
            (counter into ~help:e.help ~labels:e.labels e.name)
            (Metric.Counter.value c)
      | Gauge g ->
          (* Last-merged-shard wins: the same "final value" semantics a
             shared registry would have shown sequentially. *)
          Metric.Gauge.set (gauge into ~help:e.help ~labels:e.labels e.name) (Metric.Gauge.value g)
      | Histogram h ->
          Metric.Histogram.merge
            ~into:
              (histogram into ~help:e.help ~labels:e.labels
                 ~buckets:(Metric.Histogram.bounds h) e.name)
            h)
    (entries src)

let find t ~name ~labels =
  let labels = List.sort (fun (k, _) (k', _) -> String.compare k k') labels in
  List.find_opt
    (fun e -> String.equal e.name name && compare_labels e.labels labels = 0)
    t.entries

let size t = List.length t.entries
