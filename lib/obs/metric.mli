(** Telemetry instruments: typed counters, gauges and fixed-bucket
    histograms.

    Each instrument is an anonymous mutable cell; recording is O(1)
    (O(#buckets) for histograms, with the bucket list fixed at creation)
    and never allocates.  Create instruments through {!Registry} so they
    participate in export; the constructors here exist for tests and for
    ad-hoc unregistered use. *)

module Counter : sig
  type t

  val make : unit -> t
  val value : t -> float
  val inc : t -> unit

  val add : t -> float -> unit
  (** Counters are monotone: a negative or NaN increment raises
      [Invalid_argument]. *)
end

module Gauge : sig
  type t

  val make : unit -> t
  val value : t -> float
  val set : t -> float -> unit
  val add : t -> float -> unit
  val inc : t -> unit
  val dec : t -> unit
end

module Histogram : sig
  type t

  val make : buckets:float list -> t
  (** [buckets] are upper bounds, strictly increasing, non-empty; an
      implicit [+inf] overflow bucket is appended.  Raises
      [Invalid_argument] otherwise. *)

  val observe : t -> float -> unit
  (** A value [x] lands in the first bucket with [x <= bound] (Prometheus
      [le] semantics); NaN lands in the overflow bucket and is excluded
      from {!sum}. *)

  val count : t -> int
  val sum : t -> float

  val bounds : t -> float list
  (** The creation-time upper bounds (without the implicit [+inf]). *)

  val cumulative : t -> (float * int) list
  (** Prometheus-style cumulative [(le, count)] pairs, ending with the
      [+inf] bucket whose count equals {!count}. *)

  val merge : into:t -> t -> unit
  (** Adds [src]'s buckets, sum and count into [into].  Raises
      [Invalid_argument] unless both histograms share identical bucket
      bounds. *)
end
