(** The metric registry: named, labelled instruments with a deterministic
    iteration order.

    Registration is get-or-create on [(name, labels)] — asking twice for
    the same key returns the same cell, so repeated runs over one
    registry accumulate.  Names and label keys must match
    [[A-Za-z_][A-Za-z0-9_]*]; labels are sorted by key at registration;
    one name is one instrument kind (a "family").  {!entries} iterates
    sorted by (name, labels, registration id) — byte-stable output for
    the exporters regardless of registration order. *)

type instrument =
  | Counter of Metric.Counter.t
  | Gauge of Metric.Gauge.t
  | Histogram of Metric.Histogram.t

type entry = {
  id : int;  (** Registration order, the final tie-break. *)
  name : string;
  labels : (string * string) list;  (** Sorted by key. *)
  help : string;
  instrument : instrument;
}

type t

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> Metric.Counter.t
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> Metric.Gauge.t

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> buckets:float list -> string ->
  Metric.Histogram.t

val entries : t -> entry list
(** Sorted by (name, labels, id); safe to export verbatim. *)

val find : t -> name:string -> labels:(string * string) list -> entry option
val size : t -> int

val kind_name : instrument -> string
(** ["counter" | "gauge" | "histogram"]. *)
