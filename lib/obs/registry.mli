(** The metric registry: named, labelled instruments with a deterministic
    iteration order.

    Registration is get-or-create on [(name, labels)] — asking twice for
    the same key returns the same cell, so repeated runs over one
    registry accumulate.  Names and label keys must match
    [[A-Za-z_][A-Za-z0-9_]*]; labels are sorted by key at registration;
    one name is one instrument kind (a "family").  {!entries} iterates
    sorted by (name, labels, registration id) — byte-stable output for
    the exporters regardless of registration order. *)

type instrument =
  | Counter of Metric.Counter.t
  | Gauge of Metric.Gauge.t
  | Histogram of Metric.Histogram.t

type entry = {
  id : int;  (** Registration order, the final tie-break. *)
  name : string;
  labels : (string * string) list;  (** Sorted by key. *)
  help : string;
  instrument : instrument;
}

type t

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> Metric.Counter.t
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> Metric.Gauge.t

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> buckets:float list -> string ->
  Metric.Histogram.t

val entries : t -> entry list
(** Sorted by (name, labels, id); safe to export verbatim. *)

val merge : into:t -> t -> unit
(** Accumulates every instrument of the source registry into [into]
    (get-or-create by (name, labels)), iterating in {!entries} order —
    sorted by metric name and labels — so a fixed sequence of merges is
    deterministic.  Counters add; gauges take the source value
    (last-merged wins); histograms add bucket-wise and require identical
    bounds.  Raises [Invalid_argument] on an instrument-kind or
    histogram-bucket mismatch.  This is how per-task shard registries
    from parallel runs fold back into one exportable snapshot. *)

val find : t -> name:string -> labels:(string * string) list -> entry option
val size : t -> int

val kind_name : instrument -> string
(** ["counter" | "gauge" | "histogram"]. *)
