(* Span sinks.  The driver wraps its phases in [time]; the [Null] sink
   makes that wrapper a single pattern match — no clock read, no
   histogram, no allocation beyond the closure the caller already built —
   so the PR 1 fast path keeps its throughput when telemetry is off. *)

type spans = {
  clock : Clock.t;
  registry : Registry.t;
  buckets : float list;
  metric : string;
  help : string;
  mutable cache : (string * Metric.Histogram.t) list;
}

type t = Null | Spans of spans

let null = Null

(* 100ns .. 1s: driver phases are microseconds, whole runs can be long. *)
let default_buckets = [ 1e-7; 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1. ]

let spans ?(metric = "obs_phase_seconds") ?(buckets = default_buckets) ~clock registry =
  Spans
    {
      clock;
      registry;
      buckets;
      metric;
      help = "Wall-clock duration of instrumented phases (seconds)";
      cache = [];
    }

let hist s phase =
  match List.assoc_opt phase s.cache with
  | Some h -> h
  | None ->
      let h =
        Registry.histogram s.registry ~help:s.help
          ~labels:[ ("phase", phase) ]
          ~buckets:s.buckets s.metric
      in
      s.cache <- (phase, h) :: s.cache;
      h

let duration t phase d =
  match t with Null -> () | Spans s -> Metric.Histogram.observe (hist s phase) d

let time t phase f =
  match t with
  | Null -> f ()
  | Spans s ->
      let h = hist s phase in
      let t0 = s.clock () in
      Fun.protect ~finally:(fun () -> Metric.Histogram.observe h (s.clock () -. t0)) f
