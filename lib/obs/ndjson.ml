(* JSON primitives shared by the exporters, plus the NDJSON record
   builder.  Output is deterministic: fields are emitted in the order
   given, floats use the shortest round-tripping representation, and
   non-finite floats — which bare JSON cannot carry — become the quoted
   string tokens "NaN" / "Infinity" / "-Infinity", preserving which
   non-finite value it was (null would collapse all three). *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr v =
  if Float.is_nan v then "\"NaN\""
  else if v = Float.infinity then "\"Infinity\""
  else if v = Float.neg_infinity then "\"-Infinity\""
  else if Float.is_integer v && Float.abs v <= 1e15 then Printf.sprintf "%.0f" v
  else begin
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v
  end

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

let value_to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float v -> float_repr v
  | String s -> "\"" ^ escape s ^ "\""

let obj fields =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun k (name, v) ->
      if k > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape name);
      Buffer.add_string buf "\":";
      Buffer.add_string buf (value_to_string v))
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let line ~schema fields = obj (("schema", String schema) :: fields)

(* --- reading ---------------------------------------------------------- *)

(* A full (nested) JSON tree for the *reading* direction — the writer's
   flat [value] cannot hold objects/arrays.  Small recursive-descent
   reader, total over arbitrary input: [parse] returns a result, never
   raises.  Escapes decode the JSON common set; \uXXXX decodes below
   0x80 and passes the raw escape through otherwise (consumers here are
   machine-generated arrival records, not prose). *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected '%c'" c);
    advance ()
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "malformed \\u escape"
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | '"' | '\\' | '/' ->
              Buffer.add_char buf (peek ());
              advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let v =
                (hex s.[!pos] lsl 12) lor (hex s.[!pos + 1] lsl 8) lor (hex s.[!pos + 2] lsl 4)
                lor hex s.[!pos + 3]
              in
              if v < 0x80 then Buffer.add_char buf (Char.chr v)
              else Buffer.add_string buf (String.sub s (!pos - 2) 6);
              pos := !pos + 4
          | _ -> fail "unknown escape");
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "malformed number"
  in
  let literal word v =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      v
    end
    else fail "malformed literal"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); fields ((k, v) :: acc)
            | '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}' in object"
          in
          Jobj (fields [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Jarr []
        end
        else begin
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); items (v :: acc)
            | ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']' in array"
          in
          Jarr (items [])
        end
    | '"' -> Jstr (string_body ())
    | 't' -> Jbool (literal "true" true)
    | 'f' -> Jbool (literal "false" false)
    | 'n' -> literal "null" Jnull
    | _ -> Jnum (number ())
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s = match parse_exn s with v -> Ok v | exception Bad_json msg -> Error msg
let member name = function Jobj kvs -> List.assoc_opt name kvs | _ -> None
