(* JSON primitives shared by the exporters, plus the NDJSON record
   builder.  Output is deterministic: fields are emitted in the order
   given, floats use the shortest round-tripping representation, and
   non-finite floats — which bare JSON cannot carry — become the quoted
   string tokens "NaN" / "Infinity" / "-Infinity", preserving which
   non-finite value it was (null would collapse all three). *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr v =
  if Float.is_nan v then "\"NaN\""
  else if v = Float.infinity then "\"Infinity\""
  else if v = Float.neg_infinity then "\"-Infinity\""
  else if Float.is_integer v && Float.abs v <= 1e15 then Printf.sprintf "%.0f" v
  else begin
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v
  end

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

let value_to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float v -> float_repr v
  | String s -> "\"" ^ escape s ^ "\""

let obj fields =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun k (name, v) ->
      if k > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape name);
      Buffer.add_string buf "\":";
      Buffer.add_string buf (value_to_string v))
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let line ~schema fields = obj (("schema", String schema) :: fields)
