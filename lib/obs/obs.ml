(* The telemetry handle a simulation run carries: one registry for
   instruments, one sink for spans.  Construction chooses the observation
   level; the driver only ever reads the two fields. *)

type t = { registry : Registry.t; sink : Sink.t }

let create ?(sink = Sink.null) ?registry () =
  let registry = match registry with Some r -> r | None -> Registry.create () in
  { registry; sink }

let timed ?metric ?buckets ?clock () =
  let registry = Registry.create () in
  let clock = match clock with Some c -> c | None -> Clock.monotonic () in
  { registry; sink = Sink.spans ?metric ?buckets ~clock registry }

let registry t = t.registry
let sink t = t.sink
