(* Instrument cells.  Each instrument is a bare mutable record so the hot
   path pays one field write per event — no lookup, no allocation.  The
   registry (Registry) owns naming and iteration order; instruments
   themselves are anonymous. *)

module Counter = struct
  type t = { mutable value : float }

  let make () = { value = 0. }
  let value c = c.value
  let inc c = c.value <- c.value +. 1.

  let add c x =
    if x < 0. || Float.is_nan x then
      invalid_arg (Printf.sprintf "Obs.Counter.add: increment %g is not >= 0" x);
    c.value <- c.value +. x
end

module Gauge = struct
  type t = { mutable value : float }

  let make () = { value = 0. }
  let value g = g.value
  let set g x = g.value <- x
  let add g x = g.value <- g.value +. x
  let inc g = add g 1.
  let dec g = add g (-1.)
end

module Histogram = struct
  type t = {
    bounds : float array;  (* Strictly increasing upper bounds. *)
    counts : int array;  (* Per bucket; last slot is the +inf overflow. *)
    mutable sum : float;
    mutable count : int;
  }

  let make ~buckets =
    let bounds = Array.of_list buckets in
    let n = Array.length bounds in
    if n = 0 then invalid_arg "Obs.Histogram.make: no buckets";
    for k = 0 to n - 1 do
      if Float.is_nan bounds.(k) || (k > 0 && not (bounds.(k) > bounds.(k - 1))) then
        invalid_arg "Obs.Histogram.make: bucket bounds must be strictly increasing"
    done;
    { bounds; counts = Array.make (n + 1) 0; sum = 0.; count = 0 }

  let observe h x =
    let n = Array.length h.bounds in
    let k = ref 0 in
    (* NaN lands in the overflow bucket and is kept out of [sum], so one
       bad observation cannot poison the aggregate. *)
    if Float.is_nan x then k := n
    else begin
      while !k < n && x > h.bounds.(!k) do incr k done;
      h.sum <- h.sum +. x
    end;
    h.counts.(!k) <- h.counts.(!k) + 1;
    h.count <- h.count + 1

  let count h = h.count
  let sum h = h.sum
  let bounds h = Array.to_list h.bounds

  (* Bucket-wise accumulation, used by Registry.merge to fold per-shard
     registries together.  Only histograms with identical bounds can be
     merged: resampling observations into different buckets would need
     the raw values, which a histogram no longer has. *)
  let merge ~into src =
    let same =
      Array.length into.bounds = Array.length src.bounds
      && begin
           let ok = ref true in
           Array.iteri
             (fun k b -> if not (Float.equal b src.bounds.(k)) then ok := false)
             into.bounds;
           !ok
         end
    in
    if not same then invalid_arg "Obs.Histogram.merge: bucket bounds differ";
    Array.iteri (fun k c -> into.counts.(k) <- into.counts.(k) + c) src.counts;
    into.sum <- into.sum +. src.sum;
    into.count <- into.count + src.count

  let cumulative h =
    let acc = ref 0 in
    let cum = Array.map (fun c -> acc := !acc + c; !acc) h.counts in
    List.init (Array.length h.bounds) (fun k -> (h.bounds.(k), cum.(k)))
    @ [ (Float.infinity, cum.(Array.length cum - 1)) ]
end
