(* Registry exporters: Prometheus text exposition and a schema-versioned
   JSON snapshot.  Both iterate [Registry.entries] (sorted by name,
   labels, id), so two exports of equal registry contents are
   byte-identical. *)

let json_schema = "rejsched.metrics/1"

(* Prometheus floats allow +Inf/-Inf/NaN, unlike JSON. *)
let prom_float v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else Ndjson.float_repr v

let prom_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let label_block labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels)
      ^ "}"

let prometheus registry =
  let buf = Buffer.create 1024 in
  let current_family = ref None in
  let header (e : Registry.entry) =
    if !current_family <> Some e.Registry.name then begin
      current_family := Some e.Registry.name;
      if e.Registry.help <> "" then
        Printf.bprintf buf "# HELP %s %s\n" e.Registry.name (prom_escape e.Registry.help);
      Printf.bprintf buf "# TYPE %s %s\n" e.Registry.name
        (Registry.kind_name e.Registry.instrument)
    end
  in
  List.iter
    (fun (e : Registry.entry) ->
      header e;
      let name = e.Registry.name and labels = e.Registry.labels in
      match e.Registry.instrument with
      | Registry.Counter c ->
          Printf.bprintf buf "%s%s %s\n" name (label_block labels)
            (prom_float (Metric.Counter.value c))
      | Registry.Gauge g ->
          Printf.bprintf buf "%s%s %s\n" name (label_block labels)
            (prom_float (Metric.Gauge.value g))
      | Registry.Histogram h ->
          List.iter
            (fun (le, count) ->
              Printf.bprintf buf "%s_bucket%s %d\n" name
                (label_block (labels @ [ ("le", prom_float le) ]))
                count)
            (Metric.Histogram.cumulative h);
          Printf.bprintf buf "%s_sum%s %s\n" name (label_block labels)
            (prom_float (Metric.Histogram.sum h));
          Printf.bprintf buf "%s_count%s %d\n" name (label_block labels)
            (Metric.Histogram.count h))
    (Registry.entries registry);
  Buffer.contents buf

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (Ndjson.escape k) (Ndjson.escape v))
         labels)
  ^ "}"

(* [Ndjson.float_repr] tokens are spliced raw below; non-finite values
   arrive as the quoted strings "NaN"/"Infinity"/"-Infinity", so the
   document stays valid JSON and the three values stay distinguishable. *)
let json registry =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "{\n  \"schema\": \"%s\",\n  \"metrics\": [\n" json_schema;
  let entries = Registry.entries registry in
  List.iteri
    (fun k (e : Registry.entry) ->
      if k > 0 then Buffer.add_string buf ",\n";
      let common =
        Printf.sprintf "\"name\": \"%s\", \"type\": \"%s\", \"labels\": %s"
          (Ndjson.escape e.Registry.name)
          (Registry.kind_name e.Registry.instrument)
          (json_labels e.Registry.labels)
      in
      match e.Registry.instrument with
      | Registry.Counter c ->
          Printf.bprintf buf "    { %s, \"value\": %s }" common
            (Ndjson.float_repr (Metric.Counter.value c))
      | Registry.Gauge g ->
          Printf.bprintf buf "    { %s, \"value\": %s }" common
            (Ndjson.float_repr (Metric.Gauge.value g))
      | Registry.Histogram h ->
          let buckets =
            String.concat ","
              (List.map
                 (fun (le, count) ->
                   Printf.sprintf "{\"le\":\"%s\",\"count\":%d}" (prom_float le) count)
                 (Metric.Histogram.cumulative h))
          in
          Printf.bprintf buf "    { %s, \"count\": %d, \"sum\": %s, \"buckets\": [%s] }" common
            (Metric.Histogram.count h)
            (Ndjson.float_repr (Metric.Histogram.sum h))
            buckets)
    entries;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
