(** The telemetry handle: a {!Registry.t} for instruments plus a
    {!Sink.t} for spans.

    Pass one to {!Sched_sim.Driver.run} (its [?obs] argument) to have
    the driver auto-record decision counters, per-machine queue-depth
    gauges and phase spans.  Telemetry is strictly observational:
    scheduling decisions are byte-identical with or without a handle
    (pinned by the differential tests). *)

type t

val create : ?sink:Sink.t -> ?registry:Registry.t -> unit -> t
(** Counters and gauges only by default ([sink] defaults to
    {!Sink.null}, so no clock is ever read); pass an explicit registry
    to accumulate several runs into one snapshot. *)

val timed : ?metric:string -> ?buckets:float list -> ?clock:Clock.t -> unit -> t
(** Fresh registry plus an aggregating span sink ({!Sink.spans});
    [clock] defaults to {!Clock.monotonic}[ ()]. *)

val registry : t -> Registry.t
val sink : t -> Sink.t
