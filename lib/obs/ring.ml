(* A fixed-capacity flight-recorder ring: int and float columns over one
   circular slot index, stored row-major — one int array of
   [capacity * int_cols] and one float array of [capacity * float_cols],
   an entry's cells contiguous at [slot * cols].  Column arrays per se
   would be simpler, but every append then touches one cache line per
   column; the interleaved rows keep a whole entry inside one or two
   lines, which is most of an attached recorder's steady-state cost.

   Everything is preallocated in [create]; the write path ([append] +
   the column setters) touches only existing arrays and one mutable int,
   so the flat core can call it from its [@rejlint.hot] loop and
   RJL103's static proof goes through unchanged.

   Writers own the slot protocol: [append] claims the next slot
   (overwriting the oldest once full) and the caller then stores one
   value per column.  Readers index entries oldest-first; [first_seq]
   recovers the absolute sequence number of the oldest retained entry so
   exports can say how much history fell off the end. *)

type t = {
  cap : int;
  cap_mask : int;
      (* [cap - 1] when [cap] is a power of two, else [-1]: lets [append]
         replace the integer division of [mod] — tens of cycles, paid per
         event — with a single [land] in the common case. *)
  int_cols : int;
  float_cols : int;
  ints : int array;  (* Row-major: [slot * int_cols + col]. *)
  floats : float array;  (* Row-major: [slot * float_cols + col]. *)
  mutable total : int;  (* Entries ever appended, monotone. *)
}

let create ~int_cols ~float_cols ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  if int_cols < 0 || float_cols < 0 then invalid_arg "Ring.create: negative column count";
  {
    cap = capacity;
    cap_mask = (if capacity land (capacity - 1) = 0 then capacity - 1 else -1);
    int_cols;
    float_cols;
    ints = Array.make (max 1 (capacity * int_cols)) 0;
    floats = Array.make (max 1 (capacity * float_cols)) 0.;
    total = 0;
  }

let capacity t = t.cap
let total t = t.total
let length t = if t.total < t.cap then t.total else t.cap
let first_seq t = t.total - length t
let int_cols t = t.int_cols
let float_cols t = t.float_cols
let clear t = t.total <- 0

let[@rejlint.hot] append t =
  let slot =
    if t.cap_mask >= 0 then t.total land t.cap_mask else t.total mod t.cap
  in
  t.total <- t.total + 1;
  slot
[@@inline]

let[@rejlint.hot] set_int t ~col ~slot v = t.ints.((slot * t.int_cols) + col) <- v [@@inline]

let[@rejlint.hot] set_float t ~col ~slot v = t.floats.((slot * t.float_cols) + col) <- v
[@@inline]

(* Row escape hatch: hand the caller the backing arrays so its hot loop
   can store into a claimed row directly.  On the non-flambda compiler a
   float crossing a function boundary is boxed (one minor allocation);
   a store into a hoisted backing array is not, which is what keeps an
   attached recorder inside the driver's words-per-event ceilings.
   Cells of slot [s] live at [s * int_cols + col] and
   [s * float_cols + col]; slots must still be claimed through
   [append]. *)
let ints t = t.ints
let floats t = t.floats

(* Readers: [k] indexes retained entries oldest-first, [0 .. length-1]. *)

let slot_of t k =
  if k < 0 || k >= length t then
    invalid_arg (Printf.sprintf "Ring: entry index %d out of range (length %d)" k (length t));
  (first_seq t + k) mod t.cap

let get_int t ~col k = t.ints.((slot_of t k * t.int_cols) + col)
let get_float t ~col k = t.floats.((slot_of t k * t.float_cols) + col)
