(** Registry exporters.

    Both renderers walk {!Registry.entries} (sorted by name, labels,
    registration id), so exports of equal registry contents are
    byte-identical — golden-testable and diff-friendly. *)

val prometheus : Registry.t -> string
(** Prometheus text exposition format: one [# HELP]/[# TYPE] header per
    family, [name{labels} value] samples, histograms expanded into
    cumulative [_bucket{le=...}] plus [_sum]/[_count]. *)

val json : Registry.t -> string
(** JSON snapshot, schema {!json_schema}: an object with a ["metrics"]
    array of [{name, type, labels, ...}] records (counters and gauges
    carry ["value"]; histograms carry ["count"], ["sum"] and cumulative
    ["buckets"]). *)

val json_schema : string
(** Current snapshot schema tag, ["rejsched.metrics/1"]. *)

val prom_float : float -> string
(** Prometheus number formatting ([+Inf]/[-Inf]/[NaN] allowed). *)
