(** Wall-clock access for the telemetry layer.

    This module is the {e only} place in [lib/] permitted to touch real
    time (rejlint rule RJL007 allowlists [lib/obs/clock.ml] and flags
    every other reference).  Scheduling code never reads a clock: spans
    are report-layer measurements, and all deterministic consumers use
    {!frozen} or {!ticker} substitutes. *)

type t = unit -> float
(** A clock is just a function returning seconds.  The unit of the epoch
    is irrelevant: only differences are ever reported. *)

val wall : t
(** Real wall-clock time ([Unix.gettimeofday]).  Not monotonic. *)

val monotonic : unit -> t
(** {!wall} clamped to be non-decreasing, so span durations are never
    negative even across NTP steps.  Each call creates an independent
    clamp state. *)

val frozen : float -> t
(** Always returns the given instant — spans measure zero. *)

val ticker : ?start:float -> ?step:float -> unit -> t
(** Deterministic fake: returns [start], [start +. step], ... on
    successive calls (defaults 0 and 1).  Test clockwork. *)

val calls : t -> t * (unit -> int)
(** [calls c] wraps [c] with an invocation counter — used to prove the
    {!Sink.null} sink never consults the clock. *)
