(* The flight recorder: scheduling-event semantics over a {!Ring}.

   One entry per driver event — dispatch, start, complete, reject,
   restart — with the decision provenance the post-mortem needs: the
   candidate machine set and queue score at dispatch time, and the
   theorem-budget counters (rejected count and weight so far) at the
   moment of each rejection.  Column meanings are fixed here.

   The write protocol is split to keep an attached recorder cheap on the
   non-flambda compiler, where any float crossing a function boundary is
   boxed (one minor allocation each): the [reserve_*] writers take only
   ints — kind, ids and the int payload — stamp the int cells of the
   claimed row and return the row's base index into the float backing
   array, and the caller then stores the float payload directly at
   [base + o_time] etc.  Both halves are allocation-free, so attaching a
   recorder to the flat core keeps its static zero-allocation proof and
   its words-per-event ceilings.

   Column layout (one row per event):
     int   kind     0=dispatch 1=start 2=complete 3=reject 4=restart
     int   job      job id
     int   machine  machine id
     int   flag     dispatch: candidate count; reject: was_running 0/1
     int   aux      dispatch: eligibility bitmask (bit [i] for machine
                    [i] <= 61, machines beyond that saturate into bit
                    62); reject: jobs rejected so far (this one included)
     float time     simulation clock at the event
     float value    dispatch: pending work on the chosen machine before
                    the insert; start: effective rate; complete: flow
                    time; reject: remaining volume; restart: wasted work
     float score    dispatch: value + remaining volume of the chosen
                    machine's running job; start: job size there
     float budget   reject: total rejected weight so far *)

let int_cols = 5
let float_cols = 4
let col_kind = 0
let col_job = 1
let col_machine = 2
let col_flag = 3
let col_aux = 4
let col_time = 0
let col_value = 1
let col_score = 2
let col_budget = 3

(* Float-cell offsets from the row base a [reserve_*] call returns. *)
let o_time = col_time
let o_value = col_value
let o_score = col_score
let o_budget = col_budget

let kind_dispatch = 0
let kind_start = 1
let kind_complete = 2
let kind_reject = 3
let kind_restart = 4

type t = { ring : Ring.t; ints : int array; floats : float array }

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  let ring = Ring.create ~int_cols ~float_cols ~capacity in
  { ring; ints = Ring.ints ring; floats = Ring.floats ring }

let capacity t = Ring.capacity t.ring
let total t = Ring.total t.ring
let length t = Ring.length t.ring
let dropped t = Ring.total t.ring - Ring.length t.ring
let clear t = Ring.clear t.ring

(* The int half of every write.  The float cells are deliberately not
   zeroed here: every writer stores [time] and [value], and the decode
   side masks [score]/[budget] by kind, so a wrapped slot cannot leak a
   previous entry's payload through cells the new kind leaves unset. *)
let[@rejlint.hot] reserve t kind ~job ~machine ~flag ~aux =
  let slot = Ring.append t.ring in
  let ib = slot * int_cols in
  t.ints.(ib + col_kind) <- kind;
  t.ints.(ib + col_job) <- job;
  t.ints.(ib + col_machine) <- machine;
  t.ints.(ib + col_flag) <- flag;
  t.ints.(ib + col_aux) <- aux;
  slot * float_cols
[@@inline]

let[@rejlint.hot] reserve_dispatch t ~job ~machine ~cands ~mask =
  reserve t kind_dispatch ~job ~machine ~flag:cands ~aux:mask
[@@inline]

let[@rejlint.hot] reserve_start t ~job ~machine =
  reserve t kind_start ~job ~machine ~flag:0 ~aux:0
[@@inline]

let[@rejlint.hot] reserve_complete t ~job ~machine =
  reserve t kind_complete ~job ~machine ~flag:0 ~aux:0
[@@inline]

let[@rejlint.hot] reserve_reject t ~job ~machine ~was_running ~rejected =
  reserve t kind_reject ~job ~machine ~flag:(if was_running then 1 else 0) ~aux:rejected
[@@inline]

let[@rejlint.hot] reserve_restart t ~job ~machine =
  reserve t kind_restart ~job ~machine ~flag:0 ~aux:0
[@@inline]

(* --- cold decode side ------------------------------------------------- *)

type kind = Dispatch | Start | Complete | Reject | Restart

let kind_to_string = function
  | Dispatch -> "dispatch"
  | Start -> "start"
  | Complete -> "complete"
  | Reject -> "reject"
  | Restart -> "restart"

let kind_of_int = function
  | 0 -> Dispatch
  | 1 -> Start
  | 2 -> Complete
  | 3 -> Reject
  | 4 -> Restart
  | k -> invalid_arg (Printf.sprintf "Recorder: unknown event kind %d" k)

type entry = {
  seq : int;
  time : float;
  kind : kind;
  job : int;
  machine : int;
  flag : int;
  aux : int;
  value : float;
  score : float;
  budget : float;
}

let entry t k =
  let r = t.ring in
  let kind = kind_of_int (Ring.get_int r ~col:col_kind k) in
  (* [score]/[budget] are only written by some kinds (and [reserve] does
     not zero float cells), so mask by kind here rather than surface a
     wrapped slot's stale payload. *)
  {
    seq = Ring.first_seq r + k;
    time = Ring.get_float r ~col:col_time k;
    kind;
    job = Ring.get_int r ~col:col_job k;
    machine = Ring.get_int r ~col:col_machine k;
    flag = Ring.get_int r ~col:col_flag k;
    aux = Ring.get_int r ~col:col_aux k;
    value = Ring.get_float r ~col:col_value k;
    score =
      (match kind with
      | Dispatch | Start -> Ring.get_float r ~col:col_score k
      | Complete | Reject | Restart -> 0.);
    budget = (match kind with Reject -> Ring.get_float r ~col:col_budget k | _ -> 0.);
  }

let entries ?last t =
  let len = length t in
  let keep =
    match last with
    | None -> len
    | Some n when n < 0 -> 0
    | Some n -> if n < len then n else len
  in
  List.init keep (fun idx -> entry t (len - keep + idx))
