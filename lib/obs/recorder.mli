(** The flight recorder: per-decision scheduling events with provenance,
    in a fixed-capacity {!Ring}.

    A recorder attached to the driver ([Driver.run ~recorder]) captures
    one entry per dispatch/start/complete/reject/restart event, carrying
    the context the aggregate counters lose: the candidate machine set
    and queue score behind each dispatch, and the theorem-budget
    counters (rejections and rejected weight so far) at the moment of
    each rejection.  Once full, the oldest entries are overwritten — the
    last [capacity] decisions before a failure are always available.

    The write protocol has two halves so an attached recorder stays
    allocation-free on the non-flambda compiler, where a float crossing
    a function boundary is boxed: a [reserve_*] call takes only ints,
    stamps the int cells of the claimed row and returns the row's base
    index into the float backing array; the caller then stores the float
    payload directly at [base + o_time] etc.  Both halves are
    [\@rejlint.hot] and RJL103-proven, so the flat core records from
    its hot loop without breaking its static zero-alloc proof or its
    words-per-event ceilings.  Decoding ({!entries}) is the cold path
    for exporters and forensics. *)

type t = private { ring : Ring.t; ints : int array; floats : float array }
(** The backing arrays are exposed (row-major, shared with [ring]) so
    writers can store float payloads without a boxing call boundary;
    rows must be claimed through [reserve_*], never fabricated. *)

val default_capacity : int
(** 65536 entries. *)

val create : ?capacity:int -> unit -> t
(** Preallocates the ring; default capacity {!default_capacity}.  A
    power-of-two capacity keeps the write path on its division-free
    fast path. *)

val capacity : t -> int

val total : t -> int
(** Events ever recorded (monotone). *)

val length : t -> int
(** Events currently retained. *)

val dropped : t -> int
(** Events overwritten and lost: [total t - length t]. *)

val clear : t -> unit

(** {1 Hot write path}

    Each [reserve_*] claims the next row, stamps its int cells and
    returns the row's base index into {!floats}; the caller follows up
    with direct stores of the float payload, e.g.
    [(let b = reserve_start rc ~job ~machine in
      rc.floats.(b + o_time) <- clock;
      rc.floats.(b + o_value) <- rate;
      rc.floats.(b + o_score) <- size)].
    Float cells are not zeroed on reserve: [o_time] and [o_value] must
    be stored for every kind, while [o_score]/[o_budget] are masked by
    kind at decode, so a wrapped slot cannot leak a previous entry's
    payload. *)

val o_time : int
val o_value : int
val o_score : int
val o_budget : int

val reserve_dispatch : t -> job:int -> machine:int -> cands:int -> mask:int -> int
(** [cands] is the number of eligible machines, [mask] their bitmask
    (bit [i] for machine [i <= 61]; higher machines saturate into bit
    62).  Float payload: [o_time] the clock, [o_value] the chosen
    machine's pending work before the insert, [o_score] that work plus
    the remaining volume of its running job. *)

val reserve_start : t -> job:int -> machine:int -> int
(** Float payload: [o_time], [o_value] the effective rate, [o_score]
    the job's size on the machine. *)

val reserve_complete : t -> job:int -> machine:int -> int
(** Float payload: [o_time], [o_value] the flow time [finish - release]. *)

val reserve_reject : t -> job:int -> machine:int -> was_running:bool -> rejected:int -> int
(** [rejected] is the rejected-jobs counter {e after} this rejection is
    accounted — the value the theorem bound constrains.  Float payload:
    [o_time], [o_value] the remaining volume, [o_budget] the rejected
    weight so far (same post-accounting convention). *)

val reserve_restart : t -> job:int -> machine:int -> int
(** Float payload: [o_time], [o_value] the wasted (re-done) work. *)

(** {1 Cold decode path} *)

type kind = Dispatch | Start | Complete | Reject | Restart

val kind_to_string : kind -> string

type entry = {
  seq : int;  (** Absolute event number (0-based since the run began). *)
  time : float;
  kind : kind;
  job : int;
  machine : int;
  flag : int;  (** Dispatch: candidate count; reject: was_running 0/1. *)
  aux : int;  (** Dispatch: eligibility bitmask; reject: rejected-so-far. *)
  value : float;
      (** Dispatch: pending work before insert; start: rate; complete:
          flow; reject: remaining volume; restart: wasted work. *)
  score : float;  (** Dispatch: work + remaining volume; start: size. *)
  budget : float;  (** Reject: rejected weight so far. *)
}

val entries : ?last:int -> t -> entry list
(** Retained entries oldest-first; [?last] keeps only the newest [n]. *)
