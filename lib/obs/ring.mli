(** Fixed-capacity flight-recorder ring buffer.

    Int and float columns share one circular slot index: an entry is one
    slot across every column.  Storage is row-major — an entry's cells
    are contiguous — so an append touches one or two cache lines, not
    one per column.  All storage is preallocated by {!create}; the write
    path — {!append} plus the column setters — performs no allocation,
    which RJL103 proves statically (the functions carry [\@rejlint.hot]).

    Write protocol: call {!append} to claim the next slot (overwriting
    the oldest entry once the ring is full), then store one value per
    column with {!set_int}/{!set_float} at that slot.  The ring does not
    interpret columns; {!Recorder} layers event semantics on top. *)

type t

val create : int_cols:int -> float_cols:int -> capacity:int -> t
(** Preallocates [int_cols] + [float_cols] columns of [capacity] slots.
    Raises [Invalid_argument] if [capacity <= 0] or a column count is
    negative.  A power-of-two capacity lets the write path replace its
    per-event [mod] (an integer division) with a bitwise [land]. *)

val capacity : t -> int

val total : t -> int
(** Entries ever appended (monotone; not capped). *)

val length : t -> int
(** Entries currently retained: [min (total t) (capacity t)]. *)

val first_seq : t -> int
(** Absolute sequence number of the oldest retained entry, i.e.
    [total t - length t] entries have been overwritten and lost. *)

val int_cols : t -> int
val float_cols : t -> int

val clear : t -> unit
(** Forgets all entries (storage is retained). *)

val append : t -> int
(** Claims the next slot and returns its index.  Allocation-free. *)

val set_int : t -> col:int -> slot:int -> int -> unit
(** Stores into an int column at a slot returned by {!append}.
    Allocation-free; column bounds are the caller's contract (an
    out-of-range column corrupts the neighbouring cell of the same row
    or raises via the array bounds check at the ends). *)

val set_float : t -> col:int -> slot:int -> float -> unit
(** Float-column counterpart of {!set_int}. *)

val ints : t -> int array
(** The row-major int backing array: slot [s]'s cells live at
    [s * int_cols t + col].  Hoist it once and store directly when even
    the setter call is too expensive — on the non-flambda compiler a
    float argument crossing a function boundary is boxed, a direct array
    store is not.  Writers must still claim slots through {!append}. *)

val floats : t -> float array
(** Row-major float counterpart of {!ints}, stride [float_cols t]. *)

val get_int : t -> col:int -> int -> int
(** [get_int t ~col k] reads retained entry [k] (oldest-first,
    [0 <= k < length t]) from an int column.  Raises
    [Invalid_argument] out of range. *)

val get_float : t -> col:int -> int -> float
