(** Newline-delimited JSON records with a schema tag, plus the JSON
    primitives the other exporters share.

    Every record is a single-line JSON object whose first field is
    ["schema"] — a versioned tag like ["rejsched.trace/1"] — so stream
    consumers can dispatch without peeking at the rest of the record. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
      (** Non-finite floats are emitted as the quoted string tokens
          ["NaN"] / ["Infinity"] / ["-Infinity"] — valid JSON that
          still distinguishes the three values. *)
  | String of string

val obj : (string * value) list -> string
(** One JSON object on one line, fields in the given order, no trailing
    newline. *)

val line : schema:string -> (string * value) list -> string
(** {!obj} with [("schema", String schema)] prepended. *)

val escape : string -> string
(** JSON string-body escaping. *)

val float_repr : float -> string
(** Shortest round-tripping decimal; integral values print without a
    fraction.  Non-finite values print as the JSON string tokens
    ["\"NaN\""], ["\"Infinity\""] and ["\"-Infinity\""] — the returned
    token includes the quotes, so splicing it raw into a JSON document
    (as {!Export.json} does) stays valid JSON. *)

val value_to_string : value -> string

(** {1 Reading}

    A full (nested) JSON tree for the consuming direction — [rejsched
    serve] parses arrival records with it.  [value] above stays flat
    because the writers never nest. *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

val parse : string -> (json, string) result
(** Total: malformed input (including trailing garbage after the value)
    yields [Error msg] with the byte offset, never an exception. *)

val member : string -> json -> json option
(** First binding of the field in an object; [None] on non-objects. *)
