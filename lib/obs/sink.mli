(** Span sinks: where phase timings go.

    A sink either discards spans ({!null} — one pattern match, no clock
    read, so instrumented code keeps its uninstrumented throughput) or
    aggregates them into per-phase duration histograms in a registry
    ({!spans}).  Spans are report-layer only: they observe wall time but
    never feed back into scheduling decisions, which stay byte-identical
    with any sink. *)

type t

val null : t
(** Records nothing and never consults any clock. *)

val spans : ?metric:string -> ?buckets:float list -> clock:Clock.t -> Registry.t -> t
(** Aggregating sink: each phase gets a histogram
    [metric{phase="<name>"}] (default family ["obs_phase_seconds"],
    default buckets 100ns..1s decades) in the registry, created on first
    use. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t phase f] runs [f] and records its duration against [phase]
    (also on exception).  With {!null} this is exactly [f ()]. *)

val duration : t -> string -> float -> unit
(** Record an externally measured duration. *)

val default_buckets : float list
