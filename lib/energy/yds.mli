(** The YDS offline algorithm (Yao, Demers, Shenker 1995): minimum-energy
    {e preemptive} speed scaling of deadline jobs on one machine with
    [P(s) = s^alpha].

    The preemptive optimum lower-bounds the non-preemptive optimum on a
    single machine, making YDS the reference denominator for the Theorem 3
    experiments. *)

type job = { release : float; deadline : float; volume : float }

val optimal_energy : alpha:float -> job list -> float
(** Total energy of the YDS schedule (exact, via repeated critical-interval
    peeling).  Jobs must have [release < deadline] and positive volume. *)

val of_instance : Sched_model.Instance.t -> machine:int -> job list
(** Extract single-machine deadline jobs using the sizes of [machine];
    requires every job to carry a deadline and be eligible there. *)
