(** The AVERAGE RATE online heuristic (Yao, Demers, Shenker 1995):
    every deadline job is processed at its average density
    [p_j / (d_j - r_j)] spread uniformly over its window (preemptive,
    single machine).  [2^(alpha-1) alpha^alpha]-competitive classically;
    here it serves as the preemptive online comparator for Theorem 3's
    non-preemptive greedy. *)

val energy : alpha:float -> Yds.job list -> float
(** Energy of the AVR speed profile [s(t) = sum of active densities]. *)
