type job = { release : float; deadline : float; volume : float }

let of_instance instance ~machine =
  Array.to_list
    (Array.map
       (fun (j : Sched_model.Job.t) ->
         match j.Sched_model.Job.deadline with
         | None -> invalid_arg "Yds.of_instance: job without deadline"
         | Some d ->
             let volume = Sched_model.Job.size j machine in
             if not (Float.is_finite volume) then
               invalid_arg "Yds.of_instance: job not eligible on machine";
             { release = j.Sched_model.Job.release; deadline = d; volume })
       (Sched_model.Instance.jobs_by_release instance))

(* One round: find the interval [t1, t2] (endpoints among releases and
   deadlines) maximizing the intensity of fully-contained jobs. *)
let critical_interval jobs =
  let t1s = List.sort_uniq Float.compare (List.map (fun j -> j.release) jobs) in
  let t2s = List.sort_uniq Float.compare (List.map (fun j -> j.deadline) jobs) in
  let best = ref None in
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          if t2 > t1 then begin
            let volume =
              List.fold_left
                (fun acc j -> if j.release >= t1 && j.deadline <= t2 then acc +. j.volume else acc)
                0. jobs
            in
            if volume > 0. then begin
              let intensity = volume /. (t2 -. t1) in
              match !best with
              | Some (gi, _, _) when gi >= intensity -> ()
              | _ -> best := Some (intensity, t1, t2)
            end
          end)
        t2s)
    t1s;
  !best

let optimal_energy ~alpha jobs =
  if alpha < 1. then invalid_arg "Yds.optimal_energy: alpha must be >= 1";
  List.iter
    (fun j ->
      if j.volume <= 0. || j.deadline <= j.release then
        invalid_arg "Yds.optimal_energy: bad job")
    jobs;
  let rec loop jobs energy =
    if jobs = [] then energy
    else begin
      match critical_interval jobs with
      | None -> energy
      | Some (intensity, t1, t2) ->
          let inside j = j.release >= t1 && j.deadline <= t2 in
          let energy = energy +. ((intensity ** alpha) *. (t2 -. t1)) in
          let len = t2 -. t1 in
          (* Compress [t1, t2] out of the timeline for the survivors. *)
          let squeeze t = if t <= t1 then t else if t >= t2 then t -. len else t1 in
          let rest =
            List.filter_map
              (fun j ->
                if inside j then None
                else Some { j with release = squeeze j.release; deadline = squeeze j.deadline })
              jobs
          in
          loop rest energy
    end
  in
  loop jobs 0.
