(** Lower bounds on the offline optimum of the two speed-scaling
    objectives. *)

open Sched_model

val deadline_energy_lb : Instance.t -> float
(** Non-preemptive (indeed even preemptive, non-migratory) energy
    minimization with deadlines: since [P(s) = s^alpha] is convex with
    [P(0) = 0], power is superadditive across jobs sharing a machine, and
    each job alone needs at least [p_ij^alpha / (d_j - r_j)^(alpha-1)]
    (constant speed over its whole window, by Jensen).  Returns
    [sum_j min_i] of that quantity. *)

val yds_lb : Instance.t -> float option
(** For single-machine instances: the exact preemptive optimum (YDS), a
    tighter lower bound.  [None] when [m > 1]. *)

val assignment_yds_lb : ?max_n:int -> Instance.t -> float option
(** Exact lower bound for small multi-machine instances: minimum over all
    job-to-machine assignments of the sum of per-machine YDS (preemptive)
    optima.  Any non-migratory schedule — the Theorem 3 greedy never
    migrates — costs at least this much.  Enumerates [m^n] assignments, so
    [None] beyond [max_n] jobs (default 14) or more than 3 machines. *)

val best_deadline_energy : Instance.t -> float * string
(** The largest of the above with its label ([yds], [per-job] or
    [assign-yds]). *)

val flow_energy_lb : Instance.t -> float
(** Weighted flow-time plus energy (the Section 3 objective): each job
    alone costs at least
    [min_i min_s (w_j p_ij / s + p_ij s^(alpha-1))
     = min_i p_ij (w_j / s* + s*^(alpha-1))]
    with [s* = (w_j/(alpha-1))^(1/alpha)] — its weighted flow is at least
    its own processing time and the energy spent on it is minimized at
    constant speed.  Summing is valid because both terms are separable
    per-job lower bounds. *)
