let energy ~alpha jobs =
  if alpha < 1. then invalid_arg "Avr.energy: alpha must be >= 1";
  let points =
    List.concat_map (fun (j : Yds.job) -> [ j.Yds.release; j.Yds.deadline ]) jobs
    |> List.sort_uniq Float.compare
  in
  let rec sweep acc = function
    | a :: (b :: _ as rest) ->
        let mid = (a +. b) /. 2. in
        let speed =
          List.fold_left
            (fun s (j : Yds.job) ->
              if j.Yds.release <= mid && mid < j.Yds.deadline then
                s +. (j.Yds.volume /. (j.Yds.deadline -. j.Yds.release))
              else s)
            0. jobs
        in
        sweep (acc +. ((b -. a) *. (speed ** alpha))) rest
    | _ -> acc
  in
  sweep 0. points
