open Sched_model

let deadline_energy_lb instance =
  let total = ref 0. in
  Array.iter
    (fun (j : Job.t) ->
      match j.deadline with
      | None -> invalid_arg "Energy_bounds.deadline_energy_lb: job without deadline"
      | Some d ->
          let span = d -. j.release in
          let best = ref Float.infinity in
          for i = 0 to Instance.m instance - 1 do
            if Job.eligible j i then begin
              let alpha = (Instance.machine instance i).Machine.alpha in
              let p = Job.size j i in
              best := Float.min !best ((p ** alpha) /. (span ** (alpha -. 1.)))
            end
          done;
          total := !total +. !best)
    (Instance.jobs_by_release instance);
  !total

let yds_lb instance =
  if Instance.m instance <> 1 then None
  else begin
    let alpha = (Instance.machine instance 0).Machine.alpha in
    Some (Yds.optimal_energy ~alpha (Yds.of_instance instance ~machine:0))
  end

let assignment_yds_lb ?(max_n = 14) instance =
  let n = Instance.n instance and m = Instance.m instance in
  if n > max_n || m > 3 || n = 0 then None
  else begin
    let jobs = Instance.jobs_by_release instance in
    let assignment = Array.make n 0 in
    let best = ref Float.infinity in
    let rec go k =
      if k = n then begin
        (* Sum per-machine YDS optima for this assignment. *)
        let cost = ref 0. in
        (try
           for i = 0 to m - 1 do
             let mine = ref [] in
             Array.iteri
               (fun idx (j : Job.t) ->
                 if assignment.(idx) = i then begin
                   let volume = Job.size j i in
                   if not (Float.is_finite volume) then raise Exit;
                   mine :=
                     { Yds.release = j.release; deadline = Option.get j.deadline; volume }
                     :: !mine
                 end)
               jobs;
             let alpha = (Instance.machine instance i).Machine.alpha in
             cost := !cost +. Yds.optimal_energy ~alpha !mine;
             if !cost >= !best then raise Exit
           done;
           if !cost < !best then best := !cost
         with Exit -> ())
      end
      else
        for i = 0 to m - 1 do
          if Job.eligible jobs.(k) i then begin
            assignment.(k) <- i;
            go (k + 1)
          end
        done
    in
    go 0;
    if Float.is_finite !best then Some !best else None
  end

let best_deadline_energy instance =
  let superadd = deadline_energy_lb instance in
  let candidates =
    [ Some (superadd, "per-job");
      Option.map (fun v -> (v, "yds")) (yds_lb instance);
      Option.map (fun v -> (v, "assign-yds")) (assignment_yds_lb instance) ]
  in
  List.fold_left
    (fun (bv, bs) c -> match c with Some (v, s) when v > bv -> (v, s) | _ -> (bv, bs))
    (0., "none") candidates

let flow_energy_lb instance =
  let total = ref 0. in
  Array.iter
    (fun (j : Job.t) ->
      let best = ref Float.infinity in
      for i = 0 to Instance.m instance - 1 do
        if Job.eligible j i then begin
          let alpha = (Instance.machine instance i).Machine.alpha in
          let p = Job.size j i in
          let cost =
            if alpha <= 1. then p *. j.weight
            else begin
              let s = Power.optimal_speed_for_flow ~alpha ~weight:j.weight in
              p *. ((j.weight /. s) +. (s ** (alpha -. 1.)))
            end
          in
          best := Float.min !best cost
        end
      done;
      total := !total +. !best)
    (Instance.jobs_by_release instance);
  !total
