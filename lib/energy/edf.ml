let min_speed jobs =
  let t1s = List.sort_uniq Float.compare (List.map (fun (j : Yds.job) -> j.Yds.release) jobs) in
  let t2s = List.sort_uniq Float.compare (List.map (fun (j : Yds.job) -> j.Yds.deadline) jobs) in
  List.fold_left
    (fun acc t1 ->
      List.fold_left
        (fun acc t2 ->
          if t2 > t1 then begin
            let volume =
              List.fold_left
                (fun v (j : Yds.job) ->
                  if j.Yds.release >= t1 && j.Yds.deadline <= t2 then v +. j.Yds.volume else v)
                0. jobs
            in
            Float.max acc (volume /. (t2 -. t1))
          end
          else acc)
        acc t2s)
    0. t1s

let feasible ~speed jobs =
  if speed <= 0. then invalid_arg "Edf.feasible: speed must be positive";
  (* Event-driven preemptive EDF at constant speed. *)
  let sorted = List.sort (fun (a : Yds.job) b -> Float.compare a.Yds.release b.Yds.release) jobs in
  let active : (float * float ref) list ref = ref [] (* (deadline, remaining) *) in
  let ok = ref true in
  let run_until t t' =
    (* Serve EDF during [t, t'). *)
    let budget = ref ((t' -. t) *. speed) in
    let rec serve () =
      match List.sort (fun (d1, _) (d2, _) -> Float.compare d1 d2) !active with
      | [] -> ()
      | (d, rem) :: _ ->
          if !budget <= 0. then ()
          else begin
            let take = Float.min !rem !budget in
            rem := !rem -. take;
            budget := !budget -. take;
            if !rem <= 1e-12 then begin
              active := List.filter (fun (_, r) -> r != rem) !active;
              serve ()
            end;
            ignore d
          end
    in
    serve ();
    (* Deadline misses: any active job whose deadline passed within [t, t']. *)
    List.iter (fun (d, rem) -> if d <= t' +. 1e-12 && !rem > 1e-9 then ok := false) !active
  in
  let clock = ref 0. in
  List.iter
    (fun (j : Yds.job) ->
      (* Advance to this release, checking intermediate deadlines too. *)
      let deadlines =
        List.filter (fun (d, _) -> d > !clock && d < j.Yds.release) !active
        |> List.map fst |> List.sort_uniq Float.compare
      in
      List.iter
        (fun d ->
          run_until !clock d;
          clock := d)
        deadlines;
      run_until !clock j.Yds.release;
      clock := j.Yds.release;
      active := (j.Yds.deadline, ref j.Yds.volume) :: !active)
    sorted;
  (* Drain the tail, stopping at each remaining deadline. *)
  let rest = List.map fst !active |> List.sort_uniq Float.compare in
  List.iter
    (fun d ->
      run_until !clock d;
      clock := Float.max !clock d)
    rest;
  !ok

let yds_peak_speed ~alpha jobs =
  ignore alpha;
  (* The YDS construction peels critical intervals in non-increasing
     intensity order, so the peak speed is the first (maximum) intensity —
     which is exactly [min_speed]. We recompute it via the same peeling to
     keep the cross-check independent of the closed form. *)
  let rec peel jobs peak =
    if jobs = [] then peak
    else begin
      let t1s = List.sort_uniq Float.compare (List.map (fun (j : Yds.job) -> j.Yds.release) jobs) in
      let t2s = List.sort_uniq Float.compare (List.map (fun (j : Yds.job) -> j.Yds.deadline) jobs) in
      let best = ref None in
      List.iter
        (fun t1 ->
          List.iter
            (fun t2 ->
              if t2 > t1 then begin
                let volume =
                  List.fold_left
                    (fun v (j : Yds.job) ->
                      if j.Yds.release >= t1 && j.Yds.deadline <= t2 then v +. j.Yds.volume
                      else v)
                    0. jobs
                in
                if volume > 0. then begin
                  let g = volume /. (t2 -. t1) in
                  match !best with
                  | Some (g', _, _) when g' >= g -> ()
                  | _ -> best := Some (g, t1, t2)
                end
              end)
            t2s)
        t1s;
      match !best with
      | None -> peak
      | Some (g, t1, t2) ->
          let len = t2 -. t1 in
          let squeeze t = if t <= t1 then t else if t >= t2 then t -. len else t1 in
          let rest =
            List.filter_map
              (fun (j : Yds.job) ->
                if j.Yds.release >= t1 && j.Yds.deadline <= t2 then None
                else
                  Some
                    {
                      j with
                      Yds.release = squeeze j.Yds.release;
                      deadline = squeeze j.Yds.deadline;
                    })
              jobs
          in
          peel rest (Float.max peak g)
    end
  in
  peel jobs 0.
