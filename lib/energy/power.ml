type t = { name : string; eval : float -> float }

let name t = t.name

let eval t s =
  if s < 0. then invalid_arg "Power.eval: negative speed";
  t.eval s

let polynomial ~alpha =
  if alpha < 1. then invalid_arg "Power.polynomial: alpha must be >= 1";
  { name = Printf.sprintf "s^%g" alpha; eval = (fun s -> s ** alpha) }

let affine_polynomial ~alpha ~static =
  if alpha < 1. then invalid_arg "Power.affine_polynomial: alpha must be >= 1";
  if static < 0. then invalid_arg "Power.affine_polynomial: negative static power";
  {
    name = Printf.sprintf "s^%g+%g" alpha static;
    eval = (fun s -> if s = 0. then 0. else (s ** alpha) +. static);
  }

let piecewise steps =
  if steps = [] then invalid_arg "Power.piecewise: empty";
  let rec check prev_s prev_p = function
    | [] -> ()
    | (s, p) :: rest ->
        if s <= prev_s then invalid_arg "Power.piecewise: speeds must increase";
        if p < prev_p then invalid_arg "Power.piecewise: powers must not decrease";
        check s p rest
  in
  check 0. 0. steps;
  let eval s =
    if s = 0. then 0.
    else begin
      let rec find = function
        | [] -> snd (List.nth steps (List.length steps - 1)) (* beyond top speed: clamp *)
        | (sk, pk) :: rest -> if s <= sk then pk else find rest
      in
      find steps
    end
  in
  { name = Printf.sprintf "piecewise(%d)" (List.length steps); eval }

let energy t ~speed ~duration =
  if duration < 0. then invalid_arg "Power.energy: negative duration";
  eval t speed *. duration

let optimal_speed_for_flow ~alpha ~weight =
  if alpha <= 1. then invalid_arg "Power.optimal_speed_for_flow: alpha must exceed 1";
  if weight <= 0. then invalid_arg "Power.optimal_speed_for_flow: weight must be positive";
  (weight /. (alpha -. 1.)) ** (1. /. alpha)
