open Sched_stats

let lhs p ~a ~b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Smooth.lhs: length mismatch";
  let acc = ref 0. and prefix = ref 0. in
  for i = 0 to n - 1 do
    prefix := !prefix +. a.(i);
    acc := !acc +. (Power.eval p (b.(i) +. !prefix) -. Power.eval p !prefix)
  done;
  !acc

let rhs p ~lambda ~mu ~a ~b =
  let sum = Array.fold_left ( +. ) 0. in
  (lambda *. Power.eval p (sum b)) +. (mu *. Power.eval p (sum a))

let violates p ~lambda ~mu ~a ~b = lhs p ~a ~b > rhs p ~lambda ~mu ~a ~b +. 1e-9

(* Structured candidates that are known to be near-extremal for s^alpha:
   all-equal blocks, a single large b against a ramp of a's, geometric
   growth. *)
let structured n =
  let patterns = ref [] in
  let push a b = patterns := (a, b) :: !patterns in
  for k = 1 to n do
    push (Array.make k 1.) (Array.make k 1.);
    push (Array.make k 1.) (Array.init k (fun i -> if i = k - 1 then float_of_int k else 0.));
    push (Array.make k 1.) (Array.init k (fun i -> if i = 0 then float_of_int k else 0.));
    push (Array.init k (fun i -> 2. ** float_of_int i)) (Array.init k (fun i -> 2. ** float_of_int i));
    push (Array.init k (fun i -> float_of_int (i + 1))) (Array.make k 1.)
  done;
  !patterns

let lambda_of p ~mu ~a ~b =
  let denom = Power.eval p (Array.fold_left ( +. ) 0. b) in
  if denom <= 0. then 0.
  else (lhs p ~a ~b -. (mu *. Power.eval p (Array.fold_left ( +. ) 0. a))) /. denom

let required_lambda ?(trials = 2000) ?(n = 8) p ~mu rng =
  let worst = ref 0. in
  let consider (a, b) =
    let l = lambda_of p ~mu ~a ~b in
    if l > !worst then worst := l
  in
  List.iter consider (structured n);
  for _ = 1 to trials do
    let k = 1 + Rng.int rng n in
    let a = Array.init k (fun _ -> Rng.float_range rng 0. 4.) in
    let b = Array.init k (fun _ -> Rng.float_range rng 0. 4.) in
    consider (a, b);
    (* Sparse variant: zero out most of b. *)
    let b' = Array.map (fun x -> if Rng.float rng < 0.7 then 0. else x) b in
    consider (a, b')
  done;
  !worst

let check ?trials ?n p ~lambda ~mu rng =
  required_lambda ?trials ?n p ~mu rng <= lambda +. 1e-9
