(** Earliest-Deadline-First feasibility on a fixed-speed machine.

    Classical facts this module provides (and the tests cross-check against
    YDS): preemptive EDF meets every deadline at constant speed [s] iff
    [s >= max over intervals I of (volume due in I) / |I|], and that
    critical intensity is exactly the peak speed of the YDS schedule. *)

val feasible : speed:float -> Yds.job list -> bool
(** Simulates preemptive EDF at the given constant speed and checks all
    deadlines. *)

val min_speed : Yds.job list -> float
(** The minimal feasible constant speed: [max_I volume(I) / |I|] over
    intervals with release/deadline endpoints (exact, no search). *)

val yds_peak_speed : alpha:float -> Yds.job list -> float
(** The maximum speed the YDS schedule ever uses — equal to {!min_speed}
    by the critical-interval construction (exposed for the cross-check). *)
