(** Power functions for speed scaling.

    The paper's Sections 3-4 use [P(s) = s^alpha]; Theorem 3's analysis
    works for any [(lambda, mu)]-smooth power function, convex or not, so we
    keep the abstraction. *)

type t

val name : t -> string
val eval : t -> float -> float
(** [eval p s] is the power drawn at speed [s >= 0]. *)

val polynomial : alpha:float -> t
(** [P(s) = s^alpha], [alpha >= 1]. *)

val affine_polynomial : alpha:float -> static:float -> t
(** [P(s) = s^alpha + static] for [s > 0], [P(0) = 0]: a (non-convex at 0)
    model with static/leakage power, exercising Theorem 3's
    beyond-convexity claim. *)

val piecewise : (float * float) list -> t
(** [piecewise [(s1, p1); ...]]: step function, power [p_k] for speeds in
    [(s_(k-1), s_k]]; speeds must be increasing and powers
    non-decreasing. *)

val energy : t -> speed:float -> duration:float -> float
(** [eval p speed * duration]. *)

val optimal_speed_for_flow : alpha:float -> weight:float -> float
(** The speed [s* = (weight / (alpha - 1))^(1/alpha)] minimizing
    [weight/s + s^(alpha-1)] — the per-job cost rate of the Section 3
    objective; used by the OPT lower bound. *)
