(** The Optimal Available (OA) online algorithm (Bansal, Kimbrel, Pruhs)
    for preemptive single-machine speed scaling with deadlines.

    At every arrival OA recomputes the YDS-optimal plan for the currently
    remaining work and follows it until the next arrival: the speed at time
    [t] is [max_d W(d, t) / (d - t)] where [W(d, t)] is the remaining
    volume with deadline at most [d], served EDF.  OA is
    [alpha^alpha]-competitive — the same constant Theorem 3 achieves
    {e non-preemptively} — making it the natural preemptive-online
    comparator for the paper's greedy. *)

val energy : alpha:float -> Yds.job list -> float
(** Total energy of the OA execution.  Jobs become known at their release
    times; deadlines must be strictly after releases, volumes positive. *)
