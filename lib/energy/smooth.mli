(** Numeric verification of [(lambda, mu)]-smoothness (the paper's
    Definition 1 and the smooth inequality of Cohen-Duerr-Thang it relies
    on for Theorem 3).

    For scalar power functions the relevant inequality is: for all
    non-negative [a_1..a_n] and [b_1..b_n],

    [sum_i (P(b_i + A_i) - P(A_i)) <= lambda P(sum_i b_i) + mu P(sum_i a_i)]

    with [A_i = a_1 + ... + a_i].  {!required_lambda} searches for the
    worst case empirically: given [mu], it reports the largest
    [ (sum_i (P(b_i+A_i) - P(A_i)) - mu P(sum a)) / P(sum b) ]
    over randomized and structured trials — an empirical lower bound on the
    best possible [lambda], to be compared with the claimed
    [Theta(alpha^(alpha-1))]. *)

open Sched_stats

val lhs : Power.t -> a:float array -> b:float array -> float
(** The left-hand side of the smooth inequality. *)

val violates : Power.t -> lambda:float -> mu:float -> a:float array -> b:float array -> bool
(** True when the pair [(a, b)] breaks the inequality (beyond 1e-9
    slack). *)

val required_lambda :
  ?trials:int -> ?n:int -> Power.t -> mu:float -> Rng.t -> float
(** Empirical worst-case [lambda] for the given [mu] over [trials] random
    sequences of length up to [n] (default 2000 trials, n = 8), plus
    structured adversarial patterns (equal blocks, single spike,
    geometric). *)

val check : ?trials:int -> ?n:int -> Power.t -> lambda:float -> mu:float -> Rng.t -> bool
(** True when no tried pair violates [(lambda, mu)]-smoothness. *)
