(* Active job: deadline plus remaining volume; kept sorted by deadline
   (EDF order). *)
type active = { deadline : float; mutable rem : float }

(* The critical prefix: the deadline d maximizing W(d)/(d - t) over active
   jobs (active is EDF-sorted, all deadlines > t for a feasible state). *)
let critical t active =
  let best = ref None in
  let acc = ref 0. in
  List.iter
    (fun a ->
      acc := !acc +. a.rem;
      let span = a.deadline -. t in
      if span > 0. then begin
        let g = !acc /. span in
        match !best with
        | Some (g', _) when g' >= g -> ()
        | _ -> best := Some (g, a.deadline)
      end)
    active;
  !best

(* Consume [volume] from the active list in EDF order. *)
let consume active volume =
  let v = ref volume in
  List.iter
    (fun a ->
      if !v > 0. then begin
        let take = Float.min a.rem !v in
        a.rem <- a.rem -. take;
        v := !v -. take
      end)
    active;
  List.filter (fun a -> a.rem > 1e-12) active

(* Run the OA plan from [t] to [horizon], returning (energy, t', active'). *)
let rec advance ~alpha t horizon active energy =
  if active = [] || t >= horizon then (energy, Float.max t (Float.min horizon t), active)
  else begin
    match critical t active with
    | None -> (energy, t, active)
    | Some (g, dstar) ->
        let run_until = Float.min horizon dstar in
        let dur = run_until -. t in
        if dur <= 0. then (energy, t, active)
        else begin
          let energy = energy +. ((g ** alpha) *. dur) in
          let active = consume active (g *. dur) in
          advance ~alpha run_until horizon active energy
        end
  end

let energy ~alpha jobs =
  if alpha < 1. then invalid_arg "Oa.energy: alpha must be >= 1";
  List.iter
    (fun (j : Yds.job) ->
      if j.Yds.volume <= 0. || j.Yds.deadline <= j.Yds.release then
        invalid_arg "Oa.energy: bad job")
    jobs;
  let sorted =
    List.sort (fun (a : Yds.job) b -> Float.compare a.Yds.release b.Yds.release) jobs
  in
  let insert_edf active (j : Yds.job) =
    let entry = { deadline = j.Yds.deadline; rem = j.Yds.volume } in
    let rec go = function
      | [] -> [ entry ]
      | a :: rest -> if entry.deadline < a.deadline then entry :: a :: rest else a :: go rest
    in
    go active
  in
  let rec loop t active energy = function
    | [] ->
        let e, _, _ = advance ~alpha t Float.infinity active energy in
        e
    | (j : Yds.job) :: rest ->
        let e, t', active' = advance ~alpha t j.Yds.release active energy in
        let t' = Float.max t' j.Yds.release in
        loop t' (insert_edf active' j) e rest
  in
  loop 0. [] 0. sorted
