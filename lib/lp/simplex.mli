(** Dense two-phase primal simplex.

    Small, self-contained LP solver used for the paper's time-indexed
    flow-time relaxation (an OPT lower bound) and as a cross-check in tests.
    Problems are given in the natural form

    {v min / max  c . x   subject to   a_k . x (<= | >= | =) b_k,  x >= 0 v}

    Bland's anti-cycling rule is used throughout, so the solver always
    terminates; it is exact up to floating-point tolerance (1e-9 pivots). *)

type op = Le | Ge | Eq

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

val solve :
  ?maximize:bool -> c:float array -> (float array * op * float) list -> outcome
(** [solve ~c constraints] minimizes by default.  Every constraint row must
    have the same length as [c].  Variables are implicitly non-negative. *)
