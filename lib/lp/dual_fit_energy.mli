(** Empirical verification of the paper's Section 3 dual-fitting analysis
    (Lemma 6): the dual variables of the weighted flow-time plus energy
    algorithm form a feasible solution of the dual program.

    From a run's trace and schedule we reconstruct the proof's objects:

    - the definitive-finish times [C~_j] (completion/rejection extended by
      [q_ik(r_jk) / s_k] for every job [k] rejected on the same machine
      while [j] was alive);
    - the total fractional weight [V_i(t)] of not-definitively-finished
      jobs ([w_l q_il(t) / p_il]; remaining volume frozen at rejection,
      zero after completion), a piecewise-linear function;
    - [u_i(t) = (eps / (gamma_i (1+eps)(alpha-1)))^(1/(alpha-1)) V_i(t)^(1/alpha)].

    The dual constraint checked at sampled times [t >= r_j] (event
    breakpoints plus interior subdivisions — [V_i] falls inside segments
    while the flow term grows, so minima can be interior):

    [lambda_j / p_ij <= delta_ij (t - r_j + p_ij) + alpha u_i(t)^(alpha-1)
                        + alpha / (gamma_i (alpha-1)) w_j^((alpha-1)/alpha)]

    Because [u_i^alpha] is {e linear} in [V_i], the dual objective's energy
    term [sum_i int (1-alpha) u_i^alpha dt] integrates exactly over the
    piecewise-linear [V_i]. *)

open Sched_model
open Sched_sim

type report = {
  eps : float;
  alpha : float;  (** Of machine 0 (assumed uniform for the summary). *)
  lambda_sum : float;
  u_alpha_integral : float;  (** [sum_i int u_i(t)^alpha dt]. *)
  dual_objective : float;  (** [lambda_sum - (alpha-1) * u_alpha_integral]. *)
  primal : float;  (** Weighted flow (rejected jobs up to rejection) plus
                       energy. *)
  min_constraint_slack : float;  (** Lemma 6: must be [>= -1e-6]. *)
  constraints_checked : int;
  primal_over_dual : float;
}

val certify :
  eps:float ->
  gammas:float array ->
  lambdas:float array ->
  Instance.t ->
  Trace.t ->
  Schedule.t ->
  report
(** [gammas] are the per-machine speed constants actually used (from
    {!Rejection.Flow_energy_reject.gamma_of_machine}); [lambdas] the dual
    variables fixed at each arrival. *)

val pp_report : Format.formatter -> report -> unit
