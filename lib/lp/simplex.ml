type op = Le | Ge | Eq

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

let tol = 1e-9

(* Tableau layout: [rows] constraint rows, one objective row appended last.
   Columns: structural variables, then slacks/surpluses, then artificials,
   then the RHS.  [basis.(r)] is the column basic in row [r]. *)
type tableau = {
  t : float array array;
  basis : int array;
  rows : int;
  cols : int;  (** Including RHS. *)
}

let pivot tb ~row ~col =
  let t = tb.t in
  let p = t.(row).(col) in
  assert (Float.abs p > tol);
  let inv = 1. /. p in
  for c = 0 to tb.cols - 1 do
    t.(row).(c) <- t.(row).(c) *. inv
  done;
  for r = 0 to tb.rows do
    if r <> row then begin
      let f = t.(r).(col) in
      if Float.abs f > 0. then
        for c = 0 to tb.cols - 1 do
          t.(r).(c) <- t.(r).(c) -. (f *. t.(row).(c))
        done
    end
  done;
  tb.basis.(row) <- col

(* One simplex phase on the current objective row (last row), minimizing.
   Bland's rule: entering = lowest-index column with negative reduced cost;
   leaving = lowest-index basic variable among the min-ratio rows. *)
let rec iterate tb ~ncols_pivotable =
  let obj = tb.t.(tb.rows) in
  let entering = ref (-1) in
  (try
     for c = 0 to ncols_pivotable - 1 do
       if obj.(c) < -.tol then begin
         entering := c;
         raise Exit
       end
     done
   with Exit -> ());
  if !entering < 0 then `Optimal
  else begin
    let col = !entering in
    let best = ref None in
    for r = 0 to tb.rows - 1 do
      let a = tb.t.(r).(col) in
      if a > tol then begin
        let ratio = tb.t.(r).(tb.cols - 1) /. a in
        match !best with
        | Some (bratio, brow) ->
            if ratio < bratio -. tol
               || (Float.abs (ratio -. bratio) <= tol && tb.basis.(r) < tb.basis.(brow))
            then best := Some (ratio, r)
        | None -> best := Some (ratio, r)
      end
    done;
    match !best with
    | None -> `Unbounded
    | Some (_, row) ->
        pivot tb ~row ~col;
        iterate tb ~ncols_pivotable
  end

let solve ?(maximize = false) ~c constraints =
  let nvars = Array.length c in
  List.iter
    (fun (row, _, _) ->
      if Array.length row <> nvars then invalid_arg "Simplex.solve: row length mismatch")
    constraints;
  (* Normalize to b >= 0. *)
  let constraints =
    List.map
      (fun (row, op, b) ->
        if b < 0. then
          ( Array.map (fun x -> -.x) row,
            (match op with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.b )
        else (row, op, b))
      constraints
  in
  let nrows = List.length constraints in
  let nslack =
    List.length (List.filter (fun (_, op, _) -> op <> Eq) constraints)
  in
  let nart =
    List.length (List.filter (fun (_, op, _) -> op <> Le) constraints)
  in
  let ncols = nvars + nslack + nart + 1 in
  let t = Array.make_matrix (nrows + 1) ncols 0. in
  let basis = Array.make nrows (-1) in
  let tb = { t; basis; rows = nrows; cols = ncols } in
  let art_cols = ref [] in
  let slack_idx = ref 0 and art_idx = ref 0 in
  List.iteri
    (fun r (row, op, b) ->
      Array.blit row 0 t.(r) 0 nvars;
      t.(r).(ncols - 1) <- b;
      (match op with
      | Le ->
          let col = nvars + !slack_idx in
          incr slack_idx;
          t.(r).(col) <- 1.;
          basis.(r) <- col
      | Ge ->
          let scol = nvars + !slack_idx in
          incr slack_idx;
          t.(r).(scol) <- -1.;
          let acol = nvars + nslack + !art_idx in
          incr art_idx;
          t.(r).(acol) <- 1.;
          basis.(r) <- acol;
          art_cols := acol :: !art_cols
      | Eq ->
          let acol = nvars + nslack + !art_idx in
          incr art_idx;
          t.(r).(acol) <- 1.;
          basis.(r) <- acol;
          art_cols := acol :: !art_cols))
    constraints;
  (* Phase 1: minimize the sum of artificials. *)
  let feasible =
    if nart = 0 then true
    else begin
      let obj = t.(nrows) in
      Array.fill obj 0 ncols 0.;
      List.iter (fun c -> obj.(c) <- 1.) !art_cols;
      (* Price out the basic artificials. *)
      for r = 0 to nrows - 1 do
        if List.mem basis.(r) !art_cols then
          for c = 0 to ncols - 1 do
            obj.(c) <- obj.(c) -. t.(r).(c)
          done
      done;
      (match iterate tb ~ncols_pivotable:(ncols - 1) with
      | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
      | `Optimal -> ());
      let phase1 = -.t.(nrows).(ncols - 1) in
      if phase1 > 1e-7 then false
      else begin
        (* Drive any artificial still basic (at value 0) out of the basis. *)
        for r = 0 to nrows - 1 do
          if List.mem basis.(r) !art_cols then begin
            let found = ref false in
            for c = 0 to nvars + nslack - 1 do
              if (not !found) && Float.abs t.(r).(c) > tol then begin
                found := true;
                pivot tb ~row:r ~col:c
              end
            done
            (* A row with no pivotable column is all-zero: redundant, leave
               the zero-valued artificial basic; it never re-enters because
               phase 2 only pivots on non-artificial columns. *)
          end
        done;
        true
      end
    end
  in
  if not feasible then Infeasible
  else begin
    (* Phase 2 objective. *)
    let obj = t.(nrows) in
    Array.fill obj 0 ncols 0.;
    for v = 0 to nvars - 1 do
      obj.(v) <- (if maximize then -.c.(v) else c.(v))
    done;
    (* Price out basic variables. *)
    for r = 0 to nrows - 1 do
      let f = obj.(basis.(r)) in
      if Float.abs f > 0. then
        for col = 0 to ncols - 1 do
          obj.(col) <- obj.(col) -. (f *. t.(r).(col))
        done
    done;
    match iterate tb ~ncols_pivotable:(nvars + nslack) with
    | `Unbounded -> Unbounded
    | `Optimal ->
        let solution = Array.make nvars 0. in
        for r = 0 to nrows - 1 do
          if basis.(r) < nvars then solution.(basis.(r)) <- t.(r).(ncols - 1)
        done;
        let objective =
          let v = -.t.(nrows).(ncols - 1) in
          if maximize then -.v else v
        in
        Optimal { objective; solution }
  end
