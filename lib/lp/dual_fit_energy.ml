open Sched_model
open Sched_sim

type report = {
  eps : float;
  alpha : float;
  lambda_sum : float;
  u_alpha_integral : float;
  dual_objective : float;
  primal : float;
  min_constraint_slack : float;
  constraints_checked : int;
  primal_over_dual : float;
}

(* Per-job record on its machine, for evaluating V_i(t). *)
type jrec = {
  job : Job.t;
  size : float;  (** p_ij on its machine. *)
  dispatched : float;  (** = release. *)
  ctilde : float;
  exec : (float * float * float) option;  (** start, stop, rate. *)
  final_rem : float;  (** Remaining volume after the job left U_i (0 when
                          completed, the frozen remainder when rejected). *)
}

(* Remaining volume of a job at time t. *)
let remaining_at r t =
  if t < r.dispatched then r.size
  else begin
    match r.exec with
    | None -> if t < r.ctilde then r.size else r.final_rem
    | Some (start, stop, rate) ->
        if t < start then r.size
        else if t < stop then r.size -. (rate *. (t -. start))
        else r.final_rem
  end

(* V_i(t): total fractional weight of jobs alive (dispatched, not yet
   definitively finished) at t. *)
let v_at jobs t =
  List.fold_left
    (fun acc r ->
      if r.dispatched <= t && t < r.ctilde then
        acc +. (r.job.Job.weight *. Float.max 0. (remaining_at r t) /. r.size)
      else acc)
    0. jobs

let certify ~eps ~gammas ~lambdas instance trace schedule =
  let m = Instance.m instance in
  let n = Instance.n instance in
  (* Replay: running speed per machine, active set, extension accumulators. *)
  let running_rate = Array.make m 0. in
  let running_job = Array.make m (-1) in
  let active : Job.id list array = Array.make m [] in
  let ext = Array.make n 0. in
  let ctilde = Array.make n Float.nan in
  let final_rem = Array.make n 0. in
  List.iter
    (fun ({ time; event } : Trace.entry) ->
      match event with
      | Trace.Dispatch { job; machine } -> active.(machine) <- job :: active.(machine)
      | Trace.Start { job; machine; speed } ->
          running_rate.(machine) <- speed;
          running_job.(machine) <- job
      | Trace.Complete { job; machine } ->
          active.(machine) <- List.filter (fun x -> x <> job) active.(machine);
          if running_job.(machine) = job then running_job.(machine) <- -1;
          ctilde.(job) <- time +. ext.(job);
          final_rem.(job) <- 0.
      | Trace.Reject { job; machine; remaining; _ } ->
          (* Theorem 2 rejections interrupt the running job; its remaining
             processing time is remaining volume over its rate. *)
          let rate = if running_job.(machine) = job then running_rate.(machine) else 0. in
          let extension = if rate > 0. then remaining /. rate else 0. in
          List.iter (fun x -> ext.(x) <- ext.(x) +. extension) active.(machine);
          active.(machine) <- List.filter (fun x -> x <> job) active.(machine);
          if running_job.(machine) = job then running_job.(machine) <- -1;
          ctilde.(job) <- time +. ext.(job);
          final_rem.(job) <- remaining
      | Trace.Restart _ ->
          invalid_arg "Dual_fit_energy: the Theorem 2 analysis does not cover restarts")
    (Trace.events trace);
  Array.iteri
    (fun j c ->
      if Float.is_nan c then
        invalid_arg (Printf.sprintf "Dual_fit_energy: job %d never settled" j))
    ctilde;
  (* Assemble per-machine job records. *)
  let machine_of = Array.make n (-1) in
  List.iter
    (fun ({ event; _ } : Trace.entry) ->
      match event with
      | Trace.Dispatch { job; machine } -> machine_of.(job) <- machine
      | _ -> ())
    (Trace.events trace);
  let exec_of = Array.make n None in
  List.iter
    (fun (g : Schedule.segment) ->
      exec_of.(g.Schedule.job) <- Some (g.Schedule.start, g.Schedule.stop, g.Schedule.speed))
    schedule.Schedule.segments;
  let per_machine = Array.make m [] in
  Array.iter
    (fun (j : Job.t) ->
      let i = machine_of.(j.Job.id) in
      if i >= 0 then
        per_machine.(i) <-
          {
            job = j;
            size = Job.size j i;
            dispatched = j.Job.release;
            ctilde = ctilde.(j.Job.id);
            exec = exec_of.(j.Job.id);
            final_rem = final_rem.(j.Job.id);
          }
          :: per_machine.(i))
    (Instance.jobs_by_release instance);
  (* Sample points per machine: all breakpoints of V_i plus interior
     subdivisions. *)
  let sample_points jobs =
    let base =
      List.concat_map
        (fun r ->
          [ r.dispatched; r.ctilde ]
          @ (match r.exec with Some (a, b, _) -> [ a; b ] | None -> []))
        jobs
      |> List.sort_uniq Float.compare
    in
    let rec subdivide acc = function
      | a :: (b :: _ as rest) ->
          let acc = ref acc in
          for k = 0 to 7 do
            acc := (a +. ((b -. a) *. float_of_int k /. 8.)) :: !acc
          done;
          subdivide !acc rest
      | [ last ] -> last :: acc
      | [] -> acc
    in
    List.sort_uniq Float.compare (subdivide [] base)
  in
  (* Constants. *)
  let alphas = Array.init m (fun i -> (Instance.machine instance i).Machine.alpha) in
  let u_coeff i =
    let alpha = alphas.(i) in
    (eps /. (gammas.(i) *. (1. +. eps) *. (alpha -. 1.))) ** (1. /. (alpha -. 1.))
  in
  (* Dual feasibility. *)
  let min_slack = ref Float.infinity in
  let checked = ref 0 in
  let jobs_all = Instance.jobs_by_release instance in
  for i = 0 to m - 1 do
    let alpha = alphas.(i) in
    let gamma = gammas.(i) in
    let cu = u_coeff i in
    let points = sample_points per_machine.(i) in
    let v_cache = List.map (fun t -> (t, v_at per_machine.(i) t)) points in
    Array.iter
      (fun (j : Job.t) ->
        if Job.eligible j i then begin
          let pij = Job.size j i in
          let delta_ij = j.Job.weight /. pij in
          let lhs = lambdas.(j.Job.id) /. pij in
          let constant_term =
            alpha /. (gamma *. (alpha -. 1.)) *. (j.Job.weight ** ((alpha -. 1.) /. alpha))
          in
          let check t v =
            if t >= j.Job.release -. 1e-12 then begin
              let u = cu *. (Float.max 0. v ** (1. /. alpha)) in
              let slack =
                (delta_ij *. (t -. j.Job.release +. pij))
                +. (alpha *. (u ** (alpha -. 1.)))
                +. constant_term -. lhs
              in
              incr checked;
              if slack < !min_slack then min_slack := slack
            end
          in
          (* At the release instant and at every sampled point after it. *)
          check j.Job.release (v_at per_machine.(i) j.Job.release);
          List.iter (fun (t, v) -> check t v) v_cache
        end)
      jobs_all
  done;
  (* Dual objective: u^alpha is linear in V, and V is piecewise linear, so
     integrate V exactly by trapezoid between consecutive breakpoints
     (subdivision points included, making kinks harmless). *)
  let u_alpha_integral = ref 0. in
  for i = 0 to m - 1 do
    let cu = u_coeff i in
    let scale = cu ** alphas.(i) in
    let points = sample_points per_machine.(i) in
    let rec integrate = function
      | a :: (b :: _ as rest) ->
          let va = v_at per_machine.(i) a and vb = v_at per_machine.(i) (b -. 1e-12) in
          u_alpha_integral := !u_alpha_integral +. (scale *. (va +. vb) /. 2. *. (b -. a));
          integrate rest
      | _ -> ()
    in
    integrate points
  done;
  let lambda_sum = Array.fold_left ( +. ) 0. lambdas in
  let alpha0 = alphas.(0) in
  let dual_objective = lambda_sum -. ((alpha0 -. 1.) *. !u_alpha_integral) in
  let flow = Metrics.flow schedule in
  let primal = flow.Metrics.weighted_with_rejected +. Metrics.energy schedule in
  {
    eps;
    alpha = alpha0;
    lambda_sum;
    u_alpha_integral = !u_alpha_integral;
    dual_objective;
    primal;
    min_constraint_slack = !min_slack;
    constraints_checked = !checked;
    primal_over_dual = (if dual_objective > 0. then primal /. dual_objective else Float.infinity);
  }

let pp_report ppf r =
  Format.fprintf ppf
    "dual-fit-energy: eps=%g alpha=%g sum(lambda)=%.4g int(u^a)=%.4g dual=%.4g primal=%.4g@ \
     min-slack=%.3e checked=%d primal/dual=%.3f"
    r.eps r.alpha r.lambda_sum r.u_alpha_integral r.dual_objective r.primal
    r.min_constraint_slack r.constraints_checked r.primal_over_dual
