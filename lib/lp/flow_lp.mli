(** The paper's Section 2 linear program, discretized, as an OPT lower
    bound for total flow-time.

    Variables [x_ijt]: the fraction of slot [t] (of width [grid]) that
    machine [i] devotes to job [j].  Constraints: every job is fully
    processed ([sum_it x_ijt grid / p_ij >= 1]) and no slot is
    over-committed ([sum_j x_ijt <= 1]).  Objective coefficients use the
    {e slot start} for the fractional-flow term, which under-estimates the
    continuous integral, so the LP value stays a valid lower bound of the
    continuous LP; since the paper shows the continuous LP is at most twice
    the optimal non-preemptive cost, [lp_value / 2 <= OPT]. *)

open Sched_model

type solution = {
  lp_value : float;  (** The discretized LP optimum. *)
  opt_lower_bound : float;  (** [lp_value / 2]: a valid lower bound on the
                                optimal non-preemptive total flow-time. *)
  slots : int;
  variables : int;
}

val solve : ?grid:float -> ?max_variables:int -> Instance.t -> solution option
(** [None] when the discretization would exceed [max_variables] (default
    6000) — callers fall back to combinatorial bounds.  [grid] defaults to
    half the smallest processing time, capped so the variable budget is
    respected when possible. *)
