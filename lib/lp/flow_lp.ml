open Sched_model

type solution = {
  lp_value : float;
  opt_lower_bound : float;
  slots : int;
  variables : int;
}

let solve ?grid ?(max_variables = 6000) instance =
  let n = Instance.n instance and m = Instance.m instance in
  let jobs = Instance.jobs_by_release instance in
  let horizon = Instance.horizon instance in
  let min_p =
    Array.fold_left
      (fun acc (j : Job.t) -> Float.min acc (Job.min_size j))
      Float.infinity jobs
  in
  let grid =
    match grid with
    | Some g ->
        if g <= 0. then invalid_arg "Flow_lp.solve: grid must be positive";
        g
    | None ->
        let g = min_p /. 2. in
        (* Coarsen until the variable budget fits. *)
        let budget_g = horizon *. float_of_int (n * m) /. float_of_int max_variables in
        Float.max g budget_g
  in
  let slots = int_of_float (Float.ceil (horizon /. grid)) in
  let nvars_dense = n * m * slots in
  if nvars_dense > max_variables * 4 then None
  else begin
    (* Variable indexing: only (i, j, t) cells with j eligible on i and slot
       end after the release are materialized. *)
    let index = Hashtbl.create 1024 in
    let rev = ref [] in
    let nvars = ref 0 in
    Array.iter
      (fun (j : Job.t) ->
        for i = 0 to m - 1 do
          if Job.eligible j i then
            for t = 0 to slots - 1 do
              let slot_end = float_of_int (t + 1) *. grid in
              if slot_end > j.release then begin
                Hashtbl.add index (i, j.id, t) !nvars;
                rev := (i, j.id, t) :: !rev;
                incr nvars
              end
            done
        done)
      jobs;
    if !nvars > max_variables then None
    else begin
      let nv = !nvars in
      let c = Array.make nv 0. in
      List.iter
        (fun (i, jid, t) ->
          let j = Instance.job instance jid in
          let v = Hashtbl.find index (i, jid, t) in
          let slot_start = float_of_int t *. grid in
          let frac_flow = Float.max 0. (slot_start -. j.release) /. Job.size j i in
          (* (fractional flow + processing) contribution of one full slot. *)
          c.(v) <- (frac_flow +. 1.) *. grid)
        !rev;
      let constraints = ref [] in
      (* Coverage: sum_it x_ijt * grid / p_ij >= 1. *)
      Array.iter
        (fun (j : Job.t) ->
          let row = Array.make nv 0. in
          for i = 0 to m - 1 do
            if Job.eligible j i then
              for t = 0 to slots - 1 do
                match Hashtbl.find_opt index (i, j.id, t) with
                | Some v -> row.(v) <- grid /. Job.size j i
                | None -> ()
              done
          done;
          constraints := (row, Simplex.Ge, 1.) :: !constraints)
        jobs;
      (* Capacity: sum_j x_ijt <= 1 per machine-slot (skip empty cells). *)
      for i = 0 to m - 1 do
        for t = 0 to slots - 1 do
          let row = Array.make nv 0. in
          let nonzero = ref false in
          Array.iter
            (fun (j : Job.t) ->
              match Hashtbl.find_opt index (i, j.id, t) with
              | Some v ->
                  row.(v) <- 1.;
                  nonzero := true
              | None -> ())
            jobs;
          if !nonzero then constraints := (row, Simplex.Le, 1.) :: !constraints
        done
      done;
      match Simplex.solve ~c !constraints with
      | Simplex.Optimal { objective; _ } ->
          Some { lp_value = objective; opt_lower_bound = objective /. 2.; slots; variables = nv }
      | Simplex.Infeasible | Simplex.Unbounded ->
          (* The LP is always feasible (spread each job over late slots);
             reaching here indicates a numeric failure — report nothing
             rather than a bogus bound. *)
          None
    end
  end
