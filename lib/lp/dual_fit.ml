open Sched_model
open Sched_sim

type report = {
  eps : float;
  lambda_sum : float;
  beta_integral : float;
  dual_objective : float;
  ctilde_sum : float;
  algo_flow : float;
  min_constraint_slack : float;
  min_slack_dispatch_machine : float;
  counterfactual_quantum : float;
  worst_constraint : int * int * float;
  constraints_checked : int;
  primal_over_dual : float;
  corollary1_max_ratio : float;
}

(* Replay state per machine. *)
type mstate = {
  mutable running : Job.id option;
  mutable active : Job.id list;  (** U_i: dispatched, not settled. *)
}

let certify ~eps ~lambdas instance trace schedule =
  let n = Instance.n instance and m = Instance.m instance in
  let ms = Array.init m (fun _ -> { running = None; active = [] }) in
  let ext = Array.make n 0. in
  let ctilde = Array.make n Float.nan in
  (* Per machine, the +/-1 change points of |U_i(t)| + |V_i(t)|:
     +1 at dispatch, -1 at the definitive finish C~_j. *)
  let changes = Array.make m [] in
  (* For the Corollary 1 invariant: |U_i(t)| changes and |R_i(t)| changes
     (Rule-2 rejected, not yet definitively finished). *)
  let u_changes = Array.make m [] in
  let r2_changes = Array.make m [] in
  let size jid i = Job.size (Instance.job instance jid) i in
  List.iter
    (fun ({ time; event } : Trace.entry) ->
      match event with
      | Trace.Dispatch { job; machine } ->
          let s = ms.(machine) in
          s.active <- job :: s.active;
          changes.(machine) <- (time, 1) :: changes.(machine);
          u_changes.(machine) <- (time, 1) :: u_changes.(machine)
      | Trace.Start { job; machine; _ } -> ms.(machine).running <- Some job
      | Trace.Complete { job; machine } ->
          let s = ms.(machine) in
          s.running <- None;
          s.active <- List.filter (fun j -> j <> job) s.active;
          ctilde.(job) <- time +. ext.(job);
          changes.(machine) <- (ctilde.(job), -1) :: changes.(machine);
          u_changes.(machine) <- (time, -1) :: u_changes.(machine)
      | Trace.Reject { job; machine; remaining; _ } ->
          let s = ms.(machine) in
          let rule1 = s.running = Some job in
          u_changes.(machine) <- (time, -1) :: u_changes.(machine);
          if rule1 then begin
            (* Rule 1: every job alive on this machine (the victim included)
               inherits the victim's remaining volume in its C~. *)
            List.iter (fun j -> ext.(j) <- ext.(j) +. remaining) s.active;
            s.running <- None;
            s.active <- List.filter (fun j -> j <> job) s.active;
            ctilde.(job) <- time +. ext.(job)
          end
          else begin
            (* Rule 2: the victim's C~ extends to its estimated completion
               had it stayed: remaining of the running job, plus the sizes
               of the other pending jobs (the just-released trigger
               excluded), plus its own size.  The trigger is the most
               recently dispatched job, i.e. the head of [active]. *)
            let trigger = match s.active with j :: _ -> Some j | [] -> None in
            let rem_running =
              match s.running with
              | None -> 0.
              | Some k ->
                  (* Remaining volume of the running job at this instant is
                     not in the event; recover it from the schedule: the
                     running job's segment tells its rate and end. *)
                  (match Schedule.outcome schedule k with
                  | Outcome.Completed c -> Float.max 0. ((c.finish -. time) *. c.speed)
                  | Outcome.Rejected _ -> (
                      (* It will be rejected later; use its segment. *)
                      match
                        List.find_opt
                          (fun (g : Schedule.segment) -> g.job = k)
                          schedule.Schedule.segments
                      with
                      | Some g -> Float.max 0. ((g.stop -. time) *. g.speed)
                      | None -> 0.))
            in
            let others =
              List.fold_left
                (fun acc j ->
                  if Some j = trigger || j = job || ms.(machine).running = Some j then acc
                  else acc +. size j machine)
                0. s.active
            in
            s.active <- List.filter (fun j -> j <> job) s.active;
            ctilde.(job) <- time +. ext.(job) +. rem_running +. others +. size job machine;
            r2_changes.(machine) <-
              (ctilde.(job), -1) :: (time, 1) :: r2_changes.(machine)
          end;
          changes.(machine) <- (ctilde.(job), -1) :: changes.(machine)
      | Trace.Restart _ ->
          invalid_arg "Dual_fit: the Theorem 1 analysis does not cover restarts")
    (Trace.events trace);
  (* Any job still active at the end of the trace never settled — that
     cannot happen for a completed run. *)
  Array.iteri
    (fun j c ->
      if Float.is_nan c then invalid_arg (Printf.sprintf "Dual_fit: job %d never settled" j))
    ctilde;
  let beta_coeff = eps /. ((1. +. eps) ** 2.) in
  (* Build each machine's |U|+|V| step function and integrate. *)
  let machine_of = Array.make n (-1) in
  List.iter
    (fun ({ event; _ } : Trace.entry) ->
      match event with
      | Trace.Dispatch { job; machine } -> machine_of.(job) <- machine
      | _ -> ())
    (Trace.events trace);
  let beta_integral = ref 0. in
  let min_slack = ref Float.infinity in
  let min_slack_dispatch = ref Float.infinity in
  let worst = ref (-1, -1, Float.nan) in
  let checked = ref 0 in
  let steps_per_machine =
    Array.map
      (fun chs ->
        let sorted =
          List.sort
            (fun (a, da) (b, db) ->
              match Float.compare a b with 0 -> Int.compare db da | c -> c)
            chs
        in
        (* Fold into (time, count-after) steps. *)
        let steps = ref [] and count = ref 0 in
        List.iter
          (fun (t, d) ->
            count := !count + d;
            steps := (t, !count) :: !steps)
          sorted;
        List.rev !steps)
      changes
  in
  Array.iter
    (fun steps ->
      let rec integrate = function
        | (t0, c0) :: (((t1, _) :: _) as rest) ->
            beta_integral := !beta_integral +. (float_of_int c0 *. (t1 -. t0));
            integrate rest
        | _ -> ()
      in
      integrate steps)
    steps_per_machine;
  let beta_integral = beta_coeff *. !beta_integral in
  (* Dual feasibility: for each (i, j), the slack
     (t - r_j)/p_ij + 1 + beta_i(t) - lambda_j/p_ij
     is piecewise increasing in t between beta breakpoints, so its minimum
     over t >= r_j is attained at r_j or at a breakpoint. *)
  let jobs = Instance.jobs_by_release instance in
  for i = 0 to m - 1 do
    let steps = steps_per_machine.(i) in
    let beta_at t =
      (* Step value at time t (rightmost step with time <= t). *)
      let rec go acc = function
        | (t0, c) :: rest -> if t0 <= t +. 1e-12 then go c rest else acc
        | [] -> acc
      in
      beta_coeff *. float_of_int (go 0 steps)
    in
    Array.iter
      (fun (j : Job.t) ->
        if Job.eligible j i then begin
          let pij = Job.size j i in
          let lhs = lambdas.(j.id) /. pij in
          let check t =
            if t >= j.release -. 1e-12 then begin
              let slack = ((t -. j.release) /. pij) +. 1. +. beta_at t -. lhs in
              incr checked;
              if slack < !min_slack then begin
                min_slack := slack;
                worst := (i, j.id, t)
              end;
              if machine_of.(j.id) = i && slack < !min_slack_dispatch then
                min_slack_dispatch := slack
            end
          in
          check j.release;
          List.iter (fun (t, _) -> check (Float.max t j.release)) steps
        end)
      jobs
  done;
  (* Corollary 1: sweep |U_i| and |R_i| together; evaluate the ratio after
     applying every change at a given instant. *)
  let corollary1_max_ratio = ref 0. in
  for i = 0 to m - 1 do
    let events =
      List.map (fun (t, d) -> (t, `U d)) u_changes.(i)
      @ List.map (fun (t, d) -> (t, `R d)) r2_changes.(i)
      |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
    in
    let u = ref 0 and r = ref 0 in
    let rec sweep = function
      | [] -> ()
      | (t, change) :: rest ->
          (match change with `U d -> u := !u + d | `R d -> r := !r + d);
          (match rest with
          | (t', _) :: _ when t' = t -> ()
          | _ ->
              let ratio = float_of_int !u /. float_of_int (!r + 1) in
              if ratio > !corollary1_max_ratio then corollary1_max_ratio := ratio);
          sweep rest
    in
    sweep events
  done;
  let lambda_sum = Array.fold_left ( +. ) 0. lambdas in
  let ctilde_sum =
    Array.fold_left
      (fun acc (j : Job.t) -> acc +. (ctilde.(j.id) -. j.release))
      0. jobs
  in
  let algo_flow = (Metrics.flow schedule).Metrics.total_with_rejected in
  let dual_objective = lambda_sum -. beta_integral in
  {
    eps;
    lambda_sum;
    beta_integral;
    dual_objective;
    ctilde_sum;
    algo_flow;
    min_constraint_slack = !min_slack;
    min_slack_dispatch_machine = !min_slack_dispatch;
    counterfactual_quantum = beta_coeff;
    worst_constraint = !worst;
    constraints_checked = !checked;
    primal_over_dual = (if dual_objective > 0. then algo_flow /. dual_objective else Float.infinity);
    corollary1_max_ratio = !corollary1_max_ratio;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "dual-fit: eps=%g sum(lambda)=%.4g int(beta)=%.4g dual=%.4g sum(C~-r)=%.4g flow=%.4g@ \
     min-slack=%.3e checked=%d primal/dual=%.3f (proof bound %.3f)"
    r.eps r.lambda_sum r.beta_integral r.dual_objective r.ctilde_sum r.algo_flow
    r.min_constraint_slack r.constraints_checked r.primal_over_dual
    (((1. +. r.eps) /. r.eps) ** 2.)
