(** Empirical verification of the paper's dual-fitting analysis (Section 2).

    Given a run of the Theorem 1 algorithm — its trace, its dual variables
    [lambda_j] and its schedule — this module reconstructs the analysis
    objects of the proof:

    - the {e definitive finish} times [C~_j] (completion/rejection time
      extended by the Rule 1 remainders [q_ik(r_jk)] of jobs rejected while
      [j] was alive, and by the Rule 2 estimated-completion term);
    - the step functions [|U_i(t)|] (pending or running) and [|V_i(t)|]
      (finished or rejected but not yet definitively finished), giving
      [beta_i(t) = eps/(1+eps)^2 (|U_i(t)| + |V_i(t)|)];
    - the dual objective [sum_j lambda_j - sum_i int beta_i(t) dt].

    It then checks the dual constraint of Lemma 4,

    [lambda_j / p_ij <= (t - r_j)/p_ij + 1 + beta_i(t)],

    for every job, every machine and every breakpoint of [beta_i], and
    reports the minimum slack (negative slack would falsify the proof). *)

open Sched_model
open Sched_sim

type report = {
  eps : float;
  lambda_sum : float;  (** [sum_j lambda_j]. *)
  beta_integral : float;  (** [sum_i int beta_i(t) dt]. *)
  dual_objective : float;  (** [lambda_sum - beta_integral]; by weak duality
                               at most the LP optimum, hence at most
                               [2 OPT]. *)
  ctilde_sum : float;  (** [sum_j (C~_j - r_j)]. *)
  algo_flow : float;  (** The algorithm's total flow-time, rejected jobs
                          included (their flow ends at rejection). *)
  min_constraint_slack : float;
      (** Minimum slack over {e all} (i, j, t).  Reproduction finding: the
          paper's Lemma 4 case analysis assumes [j] was dispatched to the
          machine [i] under scrutiny ("assuming that j is in U_i(r_j)"),
          which contributes one extra job to [|U_i(t)|]; on machines [j]
          was {e not} dispatched to, the realized [beta_i(t)] can fall
          short of the counterfactual by exactly one quantum
          [eps/(1+eps)^2].  So the honest requirements are
          [min_slack_dispatch_machine >= -1e-6] and
          [min_constraint_slack >= -counterfactual_quantum - 1e-6]. *)
  min_slack_dispatch_machine : float;
      (** Minimum slack restricted to each job's own dispatch machine,
          where the proof needs no counterfactual: must be [>= -1e-6]. *)
  counterfactual_quantum : float;  (** [eps/(1+eps)^2], one job's worth of
                                       [beta]. *)
  worst_constraint : int * int * float;
      (** The (machine, job, time) achieving the minimum slack. *)
  constraints_checked : int;
  primal_over_dual : float;  (** [algo_flow / dual_objective]; the proof
                                 guarantees at most [((1+eps)/eps)^2]. *)
  corollary1_max_ratio : float;
      (** Lemma 3 / Corollary 1 structural invariant: the maximum over
          machines and event times of [|U_i(t)| / (|R_i(t)| + 1)], with
          [R_i(t)] the Rule-2-rejected jobs not yet definitively finished.
          The partition argument bounds it by [ceil(1/eps) + 2]. *)
}

val certify :
  eps:float -> lambdas:float array -> Instance.t -> Trace.t -> Schedule.t -> report

val pp_report : Format.formatter -> report -> unit
