(** Rendition of the ESA 2016 predecessor algorithm ([5] in the paper):
    speed augmentation [(1 + eps_s)] combined with an [eps_r] rejection
    budget.

    The original gives an [O(1/(eps_s eps_r))]-competitive algorithm whose
    machines run [(1 + eps_s)] times faster than the adversary's.  We
    reproduce its behaviour by running the paper's dual-fitting dispatch
    and Rule-1-only rejection (the rule [5] uses) on a fleet whose speed
    factors are scaled by [(1 + eps_s)]; flow-times are measured in real
    time, so the algorithm genuinely benefits from the extra speed while
    OPT bounds are computed against the unit-speed fleet.  See DESIGN.md's
    substitution notes. *)

open Sched_model
open Sched_sim

val run :
  ?trace:Trace.t -> ?obs:Sched_obs.Obs.t -> eps_s:float -> eps_r:float -> Instance.t -> Schedule.t
(** The returned schedule's instance is the sped-up copy; its job ids and
    releases match the original, so flow metrics are directly
    comparable. *)

val speedup_instance : float -> Instance.t -> Instance.t
(** Scales every machine's speed factor by [1 + eps_s]. *)
