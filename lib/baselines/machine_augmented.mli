(** Machine-augmentation baseline (Phillips, Stein, Torng, Wein): give the
    online algorithm [factor] copies of every machine instead of rejection
    or speed.  The classical results need [m log P] machines for O(1)
    competitiveness; here the baseline quantifies how much hardware a
    non-rejecting greedy needs to match the rejection algorithm's
    flow-time. *)

open Sched_model

val augment_instance : factor:int -> Instance.t -> Instance.t
(** [factor >= 1] copies of each machine; job size vectors are tiled
    accordingly. *)

val run : factor:int -> Instance.t -> Schedule.t
(** Greedy SPT (no rejection) on the augmented fleet.  Flow metrics remain
    comparable to the original instance (same jobs and releases). *)
