open Sched_model
open Sched_sim

let estimated_completion view i (j : Job.t) =
  Driver.remaining_time view i +. Driver.pending_work view i +. Job.size j i

(* Two-phase split for the sharded driver: the cost is the estimated
   completion time (pure load reads), the resolve just dispatches to the
   winning machine — both greedy variants are stateless at arrival, so
   one hooks value serves fifo and spt alike. *)
let hooks =
  {
    Driver.shard_cost = (fun () view i j -> estimated_completion view i j);
    shard_resolve = (fun () _view _j ~target ~score:_ -> Driver.dispatch target);
  }

(* [head] picks the next job to serve: one of the driver's O(1) indexed
   head accessors, replacing the seed's linear pending scan. *)
let make name head =
  let init _ = () in
  let on_arrival () view (j : Job.t) =
    (* [view] lacks the instance; recover machine count from the job. *)
    let m = Array.length j.Job.sizes in
    let best = ref None in
    for i = 0 to m - 1 do
      if Job.eligible j i then begin
        let c = estimated_completion view i j in
        match !best with
        | Some (_, c') when c' <= c -> ()
        | _ -> best := Some (i, c)
      end
    done;
    let target = match !best with Some (i, _) -> i | None -> assert false in
    Driver.dispatch target
  in
  let select () view i =
    match head view i with
    | None -> None
    | Some (chosen : Job.t) -> Some { Driver.job = chosen.Job.id; speed = 1.0 }
  in
  { Driver.name; init; on_arrival; select }

let fifo = make "greedy-fifo" Driver.pending_earliest
let spt = make "greedy-spt" Driver.pending_shortest