open Sched_model
open Sched_sim

let estimated_completion view i (j : Job.t) =
  let pending_work =
    List.fold_left (fun acc (l : Job.t) -> acc +. Job.size l i) 0. (Driver.pending view i)
  in
  Driver.remaining_time view i +. pending_work +. Job.size j i

let make name pick =
  let init _ = () in
  let on_arrival () view (j : Job.t) =
    (* [view] lacks the instance; recover machine count from the job. *)
    let m = Array.length j.Job.sizes in
    let best = ref None in
    for i = 0 to m - 1 do
      if Job.eligible j i then begin
        let c = estimated_completion view i j in
        match !best with
        | Some (_, c') when c' <= c -> ()
        | _ -> best := Some (i, c)
      end
    done;
    let target = match !best with Some (i, _) -> i | None -> assert false in
    Driver.dispatch target
  in
  let select () view i =
    match Driver.pending view i with
    | [] -> None
    | first :: rest ->
        let chosen = List.fold_left (fun acc l -> if pick i l acc then l else acc) first rest in
        Some { Driver.job = chosen.Job.id; speed = 1.0 }
  in
  { Driver.name; init; on_arrival; select }

let fifo =
  let earlier _ (a : Job.t) (b : Job.t) =
    if a.release <> b.release then a.release < b.release else a.id < b.id
  in
  make "greedy-fifo" earlier

let spt =
  let shorter i (a : Job.t) (b : Job.t) =
    let pa = Job.size a i and pb = Job.size b i in
    if pa <> pb then pa < pb
    else if a.release <> b.release then a.release < b.release
    else a.id < b.id
  in
  make "greedy-spt" shorter
