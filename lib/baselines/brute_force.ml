open Sched_model

(* DFS over "which job runs next on which machine".  A state is the set of
   already-scheduled jobs plus each machine's free time.  We schedule jobs
   machine by machine in chronological per-machine order; because any
   non-preemptive schedule is reproduced by some (assignment, per-machine
   order) pair with left-shifted starts, the search is exhaustive.

   Pruning: partial cost plus a volume lower bound for the rest must beat
   the incumbent.  A memo on (scheduled-set, rounded free times) removes
   dominated revisits. *)
let optimal_flow ?(max_n = 9) instance =
  let n = Instance.n instance and m = Instance.m instance in
  if n > max_n then None
  else begin
    let jobs = Instance.jobs_by_release instance in
    let best = ref Float.infinity in
    (* Quick incumbent from list scheduling in release order to prune early. *)
    let greedy_cost () =
      let free = Array.make m 0. in
      let cost = ref 0. in
      Array.iter
        (fun (j : Job.t) ->
          let besti = ref (-1) and bestc = ref Float.infinity in
          for i = 0 to m - 1 do
            if Job.eligible j i then begin
              let speed = (Instance.machine instance i).Machine.speed in
              let c = Float.max free.(i) j.release +. (Job.size j i /. speed) in
              if c < !bestc then begin
                bestc := c;
                besti := i
              end
            end
          done;
          free.(!besti) <- !bestc;
          cost := !cost +. (!bestc -. j.release))
        jobs;
      !cost
    in
    best := greedy_cost ();
    let remaining_lb scheduled =
      (* Each unscheduled job pays at least its minimum processing time. *)
      let acc = ref 0. in
      Array.iteri
        (fun k (j : Job.t) ->
          if not scheduled.(k) then begin
            let mn = ref Float.infinity in
            for i = 0 to m - 1 do
              let speed = (Instance.machine instance i).Machine.speed in
              if Job.eligible j i then mn := Float.min !mn (Job.size j i /. speed)
            done;
            acc := !acc +. !mn
          end)
        jobs;
      !acc
    in
    let scheduled = Array.make n false in
    let memo : (int * int list, float) Hashtbl.t = Hashtbl.create 4096 in
    let key free =
      let mask = ref 0 in
      Array.iteri (fun k b -> if b then mask := !mask lor (1 lsl k)) scheduled;
      (!mask, Array.to_list (Array.map (fun f -> int_of_float (f *. 1e6)) free))
    in
    let rec dfs count cost free =
      if cost +. remaining_lb scheduled >= !best then ()
      else if count = n then best := cost
      else begin
        let k = key free in
        match Hashtbl.find_opt memo k with
        | Some c when c <= cost +. 1e-12 -> ()
        | _ ->
            Hashtbl.replace memo k cost;
            for idx = 0 to n - 1 do
              if not scheduled.(idx) then begin
                let j = jobs.(idx) in
                for i = 0 to m - 1 do
                  if Job.eligible j i then begin
                    let speed = (Instance.machine instance i).Machine.speed in
                    let start = Float.max free.(i) j.release in
                    let finish = start +. (Job.size j i /. speed) in
                    let saved = free.(i) in
                    scheduled.(idx) <- true;
                    free.(i) <- finish;
                    dfs (count + 1) (cost +. finish -. j.release) free;
                    free.(i) <- saved;
                    scheduled.(idx) <- false
                  end
                done
              end
            done
      end
    in
    dfs 0 0. (Array.make m 0.);
    Some !best
  end
