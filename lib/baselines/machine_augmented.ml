open Sched_model

let augment_instance ~factor instance =
  if factor < 1 then invalid_arg "Machine_augmented: factor must be >= 1";
  let m = Instance.m instance in
  let machines =
    Array.init (m * factor) (fun i ->
        let original = Instance.machine instance (i mod m) in
        Machine.create ~id:i ~speed:original.Machine.speed ~alpha:original.Machine.alpha ())
  in
  let jobs =
    Array.to_list
      (Array.map
         (fun (j : Job.t) ->
           Job.with_sizes j (Array.init (m * factor) (fun i -> Job.size j (i mod m))))
         (Instance.jobs_by_release instance))
  in
  Instance.create
    ~name:(Printf.sprintf "%s(x%d machines)" instance.Instance.name factor)
    ~machines ~jobs ()

let run ~factor instance =
  let augmented = augment_instance ~factor instance in
  let schedule = Sched_sim.Driver.run_schedule Greedy_dispatch.spt augmented in
  Schedule.assert_valid ~check_deadlines:false schedule;
  schedule
