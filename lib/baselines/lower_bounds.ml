open Sched_model

type bound = { value : float; source : string }

let volume instance =
  let total = ref 0. in
  Array.iter
    (fun (j : Job.t) ->
      let mn = ref Float.infinity in
      for i = 0 to Instance.m instance - 1 do
        if Job.eligible j i then begin
          let speed = (Instance.machine instance i).Machine.speed in
          mn := Float.min !mn (Job.size j i /. speed)
        end
      done;
      total := !total +. !mn)
    (Instance.jobs_by_release instance);
  { value = !total; source = "volume" }

let srpt instance =
  if Instance.m instance = 1 then
    Some { value = Srpt_single.total_flow instance; source = "srpt" }
  else None

let lp ?max_variables instance =
  match Sched_lp.Flow_lp.solve ?max_variables instance with
  | Some sol -> Some { value = sol.Sched_lp.Flow_lp.opt_lower_bound; source = "lp/2" }
  | None -> None

let brute ?max_n instance =
  match Brute_force.optimal_flow ?max_n instance with
  | Some v -> Some { value = v; source = "opt" }
  | None -> None

let best_flow ?lp_max_variables ?brute_max_n instance =
  let candidates =
    [ Some (volume instance); srpt instance ]
    @ [ brute ?max_n:brute_max_n instance ]
    @ [ lp ?max_variables:lp_max_variables instance ]
  in
  List.fold_left
    (fun acc c ->
      match c with Some b when b.value > acc.value -> b | _ -> acc)
    { value = 0.; source = "none" }
    candidates
