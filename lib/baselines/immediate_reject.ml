open Sched_model
open Sched_sim

type heuristic = Never | Largest_over of float | Load_threshold of float

let name_of = function
  | Never -> "immediate-never"
  | Largest_over f -> Printf.sprintf "immediate-largest(%g)" f
  | Load_threshold f -> Printf.sprintf "immediate-load(%g)" f

type st = { mutable seen : int; mutable rejected : int }

let policy ~eps heuristic =
  if not (eps > 0. && eps < 1.) then invalid_arg "Immediate_reject.policy: eps must be in (0,1)";
  (* The budget counters live in the policy state — not the closure — so
     a checkpointed session carries them across freeze/thaw. *)
  let init _ = { seen = 0; rejected = 0 } in
  let on_arrival state view (j : Job.t) =
    state.seen <- state.seen + 1;
    let m = Array.length j.Job.sizes in
    let best = ref None in
    for i = 0 to m - 1 do
      if Job.eligible j i then begin
        let c = Driver.remaining_time view i +. Driver.pending_work view i +. Job.size j i in
        match !best with
        | Some (_, c') when c' <= c -> ()
        | _ -> best := Some (i, c)
      end
    done;
    let target = match !best with Some (i, _) -> i | None -> assert false in
    let budget_ok =
      float_of_int (state.rejected + 1) <= eps *. float_of_int state.seen
    in
    let reject_now =
      budget_ok
      &&
      match heuristic with
      | Never -> false
      | Largest_over factor ->
          let pij = Job.size j target in
          let count = Driver.pending_count view target in
          count > 0
          &&
          let avg = Driver.pending_work view target /. float_of_int count in
          pij > factor *. avg
      | Load_threshold factor ->
          let backlog = Driver.remaining_time view target +. Driver.pending_work view target in
          backlog > factor *. Job.size j target
    in
    if reject_now then begin
      state.rejected <- state.rejected + 1;
      { Driver.dispatch_to = target; reject = [ j.id ]; restart = [] }
    end
    else Driver.dispatch target
  in
  let select _state view i =
    match Driver.pending_shortest view i with
    | None -> None
    | Some chosen -> Some { Driver.job = chosen.Job.id; speed = 1.0 }
  in
  { Driver.name = name_of heuristic; init; on_arrival; select }
