(** Preemptive SRPT on a single machine.

    SRPT is optimal for preemptive total flow-time on one machine, and a
    preemptive optimum lower-bounds the non-preemptive one, so this gives a
    strong OPT lower bound for [m = 1] instances (the Lemma 1 setting). *)

open Sched_model

val total_flow : Instance.t -> float
(** Total flow-time of the SRPT schedule of all jobs.  Requires a
    single-machine instance. *)
