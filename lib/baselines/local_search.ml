open Sched_model

type result = { cost : float; initial_cost : float; moves : int }

(* A solution is, per machine, an ordered list of job ids (service order).
   Cost of one machine: fold left-shifted starts. *)
let machine_cost instance i order =
  let speed = (Instance.machine instance i).Machine.speed in
  let free = ref 0. and cost = ref 0. in
  List.iter
    (fun id ->
      let j = Instance.job instance id in
      let start = Float.max !free j.Job.release in
      let finish = start +. (Job.size j i /. speed) in
      free := finish;
      cost := !cost +. (finish -. j.Job.release))
    order;
  !cost

let total_cost instance orders =
  let acc = ref 0. in
  Array.iteri (fun i order -> acc := !acc +. machine_cost instance i order) orders;
  !acc

(* Greedy initial solution: jobs in release order to the machine with the
   earliest estimated completion, appended FIFO. *)
let greedy instance =
  let m = Instance.m instance in
  let orders = Array.make m [] in
  let free = Array.make m 0. in
  Array.iter
    (fun (j : Job.t) ->
      let best = ref (-1) and bestc = ref Float.infinity in
      for i = 0 to m - 1 do
        if Job.eligible j i then begin
          let speed = (Instance.machine instance i).Machine.speed in
          let c = Float.max free.(i) j.Job.release +. (Job.size j i /. speed) in
          if c < !bestc then begin
            bestc := c;
            best := i
          end
        end
      done;
      free.(!best) <- !bestc;
      orders.(!best) <- j.Job.id :: orders.(!best))
    (Instance.jobs_by_release instance);
  Array.map List.rev orders

(* All insertion positions of [id] into [order] (as lists). *)
let insertions id order =
  let rec go prefix suffix acc =
    let here = List.rev_append prefix (id :: suffix) in
    match suffix with
    | [] -> here :: acc
    | x :: rest -> go (x :: prefix) rest (here :: acc)
  in
  go [] order []

let improve ?(max_rounds = 400) instance =
  let m = Instance.m instance in
  let orders = greedy instance in
  let initial_cost = total_cost instance orders in
  let best = ref initial_cost in
  let moves = ref 0 in
  let try_relocate () =
    (* First-improvement: move one job elsewhere. *)
    let improved = ref false in
    for src = 0 to m - 1 do
      List.iter
        (fun id ->
          if not !improved then begin
            let j = Instance.job instance id in
            let without = List.filter (fun x -> x <> id) orders.(src) in
            let base_src = machine_cost instance src orders.(src) in
            for dst = 0 to m - 1 do
              if (not !improved) && Job.eligible j dst then begin
                let dst_order = if dst = src then without else orders.(dst) in
                let base_dst =
                  if dst = src then 0. else machine_cost instance dst orders.(dst)
                in
                let base_src' =
                  if dst = src then 0. else machine_cost instance src without
                in
                List.iter
                  (fun candidate ->
                    if not !improved then begin
                      let delta =
                        if dst = src then
                          machine_cost instance src candidate -. base_src
                        else
                          machine_cost instance src without
                          +. machine_cost instance dst candidate -. base_src -. base_dst
                      in
                      ignore base_src';
                      if delta < -1e-9 then begin
                        orders.(src) <- (if dst = src then candidate else without);
                        if dst <> src then orders.(dst) <- candidate;
                        best := !best +. delta;
                        incr moves;
                        improved := true
                      end
                    end)
                  (insertions id dst_order)
              end
            done
          end)
        orders.(src)
    done;
    !improved
  in
  let rounds = ref 0 in
  while !rounds < max_rounds && try_relocate () do
    incr rounds
  done;
  (* Recompute exactly to wash out accumulated deltas. *)
  let cost = total_cost instance orders in
  { cost; initial_cost; moves = !moves }
