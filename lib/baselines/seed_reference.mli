(** Scan-based reference implementations of every shipped policy.

    These mirror the pre-index ("seed") policy code: each decision is
    re-derived by a linear scan of {!Sched_sim.Driver.pending}, with the
    same fold orders and float operations as the originals.  They are the
    ground truth the differential tests compare the optimized policies
    against — on the same instance, optimized and reference runs must
    produce identical schedules.

    They are intentionally slow; nothing outside the test/bench layers
    should use them. *)

open Sched_sim

type fr_state

val flow_reject : Rejection.Flow_reject.config -> fr_state Driver.policy

type frw_state

val flow_reject_weighted : Rejection.Flow_reject_weighted.config -> frw_state Driver.policy

type fer_state

val flow_energy_reject : Rejection.Flow_energy_reject.config -> fer_state Driver.policy
val greedy_fifo : unit Driver.policy
val greedy_spt : unit Driver.policy
val immediate_reject : eps:float -> Immediate_reject.heuristic -> unit Driver.policy

type rs_state

val restart_spt : Restart_spt.config -> rs_state Driver.policy