(** Non-rejecting greedy baselines for total flow-time.

    Both dispatch each arriving job to the machine minimizing its estimated
    completion time (remaining work + pending work + [p_ij]); they differ in
    the local service order.  These are the "practical heuristics" the
    paper's introduction contrasts with: no rejections, hence no worst-case
    guarantee. *)

open Sched_sim

val fifo : unit Driver.policy
(** First-in-first-out service order. *)

val spt : unit Driver.policy
(** Shortest-processing-time service order (the paper's service order
    without the rejection rules). *)

val hooks : unit Driver.sharded_hooks
(** Two-phase split for {!Sched_sim.Driver.run_sharded}: the cost is the
    estimated completion time, the resolve dispatches to the winner.
    Arrival handling is identical for both variants, so one value serves
    {!fifo} and {!spt}. *)
