open Sched_model

(* Event-driven SRPT: between consecutive arrivals, repeatedly run the job
   with the smallest remaining time to completion or until the next
   arrival. *)
let total_flow instance =
  if Instance.m instance <> 1 then invalid_arg "Srpt_single.total_flow: needs one machine";
  let jobs = Instance.jobs_by_release instance in
  let n = Array.length jobs in
  let speed = (Instance.machine instance 0).Machine.speed in
  let remaining = Array.map (fun (j : Job.t) -> Job.size j 0 /. speed) jobs in
  (* Index into [jobs] (release order), not job ids. *)
  let alive = ref [] in
  let total = ref 0. in
  let clock = ref 0. in
  let pick () =
    match !alive with
    | [] -> None
    | first :: rest ->
        Some
          (List.fold_left (fun acc k -> if remaining.(k) < remaining.(acc) then k else acc)
             first rest)
  in
  let run_until horizon =
    (* Advance the machine to [horizon] (or to emptiness). *)
    let continue = ref true in
    while !continue do
      match pick () with
      | None ->
          clock := Float.max !clock horizon;
          continue := false
      | Some k ->
          let span = horizon -. !clock in
          if span <= 0. then continue := false
          else if remaining.(k) <= span then begin
            clock := !clock +. remaining.(k);
            remaining.(k) <- 0.;
            alive := List.filter (fun x -> x <> k) !alive;
            total := !total +. (!clock -. jobs.(k).Job.release)
          end
          else begin
            remaining.(k) <- remaining.(k) -. span;
            clock := horizon;
            continue := false
          end
    done
  in
  for k = 0 to n - 1 do
    run_until jobs.(k).Job.release;
    clock := Float.max !clock jobs.(k).Job.release;
    alive := k :: !alive
  done;
  run_until Float.infinity;
  !total
