(** Exact offline optimum for total flow-time (tiny instances).

    Enumerates, by depth-first branch and bound, every assignment of jobs to
    machines and every service order, starting each job as early as
    possible (for a fixed assignment and order, left-shifted starts are
    optimal for flow-time).  The adversary of the rejection model schedules
    {e all} jobs, so no rejection branch exists.

    Exponential: intended for [n <= 9]. *)

open Sched_model

val optimal_flow : ?max_n:int -> Instance.t -> float option
(** [None] when the instance exceeds [max_n] (default 9) jobs.  Otherwise
    the exact minimum total flow-time over all non-preemptive schedules. *)
