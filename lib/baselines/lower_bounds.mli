(** Lower bounds on the offline optimum, used as the denominator of every
    measured competitive ratio.

    Every bound here is provably below (or equal to) the true OPT, so
    [algorithm cost / best lower bound] is an {e upper bound} on the
    empirical competitive ratio — the honest direction for checking the
    paper's guarantees. *)

open Sched_model

type bound = { value : float; source : string }

val volume : Instance.t -> bound
(** [sum_j min_i p_ij / speed_i]: every job must at least be processed. *)

val srpt : Instance.t -> bound option
(** Preemptive SRPT optimum; only valid (and returned) for [m = 1]. *)

val lp : ?max_variables:int -> Instance.t -> bound option
(** Half the discretized time-indexed LP value (see {!Sched_lp.Flow_lp}). *)

val brute : ?max_n:int -> Instance.t -> bound option
(** Exact OPT for tiny instances — the tightest possible bound. *)

val best_flow : ?lp_max_variables:int -> ?brute_max_n:int -> Instance.t -> bound
(** The largest available bound among the above. *)
