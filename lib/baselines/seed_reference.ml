open Sched_model
open Sched_sim

(* Every function below re-derives a policy decision by scanning the
   materialized pending list, exactly as the pre-index implementations did.
   Keep these in lockstep with the optimized modules: the differential
   tests run both on the same instances and require identical schedules. *)

let scan_pending_work view i =
  List.fold_left (fun acc (l : Job.t) -> acc +. Job.size l i) 0. (Driver.pending view i)

let argmin_machine m (j : Job.t) cost =
  let best = ref None in
  for i = 0 to m - 1 do
    if Job.eligible j i then begin
      let c = cost i in
      match !best with
      | Some (_, c') when c' <= c -> ()
      | _ -> best := Some (i, c)
    end
  done;
  match !best with Some ic -> ic | None -> assert false

(* ------------------------------------------------------------------ *)
(* Theorem 1 (unweighted flow-time with rejections). *)

type fr_state = {
  fr_cfg : Rejection.Flow_reject.config;
  fr_m : int;
  fr_eps_eff : float;
  fr_thr1 : int;
  fr_thr2 : int;
  fr_v : int array;
  fr_c : int array;
}

let fr_precede i (a : Job.t) (b : Job.t) =
  let pa = Job.size a i and pb = Job.size b i in
  if pa <> pb then pa < pb
  else if a.release <> b.release then a.release < b.release
  else a.id < b.id

let fr_lambda eps i (j : Job.t) pending =
  let pij = Job.size j i in
  let before = ref 0. and after = ref 0 in
  List.iter
    (fun (l : Job.t) -> if fr_precede i l j then before := !before +. Job.size l i else incr after)
    pending;
  (pij /. eps) +. !before +. pij +. (float_of_int !after *. pij)

let flow_reject (cfg : Rejection.Flow_reject.config) =
  let init instance =
    let inv = Float.ceil (1. /. cfg.Rejection.Flow_reject.eps) in
    {
      fr_cfg = cfg;
      fr_m = Instance.m instance;
      fr_eps_eff = 1. /. inv;
      fr_thr1 = int_of_float inv;
      fr_thr2 = int_of_float inv + 1;
      fr_v = Array.make (Instance.n instance) 0;
      fr_c = Array.make (max 1 (Instance.m instance)) 0;
    }
  in
  let on_arrival st view (j : Job.t) =
    let eps = st.fr_eps_eff in
    let target =
      match st.fr_cfg.Rejection.Flow_reject.dispatch with
      | Rejection.Flow_reject.Dual_lambda ->
          fst (argmin_machine st.fr_m j (fun i -> fr_lambda eps i j (Driver.pending view i)))
      | Rejection.Flow_reject.Greedy_load ->
          fst
            (argmin_machine st.fr_m j (fun i ->
                 Driver.remaining_time view i +. scan_pending_work view i +. Job.size j i))
    in
    st.fr_c.(target) <- st.fr_c.(target) + 1;
    let rejections = ref [] in
    (match Driver.running_on view target with
    | Some r ->
        let k = r.Driver.job.Job.id in
        st.fr_v.(k) <- st.fr_v.(k) + 1;
        if st.fr_cfg.Rejection.Flow_reject.rule1 && st.fr_v.(k) >= st.fr_thr1 then
          rejections := k :: !rejections
    | None -> ());
    if st.fr_cfg.Rejection.Flow_reject.rule2 && st.fr_c.(target) >= st.fr_thr2 then begin
      let victim =
        List.fold_left
          (fun worst (l : Job.t) -> if fr_precede target worst l then l else worst)
          j (Driver.pending view target)
      in
      rejections := victim.Job.id :: !rejections;
      st.fr_c.(target) <- 0
    end;
    { Driver.dispatch_to = target; reject = List.rev !rejections; restart = [] }
  in
  let select st view i =
    match Driver.pending view i with
    | [] -> None
    | first :: rest ->
        let shortest =
          List.fold_left (fun acc l -> if fr_precede i l acc then l else acc) first rest
        in
        st.fr_v.(shortest.Job.id) <- 0;
        Some { Driver.job = shortest.Job.id; speed = 1.0 }
  in
  { Driver.name = "ref-flow-reject"; init; on_arrival; select }

(* ------------------------------------------------------------------ *)
(* Weighted extension (density order, weight-based rules). *)

type frw_state = {
  frw_cfg : Rejection.Flow_reject_weighted.config;
  frw_m : int;
  frw_v : float array;
  frw_c : float array;
}

let frw_precede i (a : Job.t) (b : Job.t) =
  let da = a.weight /. Job.size a i and db = b.weight /. Job.size b i in
  if da <> db then da > db
  else if a.release <> b.release then a.release < b.release
  else a.id < b.id

let frw_lambda eps i (j : Job.t) pending =
  let pij = Job.size j i in
  let before = ref 0. and after_w = ref 0. in
  List.iter
    (fun (l : Job.t) ->
      if frw_precede i l j then before := !before +. Job.size l i
      else after_w := !after_w +. l.weight)
    pending;
  (j.weight *. ((pij /. eps) +. !before +. pij)) +. (!after_w *. pij)

let flow_reject_weighted (cfg : Rejection.Flow_reject_weighted.config) =
  let init instance =
    {
      frw_cfg = cfg;
      frw_m = Instance.m instance;
      frw_v = Array.make (Instance.n instance) 0.;
      frw_c = Array.make (Instance.m instance) 0.;
    }
  in
  let on_arrival st view (j : Job.t) =
    let eps = st.frw_cfg.Rejection.Flow_reject_weighted.eps in
    let target =
      fst (argmin_machine st.frw_m j (fun i -> frw_lambda eps i j (Driver.pending view i)))
    in
    st.frw_c.(target) <- st.frw_c.(target) +. j.weight;
    let rejections = ref [] in
    (match Driver.running_on view target with
    | Some r ->
        let k = r.Driver.job in
        st.frw_v.(k.Job.id) <- st.frw_v.(k.Job.id) +. j.weight;
        if st.frw_cfg.Rejection.Flow_reject_weighted.rule1 && st.frw_v.(k.Job.id) > k.Job.weight /. eps
        then rejections := k.Job.id :: !rejections
    | None -> ());
    if st.frw_cfg.Rejection.Flow_reject_weighted.rule2 then begin
      let bigger (a : Job.t) (b : Job.t) =
        let pa = Job.size a target and pb = Job.size b target in
        if pa <> pb then pa > pb else a.id > b.id
      in
      let victim =
        List.fold_left
          (fun worst l -> if bigger l worst then l else worst)
          j (Driver.pending view target)
      in
      if st.frw_c.(target) >= (1. +. (1. /. eps)) *. victim.Job.weight then begin
        rejections := victim.Job.id :: !rejections;
        st.frw_c.(target) <- 0.
      end
    end;
    { Driver.dispatch_to = target; reject = List.rev !rejections; restart = [] }
  in
  let select st view i =
    match Driver.pending view i with
    | [] -> None
    | first :: rest ->
        let head =
          List.fold_left (fun acc l -> if frw_precede i l acc then l else acc) first rest
        in
        st.frw_v.(head.Job.id) <- 0.;
        Some { Driver.job = head.Job.id; speed = 1.0 }
  in
  { Driver.name = "ref-flow-reject-weighted"; init; on_arrival; select }

(* ------------------------------------------------------------------ *)
(* Theorem 2 (weighted flow-time plus energy, speed scaling). *)

type fer_state = {
  fer_cfg : Rejection.Flow_energy_reject.config;
  fer_instance : Instance.t;
  fer_gammas : float array;
  fer_v : float array;
}

let fer_lambda st i (j : Job.t) pending =
  let alpha = (Instance.machine st.fer_instance i).Machine.alpha in
  let gamma = st.fer_gammas.(i) in
  let eps = st.fer_cfg.Rejection.Flow_energy_reject.eps in
  let seq = List.sort (fun a b -> if frw_precede i a b then -1 else 1) (j :: pending) in
  let prefix = ref 0. in
  let upto_j = ref 0. and after_w = ref 0. and wj_prefix = ref 0. and passed_j = ref false in
  List.iter
    (fun (l : Job.t) ->
      prefix := !prefix +. l.weight;
      if !passed_j then after_w := !after_w +. l.weight
      else begin
        upto_j := !upto_j +. (Job.size l i /. (gamma *. (!prefix ** (1. /. alpha))));
        if l.id = j.id then begin
          passed_j := true;
          wj_prefix := !prefix
        end
      end)
    seq;
  let pij = Job.size j i in
  (j.weight *. ((pij /. eps) +. !upto_j))
  +. (!after_w *. pij /. (gamma *. (!wj_prefix ** (1. /. alpha))))

let flow_energy_reject (cfg : Rejection.Flow_energy_reject.config) =
  let init instance =
    let gammas =
      Array.map
        (fun (mc : Machine.t) ->
          match cfg.Rejection.Flow_energy_reject.gamma with
          | Some g -> g
          | None ->
              Rejection.Bounds.gamma_best ~eps:cfg.Rejection.Flow_energy_reject.eps ~alpha:mc.Machine.alpha)
        (Array.init (Instance.m instance) (Instance.machine instance))
    in
    {
      fer_cfg = cfg;
      fer_instance = instance;
      fer_gammas = gammas;
      fer_v = Array.make (Instance.n instance) 0.;
    }
  in
  let on_arrival st view (j : Job.t) =
    let target =
      fst
        (argmin_machine (Instance.m st.fer_instance) j (fun i ->
             fer_lambda st i j (Driver.pending view i)))
    in
    let rejections = ref [] in
    (match Driver.running_on view target with
    | Some r ->
        let k = r.Driver.job in
        st.fer_v.(k.Job.id) <- st.fer_v.(k.Job.id) +. j.weight;
        if st.fer_v.(k.Job.id) > k.Job.weight /. st.fer_cfg.Rejection.Flow_energy_reject.eps then
          rejections := [ k.Job.id ]
    | None -> ());
    { Driver.dispatch_to = target; reject = !rejections; restart = [] }
  in
  let select st view i =
    match Driver.pending view i with
    | [] -> None
    | first :: rest as pending ->
        let head =
          List.fold_left (fun acc l -> if frw_precede i l acc then l else acc) first rest
        in
        let alpha = (Instance.machine st.fer_instance i).Machine.alpha in
        let total_weight =
          List.fold_left (fun acc (l : Job.t) -> acc +. l.Job.weight) 0. pending
        in
        let speed = st.fer_gammas.(i) *. (total_weight ** (1. /. alpha)) in
        st.fer_v.(head.Job.id) <- 0.;
        Some { Driver.job = head.Job.id; speed }
  in
  { Driver.name = "ref-flow-energy-reject"; init; on_arrival; select }

(* ------------------------------------------------------------------ *)
(* Non-rejecting greedy baselines. *)

let greedy name pick =
  let on_arrival () view (j : Job.t) =
    let m = Array.length j.Job.sizes in
    let target =
      fst
        (argmin_machine m j (fun i ->
             Driver.remaining_time view i +. scan_pending_work view i +. Job.size j i))
    in
    Driver.dispatch target
  in
  let select () view i =
    match Driver.pending view i with
    | [] -> None
    | first :: rest ->
        let chosen = List.fold_left (fun acc l -> if pick i l acc then l else acc) first rest in
        Some { Driver.job = chosen.Job.id; speed = 1.0 }
  in
  { Driver.name; init = (fun _ -> ()); on_arrival; select }

let greedy_fifo =
  greedy "ref-greedy-fifo" (fun _ (a : Job.t) (b : Job.t) ->
      if a.release <> b.release then a.release < b.release else a.id < b.id)

let greedy_spt = greedy "ref-greedy-spt" fr_precede

(* ------------------------------------------------------------------ *)
(* Immediate rejection heuristics. *)

let immediate_reject ~eps heuristic =
  if not (eps > 0. && eps < 1.) then
    invalid_arg "Seed_reference.immediate_reject: eps must be in (0,1)";
  let seen = ref 0 and rejected = ref 0 in
  let init _ =
    seen := 0;
    rejected := 0
  in
  let on_arrival () view (j : Job.t) =
    incr seen;
    let m = Array.length j.Job.sizes in
    let target =
      fst
        (argmin_machine m j (fun i ->
             Driver.remaining_time view i +. scan_pending_work view i +. Job.size j i))
    in
    let budget_ok = float_of_int (!rejected + 1) <= eps *. float_of_int !seen in
    let reject_now =
      budget_ok
      &&
      match heuristic with
      | Immediate_reject.Never -> false
      | Immediate_reject.Largest_over factor ->
          let pij = Job.size j target in
          let pending = Driver.pending view target in
          let count = List.length pending in
          count > 0
          &&
          let avg = scan_pending_work view target /. float_of_int count in
          pij > factor *. avg
      | Immediate_reject.Load_threshold factor ->
          let backlog = Driver.remaining_time view target +. scan_pending_work view target in
          backlog > factor *. Job.size j target
    in
    if reject_now then begin
      incr rejected;
      { Driver.dispatch_to = target; reject = [ j.id ]; restart = [] }
    end
    else Driver.dispatch target
  in
  let select () view i =
    match Driver.pending view i with
    | [] -> None
    | first :: rest ->
        let chosen =
          List.fold_left (fun acc l -> if fr_precede i l acc then l else acc) first rest
        in
        Some { Driver.job = chosen.Job.id; speed = 1.0 }
  in
  {
    Driver.name = "ref-" ^ Immediate_reject.name_of heuristic;
    init;
    on_arrival;
    select;
  }

(* ------------------------------------------------------------------ *)
(* Restart-SPT baseline. *)

type rs_state = {
  rs_cfg : Restart_spt.config;
  rs_m : int;
  rs_restarted : int array;
}

let restart_spt (cfg : Restart_spt.config) =
  let init instance =
    {
      rs_cfg = cfg;
      rs_m = Instance.m instance;
      rs_restarted = Array.make (Instance.n instance) 0;
    }
  in
  let on_arrival st view (j : Job.t) =
    let target =
      fst
        (argmin_machine st.rs_m j (fun i ->
             Driver.remaining_time view i +. scan_pending_work view i +. Job.size j i))
    in
    let restart =
      match Driver.running_on view target with
      | Some r ->
          let k = r.Driver.job in
          if
            st.rs_restarted.(k.Job.id) < st.rs_cfg.Restart_spt.max_restarts
            && Driver.remaining_time view target
               > st.rs_cfg.Restart_spt.kill_factor *. Job.size j target
          then begin
            st.rs_restarted.(k.Job.id) <- st.rs_restarted.(k.Job.id) + 1;
            [ k.Job.id ]
          end
          else []
      | None -> []
    in
    { Driver.dispatch_to = target; reject = []; restart }
  in
  let select _st view i =
    match Driver.pending view i with
    | [] -> None
    | first :: rest ->
        let shortest =
          List.fold_left (fun acc l -> if fr_precede i l acc then l else acc) first rest
        in
        Some { Driver.job = shortest.Job.id; speed = 1.0 }
  in
  { Driver.name = "ref-restart-spt"; init; on_arrival; select }
