open Sched_model

let speedup_instance factor instance =
  if factor <= 0. then invalid_arg "Speed_augmented: factor must be positive";
  let machines =
    Array.map
      (fun (mc : Machine.t) -> Machine.with_speed mc (mc.Machine.speed *. factor))
      (Array.init (Instance.m instance) (Instance.machine instance))
  in
  let jobs = Array.to_list (Instance.jobs_by_release instance) in
  Instance.create
    ~name:(Printf.sprintf "%s(+speed %g)" instance.Instance.name factor)
    ~machines ~jobs ()

let run ?trace ?obs ~eps_s ~eps_r instance =
  if eps_s <= 0. then invalid_arg "Speed_augmented.run: eps_s must be positive";
  let fast = speedup_instance (1. +. eps_s) instance in
  let cfg = Rejection.Flow_reject.config ~rule1:true ~rule2:false ~eps:eps_r () in
  fst (Rejection.Flow_reject.run ?trace ?obs cfg fast)
