(** Immediate-rejection policies: the class Lemma 1 proves weak.

    These policies must decide at each job's arrival — and never later —
    whether to reject it.  The lemma shows any such policy is
    [Omega(sqrt Delta)]-competitive; the experiment plays the paper's
    adversary against representatives of the class. *)

open Sched_sim

type heuristic =
  | Never  (** Rejects nothing: plain greedy-SPT. *)
  | Largest_over of float
      (** Rejects an arriving job when its best processing time exceeds the
          given multiple of the average pending size on the target machine
          (only while the rejection budget [eps * arrivals so far] allows). *)
  | Load_threshold of float
      (** Rejects an arriving job when the target machine's backlog (in
          time) exceeds the given multiple of the job's size (budget
          permitting). *)

type st = { mutable seen : int; mutable rejected : int }
(** The rejection-budget counters — policy state (not closure state), so
    checkpointed sessions carry them across freeze/thaw. *)

val policy : eps:float -> heuristic -> st Driver.policy
(** SPT service order, greedy-completion dispatch, with the given
    at-arrival rejection heuristic constrained to reject at most
    [eps * (jobs seen)] jobs. *)

val name_of : heuristic -> string
