(** The restart relaxation: instead of rejecting jobs, {e kill and requeue}
    them, losing the work done so far.

    The paper's conclusion calls for exploring "other realistic relaxations"
    beyond rejection and resource augmentation; restarts are the classic
    candidate (no job is ever dropped, but processed work can be wasted).
    This policy mirrors the Theorem 1 algorithm's structure: greedy
    dispatch, SPT service, and — in place of Rejection Rule 1 — a {b restart
    rule}: when the running job's remaining time exceeds [kill_factor]
    times the newly arrived job's size, the running job is killed and
    requeued (at most [max_restarts] times per job, after which it is
    immune).

    Schedules validate with [~allow_restarts:true]; {!wasted_work} reports
    the price paid. *)

open Sched_model
open Sched_sim

type config = {
  kill_factor : float;  (** Kill when [remaining > kill_factor * p_new]. *)
  max_restarts : int;  (** Per-job immunity threshold (ensures progress). *)
}

val config : ?kill_factor:float -> ?max_restarts:int -> unit -> config
(** Defaults: [kill_factor = 4.], [max_restarts = 2]. *)

type state

val policy : config -> state Driver.policy
val restarts : state -> int
val run : ?trace:Trace.t -> config -> Instance.t -> Schedule.t * state

val wasted_work : Schedule.t -> float
(** Total volume of aborted attempts (work done and thrown away). *)
