(** Offline local search for total flow-time: an OPT {e upper} bound.

    Starting from the greedy list schedule, repeatedly applies
    first-improvement moves — relocate one job to any position on any
    eligible machine, or swap two jobs across machines — evaluating each
    candidate exactly (for a fixed assignment and per-machine order,
    left-shifted starts are optimal).  The result is a feasible
    non-preemptive schedule of {e all} jobs, so its cost upper-bounds OPT;
    combined with {!Lower_bounds} it brackets the true optimum, giving
    two-sided empirical competitive ratios. *)

open Sched_model

type result = {
  cost : float;  (** Total flow-time of the improved schedule. *)
  initial_cost : float;  (** The greedy starting point. *)
  moves : int;  (** Improving moves applied. *)
}

val improve : ?max_rounds:int -> Instance.t -> result
(** [max_rounds] (default 400) caps the number of improving moves; each
    move costs at most one [O(n^2 m)] first-improvement scan of [O(n)]
    evaluations, so keep [n] in the hundreds. *)
