open Sched_model
open Sched_sim

type config = { kill_factor : float; max_restarts : int }

let config ?(kill_factor = 4.) ?(max_restarts = 2) () =
  if kill_factor <= 1. then invalid_arg "Restart_spt.config: kill_factor must exceed 1";
  if max_restarts < 0 then invalid_arg "Restart_spt.config: max_restarts must be >= 0";
  { kill_factor; max_restarts }

type state = {
  cfg : config;
  instance : Instance.t;
  mutable restarted : int array;  (** Times each job has been killed. *)
  mutable total_restarts : int;
}

let init cfg instance =
  { cfg; instance; restarted = Array.make (Instance.n instance) 0; total_restarts = 0 }

(* Streaming sessions init with zero jobs; the per-job counters grow on
   first sight of a larger id (batch runs pre-size to n). *)
let ensure st id =
  let len = Array.length st.restarted in
  if id >= len then begin
    let cap = max 16 (max (id + 1) (2 * len)) in
    let nr = Array.make cap 0 in
    Array.blit st.restarted 0 nr 0 len;
    st.restarted <- nr
  end

let on_arrival st view (j : Job.t) =
  ensure st j.id;
  (* Greedy estimated-completion dispatch, as the non-rejecting baselines. *)
  let best = ref None in
  for i = 0 to Instance.m st.instance - 1 do
    if Job.eligible j i then begin
      let c = Driver.remaining_time view i +. Driver.pending_work view i +. Job.size j i in
      match !best with
      | Some (_, c') when c' <= c -> ()
      | _ -> best := Some (i, c)
    end
  done;
  let target = match !best with Some (i, _) -> i | None -> assert false in
  let restart =
    match Driver.running_on view target with
    | Some r ->
        let k = r.Driver.job in
        if
          st.restarted.(k.Job.id) < st.cfg.max_restarts
          && Driver.remaining_time view target > st.cfg.kill_factor *. Job.size j target
        then begin
          st.restarted.(k.Job.id) <- st.restarted.(k.Job.id) + 1;
          st.total_restarts <- st.total_restarts + 1;
          [ k.Job.id ]
        end
        else []
    | None -> []
  in
  { Driver.dispatch_to = target; reject = []; restart }

let select _st view i =
  match Driver.pending_shortest view i with
  | None -> None
  | Some shortest -> Some { Driver.job = shortest.Job.id; speed = 1.0 }

let policy cfg = { Driver.name = "restart-spt"; init = init cfg; on_arrival; select }

let restarts st = st.total_restarts

let run ?trace cfg instance =
  let schedule, st = Driver.run ?trace (policy cfg) instance in
  Schedule.assert_valid ~allow_restarts:true ~check_deadlines:false schedule;
  (schedule, st)

let wasted_work (s : Schedule.t) =
  (* Volume of every segment except each completed job's final one. *)
  let final : (Job.id, Schedule.segment) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (g : Schedule.segment) ->
      match Hashtbl.find_opt final g.Schedule.job with
      | Some g' when g'.Schedule.start >= g.Schedule.start -> ()
      | _ -> Hashtbl.replace final g.Schedule.job g)
    s.Schedule.segments;
  List.fold_left
    (fun acc (g : Schedule.segment) ->
      let is_final =
        match Hashtbl.find_opt final g.Schedule.job with
        | Some g' -> g'.Schedule.start = g.Schedule.start
        | None -> false
      in
      let completed =
        match Schedule.outcome s g.Schedule.job with
        | Outcome.Completed _ -> true
        | Outcome.Rejected _ -> false
      in
      if completed && is_final then acc
      else acc +. ((g.Schedule.stop -. g.Schedule.start) *. g.Schedule.speed))
    0. s.Schedule.segments
