(* Benchmark harness.

   Part 1 regenerates every experiment table of the reproduction (E1..E9,
   the paper's Theorems 1-3 and Lemmas 1-2 plus the analysis machinery) at
   full scale — these are the "tables and figures" recorded in
   EXPERIMENTS.md.

   Part 2 runs one Bechamel micro-benchmark per experiment's core
   computation, plus a simulator-throughput benchmark (E10).

   Part 3 (selected with --regression, output file via --out, default
   BENCH_pr10.json) is the regression harness behind `make bench-check`:
   it times the indexed driver fast path against the scan-based seed
   references on an overloaded instance — once bare and once with the
   telemetry layer recording — times the flat (struct-of-arrays) core
   against the boxed reference core on the same workload (byte-identical
   schedules, >= 2x the PR-4 recorded events/sec, an allocations-per-
   event ceiling), gates the flight recorder's hot-loop ring writes at
   <= 5% overhead versus the recorder-off flat run — records
   end-to-end wall time and
   sequential-vs-parallel scaling, runs the experiment suite on domain
   pools of increasing width (checking byte-identical tables and
   telemetry at every width and recording the speedup curve), exercises
   the sharded within-run driver (canonical-schedule byte-identity at
   S in {1,2,4} over the fuzz corpus x every registry policy, sharded
   vs sequential throughput on a cluster-shaped workload, and a
   memory-gated cluster-scale point at n=10^6 x m=10^3), exercises the
   streaming session engine behind `rejsched serve` (stream-vs-batch
   canonical-schedule byte-identity over the fuzz corpus, session
   overhead versus the batch entry point, and a resident-memory gate on
   an n=10^6 rolling-retirement stream against the identical
   keep-everything stream), embeds the
   telemetry counter snapshot, records GC work (minor/major collections,
   minor words) next to every events/sec figure, writes the numbers to
   a JSON baseline, compares the throughput against the newest previous
   BENCH_*.json, and exits non-zero if either driver-event
   microbenchmark speedup (bare or telemetry-on) falls below 2x, if the
   width-1 pool costs more than 2x sequential, if the retirement
   stream's peak live words per job breach their ceiling or fail to
   undercut the keep-everything stream, or — on hosts with at
   least 4 cores — if 4 domains fail to reach 2x over sequential or the
   sharded run at S=4 fails to reach 2x over S=1.

   Run with: dune exec bench/main.exe
   (set REJSCHED_QUICK=1 for a fast smoke run) *)

open Bechamel
open Toolkit

let quick = Sys.getenv_opt "REJSCHED_QUICK" <> None

(* ------------------------------------------------------------------ *)
(* Part 1: experiment tables                                           *)

let run_experiments () =
  List.iter
    (fun (e, tables) ->
      Printf.printf "[%s] %s (reproduces: %s)\n" e.Sched_experiments.Registry.id
        e.Sched_experiments.Registry.title e.Sched_experiments.Registry.reproduces;
      List.iter Sched_stats.Table.print tables)
    (Sched_experiments.Registry.run_all ~quick ~pool:(Sched_stats.Pool.default ()) ())

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks                                   *)

let make_flow_instance n m seed =
  Sched_workload.Gen.instance (Sched_workload.Suite.flow_pareto ~n ~m) ~seed

let bench_tests () =
  let module FR = Rejection.Flow_reject in
  let module FE = Rejection.Flow_energy_reject in
  let flow_inst = make_flow_instance 1000 8 1 in
  let flow_small = make_flow_instance 200 4 1 in
  let weighted =
    Sched_workload.Gen.instance (Sched_workload.Suite.weighted_energy ~n:300 ~m:4 ~alpha:3.) ~seed:1
  in
  let deadline =
    Sched_workload.Gen.instance (Sched_workload.Suite.deadline_energy ~n:40 ~m:2 ~alpha:3.) ~seed:1
  in
  let throughput_inst = make_flow_instance (if quick then 10_000 else 50_000) 16 2 in
  [
    Test.make ~name:"e1:thm1-flow n=1000 m=8"
      (Staged.stage (fun () -> ignore (FR.run (FR.config ~eps:0.25 ()) flow_inst)));
    Test.make ~name:"e2:lemma1-adversary L=16"
      (Staged.stage (fun () ->
           let run i = fst (FR.run (FR.config ~eps:0.2 ()) i) in
           ignore (Sched_workload.Adversary_flow.run_two_phase ~run ~eps:0.2 ~l:16.)));
    Test.make ~name:"e3:thm2-flow+energy n=300 m=4"
      (Staged.stage (fun () -> ignore (FE.run (FE.config ~eps:0.25 ()) weighted)));
    Test.make ~name:"e4:thm3-energy-greedy n=40 m=2"
      (Staged.stage (fun () -> ignore (Rejection.Energy_config_greedy.run deadline)));
    Test.make ~name:"e5:lemma2-adversary alpha=4"
      (Staged.stage (fun () ->
           let st = Rejection.Energy_config_greedy.continuous ~alpha:4. () in
           let alg =
             {
               Sched_workload.Adversary_energy.name = "greedy";
               place =
                 (fun ~release ~deadline ~volume ->
                   Rejection.Energy_config_greedy.continuous_place st ~release ~deadline ~volume);
             }
           in
           ignore (Sched_workload.Adversary_energy.run ~alpha:4. alg)));
    Test.make ~name:"e6:dual-certificate n=200"
      (Staged.stage (fun () ->
           let trace = Sched_sim.Trace.create () in
           let schedule, st = FR.run ~trace (FR.config ~eps:0.25 ()) flow_small in
           ignore
             (Sched_lp.Dual_fit.certify ~eps:(FR.effective_eps st) ~lambdas:(FR.lambdas st)
                flow_small trace schedule)));
    Test.make ~name:"e7:smoothness lambda-search"
      (Staged.stage (fun () ->
           let rng = Sched_stats.Rng.create 1 in
           ignore
             (Sched_energy.Smooth.required_lambda ~trials:200
                (Sched_energy.Power.polynomial ~alpha:3.)
                ~mu:(2. /. 3.) rng)));
    Test.make ~name:"e8:thm1-rule2-only n=1000"
      (Staged.stage (fun () -> ignore (FR.run (FR.config ~eps:0.25 ~rule1:false ()) flow_inst)));
    Test.make ~name:"e9:speed-augmented n=1000"
      (Staged.stage (fun () ->
           ignore (Sched_baselines.Speed_augmented.run ~eps_s:0.5 ~eps_r:0.25 flow_inst)));
    Test.make ~name:"e10:driver-throughput n=50k m=16"
      (Staged.stage (fun () -> ignore (FR.run (FR.config ~eps:0.25 ()) throughput_inst)));
    Test.make ~name:"aux:local-search n=120"
      (Staged.stage (fun () ->
           let inst = make_flow_instance 120 3 5 in
           ignore (Sched_baselines.Local_search.improve inst)));
    Test.make ~name:"aux:oa-online n=200"
      (Staged.stage (fun () ->
           let inst =
             Sched_workload.Gen.instance
               (Sched_workload.Suite.deadline_energy ~n:200 ~m:1 ~alpha:3.)
               ~seed:3
           in
           ignore (Sched_energy.Oa.energy ~alpha:3. (Sched_energy.Yds.of_instance inst ~machine:0))));
    Test.make ~name:"aux:swf-parse"
      (Staged.stage (fun () -> ignore (Sched_workload.Swf.parse ~m:4 Sched_workload.Swf.example)));
  ]

let run_benchmarks () =
  let tests = bench_tests () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if quick then 0.2 else 1.0))
      ~stabilize:false ()
  in
  Printf.printf "\n== Bechamel micro-benchmarks (monotonic clock) ==\n%!";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-36s %12.3f ms/run\n%!" name (est /. 1e6)
          | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
        analyzed)
    tests;
  (* A direct jobs/second figure for the throughput story (E10). *)
  let inst = make_flow_instance (if quick then 20_000 else 100_000) 16 3 in
  let module FR = Rejection.Flow_reject in
  let t0 = Sys.time () in
  let schedule, _ = FR.run (FR.config ~eps:0.25 ()) inst in
  let dt = Sys.time () -. t0 in
  let n = float_of_int (Sched_model.Instance.n inst) in
  Printf.printf "\n== E10: simulator throughput ==\n";
  Printf.printf "  %d jobs on 16 machines in %.3f s -> %.0f jobs/s (~%.0f events/s)\n"
    (int_of_float n) dt (n /. dt)
    (n *. 3. /. dt);
  ignore schedule

(* ------------------------------------------------------------------ *)
(* Part 3: regression harness (--regression)                           *)

let wall = Unix.gettimeofday

let time_wall f =
  let t0 = wall () in
  let x = f () in
  (x, wall () -. t0)

let best_of reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let _, dt = time_wall f in
    if dt < !best then best := dt
  done;
  !best

(* GC work per measured run: [Gc.quick_stat] deltas captured around one
   representative execution.  Collection counts and minor words are a
   property of the run shape, not of wall-clock noise, so a single
   sample suffices; a delta rides next to every events/sec figure in
   the JSON baseline so a throughput regression can be told apart as
   "more allocation" versus "slower code" (the diagnosis the PR-6
   pool-scaling numbers lacked — see the pool_scaling note below). *)
type gc_delta = { gc_minor : int; gc_major : int; gc_minor_words : float }

let gc_of f =
  let s0 = Gc.quick_stat () in
  f ();
  let s1 = Gc.quick_stat () in
  {
    gc_minor = s1.Gc.minor_collections - s0.Gc.minor_collections;
    gc_major = s1.Gc.major_collections - s0.Gc.major_collections;
    gc_minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
  }

(* Like [time_wall] but also captures the GC delta of the same run. *)
let time_gc f =
  let s0 = Gc.quick_stat () in
  let t0 = wall () in
  let x = f () in
  let dt = wall () -. t0 in
  let s1 = Gc.quick_stat () in
  ( x,
    dt,
    {
      gc_minor = s1.Gc.minor_collections - s0.Gc.minor_collections;
      gc_major = s1.Gc.major_collections - s0.Gc.major_collections;
      gc_minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
    } )

let bprintf_gc buf ~indent ~key g =
  Printf.bprintf buf
    "%s\"%s\": {\"minor_collections\": %d, \"major_collections\": %d, \"minor_words\": %.0f},\n"
    indent key g.gc_minor g.gc_major g.gc_minor_words

(* An overloaded burst instance: releases compressed into a short prefix so
   per-machine pending queues grow to Theta(n/m) — the regime where the
   indexed queues beat the seed's linear scans.  All values are dyadic
   (multiples of 1/4) so incremental and scan-based float accumulations are
   exact and the optimized/reference cross-check below can demand byte
   equality, mirroring the differential tests. *)
let burst_instance ~n ~m ~seed =
  let rng = Sched_stats.Rng.create seed in
  let quarters lo count = lo +. (0.25 *. float_of_int (Sched_stats.Rng.int rng count)) in
  let machines = Sched_model.Machine.fleet m in
  let jobs =
    List.init n (fun id ->
        let release = quarters 0. (max 1 (n / 8)) in
        let weight = quarters 0.25 8 in
        let sizes = Array.init m (fun _ -> quarters 0.5 15) in
        Sched_model.Job.create ~id ~release ~weight ~sizes ())
  in
  Sched_model.Instance.create
    ~name:(Printf.sprintf "burst-n%d-m%d-s%d" n m seed)
    ~machines ~jobs ()

(* One arrival per job plus a start and a finish per laid segment. *)
let count_events (s : Sched_model.Schedule.t) =
  Sched_model.Instance.n s.Sched_model.Schedule.instance
  + (2 * List.length s.Sched_model.Schedule.segments)

(* Newest previous baseline by name: the PR number in BENCH_prN.json sorts. *)
let newest_baseline ~excluding =
  let keep f =
    String.length f > 6
    && String.sub f 0 6 = "BENCH_"
    && Filename.check_suffix f ".json"
    && f <> excluding
    && f <> Filename.basename excluding
  in
  match
    List.sort
      (fun a b -> String.compare b a)
      (List.filter keep (Array.to_list (Sys.readdir ".")))
  with
  | [] -> None
  | f :: _ -> Some f

(* Pull one scalar field ("key": value) out of a baseline file without a
   JSON parser; returns the raw token after the colon. *)
let scan_json_field ~key content =
  let needle = Printf.sprintf "\"%s\":" key in
  let nlen = String.length needle and clen = String.length content in
  let rec find i =
    if i + nlen > clen then None
    else if String.sub content i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some j ->
      let rec skip k = if k < clen && content.[k] = ' ' then skip (k + 1) else k in
      let start = skip j in
      let rec stop k =
        if k >= clen then k
        else match content.[k] with ',' | '\n' | '}' | ' ' -> k | _ -> stop (k + 1)
      in
      let fin = stop start in
      if fin > start then Some (String.sub content start (fin - start)) else None

(* MemAvailable from /proc/meminfo in GiB, 0 when unreadable.  Gates the
   cluster-scale sharded point: its instance alone carries n*m = 10^9
   processing times (~8 GiB) and the flat core mirrors per-(machine,job)
   columns of the same extent, so the point needs ~25-30 GiB to run
   without thrashing. *)
let mem_available_gib () =
  match In_channel.with_open_text "/proc/meminfo" In_channel.input_all with
  | exception _ -> 0.
  | content ->
      List.fold_left
        (fun acc line ->
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | [ "MemAvailable:"; kb; "kB" ] -> (
              match float_of_string_opt kb with
              | Some v -> v /. (1024. *. 1024.)
              | None -> acc)
          | _ -> acc)
        0.
        (String.split_on_char '\n' content)

let run_regression out_path =
  let module PR = Sched_experiments.Policy_registry in
  let module SR = Sched_baselines.Seed_reference in
  let module D = Sched_sim.Driver in
  let buf = Buffer.create 2048 in
  let reps = if quick then 1 else 3 in
  Printf.printf "== Regression harness (quick=%b, reps=%d) ==\n%!" quick reps;

  (* 3-pre: oracle fuzz pre-flight.  A short coverage-guided fuzz of the
     whole registry must come back clean, and its report must be
     byte-identical at pool widths 1, 2 and 4 — the determinism contract
     the parallel path claims, now checked against the oracle rather than
     just against itself. *)
  let fuzz_budget = if quick then 32 else 96 in
  let fuzz_cfg = Sched_fuzz.Fuzz.config ~budget:fuzz_budget ~seed:7 () in
  let fuzz_run d =
    Sched_stats.Pool.with_pool ~domains:d (fun pool -> Sched_fuzz.Fuzz.run ~pool fuzz_cfg)
  in
  let fuzz_widths = [ 1; 2; 4 ] in
  let fuzz_head = fuzz_run 1 in
  let fuzz_base = Sched_fuzz.Fuzz.report_to_string fuzz_head in
  List.iter
    (fun d ->
      if Sched_fuzz.Fuzz.report_to_string (fuzz_run d) <> fuzz_base then begin
        Printf.eprintf "FAIL: fuzz report at domains=%d differs from width 1\n%!" d;
        exit 1
      end)
    (List.filter (fun d -> d <> 1) fuzz_widths);
  if fuzz_head.Sched_fuzz.Fuzz.failures <> [] then begin
    Printf.eprintf "FAIL: fuzz pre-flight found violations:\n%s%!" fuzz_base;
    exit 1
  end;
  Printf.printf "  fuzz pre-flight: %s" fuzz_base;
  Printf.printf "  fuzz pre-flight byte-identical at widths %s\n%!"
    (String.concat "," (List.map string_of_int fuzz_widths));

  (* 3a: driver-event microbenchmark, indexed vs seed scans, n >= 10k. *)
  let n = 10_000 and m = 8 in
  let inst = burst_instance ~n ~m ~seed:7 in
  let spt = Option.get (PR.find "greedy-spt") in
  let s_opt = spt.PR.run inst in
  let s_ref = D.run_schedule SR.greedy_spt inst in
  if
    Sched_model.Serialize.schedule_to_string s_opt
    <> Sched_model.Serialize.schedule_to_string s_ref
  then begin
    prerr_endline "FAIL: optimized greedy-spt diverges from seed reference on burst instance";
    exit 1
  end;
  let events = count_events s_opt in
  let t_opt = best_of reps (fun () -> ignore (spt.PR.run inst)) in
  let t_ref = best_of 1 (fun () -> ignore (D.run_schedule SR.greedy_spt inst)) in
  let gc_opt = gc_of (fun () -> ignore (spt.PR.run inst)) in
  let gc_ref = gc_of (fun () -> ignore (D.run_schedule SR.greedy_spt inst)) in
  let speedup = t_ref /. t_opt in
  Printf.printf
    "  driver events (greedy-spt, n=%d m=%d): indexed %.0f ev/s, seed scans %.0f ev/s, speedup %.1fx\n%!"
    n m
    (float_of_int events /. t_opt)
    (float_of_int events /. t_ref)
    speedup;

  (* 3a': the same run with the telemetry layer recording (counters, gauges
     and phase spans).  Observability must neither change the schedule nor
     eat the indexed win: the telemetry-on run is held to the same 2x gate
     against the seed scans.  One instrumented run's counter snapshot is
     embedded in the JSON baseline below. *)
  let obs = Sched_obs.Obs.timed () in
  let s_tel = D.run_schedule ~obs Sched_baselines.Greedy_dispatch.spt inst in
  if
    Sched_model.Serialize.schedule_to_string s_tel
    <> Sched_model.Serialize.schedule_to_string s_opt
  then begin
    prerr_endline "FAIL: telemetry-instrumented greedy-spt diverges from the bare run";
    exit 1
  end;
  let t_tel =
    best_of reps (fun () ->
        ignore (D.run_schedule ~obs:(Sched_obs.Obs.timed ()) Sched_baselines.Greedy_dispatch.spt inst))
  in
  let gc_tel =
    gc_of (fun () ->
        ignore (D.run_schedule ~obs:(Sched_obs.Obs.timed ()) Sched_baselines.Greedy_dispatch.spt inst))
  in
  let tel_speedup = t_ref /. t_tel in
  Printf.printf
    "  with telemetry: indexed %.0f ev/s, overhead %.2fx over bare, speedup vs seed %.1fx\n%!"
    (float_of_int events /. t_tel)
    (t_tel /. t_opt) tel_speedup;

  (* 3a'': the flat (struct-of-arrays) core against the boxed reference
     core on the same burst workload — the PR-6 tentpole.  Three checks:
     the schedules are byte-identical, the flat core clears 2x the
     events/sec recorded in BENCH_pr4.json, and the steady state stays
     under an allocations-per-event ceiling read back from the driver's
     own [Gc.minor_words] loop counters. *)
  let flat_run impl () =
    ignore (D.run_schedule ~impl Sched_baselines.Greedy_dispatch.spt inst)
  in
  let s_boxed = D.run_schedule ~impl:D.Boxed Sched_baselines.Greedy_dispatch.spt inst in
  let s_flat = D.run_schedule ~impl:D.Flat Sched_baselines.Greedy_dispatch.spt inst in
  if
    Sched_model.Serialize.schedule_to_canonical_string s_flat
    <> Sched_model.Serialize.schedule_to_canonical_string s_boxed
  then begin
    prerr_endline "FAIL: flat core diverges from the boxed core on the burst instance";
    exit 1
  end;
  let t_flat = best_of reps (flat_run D.Flat) in
  let t_boxed = best_of reps (flat_run D.Boxed) in
  let gc_flat = gc_of (flat_run D.Flat) in
  let gc_boxed = gc_of (flat_run D.Boxed) in
  let flat_eps = float_of_int events /. t_flat in
  (* The PR-4 recorded throughput this PR promises to double.  Read from
     the checked-in baseline; the literal is the recorded value, kept as
     a fallback so a missing file cannot silently weaken the gate. *)
  let pr4_indexed_events_per_sec =
    let recorded = 489483.7 in
    if Sys.file_exists "BENCH_pr4.json" then
      let content = In_channel.with_open_text "BENCH_pr4.json" In_channel.input_all in
      match scan_json_field ~key:"indexed_events_per_sec" content with
      | Some s -> ( match float_of_string_opt s with Some v -> v | None -> recorded)
      | None -> recorded
    else recorded
  in
  let flat_gain = flat_eps /. pr4_indexed_events_per_sec in
  (* Allocations per event: one instrumented flat run; the driver wraps
     its event loop in a [Gc.minor_words] delta and exports both the
     words and the event count as counters. *)
  let flat_registry = Sched_obs.Registry.create () in
  let flat_obs = Sched_obs.Obs.create ~registry:flat_registry () in
  ignore (D.run_schedule ~obs:flat_obs ~impl:D.Flat Sched_baselines.Greedy_dispatch.spt inst);
  let counter name =
    Sched_obs.Metric.Counter.value (Sched_obs.Registry.counter flat_registry name)
  in
  let flat_words = counter "sched_flat_loop_minor_words_total" in
  let flat_loop_events = counter "sched_flat_loop_events_total" in
  let allocs_per_event = if flat_loop_events > 0. then flat_words /. flat_loop_events else 0. in
  (* ~137 words/event measured on this overloaded burst with telemetry
     attached (the residue is the policy-facing interface plus the
     instrumented run's per-phase timing closures, not driver state);
     boxing the hot floats again adds tens of words per event, so 160
     still catches any real regression.  dune runtest pins tighter
     gates (80/100) on bare-loop instances. *)
  let allocs_per_event_gate = 160.0 in
  Printf.printf
    "  flat core: %.0f ev/s (boxed core %.0f ev/s), %.2fx over PR-4 baseline %.0f ev/s, %.1f \
     words/event\n\
     %!"
    flat_eps
    (float_of_int events /. t_boxed)
    flat_gain pr4_indexed_events_per_sec allocs_per_event;

  (* 3a''': the flat core with the flight recorder attached — the PR-8
     tentpole.  Two measurements share one forensics-grade ring (4096
     rows, the capacity the fuzzer's failure dumps use; preallocated
     outside every timed closure, so this is the steady-state write
     cost, not setup):

     - greedy-spt on the burst instance: byte-identity recorder-on vs
       recorder-off, plus an informational overhead ratio.  The
       recorder's fixed cost is a few tens of ns/event, which against
       this policy's very light per-event baseline sits near the 5%
       line — inside the gate in expectation but inside this host's
       noise band too, so it is reported, not gated.
     - flow-reject, the paper's algorithm (dispatch, start, complete,
       reject and the budget column all exercised): the hard <= 5% gate
       rides here. *)
  let recorder = Sched_obs.Recorder.create ~capacity:4096 () in
  let recorder_capacity = Sched_obs.Recorder.capacity recorder in
  let s_rec = D.run_schedule ~recorder ~impl:D.Flat Sched_baselines.Greedy_dispatch.spt inst in
  if
    Sched_model.Serialize.schedule_to_canonical_string s_rec
    <> Sched_model.Serialize.schedule_to_canonical_string s_flat
  then begin
    prerr_endline "FAIL: recorder-on flat run diverges from the recorder-off schedule";
    exit 1
  end;
  let recorder_events = Sched_obs.Recorder.total recorder in
  (* Interleaved best-of: the on/off runs alternate so clock drift and
     noisy-neighbour slowdowns hit both sides of the ratio equally —
     back-to-back blocks would let a frequency dip land on one side. *)
  let rec_reps = max reps 7 in
  let t_norec = ref infinity and t_rec = ref infinity in
  for _ = 1 to rec_reps do
    let dt_off = best_of 1 (flat_run D.Flat) in
    if dt_off < !t_norec then t_norec := dt_off;
    let dt_on =
      best_of 1 (fun () ->
          ignore (D.run_schedule ~recorder ~impl:D.Flat Sched_baselines.Greedy_dispatch.spt inst))
    in
    if dt_on < !t_rec then t_rec := dt_on
  done;
  let t_norec = !t_norec and t_rec = !t_rec in
  let gc_rec_on =
    gc_of (fun () ->
        ignore (D.run_schedule ~recorder ~impl:D.Flat Sched_baselines.Greedy_dispatch.spt inst))
  in
  let rec_overhead_spt = t_rec /. t_norec in
  Printf.printf
    "  flight recorder (greedy-spt, informational): %.0f ev/s on (%.0f ev/s off), overhead %.3fx, \
     %d events/run recorded\n\
     %!"
    (float_of_int events /. t_rec)
    (float_of_int events /. t_norec)
    rec_overhead_spt recorder_events;
  (* The gated measurement.  Estimator: order-alternated pairs, median
     of per-pair ratios.  Adjacent runs see the same machine state, so a
     frequency dip cancels inside each pair; alternating which side runs
     first cancels warm-up bias; the median throws away the pairs a
     noisy neighbour landed on.  Plain best-of-N minima were measured
     flaking both directions (ratios 0.92-1.25 for identical code) on a
     busy host. *)
  let fr_gate = Option.get (PR.find "flow-reject") in
  let fr_off () = ignore (fr_gate.PR.run_impl ~impl:D.Flat ~check:false inst) in
  let fr_on () = ignore (fr_gate.PR.run_impl ~recorder ~impl:D.Flat ~check:false inst) in
  let s_fr_off = fst (fr_gate.PR.run_impl ~impl:D.Flat ~check:false inst) in
  let s_fr_on = fst (fr_gate.PR.run_impl ~recorder ~impl:D.Flat ~check:false inst) in
  if
    Sched_model.Serialize.schedule_to_canonical_string s_fr_on
    <> Sched_model.Serialize.schedule_to_canonical_string s_fr_off
  then begin
    prerr_endline "FAIL: recorder-on flow-reject run diverges from the recorder-off schedule";
    exit 1
  end;
  let fr_gate_events = count_events s_fr_off in
  let rec_pairs = max ((4 * reps) + 1) 13 in
  let rec_ratios = Array.make rec_pairs 0. in
  let t_fr_norec = ref infinity and t_fr_rec = ref infinity in
  for p = 0 to rec_pairs - 1 do
    let dt_off, dt_on =
      if p land 1 = 0 then
        let a = best_of 1 fr_off in
        (a, best_of 1 fr_on)
      else
        let b = best_of 1 fr_on in
        (best_of 1 fr_off, b)
    in
    if dt_off < !t_fr_norec then t_fr_norec := dt_off;
    if dt_on < !t_fr_rec then t_fr_rec := dt_on;
    rec_ratios.(p) <- dt_on /. dt_off
  done;
  Array.sort Float.compare rec_ratios;
  let gc_fr_off = gc_of fr_off in
  let gc_fr_on = gc_of fr_on in
  let rec_overhead = rec_ratios.(rec_pairs / 2) in
  let rec_overhead_gate = 1.05 in
  Printf.printf
    "  flight recorder (flow-reject, gated): %.0f ev/s on (%.0f ev/s off), overhead %.3fx median \
     of %d pairs\n\
     %!"
    (float_of_int fr_gate_events /. !t_fr_rec)
    (float_of_int fr_gate_events /. !t_fr_norec)
    rec_overhead rec_pairs;

  (* Secondary (non-gating): flow-reject, whose lambda pass is O(m k) on
     both sides — the index only accelerates dispatch/select/accounting. *)
  let fr = Option.get (PR.find "flow-reject") in
  let fr_inst = burst_instance ~n:(if quick then 3_000 else 10_000) ~m ~seed:11 in
  let t_fr_opt = best_of 1 (fun () -> ignore (fr.PR.run fr_inst)) in
  let t_fr_ref =
    best_of 1 (fun () ->
        ignore (D.run_schedule (SR.flow_reject (Rejection.Flow_reject.config ~eps:PR.eps ())) fr_inst))
  in
  Printf.printf "  flow-reject (n=%d): indexed %.3f s, seed scans %.3f s, speedup %.1fx\n%!"
    (Sched_model.Instance.n fr_inst) t_fr_opt t_fr_ref (t_fr_ref /. t_fr_opt);

  (* 3b: end-to-end wall time on the E10-style throughput workload. *)
  let e2e_inst = make_flow_instance (if quick then 20_000 else 50_000) 16 3 in
  let module FR = Rejection.Flow_reject in
  let (_ : Sched_model.Schedule.t * FR.state), t_e2e, gc_e2e =
    time_gc (fun () -> FR.run (FR.config ~eps:0.25 ()) e2e_inst)
  in
  let e2e_n = Sched_model.Instance.n e2e_inst in
  Printf.printf "  end-to-end flow-reject: %d jobs on 16 machines in %.3f s (%.0f jobs/s)\n%!"
    e2e_n t_e2e
    (float_of_int e2e_n /. t_e2e);

  (* 3c: sequential vs Stats.Parallel over a batch of instances. *)
  let batch =
    Array.init 8 (fun k -> burst_instance ~n:(if quick then 800 else 2_000) ~m:4 ~seed:(100 + k))
  in
  let par_times =
    List.map
      (fun domains ->
        let dt =
          best_of 1 (fun () ->
              ignore (Sched_stats.Parallel.map_array ~domains (fun i -> fr.PR.run i) batch))
        in
        Printf.printf "  parallel batch (8 runs): domains=%d -> %.3f s\n%!" domains dt;
        (domains, dt))
      [ 1; 2; 4 ]
  in

  (* 3e: domain-pool scaling on the experiment suite.  The suite is the
     pool's real workload — run_all fans experiments out as tasks and
     per-seed replication shares the same pool — so this is the scaling
     curve the PR claims.  Every width must reproduce the sequential
     tables and merged telemetry byte for byte; wall times go into the
     JSON baseline. *)
  let suite_ids = [ "e1"; "e2"; "e7"; "e13" ] in
  let suite_csv tables =
    String.concat ""
      (List.concat_map (fun (_, ts) -> List.map Sched_stats.Table.to_csv ts) tables)
  in
  let sum_sched_counters registry =
    List.fold_left
      (fun acc e ->
        match e.Sched_obs.Registry.instrument with
        | Sched_obs.Registry.Counter c
          when String.length e.Sched_obs.Registry.name >= 6
               && String.sub e.Sched_obs.Registry.name 0 6 = "sched_" ->
            acc +. Sched_obs.Metric.Counter.value c
        | _ -> acc)
      0.
      (Sched_obs.Registry.entries registry)
  in
  let run_suite pool =
    let registry = Sched_obs.Registry.create () in
    let obs = Sched_obs.Obs.create ~registry () in
    let tables, dt, gc =
      time_gc (fun () ->
          Sched_experiments.Registry.run_all ~quick:true ~obs ~only:suite_ids ?pool ())
    in
    (suite_csv tables, Sched_obs.Export.json registry, sum_sched_counters registry, dt, gc)
  in
  let seq_csv, seq_json, suite_events, t_suite_seq, gc_suite_seq = run_suite None in
  Printf.printf "  suite scaling (%s): sequential %.3f s (%.0f driver events)\n%!"
    (String.concat "," suite_ids) t_suite_seq suite_events;
  let recommended = Domain.recommended_domain_count () in
  let widths = List.sort_uniq Int.compare [ 1; 2; 4; recommended ] in
  let pool_times =
    List.map
      (fun d ->
        let csv, json, _, dt, gc =
          Sched_stats.Pool.with_pool ~domains:d (fun pool -> run_suite (Some pool))
        in
        if csv <> seq_csv then begin
          Printf.eprintf "FAIL: suite tables at domains=%d differ from sequential\n%!" d;
          exit 1
        end;
        if json <> seq_json then begin
          Printf.eprintf "FAIL: merged telemetry at domains=%d differs from sequential\n%!" d;
          exit 1
        end;
        Printf.printf "  suite scaling: domains=%d -> %.3f s (%.2fx vs sequential)\n%!" d dt
          (t_suite_seq /. dt);
        (d, dt, gc))
      widths
  in

  (* 3f: the sharded within-run driver — the PR-9 tentpole.  Three parts.

     (a) Unobservability smoke: every fuzz-corpus case under every
         registry policy must reproduce the flat core's canonical
         schedule at S in {1, 2, 4}.  The full differential (bit-equal
         metrics, recorder rings, oracle on both sides, pooled phase 1)
         lives in test_shard_differential.ml; the bench repeats the
         schedule-identity core so a perf-motivated edit cannot ship a
         divergence past `make bench-check` either.

     (b) Sharded throughput on a cluster-shaped workload — wide (many
         machines), so the per-arrival phase-1 cost scan is the bulk of
         the work and sharding has something to parallelize.  S=4 on a
         4-domain pool against S=1 (no pool, pure sequential tick).
         The >= 2x gate below only applies on hosts with >= 4
         recommended domains; elsewhere the figure is recorded.

     (c) The cluster-scale point (n=10^6, m=10^3): the E15 regime at
         full size.  Memory-gated on MemAvailable and skipped in quick
         mode; S-identity at this scale is not re-proven (it would
         double a multi-minute run) — it is the same code path part (a)
         just proved exhaustively at every shard boundary shape. *)
  let shard_counts = [ 1; 2; 4 ] in
  let shard_cases = ref 0 in
  List.iter
    (fun (c : Sched_fuzz.Corpus.case) ->
      let s_inst = c.Sched_fuzz.Corpus.instance in
      let check = not (Sched_model.Instance.has_deadlines s_inst) in
      List.iter
        (fun (e : PR.entry) ->
          let reference =
            Sched_model.Serialize.schedule_to_canonical_string
              (fst (e.PR.run_impl ~impl:D.Flat ~check s_inst))
          in
          List.iter
            (fun s ->
              incr shard_cases;
              let sch, _ = e.PR.run_sharded ~check ~shards:s s_inst in
              if Sched_model.Serialize.schedule_to_canonical_string sch <> reference then begin
                Printf.eprintf "FAIL: sharded %s diverges from the flat core on %s at shards=%d\n%!"
                  e.PR.name c.Sched_fuzz.Corpus.name s;
                exit 1
              end)
            shard_counts)
        PR.all)
    (Sched_fuzz.Corpus.seeds ());
  Printf.printf
    "  sharded byte-identity: %d corpus x policy x S runs identical to the flat core\n%!"
    !shard_cases;
  let cl_n = if quick then 4_000 else 40_000 and cl_m = if quick then 64 else 512 in
  let cl_inst =
    Sched_workload.Gen.instance (Sched_workload.Suite.flow_uniform ~n:cl_n ~m:cl_m) ~seed:11
  in
  let fr_sh = Option.get (PR.find "flow-reject") in
  let shard_reps = if quick then 1 else 2 in
  let s_cl1, _ = fr_sh.PR.run_sharded ~check:false ~shards:1 cl_inst in
  let cl_events = count_events s_cl1 in
  let c_cl1 = Sched_model.Serialize.schedule_to_canonical_string s_cl1 in
  let t_s1 =
    best_of shard_reps (fun () -> ignore (fr_sh.PR.run_sharded ~check:false ~shards:1 cl_inst))
  in
  let gc_s1 = gc_of (fun () -> ignore (fr_sh.PR.run_sharded ~check:false ~shards:1 cl_inst)) in
  let t_s4, gc_s4 =
    Sched_stats.Pool.with_pool ~domains:4 (fun pool ->
        let s_cl4, _ = fr_sh.PR.run_sharded ~pool ~check:false ~shards:4 cl_inst in
        if Sched_model.Serialize.schedule_to_canonical_string s_cl4 <> c_cl1 then begin
          Printf.eprintf "FAIL: cluster workload diverges at shards=4 on a 4-domain pool\n%!";
          exit 1
        end;
        let t =
          best_of shard_reps (fun () ->
              ignore (fr_sh.PR.run_sharded ~pool ~check:false ~shards:4 cl_inst))
        in
        let gc =
          gc_of (fun () -> ignore (fr_sh.PR.run_sharded ~pool ~check:false ~shards:4 cl_inst))
        in
        (t, gc))
  in
  let shard_speedup = t_s1 /. t_s4 in
  Printf.printf
    "  sharded cluster workload (flow-reject, n=%d m=%d): S=1 %.0f ev/s, S=4 on 4 domains %.0f \
     ev/s, speedup %.2fx\n\
     %!"
    cl_n cl_m
    (float_of_int cl_events /. t_s1)
    (float_of_int cl_events /. t_s4)
    shard_speedup;
  let cluster_mem_need_gib = 34. in
  let mem_gib = mem_available_gib () in
  let cluster_point =
    if quick then Error "quick mode"
    else if mem_gib < cluster_mem_need_gib then
      Error (Printf.sprintf "MemAvailable %.1f GiB < %.0f GiB" mem_gib cluster_mem_need_gib)
    else begin
      let cn = 1_000_000 and cm = 1_000 in
      Printf.printf "  cluster-scale point: generating n=%d m=%d (MemAvailable %.0f GiB)...\n%!"
        cn cm mem_gib;
      let big_inst, t_gen =
        time_wall (fun () ->
            Sched_workload.Gen.instance (Sched_workload.Suite.flow_uniform ~n:cn ~m:cm) ~seed:11)
      in
      let lb = (Sched_baselines.Lower_bounds.volume big_inst).Sched_baselines.Lower_bounds.value in
      let pool_domains = min 4 recommended in
      let (big_sched, big_live), t_big, gc_big =
        Sched_stats.Pool.with_pool ~domains:pool_domains (fun pool ->
            time_gc (fun () -> fr_sh.PR.run_sharded ~pool ~check:false ~shards:4 big_inst))
      in
      let big_events = count_events big_sched in
      let ratio = big_live.D.flow.Sched_model.Metrics.total_with_rejected /. lb in
      let rej_pct = 100. *. big_live.D.rejection.Sched_model.Metrics.fraction in
      Printf.printf
        "  cluster-scale point: gen %.1f s, run %.1f s (%.0f ev/s, %d domains), ratio %.3f, \
         rejected %.1f%%\n\
         %!"
        t_gen t_big
        (float_of_int big_events /. t_big)
        pool_domains ratio rej_pct;
      Ok (cn, cm, t_gen, t_big, gc_big, big_events, ratio, rej_pct, pool_domains)
    end
  in
  (match cluster_point with
  | Ok _ -> ()
  | Error reason -> Printf.printf "  cluster-scale point skipped: %s\n%!" reason);

  (* 3g: the streaming session engine behind `rejsched serve` — the
     PR-10 tentpole.  Three parts.

     (a) Byte-identity fail-fast: every fuzz-corpus case, streamed
         through an incremental [Driver.Session] under its distilled
         policy in arrival chunks of 1 and of 7, must close on exactly
         the canonical schedule the one-shot batch run produces.  The
         exhaustive differential (every registry policy, chunk sizes
         {1, 7, n}, bit-equal live metrics, oracle audits, retire-mode
         metric identity) lives in test_stream_differential.ml; the
         bench repeats the schedule-identity core so a perf-motivated
         edit cannot ship a stream/batch divergence past
         `make bench-check` either.

     (b) Session overhead: the same flow-uniform workload through the
         batch entry point and through a chunked session.  The session
         is run_flat's event loop behind a feed/drain surface, so the
         gap is the price of the incremental surface itself (bounded
         drains, horizon checks, fed-list upkeep) — recorded, not
         gated.

     (c) The rolling-retirement memory gate: a retire-mode session fed
         n=10^6 synthetic arrivals on m=4 machines at ~0.6 utilization
         (the pending set stays O(m), so any O(n) residue is retention,
         not backlog), live heap sampled via [Gc.full_major] every n/10
         feeds, against the identical stream with retirement off.
         Retirement folds finished segments straight into the rolling
         aggregates, drops the per-job handles and skips the fed list,
         so peak live words per fed job must stay under an absolute
         ceiling AND well under the keep-everything run's figure; both
         streams must agree on every live metric bit. *)
  let stream_feed (s : PR.stream_session) inst ~chunk =
    let jobs = Sched_model.Instance.jobs_by_release inst in
    let nj = Array.length jobs in
    let k = ref 0 in
    while !k < nj do
      let stop = min nj (!k + chunk) in
      for i = !k to stop - 1 do
        s.PR.ss_feed jobs.(i)
      done;
      s.PR.ss_drain_until jobs.(stop - 1).Sched_model.Job.release;
      k := stop
    done;
    s.PR.ss_close ()
  in
  let stream_cases = ref 0 in
  List.iter
    (fun (c : Sched_fuzz.Corpus.case) ->
      match PR.find c.Sched_fuzz.Corpus.policy with
      | None -> ()
      | Some e ->
          let s_inst = c.Sched_fuzz.Corpus.instance in
          let reference =
            Sched_model.Serialize.schedule_to_canonical_string
              (fst (e.PR.run_impl ~impl:D.Flat ~check:false s_inst))
          in
          List.iter
            (fun chunk ->
              incr stream_cases;
              let s =
                e.PR.open_stream ~name:s_inst.Sched_model.Instance.name
                  ~machines:s_inst.Sched_model.Instance.machines ()
              in
              match stream_feed s s_inst ~chunk with
              | Some sch, _
                when Sched_model.Serialize.schedule_to_canonical_string sch = reference ->
                  ()
              | Some _, _ ->
                  Printf.eprintf
                    "FAIL: streamed %s diverges from the batch run on %s at chunk=%d\n%!"
                    e.PR.name c.Sched_fuzz.Corpus.name chunk;
                  exit 1
              | None, _ ->
                  Printf.eprintf "FAIL: un-retired session returned no schedule on %s\n%!"
                    c.Sched_fuzz.Corpus.name;
                  exit 1)
            [ 1; 7 ])
    (Sched_fuzz.Corpus.seeds ());
  Printf.printf
    "  streaming byte-identity: %d corpus x chunk sessions identical to the batch run\n%!"
    !stream_cases;
  let so_n = if quick then 4_000 else 20_000 and so_m = 16 in
  let so_inst =
    Sched_workload.Gen.instance (Sched_workload.Suite.flow_uniform ~n:so_n ~m:so_m) ~seed:13
  in
  let fr_st = Option.get (PR.find "flow-reject") in
  let so_sched, _ = fr_st.PR.run_impl ~impl:D.Flat ~check:false so_inst in
  let so_events = count_events so_sched in
  let c_so = Sched_model.Serialize.schedule_to_canonical_string so_sched in
  let t_so_batch =
    best_of reps (fun () -> ignore (fr_st.PR.run_impl ~impl:D.Flat ~check:false so_inst))
  in
  let stream_once () =
    let s =
      fr_st.PR.open_stream ~name:so_inst.Sched_model.Instance.name
        ~machines:so_inst.Sched_model.Instance.machines ()
    in
    stream_feed s so_inst ~chunk:64
  in
  (match stream_once () with
  | Some sch, _ when Sched_model.Serialize.schedule_to_canonical_string sch = c_so -> ()
  | _ ->
      Printf.eprintf "FAIL: streamed flow-uniform workload diverges from the batch run\n%!";
      exit 1);
  let t_so_stream = best_of reps (fun () -> ignore (stream_once ())) in
  let gc_so = gc_of (fun () -> ignore (stream_once ())) in
  let so_overhead = t_so_stream /. t_so_batch in
  Printf.printf
    "  session overhead (flow-reject, n=%d m=%d, chunk=64): batch %.0f ev/s, stream %.0f ev/s \
     (%.3fx)\n\
     %!"
    so_n so_m
    (float_of_int so_events /. t_so_batch)
    (float_of_int so_events /. t_so_stream)
    so_overhead;
  let st_n = if quick then 100_000 else 1_000_000 in
  let st_m = 4 in
  let st_machines = Sched_model.Machine.fleet st_m in
  (* Deterministic arrival stream, dyadic throughout: 4 arrivals per time
     unit against 4 machines serving mean size 0.625, so the backlog is
     a small constant and peak residency isolates what the engine keeps. *)
  let st_job i =
    let release = 0.25 *. float_of_int i in
    let sizes = Array.init st_m (fun k -> 0.25 +. (0.25 *. float_of_int ((i + k) land 3))) in
    Sched_model.Job.create ~id:i ~release ~sizes ()
  in
  let st_run ~retire =
    Gc.compact ();
    let base = (Gc.stat ()).Gc.live_words in
    let s = fr_st.PR.open_stream ~retire ~name:"stream-mem" ~machines:st_machines () in
    let peak = ref 0 in
    let sample () =
      Gc.full_major ();
      let lw = (Gc.stat ()).Gc.live_words in
      if lw > !peak then peak := lw
    in
    let sample_every = max 1 (st_n / 10) in
    let t0 = wall () in
    let i = ref 0 in
    while !i < st_n do
      let stop = min st_n (!i + 512) in
      for k = !i to stop - 1 do
        s.PR.ss_feed (st_job k)
      done;
      s.PR.ss_drain_until (0.25 *. float_of_int (stop - 1));
      if stop / sample_every > !i / sample_every then sample ();
      i := stop
    done;
    let sched, live = s.PR.ss_close () in
    sample ();
    let dt = wall () -. t0 in
    (* Touch the materialized schedule after the sample so the closing
       run's peak genuinely includes it. *)
    let segs =
      match sched with
      | Some sc -> List.length sc.Sched_model.Schedule.segments
      | None -> 0
    in
    (dt, max 0 (!peak - base), live, segs)
  in
  let t_st_ret, words_ret, live_ret, segs_ret = st_run ~retire:true in
  let t_st_keep, words_keep, live_keep, segs_keep = st_run ~retire:false in
  if segs_ret <> 0 then begin
    Printf.eprintf "FAIL: retire-mode stream materialized %d segments\n%!" segs_ret;
    exit 1
  end;
  if
    not
      (Float.equal live_ret.D.flow.Sched_model.Metrics.total_with_rejected
         live_keep.D.flow.Sched_model.Metrics.total_with_rejected
      && Float.equal live_ret.D.energy live_keep.D.energy
      && Float.equal live_ret.D.makespan live_keep.D.makespan
      && live_ret.D.rejection.Sched_model.Metrics.count
         = live_keep.D.rejection.Sched_model.Metrics.count)
  then begin
    Printf.eprintf "FAIL: rolling retirement perturbed the live metrics\n%!";
    exit 1
  end;
  let wpj_ret = float_of_int words_ret /. float_of_int st_n in
  let wpj_keep = float_of_int words_keep /. float_of_int st_n in
  let stream_mem_ratio = wpj_ret /. wpj_keep in
  (* Both streams share the structural floor (flat columns and the
     per-machine indexed heaps, all sized by job capacity), so the
     ratio separates modestly; the absolute ceiling is the sharp
     no-retention signal — retaining the fed list and job boxes alone
     adds ~20 words/job. *)
  let stream_wpj_ceiling = 48.0 and stream_ratio_gate = 0.75 in
  Printf.printf
    "  rolling retirement (flow-reject, n=%d m=%d): retire %.1f words/job in %.1f s, keep %.1f \
     words/job (%d segments) in %.1f s, ratio %.2f\n\
     %!"
    st_n st_m wpj_ret t_st_ret wpj_keep segs_keep t_st_keep stream_mem_ratio;

  (* JSON baseline. *)
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"pr\": \"pr10\",\n";
  Printf.bprintf buf "  \"quick\": %b,\n" quick;
  Printf.bprintf buf "  \"driver_event_microbench\": {\n";
  Printf.bprintf buf "    \"policy\": \"greedy-spt\",\n";
  Printf.bprintf buf "    \"n\": %d,\n    \"m\": %d,\n    \"events\": %d,\n" n m events;
  Printf.bprintf buf "    \"indexed_seconds\": %.6f,\n" t_opt;
  Printf.bprintf buf "    \"seed_scan_seconds\": %.6f,\n" t_ref;
  Printf.bprintf buf "    \"indexed_events_per_sec\": %.1f,\n" (float_of_int events /. t_opt);
  bprintf_gc buf ~indent:"    " ~key:"indexed_gc" gc_opt;
  Printf.bprintf buf "    \"seed_scan_events_per_sec\": %.1f,\n" (float_of_int events /. t_ref);
  bprintf_gc buf ~indent:"    " ~key:"seed_scan_gc" gc_ref;
  Printf.bprintf buf "    \"speedup\": %.3f\n  },\n" speedup;
  Printf.bprintf buf "  \"telemetry\": {\n";
  Printf.bprintf buf "    \"instrumented_seconds\": %.6f,\n" t_tel;
  Printf.bprintf buf "    \"instrumented_events_per_sec\": %.1f,\n" (float_of_int events /. t_tel);
  bprintf_gc buf ~indent:"    " ~key:"instrumented_gc" gc_tel;
  Printf.bprintf buf "    \"overhead_ratio\": %.3f,\n" (t_tel /. t_opt);
  Printf.bprintf buf "    \"speedup_vs_seed\": %.3f,\n" tel_speedup;
  Printf.bprintf buf "    \"snapshot\": %s\n  },\n"
    (String.trim (Sched_obs.Export.json (Sched_obs.Obs.registry obs)));
  Printf.bprintf buf "  \"flat_core\": {\n";
  Printf.bprintf buf "    \"policy\": \"greedy-spt\",\n";
  Printf.bprintf buf "    \"events\": %d,\n" events;
  Printf.bprintf buf "    \"flat_seconds\": %.6f,\n" t_flat;
  Printf.bprintf buf "    \"boxed_seconds\": %.6f,\n" t_boxed;
  Printf.bprintf buf "    \"flat_events_per_sec\": %.1f,\n" flat_eps;
  bprintf_gc buf ~indent:"    " ~key:"flat_gc" gc_flat;
  Printf.bprintf buf "    \"boxed_events_per_sec\": %.1f,\n" (float_of_int events /. t_boxed);
  bprintf_gc buf ~indent:"    " ~key:"boxed_gc" gc_boxed;
  Printf.bprintf buf "    \"pr4_baseline_events_per_sec\": %.1f,\n" pr4_indexed_events_per_sec;
  Printf.bprintf buf "    \"gain_vs_pr4_baseline\": %.3f,\n" flat_gain;
  Printf.bprintf buf "    \"allocs_per_event\": %.2f,\n" allocs_per_event;
  Printf.bprintf buf "    \"allocs_per_event_gate\": %.1f,\n" allocs_per_event_gate;
  Printf.bprintf buf "    \"byte_identical\": true\n  },\n";
  Printf.bprintf buf "  \"recorder\": {\n";
  Printf.bprintf buf "    \"ring_capacity\": %d,\n" recorder_capacity;
  Printf.bprintf buf "    \"spt_informational\": {\n";
  Printf.bprintf buf "      \"policy\": \"greedy-spt\",\n";
  Printf.bprintf buf "      \"events\": %d,\n" events;
  Printf.bprintf buf "      \"recorded_events\": %d,\n" recorder_events;
  Printf.bprintf buf "      \"recorder_off_seconds\": %.6f,\n" t_norec;
  Printf.bprintf buf "      \"recorder_on_seconds\": %.6f,\n" t_rec;
  Printf.bprintf buf "      \"recorder_off_events_per_sec\": %.1f,\n"
    (float_of_int events /. t_norec);
  bprintf_gc buf ~indent:"      " ~key:"recorder_off_gc" gc_flat;
  Printf.bprintf buf "      \"recorder_on_events_per_sec\": %.1f,\n" (float_of_int events /. t_rec);
  bprintf_gc buf ~indent:"      " ~key:"recorder_on_gc" gc_rec_on;
  Printf.bprintf buf "      \"overhead_ratio\": %.4f\n    },\n" rec_overhead_spt;
  Printf.bprintf buf "    \"gate\": {\n";
  Printf.bprintf buf "      \"policy\": \"flow-reject\",\n";
  Printf.bprintf buf "      \"events\": %d,\n" fr_gate_events;
  Printf.bprintf buf "      \"estimator\": \"median-pair-ratio\",\n";
  Printf.bprintf buf "      \"pairs\": %d,\n" rec_pairs;
  Printf.bprintf buf "      \"recorder_off_events_per_sec\": %.1f,\n"
    (float_of_int fr_gate_events /. !t_fr_norec);
  bprintf_gc buf ~indent:"      " ~key:"recorder_off_gc" gc_fr_off;
  Printf.bprintf buf "      \"recorder_on_events_per_sec\": %.1f,\n"
    (float_of_int fr_gate_events /. !t_fr_rec);
  bprintf_gc buf ~indent:"      " ~key:"recorder_on_gc" gc_fr_on;
  Printf.bprintf buf "      \"overhead_ratio\": %.4f,\n" rec_overhead;
  Printf.bprintf buf "      \"overhead_gate\": %.2f\n    },\n" rec_overhead_gate;
  Printf.bprintf buf "    \"byte_identical\": true\n  },\n";
  Printf.bprintf buf "  \"flow_reject_microbench\": {\n";
  Printf.bprintf buf "    \"n\": %d,\n" (Sched_model.Instance.n fr_inst);
  Printf.bprintf buf "    \"indexed_seconds\": %.6f,\n" t_fr_opt;
  Printf.bprintf buf "    \"seed_scan_seconds\": %.6f,\n" t_fr_ref;
  Printf.bprintf buf "    \"speedup\": %.3f\n  },\n" (t_fr_ref /. t_fr_opt);
  Printf.bprintf buf "  \"fuzz_preflight\": {\n";
  Printf.bprintf buf "    \"budget\": %d,\n" fuzz_budget;
  Printf.bprintf buf "    \"evaluated\": %d,\n" fuzz_head.Sched_fuzz.Fuzz.evaluated;
  Printf.bprintf buf "    \"coverage\": %d,\n" fuzz_head.Sched_fuzz.Fuzz.coverage;
  Printf.bprintf buf "    \"failures\": %d,\n" (List.length fuzz_head.Sched_fuzz.Fuzz.failures);
  Printf.bprintf buf "    \"widths\": \"%s\",\n"
    (String.concat "," (List.map string_of_int fuzz_widths));
  Printf.bprintf buf "    \"byte_identical\": true\n  },\n";
  Printf.bprintf buf "  \"end_to_end\": {\n";
  Printf.bprintf buf "    \"policy\": \"flow-reject\",\n";
  Printf.bprintf buf "    \"n\": %d,\n    \"m\": 16,\n" e2e_n;
  Printf.bprintf buf "    \"wall_seconds\": %.6f,\n" t_e2e;
  Printf.bprintf buf "    \"jobs_per_sec\": %.1f,\n" (float_of_int e2e_n /. t_e2e);
  bprintf_gc buf ~indent:"    " ~key:"gc" gc_e2e;
  Printf.bprintf buf "    \"gc_note\": \"gc deltas are Gc.quick_stat on the submitting domain\"\n  },\n";
  Printf.bprintf buf "  \"parallel_batch\": {\n";
  Printf.bprintf buf "    \"runs\": 8,\n";
  List.iteri
    (fun k (domains, dt) ->
      Printf.bprintf buf "    \"domains_%d_seconds\": %.6f%s\n" domains dt
        (if k = List.length par_times - 1 then "" else ","))
    par_times;
  Buffer.add_string buf "  },\n";
  Printf.bprintf buf "  \"pool_scaling\": {\n";
  Printf.bprintf buf "    \"suite\": \"%s\",\n" (String.concat "," suite_ids);
  Printf.bprintf buf "    \"recommended_domains\": %d,\n" recommended;
  Printf.bprintf buf "    \"driver_events\": %.0f,\n" suite_events;
  Printf.bprintf buf "    \"sequential_seconds\": %.6f,\n" t_suite_seq;
  Printf.bprintf buf "    \"sequential_events_per_sec\": %.1f,\n" (suite_events /. t_suite_seq);
  bprintf_gc buf ~indent:"    " ~key:"sequential_gc" gc_suite_seq;
  List.iter
    (fun (d, dt, gc) ->
      Printf.bprintf buf "    \"domains_%d_seconds\": %.6f,\n" d dt;
      Printf.bprintf buf "    \"domains_%d_speedup\": %.3f,\n" d (t_suite_seq /. dt);
      Printf.bprintf buf "    \"domains_%d_events_per_sec\": %.1f,\n" d (suite_events /. dt);
      bprintf_gc buf ~indent:"    " ~key:(Printf.sprintf "domains_%d_gc" d) gc)
    pool_times;
  Printf.bprintf buf
    "    \"regression_note\": \"BENCH_pr6.json recorded domains_4 at 496278 ev/s vs 1085708 ev/s \
     sequential on this suite.  The gc fields (submitting-domain Gc.quick_stat deltas) attribute \
     the within-run gap to per-seed tasks too small to amortize submission while every extra \
     domain multiplies minor-heap pressure — not to slower code.  The sharded section \
     parallelizes inside one run instead of across seeds, which is the fix for this regime.\",\n";
  Printf.bprintf buf "    \"byte_identical\": true\n  },\n";
  Printf.bprintf buf "  \"sharded\": {\n";
  Printf.bprintf buf "    \"identity_runs\": %d,\n" !shard_cases;
  Printf.bprintf buf "    \"shard_counts\": \"%s\",\n"
    (String.concat "," (List.map string_of_int shard_counts));
  Printf.bprintf buf "    \"byte_identical\": true,\n";
  Printf.bprintf buf "    \"cluster\": {\n";
  Printf.bprintf buf "      \"policy\": \"flow-reject\",\n";
  Printf.bprintf buf "      \"n\": %d,\n      \"m\": %d,\n      \"events\": %d,\n" cl_n cl_m
    cl_events;
  Printf.bprintf buf "      \"seq_seconds\": %.6f,\n" t_s1;
  Printf.bprintf buf "      \"seq_events_per_sec\": %.1f,\n" (float_of_int cl_events /. t_s1);
  bprintf_gc buf ~indent:"      " ~key:"seq_gc" gc_s1;
  Printf.bprintf buf "      \"s4_seconds\": %.6f,\n" t_s4;
  Printf.bprintf buf "      \"s4_events_per_sec\": %.1f,\n" (float_of_int cl_events /. t_s4);
  bprintf_gc buf ~indent:"      " ~key:"s4_gc" gc_s4;
  Printf.bprintf buf "      \"speedup\": %.3f,\n" shard_speedup;
  Printf.bprintf buf "      \"speedup_gate\": 2.0,\n";
  Printf.bprintf buf "      \"gated\": %b\n    },\n" (recommended >= 4);
  (match cluster_point with
  | Error reason ->
      Printf.bprintf buf
        "    \"cluster_scale_point\": { \"skipped\": true, \"reason\": \"%s\" }\n" reason
  | Ok (cn, cm, t_gen, t_big, gc_big, big_events, ratio, rej_pct, pool_domains) ->
      Printf.bprintf buf "    \"cluster_scale_point\": {\n";
      Printf.bprintf buf "      \"policy\": \"flow-reject\",\n";
      Printf.bprintf buf "      \"n\": %d,\n      \"m\": %d,\n      \"shards\": 4,\n" cn cm;
      Printf.bprintf buf "      \"pool_domains\": %d,\n" pool_domains;
      Printf.bprintf buf "      \"gen_seconds\": %.3f,\n" t_gen;
      Printf.bprintf buf "      \"run_seconds\": %.3f,\n" t_big;
      Printf.bprintf buf "      \"events\": %d,\n" big_events;
      Printf.bprintf buf "      \"events_per_sec\": %.1f,\n" (float_of_int big_events /. t_big);
      bprintf_gc buf ~indent:"      " ~key:"gc" gc_big;
      Printf.bprintf buf "      \"ratio_vs_volume_lb\": %.4f,\n" ratio;
      Printf.bprintf buf "      \"rejected_pct\": %.2f\n    }\n" rej_pct);
  Printf.bprintf buf "  },\n";
  Printf.bprintf buf "  \"streaming\": {\n";
  Printf.bprintf buf "    \"identity_runs\": %d,\n" !stream_cases;
  Printf.bprintf buf "    \"chunk_sizes\": \"1,7\",\n";
  Printf.bprintf buf "    \"byte_identical\": true,\n";
  Printf.bprintf buf "    \"session_overhead\": {\n";
  Printf.bprintf buf "      \"policy\": \"flow-reject\",\n";
  Printf.bprintf buf "      \"n\": %d,\n      \"m\": %d,\n      \"chunk\": 64,\n" so_n so_m;
  Printf.bprintf buf "      \"events\": %d,\n" so_events;
  Printf.bprintf buf "      \"batch_seconds\": %.6f,\n" t_so_batch;
  Printf.bprintf buf "      \"batch_events_per_sec\": %.1f,\n"
    (float_of_int so_events /. t_so_batch);
  Printf.bprintf buf "      \"stream_seconds\": %.6f,\n" t_so_stream;
  Printf.bprintf buf "      \"stream_events_per_sec\": %.1f,\n"
    (float_of_int so_events /. t_so_stream);
  bprintf_gc buf ~indent:"      " ~key:"stream_gc" gc_so;
  Printf.bprintf buf "      \"overhead_ratio\": %.4f\n    },\n" so_overhead;
  Printf.bprintf buf "    \"rolling_retirement\": {\n";
  Printf.bprintf buf "      \"policy\": \"flow-reject\",\n";
  Printf.bprintf buf "      \"n\": %d,\n      \"m\": %d,\n" st_n st_m;
  Printf.bprintf buf "      \"retire_seconds\": %.3f,\n" t_st_ret;
  Printf.bprintf buf "      \"retire_jobs_per_sec\": %.1f,\n" (float_of_int st_n /. t_st_ret);
  Printf.bprintf buf "      \"retire_peak_live_words\": %d,\n" words_ret;
  Printf.bprintf buf "      \"retire_words_per_job\": %.2f,\n" wpj_ret;
  Printf.bprintf buf "      \"keep_seconds\": %.3f,\n" t_st_keep;
  Printf.bprintf buf "      \"keep_peak_live_words\": %d,\n" words_keep;
  Printf.bprintf buf "      \"keep_words_per_job\": %.2f,\n" wpj_keep;
  Printf.bprintf buf "      \"keep_segments_materialized\": %d,\n" segs_keep;
  Printf.bprintf buf "      \"retire_vs_keep_ratio\": %.4f,\n" stream_mem_ratio;
  Printf.bprintf buf "      \"words_per_job_ceiling\": %.1f,\n" stream_wpj_ceiling;
  Printf.bprintf buf "      \"ratio_gate\": %.2f,\n" stream_ratio_gate;
  Printf.bprintf buf
    "      \"note\": \"peak live words (Gc.full_major samples every n/10 feeds) minus the \
     pre-open baseline; the retire stream keeps the flat columns but no segments, job boxes or \
     fed list\",\n";
  Printf.bprintf buf "      \"metrics_bit_identical\": true\n    }\n";
  Printf.bprintf buf "  }\n}\n";
  let oc = open_out out_path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "  wrote %s\n%!" out_path;

  (* 3d: compare against the newest previous baseline (BENCH_*.json other
     than the file just written, newest by name — the PR number sorts).
     Skipped in quick mode and against quick-mode baselines: those wall
     times are not comparable.  A >2x throughput drop fails the check. *)
  (match newest_baseline ~excluding:out_path with
  | None -> Printf.printf "  no previous BENCH_*.json baseline to compare against\n%!"
  | Some file ->
      let content = In_channel.with_open_text file In_channel.input_all in
      let base_quick =
        match scan_json_field ~key:"quick" content with Some s -> s = "true" | None -> false
      in
      let base_eps =
        match scan_json_field ~key:"indexed_events_per_sec" content with
        | Some s -> float_of_string_opt s
        | None -> None
      in
      (match base_eps with
      | None -> Printf.printf "  baseline %s has no indexed_events_per_sec; skipping compare\n%!" file
      | Some base ->
          let current = float_of_int events /. t_opt in
          Printf.printf "  baseline %s: %.0f ev/s, current %.0f ev/s (%.2fx)\n%!" file base current
            (current /. base);
          if quick || base_quick then
            Printf.printf "  (quick mode involved; baseline comparison not gated)\n%!"
          else if current < 0.5 *. base then begin
            Printf.eprintf "FAIL: throughput dropped more than 2x vs baseline %s\n%!" file;
            exit 1
          end));

  if speedup < 2.0 then begin
    Printf.eprintf "FAIL: driver-event speedup %.2fx is below the 2x gate\n%!" speedup;
    exit 1
  end;
  if tel_speedup < 2.0 then begin
    Printf.eprintf "FAIL: telemetry-on speedup %.2fx is below the 2x gate\n%!" tel_speedup;
    exit 1
  end;
  Printf.printf "  PASS: driver-event speedup %.1fx (%.1fx with telemetry) >= 2x gate\n%!" speedup
    tel_speedup;
  (* Flat-core gates: 2x the PR-4 recorded throughput, and the
     allocations-per-event ceiling that pins the zero-allocation steady
     state (the residue is the policy-facing interface, not the loop). *)
  if flat_gain < 2.0 then begin
    Printf.eprintf "FAIL: flat core %.0f ev/s is %.2fx the PR-4 baseline %.0f ev/s, below the 2x \
                    gate\n\
                    %!"
      flat_eps flat_gain pr4_indexed_events_per_sec;
    exit 1
  end;
  if allocs_per_event > allocs_per_event_gate then begin
    Printf.eprintf "FAIL: flat core allocates %.1f words/event, over the %.1f ceiling\n%!"
      allocs_per_event allocs_per_event_gate;
    exit 1
  end;
  Printf.printf
    "  PASS: flat core %.1fx over PR-4 baseline (>= 2x gate), %.1f words/event <= %.1f ceiling\n%!"
    flat_gain allocs_per_event allocs_per_event_gate;
  (* Recorder gate: on the paper's flow-reject policy, the hot-loop ring
     writes must cost at most 5% of the recorder-off throughput (median
     of order-alternated pair ratios; schedule byte-identity for both
     recorder policies was checked above). *)
  if rec_overhead > rec_overhead_gate then begin
    Printf.eprintf
      "FAIL: flight recorder overhead %.3fx exceeds the %.2fx gate (%.0f ev/s on vs %.0f ev/s \
       off, flow-reject)\n\
       %!"
      rec_overhead rec_overhead_gate
      (float_of_int fr_gate_events /. !t_fr_rec)
      (float_of_int fr_gate_events /. !t_fr_norec);
    exit 1
  end;
  Printf.printf
    "  PASS: flight recorder overhead %.3fx <= %.2fx gate (flow-reject, median of %d pairs)\n%!"
    rec_overhead rec_overhead_gate rec_pairs;
  (* Pool gates.  Width 1 must stay close to sequential (the pool's whole
     overhead budget); the 2x-at-4-domains gate only means something on a
     host that has 4 cores to give. *)
  let pool_time d =
    List.find_map (fun (d', dt, _) -> if d' = d then Some dt else None) pool_times
  in
  let t_pool1 = Option.get (pool_time 1) in
  if t_pool1 > 2.0 *. t_suite_seq then begin
    Printf.eprintf "FAIL: width-1 pool %.3f s exceeds 2x sequential %.3f s\n%!" t_pool1
      t_suite_seq;
    exit 1
  end;
  (match pool_time 4 with
  | Some t4 when recommended >= 4 ->
      if t_suite_seq /. t4 < 2.0 then begin
        Printf.eprintf "FAIL: suite speedup at 4 domains %.2fx is below the 2x gate\n%!"
          (t_suite_seq /. t4);
        exit 1
      end
      else Printf.printf "  PASS: suite speedup at 4 domains %.1fx >= 2x gate\n%!" (t_suite_seq /. t4)
  | _ ->
      Printf.printf "  (4-domain speedup gate skipped: host has %d recommended domain%s)\n%!"
        recommended
        (if recommended = 1 then "" else "s"));
  Printf.printf "  PASS: width-1 pool overhead %.2fx <= 2x sequential; tables and telemetry \
                 byte-identical at every width\n%!"
    (t_pool1 /. t_suite_seq);
  (* Sharded gate: within-run sharding at S=4 on a 4-domain pool must
     halve the sequential tick's wall time on the cluster-shaped
     workload — but only where 4 cores exist to halve it with.  On
     narrower hosts (this includes single-core CI runners, where the
     4-domain pool is pure oversubscription) the measured figure is
     recorded in the JSON and the gate reports itself skipped.
     Byte-identity at every S was already enforced above, fail-fast. *)
  if recommended >= 4 then
    if shard_speedup < 2.0 then begin
      Printf.eprintf "FAIL: sharded S=4 speedup %.2fx is below the 2x gate (%.0f ev/s vs %.0f \
                      ev/s sequential)\n\
                      %!"
        shard_speedup
        (float_of_int cl_events /. t_s4)
        (float_of_int cl_events /. t_s1);
      exit 1
    end
    else
      Printf.printf "  PASS: sharded S=4 speedup %.1fx >= 2x gate (%d identity runs byte-identical)\n%!"
        shard_speedup !shard_cases
  else
    Printf.printf
      "  (sharded 2x gate skipped: host has %d recommended domain%s; measured %.2fx, %d identity \
       runs byte-identical)\n\
       %!"
      recommended
      (if recommended = 1 then "" else "s")
      shard_speedup !shard_cases;
  (* Streaming gates.  Byte-identity and metric-identity were enforced
     fail-fast above; here the resident-memory claim: the retire-mode
     stream's peak live words per fed job must stay under an absolute
     ceiling (no O(n)-per-job retention beyond the flat columns) and
     well under the keep-everything stream's figure (retirement is
     actually retiring something). *)
  if wpj_ret > stream_wpj_ceiling then begin
    Printf.eprintf
      "FAIL: retire-mode stream peaks at %.1f live words/job, over the %.1f ceiling (n=%d)\n%!"
      wpj_ret stream_wpj_ceiling st_n;
    exit 1
  end;
  if stream_mem_ratio > stream_ratio_gate then begin
    Printf.eprintf
      "FAIL: retire-mode peak %.1f words/job is %.2fx the keep-everything %.1f words/job, over \
       the %.2f gate\n\
       %!"
      wpj_ret stream_mem_ratio wpj_keep stream_ratio_gate;
    exit 1
  end;
  Printf.printf
    "  PASS: rolling retirement holds %.1f words/job <= %.1f ceiling and %.2fx <= %.2fx of the \
     keep-everything stream (%d streaming identity runs byte-identical)\n\
     %!"
    wpj_ret stream_wpj_ceiling stream_mem_ratio stream_ratio_gate !stream_cases

let () =
  let argv = Array.to_list Sys.argv in
  if List.mem "--regression" argv then
    let rec named = function
      | "--out" :: path :: _ -> Some path
      | _ :: rest -> named rest
      | [] -> None
    in
    let out =
      match named argv with
      | Some path -> path
      | None -> (
          (* Back-compat: a bare positional path still works. *)
          match
            List.filter (fun a -> not (String.length a > 0 && a.[0] = '-')) (List.tl argv)
          with
          | [ path ] -> path
          | _ -> "BENCH_pr10.json")
    in
    run_regression out
  else begin
    run_experiments ();
    run_benchmarks ()
  end
