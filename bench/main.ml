(* Benchmark harness.

   Part 1 regenerates every experiment table of the reproduction (E1..E9,
   the paper's Theorems 1-3 and Lemmas 1-2 plus the analysis machinery) at
   full scale — these are the "tables and figures" recorded in
   EXPERIMENTS.md.

   Part 2 runs one Bechamel micro-benchmark per experiment's core
   computation, plus a simulator-throughput benchmark (E10).

   Run with: dune exec bench/main.exe
   (set REJSCHED_QUICK=1 for a fast smoke run) *)

open Bechamel
open Toolkit

let quick = Sys.getenv_opt "REJSCHED_QUICK" <> None

(* ------------------------------------------------------------------ *)
(* Part 1: experiment tables                                           *)

let run_experiments () =
  List.iter
    (fun (e, tables) ->
      Printf.printf "[%s] %s (reproduces: %s)\n" e.Sched_experiments.Registry.id
        e.Sched_experiments.Registry.title e.Sched_experiments.Registry.reproduces;
      List.iter Sched_stats.Table.print tables)
    (Sched_experiments.Registry.run_all ~quick ())

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks                                   *)

let make_flow_instance n m seed =
  Sched_workload.Gen.instance (Sched_workload.Suite.flow_pareto ~n ~m) ~seed

let bench_tests () =
  let module FR = Rejection.Flow_reject in
  let module FE = Rejection.Flow_energy_reject in
  let flow_inst = make_flow_instance 1000 8 1 in
  let flow_small = make_flow_instance 200 4 1 in
  let weighted =
    Sched_workload.Gen.instance (Sched_workload.Suite.weighted_energy ~n:300 ~m:4 ~alpha:3.) ~seed:1
  in
  let deadline =
    Sched_workload.Gen.instance (Sched_workload.Suite.deadline_energy ~n:40 ~m:2 ~alpha:3.) ~seed:1
  in
  let throughput_inst = make_flow_instance (if quick then 10_000 else 50_000) 16 2 in
  [
    Test.make ~name:"e1:thm1-flow n=1000 m=8"
      (Staged.stage (fun () -> ignore (FR.run (FR.config ~eps:0.25 ()) flow_inst)));
    Test.make ~name:"e2:lemma1-adversary L=16"
      (Staged.stage (fun () ->
           let run i = fst (FR.run (FR.config ~eps:0.2 ()) i) in
           ignore (Sched_workload.Adversary_flow.run_two_phase ~run ~eps:0.2 ~l:16.)));
    Test.make ~name:"e3:thm2-flow+energy n=300 m=4"
      (Staged.stage (fun () -> ignore (FE.run (FE.config ~eps:0.25 ()) weighted)));
    Test.make ~name:"e4:thm3-energy-greedy n=40 m=2"
      (Staged.stage (fun () -> ignore (Rejection.Energy_config_greedy.run deadline)));
    Test.make ~name:"e5:lemma2-adversary alpha=4"
      (Staged.stage (fun () ->
           let st = Rejection.Energy_config_greedy.continuous ~alpha:4. () in
           let alg =
             {
               Sched_workload.Adversary_energy.name = "greedy";
               place =
                 (fun ~release ~deadline ~volume ->
                   Rejection.Energy_config_greedy.continuous_place st ~release ~deadline ~volume);
             }
           in
           ignore (Sched_workload.Adversary_energy.run ~alpha:4. alg)));
    Test.make ~name:"e6:dual-certificate n=200"
      (Staged.stage (fun () ->
           let trace = Sched_sim.Trace.create () in
           let schedule, st = FR.run ~trace (FR.config ~eps:0.25 ()) flow_small in
           ignore
             (Sched_lp.Dual_fit.certify ~eps:(FR.effective_eps st) ~lambdas:(FR.lambdas st)
                flow_small trace schedule)));
    Test.make ~name:"e7:smoothness lambda-search"
      (Staged.stage (fun () ->
           let rng = Sched_stats.Rng.create 1 in
           ignore
             (Sched_energy.Smooth.required_lambda ~trials:200
                (Sched_energy.Power.polynomial ~alpha:3.)
                ~mu:(2. /. 3.) rng)));
    Test.make ~name:"e8:thm1-rule2-only n=1000"
      (Staged.stage (fun () -> ignore (FR.run (FR.config ~eps:0.25 ~rule1:false ()) flow_inst)));
    Test.make ~name:"e9:speed-augmented n=1000"
      (Staged.stage (fun () ->
           ignore (Sched_baselines.Speed_augmented.run ~eps_s:0.5 ~eps_r:0.25 flow_inst)));
    Test.make ~name:"e10:driver-throughput n=50k m=16"
      (Staged.stage (fun () -> ignore (FR.run (FR.config ~eps:0.25 ()) throughput_inst)));
    Test.make ~name:"aux:local-search n=120"
      (Staged.stage (fun () ->
           let inst = make_flow_instance 120 3 5 in
           ignore (Sched_baselines.Local_search.improve inst)));
    Test.make ~name:"aux:oa-online n=200"
      (Staged.stage (fun () ->
           let inst =
             Sched_workload.Gen.instance
               (Sched_workload.Suite.deadline_energy ~n:200 ~m:1 ~alpha:3.)
               ~seed:3
           in
           ignore (Sched_energy.Oa.energy ~alpha:3. (Sched_energy.Yds.of_instance inst ~machine:0))));
    Test.make ~name:"aux:swf-parse"
      (Staged.stage (fun () -> ignore (Sched_workload.Swf.parse ~m:4 Sched_workload.Swf.example)));
  ]

let run_benchmarks () =
  let tests = bench_tests () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if quick then 0.2 else 1.0))
      ~stabilize:false ()
  in
  Printf.printf "\n== Bechamel micro-benchmarks (monotonic clock) ==\n%!";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-36s %12.3f ms/run\n%!" name (est /. 1e6)
          | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
        analyzed)
    tests;
  (* A direct jobs/second figure for the throughput story (E10). *)
  let inst = make_flow_instance (if quick then 20_000 else 100_000) 16 3 in
  let module FR = Rejection.Flow_reject in
  let t0 = Sys.time () in
  let schedule, _ = FR.run (FR.config ~eps:0.25 ()) inst in
  let dt = Sys.time () -. t0 in
  let n = float_of_int (Sched_model.Instance.n inst) in
  Printf.printf "\n== E10: simulator throughput ==\n";
  Printf.printf "  %d jobs on 16 machines in %.3f s -> %.0f jobs/s (~%.0f events/s)\n"
    (int_of_float n) dt (n /. dt)
    (n *. 3. /. dt);
  ignore schedule

let () =
  run_experiments ();
  run_benchmarks ()
