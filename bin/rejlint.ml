let () =
  let args = Array.to_list Sys.argv |> List.tl in
  exit (Rejlint_lib.Driver.run ~out:print_string args)
