(* rejsched: command-line front end.

   Subcommands:
     run         run one policy on one synthetic workload, print metrics
     serve       long-lived streaming scheduler: NDJSON arrivals in, decisions out
     experiment  regenerate one (or all) of the paper's experiment tables
     adversary   play a lower-bound game (Lemma 1 or Lemma 2)
     fuzz        coverage-guided oracle fuzzing of every registered policy
     trace       replay an instance under the flight recorder, export traces
     bounds      print the paper's theoretical constants for given eps/alpha
     list        list workloads, policies and experiments

   Exit codes: 0 success, 2 usage error, 3 oracle violation found by fuzz. *)

open Cmdliner
open Sched_model
module Gen = Sched_workload.Gen
module Suite = Sched_workload.Suite

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let workload_names = [ "uniform"; "pareto"; "bimodal"; "restricted"; "related"; "clustered" ]

let workload_of_name ~n ~m = function
  | "uniform" -> Suite.flow_uniform ~n ~m
  | "pareto" -> Suite.flow_pareto ~n ~m
  | "bimodal" -> Suite.flow_bimodal ~n ~m
  | "restricted" -> Suite.flow_restricted ~n ~m
  | "related" -> Suite.flow_related ~n ~m
  | "clustered" -> Suite.flow_clustered ~n ~m
  | other -> invalid_arg (Printf.sprintf "unknown workload %S" other)

let workload_arg =
  let doc = "Workload family: " ^ String.concat ", " workload_names ^ "." in
  Arg.(value & opt string "uniform" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let n_arg = Arg.(value & opt int 200 & info [ "n"; "jobs" ] ~docv:"N" ~doc:"Number of jobs.")
let m_arg = Arg.(value & opt int 4 & info [ "m"; "machines" ] ~docv:"M" ~doc:"Number of machines.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let eps_arg =
  Arg.(value & opt float 0.25 & info [ "eps" ] ~docv:"EPS" ~doc:"Rejection budget knob in (0,1).")

let alpha_arg =
  Arg.(value & opt float 3.0 & info [ "alpha" ] ~docv:"ALPHA" ~doc:"Power exponent (P(s)=s^alpha).")

let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of aligned tables.")

let domains_arg =
  Arg.(value & opt (some int) None
       & info [ "domains" ] ~docv:"N"
           ~doc:"Width of the process's domain pool (parallel workers for per-seed replication \
                 and 'experiment --all').  Defaults to the machine's recommended domain count; \
                 1 forces sequential execution.  Results are byte-identical for every width.")

(* Width flags reject non-positive values as Invalid_argument: the
   top-level handler turns that into stderr + exit 2, the same path as
   every other usage error. *)
let apply_domains = function
  | None -> ()
  | Some d ->
      if d < 1 then invalid_arg (Printf.sprintf "--domains must be >= 1 (got %d)" d);
      Sched_stats.Pool.set_default_domains d

let shards_arg =
  Arg.(value & opt (some int) None
       & info [ "shards" ] ~docv:"S"
           ~doc:"Run the sharded within-run driver with S machine shards (deterministic \
                 two-phase tick; schedules and metrics are byte-identical for every S).  \
                 Phase-1 dispatch proposals run on the domain pool when S > 1; see --domains.")

let validate_shards = function
  | Some s when s < 1 -> invalid_arg (Printf.sprintf "--shards must be >= 1 (got %d)" s)
  | v -> v

let impl_arg =
  Arg.(
    value
    & vflag None
        [
          ( Some Sched_sim.Driver.Flat,
            info [ "flat" ]
              ~doc:"Run on the flat (struct-of-arrays) driver core.  The default." );
          ( Some Sched_sim.Driver.Boxed,
            info [ "no-flat" ]
              ~doc:"Run on the boxed reference driver core instead of the flat one — the \
                    escape hatch for bisecting a suspected flat-core divergence.  Schedules, \
                    traces and metrics are byte-identical on both cores; only throughput \
                    differs." );
        ])

let apply_impl = function
  | None -> ()
  | Some impl -> Sched_sim.Driver.set_default_impl impl

let sizes_arg =
  let names = List.map fst Suite.dist_menu in
  let doc = "Override the workload's size distribution: " ^ String.concat ", " names ^ "." in
  Arg.(value & opt (some string) None & info [ "sizes" ] ~docv:"DIST" ~doc)

let apply_sizes gen = function
  | None -> gen
  | Some name -> (
      match List.assoc_opt name Suite.dist_menu with
      | Some dist -> { gen with Gen.sizes = dist }
      | None ->
          prerr_endline ("unknown size distribution: " ^ name);
          exit 1)

(* Single sink-resolution point: every FILE-taking output flag
   (--telemetry, --trace-ndjson, the trace subcommand's --out-ndjson and
   --out-chrome) means stdout when FILE is '-', a fresh file otherwise. *)
let write_output target content =
  match target with
  | "-" -> print_string content
  | path -> Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc content)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)

let policy_names = [ "thm1"; "thm1-rule1"; "thm1-rule2"; "fifo"; "spt"; "immediate"; "esa" ]

let run_cmd =
  let policy_arg =
    let doc = "Policy: " ^ String.concat ", " policy_names ^ "." in
    Arg.(value & opt string "thm1" & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)
  in
  let gantt_arg = Arg.(value & flag & info [ "gantt" ] ~doc:"Draw an ASCII Gantt chart.") in
  let svg_arg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE" ~doc:"Write an SVG Gantt chart of the schedule to FILE.")
  in
  let load_arg =
    Arg.(value & opt (some string) None
         & info [ "load" ] ~docv:"FILE" ~doc:"Load the instance from FILE instead of generating it.")
  in
  let swf_arg =
    Arg.(value & opt (some string) None
         & info [ "swf" ] ~docv:"FILE"
             ~doc:"Import the instance from an SWF cluster trace (Parallel Workloads Archive \
                   format); -m selects the fleet size.")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE" ~doc:"Save the (generated) instance to FILE.")
  in
  let segments_arg =
    Arg.(value & opt (some string) None
         & info [ "segments" ] ~docv:"FILE" ~doc:"Write the schedule's segments as CSV to FILE.")
  in
  let telemetry_arg =
    Arg.(value & opt (some string) None
         & info [ "telemetry" ] ~docv:"FILE"
             ~doc:"Record run telemetry (decision counters, per-machine queue gauges, phase \
                   spans) and write the JSON snapshot to FILE, or to stdout when FILE is '-'.")
  in
  let trace_ndjson_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-ndjson" ] ~docv:"FILE"
             ~doc:"Stream the run's trace events to FILE as newline-delimited JSON (one \
                   schema-tagged object per event), or to stdout when FILE is '-'.")
  in
  let action policy workload n m seed eps csv gantt svg load swf save segments sizes telemetry
      trace_ndjson domains shards impl =
    apply_domains domains;
    let shards = validate_shards shards in
    apply_impl impl;
    let gen = apply_sizes (workload_of_name ~n ~m workload) sizes in
    let inst =
      match (load, swf) with
      | Some path, _ -> (
          match Serialize.load_instance ~path with
          | Ok inst -> inst
          | Error msg ->
              prerr_endline ("failed to load instance: " ^ msg);
              exit 1)
      | None, Some path -> (
          match Sched_workload.Swf.load ~path ~max_jobs:n ~m () with
          | Ok inst -> inst
          | Error msg ->
              prerr_endline ("failed to import SWF trace: " ^ msg);
              exit 1)
      | None, None -> Gen.instance gen ~seed
    in
    (match save with Some path -> Serialize.save_instance ~path inst | None -> ());
    let obs = match telemetry with None -> None | Some _ -> Some (Sched_obs.Obs.timed ()) in
    let trace = match trace_ndjson with None -> None | Some _ -> Some (Sched_sim.Trace.create ()) in
    let module FR = Rejection.Flow_reject in
    let module GD = Sched_baselines.Greedy_dispatch in
    let schedule =
      match shards with
      | None -> (
          match policy with
          | "thm1" -> fst (FR.run ?trace ?obs (FR.config ~eps ()) inst)
          | "thm1-rule1" -> fst (FR.run ?trace ?obs (FR.config ~eps ~rule2:false ()) inst)
          | "thm1-rule2" -> fst (FR.run ?trace ?obs (FR.config ~eps ~rule1:false ()) inst)
          | "fifo" -> Sched_sim.Driver.run_schedule ?trace ?obs GD.fifo inst
          | "spt" -> Sched_sim.Driver.run_schedule ?trace ?obs GD.spt inst
          | "immediate" ->
              Sched_sim.Driver.run_schedule ?trace ?obs
                (Sched_baselines.Immediate_reject.policy ~eps
                   (Sched_baselines.Immediate_reject.Largest_over 2.))
                inst
          | "esa" -> Sched_baselines.Speed_augmented.run ?trace ?obs ~eps_s:0.5 ~eps_r:eps inst
          | other -> invalid_arg (Printf.sprintf "unknown policy %S" other))
      | Some s -> (
          let sharded ?hooks p =
            let sch, _, _ =
              Sched_sim.Driver.run_sharded ?trace ?obs ?hooks
                ~pool:(Sched_stats.Pool.default ()) ~shards:s p inst
            in
            sch
          in
          match policy with
          | "thm1" -> sharded ~hooks:FR.hooks (FR.policy (FR.config ~eps ()))
          | "thm1-rule1" -> sharded ~hooks:FR.hooks (FR.policy (FR.config ~eps ~rule2:false ()))
          | "thm1-rule2" -> sharded ~hooks:FR.hooks (FR.policy (FR.config ~eps ~rule1:false ()))
          | "fifo" -> sharded ~hooks:GD.hooks GD.fifo
          | "spt" -> sharded ~hooks:GD.hooks GD.spt
          | "immediate" ->
              sharded
                (Sched_baselines.Immediate_reject.policy ~eps
                   (Sched_baselines.Immediate_reject.Largest_over 2.))
          | "esa" -> invalid_arg "--shards is not supported with policy \"esa\" (custom runner)"
          | other -> invalid_arg (Printf.sprintf "unknown policy %S" other))
    in
    (match (telemetry, obs) with
    | Some target, Some o -> write_output target (Sched_obs.Export.json (Sched_obs.Obs.registry o))
    | _ -> ());
    (match (trace_ndjson, trace) with
    | Some target, Some t -> write_output target (Sched_sim.Trace_export.to_ndjson t)
    | _ -> ());
    Schedule.assert_valid ~check_deadlines:false schedule;
    let f = Metrics.flow schedule in
    let r = Metrics.rejection schedule in
    let lb = Sched_baselines.Lower_bounds.volume inst in
    let table =
      Sched_stats.Table.create
        ~title:(Printf.sprintf "%s on %s (n=%d m=%d seed=%d)" policy workload n m seed)
        ~columns:[ "metric"; "value" ]
    in
    let cell = Sched_stats.Table.cell_float in
    Sched_stats.Table.add_rows table
      [
        [ "total flow (completed)"; cell f.Metrics.total ];
        [ "total flow (incl. rejected)"; cell f.Metrics.total_with_rejected ];
        [ "weighted flow"; cell f.Metrics.weighted ];
        [ "max flow"; cell f.Metrics.max_flow ];
        [ "mean flow"; cell f.Metrics.mean_flow ];
        [ "max stretch"; cell f.Metrics.max_stretch ];
        [ "makespan"; cell (Metrics.makespan schedule) ];
        [ "rejected jobs"; Sched_stats.Table.cell_int r.Metrics.count ];
        [ "rejected fraction"; cell r.Metrics.fraction ];
        [ "rejected mid-run"; Sched_stats.Table.cell_int r.Metrics.mid_run ];
        [ "volume lower bound"; cell lb.Sched_baselines.Lower_bounds.value ];
        [ "flow / volume-LB"; cell (f.Metrics.total_with_rejected /. lb.Sched_baselines.Lower_bounds.value) ];
        [ "Theorem 1 bound"; cell (Rejection.Bounds.flow_competitive ~eps) ];
      ];
    if csv then print_string (Sched_stats.Table.to_csv table) else Sched_stats.Table.print table;
    if gantt then print_string (Gantt.render schedule);
    (match svg with Some path -> Svg.save ~path schedule | None -> ());
    match segments with
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Serialize.segments_to_csv schedule))
    | None -> ()
  in
  let term =
    Term.(
      const action $ policy_arg $ workload_arg $ n_arg $ m_arg $ seed_arg $ eps_arg $ csv_arg
      $ gantt_arg $ svg_arg $ load_arg $ swf_arg $ save_arg $ segments_arg $ sizes_arg
      $ telemetry_arg $ trace_ndjson_arg $ domains_arg $ shards_arg $ impl_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one policy on one synthetic workload and print its metrics.") term

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)

let experiment_cmd =
  let id_arg =
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc:"Experiment id (e1..e9) or 'all'.")
  in
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Smaller instances, fewer seeds.") in
  let all_arg =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Run the whole suite (same as ID 'all'): experiments fan out as tasks on the \
                   domain pool, one per experiment; see --domains.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Also write every table as a CSV file into DIR (created if missing), plus a MANIFEST.")
  in
  let action id all quick csv out domains impl =
    apply_domains domains;
    apply_impl impl;
    let id = if all then "all" else id in
    let manifest = Buffer.create 256 in
    let slugify s =
      String.map (fun c -> if ('a' <= c && c <= 'z') || ('0' <= c && c <= '9') then c else '-')
        (String.lowercase_ascii s)
    in
    let write_csv eid t =
      match out with
      | None -> ()
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let name = Printf.sprintf "%s_%s.csv" eid (slugify (Sched_stats.Table.title t)) in
          let name = if String.length name > 80 then String.sub name 0 80 ^ ".csv" else name in
          Out_channel.with_open_text (Filename.concat dir name) (fun oc ->
              Out_channel.output_string oc (Sched_stats.Table.to_csv t));
          Buffer.add_string manifest
            (Printf.sprintf "%s,%s,%s\n" eid name (Sched_stats.Table.title t));
          (* When the first column is numeric (the E2/E5-style "figures"),
             also emit an SVG line chart of the remaining numeric columns. *)
          (match Sched_stats.Table.columns t with
          | xcol :: _ -> (
              match Sched_stats.Chart.of_table ~x:xcol t with
              | [] -> ()
              | series
                when List.exists (fun s -> List.length s.Sched_stats.Chart.points >= 2) series
                ->
                  let chart =
                    Sched_stats.Chart.render ~log_y:true
                      ~title:(Sched_stats.Table.title t) ~x_label:xcol ~y_label:"value" series
                  in
                  Sched_stats.Chart.save
                    ~path:(Filename.concat dir (Filename.remove_extension name ^ ".svg"))
                    chart
              | _ -> ())
          | [] -> ())
    in
    let emit eid tables =
      List.iter
        (fun t ->
          if csv then print_string (Sched_stats.Table.to_csv t) else Sched_stats.Table.print t;
          write_csv eid t)
        tables
    in
    (match id with
    | "all" ->
        List.iter
          (fun (e, tables) ->
            Printf.printf "[%s] %s (%s)\n" e.Sched_experiments.Registry.id
              e.Sched_experiments.Registry.title e.Sched_experiments.Registry.reproduces;
            emit e.Sched_experiments.Registry.id tables)
          (Sched_experiments.Registry.run_all ~quick ~pool:(Sched_stats.Pool.default ()) ())
    | id -> (
        match Sched_experiments.Registry.find id with
        | Some e -> emit id (e.Sched_experiments.Registry.run ~obs:None ~quick)
        | None ->
            prerr_endline ("unknown experiment: " ^ id);
            exit 1));
    match out with
    | Some dir when Buffer.length manifest > 0 ->
        Out_channel.with_open_text (Filename.concat dir "MANIFEST.csv") (fun oc ->
            Out_channel.output_string oc ("experiment,file,title\n" ^ Buffer.contents manifest))
    | _ -> ()
  in
  let term =
    Term.(
      const action $ id_arg $ all_arg $ quick_arg $ csv_arg $ out_arg $ domains_arg $ impl_arg)
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate the paper's experiment tables (E1..E9, see EXPERIMENTS.md).")
    term

(* ------------------------------------------------------------------ *)
(* adversary                                                           *)

let adversary_cmd =
  let game_arg =
    Arg.(value & pos 0 string "flow" & info [] ~docv:"GAME" ~doc:"'flow' (Lemma 1) or 'energy' (Lemma 2).")
  in
  let l_arg = Arg.(value & opt float 16. & info [ "L" ] ~docv:"L" ~doc:"Lemma 1 scale (Delta = L^2).") in
  let action game l eps alpha =
    match game with
    | "flow" ->
        let run_imm inst =
          Sched_sim.Driver.run_schedule
            (Sched_baselines.Immediate_reject.policy ~eps Sched_baselines.Immediate_reject.Never)
            inst
        in
        let run_thm1 inst =
          fst (Rejection.Flow_reject.run (Rejection.Flow_reject.config ~eps ()) inst)
        in
        let play name run =
          let result, schedule = Sched_workload.Adversary_flow.run_two_phase ~run ~eps ~l in
          Printf.printf
            "%-18s alg flow = %10.2f  adversary = %10.2f  ratio = %7.2f  (sqrt Delta = %.1f)\n"
            name
            (Metrics.flow schedule).Metrics.total_with_rejected
            result.Sched_workload.Adversary_flow.adversary_cost
            ((Metrics.flow schedule).Metrics.total_with_rejected
            /. result.Sched_workload.Adversary_flow.adversary_cost)
            (sqrt result.Sched_workload.Adversary_flow.delta)
        in
        play "immediate-never" run_imm;
        play "thm1-reject" run_thm1
    | "energy" ->
        let st = Rejection.Energy_config_greedy.continuous ~alpha () in
        let alg =
          {
            Sched_workload.Adversary_energy.name = "config-greedy";
            place =
              (fun ~release ~deadline ~volume ->
                Rejection.Energy_config_greedy.continuous_place st ~release ~deadline ~volume);
          }
        in
        let r = Sched_workload.Adversary_energy.run ~alpha alg in
        Printf.printf
          "alpha=%g rounds=%d alg-energy=%.3f adv-energy=%.3f ratio=%.3f  ((a/9)^a=%.4f, a^a=%.1f)\n"
          alpha r.Sched_workload.Adversary_energy.rounds r.Sched_workload.Adversary_energy.alg_energy
          r.Sched_workload.Adversary_energy.adv_energy
          (r.Sched_workload.Adversary_energy.alg_energy
          /. r.Sched_workload.Adversary_energy.adv_energy)
          (Rejection.Bounds.energy_lb ~alpha)
          (Rejection.Bounds.energy_competitive ~alpha)
    | other ->
        prerr_endline ("unknown game: " ^ other);
        exit 1
  in
  let term = Term.(const action $ game_arg $ l_arg $ eps_arg $ alpha_arg) in
  Cmd.v (Cmd.info "adversary" ~doc:"Play a lower-bound game (Lemma 1 or Lemma 2).") term

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)

let gen_cmd =
  let out_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Output path.")
  in
  let action out workload n m seed sizes =
    let inst = Gen.instance (apply_sizes (workload_of_name ~n ~m workload) sizes) ~seed in
    Serialize.save_instance ~path:out inst;
    Format.printf "%a -> %s@." Instance.pp_stats inst out
  in
  let term = Term.(const action $ out_arg $ workload_arg $ n_arg $ m_arg $ seed_arg $ sizes_arg) in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic instance and save it (load with run --load).")
    term

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)

let fuzz_cmd =
  let budget_arg =
    Arg.(value & opt int 60
         & info [ "budget" ] ~docv:"N" ~doc:"Number of scenarios to evaluate.")
  in
  let telemetry_arg =
    Arg.(value & opt (some string) None
         & info [ "telemetry" ] ~docv:"FILE"
             ~doc:"Record oracle telemetry (schedules audited, violations by checker) and write \
                   the JSON snapshot to FILE, or to stdout when FILE is '-'.")
  in
  let write_corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "write-corpus" ] ~docv:"DIR"
             ~doc:"Write every shrunk failure as a replayable fuzz-case file into DIR.")
  in
  let write_seed_corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "write-seed-corpus" ] ~docv:"DIR"
             ~doc:"Write the built-in seed corpus into DIR (the checked-in test/fuzz_corpus \
                   files are exactly this rendering) and exit without fuzzing.")
  in
  let quiet_arg = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-generation progress.") in
  let forensics_arg =
    Arg.(value & opt (some string) None
         & info [ "forensics" ] ~docv:"DIR"
             ~doc:"Write each failure's flight-recorder dump (the shrunk repro replayed with a \
                   recorder attached, last decisions as rejsched.trace/2 NDJSON) into DIR.")
  in
  let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755 in
  let write_case dir c =
    Out_channel.with_open_text
      (Filename.concat dir (Sched_fuzz.Corpus.filename c))
      (fun oc -> Out_channel.output_string oc (Sched_fuzz.Corpus.render c))
  in
  let action seed budget domains impl telemetry write_corpus write_seed_corpus forensics quiet =
    apply_impl impl;
    apply_domains domains;
    match write_seed_corpus with
    | Some dir ->
        ensure_dir dir;
        let cases = Sched_fuzz.Corpus.seeds () in
        List.iter (write_case dir) cases;
        Printf.printf "wrote %d seed cases to %s\n" (List.length cases) dir
    | None ->
        let obs = match telemetry with None -> None | Some _ -> Some (Sched_obs.Obs.create ()) in
        let cfg = Sched_fuzz.Fuzz.config ~budget ~seed () in
        let progress = if quiet then fun _ -> () else print_endline in
        let report =
          Sched_fuzz.Fuzz.run ~progress
            ?registry:(Option.map Sched_obs.Obs.registry obs)
            ~pool:(Sched_stats.Pool.default ()) cfg
        in
        print_string (Sched_fuzz.Fuzz.report_to_string report);
        (match (telemetry, obs) with
        | Some target, Some o -> write_output target (Sched_obs.Export.json (Sched_obs.Obs.registry o))
        | _ -> ());
        (match write_corpus with
        | Some dir when report.Sched_fuzz.Fuzz.failures <> [] ->
            ensure_dir dir;
            List.iteri
              (fun k (f : Sched_fuzz.Fuzz.failure) ->
                write_case dir
                  {
                    Sched_fuzz.Corpus.name = Printf.sprintf "fail-%02d-%s-%s" k f.policy f.prop;
                    policy = f.policy;
                    instance = f.shrunk;
                  })
              report.Sched_fuzz.Fuzz.failures
        | _ -> ());
        (match forensics with
        | Some dir when report.Sched_fuzz.Fuzz.failures <> [] ->
            ensure_dir dir;
            List.iteri
              (fun k (f : Sched_fuzz.Fuzz.failure) ->
                if f.forensics <> "" then
                  Out_channel.with_open_text
                    (Filename.concat dir
                       (Printf.sprintf "fail-%02d-%s-%s.trace.ndjson" k f.policy f.prop))
                    (fun oc -> Out_channel.output_string oc f.forensics))
              report.Sched_fuzz.Fuzz.failures
        | _ -> ());
        if report.Sched_fuzz.Fuzz.failures <> [] then begin
          (* The shrunk witnesses go to stderr in the Serialize format, so a
             failing CI run is immediately replayable. *)
          List.iter
            (fun (f : Sched_fuzz.Fuzz.failure) ->
              prerr_endline
                (Printf.sprintf "# policy %s, property %s, from %s: %s" f.policy f.prop
                   (Sched_fuzz.Scenario.label f.scenario) f.detail);
              prerr_string (Serialize.instance_to_string f.shrunk))
            report.Sched_fuzz.Fuzz.failures;
          exit 3
        end
  in
  let term =
    Term.(
      const action $ seed_arg $ budget_arg $ domains_arg $ impl_arg $ telemetry_arg $ write_corpus_arg
      $ write_seed_corpus_arg $ forensics_arg $ quiet_arg)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Fuzz every registered policy against the schedule-invariant oracle and metamorphic \
             properties; exits 3 with shrunk repro instances on stderr when a violation is found.")
    term

(* ------------------------------------------------------------------ *)
(* trace                                                               *)

let trace_cmd =
  let policy_arg =
    Arg.(value & opt (some string) None
         & info [ "p"; "policy" ] ~docv:"POLICY"
             ~doc:"Registry policy to replay (see 'list').  Defaults to the case file's policy \
                   with --case, to flow-reject otherwise.")
  in
  let case_arg =
    Arg.(value & opt (some string) None
         & info [ "case" ] ~docv:"FILE"
             ~doc:"Replay a fuzz-corpus case file (as written by fuzz --write-corpus); the \
                   case embeds both the instance and the policy.")
  in
  let load_arg =
    Arg.(value & opt (some string) None
         & info [ "load" ] ~docv:"FILE" ~doc:"Load the instance from FILE instead of generating it.")
  in
  let ring_cap_arg =
    Arg.(value & opt int Sched_obs.Recorder.default_capacity
         & info [ "ring-cap" ] ~docv:"N"
             ~doc:"Flight-recorder ring capacity; when the run emits more events the oldest \
                   are overwritten.")
  in
  let last_arg =
    Arg.(value & opt (some int) None
         & info [ "last" ] ~docv:"N" ~doc:"Keep only the newest N events in the NDJSON export.")
  in
  let out_ndjson_arg =
    Arg.(value & opt string "trace.ndjson"
         & info [ "out-ndjson" ] ~docv:"FILE"
             ~doc:"Write the rejsched.trace/2 NDJSON export to FILE, or to stdout when FILE \
                   is '-'.")
  in
  let out_chrome_arg =
    Arg.(value & opt string "trace-chrome.json"
         & info [ "out-chrome" ] ~docv:"FILE"
             ~doc:"Write the Chrome trace_event JSON (load in Perfetto / chrome://tracing) to \
                   FILE, or to stdout when FILE is '-'.")
  in
  let action policy case load workload n m seed sizes ring_cap last out_ndjson out_chrome impl =
    apply_impl impl;
    if ring_cap < 1 then begin
      prerr_endline "rejsched: --ring-cap must be >= 1";
      exit 2
    end;
    let inst, case_policy =
      match (case, load) with
      | Some path, _ -> (
          let text = In_channel.with_open_text path In_channel.input_all in
          match Sched_fuzz.Corpus.parse text with
          | Ok c -> (c.Sched_fuzz.Corpus.instance, Some c.Sched_fuzz.Corpus.policy)
          | Error msg ->
              prerr_endline ("failed to parse case file: " ^ msg);
              exit 1)
      | None, Some path -> (
          match Serialize.load_instance ~path with
          | Ok inst -> (inst, None)
          | Error msg ->
              prerr_endline ("failed to load instance: " ^ msg);
              exit 1)
      | None, None ->
          (Gen.instance (apply_sizes (workload_of_name ~n ~m workload) sizes) ~seed, None)
    in
    let policy_name =
      match (policy, case_policy) with
      | Some p, _ -> p
      | None, Some p -> p
      | None, None -> "flow-reject"
    in
    let entry =
      match Sched_experiments.Policy_registry.find policy_name with
      | Some e -> e
      | None ->
          prerr_endline ("rejsched: unknown registry policy: " ^ policy_name);
          exit 2
    in
    let recorder = Sched_obs.Recorder.create ~capacity:ring_cap () in
    ignore
      (entry.Sched_experiments.Policy_registry.run_impl ~recorder
         ~impl:(Sched_sim.Driver.default_impl ()) ~check:false inst);
    let ndjson = Sched_sim.Trace_export.recorder_to_ndjson ?last recorder in
    let chrome = Sched_sim.Perfetto.to_chrome ~machines:(Instance.m inst) recorder in
    (match Sched_sim.Perfetto.validate chrome with
    | Ok () -> ()
    | Error msg ->
        prerr_endline ("rejsched: internal error: invalid Chrome trace produced: " ^ msg);
        exit 1);
    write_output out_ndjson ndjson;
    write_output out_chrome chrome;
    Printf.eprintf "trace: %d events recorded (%d retained, %d dropped), policy %s -> %s, %s\n%!"
      (Sched_obs.Recorder.total recorder)
      (Sched_obs.Recorder.length recorder)
      (Sched_obs.Recorder.dropped recorder)
      policy_name out_ndjson out_chrome
  in
  let term =
    Term.(
      const action $ policy_arg $ case_arg $ load_arg $ workload_arg $ n_arg $ m_arg $ seed_arg
      $ sizes_arg $ ring_cap_arg $ last_arg $ out_ndjson_arg $ out_chrome_arg $ impl_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Replay an instance with the flight recorder attached and export the decision \
             trace as rejsched.trace/2 NDJSON plus Chrome trace_event JSON for Perfetto.")
    term

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

(* The streaming front end over Driver.Session: arrival records come in
   as NDJSON lines, decision events go out as rejsched.trace/1 lines the
   moment the batch that caused them is drained, and progress/summary
   records go out under the rejsched.serve/1 schema.  The engine is the
   same session the batch runner wraps, so the decisions are
   byte-identical to what 'rejsched run' would have made on the same
   jobs. *)

let serve_schema = "rejsched.serve/1"

(* One arrival per line:
     {"job": 0, "release": 1.5, "sizes": [2.0, 3.0], "weight": 1.0, "deadline": 4.0}
   weight and deadline are optional; a size may be the quoted token
   "Infinity" (a forbidden machine), matching what the NDJSON writers
   emit for non-finite floats. *)
let job_of_line line =
  let module N = Sched_obs.Ndjson in
  match N.parse line with
  | Error msg -> Error ("bad JSON: " ^ msg)
  | Ok j -> (
      let num name =
        match N.member name j with Some (N.Jnum v) -> Some v | _ -> None
      in
      match (num "job", num "release", N.member "sizes" j) with
      | Some id, Some release, Some (N.Jarr raw) -> (
          let size = function
            | N.Jnum v -> v
            | N.Jstr "Infinity" -> infinity
            | _ -> nan
          in
          let sizes = Array.of_list (List.map size raw) in
          if Array.exists Float.is_nan sizes then Error "sizes must be numbers"
          else
            match
              Job.create ~id:(int_of_float id) ~release ?weight:(num "weight")
                ?deadline:(num "deadline") ~sizes ()
            with
            | job -> Ok job
            | exception Invalid_argument msg -> Error msg)
      | _ -> Error "need numeric \"job\", \"release\" and a \"sizes\" array")

let serve_cmd =
  let module PR = Sched_experiments.Policy_registry in
  let policy_arg =
    Arg.(value & opt string "flow-reject"
         & info [ "p"; "policy" ] ~docv:"POLICY"
             ~doc:"Registry policy to serve under (see 'list').  Ignored with --restore: a \
                   snapshot names the policy it was frozen under.")
  in
  let input_arg =
    Arg.(value & opt string "-"
         & info [ "input" ] ~docv:"FILE"
             ~doc:"Read arrival NDJSON from FILE instead of stdin ('-').  Pipe 'tail -f' in \
                   for a live feed.")
  in
  let batch_arg =
    Arg.(value & opt int 1
         & info [ "batch" ] ~docv:"N"
             ~doc:"Drain and emit decisions every N arrivals (default 1: react to each \
                   arrival as it lands).")
  in
  let checkpoint_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"At end of input, freeze the live session into a snapshot at FILE ('-' for \
                   stdout) instead of closing it; a later 'serve --restore FILE' resumes \
                   byte-identically.")
  in
  let restore_arg =
    Arg.(value & opt (some string) None
         & info [ "restore" ] ~docv:"FILE"
             ~doc:"Resume from a snapshot written by --checkpoint.  Corrupt or truncated \
                   snapshots are rejected (exit 2) before any state is touched.")
  in
  let retire_arg =
    Arg.(value & flag
         & info [ "retire" ]
             ~doc:"Retire completed work into rolling aggregates instead of materializing the \
                   full schedule: memory stays bounded by the in-flight population, and the \
                   summary carries the same live metrics, but no schedule survives to audit.")
  in
  let action policy input batch checkpoint restore retire m =
    if batch < 1 then invalid_arg (Printf.sprintf "--batch must be >= 1 (got %d)" batch);
    if m < 1 then invalid_arg (Printf.sprintf "--machines must be >= 1 (got %d)" m);
    let policy_name, session =
      match restore with
      | Some path -> (
          let raw =
            try Sched_sim.Snapshot.read_file path
            with Sys_error msg ->
              prerr_endline ("rejsched: " ^ msg);
              exit 2
          in
          match Sched_sim.Snapshot.unwrap raw with
          | Error e ->
              prerr_endline
                (Printf.sprintf "rejsched: cannot restore %s: %s" path
                   (Sched_sim.Snapshot.error_to_string e));
              exit 2
          | Ok (pname, payload) -> (
              match PR.find pname with
              | None ->
                  prerr_endline ("rejsched: snapshot names unknown policy: " ^ pname);
                  exit 2
              | Some entry -> (
                  match entry.PR.restore_stream payload with
                  | s -> (pname, s)
                  | exception Invalid_argument msg ->
                      prerr_endline ("rejsched: cannot restore " ^ path ^ ": " ^ msg);
                      exit 2)))
      | None -> (
          match PR.find policy with
          | None ->
              prerr_endline ("rejsched: unknown registry policy: " ^ policy);
              exit 2
          | Some entry ->
              let trace = Sched_sim.Trace.create () in
              (policy, entry.PR.open_stream ~trace ~retire ~machines:(Machine.fleet m) ()))
    in
    (* With '--checkpoint -' the snapshot bytes own stdout; every NDJSON
       line moves to stderr so the two streams never interleave. *)
    let emit = if checkpoint = Some "-" then prerr_endline else print_endline in
    let trace = session.PR.ss_trace () in
    let cursor = ref (match trace with Some t -> Sched_sim.Trace.length t | None -> 0) in
    let emit_decisions () =
      match trace with
      | None -> ()
      | Some t ->
          List.iter
            (fun e -> emit (Sched_sim.Trace_export.entry_line e))
            (Sched_sim.Trace.since t !cursor);
          cursor := Sched_sim.Trace.length t
    in
    let module N = Sched_obs.Ndjson in
    let progress drained =
      emit
        (N.line ~schema:serve_schema
           [
             ("type", N.String "progress");
             ("fed", N.Int (session.PR.ss_fed ()));
             ("drained", N.Float drained);
             ("next_key", N.Float (session.PR.ss_next_key ()));
           ])
    in
    let summary kind (live : Sched_sim.Driver.live_metrics) =
      emit
        (N.line ~schema:serve_schema
           [
             ("type", N.String kind);
             ("policy", N.String policy_name);
             ("fed", N.Int (session.PR.ss_fed ()));
             ("flow_total", N.Float live.flow.Metrics.total);
             ("flow_weighted", N.Float live.flow.Metrics.weighted);
             ("flow_max", N.Float live.flow.Metrics.max_flow);
             ("rejected", N.Int live.rejection.Metrics.count);
             ("rejected_weight", N.Float live.rejection.Metrics.weight);
             ("rejected_midrun", N.Int live.rejection.Metrics.mid_run);
             ("energy", N.Float live.energy);
             ("makespan", N.Float live.makespan);
           ])
    in
    let ic = if input = "-" then stdin else open_in input in
    let pending = ref 0 in
    let last_release = ref neg_infinity in
    let flush_batch () =
      if !pending > 0 then begin
        session.PR.ss_drain_until !last_release;
        emit_decisions ();
        progress !last_release;
        pending := 0
      end
    in
    let feed line =
      match job_of_line line with
      | Error msg ->
          prerr_endline ("rejsched: bad arrival: " ^ msg);
          exit 1
      | Ok job -> (
          match session.PR.ss_feed job with
          | () ->
              last_release := job.Job.release;
              incr pending;
              if !pending >= batch then flush_batch ()
          | exception Invalid_argument msg ->
              prerr_endline ("rejsched: bad arrival: " ^ msg);
              exit 1)
    in
    let rec pump () =
      match In_channel.input_line ic with
      | None -> ()
      | Some line ->
          if String.trim line <> "" then feed line;
          pump ()
    in
    Fun.protect ~finally:(fun () -> if input <> "-" then close_in_noerr ic) pump;
    flush_batch ();
    match checkpoint with
    | Some target ->
        (* Freeze, don't close: queued future events ride inside the
           snapshot and a later --restore picks up mid-stream. *)
        let payload = session.PR.ss_freeze () in
        write_output target (Sched_sim.Snapshot.wrap ~policy:policy_name ~payload);
        summary "suspended" (session.PR.ss_live ())
    | None ->
        let _schedule, live = session.PR.ss_close () in
        emit_decisions ();
        summary "closed" live
  in
  let term =
    Term.(
      const action $ policy_arg $ input_arg $ batch_arg $ checkpoint_arg $ restore_arg
      $ retire_arg $ m_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the incremental scheduling engine as a service: read NDJSON arrival events \
             from stdin or a file, emit rejsched.trace/1 decision lines and rejsched.serve/1 \
             progress records as they happen, and optionally suspend to / resume from a \
             checkpoint snapshot.")
    term

(* ------------------------------------------------------------------ *)
(* bounds                                                              *)

let bounds_cmd =
  let action eps alpha =
    let module B = Rejection.Bounds in
    Printf.printf "Theorem 1 (flow-time):\n";
    Printf.printf "  competitive ratio bound  2((1+e)/e)^2 = %.3f\n" (B.flow_competitive ~eps);
    Printf.printf "  rejection budget         2e           = %.3f\n" (B.flow_rejection_budget ~eps);
    Printf.printf "  rule thresholds          ceil(1/e)=%d, ceil(1+1/e)=%d\n"
      (B.rule1_threshold ~eps) (B.rule2_threshold ~eps);
    Printf.printf "Theorem 2 (flow+energy, alpha=%g):\n" alpha;
    Printf.printf "  gamma (paper's closed form)      = %.4f\n" (B.gamma ~eps ~alpha);
    Printf.printf "  gamma (numerically optimized)    = %.4f\n" (B.gamma_best ~eps ~alpha);
    Printf.printf "  competitive ratio (exact proof)  = %.3f\n" (B.flow_energy_competitive ~eps ~alpha);
    Printf.printf "  envelope (1+1/e)^(a/(a-1))       = %.3f\n" (B.flow_energy_envelope ~eps ~alpha);
    Printf.printf "Theorem 3 / Lemma 2 (energy, alpha=%g):\n" alpha;
    Printf.printf "  upper bound alpha^alpha          = %.3f\n" (B.energy_competitive ~alpha);
    Printf.printf "  lower bound (alpha/9)^alpha      = %.5f\n" (B.energy_lb ~alpha);
    Printf.printf "  smoothness mu=(a-1)/a            = %.4f\n" (B.smooth_mu ~alpha);
    Printf.printf "  smoothness lambda~a^(a-1)        = %.3f\n" (B.smooth_lambda ~alpha)
  in
  let term = Term.(const action $ eps_arg $ alpha_arg) in
  Cmd.v (Cmd.info "bounds" ~doc:"Print the paper's theoretical constants.") term

(* ------------------------------------------------------------------ *)
(* list                                                                *)

let list_cmd =
  let action () =
    print_endline "workloads:";
    List.iter (fun w -> print_endline ("  " ^ w)) workload_names;
    print_endline "policies:";
    List.iter (fun p -> print_endline ("  " ^ p)) policy_names;
    print_endline "experiments:";
    List.iter
      (fun e ->
        Printf.printf "  %-3s %s (%s)\n" e.Sched_experiments.Registry.id
          e.Sched_experiments.Registry.title e.Sched_experiments.Registry.reproduces)
      Sched_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads, policies and experiments.") Term.(const action $ const ())

let () =
  let doc = "Online non-preemptive scheduling with rejections (SPAA 2018 reproduction)." in
  let info = Cmd.info "rejsched" ~version:"1.0.0" ~doc in
  (* Usage errors raised as Invalid_argument (unknown policy / workload,
     ill-formed policy decisions surfaced by the driver) are user input
     problems, not crashes: report on stderr and exit 2, no backtrace. *)
  exit
    (try
       Cmd.eval ~catch:false
         (Cmd.group info
            [ run_cmd; serve_cmd; experiment_cmd; adversary_cmd; fuzz_cmd; trace_cmd; bounds_cmd; gen_cmd; list_cmd ])
     with Invalid_argument msg ->
       prerr_endline ("rejsched: " ^ msg);
       2)
