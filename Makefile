# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench quick-bench examples experiments clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full experiment tables + Bechamel micro-benchmarks (a few minutes).
bench:
	dune exec bench/main.exe

# Fast smoke version of the same.
quick-bench:
	REJSCHED_QUICK=1 dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/datacenter_flow.exe
	dune exec examples/energy_cluster.exe
	dune exec examples/adversarial_demo.exe

# Regenerate every experiment CSV into results/.
experiments:
	dune exec bin/rejsched.exe -- experiment all --out results

clean:
	dune clean
