# Convenience targets; everything is plain dune underneath.

.PHONY: all build test lint fuzz-smoke bench quick-bench bench-check examples experiments clean

all: build

build:
	dune build @all

test:
	dune runtest

# Static determinism checks (rejlint) over lib/ bin/ bench/ test/, both
# tiers: the syntactic pass (@lint alias, RJL001-009) and the typed pass
# (--typed, RJL100-103 over the .cmt files the build just produced).
# Exits nonzero on any error-severity finding.  See DESIGN.md section 7.
lint:
	dune build @lint @all
	dune exec bin/rejlint.exe -- --typed

# Deterministic fuzz smoke (~30s): the coverage-guided scenario fuzzer
# over the whole policy registry at a fixed seed, once sequentially and
# once on a 4-domain pool.  Exit code 3 (shrunk repro on stderr) on any
# oracle/metamorphic violation.  See DESIGN.md section 10.
fuzz-smoke:
	dune exec bin/rejsched.exe -- fuzz --seed 7 --budget 300
	dune exec bin/rejsched.exe -- fuzz --seed 7 --budget 300 --domains 4 --quiet

# Full experiment tables + Bechamel micro-benchmarks (a few minutes).
# Benchmarks build with --profile release: the dev profile compiles
# with -opaque, which disables cross-module inlining and so boxes every
# float accessor result — perf gates would measure the build mode, not
# the code.
bench:
	dune exec --profile release bench/main.exe

# Fast smoke version of the same.
quick-bench:
	REJSCHED_QUICK=1 dune exec --profile release bench/main.exe

# Regression gate: tier-1 tests plus the indexed-vs-scan performance
# baseline.  Writes BENCH_pr10.json (telemetry counter snapshot and pool
# scaling curve embedded) and compares throughput against the newest
# previous BENCH_*.json; fails if the driver-event microbenchmark
# speedup — bare or with telemetry recording — drops below 2x, if the
# flat-core gates fail (events/sec < 2x the PR-4 recorded baseline;
# allocations/event over the ceiling; flat-vs-boxed schedules not
# byte-identical), if the pool gates fail (width-1 overhead > 2x; on
# >=4-core hosts, 4 domains < 2x over sequential; any
# non-byte-identical output), if the sharded driver diverges from the
# flat core at any S in {1,2,4} or (on >=4-core hosts) S=4 falls below
# 2x over S=1, if a streamed session diverges from the batch run or
# the rolling-retirement stream breaches its resident-memory gates,
# or any test regresses.
bench-check:
	dune build @all
	dune runtest
	dune exec --profile release bench/main.exe -- --regression --out BENCH_pr10.json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/datacenter_flow.exe
	dune exec examples/energy_cluster.exe
	dune exec examples/adversarial_demo.exe

# Regenerate every experiment CSV into results/.
experiments:
	dune exec bin/rejsched.exe -- experiment all --out results

clean:
	dune clean
