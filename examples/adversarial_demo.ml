(* The two lower-bound games of the paper, played live.

   Game 1 (Lemma 1): an adversary releases elephant jobs, watches the
   scheduler commit, then floods it with mice.  A policy that must decide
   rejections immediately on arrival is stuck behind its own elephant; the
   paper's algorithm simply revokes it (Rejection Rule 1).

   Game 2 (Lemma 2): an adaptive adversary nests deadline windows around
   whatever the energy-greedy commits to, forcing all jobs to overlap; its
   own schedule runs everything at speed 1 with no overlap.

   Run with: dune exec examples/adversarial_demo.exe *)

open Sched_stats
module AF = Sched_workload.Adversary_flow
module AE = Sched_workload.Adversary_energy

let () =
  print_endline "=== Game 1: Lemma 1 (flow-time, immediate vs deferred rejection) ===";
  let eps = 0.2 in
  let t =
    Table.create ~title:"ratio vs adversary's schedule as Delta = L^2 grows"
      ~columns:[ "L"; "sqrt(Delta)"; "immediate policy"; "Theorem 1 (deferred)" ]
  in
  List.iter
    (fun l ->
      let run_immediate inst =
        Sched_sim.Driver.run_schedule
          (Sched_baselines.Immediate_reject.policy ~eps Sched_baselines.Immediate_reject.Never)
          inst
      in
      let run_thm1 inst =
        fst (Rejection.Flow_reject.run (Rejection.Flow_reject.config ~eps ()) inst)
      in
      let ratio run =
        let result, schedule = AF.run_two_phase ~run ~eps ~l in
        (Sched_model.Metrics.flow schedule).Sched_model.Metrics.total_with_rejected
        /. result.AF.adversary_cost
      in
      Table.add_row t
        [
          Table.cell_float l;
          Table.cell_float l;
          Table.cell_float (ratio run_immediate);
          Table.cell_float (ratio run_thm1);
        ])
    [ 8.; 16.; 32.; 64. ];
  Table.print t;

  print_endline "=== Game 2: Lemma 2 (energy, adaptive deadline nesting) ===";
  let t2 =
    Table.create ~title:"greedy energy vs adversary energy as alpha grows"
      ~columns:[ "alpha"; "jobs released"; "greedy energy"; "adversary energy"; "ratio"; "alpha^alpha" ]
  in
  List.iter
    (fun alpha ->
      let st = Rejection.Energy_config_greedy.continuous ~alpha () in
      let alg =
        {
          AE.name = "config-greedy";
          place =
            (fun ~release ~deadline ~volume ->
              Rejection.Energy_config_greedy.continuous_place st ~release ~deadline ~volume);
        }
      in
      let r = AE.run ~alpha alg in
      Table.add_row t2
        [
          Table.cell_float alpha;
          Table.cell_int r.AE.rounds;
          Table.cell_float r.AE.alg_energy;
          Table.cell_float r.AE.adv_energy;
          Table.cell_float (r.AE.alg_energy /. r.AE.adv_energy);
          Table.cell_float (alpha ** alpha);
        ])
    [ 2.; 3.; 4.; 5.; 6.; 7. ];
  Table.print t2;
  print_endline
    "The adversary's jobs all overlap in the greedy's schedule (each new window\n\
     nests strictly inside the previous execution), so the aggregate speed — and\n\
     s^alpha energy — compounds with alpha, matching Lemma 2's (alpha/9)^alpha\n\
     growth up to constants."
