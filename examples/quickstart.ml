(* Quickstart: build a small unrelated-machines instance by hand, run the
   paper's Theorem 1 algorithm through the one-call API, and inspect the
   schedule it produced.

   Run with: dune exec examples/quickstart.exe *)

open Sched_model

let () =
  (* Two machines; five jobs with machine-dependent processing times.
     Job 3 is a "elephant" that would block the queue without rejection. *)
  let machines = Machine.fleet 2 in
  let jobs =
    [
      Job.create ~id:0 ~release:0.0 ~sizes:[| 2.0; 3.0 |] ();
      Job.create ~id:1 ~release:0.5 ~sizes:[| 4.0; 1.5 |] ();
      Job.create ~id:2 ~release:1.0 ~sizes:[| 1.0; 6.0 |] ();
      Job.create ~id:3 ~release:1.2 ~sizes:[| 40.0; 45.0 |] ();
      Job.create ~id:4 ~release:2.0 ~sizes:[| 2.5; 2.0 |] ();
    ]
  in
  let instance = Instance.create ~name:"quickstart" ~machines ~jobs () in
  Format.printf "instance: %a@." Instance.pp_stats instance;

  (* Run the Theorem 1 algorithm with eps = 0.25: at most 2*eps = 50%% of
     jobs may be rejected, and the total flow-time is guaranteed within
     2((1+eps)/eps)^2 = 50x of the offline optimum. *)
  let result = Rejection.Api.run_flow ~eps:0.25 instance in

  Format.printf "@.Per-job outcomes:@.";
  Array.iter
    (fun (j : Job.t) ->
      Format.printf "  %a -> %a@." Job.pp j Outcome.pp
        (Schedule.outcome result.Rejection.Api.schedule j.Job.id))
    (Instance.jobs_by_release instance);

  let flow = result.Rejection.Api.flow in
  let rejection = result.Rejection.Api.rejection in
  Format.printf "@.total flow-time (completed jobs): %.2f@." flow.Metrics.total;
  Format.printf "total flow-time (incl. rejected):  %.2f@." flow.Metrics.total_with_rejected;
  Format.printf "max flow: %.2f   mean flow: %.2f@." flow.Metrics.max_flow flow.Metrics.mean_flow;
  Format.printf "rejected: %d jobs (%.0f%% of the %.0f%% budget)@." rejection.Metrics.count
    (100. *. rejection.Metrics.fraction)
    (100. *. result.Rejection.Api.rejection_budget);
  Format.printf "theoretical competitive bound: %.1f@." result.Rejection.Api.competitive_bound;

  (* The schedule at a glance. *)
  Format.printf "@.%s@." (Gantt.render ~width:64 result.Rejection.Api.schedule);

  (* Compare against the exact offline optimum (the instance is tiny). *)
  match Sched_baselines.Brute_force.optimal_flow instance with
  | Some opt ->
      Format.printf "offline OPT (all jobs, brute force): %.2f@." opt;
      Format.printf "empirical ratio: %.2f  (bound %.1f)@."
        (flow.Metrics.total_with_rejected /. opt)
        result.Rejection.Api.competitive_bound
  | None -> ()
