(* Datacenter-style workload: heavy-tailed job sizes (bounded Pareto) on
   unrelated machines — the scenario the paper's introduction motivates,
   where a few elephant jobs ruin every non-preemptive queue unless the
   scheduler can revoke its decisions.

   Compares the paper's Theorem 1 algorithm against non-rejecting greedies
   and an immediate-rejection policy, across load levels.

   Run with: dune exec examples/datacenter_flow.exe *)

open Sched_model
open Sched_stats
module Gen = Sched_workload.Gen
module Shape = Sched_workload.Shape

let n = 400
let m = 8

let run_policy policy inst =
  let s = Sched_sim.Driver.run_schedule policy inst in
  Schedule.assert_valid ~check_deadlines:false s;
  s

let () =
  let table =
    Table.create ~title:"Heavy-tailed datacenter workload: total flow-time (mean of 3 seeds)"
      ~columns:
        [ "load"; "policy"; "flow"; "flow/LB"; "p-max flow"; "rejected%" ]
  in
  List.iter
    (fun load ->
      let gen =
        Gen.make ~name:"datacenter"
          ~arrivals:(Gen.Poisson (load *. float_of_int m /. 4.))
          (* mean size ~ 4 *)
          ~sizes:(Dist.bounded_pareto ~shape:1.4 ~lo:1. ~hi:200.)
          ~shape:(Shape.unrelated ~spread:2.) ~n ~m ()
      in
      let policies =
        [
          ("greedy-fifo", fun inst -> run_policy Sched_baselines.Greedy_dispatch.fifo inst);
          ("greedy-spt", fun inst -> run_policy Sched_baselines.Greedy_dispatch.spt inst);
          ( "immediate-reject",
            fun inst ->
              run_policy
                (Sched_baselines.Immediate_reject.policy ~eps:0.4
                   (Sched_baselines.Immediate_reject.Largest_over 2.))
                inst );
          ( "thm1 eps=0.2",
            fun inst ->
              fst (Rejection.Flow_reject.run (Rejection.Flow_reject.config ~eps:0.2 ()) inst) );
        ]
      in
      List.iter
        (fun (name, runner) ->
          let flows = ref [] and ratios = ref [] and maxes = ref [] and rejs = ref [] in
          List.iter
            (fun seed ->
              let inst = Gen.instance gen ~seed in
              let s = runner inst in
              let f = Metrics.flow s in
              let lb =
                (Sched_baselines.Lower_bounds.volume inst).Sched_baselines.Lower_bounds.value
              in
              flows := f.Metrics.total_with_rejected :: !flows;
              ratios := (f.Metrics.total_with_rejected /. lb) :: !ratios;
              maxes := f.Metrics.max_flow :: !maxes;
              rejs := (Metrics.rejection s).Metrics.fraction :: !rejs)
            [ 3; 5; 7 ];
          let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
          Table.add_row table
            [
              Printf.sprintf "%.0f%%" (100. *. load);
              name;
              Table.cell_float (mean !flows);
              Table.cell_float (mean !ratios);
              Table.cell_float (mean !maxes);
              Table.cell_float (100. *. mean !rejs);
            ])
        policies)
    [ 0.5; 0.8; 0.95 ];
  Table.print table;
  print_endline
    "Note: 'flow/LB' is measured against the volume lower bound, so values are upper\n\
     bounds on the true competitive ratio.  The rejection-based scheduler keeps both\n\
     the total and the worst-case ('p-max flow') down as load approaches saturation\n\
     by revoking a bounded fraction of elephants mid-run.\n";
  (* Flow-time distribution at the highest load: greedy-SPT vs rejection. *)
  let gen =
    Gen.make ~name:"datacenter"
      ~arrivals:(Gen.Poisson (0.95 *. float_of_int m /. 4.))
      ~sizes:(Dist.bounded_pareto ~shape:1.4 ~lo:1. ~hi:200.)
      ~shape:(Shape.unrelated ~spread:2.) ~n ~m ()
  in
  let inst = Gen.instance gen ~seed:3 in
  let spt = run_policy Sched_baselines.Greedy_dispatch.spt inst in
  let rej = fst (Rejection.Flow_reject.run (Rejection.Flow_reject.config ~eps:0.2 ()) inst) in
  print_endline "Flow-time distribution at 95% load (log-scale bins):";
  print_endline "- greedy-spt:";
  print_string (Histogram.render ~width:40 (Histogram.log_bins (Sched_model.Metrics.flow_values spt)));
  print_endline "- thm1 eps=0.2:";
  print_string (Histogram.render ~width:40 (Histogram.log_bins (Sched_model.Metrics.flow_values rej)))
