(* Speed-scaled cluster: both energy objectives of the paper on one
   workload family.

   Part 1 (Section 3 / Theorem 2): weighted flow-time plus energy — the
   scheduler picks per-execution speeds gamma * W^(1/alpha) and rejects a
   bounded weight fraction.

   Part 2 (Section 4 / Theorem 3): hard-deadline energy minimization — the
   configuration-LP greedy against the YDS preemptive optimum and the AVR
   online heuristic.

   Run with: dune exec examples/energy_cluster.exe *)

open Sched_model
open Sched_stats
module Gen = Sched_workload.Gen
module Suite = Sched_workload.Suite

let () =
  (* Part 1: flow + energy across the cube-law range of alpha. *)
  let t1 =
    Table.create ~title:"Theorem 2: weighted flow-time + energy (n=120, m=4, eps=0.25)"
      ~columns:[ "alpha"; "gamma"; "wflow"; "energy"; "objective"; "LB"; "ratio"; "rej-w%" ]
  in
  List.iter
    (fun alpha ->
      let gen = Suite.weighted_energy ~n:120 ~m:4 ~alpha in
      let inst = Gen.instance gen ~seed:42 in
      let cfg = Rejection.Flow_energy_reject.config ~eps:0.25 () in
      let s, st = Rejection.Flow_energy_reject.run cfg inst in
      Schedule.assert_valid ~check_deadlines:false s;
      let f = Metrics.flow s in
      let e = Metrics.energy s in
      let obj = f.Metrics.weighted_with_rejected +. e in
      let lb = Sched_energy.Energy_bounds.flow_energy_lb inst in
      Table.add_row t1
        [
          Table.cell_float alpha;
          Table.cell_float (Rejection.Flow_energy_reject.gamma_of_machine st 0);
          Table.cell_float f.Metrics.weighted;
          Table.cell_float e;
          Table.cell_float obj;
          Table.cell_float lb;
          Table.cell_float (obj /. lb);
          Table.cell_float (100. *. (Metrics.rejection s).Metrics.weight_fraction);
        ])
    [ 1.8; 2.; 2.5; 3. ];
  Table.print t1;

  (* Part 2: deadline energy minimization on a single speed-scaled CPU. *)
  let t2 =
    Table.create ~title:"Theorem 3: deadline energy minimization (n=40, m=1, alpha=3)"
      ~columns:[ "seed"; "greedy"; "yds-opt(preemptive)"; "avr(online)"; "greedy/yds"; "avr/yds" ]
  in
  List.iter
    (fun seed ->
      let gen = Suite.deadline_energy ~n:40 ~m:1 ~alpha:3. in
      let inst = Gen.instance gen ~seed in
      let result = Rejection.Energy_config_greedy.run inst in
      let jobs = Sched_energy.Yds.of_instance inst ~machine:0 in
      let yds = Sched_energy.Yds.optimal_energy ~alpha:3. jobs in
      let avr = Sched_energy.Avr.energy ~alpha:3. jobs in
      Table.add_row t2
        [
          Table.cell_int seed;
          Table.cell_float result.Rejection.Energy_config_greedy.energy;
          Table.cell_float yds;
          Table.cell_float avr;
          Table.cell_float (result.Rejection.Energy_config_greedy.energy /. yds);
          Table.cell_float (avr /. yds);
        ])
    [ 1; 2; 3; 4; 5 ];
  Table.print t2;
  print_endline
    "YDS is the preemptive offline optimum (a lower bound for the non-preemptive\n\
     problem); alpha^alpha = 27 is Theorem 3's guarantee.  The non-preemptive greedy\n\
     typically lands within a small factor of YDS, comparable to the preemptive AVR."
