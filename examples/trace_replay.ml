(* Trace replay: run every scheduler on a cluster trace in the Standard
   Workload Format (the Parallel Workloads Archive interchange format) and
   bracket the true competitive ratio with the local-search OPT upper
   bound.

   No real traces ship in this sealed build, so we use the bundled example
   snippet; point [Swf.load ~path] at any PWA trace to reproduce on real
   data.

   Run with: dune exec examples/trace_replay.exe *)

open Sched_model
open Sched_stats

let () =
  let inst =
    match Sched_workload.Swf.parse ~m:2 Sched_workload.Swf.example with
    | Ok inst -> inst
    | Error msg -> failwith msg
  in
  Format.printf "imported: %a@.@." Instance.pp_stats inst;
  let table =
    Table.create ~title:"SWF trace replay (8 jobs, 2 machines)"
      ~columns:[ "policy"; "flow"; "max-flow"; "rejected" ]
  in
  let run name schedule =
    Schedule.assert_valid ~check_deadlines:false schedule;
    let f = Metrics.flow schedule in
    Table.add_row table
      [
        name;
        Table.cell_float f.Metrics.total_with_rejected;
        Table.cell_float f.Metrics.max_flow;
        Table.cell_int (Metrics.rejection schedule).Metrics.count;
      ];
    schedule
  in
  let fifo = run "greedy-fifo" (Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.fifo inst) in
  let _spt = run "greedy-spt" (Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.spt inst) in
  let rej =
    run "thm1 eps=0.25"
      (fst (Rejection.Flow_reject.run (Rejection.Flow_reject.config ~eps:0.25 ()) inst))
  in
  Table.print table;
  (* Bracket the optimum. *)
  let lb = Sched_baselines.Lower_bounds.best_flow inst in
  let ls = Sched_baselines.Local_search.improve inst in
  Printf.printf "OPT bracket: [%.1f (%s), %.1f (local search)]\n"
    lb.Sched_baselines.Lower_bounds.value lb.Sched_baselines.Lower_bounds.source
    ls.Sched_baselines.Local_search.cost;
  let alg = (Metrics.flow rej).Metrics.total_with_rejected in
  Printf.printf "thm1 ratio in [%.3f, %.3f]\n" (alg /. ls.Sched_baselines.Local_search.cost)
    (alg /. lb.Sched_baselines.Lower_bounds.value);
  print_newline ();
  print_endline "Schedules (greedy-fifo above, thm1 below):";
  print_string (Gantt.render ~width:64 fifo);
  print_string (Gantt.render ~width:64 rej)
