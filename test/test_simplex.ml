open Sched_lp

let check_optimal outcome ~objective ~tol =
  match outcome with
  | Simplex.Optimal { objective = o; _ } ->
      Alcotest.(check (float tol)) "objective" objective o
  | Simplex.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_max_2d () =
  (* max x + y st x + 2y <= 4, x <= 3 -> (3, 0.5), obj 3.5. *)
  check_optimal ~objective:3.5 ~tol:1e-9
    (Simplex.solve ~maximize:true ~c:[| 1.; 1. |]
       [ ([| 1.; 2. |], Simplex.Le, 4.); ([| 1.; 0. |], Simplex.Le, 3.) ])

let test_min_with_ge () =
  (* min 2x + 3y st x + y >= 4, x <= 2 -> x=2, y=2, obj 10. *)
  check_optimal ~objective:10. ~tol:1e-9
    (Simplex.solve ~c:[| 2.; 3. |]
       [ ([| 1.; 1. |], Simplex.Ge, 4.); ([| 1.; 0. |], Simplex.Le, 2.) ])

let test_equality () =
  (* min x + y st x + y = 5, x - y = 1 -> (3, 2), obj 5. *)
  check_optimal ~objective:5. ~tol:1e-9
    (Simplex.solve ~c:[| 1.; 1. |]
       [ ([| 1.; 1. |], Simplex.Eq, 5.); ([| 1.; -1. |], Simplex.Eq, 1.) ])

let test_infeasible () =
  match
    Simplex.solve ~c:[| 1. |] [ ([| 1. |], Simplex.Le, 1.); ([| 1. |], Simplex.Ge, 2.) ]
  with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "should be infeasible"

let test_unbounded () =
  match Simplex.solve ~maximize:true ~c:[| 1. |] [ ([| -1. |], Simplex.Le, 1.) ] with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "should be unbounded"

let test_negative_rhs_normalization () =
  (* x >= 2 written as -x <= -2; min x -> 2. *)
  check_optimal ~objective:2. ~tol:1e-9 (Simplex.solve ~c:[| 1. |] [ ([| -1. |], Simplex.Le, -2.) ])

let test_degenerate () =
  (* Degenerate vertex; Bland's rule must terminate. *)
  check_optimal ~objective:1. ~tol:1e-9
    (Simplex.solve ~maximize:true ~c:[| 1.; 0. |]
       [
         ([| 1.; 1. |], Simplex.Le, 1.);
         ([| 1.; -1. |], Simplex.Le, 1.);
         ([| 1.; 0. |], Simplex.Le, 1.);
       ])

let test_solution_feasible_property () =
  (* Random LPs min c.x st A x >= b with nonneg data are always feasible
     (x large enough) and bounded (c >= 0); check the returned solution
     satisfies all constraints. *)
  QCheck.Test.make ~name:"simplex solutions satisfy constraints" ~count:100
    QCheck.(
      triple
        (array_of_size (Gen.return 3) (float_range 0.1 5.))
        (list_of_size (Gen.int_range 1 4) (array_of_size (Gen.return 3) (float_range 0.1 5.)))
        (list_of_size (Gen.int_range 1 4) (float_range 0.1 10.)))
    (fun (c, rows, bs) ->
      let k = min (List.length rows) (List.length bs) in
      let rows = List.filteri (fun i _ -> i < k) rows and bs = List.filteri (fun i _ -> i < k) bs in
      let constraints = List.map2 (fun r b -> (r, Simplex.Ge, b)) rows bs in
      match Simplex.solve ~c constraints with
      | Simplex.Optimal { solution; _ } ->
          List.for_all2
            (fun row b ->
              let lhs = ref 0. in
              Array.iteri (fun i a -> lhs := !lhs +. (a *. solution.(i))) row;
              !lhs >= b -. 1e-6)
            rows bs
          && Array.for_all (fun x -> x >= -1e-9) solution
      | Simplex.Infeasible | Simplex.Unbounded -> false)
  |> QCheck_alcotest.to_alcotest

let test_optimality_vs_grid_property () =
  (* For 2-variable problems, compare against a brute-force grid search. *)
  QCheck.Test.make ~name:"simplex beats grid search" ~count:50
    QCheck.(pair (float_range 0.5 3.) (float_range 0.5 3.))
    (fun (a, b) ->
      (* min x + y st a x + y >= 2, x + b y >= 2. *)
      let constraints =
        [ ([| a; 1. |], Simplex.Ge, 2.); ([| 1.; b |], Simplex.Ge, 2.) ]
      in
      match Simplex.solve ~c:[| 1.; 1. |] constraints with
      | Simplex.Optimal { objective; _ } ->
          (* Grid-search a feasible upper bound; simplex must be <= it. *)
          let best = ref Float.infinity in
          for i = 0 to 100 do
            for j = 0 to 100 do
              let x = float_of_int i *. 0.05 and y = float_of_int j *. 0.05 in
              if (a *. x) +. y >= 2. && x +. (b *. y) >= 2. then
                if x +. y < !best then best := x +. y
            done
          done;
          objective <= !best +. 1e-6
      | _ -> false)
  |> QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "max 2d" `Quick test_max_2d;
    Alcotest.test_case "min with >=" `Quick test_min_with_ge;
    Alcotest.test_case "equalities" `Quick test_equality;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "negative rhs" `Quick test_negative_rhs_normalization;
    Alcotest.test_case "degenerate" `Quick test_degenerate;
    test_solution_feasible_property ();
    test_optimality_vs_grid_property ();
  ]

let test_strong_duality_property () =
  (* Random primal: min c.x st A x >= b (all data positive, hence feasible
     and bounded).  Its dual: max b.y st A^T y <= c, y >= 0.  Strong
     duality: optimal objectives coincide — a sharp end-to-end check of the
     solver. *)
  QCheck.Test.make ~name:"strong duality on random primal/dual pairs" ~count:60
    QCheck.(
      triple
        (array_of_size (Gen.return 3) (float_range 0.5 5.))
        (array_of_size (Gen.return 2) (float_range 0.5 5.))
        (array_of_size (Gen.return 6) (float_range 0.1 4.)))
    (fun (c, b, flat) ->
      (* A is 2x3 from flat. *)
      let a = [| [| flat.(0); flat.(1); flat.(2) |]; [| flat.(3); flat.(4); flat.(5) |] |] in
      let primal =
        Simplex.solve ~c [ (a.(0), Simplex.Ge, b.(0)); (a.(1), Simplex.Ge, b.(1)) ]
      in
      let at = Array.init 3 (fun j -> Array.init 2 (fun i -> a.(i).(j))) in
      let dual =
        Simplex.solve ~maximize:true ~c:b
          [ (at.(0), Simplex.Le, c.(0)); (at.(1), Simplex.Le, c.(1)); (at.(2), Simplex.Le, c.(2)) ]
      in
      match (primal, dual) with
      | Simplex.Optimal { objective = p; _ }, Simplex.Optimal { objective = d; _ } ->
          Float.abs (p -. d) <= 1e-6 *. Float.max 1. (Float.abs p)
      | _ -> false)
  |> QCheck_alcotest.to_alcotest

let suite = suite @ [ test_strong_duality_property () ]
