(* Differential tests: the indexed-queue policies against their scan-based
   seed mirrors, and the driver's incremental metrics against the post-hoc
   [Metrics] passes.

   Instances come from [Test_util.random_instance], whose dyadic numerics
   make every sum exact — identical decisions imply byte-identical
   schedules, so the comparison is exact string equality on the serialized
   dump, not a tolerance. *)

open Sched_model
open Sched_sim
module PR = Sched_experiments.Policy_registry

(* 100 instances spanning 1..4 machines, 5..40 jobs, weighted and
   restricted-eligibility variants. *)
let instances =
  List.init 100 (fun k ->
      let n = 5 + (k mod 8 * 5) in
      let m = 1 + (k mod 4) in
      Test_util.random_instance ~weighted:(k mod 2 = 1) ~restricted:(k mod 3 = 0)
        ~seed:(1000 + k) ~n ~m ())

let test_schedules_match_reference () =
  List.iter
    (fun (e : PR.entry) ->
      match e.reference with
      | None -> ()
      | Some ref_run ->
          List.iter
            (fun inst ->
              let opt = Serialize.schedule_to_string (e.run inst) in
              let refd = Serialize.schedule_to_string (ref_run inst) in
              if opt <> refd then
                Alcotest.failf "policy %s diverges from its seed reference on %s" e.name
                  inst.Instance.name)
            instances)
    PR.all

let check_float what name ~expected ~actual =
  (* Incremental and post-hoc metrics accumulate in different orders; allow
     rounding, nothing more. *)
  let tol = 1e-9 *. (1. +. Float.abs expected) in
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: live %s = %.17g, recomputed = %.17g" name what actual expected

let test_live_metrics_match_recompute () =
  List.iter
    (fun (e : PR.entry) ->
      List.iteri
        (fun k inst ->
          if k mod 3 = 0 then begin
            let s, live = e.run_live inst in
            let f = Metrics.flow s in
            let name = Printf.sprintf "%s on %s" e.name inst.Instance.name in
            check_float "flow.total" name ~expected:f.Metrics.total
              ~actual:live.Driver.flow.Metrics.total;
            check_float "flow.weighted" name ~expected:f.Metrics.weighted
              ~actual:live.Driver.flow.Metrics.weighted;
            check_float "flow.total_with_rejected" name
              ~expected:f.Metrics.total_with_rejected
              ~actual:live.Driver.flow.Metrics.total_with_rejected;
            check_float "flow.weighted_with_rejected" name
              ~expected:f.Metrics.weighted_with_rejected
              ~actual:live.Driver.flow.Metrics.weighted_with_rejected;
            check_float "flow.max_flow" name ~expected:f.Metrics.max_flow
              ~actual:live.Driver.flow.Metrics.max_flow;
            check_float "flow.mean_flow" name ~expected:f.Metrics.mean_flow
              ~actual:live.Driver.flow.Metrics.mean_flow;
            check_float "flow.max_stretch" name ~expected:f.Metrics.max_stretch
              ~actual:live.Driver.flow.Metrics.max_stretch;
            check_float "energy" name ~expected:(Metrics.energy s)
              ~actual:live.Driver.energy;
            check_float "makespan" name ~expected:(Metrics.makespan s)
              ~actual:live.Driver.makespan;
            let r = Metrics.rejection s in
            if r.Metrics.count <> live.Driver.rejection.Metrics.count then
              Alcotest.failf "%s: rejection count %d <> %d" name
                live.Driver.rejection.Metrics.count r.Metrics.count;
            if r.Metrics.mid_run <> live.Driver.rejection.Metrics.mid_run then
              Alcotest.failf "%s: mid_run %d <> %d" name
                live.Driver.rejection.Metrics.mid_run r.Metrics.mid_run;
            check_float "rejection.weight" name ~expected:r.Metrics.weight
              ~actual:live.Driver.rejection.Metrics.weight;
            check_float "rejection.fraction" name ~expected:r.Metrics.fraction
              ~actual:live.Driver.rejection.Metrics.fraction;
            check_float "rejection.weight_fraction" name
              ~expected:r.Metrics.weight_fraction
              ~actual:live.Driver.rejection.Metrics.weight_fraction
          end)
        instances)
    PR.all

(* The view accessors must agree with scans of the materialized pending
   list at every decision point of a live run.  A probe policy wraps
   greedy-SPT and cross-checks on each select call. *)
let check_accessors view i =
  let pend = Driver.pending view i in
  let count = List.length pend in
  if Driver.pending_count view i <> count then Alcotest.failf "pending_count mismatch";
  let iterated = ref [] in
  Driver.pending_iter view i (fun j -> iterated := j :: !iterated);
  if List.rev !iterated <> pend then Alcotest.failf "pending_iter disagrees with pending";
  let work = List.fold_left (fun acc (l : Job.t) -> acc +. Job.size l i) 0. pend in
  if Driver.pending_work view i <> work then
    Alcotest.failf "pending_work %.17g <> scan %.17g" (Driver.pending_work view i) work;
  let weight = List.fold_left (fun acc (l : Job.t) -> acc +. l.Job.weight) 0. pend in
  if Driver.pending_weight view i <> weight then Alcotest.failf "pending_weight mismatch";
  let fold_best better =
    match pend with
    | [] -> None
    | first :: rest -> Some (List.fold_left (fun a l -> if better l a then l else a) first rest)
  in
  let ids = function None -> -1 | Some (j : Job.t) -> j.Job.id in
  let spt (a : Job.t) (b : Job.t) =
    let pa = Job.size a i and pb = Job.size b i in
    if pa <> pb then pa < pb
    else if a.release <> b.release then a.release < b.release
    else a.id < b.id
  in
  if ids (Driver.pending_shortest view i) <> ids (fold_best spt) then
    Alcotest.failf "pending_shortest mismatch";
  if ids (Driver.pending_longest view i) <> ids (fold_best (fun a b -> spt b a)) then
    Alcotest.failf "pending_longest mismatch";
  let dense (a : Job.t) (b : Job.t) =
    let da = a.weight /. Job.size a i and db = b.weight /. Job.size b i in
    if da <> db then da > db
    else if a.release <> b.release then a.release < b.release
    else a.id < b.id
  in
  if ids (Driver.pending_densest view i) <> ids (fold_best dense) then
    Alcotest.failf "pending_densest mismatch";
  let big_tie_id (a : Job.t) (b : Job.t) =
    let pa = Job.size a i and pb = Job.size b i in
    if pa <> pb then pa > pb else a.id > b.id
  in
  if ids (Driver.pending_longest_tie_id view i) <> ids (fold_best big_tie_id) then
    Alcotest.failf "pending_longest_tie_id mismatch";
  let earlier (a : Job.t) (b : Job.t) =
    if a.release <> b.release then a.release < b.release else a.id < b.id
  in
  if ids (Driver.pending_earliest view i) <> ids (fold_best earlier) then
    Alcotest.failf "pending_earliest mismatch"

let probe_policy =
  let base = Sched_baselines.Greedy_dispatch.spt in
  {
    base with
    Driver.name = "probe-spt";
    select =
      (fun st view i ->
        check_accessors view i;
        base.Driver.select st view i);
  }

let test_accessors_agree_with_scans () =
  List.iteri
    (fun k inst -> if k mod 5 = 0 then ignore (Driver.run_schedule probe_policy inst))
    instances

let suite =
  [
    Alcotest.test_case "optimized == seed reference (100 instances/policy)" `Quick
      test_schedules_match_reference;
    Alcotest.test_case "live metrics == post-hoc recompute" `Quick
      test_live_metrics_match_recompute;
    Alcotest.test_case "view accessors == pending scans" `Quick test_accessors_agree_with_scans;
  ]