open Sched_model

(* Fixture: two machines, two jobs; job 0 runs on machine 0, job 1 on 1. *)
let two_job_instance () =
  Test_util.instance ~machines:2 [ (0., [| 2.; 2. |]); (1., [| 3.; 3. |]) ]

let completed_schedule () =
  let inst = two_job_instance () in
  let b = Schedule.builder inst in
  Schedule.add_segment b { Schedule.job = 0; machine = 0; start = 0.; stop = 2.; speed = 1. };
  Schedule.set_outcome b 0 (Outcome.Completed { machine = 0; start = 0.; speed = 1.; finish = 2. });
  Schedule.add_segment b { Schedule.job = 1; machine = 1; start = 1.; stop = 4.; speed = 1. };
  Schedule.set_outcome b 1 (Outcome.Completed { machine = 1; start = 1.; speed = 1.; finish = 4. });
  Schedule.finalize b

let test_valid_schedule () =
  let s = completed_schedule () in
  (match Schedule.validate s with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es));
  Alcotest.(check int) "completed" 2 (List.length (Schedule.completed_jobs s));
  Alcotest.(check int) "rejected" 0 (List.length (Schedule.rejected_jobs s))

let test_missing_outcome () =
  let inst = two_job_instance () in
  let b = Schedule.builder inst in
  Schedule.set_outcome b 0 (Outcome.Rejected { time = 0.; assigned_to = None; was_running = false });
  Alcotest.(check bool) "finalize fails" true
    (try
       ignore (Schedule.finalize b);
       false
     with Invalid_argument _ -> true)

let test_double_outcome () =
  let inst = two_job_instance () in
  let b = Schedule.builder inst in
  Schedule.set_outcome b 0 (Outcome.Rejected { time = 0.; assigned_to = None; was_running = false });
  Alcotest.(check bool) "double set fails" true
    (try
       Schedule.set_outcome b 0
         (Outcome.Rejected { time = 1.; assigned_to = None; was_running = false });
       false
     with Invalid_argument _ -> true)

let invalid_with mutate =
  let inst = two_job_instance () in
  let b = Schedule.builder inst in
  mutate b;
  let s = Schedule.finalize b in
  match Schedule.validate s with Ok () -> false | Error _ -> true

let test_detects_overlap () =
  Alcotest.(check bool) "overlap detected" true
    (invalid_with (fun b ->
         Schedule.add_segment b { Schedule.job = 0; machine = 0; start = 0.; stop = 2.; speed = 1. };
         Schedule.set_outcome b 0
           (Outcome.Completed { machine = 0; start = 0.; speed = 1.; finish = 2. });
         Schedule.add_segment b { Schedule.job = 1; machine = 0; start = 1.; stop = 4.; speed = 1. };
         Schedule.set_outcome b 1
           (Outcome.Completed { machine = 0; start = 1.; speed = 1.; finish = 4. })))

let test_allows_parallel_when_asked () =
  let inst = two_job_instance () in
  let b = Schedule.builder inst in
  Schedule.add_segment b { Schedule.job = 0; machine = 0; start = 0.; stop = 2.; speed = 1. };
  Schedule.set_outcome b 0 (Outcome.Completed { machine = 0; start = 0.; speed = 1.; finish = 2. });
  Schedule.add_segment b { Schedule.job = 1; machine = 0; start = 1.; stop = 4.; speed = 1. };
  Schedule.set_outcome b 1 (Outcome.Completed { machine = 0; start = 1.; speed = 1.; finish = 4. });
  let s = Schedule.finalize b in
  Alcotest.(check bool) "parallel ok" true
    (match Schedule.validate ~allow_parallel:true s with Ok () -> true | Error _ -> false)

let test_detects_preemption () =
  (* Job 0 split into two segments: non-preemption violated. *)
  Alcotest.(check bool) "preemption detected" true
    (invalid_with (fun b ->
         Schedule.add_segment b { Schedule.job = 0; machine = 0; start = 0.; stop = 1.; speed = 1. };
         Schedule.add_segment b { Schedule.job = 0; machine = 0; start = 2.; stop = 3.; speed = 1. };
         Schedule.set_outcome b 0
           (Outcome.Completed { machine = 0; start = 0.; speed = 1.; finish = 3. });
         Schedule.set_outcome b 1
           (Outcome.Rejected { time = 1.; assigned_to = None; was_running = false })))

let test_detects_early_start () =
  (* Job 1 released at 1 but started at 0.5. *)
  Alcotest.(check bool) "early start detected" true
    (invalid_with (fun b ->
         Schedule.add_segment b { Schedule.job = 1; machine = 0; start = 0.5; stop = 3.5; speed = 1. };
         Schedule.set_outcome b 1
           (Outcome.Completed { machine = 0; start = 0.5; speed = 1.; finish = 3.5 });
         Schedule.set_outcome b 0
           (Outcome.Rejected { time = 0.; assigned_to = None; was_running = false })))

let test_detects_volume_mismatch () =
  (* Job 0 has size 2 but only 1 time unit at speed 1. *)
  Alcotest.(check bool) "volume mismatch detected" true
    (invalid_with (fun b ->
         Schedule.add_segment b { Schedule.job = 0; machine = 0; start = 0.; stop = 1.; speed = 1. };
         Schedule.set_outcome b 0
           (Outcome.Completed { machine = 0; start = 0.; speed = 1.; finish = 1. });
         Schedule.set_outcome b 1
           (Outcome.Rejected { time = 1.; assigned_to = None; was_running = false })))

let test_speed_scales_volume () =
  (* Speed 2 halves the needed duration. *)
  let inst = two_job_instance () in
  let b = Schedule.builder inst in
  Schedule.add_segment b { Schedule.job = 0; machine = 0; start = 0.; stop = 1.; speed = 2. };
  Schedule.set_outcome b 0 (Outcome.Completed { machine = 0; start = 0.; speed = 2.; finish = 1. });
  Schedule.set_outcome b 1 (Outcome.Rejected { time = 1.; assigned_to = None; was_running = false });
  let s = Schedule.finalize b in
  Alcotest.(check bool) "speed-2 execution valid" true
    (match Schedule.validate s with Ok () -> true | Error _ -> false)

let test_rejected_partial_segment () =
  let inst = two_job_instance () in
  let b = Schedule.builder inst in
  (* Job 0 ran [0, 1) then was rejected at 1 (size 2: strictly partial). *)
  Schedule.add_segment b { Schedule.job = 0; machine = 0; start = 0.; stop = 1.; speed = 1. };
  Schedule.set_outcome b 0 (Outcome.Rejected { time = 1.; assigned_to = Some 0; was_running = true });
  Schedule.set_outcome b 1 (Outcome.Rejected { time = 1.; assigned_to = Some 1; was_running = false });
  let s = Schedule.finalize b in
  Alcotest.(check bool) "partial segment valid" true
    (match Schedule.validate s with Ok () -> true | Error _ -> false)

let test_rejected_overrun_detected () =
  (* Rejected job processed its full size: should have completed instead. *)
  Alcotest.(check bool) "overrun detected" true
    (invalid_with (fun b ->
         Schedule.add_segment b { Schedule.job = 0; machine = 0; start = 0.; stop = 2.; speed = 1. };
         Schedule.set_outcome b 0
           (Outcome.Rejected { time = 2.; assigned_to = Some 0; was_running = true });
         Schedule.set_outcome b 1
           (Outcome.Rejected { time = 1.; assigned_to = None; was_running = false })))

let test_deadline_check () =
  let inst = Test_util.deadline_instance [ (0., 2., [| 3. |]) ] in
  let b = Schedule.builder inst in
  Schedule.add_segment b { Schedule.job = 0; machine = 0; start = 0.; stop = 3.; speed = 1. };
  Schedule.set_outcome b 0 (Outcome.Completed { machine = 0; start = 0.; speed = 1.; finish = 3. });
  let s = Schedule.finalize b in
  Alcotest.(check bool) "deadline violation detected" true
    (match Schedule.validate ~check_deadlines:true s with Ok () -> false | Error _ -> true);
  Alcotest.(check bool) "ignorable" true
    (match Schedule.validate ~check_deadlines:false s with Ok () -> true | Error _ -> false)

let test_segments_of_machine_sorted () =
  let s = completed_schedule () in
  let segs = Schedule.segments_of_machine s 0 in
  Alcotest.(check int) "one segment on m0" 1 (List.length segs);
  Alcotest.(check int) "none on missing machine job" 1
    (List.length (Schedule.segments_of_machine s 1))

let suite =
  [
    Alcotest.test_case "valid schedule accepted" `Quick test_valid_schedule;
    Alcotest.test_case "missing outcome" `Quick test_missing_outcome;
    Alcotest.test_case "double outcome" `Quick test_double_outcome;
    Alcotest.test_case "detects overlap" `Quick test_detects_overlap;
    Alcotest.test_case "allows declared parallelism" `Quick test_allows_parallel_when_asked;
    Alcotest.test_case "detects preemption" `Quick test_detects_preemption;
    Alcotest.test_case "detects early start" `Quick test_detects_early_start;
    Alcotest.test_case "detects volume mismatch" `Quick test_detects_volume_mismatch;
    Alcotest.test_case "speed scales volume" `Quick test_speed_scales_volume;
    Alcotest.test_case "rejected partial segment" `Quick test_rejected_partial_segment;
    Alcotest.test_case "rejected overrun detected" `Quick test_rejected_overrun_detected;
    Alcotest.test_case "deadline check" `Quick test_deadline_check;
    Alcotest.test_case "segments sorted per machine" `Quick test_segments_of_machine_sorted;
  ]
