(* Registry-wide guarantees: every shipped policy, run over a shared
   workload suite, yields a schedule the validator accepts (with the
   restart relaxation only where the entry declares it) — making the
   driver.mli promise checkable instead of aspirational. *)

open Sched_model
module PR = Sched_experiments.Policy_registry

let shared_workloads =
  let flow =
    List.concat_map
      (fun gen ->
        List.map (fun seed -> Sched_workload.Gen.instance gen ~seed) [ 1; 2 ])
      (Sched_workload.Suite.all_flow ~n:40 ~m:3)
  in
  let weighted =
    List.map
      (fun seed ->
        Sched_workload.Gen.instance (Sched_workload.Suite.weighted_energy ~n:30 ~m:3 ~alpha:3.) ~seed)
      [ 1; 2 ]
  in
  let dyadic =
    [
      Test_util.random_instance ~seed:11 ~n:30 ~m:2 ();
      Test_util.random_instance ~weighted:true ~restricted:true ~seed:12 ~n:30 ~m:4 ();
    ]
  in
  flow @ weighted @ dyadic

let test_names_unique_and_findable () =
  let names = List.map (fun (e : PR.entry) -> e.PR.name) PR.all in
  Alcotest.(check int) "no duplicate names" (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun name ->
      match PR.find name with
      | Some e -> Alcotest.(check string) "find returns entry" name e.PR.name
      | None -> Alcotest.failf "registry find %s failed" name)
    names;
  Alcotest.(check bool) "unknown name" true (PR.find "no-such-policy" = None)

let test_validator_accepts_all_policies () =
  List.iter
    (fun (e : PR.entry) ->
      List.iter
        (fun inst ->
          let s = e.PR.run inst in
          match Schedule.validate ~allow_restarts:e.PR.allow_restarts s with
          | Ok () -> ()
          | Error msgs ->
              Alcotest.failf "%s invalid on %s:\n%s" e.PR.name inst.Instance.name
                (String.concat "\n" msgs))
        shared_workloads)
    PR.all

let test_strict_validation_without_restarts () =
  (* Entries not flagged allow_restarts must pass the strict validator. *)
  let inst = Test_util.random_instance ~weighted:true ~seed:21 ~n:30 ~m:3 () in
  List.iter
    (fun (e : PR.entry) ->
      if not e.PR.allow_restarts then
        match Schedule.validate (e.PR.run inst) with
        | Ok () -> ()
        | Error msgs ->
            Alcotest.failf "%s fails strict validation: %s" e.PR.name
              (String.concat "; " msgs))
    PR.all

let suite =
  [
    Alcotest.test_case "names unique, find works" `Quick test_names_unique_and_findable;
    Alcotest.test_case "validator accepts every policy on shared suite" `Quick
      test_validator_accepts_all_policies;
    Alcotest.test_case "strict validation where no restarts" `Quick
      test_strict_validation_without_restarts;
  ]