(* Tests for the one-call API and model/driver edge cases. *)

open Sched_model

(* --- Api --- *)

let test_api_run_flow () =
  let inst = Sched_workload.Suite.tiny ~seed:1 ~n:20 ~m:2 in
  let r = Rejection.Api.run_flow ~eps:0.25 inst in
  Alcotest.(check bool) "flow positive" true (r.Rejection.Api.flow.Metrics.total > 0.);
  Alcotest.(check (float 1e-9)) "bound" 50. r.Rejection.Api.competitive_bound;
  Alcotest.(check (float 1e-9)) "budget" 0.5 r.Rejection.Api.rejection_budget;
  Alcotest.(check bool) "budget respected" true
    (r.Rejection.Api.rejection.Metrics.fraction <= 0.5 +. 1e-9)

let test_api_run_flow_energy () =
  let gen = Sched_workload.Suite.weighted_energy ~n:30 ~m:2 ~alpha:3. in
  let inst = Sched_workload.Gen.instance gen ~seed:2 in
  let r = Rejection.Api.run_flow_energy ~eps:0.3 inst in
  Alcotest.(check (float 1e-9)) "objective is sum"
    (r.Rejection.Api.weighted_flow +. r.Rejection.Api.energy)
    r.Rejection.Api.objective;
  Alcotest.(check bool) "energy positive" true (r.Rejection.Api.energy > 0.);
  Alcotest.(check bool) "weight budget" true
    (r.Rejection.Api.rejection.Metrics.weight_fraction <= 0.3 +. 1e-9)

let test_api_run_energy_min () =
  let gen = Sched_workload.Suite.deadline_energy ~n:15 ~m:2 ~alpha:3. in
  let inst = Sched_workload.Gen.instance gen ~seed:3 in
  let r = Rejection.Api.run_energy_min inst in
  Alcotest.(check bool) "energy positive" true (r.Rejection.Api.energy > 0.);
  Alcotest.(check (float 1e-9)) "bound alpha^alpha" 27. r.Rejection.Api.competitive_bound

(* --- edge cases --- *)

let test_empty_instance () =
  let inst = Instance.create ~machines:(Machine.fleet 2) ~jobs:[] () in
  Alcotest.(check int) "n = 0" 0 (Instance.n inst);
  let r = Rejection.Api.run_flow inst in
  Alcotest.(check (float 0.)) "zero flow" 0. r.Rejection.Api.flow.Metrics.total;
  Alcotest.(check int) "no rejections" 0 r.Rejection.Api.rejection.Metrics.count;
  (* Energy greedy also accepts the empty (deadline-free) instance is
     invalid — it requires deadlines; but an empty job list has all jobs
     carrying deadlines vacuously false per Instance.has_deadlines. *)
  Alcotest.(check bool) "has_deadlines is false on empty" false (Instance.has_deadlines inst)

let test_single_job_flow () =
  let inst = Test_util.instance [ (5., [| 3. |]) ] in
  let r = Rejection.Api.run_flow ~eps:0.1 inst in
  Alcotest.(check (float 1e-9)) "flow = p" 3. r.Rejection.Api.flow.Metrics.total;
  Alcotest.(check (float 1e-9)) "ratio 1 vs opt" 3.
    (Option.get (Sched_baselines.Brute_force.optimal_flow inst))

let test_extreme_eps () =
  let gen = Sched_workload.Suite.flow_pareto ~n:60 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:4 in
  (* Very small eps: thresholds huge, nothing rejected in a 60-job run. *)
  let tiny = Rejection.Api.run_flow ~eps:0.01 inst in
  Alcotest.(check bool) "tiny eps rejects nothing here" true
    (tiny.Rejection.Api.rejection.Metrics.fraction <= 0.02 +. 1e-9);
  (* Near-1 eps: aggressive; budget 2*eps is nearly 2 so trivially ok, but
     schedule must stay valid. *)
  let big = Rejection.Api.run_flow ~eps:0.99 inst in
  Alcotest.(check bool) "valid at eps ~ 1" true
    (match Schedule.validate ~check_deadlines:false big.Rejection.Api.schedule with
    | Ok () -> true
    | Error _ -> false)

let test_simultaneous_releases () =
  (* Many jobs at the same instant; event ordering must stay deterministic
     and the schedule valid. *)
  let inst =
    Test_util.instance ~machines:2
      (List.init 12 (fun k -> (0., [| 1. +. float_of_int (k mod 3); 2. |])))
  in
  let r1 = Rejection.Api.run_flow ~eps:0.3 inst in
  let r2 = Rejection.Api.run_flow ~eps:0.3 inst in
  Alcotest.(check (float 0.)) "deterministic" r1.Rejection.Api.flow.Metrics.total
    r2.Rejection.Api.flow.Metrics.total

let test_identical_sizes_ties () =
  let inst = Test_util.instance (List.init 8 (fun _ -> (0., [| 2. |]))) in
  let r = Rejection.Api.run_flow ~eps:0.45 inst in
  Alcotest.(check bool) "valid with all ties" true
    (match Schedule.validate ~check_deadlines:false r.Rejection.Api.schedule with
    | Ok () -> true
    | Error _ -> false)

let test_huge_size_spread () =
  let inst =
    Test_util.instance [ (0., [| 1e-6 |]); (0., [| 1e6 |]); (1., [| 1. |]) ]
  in
  let r = Rejection.Api.run_flow ~eps:0.4 inst in
  Alcotest.(check bool) "valid with 12 orders of magnitude" true
    (match Schedule.validate ~check_deadlines:false r.Rejection.Api.schedule with
    | Ok () -> true
    | Error _ -> false)

let test_driver_empty_instance () =
  let inst = Instance.create ~machines:(Machine.fleet 1) ~jobs:[] () in
  let s = Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.fifo inst in
  Alcotest.(check (float 0.)) "empty makespan" 0. (Metrics.makespan s)

let test_work_conservation () =
  (* Our policies never idle a machine with pending work: every Start in
     the trace happens when nothing else runs there, and total busy time
     equals processed volume. *)
  let gen = Sched_workload.Suite.flow_uniform ~n:50 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:9 in
  let trace = Sched_sim.Trace.create () in
  let s, _ = Rejection.Flow_reject.run ~trace (Rejection.Flow_reject.config ~eps:0.25 ()) inst in
  let processed =
    List.fold_left
      (fun acc (g : Schedule.segment) -> acc +. ((g.Schedule.stop -. g.Schedule.start) *. g.Schedule.speed))
      0. s.Schedule.segments
  in
  let busy = Metrics.busy_time s 0 +. Metrics.busy_time s 1 in
  Alcotest.(check (float 1e-6)) "busy time = processed volume (speed 1)" processed busy

let suite =
  [
    Alcotest.test_case "api run_flow" `Quick test_api_run_flow;
    Alcotest.test_case "api run_flow_energy" `Quick test_api_run_flow_energy;
    Alcotest.test_case "api run_energy_min" `Quick test_api_run_energy_min;
    Alcotest.test_case "empty instance" `Quick test_empty_instance;
    Alcotest.test_case "single job" `Quick test_single_job_flow;
    Alcotest.test_case "extreme eps" `Quick test_extreme_eps;
    Alcotest.test_case "simultaneous releases" `Quick test_simultaneous_releases;
    Alcotest.test_case "identical sizes ties" `Quick test_identical_sizes_ties;
    Alcotest.test_case "huge size spread" `Quick test_huge_size_spread;
    Alcotest.test_case "driver empty instance" `Quick test_driver_empty_instance;
    Alcotest.test_case "work conservation" `Quick test_work_conservation;
  ]

let test_soak_large_instance () =
  (* 100k jobs on 16 machines: the full Theorem 1 run plus full schedule
     validation must finish in seconds and respect the budget. *)
  let gen = Sched_workload.Suite.flow_pareto ~n:100_000 ~m:16 in
  let inst = Sched_workload.Gen.instance gen ~seed:7 in
  let t0 = Sys.time () in
  let s, _ = Rejection.Flow_reject.run (Rejection.Flow_reject.config ~eps:0.25 ()) inst in
  Schedule.assert_valid ~check_deadlines:false s;
  let elapsed = Sys.time () -. t0 in
  let r = Metrics.rejection s in
  Alcotest.(check bool)
    (Printf.sprintf "finished in %.2fs" elapsed)
    true (elapsed < 30.);
  Alcotest.(check bool) "budget at scale" true (r.Metrics.fraction <= 0.5 +. 1e-9);
  Alcotest.(check int) "everything settled" 100_000
    (List.length (Schedule.completed_jobs s) + r.Metrics.count)

let suite = suite @ [ Alcotest.test_case "soak: 100k jobs" `Slow test_soak_large_instance ]
